#include "workflow/dag.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace deco::workflow {
namespace {

Workflow diamond() {
  // a -> b, a -> c, b -> d, c -> d
  Workflow wf("diamond");
  const TaskId a = wf.add_task({"a", "exe", 1, 0, 0});
  const TaskId b = wf.add_task({"b", "exe", 2, 0, 0});
  const TaskId c = wf.add_task({"c", "exe", 3, 0, 0});
  const TaskId d = wf.add_task({"d", "exe", 4, 0, 0});
  wf.add_edge(a, b, 10);
  wf.add_edge(a, c, 20);
  wf.add_edge(b, d, 30);
  wf.add_edge(c, d, 40);
  return wf;
}

TEST(DagTest, AddTaskAssignsSequentialIds) {
  Workflow wf;
  EXPECT_EQ(wf.add_task({"t0", "", 0, 0, 0}), 0u);
  EXPECT_EQ(wf.add_task({"t1", "", 0, 0, 0}), 1u);
  EXPECT_EQ(wf.task_count(), 2u);
}

TEST(DagTest, EdgesRecordParentsAndChildren) {
  const Workflow wf = diamond();
  EXPECT_EQ(wf.children(0).size(), 2u);
  EXPECT_EQ(wf.parents(3).size(), 2u);
  EXPECT_TRUE(wf.parents(0).empty());
  EXPECT_TRUE(wf.children(3).empty());
}

TEST(DagTest, DuplicateEdgeMergesBytes) {
  Workflow wf;
  const TaskId a = wf.add_task({"a", "", 0, 0, 0});
  const TaskId b = wf.add_task({"b", "", 0, 0, 0});
  wf.add_edge(a, b, 10);
  wf.add_edge(a, b, 5);
  EXPECT_EQ(wf.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(wf.edges()[0].bytes, 15.0);
  EXPECT_EQ(wf.children(a).size(), 1u);
}

TEST(DagTest, RootsAndLeaves) {
  const Workflow wf = diamond();
  EXPECT_EQ(wf.roots(), std::vector<TaskId>{0});
  EXPECT_EQ(wf.leaves(), std::vector<TaskId>{3});
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  const Workflow wf = diamond();
  const auto topo = wf.topological_order();
  ASSERT_TRUE(topo.has_value());
  ASSERT_EQ(topo->size(), 4u);
  auto pos = [&](TaskId id) {
    return std::find(topo->begin(), topo->end(), id) - topo->begin();
  };
  for (const Edge& e : wf.edges()) {
    EXPECT_LT(pos(e.parent), pos(e.child));
  }
}

TEST(DagTest, CycleDetected) {
  Workflow wf;
  const TaskId a = wf.add_task({"a", "", 0, 0, 0});
  const TaskId b = wf.add_task({"b", "", 0, 0, 0});
  wf.add_edge(a, b, 0);
  wf.add_edge(b, a, 0);
  EXPECT_FALSE(wf.topological_order().has_value());
  EXPECT_FALSE(wf.is_acyclic());
}

TEST(DagTest, TotalCpuSeconds) {
  const Workflow wf = diamond();
  EXPECT_DOUBLE_EQ(wf.total_cpu_seconds(), 10.0);
}

TEST(DagTest, FindTaskByName) {
  const Workflow wf = diamond();
  ASSERT_TRUE(wf.find_task("c").has_value());
  EXPECT_EQ(*wf.find_task("c"), 2u);
  EXPECT_FALSE(wf.find_task("nope").has_value());
}

TEST(DagTest, EmptyWorkflowIsAcyclic) {
  Workflow wf;
  EXPECT_TRUE(wf.is_acyclic());
  EXPECT_TRUE(wf.roots().empty());
}

}  // namespace
}  // namespace deco::workflow
