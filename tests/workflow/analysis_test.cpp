#include "workflow/analysis.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::workflow {
namespace {

Workflow diamond(double wa, double wb, double wc, double wd) {
  Workflow wf("diamond");
  wf.add_task({"a", "", wa, 0, 0});
  wf.add_task({"b", "", wb, 0, 0});
  wf.add_task({"c", "", wc, 0, 0});
  wf.add_task({"d", "", wd, 0, 0});
  wf.add_edge(0, 1, 0);
  wf.add_edge(0, 2, 0);
  wf.add_edge(1, 3, 0);
  wf.add_edge(2, 3, 0);
  return wf;
}

TEST(AnalysisTest, CriticalPathPicksHeavierBranch) {
  const Workflow wf = diamond(1, 10, 2, 1);
  const std::vector<double> w{1, 10, 2, 1};
  const auto cp = critical_path(wf, w);
  EXPECT_DOUBLE_EQ(cp.length, 12.0);
  ASSERT_EQ(cp.tasks.size(), 3u);
  EXPECT_EQ(cp.tasks[0], 0u);
  EXPECT_EQ(cp.tasks[1], 1u);
  EXPECT_EQ(cp.tasks[2], 3u);
}

TEST(AnalysisTest, CriticalPathSwitchesWithWeights) {
  const Workflow wf = diamond(1, 1, 1, 1);
  const std::vector<double> w{1, 1, 50, 1};
  const auto cp = critical_path(wf, w);
  EXPECT_DOUBLE_EQ(cp.length, 52.0);
  EXPECT_EQ(cp.tasks[1], 2u);
}

TEST(AnalysisTest, SingleTaskPath) {
  Workflow wf;
  wf.add_task({"only", "", 7, 0, 0});
  const std::vector<double> w{7};
  const auto cp = critical_path(wf, w);
  EXPECT_DOUBLE_EQ(cp.length, 7.0);
  EXPECT_EQ(cp.tasks.size(), 1u);
}

TEST(AnalysisTest, LongestPathMatchesCriticalPath) {
  util::Rng rng(71);
  const Workflow wf = make_montage(1, rng);
  std::vector<double> w(wf.task_count());
  for (auto& x : w) x = rng.uniform(1, 100);
  const auto topo = wf.topological_order();
  ASSERT_TRUE(topo.has_value());
  const auto cp = critical_path(wf, w);
  EXPECT_NEAR(longest_path_length(wf, w, *topo), cp.length, 1e-9);
}

TEST(AnalysisTest, LevelsMonotoneAlongEdges) {
  util::Rng rng(73);
  const Workflow wf = make_ligo(60, rng);
  const auto lv = levels(wf);
  for (const Edge& e : wf.edges()) {
    EXPECT_LT(lv[e.parent], lv[e.child]);
  }
}

TEST(AnalysisTest, WidthProfileSumsToTaskCount) {
  util::Rng rng(79);
  const Workflow wf = make_epigenomics(80, rng);
  const auto widths = width_profile(wf);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  EXPECT_EQ(total, wf.task_count());
}

TEST(AnalysisTest, PipelineIsSingleChain) {
  util::Rng rng(83);
  const Workflow wf = make_pipeline(10, rng);
  const auto widths = width_profile(wf);
  EXPECT_EQ(widths.size(), 10u);
  for (std::size_t w : widths) EXPECT_EQ(w, 1u);
}

TEST(AnalysisTest, CriticalPathIsConnectedChain) {
  util::Rng rng(89);
  const Workflow wf = make_montage(1, rng);
  std::vector<double> w(wf.task_count(), 1.0);
  const auto cp = critical_path(wf, w);
  for (std::size_t i = 0; i + 1 < cp.tasks.size(); ++i) {
    const auto& children = wf.children(cp.tasks[i]);
    EXPECT_NE(std::find(children.begin(), children.end(), cp.tasks[i + 1]),
              children.end());
  }
}

}  // namespace
}  // namespace deco::workflow
