#include "workflow/dax.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::workflow {
namespace {

// The paper's Figure 4 pipeline DAX (ID01 -> ID02), lightly extended with
// runtime attributes.
constexpr const char* kPipelineDax = R"(<?xml version="1.0" encoding="UTF-8"?>
<adag name="pipeline" jobCount="2">
  <job id="ID01" name="process1" runtime="30">
    <uses file="f.a" link="input" size="1000"/>
    <uses file="f.b1" link="output" size="2000"/>
  </job>
  <job id="ID02" name="process2" runtime="45">
    <uses file="f.b1" link="input" size="2000"/>
    <uses file="f.c" link="output" size="500"/>
  </job>
  <child ref="ID02">
    <parent ref="ID01"/>
  </child>
</adag>
)";

TEST(DaxTest, ParsesFigure4Pipeline) {
  const auto result = parse_dax(kPipelineDax);
  ASSERT_TRUE(std::holds_alternative<Workflow>(result));
  const Workflow& wf = std::get<Workflow>(result);
  EXPECT_EQ(wf.name(), "pipeline");
  ASSERT_EQ(wf.task_count(), 2u);
  EXPECT_EQ(wf.task(0).name, "ID01");
  EXPECT_EQ(wf.task(0).executable, "process1");
  EXPECT_DOUBLE_EQ(wf.task(0).cpu_seconds, 30.0);
  EXPECT_DOUBLE_EQ(wf.task(0).input_bytes, 1000.0);
  EXPECT_DOUBLE_EQ(wf.task(0).output_bytes, 2000.0);
  ASSERT_EQ(wf.edge_count(), 1u);
  EXPECT_EQ(wf.edges()[0].parent, 0u);
  EXPECT_EQ(wf.edges()[0].child, 1u);
  EXPECT_DOUBLE_EQ(wf.edges()[0].bytes, 2000.0);
}

TEST(DaxTest, InfersEdgesFromSharedFiles) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"><uses file="f1" link="output" size="10"/></job>
    <job id="B" name="p"><uses file="f1" link="input" size="10"/></job>
  </adag>)";
  const auto result = parse_dax(dax, /*infer_file_edges=*/true);
  ASSERT_TRUE(std::holds_alternative<Workflow>(result));
  EXPECT_EQ(std::get<Workflow>(result).edge_count(), 1u);
}

TEST(DaxTest, NoInferenceWhenDisabled) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"><uses file="f1" link="output" size="10"/></job>
    <job id="B" name="p"><uses file="f1" link="input" size="10"/></job>
  </adag>)";
  const auto result = parse_dax(dax, /*infer_file_edges=*/false);
  ASSERT_TRUE(std::holds_alternative<Workflow>(result));
  EXPECT_EQ(std::get<Workflow>(result).edge_count(), 0u);
}

TEST(DaxTest, DuplicateJobIdIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/><job id="A" name="q"/>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, UnknownChildRefIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/>
    <child ref="Z"><parent ref="A"/></child>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, UnknownParentRefIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/>
    <child ref="A"><parent ref="Z"/></child>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, WrongRootElementIsError) {
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax("<dag/>")));
}

TEST(DaxTest, MalformedXmlIsError) {
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax("<adag><job>")));
}

TEST(DaxTest, TruncatedDocumentIsErrorAtEveryCutPoint) {
  // A transfer cut off anywhere mid-document must yield DaxError (or, at
  // cuts that happen to end on a well-formed prefix, a Workflow) — never a
  // crash or an exception.
  const std::string full = kPipelineDax;
  for (std::size_t cut = 1; cut < full.size(); cut += 7) {
    const std::string truncated = full.substr(0, cut);
    const auto result = parse_dax(truncated);
    if (std::holds_alternative<DaxError>(result)) {
      EXPECT_FALSE(std::get<DaxError>(result).message.empty())
          << "cut at " << cut;
    }
  }
  // Cutting inside the <child> element specifically loses the dependency
  // closure: that prefix is not a valid document.
  const std::size_t child_pos = full.find("<child");
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_TRUE(std::holds_alternative<DaxError>(
      parse_dax(full.substr(0, child_pos + 10))));
}

TEST(DaxTest, JobMissingIdIsError) {
  const char* dax = R"(<adag name="x"><job name="p" runtime="5"/></adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, ChildMissingRefIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/>
    <child><parent ref="A"/></child>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, ParentMissingRefIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/><job id="B" name="p"/>
    <child ref="B"><parent/></child>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, CyclicDeclarationIsError) {
  const char* dax = R"(<adag name="x">
    <job id="A" name="p"/><job id="B" name="p"/>
    <child ref="A"><parent ref="B"/></child>
    <child ref="B"><parent ref="A"/></child>
  </adag>)";
  EXPECT_TRUE(std::holds_alternative<DaxError>(parse_dax(dax)));
}

TEST(DaxTest, RoundTripPreservesStructure) {
  util::Rng rng(97);
  const Workflow original = make_montage(1, rng);
  const std::string xml = to_dax(original);
  const auto reparsed = parse_dax(xml);
  ASSERT_TRUE(std::holds_alternative<Workflow>(reparsed));
  const Workflow& wf = std::get<Workflow>(reparsed);
  ASSERT_EQ(wf.task_count(), original.task_count());
  EXPECT_EQ(wf.edge_count(), original.edge_count());
  for (TaskId i = 0; i < wf.task_count(); ++i) {
    EXPECT_EQ(wf.task(i).name, original.task(i).name);
    EXPECT_NEAR(wf.task(i).cpu_seconds, original.task(i).cpu_seconds, 1e-6);
    EXPECT_EQ(wf.parents(i).size(), original.parents(i).size());
  }
  // Edge bytes survive the round trip via the bytes attribute.
  double original_bytes = 0;
  double reparsed_bytes = 0;
  for (const Edge& e : original.edges()) original_bytes += e.bytes;
  for (const Edge& e : wf.edges()) reparsed_bytes += e.bytes;
  EXPECT_NEAR(reparsed_bytes, original_bytes, original_bytes * 1e-9 + 1e-6);
}

TEST(DaxTest, SaveAndLoadFile) {
  util::Rng rng(101);
  const Workflow wf = make_pipeline(5, rng);
  const std::string path = testing::TempDir() + "/pipeline_test.dax";
  ASSERT_TRUE(save_dax_file(wf, path));
  const auto loaded = load_dax_file(path);
  ASSERT_TRUE(std::holds_alternative<Workflow>(loaded));
  EXPECT_EQ(std::get<Workflow>(loaded).task_count(), 5u);
}

TEST(DaxTest, MissingFileIsError) {
  EXPECT_TRUE(std::holds_alternative<DaxError>(
      load_dax_file("/nonexistent/path.dax")));
}

}  // namespace
}  // namespace deco::workflow
