#include "workflow/ensemble.hpp"

#include <gtest/gtest.h>

#include <set>

namespace deco::workflow {
namespace {

EnsembleOptions options(EnsembleType type, std::size_t n = 30) {
  EnsembleOptions opt;
  opt.app = AppType::kLigo;
  opt.type = type;
  opt.num_workflows = n;
  opt.sizes = {20, 100, 1000};
  return opt;
}

TEST(EnsembleTest, MemberCountMatches) {
  util::Rng rng(1);
  const Ensemble e = make_ensemble(options(EnsembleType::kConstant, 40), rng);
  EXPECT_EQ(e.members.size(), 40u);
}

TEST(EnsembleTest, ConstantAllSameSize) {
  util::Rng rng(2);
  const Ensemble e = make_ensemble(options(EnsembleType::kConstant), rng);
  std::set<std::size_t> sizes;
  for (const auto& m : e.members) sizes.insert(m.workflow.task_count());
  // Jitter never changes the task count for a fixed requested size.
  EXPECT_EQ(sizes.size(), 1u);
}

TEST(EnsembleTest, UniformUsesMultipleSizes) {
  util::Rng rng(3);
  const Ensemble e = make_ensemble(options(EnsembleType::kUniformUnsorted), rng);
  std::set<std::size_t> sizes;
  for (const auto& m : e.members) sizes.insert(m.workflow.task_count());
  EXPECT_GT(sizes.size(), 1u);
}

TEST(EnsembleTest, SortedPutsLargestFirst) {
  util::Rng rng(4);
  const Ensemble e = make_ensemble(options(EnsembleType::kUniformSorted), rng);
  for (std::size_t i = 0; i + 1 < e.members.size(); ++i) {
    EXPECT_GE(e.members[i].workflow.task_count(),
              e.members[i + 1].workflow.task_count());
    EXPECT_LT(e.members[i].priority, e.members[i + 1].priority);
  }
}

TEST(EnsembleTest, PrioritiesAreAPermutation) {
  for (const EnsembleType type : kAllEnsembleTypes) {
    util::Rng rng(5);
    const Ensemble e = make_ensemble(options(type), rng);
    std::set<int> priorities;
    for (const auto& m : e.members) priorities.insert(m.priority);
    EXPECT_EQ(priorities.size(), e.members.size()) << to_string(type);
    EXPECT_EQ(*priorities.begin(), 0) << to_string(type);
  }
}

TEST(EnsembleTest, ParetoIsSkewedTowardSmall) {
  util::Rng rng(6);
  const Ensemble e =
      make_ensemble(options(EnsembleType::kParetoUnsorted, 50), rng);
  int small = 0;
  for (const auto& m : e.members) {
    if (m.workflow.task_count() < 60) ++small;
  }
  EXPECT_GT(small, 25);  // the tail is heavy but most draws are small
}

TEST(EnsembleTest, ScoreWeightsByPriority) {
  Ensemble e;
  for (int p = 0; p < 3; ++p) {
    EnsembleMember m;
    m.priority = p;
    e.members.push_back(std::move(m));
  }
  EXPECT_DOUBLE_EQ(e.score({true, false, false}), 1.0);
  EXPECT_DOUBLE_EQ(e.score({false, true, false}), 0.5);
  EXPECT_DOUBLE_EQ(e.score({true, true, true}), 1.75);
  EXPECT_DOUBLE_EQ(e.max_score(), 1.75);
}

TEST(EnsembleTest, ScoreHandlesShortCompletionVector) {
  Ensemble e;
  EnsembleMember m;
  m.priority = 0;
  e.members.push_back(std::move(m));
  e.members.push_back(EnsembleMember{});
  EXPECT_DOUBLE_EQ(e.score({true}), 1.0);
}

TEST(EnsembleTest, AllMembersAcyclic) {
  for (const EnsembleType type : kAllEnsembleTypes) {
    util::Rng rng(7);
    const Ensemble e = make_ensemble(options(type, 10), rng);
    for (const auto& m : e.members) {
      EXPECT_TRUE(m.workflow.is_acyclic());
    }
  }
}

}  // namespace
}  // namespace deco::workflow
