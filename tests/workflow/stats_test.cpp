#include "workflow/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::workflow {
namespace {

TEST(StatsTest, DiamondNumbers) {
  Workflow wf("diamond");
  wf.add_task({"a", "stage1", 10, 100, 200});
  wf.add_task({"b", "stage2", 20, 300, 0});
  wf.add_task({"c", "stage2", 30, 0, 0});
  wf.add_task({"d", "stage3", 40, 0, 0});
  wf.add_edge(0, 1, 50);
  wf.add_edge(0, 2, 60);
  wf.add_edge(1, 3, 70);
  wf.add_edge(2, 3, 80);
  const auto s = compute_stats(wf);
  EXPECT_EQ(s.tasks, 4u);
  EXPECT_EQ(s.edges, 4u);
  EXPECT_EQ(s.roots, 1u);
  EXPECT_EQ(s.leaves, 1u);
  EXPECT_EQ(s.depth, 3u);
  EXPECT_EQ(s.max_width, 2u);
  EXPECT_DOUBLE_EQ(s.total_cpu_seconds, 100.0);
  EXPECT_DOUBLE_EQ(s.total_io_bytes, 600.0);
  EXPECT_DOUBLE_EQ(s.total_edge_bytes, 260.0);
  EXPECT_DOUBLE_EQ(s.critical_path_cpu_s, 10 + 30 + 40);
  EXPECT_EQ(s.by_executable.size(), 3u);
  EXPECT_EQ(s.by_executable.at("stage2").count, 2u);
  EXPECT_DOUBLE_EQ(s.by_executable.at("stage2").total_cpu_seconds, 50.0);
}

TEST(StatsTest, EmptyWorkflow) {
  const auto s = compute_stats(Workflow("empty"));
  EXPECT_EQ(s.tasks, 0u);
  EXPECT_EQ(s.depth, 0u);
  EXPECT_DOUBLE_EQ(s.critical_path_cpu_s, 0.0);
}

TEST(StatsTest, MontageMixMatchesGenerator) {
  util::Rng rng(3);
  const auto wf = make_montage(1, rng);
  const auto s = compute_stats(wf);
  EXPECT_EQ(s.tasks, wf.task_count());
  EXPECT_EQ(s.by_executable.at("mConcatFit").count, 1u);
  EXPECT_EQ(s.by_executable.at("mProjectPP").count,
            s.by_executable.at("mBackground").count);
  EXPECT_NEAR(s.total_cpu_seconds, wf.total_cpu_seconds(), 1e-9);
}

TEST(StatsTest, DescribeMentionsKeyNumbers) {
  util::Rng rng(4);
  const auto wf = make_pipeline(5, rng);
  const auto text = describe(compute_stats(wf), wf.name());
  EXPECT_NE(text.find("5 tasks"), std::string::npos);
  EXPECT_NE(text.find("task mix"), std::string::npos);
  EXPECT_NE(text.find("critical path"), std::string::npos);
}

}  // namespace
}  // namespace deco::workflow
