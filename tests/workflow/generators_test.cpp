#include "workflow/generators.hpp"

#include <gtest/gtest.h>

#include <map>

#include "workflow/analysis.hpp"

namespace deco::workflow {
namespace {

std::map<std::string, int> executable_counts(const Workflow& wf) {
  std::map<std::string, int> counts;
  for (const Task& t : wf.tasks()) ++counts[t.executable];
  return counts;
}

TEST(GeneratorsTest, MontageIsAcyclicAndConnectedEnds) {
  util::Rng rng(1);
  const Workflow wf = make_montage(1, rng);
  EXPECT_TRUE(wf.is_acyclic());
  EXPECT_FALSE(wf.roots().empty());
  EXPECT_EQ(wf.leaves().size(), 1u);  // mJPEG is the single sink
}

TEST(GeneratorsTest, MontageHasAllTaskTypes) {
  util::Rng rng(2);
  const auto counts = executable_counts(make_montage(1, rng));
  for (const char* exe : {"mProjectPP", "mDiffFit", "mConcatFit", "mBgModel",
                          "mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG"}) {
    EXPECT_GT(counts.count(exe), 0u) << exe;
  }
}

TEST(GeneratorsTest, MontageSizesScaleWithDegree) {
  util::Rng rng(3);
  const std::size_t n1 = make_montage(1, rng).task_count();
  const std::size_t n4 = make_montage(4, rng).task_count();
  const std::size_t n8 = make_montage(8, rng).task_count();
  EXPECT_LT(n1, n4);
  EXPECT_LT(n4, n8);
  // The paper's range: Montage-1 tens of tasks, Montage-8 around a thousand.
  EXPECT_GT(n1, 30u);
  EXPECT_GT(n8, 700u);
  EXPECT_LT(n8, 1500u);
}

TEST(GeneratorsTest, MontageNamesEncodeDegree) {
  util::Rng rng(4);
  EXPECT_EQ(make_montage(4, rng).name(), "Montage-4");
}

TEST(GeneratorsTest, MontageDiffFitDependsOnTwoProjects) {
  util::Rng rng(5);
  const Workflow wf = make_montage(1, rng);
  for (TaskId i = 0; i < wf.task_count(); ++i) {
    if (wf.task(i).executable == "mDiffFit") {
      EXPECT_EQ(wf.parents(i).size(), 2u);
      for (TaskId p : wf.parents(i)) {
        EXPECT_EQ(wf.task(p).executable, "mProjectPP");
      }
    }
  }
}

TEST(GeneratorsTest, LigoStructure) {
  util::Rng rng(6);
  const Workflow wf = make_ligo(100, rng);
  EXPECT_TRUE(wf.is_acyclic());
  const auto counts = executable_counts(wf);
  EXPECT_GT(counts.at("TmpltBank"), 0);
  EXPECT_GT(counts.at("Inspiral"), 0);
  EXPECT_GT(counts.at("Thinca"), 0);
  EXPECT_GT(counts.at("TrigBank"), 0);
  // Roughly the requested size.
  EXPECT_NEAR(static_cast<double>(wf.task_count()), 100.0, 40.0);
}

TEST(GeneratorsTest, EpigenomicsIsLaneParallel) {
  util::Rng rng(7);
  const Workflow wf = make_epigenomics(100, rng);
  EXPECT_TRUE(wf.is_acyclic());
  EXPECT_EQ(wf.roots().size(), 1u);   // fastQSplit
  EXPECT_EQ(wf.leaves().size(), 1u);  // pileup
  const auto counts = executable_counts(wf);
  EXPECT_EQ(counts.at("filterContams"), counts.at("map"));
  EXPECT_NEAR(static_cast<double>(wf.task_count()), 100.0, 15.0);
}

TEST(GeneratorsTest, CyberShakeStructure) {
  util::Rng rng(8);
  const Workflow wf = make_cybershake(100, rng);
  EXPECT_TRUE(wf.is_acyclic());
  const auto counts = executable_counts(wf);
  EXPECT_EQ(counts.at("SeismogramSynthesis"), counts.at("PeakValCalc"));
  EXPECT_GT(counts.at("ExtractSGT"), 0);
}

TEST(GeneratorsTest, PipelineExactCount) {
  util::Rng rng(9);
  EXPECT_EQ(make_pipeline(17, rng).task_count(), 17u);
}

TEST(GeneratorsTest, RuntimesArePositiveAndJittered) {
  util::Rng rng(10);
  const Workflow a = make_montage(1, rng);
  const Workflow b = make_montage(1, rng);
  bool any_differs = false;
  for (TaskId i = 0; i < a.task_count(); ++i) {
    EXPECT_GT(a.task(i).cpu_seconds, 0.0);
    if (i < b.task_count() &&
        a.task(i).cpu_seconds != b.task(i).cpu_seconds) {
      any_differs = true;
    }
  }
  EXPECT_TRUE(any_differs);  // instances vary between draws
}

TEST(GeneratorsTest, DeterministicGivenSeed) {
  util::Rng rng1(11);
  util::Rng rng2(11);
  const Workflow a = make_ligo(50, rng1);
  const Workflow b = make_ligo(50, rng2);
  ASSERT_EQ(a.task_count(), b.task_count());
  for (TaskId i = 0; i < a.task_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.task(i).cpu_seconds, b.task(i).cpu_seconds);
  }
}

class MakeWorkflowSizeTest
    : public ::testing::TestWithParam<std::tuple<AppType, std::size_t>> {};

TEST_P(MakeWorkflowSizeTest, ApproximatesRequestedTaskCount) {
  const auto [app, size] = GetParam();
  util::Rng rng(13);
  const Workflow wf = make_workflow(app, size, rng);
  EXPECT_TRUE(wf.is_acyclic());
  const double actual = static_cast<double>(wf.task_count());
  const double target = static_cast<double>(size);
  // Structural constraints allow some slack; stay within 50%.
  EXPECT_GT(actual, 0.5 * target);
  EXPECT_LT(actual, 1.6 * target + 12);
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAndSizes, MakeWorkflowSizeTest,
    ::testing::Combine(::testing::Values(AppType::kMontage, AppType::kLigo,
                                         AppType::kEpigenomics,
                                         AppType::kCyberShake,
                                         AppType::kPipeline),
                       ::testing::Values(std::size_t{20}, std::size_t{100},
                                         std::size_t{1000})));

TEST(GeneratorsTest, ToStringNames) {
  EXPECT_EQ(to_string(AppType::kMontage), "Montage");
  EXPECT_EQ(to_string(AppType::kLigo), "Ligo");
  EXPECT_EQ(to_string(AppType::kEpigenomics), "Epigenomics");
}

}  // namespace
}  // namespace deco::workflow
