#include "wlog/database.hpp"

#include <gtest/gtest.h>

#include "wlog/interp.hpp"
#include "wlog/program.hpp"

namespace deco::wlog {
namespace {

Database load(const char* source) {
  const auto r = parse_program(source);
  EXPECT_TRUE(r.ok()) << (r.error ? r.error->message : "");
  Database db;
  db.add_program(r.program);
  return db;
}

TEST(DatabaseIndexTest, BucketKeysDiscriminateConstants) {
  EXPECT_EQ(index_bucket_key(*make_atom("a")), "a~a");
  EXPECT_EQ(index_bucket_key(*make_int(3)), "i~3");
  EXPECT_TRUE(index_bucket_key(*make_var(7, "X")).empty());
  // Same atom text vs int text must not collide.
  EXPECT_NE(index_bucket_key(*make_atom("3")), index_bucket_key(*make_int(3)));
  // Int 3 and float 3.0 never unify and must not share a bucket.
  EXPECT_NE(index_bucket_key(*make_int(3)), index_bucket_key(*make_float(3.0)));
}

TEST(DatabaseIndexTest, CandidatesFilterByFirstArgument) {
  const Database db = load(R"(
    exetime(t0, v0, 1). exetime(t0, v1, 2).
    exetime(t1, v0, 3). exetime(t1, v1, 4).
  )");
  const Database::Pred* pred = db.pred("exetime", 3);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->clauses.size(), 4u);
  const auto* t0 = pred->candidates("a~t0");
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(*t0, (std::vector<std::uint32_t>{0, 1}));
  const auto* t1 = pred->candidates("a~t1");
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(*t1, (std::vector<std::uint32_t>{2, 3}));
  // Unknown constant: no clause can match except var-headed ones (none here).
  const auto* t9 = pred->candidates("a~t9");
  ASSERT_NE(t9, nullptr);
  EXPECT_TRUE(t9->empty());
  // Unbound first argument: scan everything.
  EXPECT_EQ(pred->candidates(std::string()), nullptr);
}

TEST(DatabaseIndexTest, VarHeadedClausesAppearInEveryBucket) {
  const Database db = load(R"(
    classify(1, one).
    classify(X, other).
    classify(2, two).
  )");
  const Database::Pred* pred = db.pred("classify", 2);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(*pred->candidates("i~1"), (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(*pred->candidates("i~2"), (std::vector<std::uint32_t>{1, 2}));
  // A constant with no dedicated bucket still sees the catch-all clause.
  EXPECT_EQ(*pred->candidates("i~9"), (std::vector<std::uint32_t>{1}));
}

TEST(DatabaseIndexTest, AssertRetractKeepIndexCoherent) {
  Database db = load("configs(t0, v0, 1).");
  db.retract_all("configs", 3);
  EXPECT_EQ(db.pred("configs", 3), nullptr);
  const auto parsed = parse_term("configs(t0, v1, 1)");
  ASSERT_TRUE(parsed.ok());
  db.add_fact(parsed.term);
  const Database::Pred* pred = db.pred("configs", 3);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(pred->clauses.size(), 1u);
  EXPECT_EQ(*pred->candidates("a~t0"), (std::vector<std::uint32_t>{0}));
}

TEST(DatabaseIndexTest, MarkUndoPeelsLayeredFacts) {
  Database db = load("exetime(t0, v0, 1.0).");
  const std::uint64_t v0 = db.version();
  const std::size_t mark = db.mark();
  db.add_fact(parse_term("exetime(t0, v0, 9.0)").term);
  db.add_fact(parse_term("exetime(t1, v0, 9.0)").term);
  db.add_fact(parse_term("extra(1)").term);
  EXPECT_EQ(db.clause_count(), 4u);
  EXPECT_NE(db.version(), v0);
  db.undo_to(mark);
  EXPECT_EQ(db.clause_count(), 1u);
  EXPECT_EQ(db.pred("extra", 1), nullptr);
  const Database::Pred* pred = db.pred("exetime", 3);
  ASSERT_NE(pred, nullptr);
  EXPECT_EQ(*pred->candidates("a~t0"), (std::vector<std::uint32_t>{0}));
  EXPECT_TRUE(pred->candidates("a~t1")->empty());
  // Re-layering after an undo works (fresh seq stamps, coherent buckets).
  db.add_fact(parse_term("exetime(t1, v0, 5.0)").term);
  EXPECT_EQ(*db.pred("exetime", 3)->candidates("a~t1"),
            (std::vector<std::uint32_t>{1}));
  db.undo_to(mark);
  EXPECT_EQ(db.clause_count(), 1u);
}

TEST(DatabaseIndexTest, SeqStampsAreMonotonicAndUniqueAfterUndo) {
  Database db = load("f(a). f(b).");
  const std::size_t mark = db.mark();
  db.add_fact(parse_term("f(c)").term);
  const Database::Pred* pred = db.pred("f", 1);
  const std::uint64_t seq_c = pred->seqs.back();
  db.undo_to(mark);
  db.add_fact(parse_term("f(d)").term);
  pred = db.pred("f", 1);
  // The re-added clause must not reuse the undone clause's stamp.
  EXPECT_GT(pred->seqs.back(), seq_c);
  EXPECT_LT(pred->seqs[0], pred->seqs[1]);
}

TEST(DatabaseIndexTest, IndexedResolutionMatchesFullScan) {
  // Same program, queried with bound and unbound first arguments; the index
  // must not change the solution set or order.
  const Database db = load(R"(
    edge(a, b). edge(b, c). edge(a, c). edge(c, d).
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- edge(X, Z), reach(Z, Y).
  )");
  Interpreter interp(db);
  const auto bound = interp.query("reach(a, Y)", 32);
  ASSERT_EQ(bound.size(), 5u);
  EXPECT_TRUE((*bound[0].find("Y"))->is_atom("b"));
  EXPECT_TRUE((*bound[1].find("Y"))->is_atom("c"));
  const auto all = interp.query("reach(X, d)", 32);
  EXPECT_EQ(all.size(), 4u);
  EXPECT_FALSE(interp.holds("reach(d, X)"));
}

}  // namespace
}  // namespace deco::wlog
