#include "wlog/term.hpp"

#include <gtest/gtest.h>

namespace deco::wlog {
namespace {

TEST(TermTest, MakersProduceExpectedKinds) {
  EXPECT_EQ(make_atom("a")->kind, TermKind::kAtom);
  EXPECT_EQ(make_int(1)->kind, TermKind::kInt);
  EXPECT_EQ(make_float(1.5)->kind, TermKind::kFloat);
  EXPECT_EQ(make_var(1)->kind, TermKind::kVar);
  EXPECT_EQ(make_compound("f", {make_int(1)})->kind, TermKind::kCompound);
}

TEST(TermTest, CompoundWithNoArgsIsAtom) {
  EXPECT_EQ(make_compound("f", {})->kind, TermKind::kAtom);
}

TEST(TermTest, MakeNumberChoosesIntForWholeValues) {
  EXPECT_EQ(make_number(3.0)->kind, TermKind::kInt);
  EXPECT_EQ(make_number(3.5)->kind, TermKind::kFloat);
}

TEST(TermTest, ListConstruction) {
  const TermPtr list = make_list({make_int(1), make_int(2)});
  EXPECT_TRUE(list->is_cons());
  Bindings b;
  const auto elems = list_elements(list, b);
  ASSERT_TRUE(elems.has_value());
  ASSERT_EQ(elems->size(), 2u);
  EXPECT_EQ((*elems)[0]->ival, 1);
}

TEST(TermTest, ImproperListDetected) {
  const TermPtr improper = make_compound(".", {make_int(1), make_int(2)});
  Bindings b;
  EXPECT_FALSE(list_elements(improper, b).has_value());
}

TEST(UnifyTest, AtomsUnifyByName) {
  Bindings b;
  EXPECT_TRUE(unify(make_atom("x"), make_atom("x"), b));
  EXPECT_FALSE(unify(make_atom("x"), make_atom("y"), b));
}

TEST(UnifyTest, VarBindsToTerm) {
  Bindings b;
  const TermPtr v = make_var(1, "X");
  EXPECT_TRUE(unify(v, make_int(7), b));
  EXPECT_EQ(b.resolve(v)->ival, 7);
}

TEST(UnifyTest, TransitiveVarChains) {
  Bindings b;
  const TermPtr x = make_var(1, "X");
  const TermPtr y = make_var(2, "Y");
  EXPECT_TRUE(unify(x, y, b));
  EXPECT_TRUE(unify(y, make_atom("z"), b));
  EXPECT_TRUE(b.resolve(x)->is_atom("z"));
}

TEST(UnifyTest, CompoundStructural) {
  Bindings b;
  const TermPtr t1 = make_compound("f", {make_var(1, "X"), make_int(2)});
  const TermPtr t2 = make_compound("f", {make_atom("a"), make_int(2)});
  EXPECT_TRUE(unify(t1, t2, b));
  EXPECT_TRUE(b.resolve(make_var(1))->is_atom("a"));
}

TEST(UnifyTest, ArityMismatchFails) {
  Bindings b;
  EXPECT_FALSE(unify(make_compound("f", {make_int(1)}),
                     make_compound("f", {make_int(1), make_int(2)}), b));
}

TEST(UnifyTest, IntAndFloatDoNotUnify) {
  Bindings b;
  EXPECT_FALSE(unify(make_int(3), make_float(3.0), b));
}

TEST(UnifyTest, TrailUndoRestoresState) {
  Bindings b;
  const TermPtr v = make_var(1, "X");
  const std::size_t mark = b.mark();
  EXPECT_TRUE(unify(v, make_int(1), b));
  EXPECT_TRUE(b.bound(1));
  b.undo_to(mark);
  EXPECT_FALSE(b.bound(1));
}

TEST(UnifyTest, SameVarUnifiesWithItself) {
  Bindings b;
  const TermPtr v = make_var(1, "X");
  EXPECT_TRUE(unify(v, v, b));
  EXPECT_FALSE(b.bound(1));  // no self-binding loop
}

TEST(TermCompareTest, StandardOrder) {
  Bindings b;
  EXPECT_LT(term_compare(make_var(1), make_int(0), b), 0);
  EXPECT_LT(term_compare(make_int(5), make_atom("a"), b), 0);
  EXPECT_LT(term_compare(make_atom("z"), make_compound("f", {make_int(1)}), b),
            0);
  EXPECT_EQ(term_compare(make_atom("a"), make_atom("a"), b), 0);
  EXPECT_GT(term_compare(make_atom("b"), make_atom("a"), b), 0);
}

TEST(TermCompareTest, NumbersCompareByValue) {
  Bindings b;
  EXPECT_LT(term_compare(make_int(1), make_float(1.5), b), 0);
  EXPECT_EQ(term_compare(make_int(2), make_float(2.0), b), 0);
}

TEST(RenameTest, FreshVariablesConsistent) {
  Bindings b;
  std::unordered_map<std::int64_t, TermPtr> mapping;
  const TermPtr t =
      make_compound("f", {make_var(1, "X"), make_var(1, "X"), make_var(2, "Y")});
  const TermPtr r = rename(t, b, mapping);
  // Same source var maps to the same fresh var; distinct vars stay distinct.
  EXPECT_EQ(r->args[0]->ival, r->args[1]->ival);
  EXPECT_NE(r->args[0]->ival, r->args[2]->ival);
  EXPECT_NE(r->args[0]->ival, 1);
}

TEST(ToStringTest, PrintsReadableTerms) {
  EXPECT_EQ(to_string(make_compound("f", {make_int(1), make_atom("a")})),
            "f(1,a)");
  EXPECT_EQ(to_string(make_list({make_int(1), make_int(2)})), "[1,2]");
  EXPECT_EQ(to_string(kNil), "[]");
}

TEST(DeepResolveTest, SubstitutesNestedBindings) {
  Bindings b;
  const TermPtr v = make_var(1, "X");
  unify(v, make_int(9), b);
  const TermPtr t = make_compound("f", {make_compound("g", {v})});
  const TermPtr r = b.deep_resolve(t);
  EXPECT_EQ(r->args[0]->args[0]->ival, 9);
}

}  // namespace
}  // namespace deco::wlog
