#include "wlog/program.hpp"

#include <gtest/gtest.h>

namespace deco::wlog {
namespace {

TEST(ParserTest, ParsesFact) {
  const auto r = parse_program("task(t1).");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.program.clauses.size(), 1u);
  EXPECT_EQ(to_string(r.program.clauses[0].head), "task(t1)");
  EXPECT_TRUE(r.program.clauses[0].body.empty());
}

TEST(ParserTest, ParsesRuleWithConjunction) {
  const auto r = parse_program("p(X) :- q(X), r(X), s(X).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.clauses.size(), 1u);
  EXPECT_EQ(r.program.clauses[0].body.size(), 3u);
}

TEST(ParserTest, SharedVariablesHaveSameId) {
  const auto r = parse_program("p(X, X, Y).");
  ASSERT_TRUE(r.ok());
  const auto& head = r.program.clauses[0].head;
  EXPECT_EQ(head->args[0]->ival, head->args[1]->ival);
  EXPECT_NE(head->args[0]->ival, head->args[2]->ival);
}

TEST(ParserTest, VariablesScopedPerClause) {
  const auto r = parse_program("p(X). q(X).");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.program.clauses[0].head->args[0]->ival,
            r.program.clauses[1].head->args[0]->ival);
}

TEST(ParserTest, AnonymousVarsAlwaysFresh) {
  const auto r = parse_program("p(_, _).");
  ASSERT_TRUE(r.ok());
  const auto& head = r.program.clauses[0].head;
  EXPECT_NE(head->args[0]->ival, head->args[1]->ival);
}

TEST(ParserTest, ArithmeticPrecedence) {
  const auto r = parse_program("p(X) :- X is 1 + 2 * 3.");
  ASSERT_TRUE(r.ok());
  const auto& is_goal = r.program.clauses[0].body[0];
  EXPECT_EQ(to_string(is_goal), "is(X,+(1,*(2,3)))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const auto r = parse_program("p(X) :- X is (1 + 2) * 3.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(r.program.clauses[0].body[0]), "is(X,*(+(1,2),3))");
}

TEST(ParserTest, ComparisonOperators) {
  const auto r = parse_program("p :- 1 < 2, 3 =< 4, 5 =:= 5, X == Y.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.clauses[0].body.size(), 4u);
  EXPECT_EQ(r.program.clauses[0].body[0]->text, "<");
  EXPECT_EQ(r.program.clauses[0].body[3]->text, "==");
}

TEST(ParserTest, Lists) {
  const auto r = parse_program("p([1, 2 | T]).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(to_string(r.program.clauses[0].head), "p([1,2|T])");
}

TEST(ParserTest, CutAndNegation) {
  const auto r = parse_program("p(X) :- q(X), !, \\+ r(X).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.clauses[0].body[1]->text, "!");
  EXPECT_EQ(r.program.clauses[0].body[2]->text, "\\+");
}

TEST(ParserTest, NegativeNumbers) {
  const auto r = parse_program("p(-3, -2.5).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.clauses[0].head->args[0]->ival, -3);
  EXPECT_DOUBLE_EQ(r.program.clauses[0].head->args[1]->fval, -2.5);
}

TEST(ParserTest, ImportDirective) {
  const auto r = parse_program("import(amazonec2).\nimport(montage).");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.program.imports.size(), 2u);
  EXPECT_EQ(r.program.imports[0], "amazonec2");
  EXPECT_EQ(r.program.imports[1], "montage");
}

TEST(ParserTest, GoalDirectiveMinimize) {
  const auto r = parse_program("goal minimize Ct in totalcost(Ct).");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.program.goal.has_value());
  EXPECT_TRUE(r.program.goal->minimize);
  EXPECT_EQ(to_string(r.program.goal->query), "totalcost(Ct)");
  // The goal variable is the one inside the query.
  EXPECT_EQ(r.program.goal->variable->ival,
            r.program.goal->query->args[0]->ival);
}

TEST(ParserTest, GoalDirectiveMaximize) {
  const auto r = parse_program("goal maximize S in score(S).");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.program.goal.has_value());
  EXPECT_FALSE(r.program.goal->minimize);
}

TEST(ParserTest, DeadlineConstraint) {
  const auto r = parse_program(
      "cons T in maxtime(Path,T) satisfies deadline(95%, 10h).");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.program.constraints.size(), 1u);
  const auto& c = r.program.constraints[0];
  EXPECT_EQ(c.kind, ConstraintSpec::Kind::kDeadline);
  EXPECT_DOUBLE_EQ(c.quantile, 0.95);
  EXPECT_DOUBLE_EQ(c.bound, 36000.0);
  EXPECT_EQ(to_string(c.query), "maxtime(Path,T)");
}

TEST(ParserTest, BudgetConstraint) {
  const auto r =
      parse_program("cons C in totalcost(C) satisfies budget(90%, 50).");
  ASSERT_TRUE(r.ok());
  const auto& c = r.program.constraints[0];
  EXPECT_EQ(c.kind, ConstraintSpec::Kind::kBudget);
  EXPECT_DOUBLE_EQ(c.quantile, 0.90);
  EXPECT_DOUBLE_EQ(c.bound, 50.0);
}

TEST(ParserTest, PercentileAsPlainNumber) {
  const auto r =
      parse_program("cons T in t(T) satisfies deadline(0.99, 100).");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.program.constraints[0].quantile, 0.99);
}

TEST(ParserTest, CompareConstraint) {
  const auto r = parse_program("cons T in maxtime(P,T) satisfies T =< 3600.");
  ASSERT_TRUE(r.ok()) << r.error->message;
  const auto& c = r.program.constraints[0];
  EXPECT_EQ(c.kind, ConstraintSpec::Kind::kCompare);
  EXPECT_EQ(c.cmp_op, "=<");
  EXPECT_EQ(to_string(c.cmp_rhs), "3600");
}

TEST(ParserTest, HoldsConstraint) {
  const auto r = parse_program("cons reachable(root, tail).");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.program.constraints[0].kind, ConstraintSpec::Kind::kHolds);
}

TEST(ParserTest, VarDirective) {
  const auto r =
      parse_program("var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.program.vars.size(), 1u);
  EXPECT_EQ(to_string(r.program.vars[0].template_term),
            "configs(Tid,Vid,Con)");
  ASSERT_EQ(r.program.vars[0].generators.size(), 2u);
  EXPECT_EQ(to_string(r.program.vars[0].generators[0]), "task(Tid)");
  EXPECT_EQ(to_string(r.program.vars[0].generators[1]), "vm(Vid)");
}

TEST(ParserTest, EnabledAstar) {
  const auto r = parse_program("enabled(astar).");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.program.astar_enabled);
}

TEST(ParserTest, FullExample1Program) {
  // The workflow-scheduling program of Example 1, in WLog concrete syntax.
  const char* source = R"(
    import(amazonec2).
    import(montage).
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline(95%, 10h).
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

    /* calculate the time on the edge from X to Y */
    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
    totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
  )";
  const auto r = parse_program(source);
  ASSERT_TRUE(r.ok()) << r.error->message;
  EXPECT_EQ(r.program.imports.size(), 2u);
  EXPECT_TRUE(r.program.goal.has_value());
  EXPECT_EQ(r.program.constraints.size(), 1u);
  EXPECT_EQ(r.program.vars.size(), 1u);
  EXPECT_EQ(r.program.clauses.size(), 5u);
}

TEST(ParserTest, ErrorsReportLine) {
  const auto r = parse_program("ok(1).\nbroken(.");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
}

TEST(ParserTest, MissingPeriodIsError) {
  EXPECT_FALSE(parse_program("p(X) :- q(X)").ok());
}

TEST(ParserTest, NumberAsClauseHeadIsError) {
  EXPECT_FALSE(parse_program("42.").ok());
}

TEST(ParseTermTest, SingleTermWithVariables) {
  const auto r = parse_term("cost(Tid, Vid, C)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.variables.size(), 3u);
  EXPECT_EQ(to_string(r.term), "cost(Tid,Vid,C)");
}

}  // namespace
}  // namespace deco::wlog
