// Differential harness: the bytecode VM (vm.hpp) against the tree-walking
// interpreter (interp.hpp) on every program shape the test suite exercises,
// plus randomized clause databases.  The two engines must agree on solution
// sets, solution order, rendered variable names, cut behaviour, and budget
// aborts — the interpreter is the oracle and stays bit-identical to its
// pre-VM behaviour.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "util/budget.hpp"
#include "wlog/interp.hpp"
#include "wlog/program.hpp"
#include "wlog/vm.hpp"

namespace deco::wlog {
namespace {

// DECO_CHAOS>=1 amplifies the randomized sweep (more databases, more
// queries), matching the chaos knob used by the property suite.
int chaos_factor() {
  const char* env = std::getenv("DECO_CHAOS");
  if (env == nullptr) return 1;
  const int v = std::atoi(env);
  return v > 1 ? v : 1;
}

Database load(const std::string& source) {
  const auto r = parse_program(source);
  EXPECT_TRUE(r.ok()) << (r.error ? r.error->message : "");
  Database db;
  db.add_program(r.program);
  return db;
}

// Renders a solution list with anonymous-variable ids normalized in
// first-occurrence order ("_G1234" -> "_N0"), so fresh-id allocation
// differences between the engines don't show through.  Named variables are
// rendered by name and must match exactly.
std::string render(const std::vector<Solution>& solutions) {
  std::ostringstream raw;
  for (const Solution& s : solutions) {
    raw << "{";
    for (const auto& [name, term] : s.bindings) {
      raw << name << "=" << to_string(term) << ";";
    }
    raw << "}\n";
  }
  const std::string text = raw.str();
  std::string out;
  out.reserve(text.size());
  std::unordered_map<std::string, std::size_t> ids;
  for (std::size_t i = 0; i < text.size();) {
    if (text.compare(i, 2, "_G") == 0) {
      std::size_t j = i + 2;
      while (j < text.size() && std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j > i + 2) {
        const auto [it, _] = ids.try_emplace(text.substr(i, j - i), ids.size());
        out += "_N" + std::to_string(it->second);
        i = j;
        continue;
      }
    }
    out += text[i++];
  }
  return out;
}

// The core assertion: identical rendered solutions, in the same order, from
// both engines.
void expect_same(const Database& db, const std::string& query,
                 std::size_t max_solutions = 64) {
  Interpreter interp(db);
  Vm vm(db);
  const std::string a = render(interp.query(query, max_solutions));
  const std::string b = render(vm.query(query, max_solutions));
  EXPECT_EQ(a, b) << "query: " << query;
}

void expect_same_source(const std::string& source, const std::string& query,
                        std::size_t max_solutions = 64) {
  const Database db = load(source);
  expect_same(db, query, max_solutions);
}

TEST(VmDifferentialTest, FactsAndRules) {
  const std::string src = R"(
    task(a). task(b). task(c).
    parent(tom, bob). parent(bob, ann).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
  )";
  expect_same_source(src, "task(X)");
  expect_same_source(src, "task(b)");
  expect_same_source(src, "task(z)");
  expect_same_source(src, "grandparent(tom, Z)");
  expect_same_source(src, "grandparent(X, Y)");
  expect_same_source(src, "grandparent(bob, tom)");
}

TEST(VmDifferentialTest, RecursionAndPaths) {
  const std::string src = R"(
    edge(a, b). edge(b, c). edge(c, d). edge(a, c).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )";
  expect_same_source(src, "path(a, d)");
  expect_same_source(src, "path(a, X)");
  expect_same_source(src, "path(X, Y)");
  expect_same_source(src, "path(d, a)");
}

TEST(VmDifferentialTest, ArithmeticAndComparison) {
  const std::string src = R"(
    f(X, Y) :- Y is X * 2 + 1.
    g(A,B,C,D) :- A is min(3,5), B is max(3,5), C is abs(-4), D is 7 mod 3.
    h(Y) :- Y is 1 / 0.
  )";
  expect_same_source(src, "f(10, Y)");
  expect_same_source(src, "g(A,B,C,D)");
  expect_same_source(src, "h(Y)");
  expect_same_source(src, "X is 3.5 + 1");
  expect_same_source(src, "1 < 2, 2 =< 2, 3 >= 2, 2 + 2 =:= 4, 2 =\\= 3");
  expect_same_source(src, "2 < 1");
}

TEST(VmDifferentialTest, UnificationBuiltins) {
  const std::string src = "dummy.";
  expect_same_source(src, "X = f(1), X == f(1)");
  expect_same_source(src, "f(X) = f(3), X == 3");
  expect_same_source(src, "a \\= b");
  expect_same_source(src, "a \\= a");
  expect_same_source(src, "X \\== Y");
  expect_same_source(src, "f(X, X) = f(1, Y)");
  expect_same_source(src, "X = Y, Y = 3, X == 3");
}

TEST(VmDifferentialTest, RenderedVariableNamesMatch) {
  // An unbound head variable leaks into the solution; both engines must
  // render it under the same (clause-side) name.
  const std::string src = "pair(X, Y) :- X = 1.";
  expect_same_source(src, "pair(A, B)");
  expect_same_source(src, "pair(A, A)");
}

TEST(VmDifferentialTest, NegationAndIfThenElse) {
  const std::string src = R"(
    task(a).
    classify(X, small) :- X < 10, !.
    classify(_, large).
    pick(X, Y) :- (X < 5 -> Y = low ; Y = high).
  )";
  expect_same_source(src, "\\+ task(z)");
  expect_same_source(src, "\\+ task(a)");
  expect_same_source(src, "not(task(z))");
  expect_same_source(src, "classify(5, C)");
  expect_same_source(src, "classify(50, C)");
  expect_same_source(src, "pick(3, Y)");
  expect_same_source(src, "pick(7, Y)");
  expect_same_source(src, "(task(X) -> Y = X ; Y = none)");
  expect_same_source(src, "(task(z) -> Y = found ; Y = none)");
  expect_same_source(src, "forall(task(X), atom(X))");
  expect_same_source(src, "forall(task(X), number(X))");
}

TEST(VmDifferentialTest, CutSemantics) {
  const std::string src = R"(
    n(1). n(2). n(3).
    first(X) :- member(X, [1,2,3]), !.
    one(X) :- n(X), !.
    branchcut(X) :- (n(X), ! ; X = fallback).
    afterdisj(X, Y) :- (X = a ; X = b), Y = t.
  )";
  expect_same_source(src, "first(X)");
  expect_same_source(src, "one(X)");
  // Cut inside a disjunction branch is local to the disjunction in this
  // dialect: the clause still enumerates nothing past the branch commit.
  expect_same_source(src, "branchcut(X)");
  expect_same_source(src, "afterdisj(X, Y)");
  expect_same_source(src, "n(X), !");
  expect_same_source(src, "(n(X), ! ; X = z)");
  expect_same_source(src, "((n(X), !) -> Y = X ; Y = none)");
}

TEST(VmDifferentialTest, AllSolutionsBuiltins) {
  const std::string src = R"(
    n(3). n(1). n(3). n(2).
    c(1.5). c(2.5). c(3.0).
  )";
  expect_same_source(src, "findall(X, n(X), L)");
  expect_same_source(src, "findall(X, missing(X), L)");
  expect_same_source(src, "setof(X, n(X), L)");
  expect_same_source(src, "setof(X, missing(X), L)");
  expect_same_source(src, "bagof(X, n(X), L)");
  expect_same_source(src, "bagof(X, missing(X), L)");
  expect_same_source(src, "findall(X, c(X), L), sum(L, S)");
  expect_same_source(src, "aggregate_all(count, n(X), N)");
  expect_same_source(src, "aggregate_all(sum(X), n(X), S)");
  expect_same_source(src, "aggregate_all(max(X), n(X), M)");
  expect_same_source(src, "aggregate_all(min(X), n(X), M)");
  expect_same_source(src, "aggregate_all(bag(X), n(X), L)");
  expect_same_source(src, "findall(X, (n(X), !), L)");
  expect_same_source(src, "findall([X,Y], (n(X), c(Y)), L)");
}

TEST(VmDifferentialTest, ListBuiltins) {
  const std::string src = "dummy.";
  expect_same_source(src, "member(X, [a,b,c])");
  expect_same_source(src, "member(b, [a,b,c])");
  expect_same_source(src, "member(z, [a,b,c])");
  expect_same_source(src, "append([1,2], [3], L)");
  expect_same_source(src, "append(A, B, [1,2])");
  expect_same_source(src, "length([a,b,c,d], N)");
  expect_same_source(src, "nth0(1, [a,b,c], E)");
  expect_same_source(src, "nth0(I, [a,b,c], E)");
  expect_same_source(src, "max([3, 9, 2], M)");
  expect_same_source(src, "min([3, 9, 2], M)");
  expect_same_source(src, "max([[a,3],[b,9],[c,2]], [P,T])");
  expect_same_source(src, "min([[a,3],[b,9],[c,2]], [P,T])");
  expect_same_source(src, "msort([3,1,2,1], L)");
  expect_same_source(src, "sort([3,1,2,1], L)");
  expect_same_source(src, "reverse([1,2,3], L)");
  expect_same_source(src, "last([1,2,3], X)");
  expect_same_source(src, "sum_list([1,2,3], S)");
  expect_same_source(src, "max_list([1,9,3], S)");
  expect_same_source(src, "min_list([4,2,3], S)");
  expect_same_source(src, "numlist(1, 5, L)");
  expect_same_source(src, "between(1, 5, X)");
  expect_same_source(src, "succ(3, X)");
  expect_same_source(src, "succ(X, 3)");
  expect_same_source(src, "atom_concat(foo, bar, X)");
  expect_same_source(src, "atom_length(hello, N)");
  expect_same_source(src, "copy_term(f(X, X, Y), C)");
  expect_same_source(src, "atom(foo), integer(3), float(3.5), is_list([1])");
}

TEST(VmDifferentialTest, PaperCostAndCriticalPath) {
  const std::string src = R"(
    price(v1, 0.044). price(v2, 0.088).
    exetime(t1, v1, 100). exetime(t1, v2, 55).
    configs(t1, v1, 1).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
  )";
  expect_same_source(src, "cost(t1, v1, C)");
  expect_same_source(src, "cost(t1, V, C)");
  expect_same_source(src, "cost(T, V, C)");

  const std::string diamond = R"(
    edge(root, a). edge(root, b). edge(a, tail). edge(b, tail).
    exetime(root, v1, 0). exetime(a, v1, 10).
    exetime(b, v1, 20). exetime(tail, v1, 0).
    configs(root, v1, 1). configs(a, v1, 1).
    configs(b, v1, 1). configs(tail, v1, 1).
    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
    totalcost(Ct) :- findall(C, (exetime(T,V,E), configs(T,V,N),
        C is E*0.001*N), Bag), sum(Bag, Ct).
  )";
  expect_same_source(diamond, "maxtime(P, T)");
  expect_same_source(diamond, "totalcost(C)");
  expect_same_source(diamond, "path(root, tail, Z, T)");
}

TEST(VmDifferentialTest, BindingOrderIsFirstOccurrence) {
  // Solution::bindings must list variables in first-occurrence order from
  // both engines (satellite: Solution::find/number order regression).
  const Database db = load("t(1, 2, 3).");
  Interpreter interp(db);
  Vm vm(db);
  const auto si = interp.query("t(Zeta, Alpha, Mid)");
  const auto sv = vm.query("t(Zeta, Alpha, Mid)");
  ASSERT_EQ(si.size(), 1u);
  ASSERT_EQ(sv.size(), 1u);
  ASSERT_EQ(si[0].bindings.size(), 3u);
  ASSERT_EQ(sv[0].bindings.size(), 3u);
  const std::vector<std::string> expected = {"Zeta", "Alpha", "Mid"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(si[0].bindings[i].first, expected[i]);
    EXPECT_EQ(sv[0].bindings[i].first, expected[i]);
  }
  EXPECT_DOUBLE_EQ(si[0].number("Zeta"), sv[0].number("Zeta"));
  EXPECT_DOUBLE_EQ(si[0].number("Mid"), sv[0].number("Mid"));
}

TEST(VmDifferentialTest, StepLimitStopsBothEngines) {
  const Database db = load("loop :- loop.");
  Interpreter interp(db);
  interp.set_step_limit(10000);
  Vm vm(db);
  vm.set_step_limit(10000);
  EXPECT_FALSE(interp.holds("loop"));
  EXPECT_FALSE(vm.holds("loop"));
}

TEST(VmDifferentialTest, BudgetAbortThrowsFromBothEngines) {
  // Shallow but long-running: backtracking over between/3 racks up steps
  // without hitting the interpreter's recursion-depth cap, so the budget
  // checkpoint (every ~512 steps) is what fires in both engines.
  const Database db = load("dummy.");
  util::CancelToken cancel;
  cancel.cancel();
  util::SolveBudget budget_spec;
  budget_spec.cancel = &cancel;
  util::BudgetTracker budget(budget_spec);

  Interpreter interp(db);
  interp.set_budget(&budget);
  EXPECT_THROW(interp.holds("between(1, 1000000, X), X < 0"),
               util::BudgetExhaustedError);

  Vm vm(db);
  vm.set_budget(&budget);
  EXPECT_THROW(vm.holds("between(1, 1000000, X), X < 0"),
               util::BudgetExhaustedError);
}

TEST(VmDifferentialTest, AssertRetractRecompilesCoherently) {
  // The solver's hot loop: rebind configs/3 between evaluations.  The VM's
  // compiled cache must track the mutations (append fast-path on layered
  // asserts, full recompile after retract).
  Database db = load(R"(
    price(v1, 0.1). price(v2, 0.2).
    exetime(t1, v1, 10). exetime(t1, v2, 5).
    cost(T,V,C) :- price(V,U), exetime(T,V,E), configs(T,V,N), C is U*E*N.
  )");
  Vm vm(db);
  Interpreter interp(db);

  const auto check = [&](const std::string& q) {
    EXPECT_EQ(render(interp.query(q)), render(vm.query(q))) << q;
  };

  for (int round = 0; round < 4; ++round) {
    const std::size_t mark = db.mark();
    db.add_fact(make_compound(
        "configs", {make_atom("t1"), make_atom(round % 2 == 0 ? "v1" : "v2"),
                    make_int(1 + round)}));
    check("cost(t1, V, C)");
    check("configs(T, V, N)");
    db.undo_to(mark);
    check("cost(t1, V, C)");
  }
  db.retract_all("configs", 3);
  db.add_fact(make_compound(
      "configs", {make_atom("t1"), make_atom("v2"), make_int(3)}));
  check("cost(t1, V, C)");
  EXPECT_GT(vm.stats().compiled_clauses, 0u);
}

TEST(VmDifferentialTest, RandomizedDatabases) {
  // Random fact databases + fixed rule library, queried with a mix of bound
  // and unbound arguments to stress indexing, backtracking, and cut paths.
  std::mt19937 rng(20260808);
  const int databases = 6 * chaos_factor();
  const char* consts[] = {"a", "b", "c", "d", "e"};
  for (int round = 0; round < databases; ++round) {
    std::ostringstream src;
    const int edges = 4 + static_cast<int>(rng() % 10);
    for (int i = 0; i < edges; ++i) {
      src << "edge(" << consts[rng() % 5] << ", " << consts[rng() % 5]
          << ").\n";
    }
    const int weights = 3 + static_cast<int>(rng() % 5);
    for (int i = 0; i < weights; ++i) {
      src << "weight(" << consts[rng() % 5] << ", " << (rng() % 50) << ").\n";
    }
    src << R"(
      reach(X, Y, 1) :- edge(X, Y).
      reach(X, Y, N) :- N > 1, M is N - 1, edge(X, Z), reach(Z, Y, M).
      heavy(X) :- weight(X, W), W > 25, !.
      sumw(S) :- findall(W, weight(X, W), L), sum(L, S).
      best(X, W) :- setof([A, B], weight(A, B), Set), max(Set, [X, W]).
    )";
    const Database db = load(src.str());
    for (const char* c : consts) {
      expect_same(db, std::string("edge(") + c + ", Y)");
      expect_same(db, std::string("reach(") + c + ", Y, 3)", 128);
      expect_same(db, std::string("heavy(") + c + ")");
    }
    expect_same(db, "edge(X, Y)", 128);
    expect_same(db, "sumw(S)");
    expect_same(db, "best(X, W)");
    expect_same(db, "\\+ edge(q, r)");
    expect_same(db, "findall([X,Y], edge(X, Y), L)");
  }
}

}  // namespace
}  // namespace deco::wlog
