// Robustness: malformed and adversarial inputs must produce errors, never
// crashes, hangs or silent acceptance of garbage.
#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "wlog/interp.hpp"
#include "wlog/lexer.hpp"
#include "wlog/program.hpp"
#include "workflow/dax.hpp"

namespace deco {
namespace {

TEST(WlogFuzzTest, MalformedProgramsReportErrors) {
  const char* corpus[] = {
      "",                           // empty is fine (no clauses)
      ".",                          // bare terminator
      "p(",                         // unterminated args
      "p(X",                        // unterminated args
      "p(X))",                      // extra paren
      ":- foo.",                    // missing head
      "p :- .",                     // empty body
      "p :- q r.",                  // missing comma
      "goal minimize.",             // truncated directive
      "goal minimize X totalcost(X).",  // missing 'in'
      "cons X in q(X) satisfies.",  // truncated satisfies
      "var t(X) forall.",           // truncated forall
      "import().",                  // empty import
      "import(3).",                 // non-atom import
      "enabled(warp).",             // unknown enabled target
      "p(X) :- X is 1 +.",          // dangling operator
      "p([1,2.",                    // unterminated list
      "p('never closed).",          // unterminated quote
      "/* never closed",            // unterminated comment
      "42.",                        // number as clause head
      "p(X) :- q(X)",               // missing final period
      "p(X X).",                    // missing comma in args
      "deadline(95%%, 10h).",       // double percent
  };
  for (const char* source : corpus) {
    const auto result = wlog::parse_program(source);
    // Either it parses into something structurally sane, or it reports an
    // error with a line number.  It must never crash.
    if (!result.ok()) {
      EXPECT_FALSE(result.error->message.empty()) << source;
    }
  }
}

TEST(WlogFuzzTest, RandomBytesNeverCrashLexerOrParser) {
  util::Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    std::string input;
    const std::size_t len = rng.below(120);
    for (std::size_t i = 0; i < len; ++i) {
      // Printable-ish ASCII plus some newlines.
      const auto c = static_cast<char>(32 + rng.below(96));
      input.push_back(rng.chance(0.05) ? '\n' : c);
    }
    const auto tokens = wlog::tokenize(input);
    EXPECT_FALSE(tokens.empty());
    (void)wlog::parse_program(input);  // must not crash
  }
}

TEST(WlogFuzzTest, RandomProgramShapedInputs) {
  // Random sequences of plausible tokens stress the parser's recovery.
  util::Rng rng(101);
  const char* words[] = {"p", "q(X)", ":-", ",", ".", "(", ")", "[", "]",
                         "1", "2.5", "95%", "10h", "X", "_", "is", "+",
                         "goal", "cons", "var", "forall", "and", "minimize",
                         "in", "satisfies", "deadline", "!", ";", "->"};
  for (int round = 0; round < 300; ++round) {
    std::string input;
    const std::size_t len = 1 + rng.below(25);
    for (std::size_t i = 0; i < len; ++i) {
      input += words[rng.below(std::size(words))];
      input += ' ';
    }
    (void)wlog::parse_program(input);  // must not crash or hang
  }
}

TEST(WlogFuzzTest, DeepNestingIsBounded) {
  // Deeply nested terms should parse (or fail) without smashing the stack.
  std::string deep = "p(";
  for (int i = 0; i < 2000; ++i) deep += "f(";
  deep += "x";
  for (int i = 0; i < 2000; ++i) deep += ")";
  deep += ").";
  (void)wlog::parse_program(deep);
}

TEST(WlogFuzzTest, QueriesOnGarbageDatabaseAreSafe) {
  const auto parsed = wlog::parse_program("p(1). p(2). q(X) :- p(X), p(Y).");
  ASSERT_TRUE(parsed.ok());
  wlog::Database db;
  db.add_program(parsed.program);
  wlog::Interpreter interp(db);
  interp.set_step_limit(50'000);
  // Queries with wrong arities, unknown predicates, unbound arithmetic.
  EXPECT_FALSE(interp.holds("p(1, 2, 3)"));
  EXPECT_FALSE(interp.holds("unknown(X)"));
  EXPECT_FALSE(interp.holds("X is Y + 1"));
  EXPECT_FALSE(interp.holds("1 < foo"));
  EXPECT_FALSE(interp.holds("sum([a,b], S)"));
  EXPECT_FALSE(interp.holds("member(X, not_a_list)"));
}

TEST(DaxFuzzTest, RandomXmlNeverCrashes) {
  util::Rng rng(103);
  const char* fragments[] = {"<adag>", "</adag>", "<job ", "id=\"A\"",
                             "name=\"p\"", ">", "/>", "<uses ", "file=\"f\"",
                             "link=\"input\"", "size=\"10\"", "<child ",
                             "ref=\"A\"", "<parent ", "&amp;", "<!--", "-->",
                             "<![CDATA[", "]]>", "text"};
  for (int round = 0; round < 300; ++round) {
    std::string input;
    const std::size_t len = 1 + rng.below(30);
    for (std::size_t i = 0; i < len; ++i) {
      input += fragments[rng.below(std::size(fragments))];
    }
    (void)workflow::parse_dax(input);  // must not crash
  }
}

}  // namespace
}  // namespace deco
