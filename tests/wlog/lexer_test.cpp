#include "wlog/lexer.hpp"

#include <gtest/gtest.h>

namespace deco::wlog {
namespace {

std::vector<Token> lex(std::string_view s) { return tokenize(s); }

TEST(LexerTest, AtomsAndVars) {
  const auto t = lex("foo Bar _baz");
  ASSERT_GE(t.size(), 4u);
  EXPECT_EQ(t[0].kind, TokenKind::kAtom);
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_EQ(t[1].kind, TokenKind::kVar);
  EXPECT_EQ(t[1].text, "Bar");
  EXPECT_EQ(t[2].kind, TokenKind::kVar);
  EXPECT_EQ(t[2].text, "_baz");
}

TEST(LexerTest, Integers) {
  const auto t = lex("42");
  EXPECT_EQ(t[0].kind, TokenKind::kInt);
  EXPECT_EQ(t[0].ival, 42);
}

TEST(LexerTest, Floats) {
  const auto t = lex("3.14");
  EXPECT_EQ(t[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[0].fval, 3.14);
}

TEST(LexerTest, PercentLiteral) {
  // `95%` is the probabilistic-requirement literal: 0.95.
  const auto t = lex("deadline(95%,10)");
  ASSERT_GE(t.size(), 5u);
  EXPECT_EQ(t[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(t[2].fval, 0.95);
}

TEST(LexerTest, DurationLiterals) {
  const auto t = lex("10h 30m 45s 2d 500ms");
  EXPECT_DOUBLE_EQ(t[0].fval, 36000.0);
  EXPECT_DOUBLE_EQ(t[1].fval, 1800.0);
  EXPECT_EQ(t[2].kind, TokenKind::kInt);
  EXPECT_EQ(t[2].ival, 45);
  EXPECT_DOUBLE_EQ(t[3].fval, 172800.0);
  EXPECT_DOUBLE_EQ(t[4].fval, 0.5);
}

TEST(LexerTest, DurationNotConfusedWithIdentifier) {
  // `10meters` is the number 10 followed by the atom `meters`.
  const auto t = lex("10meters");
  EXPECT_EQ(t[0].kind, TokenKind::kInt);
  EXPECT_EQ(t[0].ival, 10);
  EXPECT_EQ(t[1].kind, TokenKind::kAtom);
  EXPECT_EQ(t[1].text, "meters");
}

TEST(LexerTest, LineComments) {
  const auto t = lex("a % this is a comment\nb");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[2].kind, TokenKind::kEnd);
}

TEST(LexerTest, BlockComments) {
  const auto t = lex("a /* multi\nline */ b");
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
}

TEST(LexerTest, QuotedAtoms) {
  const auto t = lex("'hello world'");
  EXPECT_EQ(t[0].kind, TokenKind::kAtom);
  EXPECT_EQ(t[0].text, "hello world");
}

TEST(LexerTest, OperatorsLongestMatch) {
  const auto t = lex(":- =< >= =:= =\\= \\== \\+ ==");
  EXPECT_EQ(t[0].text, ":-");
  EXPECT_EQ(t[1].text, "=<");
  EXPECT_EQ(t[2].text, ">=");
  EXPECT_EQ(t[3].text, "=:=");
  EXPECT_EQ(t[4].text, "=\\=");
  EXPECT_EQ(t[5].text, "\\==");
  EXPECT_EQ(t[6].text, "\\+");
  EXPECT_EQ(t[7].text, "==");
}

TEST(LexerTest, ClauseTerminator) {
  const auto t = lex("foo.");
  EXPECT_EQ(t[0].text, "foo");
  EXPECT_EQ(t[1].kind, TokenKind::kPunct);
  EXPECT_EQ(t[1].text, ".");
}

TEST(LexerTest, LineNumbersTracked) {
  const auto t = lex("a\nb\n\nc");
  EXPECT_EQ(t[0].line, 1u);
  EXPECT_EQ(t[1].line, 2u);
  EXPECT_EQ(t[2].line, 4u);
}

TEST(LexerTest, UnterminatedQuoteIsError) {
  const auto t = lex("'oops");
  EXPECT_EQ(t.back().kind, TokenKind::kError);
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  const auto t = lex("/* never closed");
  EXPECT_EQ(t.back().kind, TokenKind::kError);
}

}  // namespace
}  // namespace deco::wlog
