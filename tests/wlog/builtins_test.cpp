// Tests for the extended built-in library: disjunction, if-then-else,
// forall, sorting, list aggregates, aggregate_all and friends.
#include <gtest/gtest.h>

#include "wlog/interp.hpp"
#include "wlog/program.hpp"

namespace deco::wlog {
namespace {

Database load(const char* source) {
  const auto r = parse_program(source);
  EXPECT_TRUE(r.ok()) << (r.error ? r.error->message : "");
  Database db;
  db.add_program(r.program);
  return db;
}

TEST(DisjunctionTest, EitherBranchSucceeds) {
  const Database db = load("p(X) :- X = a ; X = b.");
  Interpreter interp(db);
  const auto s = interp.query("p(X)", 10);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE((*s[0].find("X"))->is_atom("a"));
  EXPECT_TRUE((*s[1].find("X"))->is_atom("b"));
}

TEST(DisjunctionTest, FailedLeftFallsThroughToRight) {
  const Database db = load("p(X) :- fail ; X = b.");
  Interpreter interp(db);
  const auto s = interp.query("p(X)", 10);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("X"))->is_atom("b"));
}

TEST(DisjunctionTest, NestedDisjunctionEnumeratesAll) {
  const Database db = load("p(X) :- X = 1 ; X = 2 ; X = 3.");
  Interpreter interp(db);
  EXPECT_EQ(interp.query("p(X)", 10).size(), 3u);
}

TEST(IfThenElseTest, ThenBranchWhenConditionHolds) {
  const Database db = load(R"(
    sign(X, pos) :- (X > 0 -> true ; fail).
    classify(X, R) :- (X > 0 -> R = pos ; R = nonpos).
  )");
  Interpreter interp(db);
  auto s = interp.query("classify(5, R)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("R"))->is_atom("pos"));
  s = interp.query("classify(-5, R)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("R"))->is_atom("nonpos"));
}

TEST(IfThenElseTest, CommitsToFirstConditionSolution) {
  const Database db = load(R"(
    n(1). n(2). n(3).
    first(R) :- (n(X) -> R = X ; R = none).
  )");
  Interpreter interp(db);
  const auto s = interp.query("first(R)", 10);
  ASSERT_EQ(s.size(), 1u);  // no backtracking into the condition
  EXPECT_DOUBLE_EQ(s[0].number("R"), 1.0);
}

TEST(IfThenElseTest, BareIfThenFailsWhenConditionFails) {
  const Database db = load("p :- (fail -> true).");
  Interpreter interp(db);
  EXPECT_FALSE(interp.holds("p"));
}

TEST(ForallTest, HoldsWhenActionCoversAllSolutions) {
  const Database db = load("n(2). n(4). n(6).");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("forall(n(X), 0 =:= X mod 2)"));
  EXPECT_FALSE(interp.holds("forall(n(X), X > 3)"));
  EXPECT_TRUE(interp.holds("forall(fail, fail)"));  // vacuous truth
}

TEST(SortTest, MsortKeepsDuplicates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("msort([3,1,2,1], L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,1,2,3]");
}

TEST(SortTest, SortDeduplicates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("sort([3,1,2,1], L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2,3]");
}

TEST(SortTest, ReverseReverses) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("reverse([1,2,3], L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[3,2,1]");
}

TEST(ListTest, Last) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("last([a,b,c], X)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("X"))->is_atom("c"));
  EXPECT_FALSE(interp.holds("last([], X)"));
}

TEST(ListTest, NumericAggregates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  auto s = interp.query("sum_list([1,2,3], S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 6.0);
  s = interp.query("max_list([1,9,3], S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 9.0);
  s = interp.query("min_list([4,2,3], S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 2.0);
  EXPECT_TRUE(interp.holds("sum_list([], S), S =:= 0"));
  EXPECT_FALSE(interp.holds("max_list([], S)"));
}

TEST(ListTest, Numlist) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("numlist(2, 5, L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[2,3,4,5]");
}

TEST(ArithTest, SuccBothModes) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  auto s = interp.query("succ(3, X)");
  EXPECT_DOUBLE_EQ(s[0].number("X"), 4.0);
  s = interp.query("succ(X, 4)");
  EXPECT_DOUBLE_EQ(s[0].number("X"), 3.0);
  EXPECT_FALSE(interp.holds("succ(X, 0)"));
}

TEST(AtomTest, ConcatAndLength) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("atom_concat(foo, bar, X)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("X"))->is_atom("foobar"));
  EXPECT_TRUE(interp.holds("atom_length(hello, 5)"));
  EXPECT_FALSE(interp.holds("atom_length(hello, 4)"));
}

TEST(CopyTermTest, FreshVariables) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  // The copy unifies independently of the original.
  EXPECT_TRUE(interp.holds("copy_term(f(X, X), f(1, Y)), Y == 1, var(X)"));
}

TEST(AggregateAllTest, Count) {
  const Database db = load("n(1). n(2). n(3).");
  Interpreter interp(db);
  const auto s = interp.query("aggregate_all(count, n(X), N)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("N"), 3.0);
}

TEST(AggregateAllTest, CountZeroForNoSolutions) {
  const Database db = load("n(1).");
  Interpreter interp(db);
  const auto s = interp.query("aggregate_all(count, missing(X), N)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("N"), 0.0);
}

TEST(AggregateAllTest, SumMaxMin) {
  const Database db = load("v(1.5). v(2.5). v(4.0).");
  Interpreter interp(db);
  auto s = interp.query("aggregate_all(sum(X), v(X), S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 8.0);
  s = interp.query("aggregate_all(max(X), v(X), S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 4.0);
  s = interp.query("aggregate_all(min(X), v(X), S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 1.5);
  EXPECT_FALSE(interp.holds("aggregate_all(max(X), missing(X), S)"));
}

TEST(AggregateAllTest, Bag) {
  const Database db = load("n(1). n(2).");
  Interpreter interp(db);
  const auto s = interp.query("aggregate_all(bag(X), n(X), L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2]");
}

TEST(CombinedTest, DisjunctionInsideFindall) {
  const Database db = load("p(X) :- X = 1 ; X = 2.");
  Interpreter interp(db);
  const auto s = interp.query("findall(X, p(X), L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2]");
}

TEST(CombinedTest, WorkflowStyleConditionalCost) {
  // A realistic WLog snippet: a surcharge applies only to premium types.
  const Database db = load(R"(
    premium(v3).
    surcharge(V, S) :- (premium(V) -> S = 0.1 ; S = 0.0).
  )");
  Interpreter interp(db);
  auto s = interp.query("surcharge(v3, S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 0.1);
  s = interp.query("surcharge(v0, S)");
  EXPECT_DOUBLE_EQ(s[0].number("S"), 0.0);
}

}  // namespace
}  // namespace deco::wlog
