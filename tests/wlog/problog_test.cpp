#include "wlog/problog.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace deco::wlog {
namespace {

ProbProgram coin_program() {
  // A biased coin: heads with probability 0.7.
  ProbProgram p;
  ProbGroup g;
  g.probs = {0.7, 0.3};
  g.facts = {make_compound("coin", {make_atom("heads")}),
             make_compound("coin", {make_atom("tails")})};
  p.add_group(std::move(g));
  return p;
}

TEST(ProbProgramTest, SampleWorldHasExactlyOneAlternative) {
  const ProbProgram p = coin_program();
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Database world = p.sample_world(rng);
    Interpreter interp(world);
    const bool heads = interp.holds("coin(heads)");
    const bool tails = interp.holds("coin(tails)");
    EXPECT_NE(heads, tails);  // exactly one
  }
}

TEST(ProbProgramTest, SamplingFrequencyMatchesProbability) {
  const ProbProgram p = coin_program();
  util::Rng rng(2);
  int heads = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const Database world = p.sample_world(rng);
    Interpreter interp(world);
    if (interp.holds("coin(heads)")) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.7, 0.03);
}

TEST(ProbProgramTest, ModalWorldPicksMostProbable) {
  const ProbProgram p = coin_program();
  const Database world = p.modal_world();
  Interpreter interp(world);
  EXPECT_TRUE(interp.holds("coin(heads)"));
  EXPECT_FALSE(interp.holds("coin(tails)"));
}

TEST(ProbProgramTest, GroupProbabilitiesNormalized) {
  ProbProgram p;
  ProbGroup g;
  g.probs = {2, 2};  // unnormalized
  g.facts = {make_atom("a"), make_atom("b")};
  p.add_group(std::move(g));
  EXPECT_NEAR(p.groups()[0].probs[0], 0.5, 1e-12);
}

TEST(McEvalTest, ConstraintProbability) {
  const ProbProgram p = coin_program();
  util::Rng rng(3);
  McOptions opt;
  opt.max_iterations = 2000;
  const auto q = parse_term("coin(heads)");
  const auto r = mc_eval_constraint(p, q.term, rng, opt);
  EXPECT_NEAR(r.probability, 0.7, 0.05);
}

TEST(McEvalTest, GoalMeanOverWorlds) {
  // value(10) w.p. 0.25, value(20) w.p. 0.75 -> mean 17.5.
  ProbProgram p;
  ProbGroup g;
  g.probs = {0.25, 0.75};
  g.facts = {make_compound("value", {make_int(10)}),
             make_compound("value", {make_int(20)})};
  p.add_group(std::move(g));
  util::Rng rng(4);
  McOptions opt;
  opt.max_iterations = 3000;
  const auto q = parse_term("value(X)");
  ASSERT_TRUE(q.ok());
  const TermPtr var = make_var(q.variables[0].second, "X");
  const auto r = mc_eval_goal(p, q.term, var, rng, opt);
  EXPECT_NEAR(r.value, 17.5, 0.5);
  EXPECT_DOUBLE_EQ(r.probability, 1.0);
}

TEST(McEvalTest, RulesComposeWithProbabilisticFacts) {
  // exetime alternatives feed a deterministic cost rule — the paper's
  // translated IR shape (Section 5.1).
  ProbProgram p;
  const auto rules = parse_program(
      "price(v1, 2).\n"
      "cost(C) :- exetime(t1, v1, T), price(v1, U), C is T * U.");
  ASSERT_TRUE(rules.ok());
  p.base().add_program(rules.program);
  ProbGroup g;
  g.probs = {0.5, 0.5};
  g.facts = {
      make_compound("exetime", {make_atom("t1"), make_atom("v1"), make_int(100)}),
      make_compound("exetime", {make_atom("t1"), make_atom("v1"), make_int(300)})};
  p.add_group(std::move(g));
  util::Rng rng(5);
  McOptions opt;
  opt.max_iterations = 3000;
  const auto q = parse_term("cost(C)");
  const TermPtr var = make_var(q.variables[0].second, "C");
  const auto r = mc_eval_goal(p, q.term, var, rng, opt);
  EXPECT_NEAR(r.value, 400.0, 15.0);  // E[T]*U = 200*2
}

TEST(McEvalTest, SampleValuesGiveDistribution) {
  ProbProgram p;
  ProbGroup g;
  g.probs = {0.9, 0.1};
  g.facts = {make_compound("t", {make_int(10)}),
             make_compound("t", {make_int(100)})};
  p.add_group(std::move(g));
  util::Rng rng(6);
  McOptions opt;
  opt.max_iterations = 2000;
  const auto q = parse_term("t(X)");
  const TermPtr var = make_var(q.variables[0].second, "X");
  const auto values = mc_sample_values(p, q.term, var, rng, opt);
  ASSERT_EQ(values.size(), 2000u);
  // The 80th percentile is still 10; the 99th is 100.
  EXPECT_DOUBLE_EQ(util::percentile(values, 80), 10.0);
  EXPECT_DOUBLE_EQ(util::percentile(values, 99), 100.0);
}

TEST(McEvalTest, DeterministicProgramIsUniformInterface) {
  // Section 5.1: deterministic requirements translate with probability 1.0.
  ProbProgram p;
  ProbGroup g;
  g.probs = {1.0};
  g.facts = {make_compound("t", {make_int(42)})};
  p.add_group(std::move(g));
  util::Rng rng(7);
  const auto q = parse_term("t(X)");
  const TermPtr var = make_var(q.variables[0].second, "X");
  const auto r = mc_eval_goal(p, q.term, var, rng, {});
  EXPECT_DOUBLE_EQ(r.value, 42.0);
  EXPECT_DOUBLE_EQ(r.probability, 1.0);
}

TEST(McEvalTest, UnprovableQueryHasZeroProbability) {
  const ProbProgram p = coin_program();
  util::Rng rng(8);
  const auto q = parse_term("coin(edge)");
  const auto r = mc_eval_constraint(p, q.term, rng, {});
  EXPECT_DOUBLE_EQ(r.probability, 0.0);
}

TEST(TranslateRulesTest, CopiesClauses) {
  const auto parsed = parse_program("a. b :- a.");
  ASSERT_TRUE(parsed.ok());
  const ProbProgram ir = translate_rules(parsed.program);
  EXPECT_EQ(ir.base().clause_count(), 2u);
  Interpreter interp(ir.base());
  EXPECT_TRUE(interp.holds("b"));
}

}  // namespace
}  // namespace deco::wlog
