#include "wlog/interp.hpp"

#include <gtest/gtest.h>

#include "wlog/program.hpp"

namespace deco::wlog {
namespace {

Database load(const char* source) {
  const auto r = parse_program(source);
  EXPECT_TRUE(r.ok()) << (r.error ? r.error->message : "");
  Database db;
  db.add_program(r.program);
  return db;
}

TEST(InterpTest, FactLookup) {
  const Database db = load("task(a). task(b).");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("task(a)"));
  EXPECT_TRUE(interp.holds("task(b)"));
  EXPECT_FALSE(interp.holds("task(c)"));
}

TEST(InterpTest, EnumeratesSolutions) {
  const Database db = load("task(a). task(b). task(c).");
  Interpreter interp(db);
  const auto solutions = interp.query("task(X)");
  ASSERT_EQ(solutions.size(), 3u);
  EXPECT_TRUE((*solutions[0].find("X"))->is_atom("a"));
  EXPECT_TRUE((*solutions[2].find("X"))->is_atom("c"));
}

TEST(InterpTest, RuleChaining) {
  const Database db = load(R"(
    parent(tom, bob). parent(bob, ann).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
  )");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("grandparent(tom, ann)"));
  EXPECT_FALSE(interp.holds("grandparent(bob, tom)"));
}

TEST(InterpTest, RecursiveRules) {
  const Database db = load(R"(
    edge(a, b). edge(b, c). edge(c, d).
    path(X, Y) :- edge(X, Y).
    path(X, Y) :- edge(X, Z), path(Z, Y).
  )");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("path(a, d)"));
  EXPECT_FALSE(interp.holds("path(d, a)"));
}

TEST(InterpTest, ArithmeticIs) {
  const Database db = load("f(X, Y) :- Y is X * 2 + 1.");
  Interpreter interp(db);
  const auto s = interp.query("f(10, Y)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("Y"), 21.0);
}

TEST(InterpTest, ArithmeticFunctions) {
  const Database db = load(
      "g(A,B,C,D) :- A is min(3,5), B is max(3,5), C is abs(-4), D is 7 mod 3.");
  Interpreter interp(db);
  const auto s = interp.query("g(A,B,C,D)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("A"), 3);
  EXPECT_DOUBLE_EQ(s[0].number("B"), 5);
  EXPECT_DOUBLE_EQ(s[0].number("C"), 4);
  EXPECT_DOUBLE_EQ(s[0].number("D"), 1);
}

TEST(InterpTest, DivisionByZeroFails) {
  const Database db = load("f(Y) :- Y is 1 / 0.");
  Interpreter interp(db);
  EXPECT_FALSE(interp.holds("f(Y)"));
}

TEST(InterpTest, Comparisons) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("1 < 2"));
  EXPECT_FALSE(interp.holds("2 < 1"));
  EXPECT_TRUE(interp.holds("2 =< 2"));
  EXPECT_TRUE(interp.holds("3 >= 2"));
  EXPECT_TRUE(interp.holds("2 + 2 =:= 4"));
  EXPECT_TRUE(interp.holds("2 =\\= 3"));
}

TEST(InterpTest, UnificationBuiltins) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("X = f(1), X == f(1)"));
  EXPECT_TRUE(interp.holds("f(X) = f(3), X == 3"));
  EXPECT_TRUE(interp.holds("a \\= b"));
  EXPECT_FALSE(interp.holds("a \\= a"));
  EXPECT_TRUE(interp.holds("X \\== Y"));
}

TEST(InterpTest, NegationAsFailure) {
  const Database db = load("task(a).");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("\\+ task(z)"));
  EXPECT_FALSE(interp.holds("\\+ task(a)"));
  EXPECT_TRUE(interp.holds("not(task(z))"));
}

TEST(InterpTest, CutPrunesAlternatives) {
  const Database db = load(R"(
    first(X) :- member(X, [1,2,3]), !.
  )");
  Interpreter interp(db);
  const auto s = interp.query("first(X)", 10);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("X"), 1.0);
}

TEST(InterpTest, CutCommitsToClause) {
  const Database db = load(R"(
    classify(X, small) :- X < 10, !.
    classify(_, large).
  )");
  Interpreter interp(db);
  auto s = interp.query("classify(5, C)", 10);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("C"))->is_atom("small"));
  s = interp.query("classify(50, C)", 10);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("C"))->is_atom("large"));
}

TEST(InterpTest, FindallCollectsAll) {
  const Database db = load("n(1). n(2). n(3).");
  Interpreter interp(db);
  const auto s = interp.query("findall(X, n(X), L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2,3]");
}

TEST(InterpTest, FindallEmptyListOnNoSolutions) {
  const Database db = load("n(1).");
  Interpreter interp(db);
  const auto s = interp.query("findall(X, missing(X), L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[]");
}

TEST(InterpTest, SetofSortsAndDedupes) {
  const Database db = load("n(3). n(1). n(3). n(2).");
  Interpreter interp(db);
  const auto s = interp.query("setof(X, n(X), L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2,3]");
}

TEST(InterpTest, SetofFailsOnEmpty) {
  const Database db = load("n(1).");
  Interpreter interp(db);
  EXPECT_FALSE(interp.holds("setof(X, missing(X), L)"));
}

TEST(InterpTest, MemberEnumerates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("member(X, [a,b,c])", 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(InterpTest, AppendConcatenates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("append([1,2], [3], L)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(to_string(*s[0].find("L")), "[1,2,3]");
}

TEST(InterpTest, AppendEnumeratesSplits) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("append(A, B, [1,2])", 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(InterpTest, LengthOfList) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("length([a,b,c,d], N)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("N"), 4.0);
}

TEST(InterpTest, SumAggregation) {
  // The paper's totalcost pattern: findall + sum.
  const Database db = load("c(1.5). c(2.5). c(3.0).");
  Interpreter interp(db);
  const auto s = interp.query("findall(X, c(X), L), sum(L, S)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("S"), 7.0);
}

TEST(InterpTest, MaxOverNumbers) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("max([3, 9, 2], M)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].number("M"), 9.0);
}

TEST(InterpTest, MaxOverKeyedTuples) {
  // The paper's maxtime pattern: max(Set, [Path,T]) selects the pair with the
  // largest trailing value.
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("max([[a,3],[b,9],[c,2]], [P,T])");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("P"))->is_atom("b"));
  EXPECT_DOUBLE_EQ(s[0].number("T"), 9.0);
}

TEST(InterpTest, MinOverKeyedTuples) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("min([[a,3],[b,9],[c,2]], [P,T])");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE((*s[0].find("P"))->is_atom("c"));
}

TEST(InterpTest, BetweenEnumerates) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  const auto s = interp.query("between(1, 5, X)", 10);
  EXPECT_EQ(s.size(), 5u);
}

TEST(InterpTest, TypeChecks) {
  const Database db = load("dummy.");
  Interpreter interp(db);
  EXPECT_TRUE(interp.holds("atom(foo)"));
  EXPECT_TRUE(interp.holds("number(3)"));
  EXPECT_TRUE(interp.holds("integer(3)"));
  EXPECT_TRUE(interp.holds("float(3.5)"));
  EXPECT_TRUE(interp.holds("var(X)"));
  EXPECT_TRUE(interp.holds("X = 1, nonvar(X)"));
  EXPECT_TRUE(interp.holds("is_list([1,2])"));
  EXPECT_FALSE(interp.holds("atom(3)"));
}

TEST(InterpTest, StepLimitStopsRunawayRecursion) {
  const Database db = load("loop :- loop.");
  Interpreter interp(db);
  interp.set_step_limit(10000);
  EXPECT_FALSE(interp.holds("loop"));
}

TEST(InterpTest, Example1CostRule) {
  // The concrete rule from Section 4.1, with facts standing in for imports.
  const Database db = load(R"(
    price(v1, 0.044).
    exetime(t1, v1, 100).
    configs(t1, v1, 1).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
  )");
  Interpreter interp(db);
  const auto s = interp.query("cost(t1, v1, C)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].number("C"), 4.4, 1e-9);
}

TEST(InterpTest, Example1CriticalPathRules) {
  // Critical path of a diamond: root -> a(10)|b(20) -> tail.
  const Database db = load(R"(
    edge(root, a). edge(root, b). edge(a, tail). edge(b, tail).
    exetime(root, v1, 0). exetime(a, v1, 10).
    exetime(b, v1, 20). exetime(tail, v1, 0).
    configs(root, v1, 1). configs(a, v1, 1).
    configs(b, v1, 1). configs(tail, v1, 1).
    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
  )");
  Interpreter interp(db);
  const auto s = interp.query("maxtime(P, T)");
  ASSERT_EQ(s.size(), 1u);
  // Longest chain: root(0) + b(20) = 20 (tail excluded as the path
  // accumulates the *source* task times along edges).
  EXPECT_DOUBLE_EQ(s[0].number("T"), 20.0);
  EXPECT_TRUE((*s[0].find("P"))->is_atom("b"));
}

}  // namespace
}  // namespace deco::wlog
