#include "cloud/instance_type.hpp"

#include <gtest/gtest.h>

namespace deco::cloud {
namespace {

TEST(CatalogTest, Ec2HasFourTypesTwoRegions) {
  const Catalog c = make_ec2_catalog();
  EXPECT_EQ(c.type_count(), 4u);
  EXPECT_EQ(c.region_count(), 2u);
}

TEST(CatalogTest, TypeLookupByName) {
  const Catalog c = make_ec2_catalog();
  ASSERT_TRUE(c.find_type("m1.small").has_value());
  ASSERT_TRUE(c.find_type("m1.xlarge").has_value());
  EXPECT_FALSE(c.find_type("m1.nano").has_value());
}

TEST(CatalogTest, PricesAscendWithSize) {
  const Catalog c = make_ec2_catalog();
  double prev = 0;
  for (const auto& t : c.types()) {
    EXPECT_GT(t.price_per_hour, prev);
    prev = t.price_per_hour;
  }
}

TEST(CatalogTest, PaperSmallPrice) {
  const Catalog c = make_ec2_catalog();
  EXPECT_DOUBLE_EQ(c.type(*c.find_type("m1.small")).price_per_hour, 0.044);
}

TEST(CatalogTest, ComputeUnitsDouble) {
  const Catalog c = make_ec2_catalog();
  EXPECT_DOUBLE_EQ(c.type(0).compute_units, 1.0);
  EXPECT_DOUBLE_EQ(c.type(1).compute_units, 2.0);
  EXPECT_DOUBLE_EQ(c.type(2).compute_units, 4.0);
  EXPECT_DOUBLE_EQ(c.type(3).compute_units, 8.0);
}

TEST(CatalogTest, SingaporePricesHigher) {
  const Catalog c = make_ec2_catalog();
  const RegionId sg = *c.find_region("ap-southeast-1");
  const RegionId us = *c.find_region("us-east-1");
  // Section 3.3: the m1.small price gap between the regions is 33%.
  const TypeId small = *c.find_type("m1.small");
  EXPECT_NEAR(c.price(small, sg) / c.price(small, us), 1.33, 1e-9);
}

TEST(CatalogTest, Table2ParametersEncoded) {
  const Catalog c = make_ec2_catalog();
  const auto& small = c.type(*c.find_type("m1.small"));
  EXPECT_DOUBLE_EQ(small.seq_io_mbps.a, 129.3);   // Gamma k
  EXPECT_DOUBLE_EQ(small.seq_io_mbps.b, 0.79);    // Gamma theta
  EXPECT_DOUBLE_EQ(small.rand_io_iops.a, 150.3);  // Normal mu
  EXPECT_DOUBLE_EQ(small.rand_io_iops.b, 50.0);   // Normal sigma
  const auto& xlarge = c.type(*c.find_type("m1.xlarge"));
  EXPECT_DOUBLE_EQ(xlarge.rand_io_iops.a, 1034.0);
  EXPECT_DOUBLE_EQ(xlarge.rand_io_iops.b, 146.4);
}

TEST(CatalogTest, NetworkPairBoundedByNarrowerNic) {
  const Catalog c = make_ec2_catalog();
  const TypeId medium = *c.find_type("m1.medium");
  const TypeId large = *c.find_type("m1.large");
  const auto pair = c.network_pair(medium, large);
  EXPECT_DOUBLE_EQ(pair.a, std::min(c.type(medium).net_mbps.a,
                                    c.type(large).net_mbps.a));
}

TEST(CatalogTest, MediumNoisierThanLargePairs) {
  // Fig. 7: m1.medium <-> m1.large bandwidth varies much more than
  // m1.large <-> m1.large.
  const Catalog c = make_ec2_catalog();
  const TypeId medium = *c.find_type("m1.medium");
  const TypeId large = *c.find_type("m1.large");
  EXPECT_GT(c.network_pair(medium, large).b, c.network_pair(large, large).b);
}

TEST(CatalogTest, EgressPricesPositive) {
  const Catalog c = make_ec2_catalog();
  for (RegionId r = 0; r < c.region_count(); ++r) {
    EXPECT_GT(c.egress_price(r), 0.0);
  }
}

}  // namespace
}  // namespace deco::cloud
