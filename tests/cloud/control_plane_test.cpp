#include "cloud/control_plane.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "cloud/instance_type.hpp"

namespace deco::cloud {
namespace {

/// Environment-scaled chaos multiplier: DECO_CHAOS=1 (the CI chaos job)
/// stretches the stress-test workloads without changing the default run.
std::size_t chaos_scale() {
  if (const char* env = std::getenv("DECO_CHAOS")) {
    if (std::string(env) != "0" && !std::string(env).empty()) return 4;
  }
  return 1;
}

ControlPlaneOptions faulty_options() {
  ControlPlaneOptions options;
  options.faults.throttle_rate_per_s = 0.5;
  options.faults.throttle_burst = 2;
  options.faults.capacity_mtbo_s = 3600;
  options.faults.capacity_outage_s = 600;
  options.faults.transient_error_prob = 0.1;
  options.seed = 99;
  return options;
}

TEST(ControlPlaneTest, NullModelGrantsInstantlyWithoutBookkeeping) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlane plane(catalog);  // all fault knobs zero
  EXPECT_TRUE(plane.null_model());
  EXPECT_FALSE(plane.interruptions_enabled());

  const ProvisionGrant grant = plane.provision(2, 0, 123.0);
  EXPECT_TRUE(grant.ok);
  EXPECT_EQ(grant.type, 2u);
  EXPECT_EQ(grant.region, 0u);
  EXPECT_DOUBLE_EQ(grant.ready_at, 123.0);
  EXPECT_FALSE(grant.fell_back);

  EXPECT_EQ(plane.try_call(ApiOp::kAcquire, 124.0, 0), ApiErrorCode::kOk);
  EXPECT_DOUBLE_EQ(plane.complete_call(ApiOp::kTerminate, 125.0), 125.0);
  EXPECT_FALSE(plane.sample_interruption(10.0).has_value());

  // The bit-identity contract: no calls are even counted.
  EXPECT_EQ(plane.stats().calls, 0u);
}

TEST(ControlPlaneTest, TokenBucketThrottlesBursts) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.throttle_rate_per_s = 1.0;
  options.faults.throttle_burst = 3;
  ControlPlane plane(catalog, options);

  // Burst drains the bucket; the next immediate call is throttled.
  EXPECT_EQ(plane.try_call(ApiOp::kTerminate, 0.0), ApiErrorCode::kOk);
  EXPECT_EQ(plane.try_call(ApiOp::kTerminate, 0.0), ApiErrorCode::kOk);
  EXPECT_EQ(plane.try_call(ApiOp::kTerminate, 0.0), ApiErrorCode::kOk);
  EXPECT_EQ(plane.try_call(ApiOp::kTerminate, 0.0), ApiErrorCode::kThrottled);
  // One second refills one token.
  EXPECT_EQ(plane.try_call(ApiOp::kTerminate, 1.0), ApiErrorCode::kOk);
  EXPECT_EQ(plane.stats().throttled, 1u);
}

TEST(ControlPlaneTest, ThrottlingDoesNotTripTheBreaker) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.throttle_rate_per_s = 0.001;  // essentially never refills
  options.faults.throttle_burst = 1;
  options.breaker.failure_threshold = 2;
  ControlPlane plane(catalog, options);

  // Exhaust the bucket, then hammer: everything throttles, breaker stays
  // closed (backpressure is not ill health).
  for (int i = 0; i < 10; ++i) plane.complete_call(ApiOp::kDescribe, 0.0);
  EXPECT_EQ(plane.stats().breaker_opens, 0u);
  EXPECT_EQ(plane.breaker(ApiOp::kDescribe).state(0.0),
            BreakerState::kClosed);
  EXPECT_GT(plane.stats().throttled, 0u);
}

TEST(ControlPlaneTest, CapacityOutageWindowsAreDeterministicPerSeed) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.capacity_mtbo_s = 1800;
  options.faults.capacity_outage_s = 600;
  options.seed = 7;

  ControlPlane a(catalog, options);
  ControlPlane b(catalog, options);
  // Query b at scrambled times and other (type, region) slots: windows
  // depend only on (seed, type, region, time), not on the interleaving of
  // queries.
  for (double t = 0; t < 4 * 3600; t += 721) {
    (void)b.in_capacity_outage(1, 0, t);
    (void)b.in_capacity_outage(0, 1, t);
  }
  for (double t = 0; t < 4 * 3600; t += 97) {
    EXPECT_EQ(a.in_capacity_outage(0, 0, t), b.in_capacity_outage(0, 0, t))
        << "t=" << t;
  }
}

TEST(ControlPlaneTest, OutageIsRegionScoped) {
  const Catalog catalog = make_ec2_catalog();
  ASSERT_GE(catalog.region_count(), 2u);
  ControlPlaneOptions options;
  options.faults.capacity_mtbo_s = 2000;
  options.faults.capacity_outage_s = 5000;
  options.seed = 21;
  ControlPlane plane(catalog, options);
  const RegionId us_east = 0;
  const RegionId singapore = 1;

  // Find a moment when type 0 is dark in us-east but lit in Singapore (the
  // per-(type, region) windows are independent, so such a moment exists).
  double t = 0;
  while (!(plane.in_capacity_outage(0, us_east, t) &&
           !plane.in_capacity_outage(0, singapore, t))) {
    t += 50;
    ASSERT_LT(t, 1e7) << "no region-divergent outage window found";
  }

  // The us-east acquire of type 0 is denied by its regional outage...
  EXPECT_EQ(plane.try_call(ApiOp::kAcquire, t, 0, us_east),
            ApiErrorCode::kInsufficientCapacity);
  // ...while a Singapore acquire of the very same type sails through: the
  // outage no longer blacks out the type globally.
  EXPECT_EQ(plane.try_call(ApiOp::kAcquire, t, 0, singapore),
            ApiErrorCode::kOk);
}

TEST(ControlPlaneTest, TransientErrorsAreRetriedToSuccess) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.transient_error_prob = 0.3;
  options.seed = 5;
  ControlPlane plane(catalog, options);

  for (int i = 0; i < 50; ++i) {
    const ProvisionGrant grant = plane.provision(0, 0, i * 1000.0);
    ASSERT_TRUE(grant.ok);
    EXPECT_GE(grant.ready_at, i * 1000.0);
  }
  EXPECT_GT(plane.stats().transient_errors, 0u);
  EXPECT_GT(plane.stats().retries, 0u);
  EXPECT_EQ(plane.stats().exhausted, 0u);
}

TEST(ControlPlaneTest, OutageFallsBackToAlternateCandidate) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  // Long but finite outages: other types keep independent windows, so a
  // fallback candidate is usually available while type 0 is out.
  options.faults.capacity_mtbo_s = 2000;
  options.faults.capacity_outage_s = 5000;
  options.retry.fallback_after = 1;
  options.seed = 13;
  ControlPlane plane(catalog, options);

  // Find a moment when type 0 is exhausted in the home region (outages
  // recur, so this ends).
  double t = 0;
  while (!plane.in_capacity_outage(0, 0, t)) t += 50;

  // The first attempt is denied, so a grant can only come from a fallback
  // candidate (provision never returns to an abandoned candidate).
  const ProvisionGrant grant = plane.provision(0, 0, t);
  ASSERT_TRUE(grant.ok);
  EXPECT_TRUE(grant.fell_back);
  EXPECT_GT(plane.stats().fallbacks, 0u);
  EXPECT_GT(plane.stats().capacity_denials, 0u);
}

TEST(ControlPlaneTest, ExhaustionWhenFallbackDisabled) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.capacity_mtbo_s = 1e-3;
  options.faults.capacity_outage_s = 1e12;
  options.allow_type_fallback = false;
  options.allow_region_fallback = false;
  options.retry.max_attempts = 4;
  options.give_up_s = 3600;
  ControlPlane plane(catalog, options);

  // The first outage window begins a draw after t=0, so ask at t=1: with a
  // millisecond MTBO the type is dark by then (and stays dark for 1e12 s).
  const ProvisionGrant grant = plane.provision(0, 0, 1.0);
  EXPECT_FALSE(grant.ok);
  EXPECT_EQ(plane.stats().exhausted, 1u);
}

TEST(ControlPlaneTest, BreakerLifecycleClosedOpenHalfOpenClosed) {
  CircuitBreaker breaker(BreakerOptions{3, 30.0});
  EXPECT_EQ(breaker.state(0.0), BreakerState::kClosed);
  breaker.on_failure(1.0);
  breaker.on_failure(2.0);
  EXPECT_TRUE(breaker.allow(2.5));
  breaker.on_failure(3.0);  // third consecutive failure: opens
  EXPECT_EQ(breaker.state(3.0), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allow(10.0));
  EXPECT_DOUBLE_EQ(breaker.retry_at(), 33.0);
  // After the open window the next observation is half-open.
  EXPECT_EQ(breaker.state(33.0), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allow(33.0));
  // A failed trial re-opens immediately...
  breaker.on_failure(33.0);
  EXPECT_EQ(breaker.state(34.0), BreakerState::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  // ...and a successful trial after the next window closes it.
  EXPECT_EQ(breaker.state(63.0), BreakerState::kHalfOpen);
  breaker.on_success(63.0);
  EXPECT_EQ(breaker.state(63.0), BreakerState::kClosed);
}

TEST(ControlPlaneTest, RepeatedTransientFailuresOpenTheAcquireBreaker) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.transient_error_prob = 1.0;  // the API is down, hard
  options.breaker.failure_threshold = 3;
  options.breaker.open_s = 120;
  options.allow_type_fallback = false;
  options.allow_region_fallback = false;
  options.retry.max_attempts = 8;
  ControlPlane plane(catalog, options);

  const ProvisionGrant grant = plane.provision(0, 0, 0.0);
  EXPECT_FALSE(grant.ok);
  EXPECT_GT(plane.stats().breaker_opens, 0u);
  EXPECT_GT(plane.stats().breaker_waits, 0u);
}

TEST(ControlPlaneTest, SameSeedSameFaultSequence) {
  const Catalog catalog = make_ec2_catalog();
  const std::size_t rounds = 20 * chaos_scale();
  ControlPlane a(catalog, faulty_options());
  ControlPlane b(catalog, faulty_options());
  for (std::size_t i = 0; i < rounds; ++i) {
    const double t = static_cast<double>(i) * 37.0;
    const ProvisionGrant ga = a.provision(i % 3, 0, t);
    const ProvisionGrant gb = b.provision(i % 3, 0, t);
    EXPECT_EQ(ga.ok, gb.ok) << i;
    EXPECT_EQ(ga.type, gb.type) << i;
    EXPECT_EQ(ga.region, gb.region) << i;
    EXPECT_DOUBLE_EQ(ga.ready_at, gb.ready_at) << i;
  }
  EXPECT_EQ(a.stats().calls, b.stats().calls);
  EXPECT_EQ(a.stats().throttled, b.stats().throttled);
  EXPECT_EQ(a.stats().transient_errors, b.stats().transient_errors);
}

TEST(ControlPlaneTest, InterruptionScheduleHasLeadTime) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.spot_interruption_mtbf_s = 7200;
  options.faults.spot_notice_lead_s = 120;
  ControlPlane plane(catalog, options);
  EXPECT_TRUE(plane.interruptions_enabled());

  for (int i = 0; i < 100; ++i) {
    const auto intr = plane.sample_interruption(50.0);
    ASSERT_TRUE(intr.has_value());
    EXPECT_GT(intr->reclaim_at, 50.0);
    EXPECT_GE(intr->notice_at, 50.0);
    EXPECT_LE(intr->notice_at, intr->reclaim_at);
    if (intr->reclaim_at - 50.0 > 120.0) {
      EXPECT_DOUBLE_EQ(intr->reclaim_at - intr->notice_at, 120.0);
    }
  }
  EXPECT_EQ(plane.stats().spot_interruptions, 100u);
}

TEST(ControlPlaneTest, DegradedProfileSurvivesSustainedLoad) {
  // The CI chaos job runs this at 4x volume under ASan/UBSan.
  const Catalog catalog = make_ec2_catalog();
  ControlPlane plane(catalog, faulty_options());
  const std::size_t rounds = 200 * chaos_scale();
  double t = 0;
  std::size_t granted = 0;
  for (std::size_t i = 0; i < rounds; ++i) {
    const ProvisionGrant grant =
        plane.provision(i % catalog.type_count(), 0, t);
    granted += grant.ok;
    t = std::max(t, grant.ready_at) + 30.0;
    plane.complete_call(ApiOp::kDescribe, t);
    plane.complete_call(ApiOp::kTerminate, t);
  }
  // Retry + fallback should carry nearly everything through.
  EXPECT_GT(granted, rounds * 9 / 10);
  EXPECT_GT(plane.stats().calls, rounds);
}

}  // namespace
}  // namespace deco::cloud
