#include "cloud/calibration.hpp"

#include <gtest/gtest.h>

namespace deco::cloud {
namespace {

CalibrationOptions fast_options() {
  CalibrationOptions opt;
  opt.samples_per_setting = 4000;  // keep the test quick
  return opt;
}

TEST(CalibrationTest, PublishesAllKeys) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(1);
  calibrate(catalog, store, fast_options(), rng);
  for (const auto& t : catalog.types()) {
    EXPECT_TRUE(store.contains(MetadataStore::seq_io_key("ec2", t.name)));
    EXPECT_TRUE(store.contains(MetadataStore::rand_io_key("ec2", t.name)));
  }
  EXPECT_TRUE(store.contains(
      MetadataStore::net_key("ec2", "m1.small", "m1.xlarge")));
  EXPECT_TRUE(store.contains(MetadataStore::inter_region_net_key("ec2")));
  // 4 types * 2 IO keys + 10 pair keys + 1 inter-region = 19.
  EXPECT_EQ(store.size(), 19u);
}

TEST(CalibrationTest, RecoversTable2GammaParameters) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(2);
  CalibrationOptions opt;
  opt.samples_per_setting = 10000;  // the paper's sample count
  const auto report = calibrate(catalog, store, opt, rng);
  const auto* rec = report.find(MetadataStore::seq_io_key("ec2", "m1.small"));
  ASSERT_NE(rec, nullptr);
  // Table 2: m1.small sequential I/O ~ Gamma(k=129.3, theta=0.79).
  EXPECT_NEAR(rec->fitted_gamma.k, 129.3, 13.0);
  EXPECT_NEAR(rec->fitted_gamma.theta, 0.79, 0.08);
}

TEST(CalibrationTest, RecoversTable2NormalParameters) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(3);
  CalibrationOptions opt;
  opt.samples_per_setting = 10000;
  const auto report = calibrate(catalog, store, opt, rng);
  const auto* rec = report.find(MetadataStore::rand_io_key("ec2", "m1.medium"));
  ASSERT_NE(rec, nullptr);
  // Table 2: m1.medium random I/O ~ Normal(mu=128.9, sigma=8.4).
  EXPECT_NEAR(rec->fitted_normal.mu, 128.9, 1.0);
  EXPECT_NEAR(rec->fitted_normal.sigma, 8.4, 0.5);
}

TEST(CalibrationTest, NetworkPassesNormalityCheck) {
  // Fig. 6b: network performance "can be modeled with a normal distribution"
  // (verified with a null-hypothesis test).
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(4);
  const auto report = calibrate(catalog, store, fast_options(), rng);
  const auto* rec = report.find(
      MetadataStore::net_key("ec2", "m1.medium", "m1.medium"));
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->ks_normal.p_value, 0.01);
}

TEST(CalibrationTest, SequentialIoFailsNormalityLessThanGammaFits) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(5);
  const auto report = calibrate(catalog, store, fast_options(), rng);
  const auto* rec = report.find(MetadataStore::seq_io_key("ec2", "m1.large"));
  ASSERT_NE(rec, nullptr);
  // Gamma(376.6, 0.28) is nearly symmetric, so the Normal fit is also close;
  // just confirm the fitted Gamma mean matches the sample mean.
  EXPECT_NEAR(rec->fitted_gamma.k * rec->fitted_gamma.theta,
              rec->fitted_normal.mu, 1.0);
}

TEST(CalibrationTest, MediumNetworkVarianceIsLarge) {
  // Fig. 6a: the maximum variance of m1.medium network performance ~ 50%.
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(6);
  const auto report = calibrate(catalog, store, fast_options(), rng);
  const auto* rec = report.find(
      MetadataStore::net_key("ec2", "m1.medium", "m1.medium"));
  ASSERT_NE(rec, nullptr);
  EXPECT_GT(rec->max_relative_variance, 0.35);
}

TEST(CalibrationTest, HistogramMeanTracksGroundTruth) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore store;
  util::Rng rng(7);
  calibrate(catalog, store, fast_options(), rng);
  const auto h = store.get(MetadataStore::seq_io_key("ec2", "m1.xlarge"));
  ASSERT_TRUE(h.has_value());
  EXPECT_NEAR(h->mean(), 408.1 * 0.26, 2.0);
}

TEST(CalibrationTest, DeterministicGivenSeed) {
  const Catalog catalog = make_ec2_catalog();
  MetadataStore s1;
  MetadataStore s2;
  util::Rng r1(8);
  util::Rng r2(8);
  calibrate(catalog, s1, fast_options(), r1);
  calibrate(catalog, s2, fast_options(), r2);
  EXPECT_EQ(s1.serialize(), s2.serialize());
}

}  // namespace
}  // namespace deco::cloud
