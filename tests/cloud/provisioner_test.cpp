#include "cloud/provisioner.hpp"

#include <gtest/gtest.h>

#include "cloud/instance_type.hpp"

namespace deco::cloud {
namespace {

TEST(ProvisionerTest, ConvergesImmediatelyOnHealthyControlPlane) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlane plane(catalog);  // null fault model
  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 3);
  provisioner.set_desired(2, 0, 1);

  const ReconcileActions actions = provisioner.reconcile(0.0);
  EXPECT_TRUE(actions.converged);
  EXPECT_EQ(actions.launched.size(), 4u);
  EXPECT_EQ(actions.terminated.size(), 0u);
  EXPECT_EQ(provisioner.fleet().size(), 4u);
  EXPECT_EQ(provisioner.degraded_count(), 0u);

  // A second pass is a no-op: level-triggered, not edge-triggered.
  const ReconcileActions again = provisioner.reconcile(1.0);
  EXPECT_TRUE(again.converged);
  EXPECT_TRUE(again.launched.empty());
  EXPECT_TRUE(again.terminated.empty());
}

TEST(ProvisionerTest, ScalesDownWhenDesiredShrinks) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlane plane(catalog);
  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 4);
  provisioner.reconcile(0.0);
  ASSERT_EQ(provisioner.fleet().size(), 4u);

  provisioner.set_desired(0, 0, 1);
  const ReconcileActions actions = provisioner.reconcile(10.0);
  EXPECT_EQ(actions.terminated.size(), 3u);
  EXPECT_EQ(provisioner.fleet().size(), 1u);
  EXPECT_TRUE(actions.converged);
}

TEST(ProvisionerTest, RemovedSlotIsDrainedEntirely) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlane plane(catalog);
  Provisioner provisioner(plane);
  provisioner.set_desired(1, 0, 2);
  provisioner.reconcile(0.0);
  provisioner.set_desired(1, 0, 0);
  const ReconcileActions actions = provisioner.reconcile(5.0);
  EXPECT_EQ(actions.terminated.size(), 2u);
  EXPECT_TRUE(provisioner.fleet().empty());
}

TEST(ProvisionerTest, DescribeLagCausesOverProvisionThenCorrection) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.describe_lag_s = 100;  // fresh launches invisible for 100 s
  ControlPlane plane(catalog, options);
  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 2);

  // Loop 1 launches 2 (invisible), not converged.
  const ReconcileActions first = provisioner.reconcile(0.0);
  EXPECT_EQ(first.launched.size(), 2u);
  EXPECT_FALSE(first.converged);

  // Loop 2 runs before the lag clears: the launches are still invisible, so
  // the reconciler over-provisions — the classic eventual-consistency trap.
  const ReconcileActions second = provisioner.reconcile(10.0);
  EXPECT_EQ(second.launched.size(), 2u);
  EXPECT_EQ(provisioner.fleet().size(), 4u);

  // Once describe catches up, the surplus is detected and terminated, and
  // the loop converges at the desired count.
  const ReconcileActions third = provisioner.reconcile(200.0);
  EXPECT_EQ(third.terminated.size(), 2u);
  EXPECT_TRUE(third.converged);
  EXPECT_EQ(provisioner.fleet().size(), 2u);
}

TEST(ProvisionerTest, ReconcileUntilConvergedRidesOutTheLag) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.describe_lag_s = 45;
  ControlPlane plane(catalog, options);
  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 3);

  const std::size_t loops =
      provisioner.reconcile_until_converged(0.0, 60.0, 10);
  EXPECT_LT(loops, 10u);
  EXPECT_EQ(provisioner.fleet().size(), 3u);
}

TEST(ProvisionerTest, ExhaustedCapacityYieldsDegradedFleet) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  // Long but finite outages: the desired type goes dark while other types
  // keep independent windows, so fallback supplies substitute hardware.
  options.faults.capacity_mtbo_s = 2000;
  options.faults.capacity_outage_s = 5000;
  options.retry.fallback_after = 1;
  options.seed = 21;
  ControlPlane plane(catalog, options);

  // Find a moment when the desired type is exhausted in the home region.
  double t = 0;
  while (!plane.in_capacity_outage(0, 0, t)) t += 50;

  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 2);
  const ReconcileActions actions = provisioner.reconcile(t);
  ASSERT_EQ(actions.launched.size() + actions.failed_launches, 2u);
  // The desired type was denied first, so every successful launch is a
  // fallback grant and recorded as degraded.
  for (const ManagedInstance& m : actions.launched) {
    EXPECT_TRUE(m.degraded);
    EXPECT_TRUE(m.granted_type != 0 || m.granted_region != 0);
  }
  EXPECT_EQ(provisioner.degraded_count(), actions.launched.size());
  EXPECT_GT(provisioner.degraded_count(), 0u);
}

TEST(ProvisionerTest, FailedLaunchesAreReportedNotFatal) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.capacity_mtbo_s = 1e-3;
  options.faults.capacity_outage_s = 1e12;
  options.allow_type_fallback = false;
  options.allow_region_fallback = false;
  options.retry.max_attempts = 2;
  options.give_up_s = 300;
  ControlPlane plane(catalog, options);
  Provisioner provisioner(plane);
  provisioner.set_desired(0, 0, 2);

  // Reconcile at t=1: the permanent outage window has begun by then.
  const ReconcileActions actions = provisioner.reconcile(1.0);
  EXPECT_EQ(actions.failed_launches, 2u);
  EXPECT_FALSE(actions.converged);
  EXPECT_TRUE(provisioner.fleet().empty());
}

}  // namespace
}  // namespace deco::cloud
