#include "cloud/weather.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cloud/control_plane.hpp"
#include "cloud/instance_type.hpp"
#include "cloud/spot_market.hpp"

namespace deco::cloud {
namespace {

/// Environment-scaled chaos multiplier: DECO_CHAOS=1 (the CI chaos job)
/// stretches the stress-test workloads without changing the default run.
std::size_t chaos_scale() {
  if (const char* env = std::getenv("DECO_CHAOS")) {
    if (std::string(env) != "0" && !std::string(env).empty()) return 4;
  }
  return 1;
}

RegionalWeatherOptions stormy_options() {
  RegionalWeatherOptions options;
  options.storm_mtbs_s = 4000;
  options.storm_duration_s = 1500;
  options.capacity_hazard = 1.0;
  options.crash_hazard = 4.0;
  return options;
}

TEST(RegionalWeatherTest, DisabledProcessAnswersTrivially) {
  RegionalWeather weather;  // default: storm_mtbs_s == 0
  EXPECT_FALSE(weather.enabled());
  EXPECT_FALSE(weather.in_storm(0, 1000.0));
  EXPECT_DOUBLE_EQ(weather.crash_multiplier(0, 1000.0), 1.0);
  EXPECT_FALSE(weather.next_storm(0, 0.0).has_value());
  EXPECT_FALSE(weather.spot_reclaim_after(0, 0.0).has_value());
}

TEST(RegionalWeatherTest, WindowsAreDeterministicAndQueryOrderFree) {
  // Two instances, same seed: one queried forward in time, the other
  // scrambled across regions and times first.  Storm windows must be a
  // pure function of (seed, region, time).
  RegionalWeather a(2, stormy_options(), 7);
  RegionalWeather b(2, stormy_options(), 7);
  for (double t = 1e6; t > 0; t -= 1234.0) {
    (void)b.in_storm(1, t);  // scramble b's materialization order
  }
  (void)b.spot_reclaim_after(0, 5e5);
  for (double t = 0; t < 1e6; t += 997.0) {
    ASSERT_EQ(a.in_storm(0, t), b.in_storm(0, t)) << "t=" << t;
    ASSERT_EQ(a.in_storm(1, t), b.in_storm(1, t)) << "t=" << t;
  }
}

TEST(RegionalWeatherTest, StormBlacksOutEveryTypeInTheRegionTogether) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.weather = stormy_options();
  options.seed = 5;
  ControlPlane plane(catalog, options);
  ASSERT_FALSE(plane.null_model());

  // Find a storm in region 0 that region 1 does not share.
  double t = 0;
  while (!(plane.weather().in_storm(0, t) && !plane.weather().in_storm(1, t))) {
    t += 60;
    ASSERT_LT(t, 1e7) << "no region-divergent storm found";
  }
  // Correlation is the point: *every* type is denied in the stormy region
  // at once, while the calm region grants every type.
  for (TypeId type = 0; type < catalog.type_count(); ++type) {
    EXPECT_EQ(plane.try_call(ApiOp::kAcquire, t, type, 0),
              ApiErrorCode::kInsufficientCapacity);
    EXPECT_EQ(plane.try_call(ApiOp::kAcquire, t, type, 1), ApiErrorCode::kOk);
  }
  EXPECT_EQ(plane.stats().storm_denials, catalog.type_count());
}

TEST(RegionalWeatherTest, SpotReclaimsAreSynchronizedWithinAStorm) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.weather = stormy_options();
  options.seed = 11;
  ControlPlane plane(catalog, options);
  ASSERT_TRUE(plane.interruptions_enabled());

  // Co-located instances acquired at different times before the same storm
  // draw share one reclamation instant — that is the correlated part the
  // i.i.d. exponential process cannot produce.
  const auto a = plane.sample_interruption(0.0, 0);
  const auto b = plane.sample_interruption(100.0, 0);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_DOUBLE_EQ(a->reclaim_at, b->reclaim_at);
  EXPECT_GE(plane.stats().storm_reclaims, 2u);

  // An instance in the other region follows that region's own storms.
  const auto c = plane.sample_interruption(0.0, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_NE(c->reclaim_at, a->reclaim_at);
}

TEST(RegionalWeatherTest, InitialStormIsInProgressAtTimeZero) {
  RegionalWeatherOptions options = stormy_options();
  options.initial_storm = true;
  RegionalWeather weather(2, options, 7);
  // The first window in every region starts at t=0 (a pre-existing
  // incident); without the flag the first storm arrives after a gap.
  EXPECT_TRUE(weather.in_storm(0, 0.0));
  EXPECT_TRUE(weather.in_storm(1, 0.0));
  RegionalWeather lazy(2, stormy_options(), 7);
  EXPECT_FALSE(lazy.in_storm(0, 0.0));
}

TEST(RegionalWeatherTest, CrashMultiplierAppliesOnlyInsideStorms) {
  RegionalWeather weather(2, stormy_options(), 3);
  double in = -1, out = -1;
  for (double t = 0; t < 1e6 && (in < 0 || out < 0); t += 60) {
    if (weather.in_storm(0, t)) {
      in = t;
    } else {
      out = t;
    }
  }
  ASSERT_GE(in, 0.0);
  ASSERT_GE(out, 0.0);
  EXPECT_DOUBLE_EQ(weather.crash_multiplier(0, in), 4.0);
  EXPECT_DOUBLE_EQ(weather.crash_multiplier(0, out), 1.0);
}

TEST(RegionalWeatherTest, RegionHazardSkewsStormArrivals) {
  RegionalWeatherOptions options = stormy_options();
  options.region_hazard = {1.0, 8.0};  // region 1 is eight times stormier
  RegionalWeather weather(2, options, 13);
  const double horizon = 2e6 * static_cast<double>(chaos_scale());
  double stormy[2] = {0, 0};
  for (double t = 0; t < horizon; t += 120.0) {
    for (RegionId r = 0; r < 2; ++r) {
      if (weather.in_storm(r, t)) stormy[r] += 1;
    }
  }
  EXPECT_GT(stormy[1], 2.0 * stormy[0]);
}

TEST(RegionalWeatherTest, WeatherOverloadLeavesWeatherlessTraceBitIdentical) {
  const SpotModel model;
  util::Rng rng_a(42), rng_b(42), rng_c(42);
  const SpotPriceTrace base = SpotPriceTrace::simulate(0.5, model, 512, rng_a);
  const SpotPriceTrace same =
      SpotPriceTrace::simulate(0.5, model, 512, rng_b, nullptr, 0);
  ASSERT_EQ(base.size(), same.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    char x[32], y[32];
    std::snprintf(x, sizeof(x), "%a", base.prices()[i]);
    std::snprintf(y, sizeof(y), "%a", same.prices()[i]);
    ASSERT_STREQ(x, y) << "step " << i;
  }

  // With storms the price must ride above the weatherless trace during the
  // storm windows (capped at on-demand).
  RegionalWeather weather(1, stormy_options(), 17);
  const SpotPriceTrace stormy =
      SpotPriceTrace::simulate(0.5, model, 512, rng_c, &weather, 0);
  bool lifted = false;
  for (std::size_t i = 0; i < stormy.size(); ++i) {
    const double t = static_cast<double>(i) * model.step_seconds;
    if (weather.in_storm(0, t) && stormy.prices()[i] > base.prices()[i]) {
      lifted = true;
    }
    EXPECT_GE(stormy.prices()[i] + 1e-12, base.prices()[i]);
  }
  EXPECT_TRUE(lifted);
}

TEST(RegionalWeatherTest, AllRegionStormExhaustsProvisioning) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  // Storms arrive within seconds and last effectively forever in *every*
  // region: with all types and all regions dark at once, provision() must
  // burn its budget and report exhaustion (the executor turns this into
  // ProvisioningExhaustedError, which the CLI maps to exit 4).
  options.faults.weather.storm_mtbs_s = 1.0;
  options.faults.weather.storm_duration_s = 1e9;
  options.faults.weather.capacity_hazard = 1.0;
  options.retry.max_attempts = 2;
  options.retry.backoff = util::BackoffOptions{1.0, 2.0, 8.0, 0.0};
  options.give_up_s = 300;
  options.seed = 23;
  ControlPlane plane(catalog, options);

  ASSERT_TRUE(plane.weather().in_storm(0, 10.0));
  ASSERT_TRUE(plane.weather().in_storm(1, 10.0));
  const ProvisionGrant grant = plane.provision(0, 0, 10.0);
  EXPECT_FALSE(grant.ok);
  EXPECT_EQ(plane.stats().exhausted, 1u);
  EXPECT_GT(plane.stats().storm_denials, 0u);
  // The repeated capacity denials tripped the acquire breaker.
  EXPECT_GT(plane.stats().breaker_opens, 0u);
}

TEST(RegionalWeatherTest, BreakerRecoversWhenTheStormClears) {
  const Catalog catalog = make_ec2_catalog();
  ControlPlaneOptions options;
  options.faults.weather = stormy_options();
  // No escape hatch: the storm must be ridden out, not dodged.
  options.allow_type_fallback = false;
  options.allow_region_fallback = false;
  options.retry.max_attempts = 4;
  options.retry.backoff = util::BackoffOptions{2.0, 2.0, 16.0, 0.0};
  options.give_up_s = 120;
  options.seed = 29;
  ControlPlane plane(catalog, options);

  // Pick a storm long enough to outlast the provisioning budget, with calm
  // air behind it.
  double from = 0;
  StormWindow storm;
  for (;;) {
    const auto w = plane.weather().next_storm(0, from);
    ASSERT_TRUE(w.has_value());
    ASSERT_LT(w->start, 1e8) << "no suitable storm window found";
    const auto after = plane.weather().next_storm(0, w->end + 1.0);
    if (w->end - w->start > 2 * options.give_up_s &&
        after.has_value() && after->start > w->end + 600.0) {
      storm = *w;
      break;
    }
    from = w->end + 1.0;
  }

  // Inside the storm every attempt is denied: the budget burns out and the
  // consecutive capacity denials open the acquire breaker.
  const ProvisionGrant denied = plane.provision(0, 0, storm.start + 1.0);
  EXPECT_FALSE(denied.ok);
  EXPECT_GT(plane.stats().breaker_opens, 0u);

  // After the window ends the breaker reads half-open; the trial call
  // succeeds and closes it — provisioning has recovered.
  const double calm = storm.end + 300.0;
  ASSERT_FALSE(plane.weather().in_storm(0, calm));
  EXPECT_EQ(plane.breaker(ApiOp::kAcquire).state(calm),
            BreakerState::kHalfOpen);
  const ProvisionGrant granted = plane.provision(0, 0, calm);
  EXPECT_TRUE(granted.ok);
  EXPECT_EQ(plane.breaker(ApiOp::kAcquire).state(granted.ready_at),
            BreakerState::kClosed);
}

}  // namespace
}  // namespace deco::cloud
