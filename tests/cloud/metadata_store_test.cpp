#include "cloud/metadata_store.hpp"

#include <gtest/gtest.h>

namespace deco::cloud {
namespace {

util::Histogram sample_hist() {
  return util::Histogram::from_bins({10, 20, 30}, {0.2, 0.5, 0.3});
}

TEST(MetadataStoreTest, PutGetRoundTrip) {
  MetadataStore store;
  store.put("k", sample_hist());
  ASSERT_TRUE(store.get("k").has_value());
  EXPECT_EQ(store.get("k")->bin_count(), 3u);
  EXPECT_FALSE(store.get("missing").has_value());
  EXPECT_TRUE(store.contains("k"));
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataStoreTest, OverwriteReplaces) {
  MetadataStore store;
  store.put("k", sample_hist());
  store.put("k", util::Histogram::from_bins({1}, {1}));
  EXPECT_EQ(store.get("k")->bin_count(), 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST(MetadataStoreTest, SerializeDeserializePreservesHistograms) {
  MetadataStore store;
  store.put("a/b/c", sample_hist());
  store.put("x", util::Histogram::from_bins({1.5, 2.5}, {0.4, 0.6}));
  const MetadataStore restored = MetadataStore::deserialize(store.serialize());
  ASSERT_TRUE(restored.get("a/b/c").has_value());
  ASSERT_TRUE(restored.get("x").has_value());
  const auto h = *restored.get("a/b/c");
  EXPECT_EQ(h.bin_count(), 3u);
  EXPECT_NEAR(h.masses()[1], 0.5, 1e-12);
  EXPECT_NEAR(h.centers()[2], 30.0, 1e-12);
}

TEST(MetadataStoreTest, SaveLoadFile) {
  MetadataStore store;
  store.put("k", sample_hist());
  const std::string path = testing::TempDir() + "/meta_test.txt";
  ASSERT_TRUE(store.save(path));
  const auto loaded = MetadataStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->contains("k"));
}

TEST(MetadataStoreTest, LoadMissingFileFails) {
  EXPECT_FALSE(MetadataStore::load("/nonexistent/meta.txt").has_value());
}

TEST(MetadataStoreTest, KeyHelpersAreCanonical) {
  EXPECT_EQ(MetadataStore::seq_io_key("ec2", "m1.small"),
            "ec2/m1.small/seq_io");
  EXPECT_EQ(MetadataStore::rand_io_key("ec2", "m1.large"),
            "ec2/m1.large/rand_io");
  // Pair keys are order-insensitive.
  EXPECT_EQ(MetadataStore::net_key("ec2", "m1.large", "m1.medium"),
            MetadataStore::net_key("ec2", "m1.medium", "m1.large"));
}

}  // namespace
}  // namespace deco::cloud
