#include "cloud/spot_market.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace deco::cloud {
namespace {

SpotPriceTrace trace_for(double on_demand, std::size_t steps,
                         std::uint64_t seed) {
  SpotModel model;
  util::Rng rng(seed);
  return SpotPriceTrace::simulate(on_demand, model, steps, rng);
}

TEST(SpotMarketTest, PricesBoundedByOnDemand) {
  const auto trace = trace_for(0.35, 5000, 1);
  for (double p : trace.prices()) {
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 0.35 + 1e-12);
  }
}

TEST(SpotMarketTest, MeanNearBaseFraction) {
  const auto trace = trace_for(0.35, 20000, 2);
  const double mean = util::mean(trace.prices());
  // Long-run mean ~ base_fraction (0.3) of on-demand, within the OU spread
  // and the spike skew.
  EXPECT_GT(mean, 0.35 * 0.2);
  EXPECT_LT(mean, 0.35 * 0.6);
}

TEST(SpotMarketTest, PriceAtClampsToTrace) {
  const auto trace = trace_for(0.1, 100, 3);
  EXPECT_DOUBLE_EQ(trace.price_at(-100), trace.prices().front());
  EXPECT_DOUBLE_EQ(trace.price_at(1e9), trace.prices().back());
  EXPECT_DOUBLE_EQ(trace.price_at(60 * 5), trace.prices()[5]);
}

TEST(SpotMarketTest, NextRevocationFindsFirstExceedance) {
  const auto trace = trace_for(0.35, 5000, 4);
  // A bid below the minimum price is revoked immediately.
  const double low_bid = 0;
  EXPECT_DOUBLE_EQ(trace.next_revocation(0, low_bid), 0.0);
  // A bid above the maximum is never revoked.
  const double high_bid = 1.0;
  EXPECT_LT(trace.next_revocation(0, high_bid), 0.0);
  // A mid bid: the revocation instant must actually exceed the bid.
  const double mid = util::percentile(
      std::vector<double>(trace.prices().begin(), trace.prices().end()), 70);
  const double at = trace.next_revocation(0, mid);
  if (at >= 0) {
    EXPECT_GT(trace.price_at(at), mid);
  }
}

TEST(SpotMarketTest, AvailabilityMonotoneInBid) {
  const auto trace = trace_for(0.35, 5000, 5);
  double prev = 0;
  for (double bid : {0.05, 0.1, 0.15, 0.2, 0.3, 0.4}) {
    const double a = trace.availability(bid);
    EXPECT_GE(a, prev - 1e-12);
    prev = a;
  }
  EXPECT_DOUBLE_EQ(trace.availability(10.0), 1.0);
}

TEST(SpotMarketTest, QuoteHazardMonotoneInBid) {
  const auto trace = trace_for(0.35, 20000, 6);
  const auto low = quote(trace, 0.35 * 0.35);
  const auto high = quote(trace, 0.35 * 0.95);
  EXPECT_GE(low.hourly_revocation_prob, high.hourly_revocation_prob);
  EXPECT_GT(low.mean_price, 0.0);
}

TEST(SpotMarketTest, SpikesCreateRevocationRisk) {
  // With the default spike probability (~1%/min), an hour window almost
  // always sees some risk at a modest bid.
  const auto trace = trace_for(0.35, 20000, 7);
  const auto q = quote(trace, 0.35 * 0.6);
  EXPECT_GT(q.hourly_revocation_prob, 0.05);
  EXPECT_LT(q.hourly_revocation_prob, 1.0);
}

TEST(SpotMarketTest, DeterministicPerSeed) {
  const auto a = trace_for(0.35, 1000, 8);
  const auto b = trace_for(0.35, 1000, 8);
  EXPECT_EQ(a.prices(), b.prices());
}

}  // namespace
}  // namespace deco::cloud
