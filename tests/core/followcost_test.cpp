#include "core/followcost.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

MigrationWorkflowState make_state(const workflow::Workflow& wf,
                                  cloud::RegionId region, double deadline) {
  MigrationWorkflowState s;
  s.wf = &wf;
  s.finished.assign(wf.task_count(), false);
  s.region = region;
  s.vm_type = 1;
  s.deadline_s = deadline;
  return s;
}

TEST(MigrationStateTest, FrontierBytesCountsCrossingEdges) {
  workflow::Workflow wf("chain");
  wf.add_task({"a", "p", 10, 0, 0});
  wf.add_task({"b", "p", 10, 0, 0});
  wf.add_task({"c", "p", 10, 0, 0});
  wf.add_edge(0, 1, 100);
  wf.add_edge(1, 2, 200);
  auto s = make_state(wf, 0, 1e6);
  EXPECT_DOUBLE_EQ(s.frontier_bytes(), 0.0);  // nothing finished yet
  s.finished[0] = true;
  EXPECT_DOUBLE_EQ(s.frontier_bytes(), 100.0);
  s.finished[1] = true;
  EXPECT_DOUBLE_EQ(s.frontier_bytes(), 200.0);
}

TEST(MigrationOptimizerTest, MigratesExpensiveRegionToCheap) {
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(10, rng);
  TaskTimeEstimator est(ec2(), store());
  MigrationOptimizer optimizer(ec2(), est);
  // Workflow sits in Singapore (region 1, 33% pricier), loose deadline,
  // no data produced yet -> free migration to us-east.
  std::vector<MigrationWorkflowState> states{make_state(wf, 1, 1e7)};
  const auto decision = optimizer.optimize(states);
  ASSERT_EQ(decision.targets.size(), 1u);
  EXPECT_EQ(decision.targets[0], 0u);
}

TEST(MigrationOptimizerTest, StaysWhenMigrationCostDominates) {
  util::Rng rng(4);
  auto wf = workflow::make_pipeline(4, rng);
  // One cheap remaining task but a huge frontier payload.
  const double gb = 1024.0 * 1024.0 * 1024.0;
  wf.add_task({"big", "p", 1, 0, 0});
  wf.add_edge(2, 4, 500 * gb);
  TaskTimeEstimator est(ec2(), store());
  MigrationOptimizer optimizer(ec2(), est);
  auto s = make_state(wf, 1, 1e7);
  for (workflow::TaskId t = 0; t < 3; ++t) s.finished[t] = true;
  std::vector<MigrationWorkflowState> states{std::move(s)};
  const auto decision = optimizer.optimize(states);
  // 500 GB egress (~$95) dwarfs the price gap on the remaining tasks.
  EXPECT_EQ(decision.targets[0], 1u);
}

TEST(MigrationOptimizerTest, DeadlinePreventsMigration) {
  util::Rng rng(5);
  const auto wf = workflow::make_pipeline(5, rng);
  TaskTimeEstimator est(ec2(), store());
  MigrationOptimizer optimizer(ec2(), est);
  auto s = make_state(wf, 1, 1e7);
  s.finished[0] = true;
  // Remaining deadline barely covers staying put; the inter-region transfer
  // of the frontier data would blow it.
  const double exec_time = optimizer.remaining_time(s, 1);
  s.elapsed_s = s.deadline_s - 1.05 * exec_time;
  std::vector<MigrationWorkflowState> states{s};
  EXPECT_GE(optimizer.remaining_time(states[0], 0),
            optimizer.remaining_time(states[0], 1));
  const auto decision = optimizer.optimize(states);
  // The chosen target must satisfy the remaining deadline.
  EXPECT_LE(optimizer.remaining_time(states[0], decision.targets[0]),
            states[0].remaining_deadline() + 1e-6);
}

TEST(MigrationOptimizerTest, CostComponentsMatchDefinitions) {
  util::Rng rng(6);
  const auto wf = workflow::make_pipeline(3, rng);
  TaskTimeEstimator est(ec2(), store());
  MigrationOptimizer optimizer(ec2(), est);
  auto s = make_state(wf, 0, 1e7);
  // Migration to the same region is free (Eq. 9 with G = 0).
  EXPECT_DOUBLE_EQ(optimizer.migration_cost(s, 0), 0.0);
  // Execution cost scales with the region multiplier (Eq. 8).
  const double us = optimizer.execution_cost(s, 0);
  const double sg = optimizer.execution_cost(s, 1);
  EXPECT_NEAR(sg / us, 1.33, 0.01);
}

TEST(EvacuationTest, EvacuatesAwayFromStormBillingDataGravity) {
  util::Rng rng(9);
  auto wf = workflow::make_pipeline(4, rng);
  const double gb = 1024.0 * 1024.0 * 1024.0;
  wf.add_task({"sink", "p", 10, 0, 0});
  wf.add_edge(0, 4, 5 * gb);  // finished->unfinished: 5 GB must follow
  TaskTimeEstimator est(ec2(), store());
  auto s = make_state(wf, 0, 1e7);
  s.finished[0] = true;

  // Storm over the home region: the only calm region wins, and the move
  // is billed at the *source* region's egress price (Eq. 9) plus the
  // frontier's transfer time over the inter-region link.
  const EvacuationPlan plan = choose_evacuation_region(s, ec2(), est, 0);
  EXPECT_TRUE(plan.moved);
  EXPECT_EQ(plan.target, 1u);
  EXPECT_NEAR(plan.migration_cost, s.frontier_bytes() / gb * ec2().egress_price(0),
              1e-9);
  EXPECT_GT(plan.transfer_time_s, 0.0);
  EXPECT_GT(plan.execution_cost, 0.0);
}

TEST(EvacuationTest, StaysHomeWhenTheStormIsElsewhere) {
  util::Rng rng(10);
  const auto wf = workflow::make_pipeline(4, rng);
  TaskTimeEstimator est(ec2(), store());
  const auto s = make_state(wf, 0, 1e7);

  // The storm region is excluded from the candidates; with the storm in
  // the *other* region the cheapest remaining candidate is home itself.
  const EvacuationPlan plan = choose_evacuation_region(s, ec2(), est, 1);
  EXPECT_FALSE(plan.moved);
  EXPECT_EQ(plan.target, 0u);
  EXPECT_DOUBLE_EQ(plan.migration_cost, 0.0);
  EXPECT_DOUBLE_EQ(plan.transfer_time_s, 0.0);
}

TEST(EvacuationTest, InfeasibleDeadlineFallsBackToFastestNonStormRegion) {
  util::Rng rng(11);
  const auto wf = workflow::make_pipeline(6, rng);
  TaskTimeEstimator est(ec2(), store());
  // A deadline nothing can meet (Eq. 10 fails everywhere): the chooser
  // still evacuates — staying in the storm is not an option — picking the
  // fastest non-storm region instead of a feasible-cheapest one.
  const auto s = make_state(wf, 0, 1.0);
  const EvacuationPlan plan = choose_evacuation_region(s, ec2(), est, 0);
  EXPECT_TRUE(plan.moved);
  EXPECT_EQ(plan.target, 1u);
}

TEST(FollowCostScenarioTest, StayPolicyRunsToCompletion) {
  util::Rng rng(8);
  const auto wf = workflow::make_pipeline(6, rng);
  std::vector<MigrationWorkflowState> states{make_state(wf, 0, 1e7)};
  util::Rng scenario_rng(9);
  const auto report = run_followcost_scenario(
      states, ec2(),
      [](const std::vector<MigrationWorkflowState>& ss) {
        std::vector<cloud::RegionId> t(ss.size());
        for (std::size_t i = 0; i < ss.size(); ++i) t[i] = ss[i].region;
        return t;
      },
      scenario_rng);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_GT(report.execution_cost, 0.0);
  EXPECT_DOUBLE_EQ(report.migration_cost, 0.0);
  EXPECT_GT(report.periods, 0u);
}

TEST(FollowCostScenarioTest, MigrationPolicyIsCheaperFromExpensiveRegion) {
  util::Rng rng(10);
  const auto wf = workflow::make_pipeline(12, rng);
  auto mk = [&]() {
    std::vector<MigrationWorkflowState> states{make_state(wf, 1, 1e7)};
    return states;
  };
  util::Rng r1(11);
  const auto stay = run_followcost_scenario(
      mk(), ec2(),
      [](const std::vector<MigrationWorkflowState>& ss) {
        std::vector<cloud::RegionId> t(ss.size());
        for (std::size_t i = 0; i < ss.size(); ++i) t[i] = ss[i].region;
        return t;
      },
      r1);
  util::Rng r2(11);
  const auto move = run_followcost_scenario(
      mk(), ec2(),
      [](const std::vector<MigrationWorkflowState>& ss) {
        // Always target us-east (cheap).
        return std::vector<cloud::RegionId>(ss.size(), 0);
      },
      r2);
  EXPECT_LT(move.total_cost, stay.total_cost);
  EXPECT_EQ(move.migrations, 1u);
}

}  // namespace
}  // namespace deco::core
