#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

workflow::Workflow cpu_task(double cpu_seconds) {
  workflow::Workflow wf("one");
  wf.add_task({"t", "p", cpu_seconds, 0, 0});
  return wf;
}

EstimatorOptions no_extras() {
  EstimatorOptions opt;
  opt.rand_io_ops_per_task = 0;
  opt.include_network = false;
  return opt;
}

TEST(EstimatorTest, CpuOnlyTaskScalesWithComputeUnits) {
  const auto wf = cpu_task(800);
  TaskTimeEstimator est(ec2(), store(), no_extras());
  // Tasks are single-threaded: CPU time scales with per-core ECU (1 vs 2).
  EXPECT_NEAR(est.mean_time(wf, 0, 0), 800.0, 1.0);
  EXPECT_NEAR(est.mean_time(wf, 0, 1), 400.0, 1.0);
  EXPECT_NEAR(est.mean_time(wf, 0, 3), 400.0, 1.0);
}

TEST(EstimatorTest, IoBoundTaskTracksSeqIoDistribution) {
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 0, 1000 * mb, 0});
  TaskTimeEstimator est(ec2(), store(), no_extras());
  // m1.small mean seq I/O ~ 102.1 MB/s.
  EXPECT_NEAR(est.mean_time(wf, 0, 0), 1000.0 / 102.1, 0.5);
}

TEST(EstimatorTest, DistributionHasSpread) {
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 10, 2000 * mb, 0});
  TaskTimeEstimator est(ec2(), store(), no_extras());
  const auto& hist = est.distribution(wf, 0, 0);
  EXPECT_GT(hist.variance(), 0.0);
  EXPECT_LT(hist.percentile(5), hist.percentile(95));
}

TEST(EstimatorTest, PercentileAboveMeanForRightTail) {
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 0, 3000 * mb, 0});
  TaskTimeEstimator est(ec2(), store(), no_extras());
  EXPECT_GE(est.percentile_time(wf, 0, 0, 96), est.mean_time(wf, 0, 0));
}

TEST(EstimatorTest, NetworkComponentAddsTime) {
  workflow::Workflow wf("net");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"a", "p", 10, 0, 0});
  wf.add_task({"b", "p", 10, 0, 0});
  wf.add_edge(0, 1, 500 * mb);
  EstimatorOptions with_net = no_extras();
  with_net.include_network = true;
  EstimatorOptions without_net = no_extras();
  TaskTimeEstimator with(ec2(), store(), with_net);
  TaskTimeEstimator without(ec2(), store(), without_net);
  EXPECT_GT(with.mean_time(wf, 1, 0), without.mean_time(wf, 1, 0) + 1.0);
  // The parent has no incoming edges; equal either way.
  EXPECT_NEAR(with.mean_time(wf, 0, 0), without.mean_time(wf, 0, 0), 1e-9);
}

TEST(EstimatorTest, CacheReturnsSameObject) {
  const auto wf = cpu_task(100);
  TaskTimeEstimator est(ec2(), store(), no_extras());
  const auto& a = est.distribution(wf, 0, 1);
  const auto& b = est.distribution(wf, 0, 1);
  EXPECT_EQ(&a, &b);
}

TEST(EstimatorTest, DeterministicAcrossInstances) {
  const auto wf = cpu_task(100);
  TaskTimeEstimator a(ec2(), store(), no_extras());
  TaskTimeEstimator b(ec2(), store(), no_extras());
  EXPECT_DOUBLE_EQ(a.mean_time(wf, 0, 2), b.mean_time(wf, 0, 2));
}

TEST(EstimatorTest, FasterTypeNeverSlowerOnCpuBoundTasks) {
  util::Rng rng(5);
  const auto wf = workflow::make_montage(1, rng);
  TaskTimeEstimator est(ec2(), store(), no_extras());
  for (workflow::TaskId t = 0; t < wf.task_count(); t += 7) {
    double prev = est.mean_time(wf, t, 0);
    for (cloud::TypeId v = 1; v < ec2().type_count(); ++v) {
      const double cur = est.mean_time(wf, t, v);
      EXPECT_LT(cur, prev * 1.3) << "task " << t << " type " << v;
      prev = cur;
    }
  }
}

TEST(MakeStoreTest, ProducesUsableStore) {
  const auto s = make_store_from_catalog(ec2(), "ec2", 500, 12, 3);
  EXPECT_EQ(s.size(), 19u);
  EXPECT_TRUE(s.contains(cloud::MetadataStore::seq_io_key("ec2", "m1.large")));
}

}  // namespace
}  // namespace deco::core
