#include "core/ensemble_planner.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

/// A small ensemble with controlled deadlines.
workflow::Ensemble small_ensemble(std::size_t members, double budget,
                                  double deadline_s) {
  util::Rng rng(7);
  workflow::EnsembleOptions opt;
  opt.app = workflow::AppType::kLigo;
  opt.type = workflow::EnsembleType::kConstant;
  opt.num_workflows = members;
  opt.sizes = {20};
  workflow::Ensemble e = workflow::make_ensemble(opt, rng);
  e.budget = budget;
  for (auto& m : e.members) {
    m.deadline_s = deadline_s;
    m.deadline_q = 90;
  }
  return e;
}

EnsemblePlanOptions fast_options() {
  EnsemblePlanOptions opt;
  opt.per_workflow.search.max_states = 16;
  opt.per_workflow.search.stale_wave_limit = 2;
  return opt;
}

TEST(EnsemblePlannerTest, GenerousBudgetAdmitsEverything) {
  const auto e = small_ensemble(5, 1e9, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  const auto r = planner.plan(e, fast_options());
  for (bool admitted : r.admitted) EXPECT_TRUE(admitted);
  EXPECT_DOUBLE_EQ(r.score, e.max_score());
}

TEST(EnsemblePlannerTest, ZeroBudgetAdmitsNothing) {
  const auto e = small_ensemble(5, 0, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  const auto r = planner.plan(e, fast_options());
  for (bool admitted : r.admitted) EXPECT_FALSE(admitted);
  EXPECT_DOUBLE_EQ(r.score, 0.0);
}

TEST(EnsemblePlannerTest, TightBudgetPrefersHighPriority) {
  auto e = small_ensemble(6, 0, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  // First find the per-member cost with an unconstrained pass.
  auto probe = e;
  probe.budget = 1e9;
  const auto full = planner.plan(probe, fast_options());
  const double one_cost = full.member_costs[0];
  // Budget for roughly two members.
  e.budget = 2.2 * one_cost;
  const auto r = planner.plan(e, fast_options());
  EXPECT_TRUE(r.admitted[0]);  // priority 0 (score 1.0) must be in
  std::size_t count = 0;
  for (bool a : r.admitted) count += a;
  EXPECT_GE(count, 2u);
  EXPECT_LE(r.total_cost, e.budget + 1e-9);
}

TEST(EnsemblePlannerTest, ImpossibleDeadlinesAdmitNothing) {
  const auto e = small_ensemble(3, 1e9, 0.0001);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  const auto r = planner.plan(e, fast_options());
  for (bool admitted : r.admitted) EXPECT_FALSE(admitted);
}

TEST(EnsemblePlannerTest, BudgetConstraintHolds) {
  auto e = small_ensemble(8, 0, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  auto probe = e;
  probe.budget = 1e9;
  const auto full = planner.plan(probe, fast_options());
  e.budget = 0.5 * full.total_cost;
  const auto r = planner.plan(e, fast_options());
  EXPECT_LE(r.total_cost, e.budget + 1e-9);
  EXPECT_GT(r.score, 0.0);
}

TEST(EnsemblePlannerTest, AdmittedMembersHavePlans) {
  const auto e = small_ensemble(4, 1e9, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  const auto r = planner.plan(e, fast_options());
  for (std::size_t i = 0; i < e.members.size(); ++i) {
    if (r.admitted[i]) {
      EXPECT_EQ(r.plans[i].size(), e.members[i].workflow.task_count());
    }
  }
}

TEST(EnsemblePlannerTest, ScoreMatchesAdmissionVector) {
  const auto e = small_ensemble(5, 1e9, 1e7);
  vgpu::SerialBackend backend;
  EnsemblePlanner planner(ec2(), store(), backend);
  const auto r = planner.plan(e, fast_options());
  EXPECT_DOUBLE_EQ(r.score, e.score(r.admitted));
}

}  // namespace
}  // namespace deco::core
