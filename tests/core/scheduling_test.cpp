#include "core/scheduling.hpp"

#include <gtest/gtest.h>

#include "sim/executor.hpp"
#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

struct SchedEnv {
  workflow::Workflow wf;
  TaskTimeEstimator estimator;
  vgpu::VirtualGpuBackend backend;
  SchedulingProblem problem;

  explicit SchedEnv(workflow::Workflow w, EvalOptions eval = {})
      : wf(std::move(w)),
        estimator(ec2(), store()),
        backend(2),
        problem(wf, estimator, backend, eval) {}
};

workflow::Workflow montage1() {
  util::Rng rng(42);
  return workflow::make_montage(1, rng);
}

TEST(SchedulingTest, InitialPlanIsAllCheapest) {
  SchedEnv s(montage1());
  const sim::Plan plan = s.problem.initial_plan();
  for (const auto& p : plan.placements) {
    EXPECT_EQ(p.vm_type, 0u);
    EXPECT_EQ(p.group, sim::kNoGroup);
  }
}

TEST(SchedulingTest, LooseDeadlineCostsNoMoreThanAllSmall) {
  SchedEnv s(montage1());
  // A very loose deadline: the result must cost at most the all-cheapest
  // plan.  (It may differ per task — on CPU-bound tasks m1.medium's per-ECU
  // price actually undercuts m1.small's under the prorated Eq. 1 model.)
  const ProbDeadline req{0.9, 1e7};
  const auto r = s.problem.solve(req);
  ASSERT_TRUE(r.found);
  const auto all_small = s.problem.evaluator().evaluate(
      s.problem.initial_plan(), req);
  EXPECT_LE(r.evaluation.mean_cost, all_small.mean_cost * 1.001);
}

TEST(SchedulingTest, TightDeadlinePromotesTasks) {
  SchedEnv s(montage1());
  // Deadline at ~70% of the all-cheapest plan's makespan forces promotions.
  const double cheap_makespan =
      s.problem.evaluator()
          .evaluate(s.problem.initial_plan(), {0.9, 1e7})
          .mean_makespan;
  const auto tight = s.problem.solve({0.9, 0.7 * cheap_makespan});
  ASSERT_TRUE(tight.found);
  std::size_t promoted = 0;
  for (const auto& p : tight.plan.placements) {
    if (p.vm_type > 0) ++promoted;
  }
  EXPECT_GT(promoted, 0u);
  EXPECT_LE(tight.evaluation.makespan_quantile, 0.7 * cheap_makespan * 1.02);
}

TEST(SchedulingTest, ResultRespectsProbabilisticDeadline) {
  SchedEnv s(montage1());
  const auto all_small = s.problem.evaluator().evaluate(
      s.problem.initial_plan(), {0.9, 1e7});
  const ProbDeadline req{0.96, 0.75 * all_small.mean_makespan};
  const auto r = s.problem.solve(req);
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.evaluation.deadline_prob, req.quantile - 0.02);
}

TEST(SchedulingTest, GreedyFeasibleFindsFeasiblePlan) {
  SchedEnv s(montage1());
  const auto all_small = s.problem.evaluator().evaluate(
      s.problem.initial_plan(), {0.9, 1e7});
  // Single-threaded tasks cap the CPU speedup at 2x, so 0.7x of the cheap
  // makespan is near the feasible frontier without crossing it.
  const ProbDeadline req{0.9, 0.7 * all_small.mean_makespan};
  const auto greedy = s.problem.greedy_feasible(req);
  EXPECT_TRUE(greedy.found);
  EXPECT_TRUE(greedy.evaluation.feasible);
}

TEST(SchedulingTest, SearchNeverWorseThanGreedy) {
  SchedEnv s(montage1());
  const auto all_small = s.problem.evaluator().evaluate(
      s.problem.initial_plan(), {0.9, 1e7});
  const ProbDeadline req{0.9, 0.7 * all_small.mean_makespan};
  const auto greedy = s.problem.greedy_feasible(req);
  const auto searched = s.problem.solve(req);
  ASSERT_TRUE(greedy.found);
  ASSERT_TRUE(searched.found);
  EXPECT_LE(searched.evaluation.mean_cost, greedy.evaluation.mean_cost * 1.001);
}

TEST(SchedulingTest, AstarAgreesWithGenericOnSmallWorkflow) {
  util::Rng rng(5);
  SchedEnv s(workflow::make_pipeline(6, rng));
  const auto loose = s.problem.solve({0.9, 1e7});
  const ProbDeadline req{0.9, 0.65 * loose.evaluation.mean_makespan};
  SchedulingOptions generic;
  SchedulingOptions astar;
  astar.use_astar = true;
  const auto g = s.problem.solve(req, generic);
  const auto a = s.problem.solve(req, astar);
  ASSERT_TRUE(g.found);
  ASSERT_TRUE(a.found);
  EXPECT_NEAR(a.evaluation.mean_cost, g.evaluation.mean_cost,
              0.25 * g.evaluation.mean_cost + 1e-9);
}

TEST(SchedulingTest, CriticalTasksFormAPath) {
  SchedEnv s(montage1());
  const auto cp = s.problem.critical_tasks(s.problem.initial_plan());
  ASSERT_FALSE(cp.empty());
  for (std::size_t i = 0; i + 1 < cp.size(); ++i) {
    const auto& children = s.wf.children(cp[i]);
    EXPECT_NE(std::find(children.begin(), children.end(), cp[i + 1]),
              children.end());
  }
}

TEST(SchedulingTest, EmptyWorkflowTriviallySolved) {
  SchedEnv s(workflow::Workflow("empty"));
  const auto r = s.problem.solve({0.9, 100});
  EXPECT_TRUE(r.found);
}

TEST(SchedulingTest, PlanExecutesWithinDeadlineOnSimulator) {
  // End-to-end: the optimized plan, executed on the cloud simulator 40
  // times, should meet the deadline at roughly the required rate.
  SchedEnv s(montage1());
  const auto loose = s.problem.solve({0.9, 1e7});
  const ProbDeadline req{0.9, 0.8 * loose.evaluation.mean_makespan};
  const auto r = s.problem.solve(req);
  ASSERT_TRUE(r.found);
  util::Rng rng(99);
  sim::ExecutorOptions opt;
  int met = 0;
  const int runs = 40;
  for (int i = 0; i < runs; ++i) {
    const auto exec = sim::simulate_execution(s.wf, r.plan, ec2(), rng, opt);
    if (exec.makespan <= req.deadline_s) ++met;
  }
  // The estimator is conservative about network, so the simulator should
  // meet the deadline at least as often as required (allow some slack).
  EXPECT_GE(met, static_cast<int>(runs * (req.quantile - 0.25)));
}

}  // namespace
}  // namespace deco::core
