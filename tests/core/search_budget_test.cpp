// Solve-budget behavior of the search drivers: generous budgets are
// bit-identical to unbudgeted runs, tiny budgets yield anytime incumbents,
// and the memory-degradation ladder shrinks the visited set before cutting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/search.hpp"
#include "util/budget.hpp"

namespace deco::core {
namespace {

// Same toy state as search_test.cpp: a binary tree over integers.
SearchCallbacks<int> tree_callbacks(int feasible_from, int max_value) {
  SearchCallbacks<int> cb;
  cb.children = [max_value](const int& n) {
    std::vector<int> out;
    if (2 * n + 1 <= max_value) out.push_back(2 * n + 1);
    if (2 * n + 2 <= max_value) out.push_back(2 * n + 2);
    return out;
  };
  cb.hash = [](const int& n) { return static_cast<std::uint64_t>(n); };
  cb.evaluate = [feasible_from](std::span<const int> batch) {
    std::vector<Scored> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = Scored{batch[i] >= feasible_from, static_cast<double>(batch[i])};
    }
    return out;
  };
  return cb;
}

void expect_identical(const SearchResult<int>& a, const SearchResult<int>& b) {
  EXPECT_EQ(a.best.has_value(), b.best.has_value());
  if (a.best && b.best) {
    EXPECT_EQ(*a.best, *b.best);
    EXPECT_EQ(a.best_score.objective, b.best_score.objective);
  }
  EXPECT_EQ(a.stats.states_evaluated, b.stats.states_evaluated);
  EXPECT_EQ(a.stats.states_expanded, b.stats.states_expanded);
  EXPECT_EQ(a.stats.states_pruned, b.stats.states_pruned);
  EXPECT_EQ(a.stats.duplicate_hits, b.stats.duplicate_hits);
  EXPECT_EQ(a.stats.visited_evicted, b.stats.visited_evicted);
  EXPECT_EQ(a.stats.waves, b.stats.waves);
}

TEST(SearchBudgetTest, GenerousBudgetIsBitIdenticalToUnbudgeted) {
  for (const bool pipeline : {false, true}) {
    SearchOptions opt;
    opt.max_states = 3000;
    opt.pipeline = pipeline;
    const auto plain = generic_search(0, tree_callbacks(10, 2000), opt);

    util::SolveBudget spec;
    spec.wall_ms = 1e9;
    spec.max_bytes = std::size_t{1} << 40;
    util::BudgetTracker tracker(spec);
    SearchOptions budgeted = opt;
    budgeted.budget = &tracker;
    const auto under = generic_search(0, tree_callbacks(10, 2000), budgeted);

    expect_identical(plain, under);
    EXPECT_FALSE(under.budget.budget_exhausted);
    EXPECT_EQ(under.budget.trigger, util::BudgetTrigger::kNone);
    EXPECT_EQ(under.budget.states_at_cutoff, under.stats.states_evaluated);
  }
}

TEST(SearchBudgetTest, GenerousBudgetIsBitIdenticalForAstar) {
  auto make = [] {
    auto cb = tree_callbacks(900, 4000);
    cb.g_score = [](const int& n) { return static_cast<double>(n); };
    cb.h_score = [](const int&) { return 0.0; };
    return cb;
  };
  SearchOptions opt;
  opt.max_states = 4000;
  opt.monotone_objective = true;
  const auto plain = astar_search(0, make(), opt);

  util::SolveBudget spec;
  spec.wall_ms = 1e9;
  util::BudgetTracker tracker(spec);
  SearchOptions budgeted = opt;
  budgeted.budget = &tracker;
  const auto under = astar_search(0, make(), budgeted);
  expect_identical(plain, under);
  EXPECT_FALSE(under.budget.budget_exhausted);
}

TEST(SearchBudgetTest, TinyWallBudgetReturnsAnytimeIncumbent) {
  for (const bool pipeline : {false, true}) {
    auto cb = tree_callbacks(0, 1 << 20);  // everything feasible
    cb.evaluate = [inner = cb.evaluate](std::span<const int> batch) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return inner(batch);
    };
    util::SolveBudget spec;
    spec.wall_ms = 10;
    util::BudgetTracker tracker(spec);
    SearchOptions opt;
    opt.max_states = 1 << 20;  // far beyond what 10 ms allows
    opt.batch_size = 4;
    opt.stale_wave_limit = 0;
    opt.pipeline = pipeline;
    opt.budget = &tracker;
    const auto r = generic_search(0, cb, opt);
    ASSERT_TRUE(r.best.has_value()) << "pipeline=" << pipeline;
    EXPECT_TRUE(r.budget.budget_exhausted);
    EXPECT_EQ(r.budget.trigger, util::BudgetTrigger::kWallClock);
    EXPECT_LT(r.stats.states_evaluated, opt.max_states);
    EXPECT_EQ(r.budget.states_at_cutoff, r.stats.states_evaluated);
    EXPECT_GT(r.budget.elapsed_ms, 0.0);
  }
}

TEST(SearchBudgetTest, CancelTokenCutsSearchMidway) {
  util::CancelToken token;
  util::SolveBudget spec;
  spec.cancel = &token;
  util::BudgetTracker tracker(spec);

  std::atomic<std::size_t> evaluated{0};
  auto cb = tree_callbacks(0, 1 << 20);
  cb.evaluate = [&, inner = cb.evaluate](std::span<const int> batch) {
    if (evaluated.fetch_add(batch.size()) >= 64) token.cancel();
    return inner(batch);
  };
  SearchOptions opt;
  opt.max_states = 1 << 20;
  opt.batch_size = 8;
  opt.stale_wave_limit = 0;
  opt.budget = &tracker;
  const auto r = generic_search(0, cb, opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.budget.budget_exhausted);
  EXPECT_EQ(r.budget.trigger, util::BudgetTrigger::kCancel);
  EXPECT_LT(r.stats.states_evaluated, std::size_t{1} << 20);
}

TEST(SearchBudgetTest, KernelBudgetExceptionBecomesAnytimeResult) {
  // Simulates the evaluator-kernel path: the evaluation itself observes the
  // fired budget and throws; the driver keeps its incumbent.
  util::SolveBudget spec;
  spec.wall_ms = 1e9;
  util::BudgetTracker tracker(spec);
  std::atomic<std::size_t> waves{0};
  auto cb = tree_callbacks(0, 1 << 20);
  cb.evaluate = [&, inner = cb.evaluate](std::span<const int> batch) {
    if (waves.fetch_add(1) >= 4) {
      tracker.fire(util::BudgetTrigger::kMemory);
      tracker.checkpoint();  // throws BudgetExhaustedError
    }
    return inner(batch);
  };
  SearchOptions opt;
  opt.max_states = 1 << 20;
  opt.batch_size = 8;
  opt.stale_wave_limit = 0;
  opt.budget = &tracker;
  const auto r = generic_search(0, cb, opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.budget.budget_exhausted);
  EXPECT_EQ(r.budget.trigger, util::BudgetTrigger::kMemory);
}

TEST(SearchBudgetTest, ShrinkRequestEvictsOldestVisitedEntries) {
  // The evaluator's degradation ladder requests a visited shrink; the driver
  // services it at the next wave boundary — evictions appear in the stats
  // and the search keeps going (no cutoff while shrinking still helps).
  util::SolveBudget spec;
  spec.max_bytes = std::size_t{1} << 40;  // memory budget armed, never over
  util::BudgetTracker tracker(spec);
  std::atomic<bool> requested{false};
  auto cb = tree_callbacks(10, 4000);
  cb.evaluate = [&, inner = cb.evaluate](std::span<const int> batch) {
    auto out = inner(batch);
    // One request once the set is big enough that halving beats the floor.
    if (!requested.load() && batch.front() > 600) {
      requested.store(true);
      tracker.request_visited_shrink();
    }
    return out;
  };
  SearchOptions opt;
  opt.max_states = 4000;
  opt.batch_size = 16;
  opt.stale_wave_limit = 0;
  opt.budget = &tracker;
  const auto r = generic_search(0, cb, opt);
  EXPECT_TRUE(requested.load());
  EXPECT_GT(r.stats.visited_evicted, 0u);
  EXPECT_FALSE(r.budget.budget_exhausted);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 10);
}

TEST(SearchBudgetTest, ShrinkingPastTheFloorFiresMemoryCutoff) {
  // A shrink request every wave drives the set to its floor; once nothing is
  // left to evict the ladder's last rung fires kMemory and the search ends
  // with its incumbent.
  util::SolveBudget spec;
  spec.max_bytes = 1;  // over budget from the first wave on
  util::BudgetTracker tracker(spec);
  auto cb = tree_callbacks(0, 1 << 20);
  cb.evaluate = [&, inner = cb.evaluate](std::span<const int> batch) {
    tracker.request_visited_shrink();
    return inner(batch);
  };
  SearchOptions opt;
  opt.max_states = 1 << 20;
  opt.batch_size = 8;
  opt.stale_wave_limit = 0;
  opt.budget = &tracker;
  const auto r = generic_search(0, cb, opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_TRUE(r.budget.budget_exhausted);
  EXPECT_EQ(r.budget.trigger, util::BudgetTrigger::kMemory);
  EXPECT_LT(r.stats.states_evaluated, std::size_t{1} << 20);
}

// Satellite: bounded-visited FIFO eviction under the pipelined driver must
// match the serial driver exactly (eviction order is insertion order, which
// speculation does not perturb).
TEST(SearchBudgetTest, PipelinedBoundedVisitedMatchesSerial) {
  auto run = [](bool pipeline) {
    SearchOptions opt;
    opt.max_states = 4000;
    opt.max_visited = 64;
    opt.pipeline = pipeline;
    return generic_search(0, tree_callbacks(10, 4000), opt);
  };
  const auto serial = run(false);
  const auto piped = run(true);
  EXPECT_GT(piped.stats.visited_evicted, 0u);
  ASSERT_TRUE(piped.best.has_value());
  EXPECT_EQ(*piped.best, 10);
  expect_identical(serial, piped);
}

TEST(VisitedShrinkTest, ShrinkToDropsOldestAndCapsCapacity) {
  detail::VisitedSet set(0, /*track_order=*/true);
  for (std::uint64_t h = 0; h < 100; ++h) EXPECT_TRUE(set.insert(h));
  EXPECT_EQ(set.size(), 100u);
  set.shrink_to(10);
  EXPECT_EQ(set.size(), 10u);
  EXPECT_EQ(set.evicted(), 90u);
  EXPECT_EQ(set.capacity(), 10u);
  // The oldest hashes were dropped (re-inserting one succeeds)...
  EXPECT_TRUE(set.insert(0));
  // ...while the newest survived (re-inserting is a duplicate hit).
  EXPECT_FALSE(set.insert(99));
}

TEST(VisitedShrinkTest, WrappedBoundedRingShrinksOldestFirst) {
  detail::VisitedSet set(8, /*track_order=*/false);
  for (std::uint64_t h = 0; h < 12; ++h) set.insert(h);  // ring wrapped
  EXPECT_EQ(set.evicted(), 4u);  // 0..3 FIFO-evicted by capacity
  set.shrink_to(2);
  EXPECT_EQ(set.size(), 2u);
  // Only the two newest (10, 11) remain.
  EXPECT_FALSE(set.insert(10));
  EXPECT_FALSE(set.insert(11));
  EXPECT_TRUE(set.insert(4));
}

TEST(VisitedShrinkTest, UntrackedUnboundedSetCannotShrink) {
  detail::VisitedSet set(0, /*track_order=*/false);
  for (std::uint64_t h = 0; h < 50; ++h) set.insert(h);
  set.shrink_to(5);  // no insertion order recorded: a documented no-op
  EXPECT_EQ(set.size(), 50u);
  EXPECT_EQ(set.evicted(), 0u);
}

}  // namespace
}  // namespace deco::core
