// Budget chaos pass: hammer the solver stack with randomized tiny
// wall-clock and memory budgets and assert the anytime contract holds at
// every point — no hang, no crash, no leak (the CI chaos job runs this
// under ASan with DECO_CHAOS=1), and always a full-size plan with a valid
// final evaluation.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "core/scheduling.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/budget.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

/// DECO_CHAOS=1 (the CI chaos job) runs the full randomized sweep; the
/// default developer run keeps a quick smoke-sized subset.
std::size_t chaos_points() {
  if (const char* env = std::getenv("DECO_CHAOS")) {
    if (std::string(env) != "0" && !std::string(env).empty()) return 120;
  }
  return 20;
}

workflow::Workflow random_small_workflow(util::Rng& rng) {
  switch (static_cast<int>(rng.uniform() * 4)) {
    case 0: {
      return workflow::make_montage(1, rng);
    }
    case 1: {
      return workflow::make_ligo(12 + static_cast<std::size_t>(
                                          rng.uniform() * 20),
                                 rng);
    }
    case 2: {
      return workflow::make_cybershake(12 + static_cast<std::size_t>(
                                                rng.uniform() * 20),
                                       rng);
    }
    default: {
      return workflow::make_pipeline(3 + static_cast<std::size_t>(
                                             rng.uniform() * 6),
                                     rng);
    }
  }
}

TEST(BudgetChaosTest, RandomTinyBudgetsNeverHangOrCrash) {
  util::Rng rng(20260808);
  const std::size_t points = chaos_points();
  std::size_t cut = 0;
  for (std::size_t i = 0; i < points; ++i) {
    workflow::Workflow wf = random_small_workflow(rng);
    TaskTimeEstimator estimator(ec2(), store());
    vgpu::VirtualGpuBackend backend(2);
    SchedulingProblem problem(wf, estimator, backend);

    util::SolveBudget spec;
    // Random point in the nasty corner: sub-5ms wall budgets, sometimes a
    // tiny memory cap, sometimes both, sometimes already expired.
    if (rng.uniform() < 0.8) spec.wall_ms = rng.uniform() * 5.0;
    if (rng.uniform() < 0.4) {
      spec.max_bytes = 1024 + static_cast<std::size_t>(
                                  rng.uniform() * 512.0 * 1024.0);
    }
    util::BudgetTracker tracker(spec);
    if (rng.uniform() < 0.2) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    SchedulingOptions options;
    options.search.budget = &tracker;
    options.search.pipeline = rng.uniform() < 0.5;
    options.use_astar = rng.uniform() < 0.3;
    const ProbDeadline req{0.9, 1e6 + rng.uniform() * 1e7};

    SchedulingResult r;
    ASSERT_NO_THROW(r = problem.solve(req, options))
        << "point " << i << " wf=" << wf.name();
    ASSERT_EQ(r.plan.size(), wf.task_count())
        << "point " << i << " wf=" << wf.name();
    EXPECT_GT(r.evaluation.mean_cost, 0.0)
        << "point " << i << " wf=" << wf.name();
    if (r.budget.budget_exhausted) {
      ++cut;
      EXPECT_NE(r.budget.trigger, util::BudgetTrigger::kNone) << "point " << i;
    }
  }
  // The sweep is only meaningful if a healthy share of points actually hit
  // their budget; with sub-5ms wall budgets on real solves that is a given.
  EXPECT_GT(cut, points / 4) << "chaos budgets were not tight enough";
}

TEST(BudgetChaosTest, RepeatedCancellationKeepsBackendReusable) {
  // One shared backend across many cancelled solves: the worker pool and
  // evaluator caches must come back clean every time.
  util::Rng rng(77);
  workflow::Workflow wf = workflow::make_montage(1, rng);
  TaskTimeEstimator estimator(ec2(), store());
  vgpu::VirtualGpuBackend backend(2);
  SchedulingProblem problem(wf, estimator, backend);
  const ProbDeadline req{0.9, 1e7};
  for (int i = 0; i < 8; ++i) {
    util::SolveBudget spec;
    spec.wall_ms = 1e9;
    util::BudgetTracker tracker(spec);
    tracker.fire(util::BudgetTrigger::kCancel);
    SchedulingOptions options;
    options.search.budget = &tracker;
    SchedulingResult r;
    ASSERT_NO_THROW(r = problem.solve(req, options)) << "iteration " << i;
    ASSERT_EQ(r.plan.size(), wf.task_count()) << "iteration " << i;
  }
  // And a final unbudgeted solve works exactly as if nothing happened.
  const auto clean = problem.solve(req);
  EXPECT_TRUE(clean.found);
}

}  // namespace
}  // namespace deco::core
