#include "core/deco.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

// Example 1's program (workflow scheduling), parameterized by deadline.
std::string scheduling_program(const std::string& deadline_args) {
  return R"(
    import(amazonec2).
    import(workflow).
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline()" +
         deadline_args + R"().
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).

    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
    totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
  )";
}

DecoOptions fast_options() {
  DecoOptions opt;
  opt.backend = "serial";
  opt.wlog_max_states = 64;
  opt.wlog_mc_iterations = 24;
  return opt;
}

TEST(DecoTest, SolveProgramLooseDeadlineKeepsCheapTypes) {
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(3, rng);
  Deco engine(ec2(), store(), fast_options());
  // Extremely loose deadline: cheapest configuration wins.
  const auto r = engine.solve_program(scheduling_program("99%, 1000h"), wf);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.feasible);
  for (const auto& p : r.plan.placements) EXPECT_EQ(p.vm_type, 0u);
  EXPECT_GT(r.goal_value, 0.0);
}

TEST(DecoTest, SolveProgramTightDeadlinePromotes) {
  util::Rng rng(4);
  workflow::Workflow wf("cpu");
  // Three CPU-heavy chained tasks: 1200 s each on m1.small.
  workflow::TaskId prev = workflow::kInvalidTask;
  for (int i = 0; i < 3; ++i) {
    const auto id = wf.add_task({"t" + std::to_string(i), "p", 1200, 0, 0});
    if (i > 0) wf.add_edge(prev, id, 0);
    prev = id;
  }
  Deco engine(ec2(), store(), fast_options());
  // 3600s total on m1.small; the 2000s deadline needs ~2x speedups, i.e.
  // promotions (the per-core cap makes anything under 1800s unreachable).
  const auto r = engine.solve_program(scheduling_program("90%, 2000"), wf);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.feasible);
  std::size_t promoted = 0;
  for (const auto& p : r.plan.placements) {
    if (p.vm_type > 0) ++promoted;
  }
  EXPECT_GT(promoted, 0u);
}

TEST(DecoTest, SolveProgramReportsParseErrors) {
  util::Rng rng(5);
  const auto wf = workflow::make_pipeline(2, rng);
  Deco engine(ec2(), store(), fast_options());
  const auto r = engine.solve_program("goal minimize X in", wf);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("parse error"), std::string::npos);
}

TEST(DecoTest, SolveProgramRequiresGoal) {
  util::Rng rng(6);
  const auto wf = workflow::make_pipeline(2, rng);
  Deco engine(ec2(), store(), fast_options());
  const auto r = engine.solve_program("task(x).", wf);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("goal"), std::string::npos);
}

TEST(DecoTest, SolveProgramRequiresVarDecl) {
  util::Rng rng(7);
  const auto wf = workflow::make_pipeline(2, rng);
  Deco engine(ec2(), store(), fast_options());
  const auto r = engine.solve_program(
      "goal minimize C in totalcost(C).\n totalcost(0).", wf);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("var"), std::string::npos);
}

TEST(DecoTest, AstarProgramMatchesGeneric) {
  util::Rng rng(8);
  const auto wf = workflow::make_pipeline(2, rng);
  Deco engine(ec2(), store(), fast_options());
  const std::string base = scheduling_program("90%, 1000h");
  const std::string astar = base + R"(
    enabled(astar).
    cal_g_score(C) :- totalcost(C).
    est_h_score(0).
  )";
  const auto g = engine.solve_program(base, wf);
  const auto a = engine.solve_program(astar, wf);
  ASSERT_TRUE(g.ok) << g.error;
  ASSERT_TRUE(a.ok) << a.error;
  // Loose deadline: both settle on the all-cheapest plan.
  EXPECT_EQ(g.plan, a.plan);
}

TEST(DecoTest, NativeScheduleFacade) {
  util::Rng rng(9);
  const auto wf = workflow::make_montage(1, rng);
  Deco engine(ec2(), store(), fast_options());
  const auto r = engine.schedule(wf, {0.9, 1e7});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.plan.size(), wf.task_count());
}

TEST(DecoTest, GenerousBudgetLeavesDeclarativeSolveUnchanged) {
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(3, rng);
  const std::string program = scheduling_program("99%, 1000h");
  Deco plain(ec2(), store(), fast_options());
  const auto unbudgeted = plain.solve_program(program, wf);
  ASSERT_TRUE(unbudgeted.ok) << unbudgeted.error;

  util::SolveBudget spec;
  spec.wall_ms = 1e9;
  util::BudgetTracker tracker(spec);
  DecoOptions opt = fast_options();
  opt.budget = &tracker;
  Deco budgeted_engine(ec2(), store(), opt);
  const auto budgeted = budgeted_engine.solve_program(program, wf);
  ASSERT_TRUE(budgeted.ok) << budgeted.error;
  EXPECT_EQ(budgeted.plan, unbudgeted.plan);
  EXPECT_EQ(budgeted.goal_value, unbudgeted.goal_value);
  EXPECT_FALSE(budgeted.budget.budget_exhausted);
}

TEST(DecoTest, PreFiredBudgetCutsDeclarativeSolveCleanly) {
  // A budget that fired before the solve begins: the declarative pipeline
  // (interpreter enumeration runs before any search incumbent exists) must
  // fail cleanly with a budget-exhausted report, never hang or crash.
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(3, rng);
  util::SolveBudget spec;
  spec.wall_ms = 1e9;
  util::BudgetTracker tracker(spec);
  tracker.fire(util::BudgetTrigger::kCancel);
  DecoOptions opt = fast_options();
  opt.budget = &tracker;
  Deco engine(ec2(), store(), opt);
  WlogSolveResult r;
  ASSERT_NO_THROW(r = engine.solve_program(scheduling_program("99%, 1000h"),
                                           wf));
  EXPECT_TRUE(r.budget.budget_exhausted);
  EXPECT_EQ(r.budget.trigger, util::BudgetTrigger::kCancel);
  if (!r.ok) {
    EXPECT_NE(r.error.find("budget"), std::string::npos) << r.error;
  }
}

TEST(DecoTest, BackendSelectionWorks) {
  DecoOptions opt;
  opt.backend = "vgpu";
  Deco engine(ec2(), store(), opt);
  EXPECT_EQ(engine.backend().name(), "vgpu");
  DecoOptions serial;
  serial.backend = "serial";
  Deco engine2(ec2(), store(), serial);
  EXPECT_EQ(engine2.backend().name(), "serial");
}

}  // namespace
}  // namespace deco::core
