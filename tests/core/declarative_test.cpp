// Tests for the generalized declarative solver and the WLog ensemble path.
#include "core/declarative.hpp"

#include <gtest/gtest.h>

#include "core/deco.hpp"
#include "tests/core/test_fixtures.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

// A self-contained knapsack-ish program: 3 items with values and weights,
// boolean decision per item, weight budget.
constexpr const char* kKnapsack = R"(
  item(a). item(b). item(c).
  value(a, 10). value(b, 6). value(c, 5).
  weight(a, 8). weight(b, 5). weight(c, 4).

  goal maximize V in totalvalue(V).
  cons W in totalweight(W) satisfies W =< 9.
  var take(I, Flag) forall item(I).

  totalvalue(V) :- findall(X, (take(I,1), value(I,X)), Bag), sum(Bag, V).
  totalweight(W) :- findall(X, (take(I,1), weight(I,X)), Bag), sum(Bag, W).
)";

DeclarativeResult solve_text(const char* text, std::size_t max_states = 64) {
  const auto parsed = wlog::parse_program(text);
  EXPECT_TRUE(parsed.ok()) << (parsed.error ? parsed.error->message : "");
  const wlog::ProbProgram ir = wlog::translate_rules(parsed.program);
  DeclarativeOptions opt;
  opt.max_states = max_states;
  opt.mc_iterations = 8;  // deterministic program: 1 iteration would do
  DeclarativeSolver solver(opt);
  return solver.solve(parsed.program, ir);
}

TEST(DeclarativeSolverTest, SolvesBooleanKnapsack) {
  const auto r = solve_text(kKnapsack);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.feasible);
  // Optimum under weight 9: {b, c} with value 11 (a alone is 10).
  EXPECT_DOUBLE_EQ(r.goal_value, 11.0);
  ASSERT_EQ(r.assignment.size(), 3u);
  EXPECT_EQ(r.assignment[0], 0);  // a
  EXPECT_EQ(r.assignment[1], 1);  // b
  EXPECT_EQ(r.assignment[2], 1);  // c
  EXPECT_EQ(r.choices, (std::vector<std::string>{"0", "1"}));
}

TEST(DeclarativeSolverTest, EntitiesReportGeneratorKeys) {
  const auto r = solve_text(kKnapsack);
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(r.entities.size(), 3u);
  EXPECT_EQ(r.entities[0], "item(a)");
}

TEST(DeclarativeSolverTest, TwoGeneratorChoiceForm) {
  // Assign each job one machine minimizing total cost; machine m2 is
  // cheaper for j1, m1 for j2.
  const char* text = R"(
    job(j1). job(j2). machine(m1). machine(m2).
    rate(j1, m1, 10). rate(j1, m2, 3).
    rate(j2, m1, 2). rate(j2, m2, 9).
    goal minimize C in totalcost(C).
    var assign(J, M, Flag) forall job(J) and machine(M).
    totalcost(C) :- findall(X, (assign(J,M,1), rate(J,M,X)), Bag),
        sum(Bag, C).
  )";
  const auto r = solve_text(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.goal_value, 5.0);
  ASSERT_EQ(r.assignment.size(), 2u);
  EXPECT_EQ(r.assignment[0], 1);  // j1 -> m2
  EXPECT_EQ(r.assignment[1], 0);  // j2 -> m1
}

TEST(DeclarativeSolverTest, HoldsConstraintFiltersStates) {
  const char* text = R"(
    item(a). item(b).
    value(a, 5). value(b, 3).
    forbidden(a).
    goal maximize V in totalvalue(V).
    cons forall(take(I,1), \+ forbidden(I)).
    var take(I, Flag) forall item(I).
    totalvalue(V) :- findall(X, (take(I,1), value(I,X)), Bag), sum(Bag, V).
  )";
  const auto r = solve_text(text);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.goal_value, 3.0);  // only b is allowed
  EXPECT_EQ(r.assignment[0], 0);
  EXPECT_EQ(r.assignment[1], 1);
}

TEST(DeclarativeSolverTest, MissingGeneratorFactsIsError) {
  const char* text = R"(
    goal maximize V in v(V).
    var take(I, F) forall item(I).
    v(0).
  )";
  const auto r = solve_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("generator"), std::string::npos);
}

TEST(DeclarativeSolverTest, ThreeGeneratorsRejected) {
  const char* text = R"(
    a(x). b(y). c(z).
    goal maximize V in v(V).
    var t(A,B,C,F) forall a(A) and b(B) and c(C).
    v(0).
  )";
  const auto r = solve_text(text);
  EXPECT_FALSE(r.ok);
}

// --- the WLog ensemble path through the engine -----------------------------

workflow::Ensemble tiny_ensemble() {
  util::Rng rng(17);
  workflow::EnsembleOptions opt;
  opt.app = workflow::AppType::kLigo;
  opt.type = workflow::EnsembleType::kConstant;
  opt.num_workflows = 4;
  opt.sizes = {20};
  workflow::Ensemble e = workflow::make_ensemble(opt, rng);
  for (auto& m : e.members) {
    m.deadline_s = 3 * 3600;
    m.deadline_q = 90;
  }
  return e;
}

std::string ensemble_program(double budget) {
  return R"(
    import(amazonec2).
    import(ensemble).
    goal maximize S in totalscore(S).
    cons C in totalcost(C) satisfies budget(100%, )" +
         std::to_string(budget) + R"().
    cons forall(execute(W,1), deadline_ok(W)).
    var execute(W, Run) forall wkf(W).

    score(W, V) :- priority(W, P), V is pow(2, -P).
    totalscore(S) :- findall(V, (execute(W,1), score(W,V)), Bag),
        sum(Bag, S).
    totalcost(C) :- findall(V, (execute(W,1), wfcost(W,V)), Bag),
        sum(Bag, C).
  )";
}

TEST(WlogEnsembleTest, GenerousBudgetAdmitsEverything) {
  auto e = tiny_ensemble();
  e.budget = 1e9;
  core::DecoOptions opt;
  opt.backend = "serial";
  opt.wlog_max_states = 64;
  Deco engine(ec2(), store(), opt);
  const auto r = engine.solve_ensemble_program(ensemble_program(1e9), e);
  ASSERT_TRUE(r.ok) << r.error;
  for (bool a : r.admitted) EXPECT_TRUE(a);
  EXPECT_NEAR(r.goal_value, e.max_score(), 1e-9);
}

TEST(WlogEnsembleTest, ZeroBudgetAdmitsNothing) {
  auto e = tiny_ensemble();
  e.budget = 0;
  core::DecoOptions opt;
  opt.backend = "serial";
  Deco engine(ec2(), store(), opt);
  const auto r = engine.solve_ensemble_program(ensemble_program(0), e);
  ASSERT_TRUE(r.ok) << r.error;
  for (bool a : r.admitted) EXPECT_FALSE(a);
  EXPECT_DOUBLE_EQ(r.goal_value, 0.0);
}

TEST(WlogEnsembleTest, MatchesNativePlannerScore) {
  auto e = tiny_ensemble();
  core::DecoOptions opt;
  opt.backend = "serial";
  opt.wlog_max_states = 64;
  Deco engine(ec2(), store(), opt);

  // Probe: per-member cost from the native planner.
  auto probe = e;
  probe.budget = 1e9;
  EnsemblePlanOptions popt;
  const auto full = engine.plan_ensemble(probe, popt);
  double budget = 0;
  for (double c : full.member_costs) budget += c;
  budget *= 0.6;
  e.budget = budget;

  const auto declarative =
      engine.solve_ensemble_program(ensemble_program(budget), e);
  ASSERT_TRUE(declarative.ok) << declarative.error;
  const auto native = engine.plan_ensemble(e, popt);
  EXPECT_NEAR(declarative.goal_value, native.score, 0.26);
}

// --- use case 3 declaratively: follow-the-cost over migration facts -------

TEST(WlogMigrationTest, ChoosesCheapestFeasibleRegions) {
  util::Rng rng(31);
  const auto wf = workflow::make_pipeline(8, rng);
  TaskTimeEstimator estimator(ec2(), store());
  MigrationOptimizer optimizer(ec2(), estimator);

  // One workflow in the pricey region (free to move), one pinned by a huge
  // frontier payload.
  std::vector<MigrationWorkflowState> states;
  for (int i = 0; i < 2; ++i) {
    MigrationWorkflowState s;
    s.wf = &wf;
    s.finished.assign(wf.task_count(), false);
    s.region = 1;
    s.vm_type = 1;
    s.deadline_s = 1e7;
    states.push_back(std::move(s));
  }
  states[1].finished[0] = true;  // its frontier edge must cross regions

  const char* text = R"(
    goal minimize C in totalcost(C).
    cons forall(migrate(W,R,1), region_ok(W,R)).
    var migrate(W, R, Go) forall wkf(W) and region(R).
    cost(W, R, C) :- exec_cost(W,R,E), migr_cost(W,R,M), C is E+M.
    totalcost(C) :- findall(X, (migrate(W,R,1), cost(W,R,X)), Bag),
        sum(Bag, C).
  )";
  const auto parsed = wlog::parse_program(text);
  ASSERT_TRUE(parsed.ok());
  const auto ir =
      build_migration_ir(parsed.program, ec2(), optimizer, states);

  DeclarativeOptions opt;
  opt.max_states = 32;
  opt.mc_iterations = 4;
  DeclarativeSolver solver(opt);
  const auto r = solver.solve(parsed.program, ir);
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.assignment.size(), 2u);
  // Workflow 0 moves to the cheap region (index 0 = r0).
  EXPECT_EQ(r.choices[static_cast<std::size_t>(r.assignment[0])], "region(r0)");
  // The declarative answer matches the native optimizer.
  const auto native = optimizer.optimize(states);
  EXPECT_EQ(static_cast<std::size_t>(r.assignment[0]), native.targets[0]);
  EXPECT_EQ(static_cast<std::size_t>(r.assignment[1]), native.targets[1]);
}

TEST(WlogEnsembleTest, ParseErrorReported) {
  auto e = tiny_ensemble();
  core::DecoOptions opt;
  opt.backend = "serial";
  Deco engine(ec2(), store(), opt);
  const auto r = engine.solve_ensemble_program("goal maximize", e);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("parse error"), std::string::npos);
}

}  // namespace
}  // namespace deco::core
