#include "core/wlog_bridge.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

workflow::Workflow tiny_pipeline() {
  util::Rng rng(3);
  return workflow::make_pipeline(3, rng);
}

wlog::Program empty_program() {
  return wlog::parse_program("").program;
}

TEST(WlogBridgeTest, AtomNaming) {
  EXPECT_EQ(WlogBridge::task_atom(0), "t0");
  EXPECT_EQ(WlogBridge::task_atom(12), "t12");
  EXPECT_EQ(WlogBridge::vm_atom(3), "v3");
  EXPECT_EQ(WlogBridge::region_atom(1), "r1");
}

TEST(WlogBridgeTest, ImportsWorkflowFacts) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  wlog::Interpreter interp(ir.base());
  EXPECT_TRUE(interp.holds("task(t0)"));
  EXPECT_TRUE(interp.holds("task(t2)"));
  EXPECT_FALSE(interp.holds("task(t3)"));
  EXPECT_TRUE(interp.holds("edge(t0, t1)"));
  EXPECT_TRUE(interp.holds("edge(root, t0)"));
  EXPECT_TRUE(interp.holds("edge(t2, tail)"));
}

TEST(WlogBridgeTest, ImportsCloudFacts) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  wlog::Interpreter interp(ir.base());
  EXPECT_TRUE(interp.holds("vm(v0)"));
  EXPECT_TRUE(interp.holds("vm(v3)"));
  const auto s = interp.query("price(v0, P)");
  ASSERT_EQ(s.size(), 1u);
  // m1.small: $0.044/h expressed per second.
  EXPECT_NEAR(s[0].number("P"), 0.044 / 3600.0, 1e-9);
}

TEST(WlogBridgeTest, ImportsRegionTopologyAndTransferPrices) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  wlog::Interpreter interp(ir.base());
  const std::size_t regions = ec2().region_count();
  ASSERT_GE(regions, 2u);
  EXPECT_TRUE(interp.holds("region(r0)"));
  EXPECT_TRUE(interp.holds("region(r1)"));
  EXPECT_FALSE(interp.holds("region(r" + std::to_string(regions) + ")"));
  // Transfer prices exist for every ordered pair, priced by the source
  // region's egress rate; no self-transfer fact.
  const auto s = interp.query("transfer_price(r0, r1, K)");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s[0].number("K"), ec2().egress_price(0), 1e-12);
  EXPECT_EQ(interp.query("transfer_price(r0, r0, K)").size(), 0u);
  EXPECT_EQ(interp.query("transfer_price(A, B, K)", 1000).size(),
            regions * (regions - 1));
}

TEST(WlogBridgeTest, BindPlanAssertsRegionPlacements) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  sim::Plan plan = sim::Plan::uniform(3, 2, 0);
  plan[1].region = 1;
  const auto bound = bridge.bind_plan(ir, plan);
  wlog::Interpreter interp(bound.base());
  EXPECT_TRUE(interp.holds("region(t0, r0)"));
  EXPECT_TRUE(interp.holds("region(t1, r1)"));
  EXPECT_FALSE(interp.holds("region(t1, r0)"));
  // Arity keeps the topology facts distinct from the placement facts.
  EXPECT_TRUE(interp.holds("region(r1)"));
}

TEST(WlogBridgeTest, ExetimeGroupsPerTaskTypePair) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridgeOptions opt;
  opt.exetime_bins = 4;
  WlogBridge bridge(wf, est, opt);
  const auto ir = bridge.build_ir(empty_program());
  // 3 tasks x 4 types.
  EXPECT_EQ(ir.groups().size(), 12u);
  for (const auto& g : ir.groups()) {
    EXPECT_EQ(g.facts.size(), 4u);
    double total = 0;
    for (double p : g.probs) total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(WlogBridgeTest, SampledWorldHasOneExetimePerPair) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  util::Rng rng(5);
  const auto world = ir.sample_world(rng);
  wlog::Interpreter interp(world);
  const auto times = interp.query("exetime(t1, v2, T)", 10);
  EXPECT_EQ(times.size(), 1u);
  EXPECT_GT(times[0].number("T"), 0.0);
}

TEST(WlogBridgeTest, BindPlanAssertsConfigs) {
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto ir = bridge.build_ir(empty_program());
  sim::Plan plan = sim::Plan::uniform(3, 2);
  plan[1].vm_type = 0;
  const auto bound = bridge.bind_plan(ir, plan);
  wlog::Interpreter interp(bound.base());
  EXPECT_TRUE(interp.holds("configs(t0, v2, 1)"));
  EXPECT_TRUE(interp.holds("configs(t1, v0, 1)"));
  EXPECT_FALSE(interp.holds("configs(t1, v2, 1)"));
  EXPECT_TRUE(interp.holds("configs(root, v0, 1)"));
  EXPECT_TRUE(interp.holds("configs(tail, v0, 1)"));
}

TEST(WlogBridgeTest, TotalcostComputableThroughIr) {
  // The full Example 1 cost pipeline over the bridge facts.
  const auto wf = tiny_pipeline();
  TaskTimeEstimator est(ec2(), store());
  WlogBridge bridge(wf, est);
  const auto parsed = wlog::parse_program(R"(
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
    totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
  )");
  ASSERT_TRUE(parsed.ok());
  const auto ir = bridge.build_ir(parsed.program);
  const auto bound = bridge.bind_plan(ir, sim::Plan::uniform(3, 0));
  util::Rng rng(7);
  const auto q = wlog::parse_term("totalcost(Ct)");
  const auto var = wlog::make_var(q.variables[0].second, "Ct");
  wlog::McOptions mc;
  mc.max_iterations = 64;
  const auto result = wlog::mc_eval_goal(bound, q.term, var, rng, mc);
  EXPECT_DOUBLE_EQ(result.probability, 1.0);
  // Cross-check against the native estimate (Eq. 1).
  double expected = 0;
  for (workflow::TaskId t = 0; t < 3; ++t) {
    expected += est.mean_time(wf, t, 0) * 0.044 / 3600.0;
  }
  EXPECT_NEAR(result.value, expected, 0.35 * expected);
}

}  // namespace
}  // namespace deco::core
