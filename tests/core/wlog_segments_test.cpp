// Differential tests for the IR-to-segment translation: the segment
// evaluators must reproduce the Monte Carlo engines (interpreter oracle and
// bytecode VM) bit-for-bit — same RNG consumption, same per-world values,
// same failure worlds.
#include "core/wlog_segments.hpp"

#include <gtest/gtest.h>

#include "core/deco.hpp"
#include "tests/core/test_fixtures.hpp"
#include "wlog/problog.hpp"
#include "wlog/program.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;
using wlog::TermPtr;

std::string canonical_rules() {
  return R"(
    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
    totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
  )";
}

std::string canonical_program() {
  return R"(
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline(90%, 100).
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
  )" + canonical_rules();
}

TermPtr atom(const std::string& name) { return wlog::make_atom(name); }

TermPtr fact2(const std::string& f, const std::string& a, double v) {
  return wlog::make_compound(f, {atom(a), wlog::make_number(v)});
}

TermPtr fact3(const std::string& f, const std::string& a,
              const std::string& b, double v) {
  return wlog::make_compound(f, {atom(a), atom(b), wlog::make_number(v)});
}

/// Diamond workflow root -> t1 -> {t2, t3} -> tail with per-(task, vm)
/// exetime histograms as probabilistic groups.
wlog::ProbProgram diamond_ir(const wlog::Program& program) {
  wlog::ProbProgram ir = wlog::translate_rules(program);
  wlog::Database& base = ir.base();
  base.add_fact(wlog::make_compound("edge", {atom("root"), atom("t1")}));
  base.add_fact(wlog::make_compound("edge", {atom("t1"), atom("t2")}));
  base.add_fact(wlog::make_compound("edge", {atom("t1"), atom("t3")}));
  base.add_fact(wlog::make_compound("edge", {atom("t2"), atom("tail")}));
  base.add_fact(wlog::make_compound("edge", {atom("t3"), atom("tail")}));
  base.add_fact(fact2("price", "v0", 1.5));
  base.add_fact(fact2("price", "v1", 3.25));
  for (const char* vm : {"v0", "v1"}) {
    base.add_fact(fact3("exetime", "root", vm, 0));
    base.add_fact(fact3("exetime", "tail", vm, 0));
  }
  base.add_fact(fact3("configs", "root", "v0", 1));
  base.add_fact(fact3("configs", "tail", "v0", 1));
  double scale = 1.0;
  for (const char* task : {"t1", "t2", "t3"}) {
    for (const char* vm : {"v0", "v1"}) {
      wlog::ProbGroup group;
      group.probs = {0.25, 0.5, 0.25};
      group.facts = {fact3("exetime", task, vm, 8.5 * scale),
                     fact3("exetime", task, vm, 11.0 * scale),
                     fact3("exetime", task, vm, 17.25 * scale)};
      ir.add_group(std::move(group));
      scale *= 0.75;  // distinct, non-integral values per (task, vm)
    }
  }
  return ir;
}

/// The solver's two-generator binding: one configs fact per task.
wlog::ProbProgram bind_diamond(const wlog::ProbProgram& ir) {
  wlog::ProbProgram bound = ir;
  bound.base().add_fact(fact3("configs", "t1", "v0", 1));
  bound.base().add_fact(fact3("configs", "t2", "v1", 1));
  bound.base().add_fact(fact3("configs", "t3", "v0", 1));
  return bound;
}

TEST(WlogSegmentsTest, TranslationRecognizesCanonicalShapes) {
  const auto parsed = wlog::parse_program(canonical_program());
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  ASSERT_TRUE(plan.any());
  ASSERT_TRUE(plan.sum().has_value());
  EXPECT_EQ(plan.sum()->functor, "totalcost");
  EXPECT_EQ(plan.sum()->price_f, "price");
  EXPECT_EQ(plan.sum()->exe_f, "exetime");
  EXPECT_EQ(plan.sum()->cfg_f, "configs");
  ASSERT_TRUE(plan.path().has_value());
  EXPECT_EQ(plan.path()->functor, "maxtime");
  EXPECT_EQ(plan.path()->source, "root");
  EXPECT_EQ(plan.path()->target, "tail");
  EXPECT_EQ(plan.group_functor(), "exetime");
}

TEST(WlogSegmentsTest, SampleValuesMatchBothEnginesBitForBit) {
  const auto parsed = wlog::parse_program(canonical_program());
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  ASSERT_TRUE(plan.any());
  const wlog::ProbProgram bound = bind_diamond(ir);
  const SegmentState state(plan, bound);

  const wlog::ConstraintSpec& cons = parsed.program.constraints.at(0);
  ASSERT_TRUE(state.can_answer(cons.query, cons.variable));

  wlog::McOptions interp_mc;
  interp_mc.max_iterations = 40;
  interp_mc.exec = wlog::ExecMode::kInterp;
  wlog::McOptions vm_mc = interp_mc;
  vm_mc.exec = wlog::ExecMode::kVm;

  util::Rng r1(2026), r2(2026), r3(2026);
  const auto oracle =
      wlog::mc_sample_values(bound, cons.query, cons.variable, r1, interp_mc);
  const auto vm =
      wlog::mc_sample_values(bound, cons.query, cons.variable, r2, vm_mc);
  const auto segment = state.sample_values(cons.query, cons.variable, r3,
                                           vm_mc);
  ASSERT_EQ(oracle.size(), interp_mc.max_iterations);  // maxtime never fails
  EXPECT_EQ(oracle, vm);
  EXPECT_EQ(oracle, segment);  // bitwise: same worlds, same float order
}

TEST(WlogSegmentsTest, GoalEvalMatchesBothEnginesBitForBit) {
  const auto parsed = wlog::parse_program(canonical_program());
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  ASSERT_TRUE(plan.any());
  const wlog::ProbProgram bound = bind_diamond(ir);
  const SegmentState state(plan, bound);

  const TermPtr query = parsed.program.goal->query;
  const TermPtr variable = parsed.program.goal->variable;
  ASSERT_TRUE(state.can_answer(query, variable));

  wlog::McOptions interp_mc;
  interp_mc.max_iterations = 40;
  interp_mc.exec = wlog::ExecMode::kInterp;
  wlog::McOptions vm_mc = interp_mc;
  vm_mc.exec = wlog::ExecMode::kVm;

  util::Rng r1(7), r2(7), r3(7);
  const auto oracle =
      wlog::mc_eval_goal(bound, query, variable, r1, interp_mc);
  const auto vm = wlog::mc_eval_goal(bound, query, variable, r2, vm_mc);
  const auto segment = state.eval_goal(query, variable, r3, vm_mc);
  EXPECT_EQ(oracle.probability, 1.0);
  EXPECT_EQ(oracle.value, vm.value);
  EXPECT_EQ(oracle.value, segment.value);
  EXPECT_EQ(oracle.probability, segment.probability);
}

TEST(WlogSegmentsTest, InfeasibleWorldsFailInBothPaths) {
  const auto parsed = wlog::parse_program(canonical_program());
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  ASSERT_TRUE(plan.any());
  // t1 gets no configs fact: every root->tail path is blocked, so maxtime
  // has no proof in any world.
  wlog::ProbProgram bound = ir;
  bound.base().add_fact(fact3("configs", "t2", "v0", 1));
  bound.base().add_fact(fact3("configs", "t3", "v0", 1));
  const SegmentState state(plan, bound);

  const wlog::ConstraintSpec& cons = parsed.program.constraints.at(0);
  ASSERT_TRUE(state.can_answer(cons.query, cons.variable));
  wlog::McOptions mc;
  mc.max_iterations = 8;
  mc.exec = wlog::ExecMode::kInterp;
  util::Rng r1(5), r2(5);
  const auto oracle =
      wlog::mc_sample_values(bound, cons.query, cons.variable, r1, mc);
  const auto segment = state.sample_values(cons.query, cons.variable, r2, mc);
  EXPECT_TRUE(oracle.empty());
  EXPECT_TRUE(segment.empty());
}

TEST(WlogSegmentsTest, NonCanonicalShapesAreNotTranslated) {
  // A second totalcost clause breaks the single-clause shape; a cyclic
  // edge relation disables the path DP at state construction.
  const auto parsed = wlog::parse_program(canonical_program() +
                                          "\ntotalcost(0).\n");
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  EXPECT_FALSE(plan.sum().has_value());
  ASSERT_TRUE(plan.path().has_value());

  wlog::ProbProgram cyclic = ir;
  cyclic.base().add_fact(
      wlog::make_compound("edge", {atom("t2"), atom("t1")}));
  const SegmentState state(plan, bind_diamond(cyclic));
  const wlog::ConstraintSpec& cons = parsed.program.constraints.at(0);
  EXPECT_FALSE(state.can_answer(cons.query, cons.variable));
}

TEST(WlogSegmentsTest, AmbiguousTimeSourceFallsBack) {
  const auto parsed = wlog::parse_program(canonical_program());
  ASSERT_TRUE(parsed.ok());
  const wlog::ProbProgram ir = diamond_ir(parsed.program);
  const SegmentPlan plan = SegmentPlan::translate(ir, parsed.program);
  ASSERT_TRUE(plan.any());
  // Two configured vms for t1: first-proof semantics would depend on
  // enumeration order, which the DP does not model — must refuse.
  wlog::ProbProgram bound = bind_diamond(ir);
  bound.base().add_fact(fact3("configs", "t1", "v1", 1));
  const SegmentState state(plan, bound);
  const wlog::ConstraintSpec& cons = parsed.program.constraints.at(0);
  EXPECT_FALSE(state.can_answer(cons.query, cons.variable));
  // The sum shape does not need the uniqueness guard and stays available.
  EXPECT_TRUE(
      state.can_answer(parsed.program.goal->query,
                       parsed.program.goal->variable));
}

TEST(WlogSegmentsTest, DecoSolveMatchesInterpreterOracleExactly) {
  // End to end: default engine (vm + segments) must reproduce the pre-VM
  // pipeline (interpreter, no segments) exactly — same plan, same goal.
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(3, rng);
  const std::string program = R"(
    import(amazonec2).
    import(workflow).
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline(99%, 1000h).
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
  )" + canonical_rules();

  DecoOptions oracle_opt;
  oracle_opt.backend = "serial";
  oracle_opt.wlog_max_states = 48;
  oracle_opt.wlog_mc_iterations = 16;
  oracle_opt.wlog_exec = "interp";
  oracle_opt.wlog_segments = false;
  DecoOptions fast_opt = oracle_opt;
  fast_opt.wlog_exec = "vm";
  fast_opt.wlog_segments = true;

  Deco oracle_engine(ec2(), store(), oracle_opt);
  Deco fast_engine(ec2(), store(), fast_opt);
  const auto oracle = oracle_engine.solve_program(program, wf);
  const auto fast = fast_engine.solve_program(program, wf);
  ASSERT_TRUE(oracle.ok) << oracle.error;
  ASSERT_TRUE(fast.ok) << fast.error;
  EXPECT_EQ(oracle.plan, fast.plan);
  EXPECT_EQ(oracle.goal_value, fast.goal_value);
  EXPECT_EQ(oracle.feasible, fast.feasible);
  EXPECT_EQ(oracle.stats.states_evaluated, fast.stats.states_evaluated);
}

}  // namespace
}  // namespace deco::core
