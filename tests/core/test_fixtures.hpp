// Shared fixtures for core tests: one calibrated EC2 catalog + metadata
// store per process (calibration is deterministic, so sharing is safe).
#pragma once

#include "cloud/instance_type.hpp"
#include "core/estimator.hpp"

namespace deco::core::testing {

inline const cloud::Catalog& ec2() {
  static const cloud::Catalog catalog = cloud::make_ec2_catalog();
  return catalog;
}

inline const cloud::MetadataStore& store() {
  static const cloud::MetadataStore s =
      make_store_from_catalog(ec2(), "ec2", 4000, 24, 7);
  return s;
}

}  // namespace deco::core::testing
