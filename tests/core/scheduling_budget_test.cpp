// Anytime solves of the scheduling problem under wall-clock and memory
// budgets: a generous budget changes nothing; an exhausted budget still
// returns a full-size plan with a valid evaluation on every paper workflow.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/scheduling.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/budget.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

struct SchedEnv {
  workflow::Workflow wf;
  TaskTimeEstimator estimator;
  vgpu::VirtualGpuBackend backend;
  SchedulingProblem problem;

  explicit SchedEnv(workflow::Workflow w, EvalOptions eval = {})
      : wf(std::move(w)),
        estimator(ec2(), store()),
        backend(2),
        problem(wf, estimator, backend, eval) {}
};

std::vector<workflow::Workflow> paper_workflows() {
  util::Rng rng(2015);
  return {workflow::make_montage(1, rng), workflow::make_ligo(40, rng),
          workflow::make_epigenomics(40, rng),
          workflow::make_cybershake(40, rng)};
}

void expect_same_plan(const SchedulingResult& a, const SchedulingResult& b) {
  ASSERT_EQ(a.plan.size(), b.plan.size());
  for (std::size_t t = 0; t < a.plan.size(); ++t) {
    EXPECT_EQ(a.plan[t].vm_type, b.plan[t].vm_type) << "task " << t;
    EXPECT_EQ(a.plan[t].region, b.plan[t].region) << "task " << t;
  }
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.stats.states_evaluated, b.stats.states_evaluated);
  EXPECT_EQ(a.evaluation.mean_cost, b.evaluation.mean_cost);
}

TEST(SchedulingBudgetTest, GenerousBudgetIsBitIdentical) {
  util::Rng rng(7);
  SchedEnv plain_env(workflow::make_montage(1, rng));
  const ProbDeadline req{0.9, 1e7};
  const auto plain = plain_env.problem.solve(req);

  util::Rng rng2(7);
  SchedEnv budget_env(workflow::make_montage(1, rng2));
  util::SolveBudget spec;
  spec.wall_ms = 1e9;
  spec.max_bytes = std::size_t{1} << 40;
  util::BudgetTracker tracker(spec);
  SchedulingOptions options;
  options.search.budget = &tracker;
  const auto budgeted = budget_env.problem.solve(req, options);

  expect_same_plan(plain, budgeted);
  EXPECT_FALSE(budgeted.budget.budget_exhausted);
  EXPECT_EQ(budgeted.budget.trigger, util::BudgetTrigger::kNone);
}

TEST(SchedulingBudgetTest, PreFiredBudgetStillYieldsFullSizeValidPlan) {
  // The harshest cut: the budget is exhausted before the solve starts.  On
  // every paper workflow the result must still be a full-size plan with a
  // valid (unbudgeted) final evaluation — the all-cheapest/greedy anytime
  // floor — and the report must say the budget fired.
  for (auto& wf : paper_workflows()) {
    SchedEnv env(std::move(wf));
    util::SolveBudget spec;
    spec.wall_ms = 1e9;
    util::BudgetTracker tracker(spec);
    tracker.fire(util::BudgetTrigger::kCancel);
    SchedulingOptions options;
    options.search.budget = &tracker;
    const ProbDeadline req{0.9, 1e7};
    SchedulingResult r;
    ASSERT_NO_THROW(r = env.problem.solve(req, options)) << env.wf.name();
    EXPECT_EQ(r.plan.size(), env.wf.task_count()) << env.wf.name();
    EXPECT_TRUE(r.budget.budget_exhausted) << env.wf.name();
    EXPECT_GT(r.evaluation.mean_cost, 0.0) << env.wf.name();
    EXPECT_GT(r.evaluation.mean_makespan, 0.0) << env.wf.name();
  }
}

TEST(SchedulingBudgetTest, TinyWallBudgetYieldsAnytimePlanOnPaperWorkflows) {
  for (auto& wf : paper_workflows()) {
    SchedEnv env(std::move(wf));
    util::SolveBudget spec;
    spec.wall_ms = 0.5;  // fires almost immediately, mid-solve
    util::BudgetTracker tracker(spec);
    // Make sure the deadline has passed even on a machine fast enough to
    // finish the whole solve in under half a millisecond.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    SchedulingOptions options;
    options.search.budget = &tracker;
    const ProbDeadline req{0.9, 1e7};
    SchedulingResult r;
    ASSERT_NO_THROW(r = env.problem.solve(req, options)) << env.wf.name();
    EXPECT_EQ(r.plan.size(), env.wf.task_count()) << env.wf.name();
    EXPECT_TRUE(r.budget.budget_exhausted) << env.wf.name();
    EXPECT_NE(r.budget.trigger, util::BudgetTrigger::kNone) << env.wf.name();
    // The final single-plan evaluation always runs detached from the
    // budget, so the anytime plan carries real numbers.
    EXPECT_GT(r.evaluation.mean_cost, 0.0) << env.wf.name();
    EXPECT_GT(r.budget.elapsed_ms, 0.0) << env.wf.name();
  }
}

TEST(SchedulingBudgetTest, MemoryBudgetDegradesBeforeCutting) {
  // A small-but-livable memory cap: the evaluator's ladder (drop plan
  // images, drop segments, shrink visited) must keep the solve going — the
  // solve completes and the plan is full size whether or not the cap
  // eventually fired.
  util::Rng rng(11);
  SchedEnv env(workflow::make_montage(1, rng));
  util::SolveBudget spec;
  spec.max_bytes = 256 * 1024;  // tight: forces evictions on montage
  util::BudgetTracker tracker(spec);
  SchedulingOptions options;
  options.search.budget = &tracker;
  const ProbDeadline req{0.9, 1e7};
  SchedulingResult r;
  ASSERT_NO_THROW(r = env.problem.solve(req, options));
  EXPECT_EQ(r.plan.size(), env.wf.task_count());
  EXPECT_GT(r.evaluation.mean_cost, 0.0);
}

TEST(SchedulingBudgetTest, SolveBudgetArmingIsScopedToTheCall) {
  // The evaluator borrows the budget only for the duration of solve(); a
  // later direct evaluation must run unbudgeted.
  util::Rng rng(13);
  SchedEnv env(workflow::make_montage(1, rng));
  util::SolveBudget spec;
  spec.wall_ms = 0.5;
  util::BudgetTracker tracker(spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  SchedulingOptions options;
  options.search.budget = &tracker;
  const ProbDeadline req{0.9, 1e7};
  const auto r = env.problem.solve(req, options);
  EXPECT_TRUE(r.budget.budget_exhausted);
  EXPECT_EQ(env.problem.evaluator().budget(), nullptr);
  ASSERT_NO_THROW(env.problem.evaluator().evaluate(r.plan, req));
}

}  // namespace
}  // namespace deco::core
