#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

EstimatorOptions lean() {
  EstimatorOptions opt;
  opt.rand_io_ops_per_task = 0;
  opt.include_network = false;
  return opt;
}

workflow::Workflow chain(double a, double b) {
  workflow::Workflow wf("chain");
  wf.add_task({"a", "p", a, 0, 0});
  wf.add_task({"b", "p", b, 0, 0});
  wf.add_edge(0, 1, 0);
  return wf;
}

TEST(EvaluatorTest, ChainMakespanIsSum) {
  const auto wf = chain(100, 200);
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const auto r = eval.evaluate(sim::Plan::uniform(2, 0), {0.95, 1000});
  EXPECT_NEAR(r.mean_makespan, 300.0, 3.0);
}

TEST(EvaluatorTest, ParallelBranchesTakeMax) {
  workflow::Workflow wf("fan");
  wf.add_task({"a", "p", 100, 0, 0});
  wf.add_task({"b", "p", 400, 0, 0});
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const auto r = eval.evaluate(sim::Plan::uniform(2, 0), {0.95, 1000});
  EXPECT_NEAR(r.mean_makespan, 400.0, 4.0);
}

TEST(EvaluatorTest, FeasibilityRespectsQuantile) {
  const auto wf = chain(100, 100);
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  // Generous deadline: feasible; impossible deadline: not.
  EXPECT_TRUE(eval.evaluate(sim::Plan::uniform(2, 0), {0.96, 1000}).feasible);
  EXPECT_FALSE(eval.evaluate(sim::Plan::uniform(2, 0), {0.96, 50}).feasible);
}

TEST(EvaluatorTest, DeadlineProbMonotoneInDeadline) {
  util::Rng rng(3);
  const auto wf = workflow::make_montage(1, rng);
  TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  const double base = eval.evaluate(plan, {0.9, 100}).mean_makespan;
  double prev = 0;
  for (double d : {0.5 * base, 0.9 * base, 1.0 * base, 1.2 * base, 2 * base}) {
    const double p = eval.evaluate(plan, {0.9, d}).deadline_prob;
    EXPECT_GE(p, prev - 1e-9);
    prev = p;
  }
}

TEST(EvaluatorTest, ProratedCostMatchesEq1) {
  const auto wf = chain(3600, 3600);
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  EvalOptions opt;
  opt.cost_model = CostModel::kProrated;
  PlanEvaluator eval(wf, est, backend, opt);
  const auto r = eval.evaluate(sim::Plan::uniform(2, 0), {0.95, 1e9});
  // Two 1-hour tasks on m1.small: 2 * 0.044.
  EXPECT_NEAR(r.mean_cost, 2 * 0.044, 0.002);
}

TEST(EvaluatorTest, BilledCostCeilsPartialHours) {
  const auto wf = chain(600, 600);  // 10 minutes each
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  EvalOptions opt;
  opt.cost_model = CostModel::kBilledHours;
  PlanEvaluator eval(wf, est, backend, opt);
  // Ungrouped: 2 instances, 1 billed hour each.
  const auto ungrouped = eval.evaluate(sim::Plan::uniform(2, 0), {0.95, 1e9});
  EXPECT_NEAR(ungrouped.mean_cost, 2 * 0.044, 0.002);
  // Merged into one group: a single billed hour.
  sim::Plan merged = sim::Plan::uniform(2, 0);
  merged[0].group = 0;
  merged[1].group = 0;
  const auto shared = eval.evaluate(merged, {0.95, 1e9});
  EXPECT_NEAR(shared.mean_cost, 0.044, 0.002);
}

TEST(EvaluatorTest, FasterPlanCostsMoreOnIoBoundTasks) {
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 10, 4000 * mb, 0});
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const auto small = eval.evaluate(sim::Plan::uniform(1, 0), {0.9, 1e9});
  const auto xlarge = eval.evaluate(sim::Plan::uniform(1, 3), {0.9, 1e9});
  // I/O-bound: xlarge barely faster but ~8x the price.
  EXPECT_GT(xlarge.mean_cost, small.mean_cost * 2);
}

TEST(EvaluatorTest, BatchMatchesSingleEvaluation) {
  util::Rng rng(7);
  const auto wf = workflow::make_epigenomics(30, rng);
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  std::vector<sim::Plan> plans{sim::Plan::uniform(wf.task_count(), 0),
                               sim::Plan::uniform(wf.task_count(), 1),
                               sim::Plan::uniform(wf.task_count(), 2)};
  const ProbDeadline req{0.9, 5000};
  const auto batch = eval.evaluate_batch(plans, req);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto single = eval.evaluate(plans[i], req);
    EXPECT_DOUBLE_EQ(batch[i].mean_cost, single.mean_cost);
    EXPECT_DOUBLE_EQ(batch[i].mean_makespan, single.mean_makespan);
  }
}

TEST(EvaluatorTest, SerialAndVgpuBackendsAgree) {
  util::Rng rng(9);
  const auto wf = workflow::make_ligo(40, rng);
  TaskTimeEstimator est1(ec2(), store(), lean());
  TaskTimeEstimator est2(ec2(), store(), lean());
  vgpu::SerialBackend serial;
  vgpu::VirtualGpuBackend parallel(4);
  PlanEvaluator e1(wf, est1, serial);
  PlanEvaluator e2(wf, est2, parallel);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  const ProbDeadline req{0.96, 4000};
  const auto r1 = e1.evaluate(plan, req);
  const auto r2 = e2.evaluate(plan, req);
  EXPECT_DOUBLE_EQ(r1.mean_cost, r2.mean_cost);
  EXPECT_DOUBLE_EQ(r1.mean_makespan, r2.mean_makespan);
  EXPECT_DOUBLE_EQ(r1.deadline_prob, r2.deadline_prob);
}

TEST(EvaluatorTest, EmptyWorkflowIsTriviallyFeasible) {
  workflow::Workflow wf("empty");
  TaskTimeEstimator est(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const auto r = eval.evaluate(sim::Plan{}, {0.9, 10});
  EXPECT_TRUE(r.feasible);
}

TEST(EvaluatorTest, NullFailureModelIsBitIdentical) {
  util::Rng rng(11);
  const auto wf = workflow::make_montage(1, rng);
  TaskTimeEstimator est1(ec2(), store(), lean());
  TaskTimeEstimator est2(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator plain(wf, est1, backend);
  EvalOptions opt;
  opt.failure_model = nullptr;
  PlanEvaluator with_null(wf, est2, backend, opt);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  const ProbDeadline req{0.9, 4000};
  const auto r1 = plain.evaluate(plan, req);
  const auto r2 = with_null.evaluate(plan, req);
  EXPECT_EQ(r1.mean_cost, r2.mean_cost);
  EXPECT_EQ(r1.mean_makespan, r2.mean_makespan);
  EXPECT_EQ(r1.makespan_quantile, r2.makespan_quantile);
  EXPECT_EQ(r1.deadline_prob, r2.deadline_prob);
}

TEST(EvaluatorTest, FailureAwareEvaluationInflatesTheEstimate) {
  util::Rng rng(12);
  const auto wf = workflow::make_montage(1, rng);
  TaskTimeEstimator est1(ec2(), store(), lean());
  TaskTimeEstimator est2(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator plain(wf, est1, backend);
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 3600;
  fm.task_failure_prob = 0.1;
  fm.straggler_prob = 0.1;
  const sim::FailureModel model(fm);
  EvalOptions opt;
  opt.failure_model = &model;
  PlanEvaluator aware(wf, est2, backend, opt);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  const ProbDeadline req{0.9, 4000};
  const auto clean = plain.evaluate(plan, req);
  const auto faulty = aware.evaluate(plan, req);
  // Retry inflation: expected makespan and quantile both grow; prorated
  // cost follows the longer busy time.
  EXPECT_GT(faulty.mean_makespan, clean.mean_makespan);
  EXPECT_GT(faulty.makespan_quantile, clean.makespan_quantile);
  EXPECT_LE(faulty.deadline_prob, clean.deadline_prob + 1e-12);
}

TEST(EvaluatorTest, FailureAwareFeasibilityFlipsUnderTightDeadline) {
  util::Rng rng(13);
  const auto wf = workflow::make_montage(1, rng);
  TaskTimeEstimator est1(ec2(), store(), lean());
  TaskTimeEstimator est2(ec2(), store(), lean());
  vgpu::SerialBackend backend;
  PlanEvaluator plain(wf, est1, backend);
  sim::FailureModelOptions fm;
  fm.task_failure_prob = 0.25;
  fm.straggler_prob = 0.2;
  fm.crash_mtbf_s = 1800;
  const sim::FailureModel model(fm);
  EvalOptions opt;
  opt.failure_model = &model;
  PlanEvaluator aware(wf, est2, backend, opt);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  // A deadline comfortably above the clean quantile (15% slack absorbs
  // Monte Carlo drift between calls) but far below the retry-inflated one:
  // feasible on a reliable cloud, infeasible once failures are folded in.
  const double clean_q =
      plain.evaluate(plan, {0.9, 1e9}).makespan_quantile;
  const ProbDeadline req{0.9, clean_q * 1.15};
  EXPECT_TRUE(plain.evaluate(plan, req).feasible);
  EXPECT_FALSE(aware.evaluate(plan, req).feasible);
}

}  // namespace
}  // namespace deco::core
