#include "core/transform_ops.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"

namespace deco::core {
namespace {

using testing::ec2;

workflow::Workflow diamond() {
  workflow::Workflow wf("diamond");
  wf.add_task({"a", "p", 1, 0, 0});
  wf.add_task({"b", "p", 1, 0, 0});
  wf.add_task({"c", "p", 1, 0, 0});
  wf.add_task({"d", "p", 1, 0, 0});
  wf.add_edge(0, 1, 1);
  wf.add_edge(0, 2, 1);
  wf.add_edge(1, 3, 1);
  wf.add_edge(2, 3, 1);
  return wf;
}

TEST(TransformTest, PromoteBumpsOneTask) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 0);
  const auto children = apply_op(TransformOp::kPromote, plan, wf, ec2());
  ASSERT_EQ(children.size(), 4u);  // one per task
  for (std::size_t i = 0; i < children.size(); ++i) {
    std::size_t changed = 0;
    for (workflow::TaskId t = 0; t < 4; ++t) {
      if (children[i][t].vm_type != plan[t].vm_type) {
        ++changed;
        EXPECT_EQ(children[i][t].vm_type, plan[t].vm_type + 1);
      }
    }
    EXPECT_EQ(changed, 1u);
  }
}

TEST(TransformTest, PromoteRespectsTypeCeiling) {
  const auto wf = diamond();
  const sim::Plan plan =
      sim::Plan::uniform(4, static_cast<cloud::TypeId>(ec2().type_count() - 1));
  EXPECT_TRUE(apply_op(TransformOp::kPromote, plan, wf, ec2()).empty());
}

TEST(TransformTest, DemoteRespectsFloor) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 0);
  EXPECT_TRUE(apply_op(TransformOp::kDemote, plan, wf, ec2()).empty());
  const sim::Plan upper = sim::Plan::uniform(4, 2);
  EXPECT_EQ(apply_op(TransformOp::kDemote, upper, wf, ec2()).size(), 4u);
}

TEST(TransformTest, FocusLimitsPromotion) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 0);
  TransformOptions opt;
  opt.focus_tasks = {1, 3};
  const auto children = apply_op(TransformOp::kPromote, plan, wf, ec2(), opt);
  EXPECT_EQ(children.size(), 2u);
}

TEST(TransformTest, MergeGroupsParentChildPairs) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 1);
  const auto children = apply_op(TransformOp::kMerge, plan, wf, ec2());
  EXPECT_EQ(children.size(), 4u);  // one per edge (all same type)
  for (const auto& child : children) {
    std::size_t grouped = 0;
    for (workflow::TaskId t = 0; t < 4; ++t) {
      if (child[t].group >= 0) ++grouped;
    }
    EXPECT_EQ(grouped, 2u);
  }
}

TEST(TransformTest, MergeSkipsMixedTypePairs) {
  const auto wf = diamond();
  sim::Plan plan = sim::Plan::uniform(4, 1);
  plan[0].vm_type = 2;  // parent differs from every child
  const auto children = apply_op(TransformOp::kMerge, plan, wf, ec2());
  EXPECT_EQ(children.size(), 2u);  // only edges b->d and c->d remain
}

TEST(TransformTest, CoScheduleGroupsIndependentTasks) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 0);
  TransformOptions opt;
  opt.focus_tasks = {1, 2};  // the two parallel middle tasks
  const auto children =
      apply_op(TransformOp::kCoSchedule, plan, wf, ec2(), opt);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0][1].group, children[0][2].group);
  EXPECT_GE(children[0][1].group, 0);
}

TEST(TransformTest, SplitUndoesGrouping) {
  const auto wf = diamond();
  sim::Plan plan = sim::Plan::uniform(4, 0);
  plan[1].group = 3;
  plan[2].group = 3;
  const auto children = apply_op(TransformOp::kSplit, plan, wf, ec2());
  EXPECT_EQ(children.size(), 2u);
  for (const auto& child : children) {
    int grouped = 0;
    for (workflow::TaskId t = 0; t < 4; ++t) {
      if (child[t].group >= 0) ++grouped;
    }
    EXPECT_EQ(grouped, 1);
  }
}

TEST(TransformTest, MoveJoinsExistingGroup) {
  const auto wf = diamond();
  sim::Plan plan = sim::Plan::uniform(4, 0);
  plan[1].group = 5;
  const auto children = apply_op(TransformOp::kMove, plan, wf, ec2());
  // Tasks 0, 2, 3 can move into group 5 (same type/region).
  EXPECT_EQ(children.size(), 3u);
  for (const auto& child : children) {
    int in_group = 0;
    for (workflow::TaskId t = 0; t < 4; ++t) {
      if (child[t].group == 5) ++in_group;
    }
    EXPECT_EQ(in_group, 2);
  }
}

TEST(TransformTest, GenerateChildrenDeduplicates) {
  const auto wf = diamond();
  const sim::Plan plan = sim::Plan::uniform(4, 1);
  const auto children = generate_children(
      plan, wf, ec2(), {TransformOp::kPromote, TransformOp::kPromote});
  EXPECT_EQ(children.size(), 4u);  // duplicates from the second pass removed
}

TEST(TransformTest, HashDistinguishesPlans) {
  sim::Plan a = sim::Plan::uniform(4, 0);
  sim::Plan b = a;
  EXPECT_EQ(plan_hash(a), plan_hash(b));
  b[2].vm_type = 1;
  EXPECT_NE(plan_hash(a), plan_hash(b));
  b = a;
  b[2].group = 0;
  EXPECT_NE(plan_hash(a), plan_hash(b));
  b = a;
  b[2].region = 1;
  EXPECT_NE(plan_hash(a), plan_hash(b));
}

TEST(TransformTest, OpNames) {
  EXPECT_EQ(to_string(TransformOp::kPromote), "Promote");
  EXPECT_EQ(to_string(TransformOp::kSplit), "Split");
}

}  // namespace
}  // namespace deco::core
