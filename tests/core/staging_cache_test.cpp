// Regression tests for the evaluator's staged-plan cache and the alias-method
// sampling path:
//   * a plan's PlanEvaluation must be bit-identical whether it is evaluated
//     solo, inside a batch, or again through the fully cached staging path,
//     on both the serial and the vgpu backend;
//   * the alias-table sampler must draw from the same distribution as the
//     histogram's inverse-CDF search (two-sample Kolmogorov-Smirnov test on
//     calibration histograms).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/evaluator.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/alias_table.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

workflow::Workflow small_montage() {
  util::Rng rng(17);
  return workflow::make_montage_by_width(6, rng);
}

// A plan exercising every kernel path: mixed vm types, co-scheduling groups
// (shared-instance serialization + shared billing) and ungrouped tasks.
sim::Plan mixed_plan(std::size_t tasks) {
  sim::Plan plan = sim::Plan::uniform(tasks, 1);
  for (std::size_t t = 0; t < tasks; t += 3) plan[t].vm_type = 2;
  for (std::size_t t = 1; t < tasks; t += 4) plan[t].vm_type = 0;
  for (std::size_t t = 0; t < tasks; t += 5) {
    plan[t].group = static_cast<std::int32_t>(t % 3);
  }
  return plan;
}

void expect_bitwise_equal(const PlanEvaluation& a, const PlanEvaluation& b) {
  EXPECT_EQ(a.mean_cost, b.mean_cost);
  EXPECT_EQ(a.mean_makespan, b.mean_makespan);
  EXPECT_EQ(a.makespan_quantile, b.makespan_quantile);
  EXPECT_EQ(a.deadline_prob, b.deadline_prob);
  EXPECT_EQ(a.feasible, b.feasible);
}

class StagingCacheTest : public ::testing::TestWithParam<CostModel> {};

TEST_P(StagingCacheTest, SoloBatchedAndCachedAreBitIdenticalOnBothBackends) {
  const auto wf = small_montage();
  const std::size_t n = wf.task_count();
  const sim::Plan plan = mixed_plan(n);
  sim::Plan other = sim::Plan::uniform(n, 3);
  const ProbDeadline req{0.95, 3000};

  EvalOptions opt;
  opt.mc_iterations = 200;
  opt.cost_model = GetParam();

  TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend serial;
  PlanEvaluator eval(wf, est, serial, opt);

  // Solo evaluation (cold caches).
  const PlanEvaluation solo = eval.evaluate(plan, req);
  EXPECT_GT(eval.cache_stats().segment_misses, 0u);

  // Batched together with unrelated plans: block seeds derive from the plan
  // payload, so batch position must not matter.
  const std::vector<sim::Plan> batch{other, plan, sim::Plan::uniform(n, 2)};
  const auto batched = eval.evaluate_batch(batch, req);
  expect_bitwise_equal(batched[1], solo);

  // Fully cached staging path: the plan image is served from the plan cache.
  const std::size_t hits_before = eval.cache_stats().plan_hits;
  const PlanEvaluation cached = eval.evaluate(plan, req);
  EXPECT_GT(eval.cache_stats().plan_hits, hits_before);
  expect_bitwise_equal(cached, solo);

  // Dropping the caches and re-staging must reproduce the same image.
  eval.clear_staging_cache();
  expect_bitwise_equal(eval.evaluate(plan, req), solo);

  // The vgpu backend runs the identical kernel over a worker pool; lane
  // streams are payload-derived, so the bits must match the serial backend.
  vgpu::VirtualGpuBackend parallel(4);
  PlanEvaluator veval(wf, est, parallel, opt);
  expect_bitwise_equal(veval.evaluate(plan, req), solo);
  const auto vbatched = veval.evaluate_batch(batch, req);
  expect_bitwise_equal(vbatched[1], solo);
}

INSTANTIATE_TEST_SUITE_P(CostModels, StagingCacheTest,
                         ::testing::Values(CostModel::kProrated,
                                           CostModel::kBilledHours));

TEST(StagingCacheStatsTest, SecondBatchHitsPlanCacheWithoutRestaging) {
  const auto wf = small_montage();
  const std::size_t n = wf.task_count();
  TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const ProbDeadline req{0.95, 3000};

  const std::vector<sim::Plan> batch{mixed_plan(n), sim::Plan::uniform(n, 1)};
  eval.evaluate_batch(batch, req);
  const auto first = eval.cache_stats();
  EXPECT_EQ(first.plan_hits, 0u);
  EXPECT_EQ(first.plan_misses, 2u);
  EXPECT_GT(first.segment_misses, 0u);

  eval.evaluate_batch(batch, req);
  const auto second = eval.cache_stats();
  EXPECT_EQ(second.plan_hits, 2u);
  EXPECT_EQ(second.plan_misses, first.plan_misses);
  // Plan-cache hits never re-stage segments.
  EXPECT_EQ(second.segment_misses, first.segment_misses);
  EXPECT_EQ(second.segment_hits, first.segment_hits);
}

TEST(StagingCacheStatsTest, HitMissArithmeticHoldsAcrossInterleavedClears) {
  const auto wf = small_montage();
  const std::size_t n = wf.task_count();
  TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend backend;
  PlanEvaluator eval(wf, est, backend);
  const ProbDeadline req{0.95, 3000};
  const sim::Plan plan = mixed_plan(n);

  // Cold evaluate: one plan miss; staging reads every position's segment
  // twice (layout pass + column copy), so n misses then n hits.
  eval.evaluate(plan, req);
  auto s = eval.cache_stats();
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.plan_hits, 0u);
  EXPECT_EQ(s.segment_misses, n);
  EXPECT_EQ(s.segment_hits, n);

  // Warm evaluate: served from the plan cache, no segment traffic at all.
  eval.evaluate(plan, req);
  s = eval.cache_stats();
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.plan_misses, 1u);
  EXPECT_EQ(s.segment_misses, n);
  EXPECT_EQ(s.segment_hits, n);

  // clear_staging_cache() drops the caches but never rewinds the stats.
  eval.clear_staging_cache();
  EXPECT_EQ(eval.cache_stats().plan_hits, 1u);
  EXPECT_EQ(eval.cache_stats().plan_misses, 1u);
  EXPECT_EQ(eval.cache_stats().segment_misses, n);
  EXPECT_EQ(eval.cache_stats().segment_hits, n);

  // Post-clear evaluate restages from scratch: the deltas repeat the cold
  // pattern exactly, on top of the preserved totals.
  eval.evaluate(plan, req);
  s = eval.cache_stats();
  EXPECT_EQ(s.plan_misses, 2u);
  EXPECT_EQ(s.plan_hits, 1u);
  EXPECT_EQ(s.segment_misses, 2 * n);
  EXPECT_EQ(s.segment_hits, 2 * n);

  // A second clear between two warm evaluates: hits continue to accumulate
  // monotonically — stats are an append-only ledger, not cache state.
  eval.evaluate(plan, req);
  eval.clear_staging_cache();
  eval.evaluate(plan, req);
  s = eval.cache_stats();
  EXPECT_EQ(s.plan_hits, 2u);
  EXPECT_EQ(s.plan_misses, 3u);
  EXPECT_EQ(s.segment_misses, 3 * n);
  EXPECT_EQ(s.segment_hits, 3 * n);
}

// Two-sample Kolmogorov-Smirnov test: bins drawn through the alias table and
// bins drawn through the histogram's inverse-CDF search are samples from the
// same calibration distribution.
TEST(AliasSamplingKsTest, AliasDrawsMatchInverseCdfDraws) {
  const auto wf = small_montage();
  TaskTimeEstimator est(ec2(), store());

  const std::size_t draws = 100000;
  // D crit for alpha = 0.001 with n = m: 1.949 * sqrt((n + m) / (n * m)).
  const double d_crit =
      1.949 * std::sqrt(2.0 / static_cast<double>(draws));

  for (const cloud::TypeId type : {0u, 2u}) {
    for (const workflow::TaskId task :
         {workflow::TaskId{0}, workflow::TaskId{5}}) {
      const util::Histogram& hist = est.dynamic_distribution(wf, task, type);
      ASSERT_FALSE(hist.empty());
      const std::size_t bins = hist.bin_count();
      const auto cdf = hist.cdf();

      const util::AliasTable table(hist.masses());
      std::vector<std::size_t> alias_count(bins, 0);
      std::vector<std::size_t> cdf_count(bins, 0);
      util::Rng alias_rng(41);
      util::Rng cdf_rng(42);
      for (std::size_t i = 0; i < draws; ++i) {
        ++alias_count[table.sample(alias_rng)];
        const double u = cdf_rng.uniform();
        const auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
        ++cdf_count[std::min(static_cast<std::size_t>(it - cdf.begin()),
                             bins - 1)];
      }

      // Empirical CDFs over the (ascending) bin centers.
      double d_max = 0, cum_a = 0, cum_c = 0;
      for (std::size_t k = 0; k < bins; ++k) {
        cum_a += static_cast<double>(alias_count[k]) / draws;
        cum_c += static_cast<double>(cdf_count[k]) / draws;
        d_max = std::max(d_max, std::abs(cum_a - cum_c));
      }
      EXPECT_LT(d_max, d_crit) << "task " << task << " type " << type;
    }
  }
}

}  // namespace
}  // namespace deco::core
