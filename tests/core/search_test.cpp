#include "core/search.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

namespace deco::core {
namespace {

// Toy state: an integer; children are 2n+1 and 2n+2 (a binary tree);
// objective is the value itself; feasible above a threshold.
SearchCallbacks<int> tree_callbacks(int feasible_from, int max_value) {
  SearchCallbacks<int> cb;
  cb.children = [max_value](const int& n) {
    std::vector<int> out;
    if (2 * n + 1 <= max_value) out.push_back(2 * n + 1);
    if (2 * n + 2 <= max_value) out.push_back(2 * n + 2);
    return out;
  };
  cb.hash = [](const int& n) { return static_cast<std::uint64_t>(n); };
  cb.evaluate = [feasible_from](std::span<const int> batch) {
    std::vector<Scored> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = Scored{batch[i] >= feasible_from, static_cast<double>(batch[i])};
    }
    return out;
  };
  return cb;
}

TEST(GenericSearchTest, FindsMinimumFeasible) {
  SearchOptions opt;
  opt.max_states = 1000;
  opt.minimize = true;
  const auto r = generic_search(0, tree_callbacks(10, 100), opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 10);
  EXPECT_DOUBLE_EQ(r.best_score.objective, 10.0);
}

TEST(GenericSearchTest, FindsMaximumWhenMaximizing) {
  SearchOptions opt;
  opt.max_states = 1000;
  opt.minimize = false;
  const auto r = generic_search(0, tree_callbacks(0, 63), opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 63);
}

TEST(GenericSearchTest, RespectsStateBudget) {
  SearchOptions opt;
  opt.max_states = 17;
  const auto r = generic_search(0, tree_callbacks(1 << 20, 1 << 22), opt);
  EXPECT_FALSE(r.best.has_value());  // feasible region unreachable in budget
  EXPECT_LE(r.stats.states_evaluated, 17u);
}

TEST(GenericSearchTest, NoFeasibleStates) {
  SearchOptions opt;
  opt.max_states = 200;
  const auto r = generic_search(0, tree_callbacks(1000, 100), opt);
  EXPECT_FALSE(r.best.has_value());
  EXPECT_GT(r.stats.states_evaluated, 0u);
}

TEST(GenericSearchTest, MonotonePruningCutsStates) {
  SearchOptions no_prune;
  no_prune.max_states = 100000;
  const auto full = generic_search(0, tree_callbacks(5, 2000), no_prune);

  SearchOptions prune = no_prune;
  prune.monotone_objective = true;
  const auto pruned = generic_search(0, tree_callbacks(5, 2000), prune);

  ASSERT_TRUE(full.best.has_value());
  ASSERT_TRUE(pruned.best.has_value());
  EXPECT_EQ(*full.best, *pruned.best);  // same optimum
  EXPECT_LT(pruned.stats.states_evaluated, full.stats.states_evaluated);
  EXPECT_GT(pruned.stats.states_pruned, 0u);
}

TEST(GenericSearchTest, StaleWaveLimitStopsEarly) {
  SearchOptions opt;
  opt.max_states = 1 << 20;
  opt.batch_size = 4;
  opt.stale_wave_limit = 3;
  const auto r = generic_search(0, tree_callbacks(0, 1 << 18), opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_LT(r.stats.states_evaluated, static_cast<std::size_t>(1) << 18);
}

TEST(GenericSearchTest, VisitedStatesNotReexpanded) {
  // A graph where children collide heavily: children(n) = {n+1, n+2}.
  SearchCallbacks<int> cb;
  cb.children = [](const int& n) {
    std::vector<int> out;
    if (n < 50) out = {n + 1, n + 2};
    return out;
  };
  cb.hash = [](const int& n) { return static_cast<std::uint64_t>(n); };
  std::size_t evaluations = 0;
  cb.evaluate = [&evaluations](std::span<const int> batch) {
    evaluations += batch.size();
    std::vector<Scored> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = Scored{true, static_cast<double>(batch[i])};
    }
    return out;
  };
  SearchOptions opt;
  opt.max_states = 10000;
  generic_search(0, cb, opt);
  EXPECT_LE(evaluations, 53u);  // each state evaluated at most once
}

TEST(AstarSearchTest, FindsOptimumWithAdmissibleHeuristic) {
  auto cb = tree_callbacks(10, 1000);
  cb.g_score = [](const int& n) { return static_cast<double>(n); };
  cb.h_score = [](const int&) { return 0.0; };
  SearchOptions opt;
  opt.max_states = 5000;
  opt.minimize = true;
  opt.monotone_objective = true;
  const auto r = astar_search(0, cb, opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 10);
}

TEST(AstarSearchTest, ExpandsFewerStatesThanGeneric) {
  SearchOptions opt;
  opt.max_states = 100000;
  opt.batch_size = 8;
  const auto generic = generic_search(0, tree_callbacks(900, 4000), opt);

  auto cb = tree_callbacks(900, 4000);
  cb.g_score = [](const int& n) { return static_cast<double>(n); };
  cb.h_score = [](const int&) { return 0.0; };
  SearchOptions aopt = opt;
  aopt.monotone_objective = true;
  const auto astar = astar_search(0, cb, aopt);

  ASSERT_TRUE(generic.best.has_value());
  ASSERT_TRUE(astar.best.has_value());
  EXPECT_DOUBLE_EQ(generic.best_score.objective, astar.best_score.objective);
  EXPECT_LT(astar.stats.states_evaluated, generic.stats.states_evaluated);
}

TEST(AstarSearchTest, MaximizeOrdersByHighestScore) {
  auto cb = tree_callbacks(0, 255);
  // Admissible for maximization: f = g + h must upper-bound any descendant's
  // objective, otherwise incumbent pruning can cut off the optimum.
  cb.g_score = [](const int& n) { return static_cast<double>(n); };
  cb.h_score = [](const int& n) { return static_cast<double>(255 - n); };
  SearchOptions opt;
  opt.max_states = 10000;
  opt.minimize = false;
  const auto r = astar_search(0, cb, opt);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 255);
}

TEST(SearchStatsTest, TimingPopulated) {
  SearchOptions opt;
  opt.max_states = 100;
  const auto r = generic_search(0, tree_callbacks(5, 50), opt);
  EXPECT_GE(r.stats.elapsed_ms, 0.0);
  EXPECT_GT(r.stats.waves, 0u);
}

// A diamond-heavy graph (children n+1 and n+2 collide constantly) that both
// search variants can walk with identical callbacks.
SearchCallbacks<int> collide_callbacks(int limit) {
  SearchCallbacks<int> cb;
  cb.children = [limit](const int& n) {
    std::vector<int> out;
    if (n < limit) out = {n + 1, n + 2};
    return out;
  };
  cb.hash = [](const int& n) { return static_cast<std::uint64_t>(n); };
  cb.evaluate = [](std::span<const int> batch) {
    std::vector<Scored> out(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out[i] = Scored{true, static_cast<double>(batch[i])};
    }
    return out;
  };
  return cb;
}

TEST(SearchStatsTest, GenericFillsExpansionAndDuplicateCounters) {
  SearchOptions opt;
  opt.max_states = 10000;
  // Exhausted tree walk: every evaluated state is expanded, a binary tree
  // has no duplicate children, nothing is pruned without monotonicity.
  const auto tree = generic_search(0, tree_callbacks(10, 100), opt);
  EXPECT_EQ(tree.stats.states_expanded, tree.stats.states_evaluated);
  EXPECT_EQ(tree.stats.duplicate_hits, 0u);
  EXPECT_EQ(tree.stats.states_pruned, 0u);

  // The collide graph visits 0..51 once each; every other generated child
  // is rejected by the visited set.
  const auto diamond = generic_search(0, collide_callbacks(50), opt);
  EXPECT_EQ(diamond.stats.states_expanded, diamond.stats.states_evaluated);
  EXPECT_GT(diamond.stats.duplicate_hits, 0u);

  // With pruning active, expanded states are exactly the unpruned ones.
  SearchOptions prune = opt;
  prune.minimize = true;
  prune.monotone_objective = true;
  const auto pruned = generic_search(0, tree_callbacks(5, 2000), prune);
  EXPECT_GT(pruned.stats.states_pruned, 0u);
  EXPECT_EQ(pruned.stats.states_expanded + pruned.stats.states_pruned,
            pruned.stats.states_evaluated);
}

TEST(SearchStatsTest, AstarFillsExpansionAndDuplicateCounters) {
  auto cb = collide_callbacks(50);
  cb.g_score = [](const int& n) { return static_cast<double>(n); };
  cb.h_score = [](const int&) { return 0.0; };
  SearchOptions opt;
  opt.max_states = 10000;
  // Maximize so the incumbent keeps improving and the frontier keeps
  // advancing (minimizing would prune everything after the root, which is
  // the optimum of this graph).
  opt.minimize = false;
  const auto r = astar_search(0, cb, opt);
  // A* expands every state it evaluates (its pruning happens pre-batch /
  // pre-push, never between evaluation and expansion).
  EXPECT_GT(r.stats.states_expanded, 0u);
  EXPECT_EQ(r.stats.states_expanded, r.stats.states_evaluated);
  EXPECT_GT(r.stats.duplicate_hits, 0u);

  // Incumbent pruning on the tree shows up in states_pruned while the
  // expansion accounting stays consistent.
  auto tree = tree_callbacks(10, 1000);
  tree.g_score = [](const int& n) { return static_cast<double>(n); };
  tree.h_score = [](const int&) { return 0.0; };
  SearchOptions popt = opt;
  popt.monotone_objective = true;
  const auto pruned = astar_search(0, tree, popt);
  ASSERT_TRUE(pruned.best.has_value());
  EXPECT_GT(pruned.stats.states_pruned, 0u);
  EXPECT_EQ(pruned.stats.states_expanded, pruned.stats.states_evaluated);
}

// Runs one search configuration with pipelining on and off and requires the
// outcome and every schedule-independent counter to match bit for bit.
template <typename Search>
void expect_pipeline_invariant(Search&& search, SearchOptions opt) {
  opt.pipeline = false;
  const auto serial = search(opt);
  opt.pipeline = true;
  const auto piped = search(opt);
  EXPECT_EQ(serial.best.has_value(), piped.best.has_value());
  if (serial.best && piped.best) {
    EXPECT_EQ(*serial.best, *piped.best);
    EXPECT_EQ(serial.best_score.objective, piped.best_score.objective);
  }
  EXPECT_EQ(serial.stats.states_evaluated, piped.stats.states_evaluated);
  EXPECT_EQ(serial.stats.states_expanded, piped.stats.states_expanded);
  EXPECT_EQ(serial.stats.states_pruned, piped.stats.states_pruned);
  EXPECT_EQ(serial.stats.duplicate_hits, piped.stats.duplicate_hits);
  EXPECT_EQ(serial.stats.visited_evicted, piped.stats.visited_evicted);
  EXPECT_EQ(serial.stats.waves, piped.stats.waves);
}

TEST(PipelinedSearchTest, GenericMatchesSerialDriver) {
  for (std::size_t batch : {1u, 4u, 32u}) {
    SearchOptions opt;
    opt.max_states = 5000;
    opt.batch_size = batch;
    expect_pipeline_invariant(
        [](const SearchOptions& o) {
          return generic_search(0, tree_callbacks(10, 2000), o);
        },
        opt);
    SearchOptions prune = opt;
    prune.monotone_objective = true;
    expect_pipeline_invariant(
        [](const SearchOptions& o) {
          return generic_search(0, tree_callbacks(5, 2000), o);
        },
        prune);
  }
}

TEST(PipelinedSearchTest, AstarMatchesSerialDriver) {
  auto run = [](const SearchOptions& o) {
    auto cb = tree_callbacks(900, 4000);
    cb.g_score = [](const int& n) { return static_cast<double>(n); };
    cb.h_score = [](const int&) { return 0.0; };
    return astar_search(0, cb, o);
  };
  for (std::size_t batch : {1u, 8u}) {
    SearchOptions opt;
    opt.max_states = 5000;
    opt.batch_size = batch;
    opt.monotone_objective = true;
    expect_pipeline_invariant(run, opt);
  }
}

TEST(PipelinedSearchTest, EvalStallIsRecorded) {
  auto cb = tree_callbacks(10, 500);
  cb.evaluate = [inner = cb.evaluate](std::span<const int> batch) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return inner(batch);
  };
  SearchOptions opt;
  opt.max_states = 100;
  const auto r = generic_search(0, cb, opt);
  EXPECT_GT(r.stats.eval_stall_ms, 0.0);
  EXPECT_LE(r.stats.eval_stall_ms, r.stats.elapsed_ms);
}

TEST(PipelinedSearchTest, SpeculationExceptionPropagates) {
  auto cb = tree_callbacks(10, 500);
  cb.children = [](const int&) -> std::vector<int> {
    throw std::runtime_error("children failed");
  };
  SearchOptions opt;
  opt.max_states = 100;
  opt.pipeline = true;
  EXPECT_THROW(generic_search(0, cb, opt), std::runtime_error);
}

TEST(BoundedVisitedTest, EvictionIsCountedAndSearchStillTerminates) {
  SearchOptions opt;
  opt.max_states = 4000;
  opt.max_visited = 64;  // far below the ~4000 states the walk visits
  const auto bounded = generic_search(0, tree_callbacks(10, 4000), opt);
  EXPECT_GT(bounded.stats.visited_evicted, 0u);
  ASSERT_TRUE(bounded.best.has_value());
  EXPECT_EQ(*bounded.best, 10);

  SearchOptions unlimited = opt;
  unlimited.max_visited = 0;
  const auto full = generic_search(0, tree_callbacks(10, 4000), unlimited);
  EXPECT_EQ(full.stats.visited_evicted, 0u);
}

TEST(BoundedVisitedTest, GenerousCapChangesNothing) {
  // A cap the walk never reaches must leave results and counters identical
  // to the unbounded run.
  SearchOptions opt;
  opt.max_states = 3000;
  const auto unbounded = generic_search(0, tree_callbacks(10, 1000), opt);
  opt.max_visited = 1 << 20;
  const auto capped = generic_search(0, tree_callbacks(10, 1000), opt);
  EXPECT_EQ(capped.stats.visited_evicted, 0u);
  EXPECT_EQ(*unbounded.best, *capped.best);
  EXPECT_EQ(unbounded.stats.states_evaluated, capped.stats.states_evaluated);
  EXPECT_EQ(unbounded.stats.duplicate_hits, capped.stats.duplicate_hits);
}

TEST(BoundedVisitedTest, AstarHonorsCap) {
  auto cb = tree_callbacks(10, 4000);
  cb.g_score = [](const int& n) { return static_cast<double>(n); };
  cb.h_score = [](const int&) { return 0.0; };
  SearchOptions opt;
  opt.max_states = 4000;
  // Incumbent pruning stops this walk after ~60 visited states, so the cap
  // must sit well below that to be exercised.
  opt.max_visited = 16;
  const auto r = astar_search(0, cb, opt);
  EXPECT_GT(r.stats.visited_evicted, 0u);
  ASSERT_TRUE(r.best.has_value());
  EXPECT_EQ(*r.best, 10);
}

}  // namespace
}  // namespace deco::core
