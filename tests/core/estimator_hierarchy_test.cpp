// Three-tier estimator hierarchy (analytic screen -> adaptive QMC -> full
// MC): mode parsing, full-MC bit-compatibility, the exact-selection
// regression pinning `auto` to the full-MC plan choice on the four paper
// workflows, distribution agreement (KS) between the analytic screen and
// the sampled evaluator, and bit-identical QMC early stopping across
// backends and worker counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/scheduling.hpp"
#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

std::vector<workflow::Workflow> paper_workflows() {
  std::vector<workflow::Workflow> out;
  util::Rng rng(2015);
  out.push_back(workflow::make_montage_by_width(8, rng));
  out.push_back(workflow::make_cybershake(40, rng));
  out.push_back(workflow::make_epigenomics(40, rng));
  out.push_back(workflow::make_ligo(40, rng));
  return out;
}

/// A search-like wave of plans around one base placement (same access
/// pattern the BFS/A* drivers produce).
std::vector<sim::Plan> make_wave(const workflow::Workflow& wf,
                                 std::size_t count, util::Rng& rng) {
  std::vector<sim::Plan> plans;
  const std::size_t types = ec2().type_count();
  sim::Plan base = sim::Plan::uniform(wf.task_count(), 1);
  for (std::size_t t = 0; t < wf.task_count(); t += 7) {
    base[t].group = static_cast<std::int32_t>(t % 5);
  }
  for (std::size_t i = 0; i < count; ++i) {
    sim::Plan p = base;
    const std::size_t mutations = 1 + rng.below(3);
    for (std::size_t m = 0; m < mutations; ++m) {
      p[rng.below(wf.task_count())].vm_type =
          static_cast<cloud::TypeId>(rng.below(types));
    }
    plans.push_back(std::move(p));
  }
  return plans;
}

/// A deadline between the all-fast and all-slow expected makespans, so the
/// wave straddles the feasibility frontier and all three verdicts occur.
double medium_deadline(const workflow::Workflow& wf) {
  TaskTimeEstimator estimator(ec2(), store());
  vgpu::SerialBackend backend;
  PlanEvaluator evaluator(wf, estimator, backend);
  const auto top = static_cast<cloud::TypeId>(ec2().type_count() - 1);
  const double fast =
      evaluator.evaluate(sim::Plan::uniform(wf.task_count(), top), {0.5, 1e12})
          .mean_makespan;
  const double slow =
      evaluator.evaluate(sim::Plan::uniform(wf.task_count(), 0), {0.5, 1e12})
          .mean_makespan;
  return 0.5 * (fast + slow);
}

TEST(EstimatorModeTest, ParsesAndRoundTrips) {
  EXPECT_EQ(parse_estimator_mode("mc"), EstimatorMode::kMc);
  EXPECT_EQ(parse_estimator_mode("analytic"), EstimatorMode::kAnalytic);
  EXPECT_EQ(parse_estimator_mode("auto"), EstimatorMode::kAuto);
  EXPECT_FALSE(parse_estimator_mode("qmc").has_value());
  EXPECT_FALSE(parse_estimator_mode("").has_value());
  for (const auto mode : {EstimatorMode::kMc, EstimatorMode::kAnalytic,
                          EstimatorMode::kAuto}) {
    EXPECT_EQ(parse_estimator_mode(to_string(mode)), mode);
  }
}

TEST(EstimatorHierarchyTest, McModeIsBitIdenticalToLegacyEvaluator) {
  util::Rng rng(11);
  const auto wf = workflow::make_montage_by_width(8, rng);
  const auto wave = make_wave(wf, 12, rng);
  const ProbDeadline req{0.9, medium_deadline(wf)};

  TaskTimeEstimator estimator(ec2(), store());
  vgpu::VirtualGpuBackend backend(2);
  EvalOptions opt;
  opt.mc_iterations = 300;
  PlanEvaluator legacy(wf, estimator, backend, opt);
  opt.estimator = EstimatorMode::kMc;
  PlanEvaluator screened(wf, estimator, backend, opt);

  const auto expect = legacy.evaluate_batch(wave, req);
  const auto got = screened.evaluate_batch_screened(wave, req);
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ(got[i].verdict, ScreenVerdict::kNone);
    EXPECT_EQ(got[i].eval.feasible, expect[i].feasible);
    EXPECT_EQ(got[i].eval.mean_cost, expect[i].mean_cost);
    EXPECT_EQ(got[i].eval.mean_makespan, expect[i].mean_makespan);
    EXPECT_EQ(got[i].eval.makespan_quantile, expect[i].makespan_quantile);
    EXPECT_EQ(got[i].eval.deadline_prob, expect[i].deadline_prob);
  }
  EXPECT_EQ(screened.screen_stats().screened, 0u);
}

// Exact-selection regression: on each paper workflow the tiered hierarchy
// must pick the same plan as the exhaustive full-MC search — screening may
// only skip work, never change the answer.
TEST(EstimatorHierarchyTest, AutoSelectsSamePlanAsFullMcOnPaperWorkflows) {
  for (const auto& wf : paper_workflows()) {
    const ProbDeadline req{0.9, medium_deadline(wf)};
    SchedulingOptions sopt;
    sopt.search.max_states = 48;

    TaskTimeEstimator estimator(ec2(), store());
    auto solve_with = [&](EstimatorMode mode) {
      vgpu::VirtualGpuBackend backend(2);
      EvalOptions opt;
      opt.mc_iterations = 400;
      opt.cost_model = CostModel::kBilledHours;
      opt.estimator = mode;
      SchedulingProblem problem(wf, estimator, backend, opt);
      return problem.solve(req, sopt);
    };
    const auto mc = solve_with(EstimatorMode::kMc);
    const auto tiered = solve_with(EstimatorMode::kAuto);

    ASSERT_EQ(mc.found, tiered.found) << wf.name();
    ASSERT_EQ(mc.plan.size(), tiered.plan.size()) << wf.name();
    for (std::size_t t = 0; t < mc.plan.size(); ++t) {
      EXPECT_EQ(mc.plan[t].vm_type, tiered.plan[t].vm_type)
          << wf.name() << " task " << t;
      EXPECT_EQ(mc.plan[t].group, tiered.plan[t].group)
          << wf.name() << " task " << t;
    }
    // Identical plan + final full-MC evaluation => identical numbers.
    EXPECT_EQ(mc.evaluation.mean_cost, tiered.evaluation.mean_cost)
        << wf.name();
    EXPECT_EQ(mc.evaluation.makespan_quantile,
              tiered.evaluation.makespan_quantile)
        << wf.name();
  }
}

// Distribution agreement: per plan, |P_analytic(M <= D) - P_mc(M <= D)| is
// the Kolmogorov-Smirnov distance between the screen's normal fit and the
// sampled makespan distribution evaluated at the deadline — exactly the
// point the feasibility decision reads.  Bounding its supremum over a wave
// of plans (plus mean/quantile agreement) keeps the moment propagation
// honest as the kernel evolves: if Clark's approximation drifts from what
// the sampler does, this trips before the guard band silently stops
// protecting selections.
TEST(EstimatorHierarchyTest, AnalyticScreenTracksFullMcDistributions) {
  for (const auto& wf : paper_workflows()) {
    util::Rng rng(5);
    const auto wave = make_wave(wf, 24, rng);
    const ProbDeadline req{0.9, medium_deadline(wf)};
    TaskTimeEstimator estimator(ec2(), store());
    vgpu::SerialBackend backend;
    EvalOptions opt;
    opt.mc_iterations = 2000;
    opt.cost_model = CostModel::kBilledHours;
    PlanEvaluator mc(wf, estimator, backend, opt);
    opt.estimator = EstimatorMode::kAnalytic;
    PlanEvaluator analytic(wf, estimator, backend, opt);

    const auto mc_evals = mc.evaluate_batch(wave, req);
    const auto screens = analytic.evaluate_batch_screened(wave, req);

    double ks_at_deadline = 0;
    double rel_makespan_err = 0;
    double rel_quantile_err = 0;
    for (std::size_t i = 0; i < wave.size(); ++i) {
      ks_at_deadline = std::max(
          ks_at_deadline, std::abs(screens[i].eval.deadline_prob -
                                   mc_evals[i].deadline_prob));
      rel_makespan_err +=
          std::abs(screens[i].eval.mean_makespan - mc_evals[i].mean_makespan) /
          mc_evals[i].mean_makespan;
      rel_quantile_err += std::abs(screens[i].eval.makespan_quantile -
                                   mc_evals[i].makespan_quantile) /
                          mc_evals[i].makespan_quantile;
    }
    rel_makespan_err /= static_cast<double>(wave.size());
    rel_quantile_err /= static_cast<double>(wave.size());
    EXPECT_LT(rel_makespan_err, 0.08) << wf.name();
    EXPECT_LT(rel_quantile_err, 0.08) << wf.name();
    // Well inside the z = 0.8 guard band at the probabilities deadline
    // queries live at (a 0.8 z-shift near p = 0.9 moves p by ~0.13).
    EXPECT_LT(ks_at_deadline, 0.12) << wf.name();
  }
}

// QMC early stopping must be a pure function of (seed, plan), not of the
// backend, the worker count, or which other plans share the batch: the
// same escalated plan must report the same iteration count, the same
// early-stop flag and bit-identical statistics everywhere.
TEST(EstimatorHierarchyTest, QmcEarlyStopBitIdenticalAcrossBackends) {
  util::Rng rng(17);
  const auto wf = workflow::make_cybershake(40, rng);
  const auto wave = make_wave(wf, 16, rng);
  const ProbDeadline req{0.9, medium_deadline(wf)};
  TaskTimeEstimator estimator(ec2(), store());

  EvalOptions opt;
  opt.mc_iterations = 1000;
  opt.cost_model = CostModel::kBilledHours;
  opt.estimator = EstimatorMode::kAuto;

  struct Run {
    const char* label;
    std::unique_ptr<vgpu::ComputeBackend> backend;
  };
  std::vector<Run> runs;
  runs.push_back({"serial", vgpu::make_backend("serial", 0)});
  runs.push_back({"vgpu-1", vgpu::make_backend("vgpu", 1)});
  runs.push_back({"vgpu-2", vgpu::make_backend("vgpu", 2)});
  runs.push_back({"vgpu-4", vgpu::make_backend("vgpu", 4)});

  std::vector<std::vector<ScreenedEvaluation>> all;
  for (auto& run : runs) {
    PlanEvaluator evaluator(wf, estimator, *run.backend, opt);
    all.push_back(evaluator.evaluate_batch_screened(wave, req));
  }
  bool any_escalated = false;
  bool any_early = false;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    const auto& ref = all[0][i];
    any_escalated |= ref.verdict == ScreenVerdict::kEscalate;
    any_early |= ref.qmc_early_stop;
    for (std::size_t r = 1; r < all.size(); ++r) {
      const auto& got = all[r][i];
      EXPECT_EQ(got.verdict, ref.verdict) << runs[r].label << " plan " << i;
      EXPECT_EQ(got.qmc_early_stop, ref.qmc_early_stop)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.mc_iterations_used, ref.mc_iterations_used)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.eval.feasible, ref.eval.feasible)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.eval.mean_cost, ref.eval.mean_cost)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.eval.mean_makespan, ref.eval.mean_makespan)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.eval.deadline_prob, ref.eval.deadline_prob)
          << runs[r].label << " plan " << i;
      EXPECT_EQ(got.eval.makespan_quantile, ref.eval.makespan_quantile)
          << runs[r].label << " plan " << i;
    }
  }
  // The medium deadline must actually exercise the QMC tier, else this
  // test silently degrades to comparing analytic screens.
  EXPECT_TRUE(any_escalated);
  EXPECT_TRUE(any_early);
}

// Early stopping must also be independent of batch composition: evaluating
// a plan alone and inside a wave must agree bit-for-bit (common random
// numbers — one shared rotated sequence per evaluator seed).
TEST(EstimatorHierarchyTest, QmcResultIndependentOfBatchComposition) {
  util::Rng rng(23);
  const auto wf = workflow::make_montage_by_width(8, rng);
  const auto wave = make_wave(wf, 8, rng);
  const ProbDeadline req{0.9, medium_deadline(wf)};
  TaskTimeEstimator estimator(ec2(), store());
  EvalOptions opt;
  opt.mc_iterations = 1000;
  opt.estimator = EstimatorMode::kAuto;

  vgpu::VirtualGpuBackend backend(2);
  PlanEvaluator batch_eval(wf, estimator, backend, opt);
  const auto batched = batch_eval.evaluate_batch_screened(wave, req);
  for (std::size_t i = 0; i < wave.size(); ++i) {
    PlanEvaluator solo_eval(wf, estimator, backend, opt);
    const auto solo =
        solo_eval.evaluate_batch_screened({&wave[i], 1}, req);
    EXPECT_EQ(solo[0].verdict, batched[i].verdict) << i;
    EXPECT_EQ(solo[0].mc_iterations_used, batched[i].mc_iterations_used) << i;
    EXPECT_EQ(solo[0].eval.mean_makespan, batched[i].eval.mean_makespan) << i;
    EXPECT_EQ(solo[0].eval.deadline_prob, batched[i].eval.deadline_prob) << i;
  }
}

}  // namespace
}  // namespace deco::core
