#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace deco::util {
namespace {

TEST(HistogramTest, EmptyInput) {
  const auto h = Histogram::from_samples(std::vector<double>{}, 10);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.bin_count(), 0u);
}

TEST(HistogramTest, DegenerateSampleCollapsesToOneBin) {
  const std::vector<double> xs{4.2, 4.2, 4.2};
  const auto h = Histogram::from_samples(xs, 10);
  ASSERT_EQ(h.bin_count(), 1u);
  EXPECT_DOUBLE_EQ(h.centers()[0], 4.2);
  EXPECT_DOUBLE_EQ(h.masses()[0], 1.0);
}

TEST(HistogramTest, MassesSumToOne) {
  Rng rng(31);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0, 10));
  const auto h = Histogram::from_samples(xs, 16);
  double total = 0;
  for (double m : h.masses()) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(h.cdf().back(), 1.0);
}

TEST(HistogramTest, MeanApproximatesSampleMean) {
  Rng rng(37);
  const Normal dist{100, 10};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(dist.sample(rng));
  const auto h = Histogram::from_samples(xs, 32);
  EXPECT_NEAR(h.mean(), mean(xs), 1.0);
}

TEST(HistogramTest, VarianceApproximatesSampleVariance) {
  Rng rng(41);
  const Normal dist{50, 5};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(dist.sample(rng));
  const auto h = Histogram::from_samples(xs, 48);
  EXPECT_NEAR(std::sqrt(h.variance()), stddev(xs), 0.5);
}

TEST(HistogramTest, PercentileMonotone) {
  Rng rng(43);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform(0, 100));
  const auto h = Histogram::from_samples(xs, 20);
  double prev = h.percentile(0);
  for (double q = 5; q <= 100; q += 5) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, PercentileMatchesSamplePercentile) {
  Rng rng(47);
  const Gamma dist{10, 2};
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i) xs.push_back(dist.sample(rng));
  const auto h = Histogram::from_samples(xs, 64);
  EXPECT_NEAR(h.percentile(95), percentile(xs, 95), 1.5);
}

TEST(HistogramTest, SamplingReproducesDistribution) {
  Rng rng(53);
  const Normal dist{20, 3};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(dist.sample(rng));
  const auto h = Histogram::from_samples(xs, 40);
  Rng rng2(54);
  std::vector<double> resampled;
  for (int i = 0; i < 20000; ++i) resampled.push_back(h.sample(rng2));
  EXPECT_NEAR(mean(resampled), 20, 0.3);
  EXPECT_NEAR(stddev(resampled), 3, 0.3);
}

TEST(HistogramTest, ProbLeBoundaries) {
  const auto h = Histogram::from_bins({1, 2, 3}, {0.2, 0.3, 0.5});
  EXPECT_DOUBLE_EQ(h.prob_le(0.5), 0.0);
  EXPECT_NEAR(h.prob_le(1.0), 0.2, 1e-12);
  EXPECT_NEAR(h.prob_le(2.5), 0.5, 1e-12);
  EXPECT_NEAR(h.prob_le(10), 1.0, 1e-12);
}

TEST(HistogramTest, FromBinsNormalizesMasses) {
  const auto h = Histogram::from_bins({1, 2}, {2, 6});
  EXPECT_NEAR(h.masses()[0], 0.25, 1e-12);
  EXPECT_NEAR(h.masses()[1], 0.75, 1e-12);
}

TEST(HistogramTest, FromBinsSortsCenters) {
  const auto h = Histogram::from_bins({3, 1, 2}, {0.1, 0.5, 0.4});
  EXPECT_DOUBLE_EQ(h.centers()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.centers()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.centers()[2], 3.0);
  EXPECT_NEAR(h.masses()[0], 0.5, 1e-12);
}

TEST(HistogramTest, ScaledMultipliesCentersKeepsMasses) {
  const auto h = Histogram::from_bins({1, 2}, {0.5, 0.5});
  const auto s = h.scaled(10);
  EXPECT_DOUBLE_EQ(s.centers()[0], 10.0);
  EXPECT_DOUBLE_EQ(s.centers()[1], 20.0);
  EXPECT_NEAR(s.mean(), 15.0, 1e-12);
}

}  // namespace
}  // namespace deco::util
