#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace deco::util {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(8);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, JumpProducesDisjointStream) {
  Rng base(11);
  Rng jumped = base;
  jumped.jump();
  // The jumped stream should not reproduce the base stream's prefix.
  std::vector<std::uint64_t> prefix;
  for (int i = 0; i < 64; ++i) prefix.push_back(base());
  int matches = 0;
  for (int i = 0; i < 64; ++i) {
    if (jumped() == prefix[static_cast<std::size_t>(i)]) ++matches;
  }
  EXPECT_EQ(matches, 0);
}

TEST(RngTest, ForkLanesAreDistinct) {
  Rng base(12);
  Rng lane0 = base.fork(0);
  Rng lane1 = base.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (lane0() == lane1()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace deco::util
