#include "util/xml.hpp"

#include <gtest/gtest.h>

namespace deco::util {
namespace {

TEST(XmlTest, ParsesSimpleElement) {
  const auto r = parse_xml("<root/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->name, "root");
}

TEST(XmlTest, ParsesAttributes) {
  const auto r = parse_xml(R"(<job id="ID01" name="process1"/>)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->attr_or("id", ""), "ID01");
  EXPECT_EQ(r.root->attr_or("name", ""), "process1");
  EXPECT_FALSE(r.root->attr("missing").has_value());
}

TEST(XmlTest, SingleQuotedAttributes) {
  const auto r = parse_xml("<a x='1'/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->attr_or("x", ""), "1");
}

TEST(XmlTest, NestedChildren) {
  const auto r = parse_xml("<a><b/><c><d/></c><b/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->children.size(), 3u);
  EXPECT_EQ(r.root->children_named("b").size(), 2u);
  ASSERT_NE(r.root->child("c"), nullptr);
  EXPECT_NE(r.root->child("c")->child("d"), nullptr);
}

TEST(XmlTest, TextContent) {
  const auto r = parse_xml("<a>hello <b/>world</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->text, "hello world");
}

TEST(XmlTest, EntityDecoding) {
  const auto r = parse_xml("<a x=\"&lt;&amp;&gt;\">&quot;q&apos;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->attr_or("x", ""), "<&>");
  EXPECT_EQ(r.root->text, "\"q'");
}

TEST(XmlTest, NumericEntity) {
  const auto r = parse_xml("<a>&#65;&#x42;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->text, "AB");
}

TEST(XmlTest, SkipsDeclarationAndComments) {
  const auto r = parse_xml(
      "<?xml version=\"1.0\"?><!-- header --><a><!-- inner --><b/></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->name, "a");
  EXPECT_EQ(r.root->children.size(), 1u);
}

TEST(XmlTest, Cdata) {
  const auto r = parse_xml("<a><![CDATA[<raw & stuff>]]></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->text, "<raw & stuff>");
}

TEST(XmlTest, MismatchedTagIsError) {
  const auto r = parse_xml("<a><b></a></b>");
  EXPECT_FALSE(r.ok());
}

TEST(XmlTest, UnterminatedTagIsError) {
  const auto r = parse_xml("<a><b>");
  EXPECT_FALSE(r.ok());
}

TEST(XmlTest, MissingQuoteIsError) {
  const auto r = parse_xml("<a x=1/>");
  EXPECT_FALSE(r.ok());
}

TEST(XmlTest, EscapeRoundTrip) {
  const std::string raw = "a<b>&\"c'";
  const std::string escaped = xml_escape(raw);
  const auto r = parse_xml("<t x=\"" + escaped + "\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.root->attr_or("x", ""), raw);
}

}  // namespace
}  // namespace deco::util
