#include "util/distributions.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace deco::util {
namespace {

std::vector<double> draw(const Distribution& dist, std::size_t n,
                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(NormalTest, SampleMomentsMatch) {
  const auto xs = draw(Distribution::normal(50, 7), 50000, 1);
  EXPECT_NEAR(mean(xs), 50, 0.2);
  EXPECT_NEAR(stddev(xs), 7, 0.2);
}

TEST(NormalTest, CdfAtMeanIsHalf) {
  const Normal n{3, 2};
  EXPECT_NEAR(n.cdf(3), 0.5, 1e-12);
}

TEST(NormalTest, CdfMonotone) {
  const Normal n{0, 1};
  EXPECT_LT(n.cdf(-1), n.cdf(0));
  EXPECT_LT(n.cdf(0), n.cdf(1));
}

TEST(NormalTest, PdfSymmetric) {
  const Normal n{5, 1.5};
  EXPECT_NEAR(n.pdf(4), n.pdf(6), 1e-12);
}

TEST(NormalTest, FitRecoversParameters) {
  const auto xs = draw(Distribution::normal(128.9, 8.4), 20000, 2);
  const Normal fit = Normal::fit(xs);
  EXPECT_NEAR(fit.mu, 128.9, 0.5);
  EXPECT_NEAR(fit.sigma, 8.4, 0.5);
}

TEST(GammaTest, SampleMomentsMatch) {
  // Table 2 m1.small sequential I/O parameters.
  const Gamma g{129.3, 0.79};
  const auto xs = draw(Distribution::gamma(g.k, g.theta), 50000, 3);
  EXPECT_NEAR(mean(xs), g.mean(), 0.5);
  EXPECT_NEAR(variance(xs), g.k * g.theta * g.theta, 2.0);
}

TEST(GammaTest, SamplesNonNegative) {
  const auto xs = draw(Distribution::gamma(0.5, 2.0), 10000, 4);
  for (double x : xs) EXPECT_GE(x, 0.0);
}

TEST(GammaTest, SmallShapeSupported) {
  const auto xs = draw(Distribution::gamma(0.3, 1.0), 20000, 5);
  EXPECT_NEAR(mean(xs), 0.3, 0.05);
}

TEST(GammaTest, CdfMatchesEmpirical) {
  const Gamma g{376.6, 0.28};  // Table 2 m1.large
  const auto xs = draw(Distribution::gamma(g.k, g.theta), 20000, 6);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  EXPECT_NEAR(g.cdf(median), 0.5, 0.02);
}

TEST(GammaTest, FitRecoversParameters) {
  const auto xs = draw(Distribution::gamma(127.1, 0.80), 50000, 7);
  const Gamma fit = Gamma::fit(xs);
  EXPECT_NEAR(fit.k, 127.1, 8.0);
  EXPECT_NEAR(fit.theta, 0.80, 0.06);
}

TEST(ParetoTest, SamplesAboveScale) {
  const auto xs = draw(Distribution::pareto(2.0, 1.5), 10000, 8);
  for (double x : xs) EXPECT_GE(x, 2.0);
}

TEST(ParetoTest, CdfAtScaleIsZero) {
  const Pareto p{1.0, 1.16};
  EXPECT_DOUBLE_EQ(p.cdf(1.0), 0.0);
  EXPECT_GT(p.cdf(2.0), 0.0);
}

TEST(ParetoTest, HeavyTail) {
  const auto xs = draw(Distribution::pareto(1.0, 1.16), 50000, 9);
  // A nontrivial share of the mass is far above the scale.
  int large = 0;
  for (double x : xs) {
    if (x > 10) ++large;
  }
  EXPECT_GT(large, 1000);
}

TEST(UniformTest, BoundsAndMean) {
  const auto xs = draw(Distribution::uniform(10, 20), 20000, 10);
  for (double x : xs) {
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
  EXPECT_NEAR(mean(xs), 15.0, 0.1);
}

TEST(DistributionTest, MeanBySwitch) {
  EXPECT_DOUBLE_EQ(Distribution::normal(5, 1).mean(), 5.0);
  EXPECT_DOUBLE_EQ(Distribution::gamma(4, 0.5).mean(), 2.0);
  EXPECT_DOUBLE_EQ(Distribution::uniform(2, 6).mean(), 4.0);
}

TEST(DistributionTest, DescribeNamesFamily) {
  EXPECT_NE(Distribution::normal(1, 2).describe().find("Normal"),
            std::string::npos);
  EXPECT_NE(Distribution::gamma(1, 2).describe().find("Gamma"),
            std::string::npos);
}

TEST(RegularizedGammaTest, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
}

TEST(RegularizedGammaTest, LargeShapeStable) {
  // Median of Gamma(k,1) is close to k for large k.
  EXPECT_NEAR(regularized_gamma_p(400.0, 400.0), 0.5, 0.02);
}

}  // namespace
}  // namespace deco::util
