#include "util/alias_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace deco::util {
namespace {

// Reconstructs the per-bin probability mass implied by the table: column k
// contributes prob[k]/n to bin k and (1 - prob[k])/n to alias[k].
std::vector<double> implied_masses(const AliasTable& table) {
  const std::size_t n = table.size();
  std::vector<double> mass(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    mass[k] += table.prob()[k] / static_cast<double>(n);
    mass[table.alias()[k]] += (1.0 - table.prob()[k]) / static_cast<double>(n);
  }
  return mass;
}

TEST(AliasTableTest, EmptyWeights) {
  const AliasTable table(std::span<const double>{});
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
}

TEST(AliasTableTest, SingleBinAlwaysPicked) {
  const std::vector<double> w{3.5};
  const AliasTable table(w);
  ASSERT_EQ(table.size(), 1u);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTableTest, TableStructureIsValid) {
  const std::vector<double> w{0.5, 3.0, 0.25, 1.0, 2.25};
  const AliasTable table(w);
  ASSERT_EQ(table.size(), w.size());
  for (std::size_t k = 0; k < table.size(); ++k) {
    EXPECT_GE(table.prob()[k], 0.0);
    EXPECT_LE(table.prob()[k], 1.0);
    EXPECT_LT(table.alias()[k], table.size());
  }
}

TEST(AliasTableTest, ImpliedMassesMatchNormalizedWeights) {
  const std::vector<double> w{0.5, 3.0, 0.25, 1.0, 2.25, 0.0, 7.0};
  const AliasTable table(w);
  const auto mass = implied_masses(table);
  const double total = 14.0;
  for (std::size_t k = 0; k < w.size(); ++k) {
    EXPECT_NEAR(mass[k], w[k] / total, 1e-12) << "bin " << k;
  }
}

TEST(AliasTableTest, NegativeWeightsClampToZero) {
  const std::vector<double> w{-2.0, 1.0, 3.0};
  const AliasTable table(w);
  const auto mass = implied_masses(table);
  EXPECT_NEAR(mass[0], 0.0, 1e-12);
  EXPECT_NEAR(mass[1], 0.25, 1e-12);
  EXPECT_NEAR(mass[2], 0.75, 1e-12);
}

TEST(AliasTableTest, AllZeroWeightsDegradeToUniform) {
  const std::vector<double> w{0.0, 0.0, 0.0, 0.0};
  const AliasTable table(w);
  const auto mass = implied_masses(table);
  for (double m : mass) EXPECT_NEAR(m, 0.25, 1e-12);
}

TEST(AliasTableTest, PickNearOneStaysInRange) {
  const std::vector<double> w{1.0, 2.0, 3.0};
  const AliasTable table(w);
  const double u = std::nextafter(1.0, 0.0);
  EXPECT_LT(table.pick(u), table.size());
  EXPECT_LT(table.pick(0.0), table.size());
}

TEST(AliasTableTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> w{1.0, 4.0, 2.0, 0.5, 2.5};
  const AliasTable table(w);
  const std::size_t draws = 200000;
  std::vector<std::size_t> count(w.size(), 0);
  Rng rng(123);
  for (std::size_t i = 0; i < draws; ++i) ++count[table.sample(rng)];
  for (std::size_t k = 0; k < w.size(); ++k) {
    const double p = w[k] / 10.0;
    const double freq = static_cast<double>(count[k]) / draws;
    const double sigma = std::sqrt(p * (1 - p) / draws);
    EXPECT_NEAR(freq, p, 5 * sigma) << "bin " << k;
  }
}

// The alias table and the histogram's inverse-CDF search must describe the
// same distribution: the per-bin masses implied by the table equal the
// histogram's masses exactly (up to fp summation noise).
TEST(AliasTableTest, MatchesHistogramMasses) {
  Rng rng(99);
  std::vector<double> xs;
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(rng.uniform() + rng.uniform() + rng.uniform());
  }
  const auto hist = Histogram::from_samples(xs, 16);
  const AliasTable table(hist.masses());
  ASSERT_EQ(table.size(), hist.bin_count());
  const auto mass = implied_masses(table);
  for (std::size_t k = 0; k < hist.bin_count(); ++k) {
    EXPECT_NEAR(mass[k], hist.masses()[k], 1e-12) << "bin " << k;
  }
}

}  // namespace
}  // namespace deco::util
