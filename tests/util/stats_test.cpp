#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace deco::util {
namespace {

TEST(StatsTest, MeanOfKnownValues) {
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceOfConstantIsZero) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(variance(xs), 0.0);
}

TEST(StatsTest, VarianceUnbiased) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(StatsTest, StddevIsSqrtOfVariance) {
  const std::vector<double> xs{1, 3};
  EXPECT_NEAR(stddev(xs), std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> xs{3, 1, 2};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_NEAR(percentile(xs, 25), 2.5, 1e-12);
}

TEST(StatsTest, PercentileClampsOutOfRangeQ) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 120), 3.0);
}

TEST(StatsTest, FiveNumberSummaryOrdering) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.uniform(0, 100));
  const auto s = five_number_summary(xs);
  EXPECT_LE(s.min, s.q25);
  EXPECT_LE(s.q25, s.median);
  EXPECT_LE(s.median, s.q75);
  EXPECT_LE(s.q75, s.max);
}

TEST(StatsTest, NormalizedDividesByBase) {
  const std::vector<double> xs{2, 4, 8};
  const auto out = normalized(xs, 2.0);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 2.0);
  EXPECT_DOUBLE_EQ(out[2], 4.0);
}

TEST(StatsTest, NormalizedZeroBaseYieldsZeros) {
  const std::vector<double> xs{2, 4};
  const auto out = normalized(xs, 0.0);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
}

TEST(StatsTest, KsAcceptsMatchingDistribution) {
  Rng rng(23);
  const Normal dist{10, 2};
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(dist.sample(rng));
  const auto ks = ks_test(xs, [&](double x) { return dist.cdf(x); });
  EXPECT_GT(ks.p_value, 0.01);  // should not reject the true model
}

TEST(StatsTest, KsRejectsWrongDistribution) {
  Rng rng(29);
  const Gamma dist{2.0, 3.0};
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(dist.sample(rng));
  const Normal wrong{0, 1};
  const auto ks = ks_test(xs, [&](double x) { return wrong.cdf(x); });
  EXPECT_LT(ks.p_value, 1e-6);
}

TEST(StatsTest, KolmogorovTailMonotone) {
  double prev = 1.0;
  for (double t = 0.1; t < 3.0; t += 0.1) {
    const double v = kolmogorov_tail(t);
    EXPECT_LE(v, prev + 1e-12);
    prev = v;
  }
}

}  // namespace
}  // namespace deco::util
