// Low-discrepancy sampling utilities: inverse-normal-CDF accuracy and the
// determinism + equidistribution of the Kronecker (Weyl) sequence that the
// adaptive QMC estimator tier draws from.
#include "util/qmc.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace deco::util {
namespace {

double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

TEST(NormalQuantileTest, RoundTripsThroughErfcCdf) {
  // Acklam's approximation is good to ~1e-9 relative error; the round trip
  // through the exact CDF must reproduce p to well below any tolerance the
  // estimator cares about.
  for (double p = 0.0005; p < 1.0; p += 0.0007) {
    const double q = normal_quantile(p);
    EXPECT_NEAR(norm_cdf(q), p, 1e-8) << "p=" << p;
  }
}

TEST(NormalQuantileTest, TailsAndSymmetry) {
  EXPECT_DOUBLE_EQ(normal_quantile(0.5), 0.0);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(1e-9) + normal_quantile(1.0 - 1e-9), 0.0, 1e-5);
  EXPECT_EQ(normal_quantile(0.0), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(normal_quantile(1.0), std::numeric_limits<double>::infinity());
  // Strictly increasing across the branch joints of the approximation.
  double prev = normal_quantile(0.001);
  for (double p = 0.002; p < 1.0; p += 0.001) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev) << "p=" << p;
    prev = q;
  }
}

TEST(KroneckerSequenceTest, DeterministicInSeedDimensionIndex) {
  KroneckerSequence a(4, 12345);
  KroneckerSequence b(4, 12345);
  KroneckerSequence c(4, 54321);
  bool any_differs = false;
  for (std::size_t j = 0; j < 64; ++j) {
    for (std::size_t d = 0; d < 4; ++d) {
      EXPECT_DOUBLE_EQ(a.point(j, d), b.point(j, d));
      any_differs = any_differs || a.point(j, d) != c.point(j, d);
      EXPECT_GE(a.point(j, d), 0.0);
      EXPECT_LT(a.point(j, d), 1.0);
    }
  }
  EXPECT_TRUE(any_differs);  // the Cranley-Patterson shift depends on the seed
}

TEST(KroneckerSequenceTest, RandomAccessMatchesSequentialOrder) {
  // point(j, d) is a pure function of (seed, d, j): reading indices out of
  // order or repeatedly must give the same values — this is what makes the
  // QMC tier independent of batch composition and backend scheduling.
  KroneckerSequence seq(2, 7);
  std::vector<double> forward;
  for (std::size_t j = 0; j < 32; ++j) forward.push_back(seq.point(j, 1));
  for (std::size_t j = 32; j-- > 0;) {
    EXPECT_DOUBLE_EQ(seq.point(j, 1), forward[j]);
  }
}

TEST(KroneckerSequenceTest, EquidistributionBeatsRandomSampling) {
  // Kolmogorov-Smirnov distance of the first n points against U(0,1).  An
  // irrational-rotation sequence achieves D_n = O(log n / n); n iid uniforms
  // would concentrate around ~0.6/sqrt(n) ~ 0.019.  Requiring half that
  // pins the low-discrepancy property, not mere uniform-ish randomness.
  constexpr std::size_t kN = 1024;
  KroneckerSequence seq(3, 99);
  for (std::size_t d = 0; d < 3; ++d) {
    std::vector<double> pts;
    for (std::size_t j = 0; j < kN; ++j) pts.push_back(seq.point(j, d));
    std::sort(pts.begin(), pts.end());
    double ks = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      const double ecdf_hi = static_cast<double>(i + 1) / kN;
      const double ecdf_lo = static_cast<double>(i) / kN;
      ks = std::max({ks, std::abs(ecdf_hi - pts[i]), std::abs(pts[i] - ecdf_lo)});
    }
    EXPECT_LT(ks, 0.01) << "dimension " << d;
  }
}

}  // namespace
}  // namespace deco::util
