#include "util/budget.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace deco::util {
namespace {

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(SolveBudgetTest, DefaultIsUnlimited) {
  SolveBudget budget;
  EXPECT_TRUE(budget.unlimited());
  budget.wall_ms = 5;
  EXPECT_FALSE(budget.unlimited());
}

TEST(BudgetTrackerTest, InertTrackerNeverFires) {
  BudgetTracker tracker;
  EXPECT_FALSE(tracker.active());
  EXPECT_FALSE(tracker.should_stop());
  EXPECT_FALSE(tracker.exhausted());
  EXPECT_NO_THROW(tracker.checkpoint());
  EXPECT_EQ(tracker.trigger(), BudgetTrigger::kNone);
}

TEST(BudgetTrackerTest, UnlimitedArmedTrackerNeverFires) {
  // An armed tracker with no limits behaves exactly like an inert one at
  // the checkpoint level (the generous-budget bit-identity property rests
  // on this).
  BudgetTracker tracker{SolveBudget{}};
  EXPECT_TRUE(tracker.active());
  EXPECT_FALSE(tracker.should_stop());
  EXPECT_NO_THROW(tracker.checkpoint());
}

TEST(BudgetTrackerTest, WallClockFires) {
  SolveBudget budget;
  budget.wall_ms = 1;
  BudgetTracker tracker(budget);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_TRUE(tracker.exhausted());
  EXPECT_EQ(tracker.trigger(), BudgetTrigger::kWallClock);
  EXPECT_THROW(tracker.checkpoint(), BudgetExhaustedError);
}

TEST(BudgetTrackerTest, CancelTokenFires) {
  CancelToken token;
  SolveBudget budget;
  budget.cancel = &token;
  BudgetTracker tracker(budget);
  EXPECT_FALSE(tracker.should_stop());
  token.cancel();
  EXPECT_TRUE(tracker.should_stop());
  EXPECT_EQ(tracker.trigger(), BudgetTrigger::kCancel);
}

TEST(BudgetTrackerTest, FirstTriggerWins) {
  SolveBudget budget;
  budget.wall_ms = 60'000;
  BudgetTracker tracker(budget);
  tracker.fire(BudgetTrigger::kMemory);
  tracker.fire(BudgetTrigger::kCancel);
  EXPECT_EQ(tracker.trigger(), BudgetTrigger::kMemory);
}

TEST(BudgetTrackerTest, FiringCancelsLaunches) {
  BudgetTracker tracker{SolveBudget{}};
  EXPECT_FALSE(tracker.launch_cancel()->cancelled());
  tracker.fire(BudgetTrigger::kWallClock);
  EXPECT_TRUE(tracker.launch_cancel()->cancelled());
}

TEST(BudgetTrackerTest, ExceptionCarriesTrigger) {
  const BudgetExhaustedError error(BudgetTrigger::kMemory);
  EXPECT_EQ(error.trigger(), BudgetTrigger::kMemory);
  EXPECT_NE(std::string(error.what()).find(to_string(BudgetTrigger::kMemory)),
            std::string::npos);
}

TEST(BudgetTrackerTest, MemoryAccountingSumsComponents) {
  SolveBudget budget;
  budget.max_bytes = 1000;
  BudgetTracker tracker(budget);
  EXPECT_FALSE(tracker.over_memory_budget());
  tracker.set_bytes(BudgetTracker::Component::kPlanCache, 600);
  tracker.set_bytes(BudgetTracker::Component::kSegmentCache, 300);
  EXPECT_EQ(tracker.total_bytes(), 900u);
  EXPECT_FALSE(tracker.over_memory_budget());
  tracker.set_bytes(BudgetTracker::Component::kVisited, 200);
  EXPECT_TRUE(tracker.over_memory_budget());
  tracker.set_bytes(BudgetTracker::Component::kPlanCache, 0);
  EXPECT_FALSE(tracker.over_memory_budget());
}

TEST(BudgetTrackerTest, ShrinkRequestIsConsumedOnce) {
  BudgetTracker tracker{SolveBudget{}};
  EXPECT_FALSE(tracker.consume_visited_shrink_request());
  tracker.request_visited_shrink();
  EXPECT_TRUE(tracker.consume_visited_shrink_request());
  EXPECT_FALSE(tracker.consume_visited_shrink_request());
}

TEST(BudgetTrackerTest, ReportSnapshotsOutcome) {
  SolveBudget budget;
  budget.wall_ms = 60'000;
  BudgetTracker tracker(budget);
  tracker.set_bytes(BudgetTracker::Component::kSegmentCache, 123);
  SolveReport clean = tracker.report(42);
  EXPECT_FALSE(clean.budget_exhausted);
  EXPECT_EQ(clean.trigger, BudgetTrigger::kNone);
  EXPECT_EQ(clean.states_at_cutoff, 42u);
  EXPECT_EQ(clean.bytes_at_cutoff, 123u);
  EXPECT_GE(clean.elapsed_ms, 0.0);

  tracker.fire(BudgetTrigger::kWallClock);
  SolveReport cut = tracker.report(99);
  EXPECT_TRUE(cut.budget_exhausted);
  EXPECT_EQ(cut.trigger, BudgetTrigger::kWallClock);
  EXPECT_EQ(cut.states_at_cutoff, 99u);
}

TEST(BudgetTrackerTest, TriggerNamesAreDistinct) {
  EXPECT_STRNE(to_string(BudgetTrigger::kNone),
               to_string(BudgetTrigger::kCancel));
  EXPECT_STRNE(to_string(BudgetTrigger::kCancel),
               to_string(BudgetTrigger::kWallClock));
  EXPECT_STRNE(to_string(BudgetTrigger::kWallClock),
               to_string(BudgetTrigger::kMemory));
}

}  // namespace
}  // namespace deco::util
