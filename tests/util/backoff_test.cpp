#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace deco::util {
namespace {

TEST(BackoffTest, CeilingIsCappedExponential) {
  const BackoffOptions options{1.0, 2.0, 8.0, 1.0};
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 1), 1.0);
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 2), 2.0);
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 3), 4.0);
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 4), 8.0);
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 5), 8.0);  // capped
  // Attempt 0 is treated as the first attempt.
  EXPECT_DOUBLE_EQ(backoff_ceiling(options, 0), 1.0);
}

TEST(BackoffTest, ZeroJitterReturnsCeilingsAndDrawsNothing) {
  const BackoffOptions options{2.0, 3.0, 50.0, 0.0};
  Backoff backoff(options);
  Rng rng(42);
  Rng untouched(42);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 2.0);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 6.0);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 18.0);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 50.0);
  // No jitter -> no entropy consumed: the stream matches a fresh one.
  EXPECT_DOUBLE_EQ(rng.uniform(), untouched.uniform());
}

TEST(BackoffTest, SameSeedGivesBitIdenticalSchedule) {
  const BackoffOptions options{1.0, 2.0, 64.0, 1.0};
  std::vector<double> first;
  std::vector<double> second;
  {
    Backoff backoff(options);
    Rng rng(2015);
    for (int i = 0; i < 12; ++i) first.push_back(backoff.next(rng));
  }
  {
    Backoff backoff(options);
    Rng rng(2015);
    for (int i = 0; i < 12; ++i) second.push_back(backoff.next(rng));
  }
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]) << "attempt " << i;
  }
}

TEST(BackoffTest, DifferentSeedsGiveDifferentSchedules) {
  const BackoffOptions options{1.0, 2.0, 64.0, 1.0};
  Backoff a(options);
  Backoff b(options);
  Rng rng_a(1);
  Rng rng_b(2);
  bool any_different = false;
  for (int i = 0; i < 8; ++i) {
    if (a.next(rng_a) != b.next(rng_b)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(BackoffTest, JitteredDelaysAreBoundedByCeilingAndPositive) {
  const BackoffOptions options{1.0, 2.0, 16.0, 1.0};
  Backoff backoff(options);
  Rng rng(7);
  for (std::size_t attempt = 1; attempt <= 20; ++attempt) {
    const double delay = backoff.next(rng);
    EXPECT_GT(delay, 0.0) << "attempt " << attempt;
    EXPECT_LE(delay, backoff_ceiling(options, attempt)) << "attempt "
                                                        << attempt;
  }
}

TEST(BackoffTest, WorstCaseTotalBoundsAnySchedule) {
  const BackoffOptions options{1.0, 2.0, 64.0, 1.0};
  constexpr std::size_t kAttempts = 10;
  const double bound = backoff_worst_case_total(options, kAttempts);
  // Explicit sum of ceilings: 1+2+4+8+16+32+64+64+64+64.
  EXPECT_DOUBLE_EQ(bound, 1 + 2 + 4 + 8 + 16 + 32 + 64 * 4);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    Backoff backoff(options);
    Rng rng(seed);
    double total = 0;
    for (std::size_t i = 0; i < kAttempts; ++i) total += backoff.next(rng);
    EXPECT_LE(total, bound) << "seed " << seed;
  }
}

TEST(BackoffTest, PartialJitterBlendsTowardCeiling) {
  // jitter = 0.25 keeps every delay within [0.75, 1.0] * ceiling.
  const BackoffOptions options{4.0, 2.0, 64.0, 0.25};
  Backoff backoff(options);
  Rng rng(11);
  for (std::size_t attempt = 1; attempt <= 10; ++attempt) {
    const double ceiling = backoff_ceiling(options, attempt);
    const double delay = backoff.next(rng);
    EXPECT_GE(delay, 0.75 * ceiling - 1e-12);
    EXPECT_LE(delay, ceiling + 1e-12);
  }
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  const BackoffOptions options{1.0, 2.0, 64.0, 0.0};
  Backoff backoff(options);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 1.0);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 2.0);
  backoff.reset();
  EXPECT_EQ(backoff.attempt(), 0u);
  EXPECT_DOUBLE_EQ(backoff.next(rng), 1.0);
}

}  // namespace
}  // namespace deco::util
