#include "util/worksteal.hpp"

#include <gtest/gtest.h>

#include "util/budget.hpp"

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace deco::util {
namespace {

TEST(WorkStealingPoolTest, DefaultHasAtLeastOneWorker) {
  WorkStealingPool pool;
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.participant_count(), pool.size() + 1);
}

TEST(WorkStealingPoolTest, CoversRangeExactlyOnce) {
  WorkStealingPool pool(3);
  std::vector<std::atomic<int>> hits(1013);
  const auto stats = pool.run(hits.size(), 4,
                              [&](std::size_t b, std::size_t e, std::size_t) {
                                for (std::size_t i = b; i < e; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.blocks, hits.size());
  EXPECT_GE(stats.chunks, 1u);
  EXPECT_GE(stats.participants, 1u);
  EXPECT_LE(stats.participants, pool.participant_count());
}

TEST(WorkStealingPoolTest, ZeroBlocksIsNoop) {
  WorkStealingPool pool(2);
  bool called = false;
  const auto stats =
      pool.run(0, 1, [&](std::size_t, std::size_t, std::size_t) {
        called = true;
      });
  EXPECT_FALSE(called);
  EXPECT_EQ(stats.blocks, 0u);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST(WorkStealingPoolTest, FewerBlocksThanParticipants) {
  WorkStealingPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(hits.size(), 1, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkStealingPoolTest, ParticipantIdsAreInRange) {
  WorkStealingPool pool(3);
  std::atomic<std::size_t> max_id{0};
  pool.run(256, 2, [&](std::size_t, std::size_t, std::size_t participant) {
    std::size_t cur = max_id.load();
    while (participant > cur && !max_id.compare_exchange_weak(cur, participant)) {
    }
  });
  EXPECT_LT(max_id.load(), pool.participant_count());
}

TEST(WorkStealingPoolTest, ReusableAcrossLaunches) {
  WorkStealingPool pool(2);
  for (int launch = 0; launch < 50; ++launch) {
    std::vector<std::atomic<int>> hits(97);
    pool.run(hits.size(), 3, [&](std::size_t b, std::size_t e, std::size_t) {
      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(WorkStealingPoolTest, RethrowsLowestBlockException) {
  WorkStealingPool pool(4);
  // Every chunk throws, tagged with its begin index; the launch must
  // deterministically surface the lowest one no matter the schedule.
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.run(128, 2, [&](std::size_t b, std::size_t, std::size_t) {
        throw std::runtime_error(std::to_string(b));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(WorkStealingPoolTest, LaunchCompletesAndPoolSurvivesException) {
  WorkStealingPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(200, 4,
                        [&](std::size_t b, std::size_t e, std::size_t) {
                          if (b == 0) throw std::runtime_error("boom");
                          executed.fetch_add(static_cast<int>(e - b));
                        }),
               std::runtime_error);
  // Every non-throwing block still ran (the launch never abandons work).
  EXPECT_GE(executed.load(), 1);
  // The pool is reusable after a throwing launch.
  std::atomic<int> count{0};
  pool.run(64, 4, [&](std::size_t b, std::size_t e, std::size_t) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(WorkStealingPoolTest, SkewedBlocksGetRebalanced) {
  // All the heavy work sits at the front of the range (one participant's
  // initial share); with stealing, the sum still comes out exact.
  WorkStealingPool pool(3);
  std::atomic<long long> sum{0};
  const std::size_t n = 512;
  pool.run(n, 1, [&](std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t i = b; i < e; ++i) {
      volatile long long spin = 0;
      const int iters = i < 32 ? 20000 : 10;
      for (int k = 0; k < iters; ++k) spin += k;
      sum.fetch_add(static_cast<long long>(i));
    }
  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
}

TEST(WorkStealingPoolTest, NullCancelTokenChangesNothing) {
  WorkStealingPool pool(2);
  std::atomic<int> count{0};
  pool.run(
      128, 4,
      [&](std::size_t b, std::size_t e, std::size_t) {
        count.fetch_add(static_cast<int>(e - b));
      },
      nullptr);
  EXPECT_EQ(count.load(), 128);
}

TEST(WorkStealingPoolTest, PreCancelledLaunchThrowsAndRunsNothing) {
  WorkStealingPool pool(2);
  CancelToken token;
  token.cancel();
  std::atomic<int> count{0};
  EXPECT_THROW(pool.run(
                   256, 4,
                   [&](std::size_t, std::size_t, std::size_t) {
                     count.fetch_add(1);
                   },
                   &token),
               BudgetExhaustedError);
  EXPECT_EQ(count.load(), 0);
  // The pool drains cleanly and is reusable after a cancelled launch.
  pool.run(64, 4, [&](std::size_t, std::size_t, std::size_t) {
    count.fetch_add(1);
  });
  EXPECT_GT(count.load(), 0);
}

TEST(WorkStealingPoolTest, PreCancelledSingleChunkFastPathThrows) {
  WorkStealingPool pool(2);
  CancelToken token;
  token.cancel();
  bool ran = false;
  // n <= chunk takes the inline fast path; it must honor the token too.
  EXPECT_THROW(pool.run(
                   4, 8,
                   [&](std::size_t, std::size_t, std::size_t) { ran = true; },
                   &token),
               BudgetExhaustedError);
  EXPECT_FALSE(ran);
}

TEST(WorkStealingPoolTest, MidLaunchCancelStopsRemainingChunks) {
  WorkStealingPool pool(2);
  CancelToken token;
  std::atomic<int> count{0};
  // The first chunk cancels the token; later chunk claims observe it and
  // skip.  The launch must still drain (no hang) and rethrow the
  // deterministic cancelled error.
  EXPECT_THROW(pool.run(
                   4096, 1,
                   [&](std::size_t, std::size_t, std::size_t) {
                     token.cancel();
                     count.fetch_add(1);
                   },
                   &token),
               BudgetExhaustedError);
  // Some blocks ran before the token spread, but nowhere near all of them.
  EXPECT_GT(count.load(), 0);
  EXPECT_LT(count.load(), 4096);
}

}  // namespace
}  // namespace deco::util
