#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace deco::util {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelChunksPartitionIsExact) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(103, [&](std::size_t b, std::size_t e, std::size_t) {
    std::lock_guard lock(mu);
    chunks.emplace_back(b, e);
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expected_begin = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_GT(e, b);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103u);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelChunksPropagatesFirstException) {
  // Every chunk throws; the rethrown exception must be the lowest-indexed
  // chunk's, regardless of completion order.
  ThreadPool pool(4);
  for (int attempt = 0; attempt < 10; ++attempt) {
    try {
      pool.parallel_chunks(64, [](std::size_t, std::size_t, std::size_t c) {
        throw std::runtime_error(std::to_string(c));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "0");
    }
  }
}

TEST(ThreadPoolTest, ParallelChunksJoinsAllChunksBeforeRethrow) {
  // A throwing chunk must not unwind parallel_chunks while sibling chunks
  // are still executing fn (fn borrows this frame's locals).
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<int> finished{0};
  EXPECT_THROW(
      pool.parallel_chunks(64,
                           [&](std::size_t b, std::size_t, std::size_t) {
                             started.fetch_add(1);
                             if (b == 0) throw std::runtime_error("boom");
                             std::this_thread::sleep_for(
                                 std::chrono::milliseconds(20));
                             finished.fetch_add(1);
                           }),
      std::runtime_error);
  // By the time the exception surfaced, every started chunk had returned.
  EXPECT_EQ(finished.load(), started.load() - 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 57) {
                                     throw std::invalid_argument("57");
                                   }
                                 }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> xs(10000);
  std::iota(xs.begin(), xs.end(), 0.0);
  std::atomic<long long> parallel_sum{0};
  pool.parallel_for(xs.size(), [&](std::size_t i) {
    parallel_sum.fetch_add(static_cast<long long>(xs[i]));
  });
  const long long serial =
      static_cast<long long>(std::accumulate(xs.begin(), xs.end(), 0.0));
  EXPECT_EQ(parallel_sum.load(), serial);
}

}  // namespace
}  // namespace deco::util
