#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace deco::util {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "2"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, ColumnsAligned) {
  Table t({"a", "b"});
  t.add_row({"xxxxxxx", "1"});
  t.add_row({"y", "2"});
  std::istringstream is(t.to_string());
  std::string header;
  std::string sep;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableTest, PrintWritesToStream) {
  Table t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_FALSE(os.str().empty());
}

}  // namespace
}  // namespace deco::util
