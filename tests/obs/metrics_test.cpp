// Metrics registry unit tests: counter/gauge/histogram semantics, the
// disabled fast path, reset, exact multi-thread shard merging, and the
// stability of the text/JSON dumps.  These exercise the Registry class
// directly, so they run (and pass) even when the instrumentation macros are
// compiled out with -DDECO_OBS=OFF.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "tests/obs/json_check.hpp"

namespace deco::obs {
namespace {

TEST(MetricsRegistryTest, CountersGaugesHistogramsRoundTrip) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter_add("requests", 1);
  reg.counter_add("requests", 2);
  reg.counter_add("errors");  // default delta 1
  reg.gauge_set("queue_depth", 3.5);
  reg.gauge_set("queue_depth", 7.0);  // last write wins
  reg.observe_ms("latency_ms", 0.5);
  reg.observe_ms("latency_ms", 2.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("requests"), 3u);
  EXPECT_EQ(snap.counters.at("errors"), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("queue_depth"), 7.0);
  const HistogramData& h = snap.histograms.at("latency_ms");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum_ms, 2.5);
  EXPECT_DOUBLE_EQ(h.min_ms, 0.5);
  EXPECT_DOUBLE_EQ(h.max_ms, 2.0);
  EXPECT_DOUBLE_EQ(h.mean_ms(), 1.25);
}

TEST(MetricsRegistryTest, DisabledRegistryRecordsNothing) {
  Registry reg;
  ASSERT_FALSE(reg.enabled());  // disabled is the default
  reg.counter_add("c", 5);
  reg.gauge_set("g", 1.0);
  reg.observe_ms("h", 1.0);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(MetricsRegistryTest, ResetClearsDataButKeepsEnabled) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter_add("c", 5);
  reg.observe_ms("h", 1.0);
  reg.reset();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(reg.enabled());
  reg.counter_add("c", 2);
  EXPECT_EQ(reg.snapshot().counters.at("c"), 2u);
}

TEST(MetricsRegistryTest, HistogramBucketsCoverFixedBounds) {
  // Each observation lands in the first bucket whose bound is >= the value;
  // values beyond the last bound land in the overflow bucket.
  HistogramData h;
  h.observe(0.0005);                                // below first bound
  h.observe(kLatencyBucketBoundsMs.front());        // exactly the first bound
  h.observe(5.0);                                   // between 4.22 and 5.62
  h.observe(kLatencyBucketBoundsMs.back() * 10.0);  // overflow
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.buckets[0], 2u);
  EXPECT_EQ(h.buckets[30], 1u);  // bound 5.62341 catches 5.0
  EXPECT_EQ(h.buckets[kLatencyBucketBoundsMs.size()], 1u);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, h.count);
}

TEST(MetricsRegistryTest, HistogramBucketsResolveSubDecadeLatencies) {
  // The eighth-decade edges exist so a kernel whose latencies vary by tens
  // of percent does not collapse into one bucket: observations 1.5x apart
  // must always land in different buckets (each edge is ~1.33x the last).
  HistogramData h;
  h.observe(2.0);
  h.observe(3.0);
  h.observe(4.5);
  std::size_t occupied = 0;
  for (const std::uint64_t b : h.buckets) occupied += b != 0 ? 1 : 0;
  EXPECT_EQ(occupied, 3u);
  // Edges are strictly log-spaced: constant ratio across the whole range.
  for (std::size_t i = 1; i < kLatencyBucketBoundsMs.size(); ++i) {
    const double ratio = kLatencyBucketBoundsMs[i] / kLatencyBucketBoundsMs[i - 1];
    EXPECT_NEAR(ratio, std::pow(10.0, 1.0 / 8.0), 1e-4);
  }
}

TEST(MetricsRegistryTest, MultiThreadShardMergeIsExact) {
  Registry reg;
  reg.set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter_add("shared", 1);
        // Integer-valued observations keep the double sum exact.
        reg.observe_ms("lat", static_cast<double>(i % 7));
      }
    });
  }
  for (auto& w : workers) w.join();

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramData& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0;
  for (int i = 0; i < kPerThread; ++i) expected_sum += i % 7;
  EXPECT_DOUBLE_EQ(h.sum_ms, expected_sum * kThreads);
  EXPECT_DOUBLE_EQ(h.min_ms, 0.0);
  EXPECT_DOUBLE_EQ(h.max_ms, 6.0);
}

TEST(MetricsRegistryTest, GaugeLastWriteWinsAcrossThreads) {
  // Sequential writer threads: the chronologically last write must win even
  // though the shards merge in registration order.
  Registry reg;
  reg.set_enabled(true);
  for (int round = 0; round < 3; ++round) {
    std::thread([&reg, round] {
      reg.gauge_set("g", static_cast<double>(round));
    }).join();
  }
  EXPECT_DOUBLE_EQ(reg.snapshot().gauges.at("g"), 2.0);
}

TEST(MetricsDumpTest, TextDumpListsEveryMetric) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter_add("alpha", 3);
  reg.gauge_set("beta", 1.5);
  reg.observe_ms("gamma_ms", 4.0);
  const std::string text = to_text(reg.snapshot());
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  EXPECT_NE(text.find("gamma_ms"), std::string::npos);
}

TEST(MetricsDumpTest, JsonDumpIsWellFormedAndStable) {
  Registry reg;
  reg.set_enabled(true);
  reg.counter_add("b_counter", 2);
  reg.counter_add("a_counter", 1);
  reg.gauge_set("g", -0.25);
  reg.observe_ms("lat_ms", 3.0);
  const std::string json = to_json(reg.snapshot());
  EXPECT_TRUE(testing::json_valid(json)) << json;
  // std::map keys sort the dump, so a_counter precedes b_counter.
  EXPECT_LT(json.find("a_counter"), json.find("b_counter"));
  // Snapshot of identical state serializes identically.
  EXPECT_EQ(json, to_json(reg.snapshot()));
}

TEST(MetricsDumpTest, EmptySnapshotStillValidJson) {
  const std::string json = to_json(MetricsSnapshot{});
  EXPECT_TRUE(testing::json_valid(json)) << json;
}

}  // namespace
}  // namespace deco::obs
