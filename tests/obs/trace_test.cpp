// Trace collector unit tests: event capture, scoped-span nesting, the
// Chrome trace_event serialization, and JSON escaping.  Like the metrics
// tests these drive the TraceCollector/ScopedSpan API directly, so they are
// independent of whether the DECO_OBS_* macros are compiled in.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "tests/obs/json_check.hpp"

namespace deco::obs {
namespace {

/// The process-wide collector is shared state; each test starts clean and
/// leaves it disabled.
class TraceCollectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::instance().clear();
    TraceCollector::instance().set_enabled(true);
  }
  void TearDown() override {
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(TraceCollectorTest, DisabledCollectorRecordsNothing) {
  auto& collector = TraceCollector::instance();
  collector.set_enabled(false);
  collector.instant("marker", "test");
  collector.begin("b", "test");
  collector.end("b", "test");
  { ScopedSpan span("test", "scoped"); }
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST_F(TraceCollectorTest, PhasesAndOrderAreCaptured) {
  auto& collector = TraceCollector::instance();
  collector.begin("outer", "test");
  collector.instant("tick", "test");
  collector.counter("depth", "test", 3.0);
  collector.end("outer", "test");

  const auto events = collector.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'i');
  EXPECT_EQ(events[2].phase, 'C');
  EXPECT_EQ(events[3].phase, 'E');
  // Global sequence restores one total order.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
  }
  // Same thread -> same track.
  EXPECT_EQ(events[0].tid, events[3].tid);
}

TEST_F(TraceCollectorTest, ScopedSpansEmitProperlyNestedCompleteEvents) {
  {
    ScopedSpan outer("test", "outer");
    { ScopedSpan inner("test", "inner"); }
  }
  const auto events = TraceCollector::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Destructor order: inner closes (and records) first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[0].phase, 'X');
  EXPECT_EQ(events[1].phase, 'X');
  // The inner interval lies within the outer one.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-6);
}

TEST_F(TraceCollectorTest, ClearDropsRecordedEvents) {
  auto& collector = TraceCollector::instance();
  collector.instant("a", "test");
  ASSERT_FALSE(collector.snapshot().empty());
  collector.clear();
  EXPECT_TRUE(collector.snapshot().empty());
}

TEST_F(TraceCollectorTest, WriteProducesWellFormedChromeTrace) {
  auto& collector = TraceCollector::instance();
  { ScopedSpan span("test", "work \"quoted\"\n"); }
  collector.instant("marker", "test");
  std::ostringstream out;
  collector.write(out);
  const std::string json = out.str();
  EXPECT_TRUE(testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(ChromeTraceFormatTest, EventFieldsSerialize) {
  TraceEvent e;
  e.name = "task";
  e.cat = "sim";
  e.phase = 'X';
  e.ts_us = 1500.0;
  e.dur_us = 250.0;
  e.pid = 3;
  e.tid = 7;
  e.args.push_back({"outcome", "completed", true});
  e.args.push_back({"attempt", "2", false});
  std::ostringstream out;
  write_chrome_trace(out, std::vector<TraceEvent>{e});
  const std::string json = out.str();
  EXPECT_TRUE(testing::json_valid(json)) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"completed\""), std::string::npos);
  EXPECT_NE(json.find("\"attempt\":2"), std::string::npos);
}

TEST(JsonEscapeTest, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  // Arbitrary control characters come out as \u00XX.
  const std::string esc = json_escape(std::string(1, '\x01'));
  EXPECT_EQ(esc, "\\u0001");
  // Everything it emits must survive a JSON string parse.
  EXPECT_TRUE(
      testing::json_valid("\"" + json_escape("q\"\\\n\r\t\x02") + "\""));
}

TEST(ScopedSpanTest, FeedsMetricHistogramWhenRequested) {
  auto& reg = Registry::instance();
  reg.reset();
  reg.set_enabled(true);
  { ScopedSpan span("test", "timed", "test.span_ms"); }
  const auto snap = reg.snapshot();
  reg.set_enabled(false);
  reg.reset();
  ASSERT_EQ(snap.histograms.count("test.span_ms"), 1u);
  EXPECT_EQ(snap.histograms.at("test.span_ms").count, 1u);
}

}  // namespace
}  // namespace deco::obs
