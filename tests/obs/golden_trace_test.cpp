// Golden-trace regression tests: two canonical observability captures —
// the trace + metrics of a Montage-25 plan evaluation and the timeline of
// one fault-injected executor run — compared structurally against committed
// golden files.  Timestamps and durations are excluded; what is pinned is
// the event structure (phase, category, name, args, ordering) and the
// deterministic counter values, so any unintended change to what the
// instrumentation emits (or to the engine behaviour it reflects) fails
// loudly here.
//
// Regenerate after an intentional change with:
//   DECO_REGEN_GOLDEN=1 ctest -R Golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "obs/timeline.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::obs {
namespace {

using core::testing::ec2;
using core::testing::store;

const std::string kGoldenDir = std::string(DECO_TEST_DATA_DIR) + "/golden/";

/// One line per event: phase, category, name, args — everything except the
/// wall-clock fields.  `tracks` additionally pins pid/tid (used for the
/// simulator timeline, where both are virtual and deterministic).
std::string normalize(const std::vector<TraceEvent>& events, bool tracks) {
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    out << e.phase << ' ' << (e.cat.empty() ? "-" : e.cat) << ' ' << e.name;
    if (tracks) out << " pid=" << e.pid << " tid=" << e.tid;
    for (const TraceArg& a : e.args) out << ' ' << a.key << '=' << a.value;
    out << '\n';
  }
  return out.str();
}

/// Counters in full; histograms by name and count only (sums are timing).
std::string normalize(const MetricsSnapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "gauge " << name << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    out << "hist " << name << " count " << h.count << '\n';
  }
  return out.str();
}

void check_golden(const std::string& file, const std::string& actual) {
  const std::string path = kGoldenDir + file;
  if (std::getenv("DECO_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    out << actual;
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with DECO_REGEN_GOLDEN=1)";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "structure drifted from " << path
      << " — if intentional, regenerate with DECO_REGEN_GOLDEN=1";
}

class GoldenTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::instance().reset();
    Registry::instance().set_enabled(true);
    TraceCollector::instance().clear();
    TraceCollector::instance().set_enabled(true);
  }
  void TearDown() override {
    Registry::instance().set_enabled(false);
    Registry::instance().reset();
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
};

TEST_F(GoldenTraceTest, Montage25PlanEvaluationStructureIsStable) {
  if (!kCompiledIn) {
    GTEST_SKIP() << "instrumentation compiled out (DECO_OBS=OFF)";
  }
  // ~25-task Montage: width 6 with this generator and seed.
  util::Rng wf_rng(17);
  const auto wf = workflow::make_montage_by_width(6, wf_rng);
  core::TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend backend;
  core::EvalOptions opt;
  opt.mc_iterations = 200;
  core::PlanEvaluator eval(wf, est, backend, opt);
  const core::ProbDeadline req{0.9, 3000};

  sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  for (std::size_t t = 0; t < wf.task_count(); t += 3) plan[t].vm_type = 2;
  const std::vector<sim::Plan> batch{plan, sim::Plan::uniform(wf.task_count(), 0)};
  (void)eval.evaluate_batch(batch, req);  // cold caches
  (void)eval.evaluate(plan, req);         // plan-cache hit path

  check_golden("montage_eval_trace.txt",
               normalize(TraceCollector::instance().snapshot(), false));
  check_golden("montage_eval_metrics.txt",
               normalize(Registry::instance().snapshot()));
}

TEST_F(GoldenTraceTest, FaultInjectedRunTimelineIsStable) {
  util::Rng wf_rng(12);
  const auto wf = workflow::make_montage(1, wf_rng);
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 1200;
  fm.task_failure_prob = 0.08;
  fm.straggler_prob = 0.05;
  const sim::FailureModel failures(fm);
  sim::ExecutorOptions options;
  options.failures = &failures;
  util::Rng rng(2015);
  const auto result = sim::simulate_execution(
      wf, sim::Plan::uniform(wf.task_count(), 1), ec2(), rng, options);
  ASSERT_GT(result.failures.total_disruptions(), 0u);

  check_golden("fault_run_timeline.txt",
               normalize(execution_timeline(wf, result, &ec2()), true));
  if (kCompiledIn) {
    check_golden("fault_run_metrics.txt",
                 normalize(Registry::instance().snapshot()));
  }
}

}  // namespace
}  // namespace deco::obs
