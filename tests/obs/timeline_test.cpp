// Simulator timeline exporter tests: instance tracks, one slice per task
// attempt, retry/crash/failure tagging, and Chrome-trace validity.  The
// attempt log itself is unconditional executor output, so these tests run
// under -DDECO_OBS=OFF too.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "cloud/calibration.hpp"
#include "tests/obs/json_check.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::obs {
namespace {

const cloud::Catalog& catalog() {
  static const cloud::Catalog c = cloud::make_ec2_catalog();
  return c;
}

sim::ExecutionResult run(const workflow::Workflow& wf,
                         const sim::FailureModel* failures,
                         std::uint64_t seed) {
  sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  sim::ExecutorOptions options;
  options.sample_dynamics = false;
  options.rand_io_ops_per_task = 0;
  options.failures = failures;
  util::Rng rng(seed);
  return sim::simulate_execution(wf, plan, catalog(), rng, options);
}

std::size_t count_slices(const std::vector<TraceEvent>& events) {
  return static_cast<std::size_t>(
      std::count_if(events.begin(), events.end(),
                    [](const TraceEvent& e) { return e.phase == 'X'; }));
}

TEST(ExecutionTimelineTest, CleanRunHasOneSliceAndOneTrackPerEntity) {
  util::Rng wf_rng(11);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  const auto result = run(wf, nullptr, 1);
  ASSERT_TRUE(result.finished);
  ASSERT_EQ(result.attempts.size(), wf.task_count());

  const auto events = execution_timeline(wf, result, &catalog());
  EXPECT_EQ(count_slices(events), wf.task_count());

  // One thread_name metadata record per acquired instance.
  const auto tracks = std::count_if(
      events.begin(), events.end(), [](const TraceEvent& e) {
        return e.phase == 'M' && e.name == "thread_name" && e.tid > 0;
      });
  EXPECT_EQ(static_cast<std::size_t>(tracks), result.instances.size());

  // Clean run: every slice is a first attempt, no fault markers.
  for (const TraceEvent& e : events) {
    if (e.phase == 'X') EXPECT_EQ(e.cat, "attempt");
    EXPECT_NE(e.phase, 'i');
  }
}

TEST(ExecutionTimelineTest, SliceTimesScaleVirtualSecondsToTraceMs) {
  util::Rng wf_rng(11);
  const auto wf = workflow::make_pipeline(4, wf_rng);
  const auto result = run(wf, nullptr, 1);
  const auto events = execution_timeline(wf, result);
  for (const TraceEvent& e : events) {
    if (e.phase != 'X') continue;
    const auto& attempt = result.attempts;
    const auto it = std::find_if(
        attempt.begin(), attempt.end(), [&](const sim::TaskAttempt& a) {
          return a.start * 1000.0 == e.ts_us;  // 1 virtual s = 1000 trace us
        });
    EXPECT_NE(it, attempt.end()) << "slice " << e.name << " at " << e.ts_us;
  }
}

TEST(ExecutionTimelineTest, FaultyRunTagsRetriesAndEmitsFaultMarkers) {
  util::Rng wf_rng(12);
  const auto wf = workflow::make_montage(1, wf_rng);
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 600;
  fm.task_failure_prob = 0.2;
  const sim::FailureModel failures(fm);
  const auto result = run(wf, &failures, 5);
  ASSERT_GT(result.failures.retries, 0u) << "seed produced no retries";

  const auto events = execution_timeline(wf, result, &catalog(), 4);
  // Slice count == attempt count == completed tasks + retries.
  std::size_t completed = 0;
  for (const std::uint8_t c : result.completed) completed += c;
  EXPECT_EQ(result.attempts.size(), completed + result.failures.retries);
  EXPECT_EQ(count_slices(events), result.attempts.size());

  // Non-completed attempts carry crash/failure categories and a matching
  // fault instant; re-attempts after them are tagged retry.
  std::size_t fault_slices = 0, fault_markers = 0, retry_slices = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.pid, 4u);  // caller-chosen process id
    if (e.phase == 'X' && (e.cat == "crash" || e.cat == "failure")) {
      ++fault_slices;
    }
    if (e.phase == 'X' && e.cat == "retry") ++retry_slices;
    if (e.phase == 'i') ++fault_markers;
  }
  EXPECT_EQ(fault_slices, fault_markers);
  EXPECT_GT(retry_slices, 0u);
}

TEST(ExecutionTimelineTest, WrittenTimelineIsWellFormedChromeTrace) {
  util::Rng wf_rng(13);
  const auto wf = workflow::make_pipeline(4, wf_rng);
  const auto result = run(wf, nullptr, 2);
  std::ostringstream out;
  write_execution_timeline(out, wf, result, &catalog());
  EXPECT_TRUE(testing::json_valid(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace deco::obs
