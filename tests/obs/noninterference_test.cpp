// The observability acceptance invariant: instrumentation is observation
// only.  Evaluator and simulator results must be bit-identical whether the
// metrics registry and trace collector are enabled or disabled — the
// instrumentation consumes no RNG state and feeds nothing back into any
// engine decision.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "obs/obs.hpp"
#include "sim/executor.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::obs {
namespace {

using core::testing::ec2;
using core::testing::store;

/// Enables registry + collector for one scope, restoring the disabled
/// default (and dropping collected data) on exit.
class ObsOn {
 public:
  ObsOn() {
    Registry::instance().reset();
    Registry::instance().set_enabled(true);
    TraceCollector::instance().clear();
    TraceCollector::instance().set_enabled(true);
  }
  ~ObsOn() {
    Registry::instance().set_enabled(false);
    Registry::instance().reset();
    TraceCollector::instance().set_enabled(false);
    TraceCollector::instance().clear();
  }
};

core::PlanEvaluation evaluate_once(const workflow::Workflow& wf) {
  core::TaskTimeEstimator est(ec2(), store());
  vgpu::SerialBackend backend;
  core::EvalOptions opt;
  opt.mc_iterations = 300;
  core::PlanEvaluator eval(wf, est, backend, opt);
  sim::Plan plan = sim::Plan::uniform(wf.task_count(), 1);
  for (std::size_t t = 0; t < wf.task_count(); t += 3) plan[t].vm_type = 2;
  return eval.evaluate(plan, {0.9, 3000});
}

TEST(NonInterferenceTest, EvaluatorBitsIdenticalWithObsOnAndOff) {
  util::Rng wf_rng(17);
  const auto wf = workflow::make_montage_by_width(6, wf_rng);

  ASSERT_FALSE(Registry::instance().enabled());
  const core::PlanEvaluation off = evaluate_once(wf);

  core::PlanEvaluation on;
  {
    ObsOn obs;
    on = evaluate_once(wf);
    if (kCompiledIn) {
      // The instrumentation actually observed the run...
      EXPECT_GT(Registry::instance().snapshot().counters.count("eval.plans"),
                0u);
    }
  }
  // ...without perturbing a single bit of it.
  EXPECT_EQ(off.mean_cost, on.mean_cost);
  EXPECT_EQ(off.mean_makespan, on.mean_makespan);
  EXPECT_EQ(off.makespan_quantile, on.makespan_quantile);
  EXPECT_EQ(off.deadline_prob, on.deadline_prob);
  EXPECT_EQ(off.feasible, on.feasible);
}

sim::ExecutionResult simulate_once(const workflow::Workflow& wf,
                                   const sim::FailureModel& failures) {
  sim::ExecutorOptions options;
  options.failures = &failures;
  util::Rng rng(2015);
  return sim::simulate_execution(wf, sim::Plan::uniform(wf.task_count(), 1),
                                 ec2(), rng, options);
}

TEST(NonInterferenceTest, SimulatorBitsIdenticalWithObsOnAndOff) {
  util::Rng wf_rng(18);
  const auto wf = workflow::make_montage(1, wf_rng);
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 1800;
  fm.task_failure_prob = 0.05;
  fm.straggler_prob = 0.05;
  const sim::FailureModel failures(fm);

  ASSERT_FALSE(Registry::instance().enabled());
  const sim::ExecutionResult off = simulate_once(wf, failures);
  ASSERT_GT(off.failures.total_disruptions(), 0u);

  sim::ExecutionResult on;
  {
    ObsOn obs;
    on = simulate_once(wf, failures);
    if (kCompiledIn) {
      EXPECT_EQ(Registry::instance().snapshot().counters.at("sim.runs"), 1u);
      EXPECT_FALSE(TraceCollector::instance().snapshot().empty());
    }
  }
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.total_cost, on.total_cost);
  EXPECT_EQ(off.instance_cost, on.instance_cost);
  EXPECT_EQ(off.transfer_cost, on.transfer_cost);
  EXPECT_EQ(off.failures.instance_crashes, on.failures.instance_crashes);
  EXPECT_EQ(off.failures.task_failures, on.failures.task_failures);
  EXPECT_EQ(off.failures.retries, on.failures.retries);
  EXPECT_EQ(off.first_failure_s, on.first_failure_s);
  ASSERT_EQ(off.attempts.size(), on.attempts.size());
  for (std::size_t i = 0; i < off.attempts.size(); ++i) {
    EXPECT_EQ(off.attempts[i].task, on.attempts[i].task);
    EXPECT_EQ(off.attempts[i].start, on.attempts[i].start);
    EXPECT_EQ(off.attempts[i].end, on.attempts[i].end);
    EXPECT_EQ(off.attempts[i].outcome, on.attempts[i].outcome);
  }
}

}  // namespace
}  // namespace deco::obs
