#include "sim/failure_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/executor.hpp"
#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::sim {
namespace {

using core::testing::ec2;

ExecutorOptions quiet(const FailureModel* fm = nullptr) {
  ExecutorOptions opt;
  opt.sample_dynamics = false;
  opt.rand_io_ops_per_task = 0;
  opt.failures = fm;
  return opt;
}

void expect_identical(const ExecutionResult& a, const ExecutionResult& b) {
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.instance_cost, b.instance_cost);
  EXPECT_EQ(a.transfer_cost, b.transfer_cost);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.instances_used, b.instances_used);
  EXPECT_EQ(a.finished, b.finished);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].start, b.tasks[t].start) << "task " << t;
    EXPECT_EQ(a.tasks[t].finish, b.tasks[t].finish) << "task " << t;
    EXPECT_EQ(a.tasks[t].instance, b.tasks[t].instance) << "task " << t;
    EXPECT_EQ(a.completed[t], b.completed[t]) << "task " << t;
  }
  EXPECT_EQ(a.failures.instance_crashes, b.failures.instance_crashes);
  EXPECT_EQ(a.failures.boot_failures, b.failures.boot_failures);
  EXPECT_EQ(a.failures.task_failures, b.failures.task_failures);
  EXPECT_EQ(a.failures.stragglers, b.failures.stragglers);
  EXPECT_EQ(a.failures.retries, b.failures.retries);
}

// --- bit-identity regression -------------------------------------------

TEST(FailureModelTest, NullAndZeroRateModelsMatchBaselineBitForBit) {
  // The full sampling path (dynamics on) so the RNG is heavily exercised:
  // neither a nullptr model nor an all-zero model may consume a single draw.
  util::Rng wf_rng(1);
  const auto wf = workflow::make_montage(1, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  const FailureModel zero_model;  // all rates zero
  EXPECT_FALSE(zero_model.enabled());

  util::Rng r1(42);
  const auto baseline = simulate_execution(wf, plan, ec2(), r1);
  util::Rng r2(42);
  ExecutorOptions with_null;
  with_null.failures = nullptr;
  const auto null_run = simulate_execution(wf, plan, ec2(), r2, with_null);
  util::Rng r3(42);
  ExecutorOptions with_zero;
  with_zero.failures = &zero_model;
  const auto zero_run = simulate_execution(wf, plan, ec2(), r3, with_zero);

  expect_identical(baseline, null_run);
  expect_identical(baseline, zero_run);
  EXPECT_EQ(baseline.first_failure_s, zero_run.first_failure_s);
  EXPECT_TRUE(std::isinf(baseline.first_failure_s));
}

TEST(FailureModelTest, ActiveModelIsDeterministicPerSeed) {
  util::Rng wf_rng(2);
  const auto wf = workflow::make_cybershake(30, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.crash_mtbf_s = 900;
  fm.task_failure_prob = 0.1;
  fm.straggler_prob = 0.1;
  fm.boot_failure_prob = 0.05;
  const FailureModel model(fm);

  util::Rng r1(7);
  const auto a = simulate_execution(wf, plan, ec2(), r1, quiet(&model));
  util::Rng r2(7);
  const auto b = simulate_execution(wf, plan, ec2(), r2, quiet(&model));
  expect_identical(a, b);
  EXPECT_EQ(a.first_failure_s, b.first_failure_s);
  EXPECT_GT(a.failures.total_disruptions(), 0u);
}

// --- crash injection ----------------------------------------------------

TEST(FailureModelTest, CrashesInflateMakespanAndAreCounted) {
  util::Rng wf_rng(3);
  const auto wf = workflow::make_pipeline(8, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.crash_mtbf_s = 600;  // far shorter than the workflow: crashes certain
  const FailureModel model(fm);

  util::Rng clean_rng(9);
  const auto clean = simulate_execution(wf, plan, ec2(), clean_rng, quiet());
  util::Rng rng(9);
  const auto faulty = simulate_execution(wf, plan, ec2(), rng, quiet(&model));

  EXPECT_TRUE(faulty.finished);
  EXPECT_GT(faulty.failures.instance_crashes, 0u);
  EXPECT_GT(faulty.failures.retries, 0u);
  EXPECT_GT(faulty.makespan, clean.makespan);
  EXPECT_TRUE(std::isfinite(faulty.first_failure_s));
  EXPECT_LE(faulty.first_failure_s, faulty.makespan);
}

TEST(FailureModelTest, WeibullCrashesAlsoTerminate) {
  util::Rng wf_rng(4);
  const auto wf = workflow::make_pipeline(6, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.crash_mtbf_s = 600;
  fm.crash_distribution = FailureModelOptions::CrashDistribution::kWeibull;
  fm.weibull_shape = 2.0;
  const FailureModel model(fm);
  util::Rng rng(11);
  const auto r = simulate_execution(wf, plan, ec2(), rng, quiet(&model));
  EXPECT_TRUE(r.finished);
  EXPECT_GT(r.failures.instance_crashes, 0u);
}

TEST(FailureModelTest, CheckpointingSalvagesCrashedWork) {
  util::Rng wf_rng(5);
  const auto wf = workflow::make_pipeline(8, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.crash_mtbf_s = 600;
  const FailureModel restart(fm);
  fm.checkpoint_fraction = 0.95;
  const FailureModel checkpointed(fm);

  util::Rng r1(13);
  const auto lost = simulate_execution(wf, plan, ec2(), r1, quiet(&restart));
  util::Rng r2(13);
  const auto saved =
      simulate_execution(wf, plan, ec2(), r2, quiet(&checkpointed));
  EXPECT_GT(lost.failures.instance_crashes, 0u);
  EXPECT_LT(saved.makespan, lost.makespan);
}

// --- transient failures and retry caps ----------------------------------

TEST(FailureModelTest, CertainTransientFailureRetriesExactlyToCap) {
  util::Rng wf_rng(6);
  const auto wf = workflow::make_pipeline(4, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.task_failure_prob = 1.0;  // every non-immune attempt fails
  fm.max_task_retries = 3;
  const FailureModel model(fm);
  util::Rng rng(15);
  const auto r = simulate_execution(wf, plan, ec2(), rng, quiet(&model));
  // Each task burns its full retry budget, then the immune attempt lands.
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.failures.task_failures,
            fm.max_task_retries * wf.task_count());
  EXPECT_EQ(r.failures.retries, fm.max_task_retries * wf.task_count());
}

TEST(FailureModelTest, StragglersStretchAttemptsByTheSlowdown) {
  util::Rng wf_rng(8);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.straggler_prob = 1.0;
  fm.straggler_slowdown = 3.0;
  const FailureModel model(fm);
  util::Rng clean_rng(17);
  const auto clean = simulate_execution(wf, plan, ec2(), clean_rng, quiet());
  util::Rng rng(17);
  const auto slow = simulate_execution(wf, plan, ec2(), rng, quiet(&model));
  // Deterministic dynamics + every attempt straggling: exactly 3x.
  EXPECT_EQ(slow.failures.stragglers, wf.task_count());
  EXPECT_NEAR(slow.makespan, 3.0 * clean.makespan, 1e-6);
}

TEST(FailureModelTest, BootFailuresDelayAcquisition) {
  util::Rng wf_rng(9);
  const auto wf = workflow::make_pipeline(3, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.boot_failure_prob = 1.0;  // every boot attempt fails, up to the cap
  fm.boot_retry_s = 60;
  const FailureModel model(fm);
  util::Rng clean_rng(19);
  const auto clean = simulate_execution(wf, plan, ec2(), clean_rng, quiet());
  util::Rng rng(19);
  const auto r = simulate_execution(wf, plan, ec2(), rng, quiet(&model));
  // A pipeline reuses one instance, so there is one acquisition: four
  // failed boots (the consecutive cap), each costing boot_retry_s.
  EXPECT_EQ(r.failures.boot_failures, 4u);
  EXPECT_NEAR(r.makespan, clean.makespan + 4 * fm.boot_retry_s, 1e-6);
}

// --- backoff ------------------------------------------------------------

TEST(FailureModelTest, BackoffIsCappedExponential) {
  FailureModelOptions fm;
  fm.retry_backoff_s = 30;
  fm.retry_backoff_factor = 2.0;
  fm.retry_backoff_cap_s = 600;
  const FailureModel model(fm);
  EXPECT_DOUBLE_EQ(model.backoff_delay(1), 30);
  EXPECT_DOUBLE_EQ(model.backoff_delay(2), 60);
  EXPECT_DOUBLE_EQ(model.backoff_delay(3), 120);
  EXPECT_DOUBLE_EQ(model.backoff_delay(10), 600);  // capped
}

// --- horizon / partial execution ----------------------------------------

TEST(FailureModelTest, HorizonMaterializesAReproduciblePrefix) {
  util::Rng wf_rng(10);
  const auto wf = workflow::make_montage(1, wf_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  FailureModelOptions fm;
  fm.crash_mtbf_s = 1200;
  fm.task_failure_prob = 0.05;
  const FailureModel model(fm);

  util::Rng full_rng(21);
  const auto full = simulate_execution(wf, plan, ec2(), full_rng,
                                       quiet(&model));
  ASSERT_TRUE(full.finished);

  ExecutorOptions partial_options = quiet(&model);
  partial_options.horizon_s = 0.5 * full.makespan;
  util::Rng part_rng(21);
  const auto part =
      simulate_execution(wf, plan, ec2(), part_rng, partial_options);

  EXPECT_FALSE(part.finished);
  std::size_t completed = 0;
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    if (!part.completed[t]) continue;
    ++completed;
    // Same seed: the prefix reproduces the full run's traces bit for bit
    // (the property the reactive engine's probe/cut two-pass relies on).
    EXPECT_LE(part.tasks[t].finish, partial_options.horizon_s);
    EXPECT_EQ(part.tasks[t].start, full.tasks[t].start);
    EXPECT_EQ(part.tasks[t].finish, full.tasks[t].finish);
  }
  EXPECT_GT(completed, 0u);
  EXPECT_LT(completed, wf.task_count());
  // A truncated run is billed only up to the horizon.
  EXPECT_LE(part.instance_cost, full.instance_cost);
}

// --- expectations for the failure-aware evaluator ------------------------

TEST(FailureModelTest, ExpectedTimeFactorIsOneWhenDisabled) {
  const FailureModel model;
  EXPECT_DOUBLE_EQ(model.expected_time_factor(100), 1.0);
}

TEST(FailureModelTest, ExpectedTimeFactorGrowsWithFailureRates) {
  FailureModelOptions fm;
  fm.task_failure_prob = 0.05;
  const FailureModel low(fm);
  fm.task_failure_prob = 0.2;
  const FailureModel high(fm);
  EXPECT_GT(low.expected_time_factor(300), 1.0);
  EXPECT_GT(high.expected_time_factor(300),
            low.expected_time_factor(300));

  FailureModelOptions crash;
  crash.crash_mtbf_s = 3600;
  const FailureModel crashy(crash);
  // Longer tasks are likelier to meet a crash: the factor grows with the
  // nominal duration.
  EXPECT_GT(crashy.expected_time_factor(1800),
            crashy.expected_time_factor(60));
}

}  // namespace
}  // namespace deco::sim
