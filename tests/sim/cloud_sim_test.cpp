#include "sim/cloud_sim.hpp"

#include <gtest/gtest.h>

namespace deco::sim {
namespace {

TEST(BilledHoursTest, MinimumOneHour) {
  EXPECT_DOUBLE_EQ(billed_hours(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(billed_hours(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(billed_hours(0, 3600), 1.0);
}

TEST(BilledHoursTest, CeilsPartialHours) {
  EXPECT_DOUBLE_EQ(billed_hours(0, 3601), 2.0);
  EXPECT_DOUBLE_EQ(billed_hours(0, 7200), 2.0);
  EXPECT_DOUBLE_EQ(billed_hours(100, 100 + 5400), 2.0);
}

TEST(CloudPoolTest, AcquireCreatesRunningInstance) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(0, 0, 10.0);
  EXPECT_TRUE(pool.instance(id).running());
  EXPECT_DOUBLE_EQ(pool.instance(id).acquired_at, 10.0);
  EXPECT_EQ(pool.instance_count(), 1u);
}

TEST(CloudPoolTest, ReleaseStopsBilling) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(0, 0, 0.0);
  pool.release(id, 1800.0);
  EXPECT_FALSE(pool.instance(id).running());
  // One billed hour of m1.small.
  EXPECT_NEAR(pool.billed_cost(), 0.044, 1e-9);
}

TEST(CloudPoolTest, BillingUsesRegionMultiplier) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(0, 1, 0.0);  // Singapore
  pool.release(id, 100.0);
  EXPECT_NEAR(pool.billed_cost(), 0.044 * 1.33, 1e-9);
}

TEST(CloudPoolTest, FindIdleSkipsBusyInstances) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(1, 0, 0.0);
  pool.instance(id).busy_until = 50.0;
  EXPECT_EQ(pool.find_idle(1, 0, 20.0), CloudPool::kNone);
  EXPECT_EQ(pool.find_idle(1, 0, 60.0), id);
}

TEST(CloudPoolTest, FindIdleMatchesTypeAndRegion) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  pool.acquire(1, 0, 0.0);
  EXPECT_EQ(pool.find_idle(2, 0, 10.0), CloudPool::kNone);
  EXPECT_EQ(pool.find_idle(1, 1, 10.0), CloudPool::kNone);
  EXPECT_NE(pool.find_idle(1, 0, 10.0), CloudPool::kNone);
}

TEST(CloudPoolTest, GroupInstancesAreReservedAndFindable) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(0, 0, 0.0, /*group=*/7);
  // Group-pinned instances are not handed out as generic idle capacity.
  EXPECT_EQ(pool.find_idle(0, 0, 10.0), CloudPool::kNone);
  EXPECT_EQ(pool.find_group(7), id);
  EXPECT_EQ(pool.find_group(8), CloudPool::kNone);
  EXPECT_EQ(pool.find_group(-1), CloudPool::kNone);
}

TEST(CloudPoolTest, ReleaseAllStopsEverything) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  pool.acquire(0, 0, 0.0);
  pool.acquire(1, 0, 0.0);
  pool.release_all(4000.0);
  // 2 hours of small + 2 hours of medium.
  EXPECT_NEAR(pool.billed_cost(), 2 * 0.044 + 2 * 0.087, 1e-9);
}

TEST(CloudPoolTest, UsedHoursTracksActualUptime) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  CloudPool pool(catalog);
  const InstanceId id = pool.acquire(0, 0, 0.0);
  pool.release(id, 1800.0);
  EXPECT_NEAR(pool.used_hours(), 0.5, 1e-9);
}

}  // namespace
}  // namespace deco::sim
