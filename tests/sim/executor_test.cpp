#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "workflow/generators.hpp"

namespace deco::sim {
namespace {

ExecutorOptions deterministic() {
  ExecutorOptions opt;
  opt.sample_dynamics = false;
  opt.rand_io_ops_per_task = 0;
  return opt;
}

workflow::Workflow two_task_chain(double cpu1, double cpu2) {
  workflow::Workflow wf("chain");
  wf.add_task({"t0", "p", cpu1, 0, 0});
  wf.add_task({"t1", "p", cpu2, 0, 0});
  wf.add_edge(0, 1, 0);
  return wf;
}

TEST(ExecutorTest, EmptyWorkflow) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(1);
  const workflow::Workflow wf("empty");
  const auto r = simulate_execution(wf, Plan{}, catalog, rng, deterministic());
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(ExecutorTest, ChainRunsSequentially) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(2);
  const auto wf = two_task_chain(100, 200);
  // m1.small has 1 ECU so CPU seconds pass through unchanged.
  const Plan plan = Plan::uniform(2, 0);
  const auto r = simulate_execution(wf, plan, catalog, rng, deterministic());
  EXPECT_NEAR(r.makespan, 300.0, 1e-6);
  EXPECT_EQ(r.tasks[1].start, r.tasks[0].finish);
}

TEST(ExecutorTest, ComputeUnitsSpeedUpCpu) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(3);
  const auto wf = two_task_chain(800, 0);
  const auto small = simulate_execution(wf, Plan::uniform(2, 0), catalog, rng,
                                        deterministic());
  const auto xlarge = simulate_execution(wf, Plan::uniform(2, 3), catalog, rng,
                                         deterministic());
  // Single-threaded tasks run on one core: 2 ECU/core vs 1 ECU/core.
  EXPECT_NEAR(small.makespan / xlarge.makespan, 2.0, 1e-6);
}

TEST(ExecutorTest, ParallelTasksShareNoInstanceByDefault) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(4);
  workflow::Workflow wf("fan");
  wf.add_task({"a", "p", 100, 0, 0});
  wf.add_task({"b", "p", 100, 0, 0});
  const auto r = simulate_execution(wf, Plan::uniform(2, 0), catalog, rng,
                                    deterministic());
  // Both are roots: they run concurrently on two instances.
  EXPECT_NEAR(r.makespan, 100.0, 1e-6);
  EXPECT_EQ(r.instances_used, 2u);
}

TEST(ExecutorTest, CoSchedulingGroupSerializesOnOneInstance) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(5);
  workflow::Workflow wf("fan");
  wf.add_task({"a", "p", 100, 0, 0});
  wf.add_task({"b", "p", 100, 0, 0});
  Plan plan = Plan::uniform(2, 0);
  plan[0].group = 1;
  plan[1].group = 1;
  const auto r = simulate_execution(wf, plan, catalog, rng, deterministic());
  EXPECT_NEAR(r.makespan, 200.0, 1e-6);
  EXPECT_EQ(r.instances_used, 1u);
}

TEST(ExecutorTest, IdleInstanceIsReused) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(6);
  const auto wf = two_task_chain(100, 100);
  const auto r = simulate_execution(wf, Plan::uniform(2, 0), catalog, rng,
                                    deterministic());
  // The child reuses the parent's instance: one instance, one billed hour.
  EXPECT_EQ(r.instances_used, 1u);
  EXPECT_NEAR(r.instance_cost, 0.044, 1e-9);
}

TEST(ExecutorTest, IoTimeAddsToMakespan) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(7);
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 0, 1000 * mb, 0});  // 1000 MB input
  const auto r = simulate_execution(wf, Plan::uniform(1, 0), catalog, rng,
                                    deterministic());
  // m1.small mean seq I/O = 129.3 * 0.79 ~ 102.1 MB/s -> ~9.8 s.
  EXPECT_NEAR(r.makespan, 1000.0 / (129.3 * 0.79), 0.2);
}

TEST(ExecutorTest, CrossInstanceEdgeCostsNetworkTime) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(8);
  workflow::Workflow wf("net");
  wf.add_task({"a", "p", 10, 0, 0});
  wf.add_task({"b", "p", 10, 0, 0});
  wf.add_task({"c", "p", 10, 0, 0});
  // b and c are both children of a; c lands on a different instance and pays
  // for the transfer.
  const double mb = 1024.0 * 1024.0;
  wf.add_edge(0, 1, 0);
  wf.add_edge(0, 2, 100 * mb);
  Plan plan = Plan::uniform(3, 0);
  const auto r = simulate_execution(wf, plan, catalog, rng, deterministic());
  // Task b reuses a's instance (no transfer); c pays 100 MB over the
  // small<->small pair bandwidth (300 Mbit/s mean -> 37.5e6 bytes/s).
  const double expected_net = 100 * mb / (300e6 / 8);
  EXPECT_NEAR(r.tasks[2].finish - r.tasks[2].start, 10 + expected_net, 0.1);
}

TEST(ExecutorTest, CrossRegionTransferBillsEgress) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(9);
  workflow::Workflow wf("regions");
  wf.add_task({"a", "p", 10, 0, 0});
  wf.add_task({"b", "p", 10, 0, 0});
  const double gb = 1024.0 * 1024.0 * 1024.0;
  wf.add_edge(0, 1, 2 * gb);
  Plan plan = Plan::uniform(2, 0);
  plan[1].region = 1;
  const auto r = simulate_execution(wf, plan, catalog, rng, deterministic());
  // 2 GB out of us-east at $0.12/GB.
  EXPECT_NEAR(r.transfer_cost, 0.24, 1e-9);
  EXPECT_GT(r.makespan, 20.0);
}

TEST(ExecutorTest, BootDelayShiftsStart) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(10);
  const auto wf = two_task_chain(100, 0);
  ExecutorOptions opt = deterministic();
  opt.boot_seconds = 60;
  const auto r = simulate_execution(wf, Plan::uniform(2, 0), catalog, rng, opt);
  EXPECT_NEAR(r.tasks[0].start, 60.0, 1e-9);
}

TEST(ExecutorTest, DynamicsCreateVariance) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(11);
  workflow::Workflow wf("io");
  const double mb = 1024.0 * 1024.0;
  wf.add_task({"t", "p", 10, 2000 * mb, 0});
  ExecutorOptions opt;  // dynamics on
  std::vector<double> makespans;
  for (int i = 0; i < 60; ++i) {
    makespans.push_back(
        simulate_execution(wf, Plan::uniform(1, 0), catalog, rng, opt).makespan);
  }
  EXPECT_GT(util::stddev(makespans), 0.05);
}

TEST(ExecutorTest, WholeMontageExecutes) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng rng(12);
  const auto wf = workflow::make_montage(1, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  const auto r = simulate_execution(wf, plan, catalog, rng, {});
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.total_cost, 0.0);
  // Every task ran and respected dependencies.
  for (const workflow::Edge& e : wf.edges()) {
    EXPECT_GE(r.tasks[e.child].start, r.tasks[e.parent].finish - 1e-6);
  }
}

}  // namespace
}  // namespace deco::sim
