// Differential harness for the sharded-ensemble determinism contract
// (sim::EnsembleRunner): a sweep fanned over N workers must be
// *bit-identical* to the serial reference — identical per-run execution
// traces, costs, plan choices and merged metrics counters — at every worker
// count, under every fault profile.  The comparisons are string-equality on
// hex-float (%a) fingerprints, so "near" is not good enough: one ULP of
// divergence anywhere fails the suite.
//
// Exemptions (docs/performance.md "Ensemble sharding"): wall-clock gauges
// (keys ending in `_ms`) and `sim.ensemble.workers`, plus histogram
// *values* (their observation counts still compare exactly) — these
// measure real time, which no scheduler controls.
//
// DECO_CHAOS=1 amplifies the run counts 3x, for the chaos CI job.
#include "sim/ensemble.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cloud/control_plane.hpp"
#include "core/ensemble_planner.hpp"
#include "obs/metrics.hpp"
#include "sim/executor.hpp"
#include "sim/failure_model.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/budget.hpp"
#include "wms/reactive.hpp"
#include "workflow/ensemble.hpp"
#include "workflow/generators.hpp"

namespace deco::sim {
namespace {

int chaos_scale() { return std::getenv("DECO_CHAOS") ? 3 : 1; }

/// Worker counts every differential runs at.  0 is the serial reference
/// loop; hardware_concurrency is appended when it exceeds the fixed grid.
std::vector<std::size_t> worker_grid() {
  std::vector<std::size_t> grid = {0, 1, 2, 4};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 4) grid.push_back(hw);
  return grid;
}

std::string hex(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Bit-exact fingerprint of everything a simulated execution observably
/// produced, attempt by attempt.
std::string fingerprint(const ExecutionResult& r) {
  std::string out = hex(r.makespan) + "|" + hex(r.total_cost) + "|" +
                    hex(r.instance_cost) + "|" +
                    std::to_string(r.instances_used) + "|" +
                    std::to_string(r.failures.total_disruptions()) + "|" +
                    (r.finished ? "f" : "u") + "|";
  for (const TaskAttempt& a : r.attempts) {
    out += std::to_string(a.task) + ":" + std::to_string(a.attempt) + ":" +
           hex(a.start) + ":" + hex(a.end) + ":" +
           std::to_string(static_cast<int>(a.outcome)) + ";";
  }
  return out;
}

std::string fingerprint(const wms::ReactiveReport& r) {
  return hex(r.makespan) + "|" + hex(r.total_cost) + "|" +
         (r.completed ? "c" : "i") + (r.met_deadline ? "m" : "x") + "|" +
         std::to_string(r.segments) + "|" + std::to_string(r.replans) + "|" +
         std::to_string(r.proactive_replans) + "|" +
         std::to_string(r.solver_fallbacks) + "|" +
         std::to_string(r.solver_budget_cutoffs) + "|" +
         std::to_string(r.failures.total_disruptions()) + "|" +
         std::to_string(r.api.calls) + "|" + r.last_scheduler;
}

bool wall_clock_key(const std::string& name) {
  return name == "sim.ensemble.workers" ||
         (name.size() >= 3 && name.compare(name.size() - 3, 3, "_ms") == 0);
}

/// The metrics half of the contract: counters compare exactly, histograms
/// by observation count (their sums are wall-clock values), gauges exactly
/// except the wall-clock exemptions — but even exempt keys must *exist* in
/// both snapshots.
void expect_metrics_equal(const obs::MetricsSnapshot& serial,
                          const obs::MetricsSnapshot& sharded,
                          const std::string& label) {
  EXPECT_EQ(serial.counters, sharded.counters) << label;
  ASSERT_EQ(serial.histograms.size(), sharded.histograms.size()) << label;
  for (const auto& [name, hist] : serial.histograms) {
    const auto it = sharded.histograms.find(name);
    ASSERT_NE(it, sharded.histograms.end()) << label << " histogram " << name;
    EXPECT_EQ(hist.count, it->second.count) << label << " histogram " << name;
  }
  ASSERT_EQ(serial.gauges.size(), sharded.gauges.size()) << label;
  for (const auto& [name, value] : serial.gauges) {
    const auto it = sharded.gauges.find(name);
    ASSERT_NE(it, sharded.gauges.end()) << label << " gauge " << name;
    if (!wall_clock_key(name)) {
      EXPECT_EQ(hex(value), hex(it->second)) << label << " gauge " << name;
    }
  }
}

workflow::Workflow make_workflow(int which) {
  util::Rng rng(7);
  switch (which) {
    case 0: return workflow::make_montage(1, rng);
    case 1: return workflow::make_cybershake(20, rng);
    default: return workflow::make_ligo(20, rng);
  }
}

FailureModelOptions medium_failures() {
  FailureModelOptions fm;
  fm.crash_mtbf_s = 2 * 3600;
  fm.task_failure_prob = 0.03;
  fm.straggler_prob = 0.05;
  fm.boot_failure_prob = 0.01;
  return fm;
}

cloud::ControlPlaneOptions api_faults(std::uint64_t seed) {
  cloud::ControlPlaneOptions cp;
  cp.faults.throttle_rate_per_s = 0.2;
  cp.faults.throttle_burst = 2;
  cp.faults.capacity_mtbo_s = 3600.0;
  cp.faults.capacity_outage_s = 300.0;
  cp.faults.transient_error_prob = 0.02;
  cp.seed = seed;
  return cp;
}

/// One executor sweep: n runs of `wf` under the given fault profile,
/// captured into a private parent registry.  Returns the per-run
/// fingerprints plus the merged metrics of the whole sweep.
struct SweepResult {
  std::vector<std::string> prints;
  obs::MetricsSnapshot metrics;
  EnsembleReport report;
};

enum class Profile { kNull, kFailures, kApiFaults };

SweepResult executor_sweep(const workflow::Workflow& wf, Profile profile,
                           std::size_t n, std::size_t workers,
                           util::BudgetTracker* budget = nullptr) {
  const cloud::Catalog& catalog = core::testing::ec2();
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  const FailureModel model(medium_failures());
  obs::Registry parent;
  parent.set_enabled(true);
  SweepResult result;
  result.prints.assign(n, "");
  {
    const obs::ScopedRegistry scope(&parent);
    EnsembleOptions exec;
    exec.workers = workers;
    exec.budget = budget;
    EnsembleRunner runner(exec);
    result.report =
        runner.run(n, /*base_seed=*/42, [&](const RunContext& ctx) {
          ExecutorOptions options;
          if (profile == Profile::kFailures) options.failures = &model;
          std::optional<cloud::ControlPlane> plane;
          if (profile == Profile::kApiFaults) {
            plane.emplace(catalog, api_faults(ctx.seed));
            options.control = &*plane;
          }
          util::Rng rng(ctx.seed);
          result.prints[ctx.index] = fingerprint(
              simulate_execution(wf, plan, catalog, rng, options));
        });
  }
  result.metrics = parent.snapshot();
  return result;
}

// ---------------------------------------------------------------------------
// Substream scheme.

TEST(EnsembleShardTest, SubstreamSeedsAreStableAndDistinct) {
  // The substream derivation is part of the persisted determinism contract
  // (docs/performance.md): changing it invalidates every recorded sweep.
  EXPECT_EQ(substream_seed(42, 0), substream_seed(42, 0));
  EXPECT_NE(substream_seed(42, 0), substream_seed(42, 1));
  EXPECT_NE(substream_seed(42, 0), substream_seed(43, 0));
  // No short-range collisions in a realistic sweep.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i)
    seen.push_back(substream_seed(42, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

// ---------------------------------------------------------------------------
// The core differential: executor sweeps, every workflow x fault profile x
// worker count, bit-identical to serial.

TEST(EnsembleShardTest, ExecutorSweepBitIdenticalAcrossWorkers) {
  const std::size_t n = 10 * static_cast<std::size_t>(chaos_scale());
  for (int which = 0; which < 3; ++which) {
    const workflow::Workflow wf = make_workflow(which);
    for (const Profile profile :
         {Profile::kNull, Profile::kFailures, Profile::kApiFaults}) {
      const SweepResult serial = executor_sweep(wf, profile, n, 0);
      EXPECT_EQ(serial.report.completed, n);
      for (const std::size_t workers : worker_grid()) {
        if (workers == 0) continue;
        const SweepResult sharded = executor_sweep(wf, profile, n, workers);
        const std::string label = wf.name() + " profile " +
                                  std::to_string(static_cast<int>(profile)) +
                                  " workers " + std::to_string(workers);
        EXPECT_EQ(serial.prints, sharded.prints) << label;
        expect_metrics_equal(serial.metrics, sharded.metrics, label);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Reactive closed-loop ensembles: per-run engines + schedulers, generous
// solver budget so the solve itself is deterministic.

TEST(EnsembleShardTest, ReactiveEnsembleBitIdenticalAcrossWorkers) {
  const cloud::Catalog& catalog = core::testing::ec2();
  const cloud::MetadataStore& store = core::testing::store();
  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_montage(1, rng);
  const core::ProbDeadline req{0.9, 20000.0};
  const FailureModel model(medium_failures());
  core::SchedulingOptions sched;
  sched.search.max_states = 24;
  const wms::SchedulerFactory factory =
      wms::make_deco_scheduler_factory(catalog, store, sched);
  const std::size_t runs = 3 * static_cast<std::size_t>(chaos_scale());

  const auto sweep = [&](std::size_t workers) {
    wms::ReactiveEnsembleOptions options;
    options.base.executor.failures = &model;
    options.base.max_replans = 2;
    options.base.seed = 99;
    options.exec.workers = workers;
    const wms::ReactiveEnsembleResult r = wms::run_reactive_ensemble(
        catalog, store, wf, req, runs, factory, options);
    std::vector<std::string> prints;
    for (const wms::ReactiveReport& report : r.reports)
      prints.push_back(fingerprint(report));
    return prints;
  };

  const std::vector<std::string> serial = sweep(0);
  for (const std::size_t workers : worker_grid()) {
    if (workers == 0) continue;
    EXPECT_EQ(serial, sweep(workers)) << "workers " << workers;
  }
}

// ---------------------------------------------------------------------------
// Estimator modes: the sharded contract holds in every estimator
// configuration (kMc exercises the sampling path, kAuto the screened
// hierarchy with its Tier-2 escalations).

TEST(EnsembleShardTest, EstimatorModesStayDeterministicWhenSharded) {
  const cloud::Catalog& catalog = core::testing::ec2();
  const cloud::MetadataStore& store = core::testing::store();
  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_ligo(20, rng);
  const core::ProbDeadline req{0.9, 20000.0};
  core::SchedulingOptions sched;
  sched.search.max_states = 16;
  const std::size_t runs = 2 * static_cast<std::size_t>(chaos_scale());
  for (const core::EstimatorMode mode :
       {core::EstimatorMode::kMc, core::EstimatorMode::kAuto}) {
    core::DecoOptions engine;
    engine.eval.estimator = mode;
    const wms::SchedulerFactory factory =
        wms::make_deco_scheduler_factory(catalog, store, sched, engine);
    const auto sweep = [&](std::size_t workers) {
      wms::ReactiveEnsembleOptions options;
      options.base.seed = 7;
      options.exec.workers = workers;
      const auto r = wms::run_reactive_ensemble(catalog, store, wf, req, runs,
                                                factory, options);
      std::vector<std::string> prints;
      for (const auto& report : r.reports)
        prints.push_back(fingerprint(report));
      return prints;
    };
    const auto serial = sweep(0);
    EXPECT_EQ(serial, sweep(2))
        << "estimator mode " << core::to_string(mode);
  }
}

// ---------------------------------------------------------------------------
// Weather gating: the regional-weather process *plumbed but disabled*
// (storm_mtbs_s = 0, unit region crash multipliers) must be bit-identical
// to a run with no weather configuration at all — the disabled process
// consumes no entropy anywhere in the stack.  Checked across estimator
// modes and worker counts, through the full closed-loop reactive engine
// with live API faults so every other entropy stream is flowing.

TEST(EnsembleShardTest, DisabledWeatherBitIdenticalAcrossModesAndWorkers) {
  const cloud::Catalog& catalog = core::testing::ec2();
  const cloud::MetadataStore& store = core::testing::store();
  util::Rng rng(7);
  const workflow::Workflow wf = workflow::make_montage(1, rng);
  const core::ProbDeadline req{0.9, 20000.0};
  core::SchedulingOptions sched;
  sched.search.max_states = 16;
  const std::size_t runs = 2 * static_cast<std::size_t>(chaos_scale());

  for (const core::EstimatorMode mode :
       {core::EstimatorMode::kMc, core::EstimatorMode::kAuto}) {
    core::DecoOptions engine;
    engine.eval.estimator = mode;
    const wms::SchedulerFactory factory =
        wms::make_deco_scheduler_factory(catalog, store, sched, engine);
    const auto sweep = [&](std::size_t workers, bool weather_plumbed) {
      FailureModelOptions fm = medium_failures();
      if (weather_plumbed) {
        // Unit multipliers: present in the table, but exactly 1.0.
        fm.region_crash_multiplier = {1.0, 1.0};
      }
      const FailureModel model(fm);
      cloud::ControlPlaneOptions cp = api_faults(11);
      if (weather_plumbed) {
        // Every weather knob off-default except the master switch
        // (storm_mtbs_s stays 0): the process must not tick.
        cp.faults.weather.storm_duration_s = 123;
        cp.faults.weather.crash_hazard = 9.0;
        cp.faults.weather.capacity_hazard = 0.7;
        cp.faults.weather.region_hazard = {1.0, 5.0};
      }
      wms::ReactiveEnsembleOptions options;
      options.base.executor.failures = &model;
      options.base.control = cp;
      options.base.max_replans = 2;
      options.base.seed = 11;
      options.exec.workers = workers;
      const wms::ReactiveEnsembleResult r = wms::run_reactive_ensemble(
          catalog, store, wf, req, runs, factory, options);
      std::vector<std::string> prints;
      for (const wms::ReactiveReport& report : r.reports)
        prints.push_back(fingerprint(report));
      return prints;
    };

    const std::vector<std::string> reference = sweep(0, false);
    for (const std::size_t workers : worker_grid()) {
      EXPECT_EQ(reference, sweep(workers, true))
          << "estimator mode " << core::to_string(mode) << " workers "
          << workers;
    }
  }
}

// ---------------------------------------------------------------------------
// Ensemble planning (use case 2): sharded member scoring chooses the same
// admissions, plans and costs as the planner's serial loop.

TEST(EnsembleShardTest, PlannerShardedScoringMatchesSerial) {
  util::Rng rng(7);
  workflow::EnsembleOptions opt;
  opt.app = workflow::AppType::kLigo;
  opt.type = workflow::EnsembleType::kConstant;
  opt.num_workflows = 4;
  opt.sizes = {20};
  workflow::Ensemble e = workflow::make_ensemble(opt, rng);
  e.budget = 1e9;
  for (auto& m : e.members) {
    m.deadline_s = 1e7;
    m.deadline_q = 90;
  }
  core::EnsemblePlanOptions plan_options;
  plan_options.per_workflow.search.max_states = 16;
  plan_options.per_workflow.search.stale_wave_limit = 2;

  vgpu::SerialBackend backend;
  core::EnsemblePlanner planner(core::testing::ec2(), core::testing::store(),
                                backend);
  const core::EnsemblePlanResult serial = planner.plan(e, plan_options);
  for (const std::size_t workers : worker_grid()) {
    if (workers == 0) continue;
    plan_options.exec.workers = workers;
    const core::EnsemblePlanResult sharded = planner.plan(e, plan_options);
    EXPECT_EQ(serial.admitted, sharded.admitted) << "workers " << workers;
    EXPECT_EQ(serial.plans, sharded.plans) << "workers " << workers;
    ASSERT_EQ(serial.member_costs.size(), sharded.member_costs.size());
    for (std::size_t i = 0; i < serial.member_costs.size(); ++i) {
      EXPECT_EQ(hex(serial.member_costs[i]), hex(sharded.member_costs[i]))
          << "workers " << workers << " member " << i;
    }
    EXPECT_EQ(hex(serial.score), hex(sharded.score)) << "workers " << workers;
    EXPECT_EQ(hex(serial.total_cost), hex(sharded.total_cost))
        << "workers " << workers;
  }
}

// ---------------------------------------------------------------------------
// Budget semantics.

TEST(EnsembleShardTest, PreFiredCancelSkipsEverythingDeterministically) {
  util::Rng rng(7);
  const workflow::Workflow wf = make_workflow(0);
  util::CancelToken cancel;
  cancel.cancel();
  for (const std::size_t workers : worker_grid()) {
    util::SolveBudget spec;
    spec.cancel = &cancel;
    util::BudgetTracker tracker(spec);
    const SweepResult r = executor_sweep(wf, Profile::kNull, 6, workers,
                                         &tracker);
    EXPECT_EQ(r.report.skipped, 6u) << "workers " << workers;
    EXPECT_EQ(r.report.completed, 0u) << "workers " << workers;
    EXPECT_TRUE(r.report.budget_exhausted) << "workers " << workers;
    for (const std::string& p : r.prints) EXPECT_TRUE(p.empty());
  }
}

TEST(EnsembleShardTest, LiveWallBudgetYieldsConsistentAnytimePrefix) {
  // A sub-5ms wall budget fires at a wall-clock-dependent point, so which
  // runs complete is not deterministic.  The anytime contract still is:
  // every run either completed *bit-identically to the unbudgeted serial
  // reference* or was skipped whole — never half-executed — and the report
  // accounts for every run.
  const workflow::Workflow wf = make_workflow(1);
  const std::size_t n = 64;
  const SweepResult reference = executor_sweep(wf, Profile::kFailures, n, 0);
  for (const std::size_t workers : worker_grid()) {
    util::SolveBudget spec;
    spec.wall_ms = 4.0;
    util::BudgetTracker tracker(spec);
    const SweepResult r = executor_sweep(wf, Profile::kFailures, n, workers,
                                         &tracker);
    EXPECT_EQ(r.report.completed + r.report.skipped + r.report.failed, n);
    for (std::size_t i = 0; i < n; ++i) {
      if (!r.prints[i].empty()) {
        EXPECT_EQ(r.prints[i], reference.prints[i])
            << "workers " << workers << " run " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exception semantics: both modes run every non-throwing run to completion
// and rethrow the lowest-index failure.

TEST(EnsembleShardTest, LowestIndexExceptionWinsInBothModes) {
  for (const std::size_t workers : worker_grid()) {
    std::vector<int> completed(10, 0);
    EnsembleOptions exec;
    exec.workers = workers;
    EnsembleRunner runner(exec);
    try {
      runner.run(10, 1, [&](const RunContext& ctx) {
        if (ctx.index % 3 == 1) {
          throw std::runtime_error("boom@" + std::to_string(ctx.index));
        }
        completed[ctx.index] = 1;
      });
      FAIL() << "expected rethrow, workers " << workers;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom@1") << "workers " << workers;
    }
    for (std::size_t i = 0; i < completed.size(); ++i) {
      EXPECT_EQ(completed[i], i % 3 == 1 ? 0 : 1)
          << "workers " << workers << " run " << i;
    }
  }
}

}  // namespace
}  // namespace deco::sim
