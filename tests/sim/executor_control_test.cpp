// Executor <-> cloud::ControlPlane integration: bit-identity with the null
// fault model, completion-through-faults, exhaustion, and spot-interruption
// checkpointing.
#include <gtest/gtest.h>

#include <cmath>

#include "cloud/control_plane.hpp"
#include "sim/executor.hpp"
#include "workflow/generators.hpp"

namespace deco::sim {
namespace {

ExecutorOptions deterministic() {
  ExecutorOptions opt;
  opt.sample_dynamics = false;
  opt.rand_io_ops_per_task = 0;
  return opt;
}

workflow::Workflow chain(int n, double cpu) {
  workflow::Workflow wf("chain");
  for (int i = 0; i < n; ++i) {
    wf.add_task({"t" + std::to_string(i), "p", cpu, 0, 0});
    if (i > 0) wf.add_edge(i - 1, i, 0);
  }
  return wf;
}

TEST(ExecutorControlTest, NullControlPlaneIsBitIdentical) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  util::Rng seed_rng(2024);
  const workflow::Workflow wf =
      workflow::make_workflow(workflow::AppType::kMontage, 40, seed_rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);

  ExecutorOptions plain = {};  // sampled dynamics: full RNG consumption
  util::Rng rng_a(7);
  const ExecutionResult a = simulate_execution(wf, plan, catalog, rng_a, plain);

  cloud::ControlPlane null_plane(catalog);  // all fault knobs zero
  ExecutorOptions mediated = {};
  mediated.control = &null_plane;
  util::Rng rng_b(7);
  const ExecutionResult b =
      simulate_execution(wf, plan, catalog, rng_b, mediated);

  // Bit-identical traces AND bit-identical downstream RNG state.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.instances_used, b.instances_used);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].start, b.tasks[t].start) << t;
    EXPECT_EQ(a.tasks[t].finish, b.tasks[t].finish) << t;
    EXPECT_EQ(a.tasks[t].instance, b.tasks[t].instance) << t;
  }
  EXPECT_EQ(rng_a.uniform(), rng_b.uniform());
  EXPECT_EQ(null_plane.stats().calls, 0u);
}

TEST(ExecutorControlTest, ThrottledOutageProneCloudStillCompletes) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const workflow::Workflow wf = chain(6, 200);
  const Plan plan = Plan::uniform(wf.task_count(), 0);

  util::Rng clean_rng(3);
  const ExecutionResult clean =
      simulate_execution(wf, plan, catalog, clean_rng, deterministic());

  cloud::ControlPlaneOptions cp_options;
  cp_options.faults.throttle_rate_per_s = 0.2;
  cp_options.faults.throttle_burst = 1;
  cp_options.faults.capacity_mtbo_s = 1800;
  cp_options.faults.capacity_outage_s = 300;
  cp_options.faults.transient_error_prob = 0.2;
  cp_options.seed = 17;
  cloud::ControlPlane plane(catalog, cp_options);
  ExecutorOptions options = deterministic();
  options.control = &plane;
  util::Rng rng(3);
  ExecutionResult result;
  ASSERT_NO_THROW(result = simulate_execution(wf, plan, catalog, rng, options));

  EXPECT_TRUE(result.finished);
  // API faults only delay acquisition: the run is never faster.
  EXPECT_GE(result.makespan, clean.makespan);
  EXPECT_GT(plane.stats().calls, 0u);
  // The executor's own RNG stream is untouched by API faults (the plane
  // owns its entropy), so the simulated durations match the clean run.
  EXPECT_EQ(result.failures.task_failures, 0u);
  EXPECT_EQ(result.failures.instance_crashes, 0u);
}

TEST(ExecutorControlTest, ExhaustedCloudThrowsProvisioningError) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const workflow::Workflow wf = chain(2, 50);
  const Plan plan = Plan::uniform(wf.task_count(), 0);

  cloud::ControlPlaneOptions cp_options;
  // Every call fails, from t=0 onward (capacity windows only begin after a
  // first draw, but a certain transient error is time-independent).
  cp_options.faults.transient_error_prob = 1.0;
  cp_options.allow_type_fallback = false;
  cp_options.allow_region_fallback = false;
  cp_options.retry.max_attempts = 2;
  cp_options.give_up_s = 300;
  cloud::ControlPlane plane(catalog, cp_options);
  ExecutorOptions options = deterministic();
  options.control = &plane;
  util::Rng rng(4);
  EXPECT_THROW(simulate_execution(wf, plan, catalog, rng, options),
               cloud::ProvisioningExhaustedError);
  EXPECT_GT(plane.stats().exhausted, 0u);
}

TEST(ExecutorControlTest, SpotInterruptionCheckpointsAndRetries) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  // One long task: with a short interruption MTBF the first attempts are
  // reclaimed mid-run, the notice checkpoints progress, and the retry-cap
  // immunity guarantees eventual completion.
  const workflow::Workflow wf = chain(1, 20000);
  const Plan plan = Plan::uniform(wf.task_count(), 0);

  cloud::ControlPlaneOptions cp_options;
  cp_options.faults.spot_interruption_mtbf_s = 4000;
  cp_options.faults.spot_notice_lead_s = 120;
  cp_options.seed = 31;
  cloud::ControlPlane plane(catalog, cp_options);
  ExecutorOptions options = deterministic();
  options.control = &plane;
  util::Rng rng(5);
  const ExecutionResult result =
      simulate_execution(wf, plan, catalog, rng, options);

  EXPECT_TRUE(result.finished);
  ASSERT_GT(result.failures.spot_interruptions, 0u);
  EXPECT_EQ(result.failures.retries, result.failures.spot_interruptions);
  EXPECT_TRUE(std::isfinite(result.first_notice_s));
  // Interrupted attempts are logged with their own outcome.
  std::size_t interrupted = 0;
  for (const TaskAttempt& attempt : result.attempts) {
    interrupted += attempt.outcome == AttemptOutcome::kInterrupted;
  }
  EXPECT_EQ(interrupted, result.failures.spot_interruptions);
  // Checkpointing salvages the work before each notice, so total simulated
  // busy time stays below lost-everything replay of the full duration per
  // attempt (the final attempt alone runs the un-salvaged remainder).
  EXPECT_GT(result.makespan, 20000.0);  // interruptions did delay the run
}

TEST(ExecutorControlTest, InterruptionRunsAreSeedDeterministic) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  const workflow::Workflow wf = chain(3, 8000);
  const Plan plan = Plan::uniform(wf.task_count(), 0);

  cloud::ControlPlaneOptions cp_options;
  cp_options.faults.spot_interruption_mtbf_s = 6000;
  cp_options.seed = 12;

  auto run = [&]() {
    cloud::ControlPlane plane(catalog, cp_options);
    ExecutorOptions options = deterministic();
    options.control = &plane;
    util::Rng rng(9);
    return simulate_execution(wf, plan, catalog, rng, options);
  };
  const ExecutionResult a = run();
  const ExecutionResult b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.failures.spot_interruptions, b.failures.spot_interruptions);
  EXPECT_EQ(a.first_notice_s, b.first_notice_s);
}

}  // namespace
}  // namespace deco::sim
