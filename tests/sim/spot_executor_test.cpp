#include "sim/spot_executor.hpp"

#include <gtest/gtest.h>

#include "core/spot_planner.hpp"
#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::sim {
namespace {

using core::testing::ec2;
using core::testing::store;

std::vector<cloud::SpotPriceTrace> traces(std::uint64_t seed,
                                          std::size_t steps = 5000) {
  std::vector<cloud::SpotPriceTrace> out;
  util::Rng rng(seed);
  cloud::SpotModel model;
  for (const auto& type : ec2().types()) {
    out.push_back(cloud::SpotPriceTrace::simulate(type.price_per_hour, model,
                                                  steps, rng));
  }
  return out;
}

ExecutorOptions quiet() {
  ExecutorOptions opt;
  opt.sample_dynamics = false;
  opt.rand_io_ops_per_task = 0;
  return opt;
}

TEST(SpotExecutorTest, AllOnDemandMatchesPlainSemantics) {
  util::Rng rng(1);
  const auto wf = workflow::make_pipeline(4, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  SpotPolicy policy;  // empty use_spot = all on-demand
  util::Rng run_rng(2);
  const auto r = simulate_spot_execution(wf, plan, policy, traces(3), ec2(),
                                         run_rng, quiet());
  EXPECT_EQ(r.revocations, 0u);
  EXPECT_DOUBLE_EQ(r.spot_cost, 0.0);
  EXPECT_GT(r.on_demand_cost, 0.0);
  for (const workflow::Edge& e : wf.edges()) {
    EXPECT_GE(r.base.tasks[e.child].start,
              r.base.tasks[e.parent].finish - 1e-9);
  }
}

TEST(SpotExecutorTest, SpotTasksCostLessWhenNotRevoked) {
  util::Rng rng(4);
  const auto wf = workflow::make_pipeline(6, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  SpotPolicy all_spot;
  all_spot.use_spot.assign(wf.task_count(), true);
  all_spot.bid_fraction = 0.95;  // generous bid: rarely revoked

  util::Rng r1(5);
  const auto spot = simulate_spot_execution(wf, plan, all_spot, traces(6),
                                            ec2(), r1, quiet());
  util::Rng r2(5);
  const auto od = simulate_spot_execution(wf, plan, SpotPolicy{}, traces(6),
                                          ec2(), r2, quiet());
  EXPECT_LT(spot.base.total_cost, od.base.total_cost);
}

TEST(SpotExecutorTest, RevocationsExtendMakespan) {
  util::Rng rng(7);
  const auto wf = workflow::make_pipeline(6, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  SpotPolicy aggressive;
  aggressive.use_spot.assign(wf.task_count(), true);
  aggressive.bid_fraction = 0.32;  // tight bid: frequent revocations

  util::Rng r1(8);
  const auto risky = simulate_spot_execution(wf, plan, aggressive, traces(9),
                                             ec2(), r1, quiet());
  util::Rng r2(8);
  const auto od = simulate_spot_execution(wf, plan, SpotPolicy{}, traces(9),
                                          ec2(), r2, quiet());
  EXPECT_GT(risky.revocations + risky.fallbacks, 0u);
  EXPECT_GE(risky.base.makespan, od.base.makespan);
}

TEST(SpotExecutorTest, FallbackCapsRetries) {
  util::Rng rng(10);
  const auto wf = workflow::make_pipeline(3, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  SpotPolicy impossible;
  impossible.use_spot.assign(wf.task_count(), true);
  impossible.bid_fraction = 0.0;  // bid below every possible price
  impossible.max_retries = 2;
  util::Rng run_rng(11);
  const auto r = simulate_spot_execution(wf, plan, impossible, traces(12),
                                         ec2(), run_rng, quiet());
  // Every task gives up and falls back to on-demand; the run completes.
  EXPECT_EQ(r.fallbacks, wf.task_count());
  EXPECT_GT(r.base.makespan, 0.0);
  EXPECT_GT(r.on_demand_cost, 0.0);
}

TEST(SpotExecutorTest, RetryCapFallbackBillsNoSpotPartialHours) {
  util::Rng rng(16);
  const auto wf = workflow::make_pipeline(5, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  SpotPolicy impossible;
  impossible.use_spot.assign(wf.task_count(), true);
  impossible.bid_fraction = 0.0;  // the market never admits the bid
  impossible.max_retries = 2;
  util::Rng r1(17);
  const auto r = simulate_spot_execution(wf, plan, impossible, traces(18),
                                         ec2(), r1, quiet());
  // Every task burns its full retry budget before giving up on spot...
  EXPECT_EQ(r.revocations, impossible.max_retries * wf.task_count());
  EXPECT_EQ(r.fallbacks, wf.task_count());
  // ...and the revoked partial hours are free (EC2 semantics): not one
  // spot dollar is billed.
  EXPECT_DOUBLE_EQ(r.spot_cost, 0.0);
  EXPECT_GT(r.on_demand_cost, 0.0);
  // The billed instance cost therefore equals a pure on-demand execution's
  // (deterministic dynamics: identical attempt durations).
  util::Rng r2(17);
  const auto od = simulate_spot_execution(wf, plan, SpotPolicy{}, traces(18),
                                          ec2(), r2, quiet());
  EXPECT_NEAR(r.base.instance_cost, od.base.instance_cost, 1e-9);
}

TEST(SpotPlannerTest, CriticalPathStaysOnDemand) {
  util::Rng rng(13);
  const auto wf = workflow::make_montage(1, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 1);
  core::TaskTimeEstimator estimator(ec2(), store());

  // A deadline with moderate slack: the *longest* task (it dominates the
  // critical path, and a lost attempt cannot be absorbed) must stay
  // on-demand, while short tasks with room for retries go to spot.
  const auto slack = core::task_slack(wf, plan, estimator, 0);
  double cp_length = 0;
  for (double s : slack) cp_length = std::max(cp_length, -s);
  workflow::TaskId longest = 0;
  double longest_mean = 0;
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    const double mean = estimator.mean_time(wf, t, plan[t].vm_type);
    if (mean > longest_mean) {
      longest_mean = mean;
      longest = t;
    }
  }
  // Deadline = critical path + 1500 s: short tasks have ~1100 s of slack
  // (enough for the 900 s revocation allowance plus retries), but the
  // longest task cannot absorb a lost attempt of its own size.
  const auto policy =
      core::plan_spot_policy(wf, plan, estimator, cp_length + 1100);
  EXPECT_FALSE(policy.use_spot[longest]);
  // But some off-path tasks have plenty of slack.
  std::size_t spot_count = 0;
  for (bool s : policy.use_spot) spot_count += s;
  EXPECT_GT(spot_count, 0u);
  EXPECT_LT(spot_count, wf.task_count());
}

TEST(SpotPlannerTest, LooseDeadlinePutsEverythingOnSpot) {
  util::Rng rng(14);
  const auto wf = workflow::make_pipeline(4, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  core::TaskTimeEstimator estimator(ec2(), store());
  const auto policy = core::plan_spot_policy(wf, plan, estimator, 1e9);
  for (bool s : policy.use_spot) EXPECT_TRUE(s);
}

TEST(SpotPlannerTest, ImpossibleDeadlineKeepsEverythingOnDemand) {
  util::Rng rng(15);
  const auto wf = workflow::make_pipeline(4, rng);
  const Plan plan = Plan::uniform(wf.task_count(), 0);
  core::TaskTimeEstimator estimator(ec2(), store());
  const auto policy = core::plan_spot_policy(wf, plan, estimator, 0.001);
  for (bool s : policy.use_spot) EXPECT_FALSE(s);
}

TEST(SpotPlannerTest, SlackMatchesPathDefinition) {
  // Chain a(10)->b(20): slack of each = D - 30.
  workflow::Workflow wf("chain");
  wf.add_task({"a", "p", 10, 0, 0});
  wf.add_task({"b", "p", 20, 0, 0});
  wf.add_edge(0, 1, 0);
  core::TaskTimeEstimator estimator(ec2(), store());
  const Plan plan = Plan::uniform(2, 0);
  const auto slack = core::task_slack(wf, plan, estimator, 100);
  const double t0 = estimator.mean_time(wf, 0, 0);
  const double t1 = estimator.mean_time(wf, 1, 0);
  EXPECT_NEAR(slack[0], 100 - (t0 + t1), 1e-9);
  EXPECT_NEAR(slack[1], 100 - (t0 + t1), 1e-9);
}

}  // namespace
}  // namespace deco::sim
