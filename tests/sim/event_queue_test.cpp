#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace deco::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3, [&](double) { order.push_back(3); });
  q.schedule(1, [&](double) { order.push_back(1); });
  q.schedule(2, [&](double) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&](double) { order.push_back(1); });
  q.schedule(5, [&](double) { order.push_back(2); });
  q.schedule(5, [&](double) { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbackSeesEventTime) {
  EventQueue q;
  double seen = -1;
  q.schedule(7.5, [&](double now) { seen = now; });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](double now) {
    ++fired;
    if (fired < 5) q.schedule(now + 1, [&](double) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);  // the nested event fires once and schedules nothing
}

TEST(EventQueueTest, ChainOfEventsAdvancesClock) {
  EventQueue q;
  std::function<void(double)> tick = [&](double now) {
    if (now < 10) q.schedule(now + 1, tick);
  };
  q.schedule(0, tick);
  q.run();
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, PastScheduleClampsToNow) {
  EventQueue q;
  double second = -1;
  q.schedule(5, [&](double now) {
    // Scheduling "in the past" clamps to the current time.
    q.schedule(now - 3, [&](double t) { second = t; });
  });
  q.run();
  EXPECT_DOUBLE_EQ(second, 5.0);
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](double) { ++fired; });
  q.schedule(10, [&](double) { ++fired; });
  q.run_until(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EmptyRunReturnsZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
  EXPECT_TRUE(q.empty());
}

// Randomized version of the insertion-order tie-break invariant, which the
// ensemble-sharding determinism contract leans on (every simulated
// execution is a deterministic function of its seed only when same-time
// events fire in schedule order).  Random schedules draw times from a tiny
// set so ties are dense; events also re-schedule nested events at their own
// firing time, which must queue behind every earlier same-time insertion.
TEST(EventQueueTest, RandomScheduleTiesFireInInsertionOrderProperty) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng rng(seed);
    EventQueue q;
    // (time, insertion sequence) in fired order; sequence numbers for
    // nested events are handed out at schedule() time inside callbacks.
    std::vector<std::pair<double, int>> fired;
    int next_seq = 0;
    std::function<void(double, int, int)> add = [&](double t, int seq,
                                                    int nest) {
      q.schedule(t, [&, seq, nest, t](double now) {
        fired.emplace_back(now, seq);
        if (nest > 0 && rng.below(2) == 0) {
          // Nested same-time event: must run after everything already
          // queued at `now`, in its (later) insertion order.
          add(t, next_seq++, nest - 1);
        }
      });
    };
    const int events = 20 + static_cast<int>(rng.below(40));
    for (int i = 0; i < events; ++i) {
      add(static_cast<double>(rng.below(5)), next_seq++, 2);
    }
    q.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(next_seq));
    for (std::size_t i = 1; i < fired.size(); ++i) {
      EXPECT_LE(fired[i - 1].first, fired[i].first) << "seed " << seed;
      if (fired[i - 1].first == fired[i].first) {
        EXPECT_LT(fired[i - 1].second, fired[i].second)
            << "seed " << seed << " position " << i;
      }
    }
  }
}

}  // namespace
}  // namespace deco::sim
