#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace deco::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3, [&](double) { order.push_back(3); });
  q.schedule(1, [&](double) { order.push_back(1); });
  q.schedule(2, [&](double) { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(5, [&](double) { order.push_back(1); });
  q.schedule(5, [&](double) { order.push_back(2); });
  q.schedule(5, [&](double) { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CallbackSeesEventTime) {
  EventQueue q;
  double seen = -1;
  q.schedule(7.5, [&](double now) { seen = now; });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 7.5);
  EXPECT_DOUBLE_EQ(q.now(), 7.5);
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](double now) {
    ++fired;
    if (fired < 5) q.schedule(now + 1, [&](double) { ++fired; });
  });
  q.run();
  EXPECT_EQ(fired, 2);  // the nested event fires once and schedules nothing
}

TEST(EventQueueTest, ChainOfEventsAdvancesClock) {
  EventQueue q;
  std::function<void(double)> tick = [&](double now) {
    if (now < 10) q.schedule(now + 1, tick);
  };
  q.schedule(0, tick);
  q.run();
  EXPECT_DOUBLE_EQ(q.now(), 10.0);
}

TEST(EventQueueTest, PastScheduleClampsToNow) {
  EventQueue q;
  double second = -1;
  q.schedule(5, [&](double now) {
    // Scheduling "in the past" clamps to the current time.
    q.schedule(now - 3, [&](double t) { second = t; });
  });
  q.run();
  EXPECT_DOUBLE_EQ(second, 5.0);
}

TEST(EventQueueTest, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&](double) { ++fired; });
  q.schedule(10, [&](double) { ++fired; });
  q.run_until(5);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EmptyRunReturnsZero) {
  EventQueue q;
  EXPECT_DOUBLE_EQ(q.run(), 0.0);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace deco::sim
