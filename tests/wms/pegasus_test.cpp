#include "wms/pegasus.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::wms {
namespace {

using core::testing::ec2;
using core::testing::store;

constexpr const char* kPipelineDax = R"(<adag name="pipeline">
  <job id="ID01" name="process1" runtime="120">
    <uses file="f.a" link="input" size="1048576"/>
    <uses file="f.b1" link="output" size="1048576"/>
  </job>
  <job id="ID02" name="process2" runtime="240">
    <uses file="f.b1" link="input" size="1048576"/>
    <uses file="f.c" link="output" size="1048576"/>
  </job>
  <child ref="ID02"><parent ref="ID01"/></child>
</adag>)";

TEST(SiteCatalogTest, NamesSites) {
  SiteCatalog sites(ec2());
  EXPECT_EQ(sites.site_name(0, 0), "ec2::m1.small@us-east-1");
  EXPECT_EQ(sites.site_name(3, 1), "ec2::m1.xlarge@ap-southeast-1");
  EXPECT_EQ(sites.site_count(), 8u);
}

TEST(PegasusTest, DefaultSchedulerIsRandom) {
  PegasusWms wms(ec2(), store());
  EXPECT_EQ(wms.scheduler_name(), "Random");
}

TEST(PegasusTest, PlanDaxProducesExecutableWorkflow) {
  PegasusWms wms(ec2(), store());
  util::Rng rng(1);
  const auto planned = wms.plan_dax(kPipelineDax, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  const auto& exec = std::get<ExecutableWorkflow>(planned);
  EXPECT_EQ(exec.workflow.task_count(), 2u);
  EXPECT_EQ(exec.tasks.size(), 2u);
  EXPECT_EQ(exec.tasks[0].executable, "process1");
  EXPECT_NE(exec.tasks[0].site.find("ec2::"), std::string::npos);
  EXPECT_EQ(exec.scheduler, "Random");
}

TEST(PegasusTest, BadDaxReportsError) {
  PegasusWms wms(ec2(), store());
  util::Rng rng(2);
  const auto planned = wms.plan_dax("<broken", {0.9, 1e6}, rng);
  EXPECT_TRUE(std::holds_alternative<WmsError>(planned));
}

TEST(PegasusTest, FixedSchedulerPinsType) {
  PegasusWms wms(ec2(), store());
  wms.set_scheduler(std::make_unique<FixedTypeScheduler>(2));
  util::Rng rng(3);
  const auto planned = wms.plan_dax(kPipelineDax, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  for (const auto& p :
       std::get<ExecutableWorkflow>(planned).plan.placements) {
    EXPECT_EQ(p.vm_type, 2u);
  }
}

TEST(PegasusTest, RandomSchedulerUsesMultipleTypes) {
  PegasusWms wms(ec2(), store());
  util::Rng rng(4);
  workflow::Workflow wf("many");
  for (int i = 0; i < 40; ++i) {
    wf.add_task({"t" + std::to_string(i), "p", 10, 0, 0});
  }
  const auto planned = wms.plan_workflow(wf, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  std::set<cloud::TypeId> types;
  for (const auto& p : std::get<ExecutableWorkflow>(planned).plan.placements) {
    types.insert(p.vm_type);
  }
  EXPECT_GT(types.size(), 1u);
}

TEST(PegasusTest, ExecuteReportsCostAndMakespan) {
  PegasusWms wms(ec2(), store());
  wms.set_scheduler(std::make_unique<FixedTypeScheduler>(1));
  util::Rng rng(5);
  const auto planned = wms.plan_dax(kPipelineDax, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  const auto report = wms.execute(std::get<ExecutableWorkflow>(planned), rng,
                                  {0.9, 1e6});
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.total_cost, 0.0);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_GE(report.instances_used, 1u);
}

TEST(PegasusTest, AutoscalingSchedulerIntegrates) {
  PegasusWms wms(ec2(), store());
  wms.set_scheduler(std::make_unique<AutoscalingScheduler>());
  util::Rng rng(6);
  const auto planned = wms.plan_dax(kPipelineDax, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  EXPECT_EQ(std::get<ExecutableWorkflow>(planned).scheduler, "Autoscaling");
}

TEST(PegasusTest, DecoSchedulerIntegrates) {
  core::DecoOptions opt;
  opt.backend = "serial";
  core::Deco engine(ec2(), store(), opt);
  PegasusWms wms(ec2(), store());
  wms.set_scheduler(std::make_unique<DecoScheduler>(engine));
  util::Rng rng(7);
  const auto planned = wms.plan_dax(kPipelineDax, {0.9, 1e6}, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  const auto& exec = std::get<ExecutableWorkflow>(planned);
  EXPECT_EQ(exec.scheduler, "Deco");
  // Loose deadline: Deco stays in the cheap tiers (never the premium types).
  for (const auto& p : exec.plan.placements) EXPECT_LE(p.vm_type, 1u);
}

TEST(PegasusTest, EndToEndDecoBeatsXlargeOnCost) {
  // Miniature Fig. 1: Deco's plan executed on the simulator costs less than
  // the all-xlarge configuration.
  util::Rng rng(8);
  const auto wf = workflow::make_montage(1, rng);
  core::DecoOptions opt;
  opt.backend = "serial";
  core::Deco engine(ec2(), store(), opt);

  PegasusWms wms(ec2(), store());
  const core::ProbDeadline req{0.9, 1e6};

  wms.set_scheduler(std::make_unique<DecoScheduler>(engine));
  auto planned = wms.plan_workflow(wf, req, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  util::Rng run_rng(9);
  const auto deco_run =
      wms.execute(std::get<ExecutableWorkflow>(planned), run_rng, req);

  wms.set_scheduler(std::make_unique<FixedTypeScheduler>(3));
  planned = wms.plan_workflow(wf, req, rng);
  ASSERT_TRUE(std::holds_alternative<ExecutableWorkflow>(planned));
  util::Rng run_rng2(9);
  const auto xlarge_run =
      wms.execute(std::get<ExecutableWorkflow>(planned), run_rng2, req);

  EXPECT_LT(deco_run.total_cost, xlarge_run.total_cost);
}

}  // namespace
}  // namespace deco::wms
