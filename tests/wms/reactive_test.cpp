#include "wms/reactive.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>

#include "obs/obs.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/budget.hpp"
#include "workflow/generators.hpp"

namespace deco::wms {
namespace {

using core::testing::ec2;
using core::testing::store;

ReactiveOptions quiet_options() {
  ReactiveOptions opt;
  opt.executor.sample_dynamics = false;
  opt.executor.rand_io_ops_per_task = 0;
  return opt;
}

/// A scheduler that always throws: the degenerate primary the engine must
/// survive (graceful-degradation acceptance path).
class ThrowingScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Throwing"; }
  sim::Plan schedule(const workflow::Workflow&,
                     const SchedulerContext&) override {
    throw std::runtime_error("solver exploded");
  }
};

/// A scheduler that returns a plan of the wrong size.
class MalformedScheduler final : public Scheduler {
 public:
  std::string name() const override { return "Malformed"; }
  sim::Plan schedule(const workflow::Workflow&,
                     const SchedulerContext&) override {
    return sim::Plan::uniform(1, 0);
  }
};

TEST(ReactiveEngineTest, CleanRunNeedsNoReplanning) {
  util::Rng wf_rng(1);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(1);
  ReactiveEngine engine(ec2(), store(), primary, quiet_options());
  const ReactiveReport report = engine.run(wf, {0.9, 1e9});
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_EQ(report.replans, 0u);
  EXPECT_EQ(report.segments, 1u);
  EXPECT_EQ(report.solver_fallbacks, 0u);
  EXPECT_EQ(report.failures.total_disruptions(), 0u);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_GT(report.total_cost, 0.0);
}

TEST(ReactiveEngineTest, EmptyWorkflowCompletesTrivially) {
  const workflow::Workflow wf("empty");
  FixedTypeScheduler primary(0);
  ReactiveEngine engine(ec2(), store(), primary, quiet_options());
  const ReactiveReport report = engine.run(wf, {0.9, 100});
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.met_deadline);
}

TEST(ReactiveEngineTest, DisruptedButOnTimeRunsAreNotReplanned) {
  // With effectively infinite slack, failures are absorbed by the
  // executor's retries — the monitor must not cut a run that still makes
  // its deadline comfortably.
  util::Rng wf_rng(2);
  const auto wf = workflow::make_montage(1, wf_rng);
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 900;
  fm.task_failure_prob = 0.15;
  const sim::FailureModel model(fm);
  ReactiveOptions options = quiet_options();
  options.executor.failures = &model;
  FixedTypeScheduler primary(0);
  ReactiveEngine engine(ec2(), store(), primary, options);
  const ReactiveReport report = engine.run(wf, {0.9, 1e9});
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_EQ(report.replans, 0u);
  EXPECT_GT(report.failures.total_disruptions(), 0u);
}

TEST(ReactiveEngineTest, FailuresTriggerReplanningAndStillComplete) {
  util::Rng wf_rng(2);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);

  // Clean-run makespan first: a deadline barely above it is met on a
  // reliable cloud but projected missed once failures inflate the probe.
  ReactiveEngine clean_engine(ec2(), store(), primary, quiet_options());
  const ReactiveReport clean = clean_engine.run(wf, {0.9, 1e9});
  ASSERT_TRUE(clean.completed);

  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 900;
  // High enough that a 67-task run is disrupted with near certainty — the
  // test must not hinge on one seed's luck.
  fm.task_failure_prob = 0.15;
  const sim::FailureModel model(fm);
  ReactiveOptions options = quiet_options();
  options.executor.failures = &model;
  ReactiveEngine engine(ec2(), store(), primary, options);
  const ReactiveReport report = engine.run(wf, {0.9, clean.makespan * 1.02});
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.replans, 1u);
  EXPECT_GT(report.segments, 1u);
  EXPECT_GT(report.failures.total_disruptions(), 0u);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(ReactiveEngineTest, ReplanningIsDeterministicPerSeed) {
  util::Rng wf_rng(3);
  const auto wf = workflow::make_cybershake(30, wf_rng);
  FixedTypeScheduler primary(0);
  ReactiveEngine clean_engine(ec2(), store(), primary, quiet_options());
  const double clean_makespan = clean_engine.run(wf, {0.9, 1e9}).makespan;

  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 900;
  fm.task_failure_prob = 0.15;
  const sim::FailureModel model(fm);
  ReactiveOptions options = quiet_options();
  options.executor.failures = &model;
  options.seed = 77;
  ReactiveEngine a(ec2(), store(), primary, options);
  ReactiveEngine b(ec2(), store(), primary, options);
  // A tight deadline so the replanning path itself is what's compared.
  const core::ProbDeadline req{0.9, clean_makespan * 1.02};
  const ReactiveReport ra = a.run(wf, req);
  const ReactiveReport rb = b.run(wf, req);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.total_cost, rb.total_cost);
  EXPECT_EQ(ra.replans, rb.replans);
  EXPECT_EQ(ra.segments, rb.segments);
  EXPECT_EQ(ra.failures.retries, rb.failures.retries);
}

TEST(ReactiveEngineTest, ThrowingSchedulerDegradesToBaseline) {
  util::Rng wf_rng(4);
  const auto wf = workflow::make_pipeline(6, wf_rng);
  ThrowingScheduler primary;
  ReactiveEngine engine(ec2(), store(), primary, quiet_options());
  ReactiveReport report;
  // The acceptance property: a solver failure must never abort the run.
  ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.solver_fallbacks, 1u);
  EXPECT_NE(report.last_scheduler.find("fallback"), std::string::npos);
}

TEST(ReactiveEngineTest, SolverTimeoutDegradesToBaseline) {
  util::Rng wf_rng(5);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  FixedTypeScheduler primary(1);
  ReactiveOptions options = quiet_options();
  options.solver_timeout_ms = 0;  // no budget: every solve "times out"
  ReactiveEngine engine(ec2(), store(), primary, options);
  const ReactiveReport report = engine.run(wf, {0.9, 1e9});
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.solver_fallbacks, 1u);
  EXPECT_NE(report.last_scheduler.find("fallback"), std::string::npos);
}

/// A slow-but-cooperative scheduler: it spins until the engine's solve
/// budget tells it to stop, then returns its best-so-far (valid) plan —
/// the anytime contract every budget-aware solver follows.
class CooperativeSlowScheduler final : public Scheduler {
 public:
  std::string name() const override { return "CooperativeSlow"; }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext& ctx) override {
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::seconds(2);  // safety net: never hang
    while (ctx.budget != nullptr && !ctx.budget->should_stop() &&
           std::chrono::steady_clock::now() < give_up) {
    }
    return sim::Plan::uniform(wf.task_count(), 0);
  }
};

/// A slow scheduler that ignores the budget entirely and just sleeps past
/// the deadline before answering.
class NonCooperativeSlowScheduler final : public Scheduler {
 public:
  std::string name() const override { return "NonCooperativeSlow"; }
  sim::Plan schedule(const workflow::Workflow& wf,
                     const SchedulerContext&) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    return sim::Plan::uniform(wf.task_count(), 0);
  }
};

TEST(ReactiveEngineTest, SlowCooperativeSolverIsCutAndItsPlanAccepted) {
  // Regression for the hung-solver gap: solver_timeout_ms used to be
  // advisory (checked only after the call returned), so a slow solver
  // stalled the whole engine.  Now the engine arms a real wall-clock
  // budget; a cooperative solver observes it, returns its anytime plan,
  // and that plan is *accepted* — a budget cut is not a failure.
  util::Rng wf_rng(15);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  CooperativeSlowScheduler primary;
  ReactiveOptions options = quiet_options();
  options.solver_timeout_ms = 20;
  ReactiveEngine engine(ec2(), store(), primary, options);
  ReactiveReport report;
  ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.solver_budget_cutoffs, 1u);
  EXPECT_EQ(report.solver_fallbacks, 0u);
  EXPECT_EQ(report.last_scheduler, "CooperativeSlow");
}

TEST(ReactiveEngineTest, SlowNonCooperativeSolverDegradesToBaseline) {
  // A solver that ignores the budget and answers late gets its plan
  // rejected (it is neither on time nor a budget-acknowledged anytime
  // result) and the engine falls back to the baseline scheduler chain.
  util::Rng wf_rng(16);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  NonCooperativeSlowScheduler primary;
  ReactiveOptions options = quiet_options();
  options.solver_timeout_ms = 5;
  ReactiveEngine engine(ec2(), store(), primary, options);
  ReactiveReport report;
  ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.solver_fallbacks, 1u);
  EXPECT_NE(report.last_scheduler.find("fallback"), std::string::npos);
}

TEST(ReactiveEngineTest, MalformedPlanDegradesToBaseline) {
  util::Rng wf_rng(6);
  const auto wf = workflow::make_pipeline(5, wf_rng);
  MalformedScheduler primary;
  ReactiveEngine engine(ec2(), store(), primary, quiet_options());
  const ReactiveReport report = engine.run(wf, {0.9, 1e9});
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.solver_fallbacks, 1u);
}

TEST(ReactiveEngineTest, ReplanAndFallbackCountersMatchTheReport) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "instrumentation compiled out (DECO_OBS=OFF)";
  }
  auto& reg = obs::Registry::instance();
  reg.reset();
  reg.set_enabled(true);

  // Run 1: failures force replanning (the FailuresTriggerReplanning setup).
  util::Rng wf_rng(2);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);
  ReactiveEngine clean_engine(ec2(), store(), primary, quiet_options());
  reg.reset();  // count only the three runs below
  const ReactiveReport clean = clean_engine.run(wf, {0.9, 1e9});

  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 900;
  fm.task_failure_prob = 0.15;
  const sim::FailureModel model(fm);
  ReactiveOptions options = quiet_options();
  options.executor.failures = &model;
  ReactiveEngine engine(ec2(), store(), primary, options);
  const ReactiveReport failing = engine.run(wf, {0.9, clean.makespan * 1.02});

  // Run 2: a throwing primary exercises the fallback path.
  util::Rng pipe_rng(4);
  const auto pipe = workflow::make_pipeline(6, pipe_rng);
  ThrowingScheduler throwing;
  ReactiveEngine degraded(ec2(), store(), throwing, quiet_options());
  const ReactiveReport fallback = degraded.run(pipe, {0.9, 1e9});

  const auto snap = reg.snapshot();
  reg.set_enabled(false);
  reg.reset();

  ASSERT_GE(failing.replans, 1u);
  ASSERT_GE(fallback.solver_fallbacks, 1u);
  const auto counter = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  // The registry aggregated exactly the three instrumented runs.
  EXPECT_EQ(counter("wms.reactive.runs"), 3u);
  EXPECT_EQ(counter("wms.reactive.replans"),
            clean.replans + failing.replans + fallback.replans);
  EXPECT_EQ(counter("wms.reactive.solver_fallbacks"),
            clean.solver_fallbacks + failing.solver_fallbacks +
                fallback.solver_fallbacks);
  EXPECT_EQ(counter("wms.reactive.segments"),
            clean.segments + failing.segments + fallback.segments);
  // The run timer observed each engine.run() exactly once.
  ASSERT_EQ(snap.histograms.count("wms.reactive.run_ms"), 1u);
  EXPECT_EQ(snap.histograms.at("wms.reactive.run_ms").count, 3u);
}

TEST(ReactiveEngineTest, ImpossibleDeadlineReplansUpToTheCapAndFinishes) {
  util::Rng wf_rng(7);
  const auto wf = workflow::make_pipeline(6, wf_rng);
  FixedTypeScheduler primary(0);
  ReactiveOptions options = quiet_options();
  options.max_replans = 2;
  ReactiveEngine engine(ec2(), store(), primary, options);
  // A deadline nothing can meet: every probe projects a miss, the engine
  // replans until the cap, then rides the plan out instead of looping.
  const ReactiveReport report = engine.run(wf, {0.9, 1e-3});
  EXPECT_TRUE(report.completed);
  EXPECT_FALSE(report.met_deadline);
  EXPECT_EQ(report.replans, options.max_replans);
}

}  // namespace
}  // namespace deco::wms
