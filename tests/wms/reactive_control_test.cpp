// ReactiveEngine <-> cloud::ControlPlane: null-model equivalence, completion
// under a degraded API, and proactive replanning on spot-interruption
// notices.
#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "wms/reactive.hpp"
#include "workflow/generators.hpp"

namespace deco::wms {
namespace {

using core::testing::ec2;
using core::testing::store;

ReactiveOptions quiet_options() {
  ReactiveOptions opt;
  opt.executor.sample_dynamics = false;
  opt.executor.rand_io_ops_per_task = 0;
  return opt;
}

TEST(ReactiveControlTest, NullControlOptionsMatchNoControl) {
  util::Rng wf_rng(1);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(1);

  ReactiveEngine plain(ec2(), store(), primary, quiet_options());
  const ReactiveReport a = plain.run(wf, {0.9, 1e9});

  ReactiveOptions with_null = quiet_options();
  with_null.control = cloud::ControlPlaneOptions{};  // all fault knobs zero
  ReactiveEngine mediated(ec2(), store(), primary, with_null);
  const ReactiveReport b = mediated.run(wf, {0.9, 1e9});

  // The null fault model is bit-identical to running without a control
  // plane, end to end through the engine.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.segments, b.segments);
  EXPECT_EQ(b.api.calls, 0u);
  EXPECT_EQ(b.proactive_replans, 0u);
}

TEST(ReactiveControlTest, DegradedApiRunCompletesAndReportsStats) {
  util::Rng wf_rng(2);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);

  ReactiveOptions options = quiet_options();
  cloud::ControlPlaneOptions cp;
  cp.faults.throttle_rate_per_s = 0.2;
  cp.faults.throttle_burst = 2;
  cp.faults.capacity_mtbo_s = 3600;
  cp.faults.capacity_outage_s = 300;
  cp.faults.transient_error_prob = 0.1;
  options.control = cp;
  ReactiveEngine engine(ec2(), store(), primary, options);

  ReactiveReport report;
  ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.met_deadline);
  EXPECT_GT(report.api.calls, 0u);
}

TEST(ReactiveControlTest, SpotNoticesTriggerProactiveReplans) {
  util::Rng wf_rng(3);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);

  // Clean-run makespan so the interruption MTBF can be set well inside it:
  // a notice then lands inside every probe, forcing proactive cuts.
  ReactiveEngine clean(ec2(), store(), primary, quiet_options());
  const ReactiveReport clean_report = clean.run(wf, {0.9, 1e9});
  ASSERT_TRUE(clean_report.completed);

  ReactiveOptions options = quiet_options();
  cloud::ControlPlaneOptions cp;
  cp.faults.spot_interruption_mtbf_s =
      std::max(clean_report.makespan / 4.0, 60.0);
  cp.faults.spot_notice_lead_s = 120;
  options.control = cp;
  ReactiveEngine engine(ec2(), store(), primary, options);

  ReactiveReport report;
  ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
  EXPECT_TRUE(report.completed);
  EXPECT_GT(report.proactive_replans, 0u);
  EXPECT_LE(report.proactive_replans, report.replans);
  EXPECT_GT(report.api.spot_interruptions, 0u);
}

TEST(ReactiveControlTest, RegionalStormTriggersEvacuation) {
  util::Rng wf_rng(5);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);

  // Clean-run makespan so storms can be timed to land inside the run.
  ReactiveEngine clean(ec2(), store(), primary, quiet_options());
  const ReactiveReport clean_report = clean.run(wf, {0.9, 1e9});
  ASSERT_TRUE(clean_report.completed);

  ReactiveOptions options = quiet_options();
  cloud::ControlPlaneOptions cp;
  cp.faults.weather.storm_mtbs_s = std::max(clean_report.makespan / 3.0, 60.0);
  cp.faults.weather.storm_duration_s = clean_report.makespan;
  cp.faults.weather.capacity_hazard = 1.0;
  cp.faults.weather.spot_storms = false;  // isolate the evacuation path
  options.control = cp;
  options.evacuate_on_storm = true;

  // Storm arrival is seeded; scan a few seeds for one that lands a storm
  // inside the run (each individual run stays fully deterministic).
  bool evacuated = false;
  ReactiveReport report;
  for (std::uint64_t seed = 0; seed < 10 && !evacuated; ++seed) {
    options.seed = 2015 + seed;
    ReactiveEngine engine(ec2(), store(), primary, options);
    ASSERT_NO_THROW(report = engine.run(wf, {0.9, 1e9}));
    EXPECT_TRUE(report.completed);
    evacuated = report.regional_evacuations > 0;
  }
  ASSERT_TRUE(evacuated) << "no seed produced a storm inside the run";
  // The evacuated frontier's egress cost is accounted inside total_cost.
  EXPECT_GE(report.evacuation_transfer_cost, 0.0);
  EXPECT_GE(report.replans, report.regional_evacuations);

  // Same storms, evacuation off: the engine rides the storm out on the
  // control plane's retry/fallback machinery and never evacuates.
  options.evacuate_on_storm = false;
  ReactiveEngine rider(ec2(), store(), primary, options);
  ReactiveReport rode;
  ASSERT_NO_THROW(rode = rider.run(wf, {0.9, 1e9}));
  EXPECT_EQ(rode.regional_evacuations, 0u);
}

TEST(ReactiveControlTest, ReportsAreSeedDeterministic) {
  util::Rng wf_rng(4);
  const auto wf = workflow::make_montage(1, wf_rng);
  FixedTypeScheduler primary(0);

  ReactiveOptions options = quiet_options();
  cloud::ControlPlaneOptions cp;
  cp.faults.transient_error_prob = 0.15;
  cp.faults.spot_interruption_mtbf_s = 4000;
  options.control = cp;

  auto run = [&]() {
    ReactiveEngine engine(ec2(), store(), primary, options);
    return engine.run(wf, {0.9, 1e9});
  };
  const ReactiveReport a = run();
  const ReactiveReport b = run();
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.proactive_replans, b.proactive_replans);
  EXPECT_EQ(a.api.calls, b.api.calls);
}

}  // namespace
}  // namespace deco::wms
