#include "tools/cli.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/obs.hpp"

namespace deco::tools {
namespace {

CliArgs parse(std::initializer_list<std::string> words) {
  return parse_args(std::vector<std::string>(words));
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CliParseTest, CommandAndOptions) {
  const auto args = parse({"plan", "--dax", "wf.dax", "--deadline", "3600"});
  EXPECT_EQ(args.command, "plan");
  EXPECT_EQ(args.get_or("dax", ""), "wf.dax");
  EXPECT_DOUBLE_EQ(args.number_or("deadline", 0), 3600.0);
}

TEST(CliParseTest, BareFlagsAndPositionals) {
  // A word following an option is its value; a trailing option is a flag.
  const auto args = parse({"run", "extra", "--verbose"});
  EXPECT_EQ(args.command, "run");
  EXPECT_EQ(args.get_or("verbose", ""), "true");
  ASSERT_EQ(args.positional.size(), 1u);
  EXPECT_EQ(args.positional[0], "extra");
}

TEST(CliParseTest, MissingOptionFallsBack) {
  const auto args = parse({"plan"});
  EXPECT_FALSE(args.get("dax").has_value());
  EXPECT_DOUBLE_EQ(args.number_or("deadline", 42), 42.0);
  EXPECT_DOUBLE_EQ(args.number_or("deadline", 0), 0.0);
}

TEST(CliParseTest, NonNumericOptionFallsBack) {
  const auto args = parse({"plan", "--deadline", "--quantile"});
  // "--deadline" immediately followed by another flag is a bare flag.
  EXPECT_DOUBLE_EQ(args.number_or("deadline", 9), 9.0);
}

TEST(CliRunTest, HelpPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"help"}), out), 0);
  EXPECT_NE(out.str().find("usage: deco"), std::string::npos);
}

TEST(CliRunTest, NoCommandIsErrorWithUsage) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({}), out), 1);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
}

TEST(CliRunTest, UnknownCommandFails) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"frobnicate"}), out), 1);
  EXPECT_NE(out.str().find("unknown command"), std::string::npos);
}

TEST(CliRunTest, GenerateWritesDax) {
  const std::string path = temp_path("cli_gen.dax");
  std::ostringstream out;
  const int rc = run_cli(parse({"generate", "--app", "pipeline", "--tasks",
                                "5", "--out", path}),
                         out);
  EXPECT_EQ(rc, 0) << out.str();
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
  EXPECT_NE(out.str().find("5 tasks"), std::string::npos);
}

TEST(CliRunTest, GenerateUnknownAppFails) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"generate", "--app", "nope", "--out",
                           temp_path("x.dax")}),
                    out),
            1);
}

TEST(CliRunTest, GenerateMontageByDegree) {
  const std::string path = temp_path("cli_montage.dax");
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"generate", "--app", "montage", "--degree", "1",
                           "--out", path}),
                    out),
            0);
  EXPECT_NE(out.str().find("Montage-1"), std::string::npos);
}

TEST(CliRunTest, CalibrateSavesStore) {
  const std::string path = temp_path("cli_store.txt");
  std::ostringstream out;
  const int rc = run_cli(
      parse({"calibrate", "--samples", "300", "--out", path}), out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("saved 19 histograms"), std::string::npos);
}

TEST(CliRunTest, PlanRequiresDax) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"plan", "--deadline", "100"}), out),
            kExitInputError);
  EXPECT_NE(out.str().find("--dax"), std::string::npos);
}

TEST(CliRunTest, PlanRequiresDeadline) {
  const std::string path = temp_path("cli_plan_in.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 path}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"plan", "--dax", path}), out), 1);
  EXPECT_NE(out.str().find("--deadline"), std::string::npos);
}

TEST(CliRunTest, PlanEndToEnd) {
  const std::string dax = temp_path("cli_plan.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  std::ostringstream out;
  const int rc = run_cli(
      parse({"plan", "--dax", dax, "--deadline", "100000"}), out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("plan (Deco):"), std::string::npos);
  EXPECT_NE(out.str().find("estimated cost"), std::string::npos);
  EXPECT_NE(out.str().find("feasible"), std::string::npos);
}

TEST(CliRunTest, PlanWithFixedTypeScheduler) {
  const std::string dax = temp_path("cli_fixed.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--scheduler", "m1.large"}),
                         out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("m1.large"), std::string::npos);
}

TEST(CliRunTest, PlanUnknownSchedulerFails) {
  const std::string dax = temp_path("cli_sched.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"plan", "--dax", dax, "--deadline", "1000",
                           "--scheduler", "nope"}),
                    out),
            1);
}

TEST(CliRunTest, PlanUnknownEstimatorIsInputError) {
  const std::string dax = temp_path("cli_estimator_bad.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"plan", "--dax", dax, "--deadline", "1000",
                           "--estimator", "sobol"}),
                    out),
            kExitInputError);
  EXPECT_NE(out.str().find("unknown --estimator"), std::string::npos);
  EXPECT_NE(out.str().find("mc|analytic|auto"), std::string::npos);
}

TEST(CliRunTest, PlanEstimatorModesRunAndAreReported) {
  const std::string dax = temp_path("cli_estimator.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  for (const std::string mode : {"mc", "analytic", "auto"}) {
    std::ostringstream out;
    const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline",
                                  "100000", "--estimator", mode}),
                           out);
    EXPECT_EQ(rc, 0) << mode << ": " << out.str();
    EXPECT_NE(out.str().find("estimator=" + mode), std::string::npos)
        << out.str();
  }
  // Default is the tiered hierarchy.
  std::ostringstream out;
  ASSERT_EQ(run_cli(parse({"plan", "--dax", dax, "--deadline", "100000"}),
                    out),
            0);
  EXPECT_NE(out.str().find("estimator=auto"), std::string::npos) << out.str();
}

TEST(CliRunTest, PlanEstimatorEchoedInMetricsDump) {
  const std::string dax = temp_path("cli_estimator_obs.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  const std::string metrics_path = temp_path("cli_estimator_metrics.json");
  std::ostringstream out;
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--estimator", "mc", "--metrics-out",
                                metrics_path}),
                         out);
  ASSERT_EQ(rc, 0) << out.str();
  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream mbuf;
  mbuf << metrics.rdbuf();
  EXPECT_NE(mbuf.str().find("cli.estimator.mc"), std::string::npos)
      << mbuf.str();
}

TEST(CliRunTest, RunExecutesOnSimulator) {
  const std::string dax = temp_path("cli_run.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  const int rc = run_cli(parse({"run", "--dax", dax, "--deadline", "100000",
                                "--runs", "3"}),
                         out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("executed 3 runs"), std::string::npos);
}

TEST(CliRunTest, SolveRunsWlogProgram) {
  const std::string dax = temp_path("cli_solve.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  const std::string program = temp_path("cli_solve.wlog");
  {
    std::ofstream p(program);
    p << R"(
      import(amazonec2).
      import(workflow).
      goal minimize Ct in totalcost(Ct).
      cons T in maxtime(Path,T) satisfies deadline(90%, 1000h).
      var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
      path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
          configs(X,Vid,Con), Con == 1, Tp is T.
      path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
          exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
      maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
          max(Set, [Path,T]).
      cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
          configs(Tid,Vid,Con), C is T*Up*Con.
      totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
    )";
  }
  std::ostringstream out;
  const int rc = run_cli(
      parse({"solve", "--dax", dax, "--program", program}), out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("solved: goal value"), std::string::npos);
}

TEST(CliRunTest, SolveMissingProgramFails) {
  const std::string dax = temp_path("cli_noprog.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "2", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"solve", "--dax", dax, "--program",
                           "/nonexistent.wlog"}),
                    out),
            kExitInputError);
}

TEST(CliRunTest, InfoSummarizesWorkflow) {
  const std::string dax = temp_path("cli_info.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "epigenomics", "--tasks",
                           "40", "--out", dax}),
                    gen),
            0);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"info", "--dax", dax}), out), 0);
  EXPECT_NE(out.str().find("tasks"), std::string::npos);
  EXPECT_NE(out.str().find("task mix"), std::string::npos);
  EXPECT_NE(out.str().find("fastQSplit"), std::string::npos);
}

TEST(CliRunTest, InfoRequiresDax) {
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"info"}), out), kExitInputError);
}

TEST(CliRunTest, TruncatedDaxFailsWithDiagnosticNotCrash) {
  // A DAX cut off mid-element (a partial download, a full disk) must come
  // back as a one-line diagnostic and the input-error exit code — never an
  // escaping exception, whatever the command.
  const std::string path = temp_path("cli_truncated.dax");
  {
    std::ofstream f(path);
    f << R"(<?xml version="1.0"?>
<adag name="pipeline">
  <job id="ID01" name="process1" runtime="30">
    <uses file="f.a" link="inp)";
  }
  for (const char* command : {"plan", "run", "info"}) {
    std::ostringstream out;
    int rc = -1;
    ASSERT_NO_THROW(rc = run_cli(parse({command, "--dax", path, "--deadline",
                                        "1000"}),
                                 out))
        << command;
    EXPECT_EQ(rc, kExitInputError) << command;
    EXPECT_NE(out.str().find("error"), std::string::npos) << out.str();
  }
}

TEST(CliRunTest, SolverFailureHasDistinctExitCode) {
  const std::string dax = temp_path("cli_badprog.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "2", "--out",
                 dax}),
          gen);
  // A syntactically broken WLog program reaches the solver and fails there:
  // that is a solver failure (2), not an input I/O failure (3).
  const std::string program = temp_path("cli_badprog.wlog");
  {
    std::ofstream p(program);
    p << "goal minimize Ct in totalcost(Ct";  // unbalanced, no clauses
  }
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"solve", "--dax", dax, "--program", program}), out),
            kExitSolverFailure);
  EXPECT_NE(out.str().find("error"), std::string::npos) << out.str();
}

TEST(CliRunTest, RunDegradedApiProfileCompletes) {
  const std::string dax = temp_path("cli_degraded.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  // Throttling, outages and transient errors — but retries and fallback
  // carry every run to completion with exit 0.
  const int rc = run_cli(parse({"run", "--dax", dax, "--deadline", "100000",
                                "--runs", "3", "--api-profile", "degraded"}),
                         out);
  EXPECT_EQ(rc, kExitOk) << out.str();
  EXPECT_NE(out.str().find("executed 3 runs"), std::string::npos);
  EXPECT_NE(out.str().find("control plane:"), std::string::npos);
}

TEST(CliRunTest, RunExhaustedApiProfileExitsWithCapacityCode) {
  const std::string dax = temp_path("cli_exhausted.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  int rc = -1;
  ASSERT_NO_THROW(rc = run_cli(parse({"run", "--dax", dax, "--deadline",
                                      "100000", "--runs", "2",
                                      "--api-profile", "exhausted"}),
                               out));
  EXPECT_EQ(rc, kExitProvisioningExhausted) << out.str();
  EXPECT_NE(out.str().find("error"), std::string::npos);
}

TEST(CliRunTest, UnknownApiProfileIsUsageError) {
  const std::string dax = temp_path("cli_badprofile.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "2", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"run", "--dax", dax, "--deadline", "100000",
                           "--api-profile", "sideways"}),
                    out),
            kExitError);
  EXPECT_NE(out.str().find("api-profile"), std::string::npos);
}

TEST(CliRunTest, RegionFlagPinsPlacementsAndEchoesMetrics) {
  const std::string dax = temp_path("cli_region.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  const std::string metrics = temp_path("cli_region_metrics.json");
  std::ostringstream out;
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--scheduler", "m1.small", "--region",
                                "ap-southeast-1", "--metrics-out", metrics}),
                         out);
  EXPECT_EQ(rc, kExitOk) << out.str();
  // Site names carry the region, so every mapped task lands there.
  EXPECT_NE(out.str().find("@ap-southeast-1"), std::string::npos) << out.str();
  EXPECT_EQ(out.str().find("@us-east-1"), std::string::npos) << out.str();
  // And the choice is echoed into the metrics dump.
  std::ifstream in(metrics);
  std::stringstream dumped;
  dumped << in.rdbuf();
  EXPECT_NE(dumped.str().find("cli.region.ap-southeast-1"), std::string::npos);
}

TEST(CliRunTest, UnknownRegionIsInputErrorListingCandidates) {
  const std::string dax = temp_path("cli_badregion.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "2", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                           "--region", "mars-north-1"}),
                    out),
            kExitInputError);
  EXPECT_NE(out.str().find("unknown region 'mars-north-1'"), std::string::npos);
  // The error names the valid candidates.
  EXPECT_NE(out.str().find("us-east-1"), std::string::npos);
  EXPECT_NE(out.str().find("ap-southeast-1"), std::string::npos);
}

TEST(CliRunTest, RunStormsWeatherProfileCompletes) {
  const std::string dax = temp_path("cli_storms.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  // Recurring storms are survivable: retries and fallback grants carry
  // every run to completion.
  const int rc = run_cli(parse({"run", "--dax", dax, "--deadline", "100000",
                                "--runs", "3", "--weather-profile", "storms"}),
                         out);
  EXPECT_EQ(rc, kExitOk) << out.str();
  EXPECT_NE(out.str().find("executed 3 runs"), std::string::npos);
  // Weather forces a mediating control plane even without --api-profile.
  EXPECT_NE(out.str().find("control plane:"), std::string::npos);
}

TEST(CliRunTest, RunBlackoutWeatherProfileExitsWithCapacityCode) {
  const std::string dax = temp_path("cli_blackout.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  int rc = -1;
  ASSERT_NO_THROW(rc = run_cli(parse({"run", "--dax", dax, "--deadline",
                                      "100000", "--runs", "2",
                                      "--weather-profile", "blackout"}),
                               out));
  EXPECT_EQ(rc, kExitProvisioningExhausted) << out.str();
  EXPECT_NE(out.str().find("error"), std::string::npos);
}

TEST(CliRunTest, UnknownWeatherProfileIsUsageError) {
  const std::string dax = temp_path("cli_badweather.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "2", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  EXPECT_EQ(run_cli(parse({"run", "--dax", dax, "--deadline", "100000",
                           "--weather-profile", "hailstorm"}),
                    out),
            kExitError);
  EXPECT_NE(out.str().find("weather-profile"), std::string::npos);
}

TEST(CliRunTest, PlanUsesSavedStore) {
  const std::string store_path = temp_path("cli_reuse_store.txt");
  std::ostringstream cal;
  ASSERT_EQ(run_cli(parse({"calibrate", "--samples", "300", "--out",
                           store_path}),
                    cal),
            0);
  const std::string dax = temp_path("cli_reuse.dax");
  std::ostringstream gen;
  run_cli(parse({"generate", "--app", "pipeline", "--tasks", "3", "--out",
                 dax}),
          gen);
  std::ostringstream out;
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--store", store_path}),
                         out);
  EXPECT_EQ(rc, 0) << out.str();
}

TEST(CliRunTest, StatsRendersMetricsSummary) {
  const std::string dax = temp_path("cli_stats.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  std::ostringstream out;
  const int rc =
      run_cli(parse({"stats", "--dax", dax, "--deadline", "100000"}), out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("metrics summary"), std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_NE(out.str().find("search.states_evaluated"), std::string::npos);
    EXPECT_NE(out.str().find("eval.plans"), std::string::npos);
  } else {
    EXPECT_NE(out.str().find("instrumentation compiled out"),
              std::string::npos);
  }
}

TEST(CliRunTest, MetricsAndTraceOutWriteFiles) {
  const std::string dax = temp_path("cli_obs.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  const std::string metrics_path = temp_path("cli_metrics.json");
  const std::string trace_path = temp_path("cli_trace.json");
  std::ostringstream out;
  const int rc = run_cli(
      parse({"run", "--dax", dax, "--deadline", "100000", "--runs", "2",
             "--metrics-out", metrics_path, "--trace-out", trace_path}),
      out);
  EXPECT_EQ(rc, 0) << out.str();
  EXPECT_NE(out.str().find("wrote metrics to"), std::string::npos);
  EXPECT_NE(out.str().find("wrote trace to"), std::string::npos);

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream mbuf;
  mbuf << metrics.rdbuf();
  EXPECT_NE(mbuf.str().find("\"counters\""), std::string::npos);
  if (obs::kCompiledIn) {
    EXPECT_NE(mbuf.str().find("sim.runs"), std::string::npos);
  }

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream tbuf;
  tbuf << trace.rdbuf();
  EXPECT_NE(tbuf.str().find("\"traceEvents\""), std::string::npos);

  // The observation window is per-invocation: a later plain run must not
  // leave the registry/collector enabled.
  EXPECT_FALSE(obs::Registry::instance().enabled());
  EXPECT_FALSE(obs::TraceCollector::instance().enabled());
}

TEST(CliRunTest, UsageDocumentsSolveBudgetFlags) {
  std::ostringstream out;
  run_cli(parse({"help"}), out);
  EXPECT_NE(out.str().find("--solve-budget-ms"), std::string::npos);
  EXPECT_NE(out.str().find("--memory-budget-mb"), std::string::npos);
}

TEST(CliRunTest, GenerousSolveBudgetPlansNormally) {
  const std::string dax = temp_path("cli_budget_ok.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "pipeline", "--tasks", "4",
                           "--out", dax}),
                    gen),
            0);
  std::ostringstream out;
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--solve-budget-ms", "600000"}),
                         out);
  EXPECT_EQ(rc, kExitOk) << out.str();
  EXPECT_NE(out.str().find("plan (Deco):"), std::string::npos);
  EXPECT_EQ(out.str().find("solve budget exhausted"), std::string::npos);
}

TEST(CliRunTest, TinySolveBudgetReturnsAnytimePlanWithExitFive) {
  const std::string dax = temp_path("cli_budget_cut.dax");
  std::ostringstream gen;
  ASSERT_EQ(run_cli(parse({"generate", "--app", "montage", "--tasks", "25",
                           "--out", dax}),
                    gen),
            0);
  std::ostringstream out;
  // A budget this tiny always expires mid-solve; the CLI must still print
  // a full plan (the anytime incumbent) and exit with the distinct
  // budget-exhausted-with-plan code.
  const int rc = run_cli(parse({"plan", "--dax", dax, "--deadline", "100000",
                                "--solve-budget-ms", "0.01"}),
                         out);
  EXPECT_EQ(rc, kExitBudgetExhaustedPlan) << out.str();
  EXPECT_NE(out.str().find("plan (Deco):"), std::string::npos);
  EXPECT_NE(out.str().find("estimated cost"), std::string::npos);
  EXPECT_NE(out.str().find("solve budget exhausted"), std::string::npos);
}

}  // namespace
}  // namespace deco::tools
