// Cross-module integration tests: the full DAX -> scheduler -> simulator
// pipeline, the declarative vs native agreement, metadata-store round trips
// through the engine, and ensemble plans executed on the simulator.
#include <gtest/gtest.h>

#include "baselines/spss.hpp"
#include "cloud/calibration.hpp"
#include "core/deco.hpp"
#include "sim/executor.hpp"
#include "tests/core/test_fixtures.hpp"
#include "wms/pegasus.hpp"
#include "workflow/dax.hpp"
#include "workflow/ensemble.hpp"
#include "workflow/generators.hpp"

namespace deco {
namespace {

using core::testing::ec2;
using core::testing::store;

TEST(EndToEndTest, DaxThroughWmsToSimulator) {
  // Generate -> serialize -> reparse -> plan with Deco -> execute.
  util::Rng rng(1);
  const auto original = workflow::make_epigenomics(40, rng);
  const std::string xml = workflow::to_dax(original);

  core::DecoOptions opt;
  opt.backend = "vgpu";
  core::Deco engine(ec2(), store(), opt);
  wms::PegasusWms wms(ec2(), store());
  wms.set_scheduler(std::make_unique<wms::DecoScheduler>(engine));

  const core::ProbDeadline req{0.9, 1e6};
  util::Rng plan_rng(2);
  auto planned = wms.plan_dax(xml, req, plan_rng);
  ASSERT_TRUE(std::holds_alternative<wms::ExecutableWorkflow>(planned));
  const auto& exec = std::get<wms::ExecutableWorkflow>(planned);
  EXPECT_EQ(exec.workflow.task_count(), original.task_count());

  util::Rng run_rng(3);
  const auto report = wms.execute(exec, run_rng, req);
  EXPECT_GT(report.makespan, 0.0);
  EXPECT_TRUE(report.met_deadline);
}

TEST(EndToEndTest, DeclarativeAndNativePathsAgree) {
  // On a small pipeline with a loose deadline, solve_program (through the
  // WLog interpreter + Monte Carlo IR) and schedule() (native kernels) must
  // pick plans of equivalent cost.
  util::Rng rng(4);
  const auto wf = workflow::make_pipeline(3, rng);
  core::DecoOptions opt;
  opt.backend = "serial";
  opt.wlog_max_states = 40;
  core::Deco engine(ec2(), store(), opt);

  const char* program = R"(
    import(amazonec2). import(workflow).
    goal minimize Ct in totalcost(Ct).
    cons T in maxtime(Path,T) satisfies deadline(90%, 1000h).
    var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
    path(X,Y,Y,Tp) :- edge(X,Y), exetime(X,Vid,T),
        configs(X,Vid,Con), Con == 1, Tp is T.
    path(X,Y,Z,Tp) :- edge(X,Z), Z \== Y, path(Z,Y,Z2,T1),
        exetime(X,Vid,T), configs(X,Vid,Con), Con == 1, Tp is T+T1.
    maxtime(Path,T) :- setof([Z,T1], path(root,tail,Z,T1), Set),
        max(Set, [Path,T]).
    cost(Tid,Vid,C) :- price(Vid,Up), exetime(Tid,Vid,T),
        configs(Tid,Vid,Con), C is T*Up*Con.
    totalcost(Ct) :- findall(C, cost(Tid,Vid,C), Bag), sum(Bag, Ct).
  )";
  const auto declarative = engine.solve_program(program, wf);
  ASSERT_TRUE(declarative.ok) << declarative.error;
  const auto native = engine.schedule(wf, {0.9, 3600.0 * 1000});
  ASSERT_TRUE(native.found);

  // Compare the plans' native costs.
  core::TaskTimeEstimator estimator(ec2(), store());
  vgpu::SerialBackend backend;
  core::PlanEvaluator evaluator(wf, estimator, backend);
  const double decl_cost =
      evaluator.evaluate(declarative.plan, {0.9, 1e9}).mean_cost;
  const double native_cost =
      evaluator.evaluate(native.plan, {0.9, 1e9}).mean_cost;
  EXPECT_NEAR(decl_cost, native_cost, 0.15 * native_cost);
}

TEST(EndToEndTest, MetadataStoreRoundTripYieldsSamePlans) {
  // Serialize + reload the metadata store: the engine must produce the same
  // plan from the persisted histograms.
  const std::string path = testing::TempDir() + "/integration_store.txt";
  ASSERT_TRUE(store().save(path));
  const auto reloaded = cloud::MetadataStore::load(path);
  ASSERT_TRUE(reloaded.has_value());

  util::Rng rng(5);
  const auto wf = workflow::make_montage(1, rng);
  core::DecoOptions opt;
  opt.backend = "serial";
  core::Deco engine_a(ec2(), store(), opt);
  core::Deco engine_b(ec2(), *reloaded, opt);
  const core::ProbDeadline req{0.9, 1500};
  const auto plan_a = engine_a.schedule(wf, req);
  const auto plan_b = engine_b.schedule(wf, req);
  ASSERT_TRUE(plan_a.found);
  ASSERT_TRUE(plan_b.found);
  EXPECT_EQ(plan_a.plan, plan_b.plan);
}

TEST(EndToEndTest, EnsemblePlansExecuteWithinBudgetAndDeadlines) {
  util::Rng rng(6);
  workflow::EnsembleOptions eopt;
  eopt.app = workflow::AppType::kLigo;
  eopt.type = workflow::EnsembleType::kConstant;
  eopt.num_workflows = 4;
  eopt.sizes = {20};
  workflow::Ensemble ensemble = workflow::make_ensemble(eopt, rng);
  for (auto& m : ensemble.members) {
    m.deadline_s = 3 * 3600;
    m.deadline_q = 90;
  }
  ensemble.budget = 1.0;  // a few billed hours

  core::Deco engine(ec2(), store());
  core::EnsemblePlanOptions popt;
  popt.per_workflow.search.max_states = 16;
  popt.per_workflow.search.stale_wave_limit = 2;
  const auto result = engine.plan_ensemble(ensemble, popt);
  EXPECT_LE(result.total_cost, ensemble.budget + 1e-9);

  // Execute every admitted member on the simulator.
  util::Rng run_rng(7);
  double billed = 0;
  for (std::size_t i = 0; i < ensemble.members.size(); ++i) {
    if (!result.admitted[i]) continue;
    const auto exec = sim::simulate_execution(
        ensemble.members[i].workflow, result.plans[i], ec2(), run_rng);
    billed += exec.total_cost;
    EXPECT_LE(exec.makespan, ensemble.members[i].deadline_s * 1.1);
  }
  // Simulator billing should land near the planner's estimate.
  if (result.total_cost > 0) {
    EXPECT_LT(billed, result.total_cost * 2.5);
  }
}

TEST(EndToEndTest, SpssAndDecoBothExecutable) {
  util::Rng rng(8);
  workflow::EnsembleOptions eopt;
  eopt.app = workflow::AppType::kLigo;
  eopt.type = workflow::EnsembleType::kUniformUnsorted;
  eopt.num_workflows = 4;
  eopt.sizes = {20};
  workflow::Ensemble ensemble = workflow::make_ensemble(eopt, rng);
  for (auto& m : ensemble.members) {
    m.deadline_s = 3 * 3600;
    m.deadline_q = 90;
  }
  ensemble.budget = 1e9;

  vgpu::SerialBackend backend;
  baselines::Spss spss(ec2(), store(), backend);
  const auto spss_result = spss.plan(ensemble);
  util::Rng run_rng(9);
  for (std::size_t i = 0; i < ensemble.members.size(); ++i) {
    if (!spss_result.admitted[i]) continue;
    const auto exec = sim::simulate_execution(
        ensemble.members[i].workflow, spss_result.plans[i], ec2(), run_rng);
    EXPECT_GT(exec.makespan, 0.0);
  }
}

TEST(EndToEndTest, CalibrationFeedsEstimatorFeedsSimulator) {
  // Fresh calibration -> estimator -> plan -> simulator, no shared fixture.
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  cloud::MetadataStore fresh_store;
  cloud::CalibrationOptions copt;
  copt.samples_per_setting = 2000;
  util::Rng cal_rng(10);
  cloud::calibrate(catalog, fresh_store, copt, cal_rng);

  util::Rng rng(11);
  const auto wf = workflow::make_cybershake(30, rng);
  core::TaskTimeEstimator estimator(catalog, fresh_store);
  vgpu::VirtualGpuBackend backend(2);
  core::SchedulingProblem problem(wf, estimator, backend);
  const auto result = problem.solve({0.9, 1e6});
  ASSERT_TRUE(result.found);

  util::Rng run_rng(12);
  const auto exec = sim::simulate_execution(wf, result.plan, catalog, run_rng);
  EXPECT_GT(exec.makespan, 0.0);
  EXPECT_LE(exec.makespan, 1e6);
}

}  // namespace
}  // namespace deco
