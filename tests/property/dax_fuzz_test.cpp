// Property test: the DAX parser must return a clean Workflow-or-DaxError for
// arbitrarily mangled input — never crash, throw, or leak (the CI chaos job
// runs this under ASan/UBSan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <string_view>
#include <variant>

#include "util/rng.hpp"
#include "workflow/dax.hpp"

namespace deco::workflow {
namespace {

constexpr std::string_view kSeedDax = R"(<adag name="pipeline" jobCount="3">
  <job id="ID01" name="extract" runtime="30">
    <uses file="raw.dat" link="input" size="1048576"/>
    <uses file="clean.dat" link="output" size="524288"/>
  </job>
  <job id="ID02" name="transform" runtime="45">
    <uses file="clean.dat" link="input" size="524288"/>
    <uses file="cooked.dat" link="output" size="262144"/>
  </job>
  <job id="ID03" name="load" runtime="15">
    <uses file="cooked.dat" link="input" size="262144"/>
  </job>
  <child ref="ID02"><parent ref="ID01"/></child>
  <child ref="ID03"><parent ref="ID02"/></child>
</adag>
)";

std::size_t chaos_scale() {
  const char* env = std::getenv("DECO_CHAOS");
  return (env != nullptr && *env != '\0' && *env != '0') ? 4 : 1;
}

// Every outcome of the parser must be one of the two declared variants and
// must be reachable without UB; we also poke the Workflow branch to make
// sure a "successfully" parsed mutant is internally consistent.
void expect_graceful(std::string_view xml) {
  DaxResult result;
  ASSERT_NO_THROW(result = parse_dax(xml));
  if (const auto* wf = std::get_if<Workflow>(&result)) {
    std::size_t edges = 0;
    for (std::size_t t = 0; t < wf->task_count(); ++t) {
      edges += wf->children(t).size();
      (void)wf->task(t).name;
    }
    (void)edges;
  } else {
    const auto& error = std::get<DaxError>(result);
    EXPECT_FALSE(error.message.empty());
  }
}

TEST(DaxFuzzTest, EveryTruncationPrefixIsHandled) {
  const std::string dax(kSeedDax);
  for (std::size_t len = 0; len <= dax.size(); ++len) {
    SCOPED_TRACE("prefix length " + std::to_string(len));
    expect_graceful(std::string_view(dax.data(), len));
  }
}

TEST(DaxFuzzTest, RandomByteMutationsNeverCrash) {
  const std::size_t rounds = 400 * chaos_scale();
  util::Rng rng(0xDAF0);
  const std::string seed(kSeedDax);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::string mutant = seed;
    const std::size_t flips = 1 + static_cast<std::size_t>(rng.uniform() * 8);
    for (std::size_t f = 0; f < flips; ++f) {
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform() * mutant.size());
      mutant[pos] = static_cast<char>(rng.uniform() * 256.0);
    }
    SCOPED_TRACE("round " + std::to_string(round));
    expect_graceful(mutant);
  }
}

TEST(DaxFuzzTest, AttributeSwapsAndDeletionsAreHandled) {
  // Structured mutations: swap attribute names, blank values, drop quotes.
  const struct {
    const char* needle;
    const char* replacement;
  } mutations[] = {
      {"id=\"ID01\"", "id=\"\""},
      {"id=\"ID01\"", "name=\"ID01\""},       // duplicate attribute name
      {"runtime=\"30\"", "runtime=\"-30\""},  // negative runtime
      {"runtime=\"30\"", "runtime=\"3e999\""},
      {"runtime=\"30\"", "runtime=\"abc\""},
      {"link=\"input\"", "link=\"sideways\""},
      {"size=\"1048576\"", "size=\"-1\""},
      {"ref=\"ID01\"", "ref=\"MISSING\""},
      {"ref=\"ID02\"", "ref=\"ID02"},  // unterminated quote
      {"<child", "<chold"},
      {"</adag>", ""},
      {"<adag", "<adag <adag"},
  };
  const std::string seed(kSeedDax);
  for (const auto& m : mutations) {
    std::string mutant = seed;
    const std::size_t pos = mutant.find(m.needle);
    ASSERT_NE(pos, std::string::npos) << m.needle;
    mutant.replace(pos, std::string::traits_type::length(m.needle),
                   m.replacement);
    SCOPED_TRACE(std::string(m.needle) + " -> " + m.replacement);
    expect_graceful(mutant);
  }
}

TEST(DaxFuzzTest, InvalidUtf8AndControlBytesAreHandled) {
  const std::string seed(kSeedDax);
  // Overlong encodings, stray continuation bytes, nulls, and BOM-in-middle.
  const std::string payloads[] = {
      std::string("\xC0\x80", 2),          // overlong NUL
      std::string("\xED\xA0\x80", 3),      // UTF-16 surrogate half
      std::string("\xFF\xFE", 2),          // not valid UTF-8 at all
      std::string("\x80\x80\x80", 3),      // bare continuation bytes
      std::string("\x00", 1),              // embedded NUL
      std::string("\xEF\xBB\xBF", 3),      // BOM in the middle of a tag
      std::string("\xF4\x90\x80\x80", 4),  // beyond U+10FFFF
  };
  util::Rng rng(0xBEEF);
  for (const std::string& payload : payloads) {
    for (int trial = 0; trial < 8; ++trial) {
      std::string mutant = seed;
      const std::size_t pos =
          static_cast<std::size_t>(rng.uniform() * mutant.size());
      mutant.insert(pos, payload);
      SCOPED_TRACE("payload size " + std::to_string(payload.size()) +
                   " at offset " + std::to_string(pos));
      expect_graceful(mutant);
    }
  }
}

TEST(DaxFuzzTest, ValidSeedStillParsesAfterFuzzing) {
  // Sanity anchor: the unmutated seed is a real workflow with real edges, so
  // the fuzz cases above exercise a parser that actually accepts the format.
  const DaxResult result = parse_dax(kSeedDax);
  const auto* wf = std::get_if<Workflow>(&result);
  ASSERT_NE(wf, nullptr);
  EXPECT_EQ(wf->task_count(), 3u);
  EXPECT_EQ(wf->children(0).size(), 1u);
}

}  // namespace
}  // namespace deco::workflow
