// Property-based tests for the observability layer:
//   * registry shard merging is order-independent and sums exactly, for
//     randomized operation schedules partitioned across threads;
//   * the trace writer emits well-formed JSON and properly nested spans for
//     randomized begin/end sequences;
//   * the simulator timeline has exactly one slice per task attempt
//     (completed + retries) for randomized FailureModel configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/ensemble.hpp"
#include "tests/core/test_fixtures.hpp"
#include "tests/obs/json_check.hpp"
#include "util/rng.hpp"
#include "workflow/generators.hpp"

namespace deco::obs {
namespace {

using core::testing::ec2;

// ---------------------------------------------------------------------------
// Registry merge: partition one randomized operation schedule across K
// worker threads; the merged snapshot must equal the single-threaded sum no
// matter how the shards were populated or enumerated.
class RegistryMergeProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RegistryMergeProperty, ShardMergeSumsExactlyAndOrderIndependently) {
  util::Rng rng(GetParam());
  constexpr int kThreads = 5;
  const int ops = 200 + static_cast<int>(rng.below(800));

  struct Op {
    int kind;       // 0 = counter, 1 = histogram
    int name;       // one of 4 metric names per kind
    std::uint64_t amount;
  };
  std::vector<Op> schedule;
  std::uint64_t expected_counter[4] = {0, 0, 0, 0};
  std::uint64_t expected_count[4] = {0, 0, 0, 0};
  double expected_sum[4] = {0, 0, 0, 0};
  for (int i = 0; i < ops; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.below(2));
    op.name = static_cast<int>(rng.below(4));
    op.amount = 1 + rng.below(16);
    if (op.kind == 0) {
      expected_counter[op.name] += op.amount;
    } else {
      ++expected_count[op.name];
      expected_sum[op.name] += static_cast<double>(op.amount);
    }
    schedule.push_back(op);
  }

  Registry reg;
  reg.set_enabled(true);
  const auto name_of = [](int kind, int idx) {
    return (kind == 0 ? "c" : "h") + std::to_string(idx);
  };
  // Round-robin partition: thread t executes ops t, t+K, t+2K, ... so the
  // per-shard contents differ from the schedule order.
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < schedule.size();
           i += kThreads) {
        const Op& op = schedule[i];
        if (op.kind == 0) {
          reg.counter_add(name_of(0, op.name), op.amount);
        } else {
          reg.observe_ms(name_of(1, op.name),
                         static_cast<double>(op.amount));
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const MetricsSnapshot snap = reg.snapshot();
  for (int n = 0; n < 4; ++n) {
    if (expected_counter[n] > 0) {
      EXPECT_EQ(snap.counters.at(name_of(0, n)), expected_counter[n]);
    }
    if (expected_count[n] > 0) {
      const HistogramData& h = snap.histograms.at(name_of(1, n));
      EXPECT_EQ(h.count, expected_count[n]);
      // Integer-valued observations: the double sum is exact.
      EXPECT_DOUBLE_EQ(h.sum_ms, expected_sum[n]);
    }
  }
  // Snapshots are idempotent: merging again yields the same result.
  const MetricsSnapshot again = reg.snapshot();
  EXPECT_EQ(snap.counters, again.counters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryMergeProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Ensemble shard merge: each run of a sim::EnsembleRunner sweep emits a
// randomized metrics schedule (derived from its substream seed) into its
// private per-run registry; the parent's merged snapshot must be identical
// at every worker count — counters and histogram sums bit for bit (merge
// order is run-index order, not thread order) and gauges with true
// last-run-wins semantics.  Only the runner's own wall-clock gauges are
// exempt (docs/performance.md, "Ensemble sharding").
class EnsembleShardMergeProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnsembleShardMergeProperty, MergedSnapshotIndependentOfWorkerCount) {
  const std::uint64_t base_seed = GetParam();
  constexpr std::size_t kRuns = 24;

  const auto sweep = [&](std::size_t workers) {
    Registry parent;
    parent.set_enabled(true);
    {
      const ScopedRegistry scope(&parent);
      sim::EnsembleOptions exec;
      exec.workers = workers;
      sim::EnsembleRunner runner(exec);
      runner.run(kRuns, base_seed, [](const sim::RunContext& ctx) {
        // The run body writes through instance(), exactly like instrumented
        // production code; inside a run this resolves to the private shard.
        Registry& reg = Registry::instance();
        util::Rng rng(ctx.seed);
        const int ops = 5 + static_cast<int>(rng.below(40));
        for (int i = 0; i < ops; ++i) {
          const auto name = "m" + std::to_string(rng.below(4));
          switch (rng.below(3)) {
            case 0: reg.counter_add("c." + name, 1 + rng.below(9)); break;
            case 1:
              reg.observe_ms("h." + name, static_cast<double>(rng.below(64)));
              break;
            default:
              reg.gauge_set("g." + name, static_cast<double>(rng.below(100)));
          }
        }
        reg.gauge_set("g.last_run", static_cast<double>(ctx.index));
      });
    }
    MetricsSnapshot snap = parent.snapshot();
    snap.gauges.erase("sim.ensemble.workers");
    snap.gauges.erase("sim.ensemble.last_sweep_ms");
    return snap;
  };

  const MetricsSnapshot serial = sweep(0);
  // Gauge last-run-wins: the highest run index set g.last_run last.
  EXPECT_DOUBLE_EQ(serial.gauges.at("g.last_run"),
                   static_cast<double>(kRuns - 1));
  const std::string serial_json = to_json(serial);
  for (const std::size_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(serial_json, to_json(sweep(workers)))
        << "workers " << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnsembleShardMergeProperty,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u));

// ---------------------------------------------------------------------------
// Trace JSON + span nesting: emit a random properly-nested span tree via a
// stack of ScopedSpans, then check (a) the serialized trace parses as JSON,
// (b) for every pair of 'X' events on one track the intervals are either
// disjoint or one contains the other (spans never partially overlap).
class TraceNestingProperty : public ::testing::TestWithParam<std::uint64_t> {
};

void random_spans(util::Rng& rng, int depth, int& budget) {
  if (budget <= 0) return;
  --budget;
  // ScopedSpan keeps the name pointer until destruction: use static strings.
  static constexpr const char* kNames[] = {"span_d0", "span_d1", "span_d2",
                                           "span_d3", "span_d4", "span_d5",
                                           "span_d6"};
  ScopedSpan span("prop", kNames[depth]);
  while (budget > 0 && depth < 6 && rng.below(3) != 0) {
    random_spans(rng, depth + 1, budget);
  }
}

TEST_P(TraceNestingProperty, RandomSpanTreesSerializeValidAndNested) {
  auto& collector = TraceCollector::instance();
  collector.clear();
  collector.set_enabled(true);
  util::Rng rng(GetParam());
  int budget = 40 + static_cast<int>(rng.below(60));
  const int total = budget;
  while (budget > 0) random_spans(rng, 0, budget);
  collector.set_enabled(false);

  const auto events = collector.snapshot();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(total));

  std::ostringstream out;
  write_chrome_trace(out, events);
  EXPECT_TRUE(testing::json_valid(out.str()));

  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const TraceEvent& a = events[i];
      const TraceEvent& b = events[j];
      if (a.tid != b.tid) continue;
      const double a0 = a.ts_us, a1 = a.ts_us + a.dur_us;
      const double b0 = b.ts_us, b1 = b.ts_us + b.dur_us;
      const bool disjoint = a1 <= b0 || b1 <= a0;
      const bool a_in_b = b0 <= a0 && a1 <= b1;
      const bool b_in_a = a0 <= b0 && b1 <= a1;
      EXPECT_TRUE(disjoint || a_in_b || b_in_a)
          << a.name << " [" << a0 << "," << a1 << ") vs " << b.name << " ["
          << b0 << "," << b1 << ")";
    }
  }
  collector.clear();
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceNestingProperty,
                         ::testing::Values(11u, 12u, 13u, 14u));

// ---------------------------------------------------------------------------
// Timeline completeness: for random failure configurations, the exported
// timeline has exactly one slice per started attempt, and the attempt log
// itself satisfies attempts == completed + retries.
class TimelineAttemptProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TimelineAttemptProperty, SliceCountEqualsAttempts) {
  const auto [seed, level] = GetParam();
  util::Rng cfg_rng(seed * 977 + static_cast<std::uint64_t>(level));
  sim::FailureModelOptions fm;
  fm.crash_mtbf_s = 300.0 + static_cast<double>(cfg_rng.below(7200));
  fm.task_failure_prob = 0.02 * static_cast<double>(level);
  fm.straggler_prob = 0.03 * static_cast<double>(cfg_rng.below(4));
  fm.boot_failure_prob = level == 3 ? 0.02 : 0.0;
  const sim::FailureModel failures(fm);

  util::Rng wf_rng(seed);
  const auto wf = workflow::make_cybershake(20 + cfg_rng.below(30), wf_rng);
  sim::ExecutorOptions options;
  options.sample_dynamics = false;
  options.rand_io_ops_per_task = 0;
  options.failures = &failures;
  util::Rng rng(seed + 99);
  const auto result = sim::simulate_execution(
      wf, sim::Plan::uniform(wf.task_count(), 1), ec2(), rng, options);

  std::size_t completed = 0;
  for (const std::uint8_t c : result.completed) completed += c;
  EXPECT_EQ(result.attempts.size(), completed + result.failures.retries);

  const auto events = execution_timeline(wf, result, &ec2());
  const auto slices = std::count_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return e.phase == 'X'; });
  EXPECT_EQ(static_cast<std::size_t>(slices), result.attempts.size());

  // Every slice's track is a real instance of the run.
  for (const TraceEvent& e : events) {
    if (e.phase != 'X') continue;
    ASSERT_GE(e.tid, 1u);
    ASSERT_LE(static_cast<std::size_t>(e.tid), result.instances.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLevels, TimelineAttemptProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace deco::obs
