// Property-based tests: invariants that must hold across randomized inputs,
// swept with parameterized gtest suites.
#include <gtest/gtest.h>

#include "core/scheduling.hpp"
#include "sim/executor.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/stats.hpp"
#include "workflow/analysis.hpp"
#include "workflow/generators.hpp"
#include "wlog/interp.hpp"

namespace deco {
namespace {

using core::testing::ec2;
using core::testing::store;

// ---------------------------------------------------------------------------
// Evaluator vs simulator consistency: across applications and plans, the
// evaluator's mean makespan must track the simulator's (the estimator is
// deliberately conservative on network, so it may overestimate, but never
// wildly underestimate).
class EvalSimConsistency
    : public ::testing::TestWithParam<
          std::tuple<workflow::AppType, cloud::TypeId, std::uint64_t>> {};

TEST_P(EvalSimConsistency, MeanMakespanTracksSimulator) {
  const auto [app, type, seed] = GetParam();
  util::Rng rng(seed);
  const auto wf = workflow::make_workflow(app, 30, rng);
  const sim::Plan plan = sim::Plan::uniform(wf.task_count(), type);

  core::TaskTimeEstimator estimator(ec2(), store());
  vgpu::SerialBackend backend;
  core::PlanEvaluator evaluator(wf, estimator, backend);
  const double est = evaluator.evaluate(plan, {0.9, 1e12}).mean_makespan;

  util::Rng run_rng(seed + 1);
  std::vector<double> makespans;
  for (int i = 0; i < 20; ++i) {
    makespans.push_back(
        sim::simulate_execution(wf, plan, ec2(), run_rng).makespan);
  }
  const double simulated = util::mean(makespans);
  EXPECT_GE(est, simulated * 0.85) << wf.name();
  EXPECT_LE(est, simulated * 2.5) << wf.name();
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndTypes, EvalSimConsistency,
    ::testing::Combine(
        ::testing::Values(workflow::AppType::kMontage, workflow::AppType::kLigo,
                          workflow::AppType::kEpigenomics,
                          workflow::AppType::kPipeline),
        ::testing::Values(cloud::TypeId{0}, cloud::TypeId{2}),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{2})));

// ---------------------------------------------------------------------------
// Search near-optimality: on tiny workflows the whole plan space can be
// enumerated; the scheduler must land within a small factor of the true
// cheapest feasible plan.
class SearchOptimality : public ::testing::TestWithParam<
                             std::tuple<std::uint64_t, double>> {};

TEST_P(SearchOptimality, WithinFactorOfBruteForce) {
  const auto [seed, deadline_factor] = GetParam();
  util::Rng rng(seed);
  const auto wf = workflow::make_pipeline(3, rng);

  core::TaskTimeEstimator estimator(ec2(), store());
  vgpu::SerialBackend backend;
  core::PlanEvaluator evaluator(wf, estimator, backend);

  const double base =
      evaluator.evaluate(sim::Plan::uniform(3, 0), {0.9, 1e12}).mean_makespan;
  const core::ProbDeadline req{0.9, deadline_factor * base};

  // Brute force over all 4^3 type assignments (no groups).
  double best_cost = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  for (cloud::TypeId a = 0; a < 4; ++a) {
    for (cloud::TypeId b = 0; b < 4; ++b) {
      for (cloud::TypeId c = 0; c < 4; ++c) {
        sim::Plan plan = sim::Plan::uniform(3, 0);
        plan[0].vm_type = a;
        plan[1].vm_type = b;
        plan[2].vm_type = c;
        const auto eval = evaluator.evaluate(plan, req);
        if (eval.feasible && eval.mean_cost < best_cost) {
          best_cost = eval.mean_cost;
          any_feasible = true;
        }
      }
    }
  }

  core::SchedulingProblem problem(wf, estimator, backend);
  core::SchedulingOptions options;
  options.search.max_states = 256;
  const auto result = problem.solve(req, options);
  ASSERT_EQ(result.found, any_feasible);
  if (any_feasible) {
    EXPECT_LE(result.evaluation.mean_cost, best_cost * 1.1 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDeadlines, SearchOptimality,
    ::testing::Combine(::testing::Values(std::uint64_t{3}, std::uint64_t{7},
                                         std::uint64_t{11}),
                       ::testing::Values(0.7, 1.0, 5.0)));

// ---------------------------------------------------------------------------
// Billing invariants on the simulator, across random plans.
class BillingInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BillingInvariants, HoldAcrossRandomPlans) {
  util::Rng rng(GetParam());
  const auto wf = workflow::make_ligo(25, rng);
  sim::Plan plan = sim::Plan::uniform(wf.task_count(), 0);
  for (auto& p : plan.placements) {
    p.vm_type = static_cast<cloud::TypeId>(rng.below(4));
  }
  const auto result = sim::simulate_execution(wf, plan, ec2(), rng);

  // Billed cost is positive, at least one instance-hour of the cheapest
  // type, and bounded by one max-priced hour-rounded instance per task.
  EXPECT_GT(result.instance_cost, 0.0);
  EXPECT_GE(result.instance_cost, 0.044 - 1e-9);
  const double hours = std::ceil(result.makespan / 3600.0);
  EXPECT_LE(result.instance_cost,
            static_cast<double>(wf.task_count()) * hours * 0.35 + 1e-9);
  // Makespan is at least the longest chain of CPU times on the fastest core.
  std::vector<double> weights(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    weights[t] = wf.task(t).cpu_seconds / 2.0;
  }
  EXPECT_GE(result.makespan,
            workflow::critical_path(wf, weights).length * 0.99);
  // Dependencies respected.
  for (const workflow::Edge& e : wf.edges()) {
    EXPECT_GE(result.tasks[e.child].start,
              result.tasks[e.parent].finish - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BillingInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------------
// Unification properties over randomized terms.
wlog::TermPtr random_term(util::Rng& rng, int depth, int& var_counter) {
  const double u = rng.uniform();
  if (depth <= 0 || u < 0.25) {
    return wlog::make_int(static_cast<std::int64_t>(rng.below(5)));
  }
  if (u < 0.45) {
    return wlog::make_atom("a" + std::to_string(rng.below(3)));
  }
  if (u < 0.6) {
    return wlog::make_var(++var_counter, "V" + std::to_string(var_counter));
  }
  std::vector<wlog::TermPtr> args;
  const std::size_t arity = 1 + rng.below(3);
  for (std::size_t i = 0; i < arity; ++i) {
    args.push_back(random_term(rng, depth - 1, var_counter));
  }
  return wlog::make_compound("f" + std::to_string(rng.below(2)),
                             std::move(args));
}

class UnifyProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnifyProperties, TermUnifiesWithItsRenaming) {
  util::Rng rng(GetParam());
  int var_counter = 0;
  const auto t = random_term(rng, 4, var_counter);
  wlog::Bindings bindings;
  std::unordered_map<std::int64_t, wlog::TermPtr> mapping;
  const auto renamed = wlog::rename(t, bindings, mapping);
  EXPECT_TRUE(wlog::unify(t, renamed, bindings)) << wlog::to_string(t);
}

TEST_P(UnifyProperties, UnificationIsSymmetric) {
  util::Rng rng(GetParam() + 100);
  int var_counter = 0;
  const auto a = random_term(rng, 3, var_counter);
  const auto b = random_term(rng, 3, var_counter);
  wlog::Bindings left;
  wlog::Bindings right;
  EXPECT_EQ(wlog::unify(a, b, left), wlog::unify(b, a, right))
      << wlog::to_string(a) << " vs " << wlog::to_string(b);
}

TEST_P(UnifyProperties, UndoRestoresUnboundState) {
  util::Rng rng(GetParam() + 200);
  int var_counter = 0;
  const auto a = random_term(rng, 3, var_counter);
  const auto b = random_term(rng, 3, var_counter);
  wlog::Bindings bindings;
  const std::size_t mark = bindings.mark();
  wlog::unify(a, b, bindings);
  bindings.undo_to(mark);
  for (int v = 1; v <= var_counter; ++v) {
    EXPECT_FALSE(bindings.bound(v));
  }
}

TEST_P(UnifyProperties, CompareIsTotalOrder) {
  util::Rng rng(GetParam() + 300);
  int var_counter = 0;
  wlog::Bindings bindings;
  std::vector<wlog::TermPtr> terms;
  for (int i = 0; i < 6; ++i) {
    terms.push_back(random_term(rng, 3, var_counter));
  }
  for (const auto& x : terms) {
    EXPECT_EQ(wlog::term_compare(x, x, bindings), 0);
    for (const auto& y : terms) {
      EXPECT_EQ(wlog::term_compare(x, y, bindings),
                -wlog::term_compare(y, x, bindings));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnifyProperties,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Histogram invariants across distribution families.
class HistogramProperties
    : public ::testing::TestWithParam<util::Distribution> {};

TEST_P(HistogramProperties, InvariantsHold) {
  const util::Distribution dist = GetParam();
  util::Rng rng(99);
  std::vector<double> samples;
  for (int i = 0; i < 8000; ++i) samples.push_back(dist.sample(rng));
  const auto h = util::Histogram::from_samples(samples, 24);

  double total = 0;
  for (double m : h.masses()) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Centers strictly inside the sample range and ascending.
  EXPECT_GE(h.centers().front(), util::min_of(samples));
  EXPECT_LE(h.centers().back(), util::max_of(samples));
  for (std::size_t i = 1; i < h.bin_count(); ++i) {
    EXPECT_LT(h.centers()[i - 1], h.centers()[i]);
  }
  // Percentiles bounded by extreme centers and cdf monotone.
  EXPECT_GE(h.percentile(0), h.centers().front() - 1e-9);
  EXPECT_LE(h.percentile(100), h.centers().back() + 1e-9);
  double prev = 0;
  for (double c : h.cdf()) {
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
  // The discretized mean tracks the sample mean within a bin width.
  const double bin_width =
      (h.centers().back() - h.centers().front()) /
      static_cast<double>(h.bin_count());
  EXPECT_NEAR(h.mean(), util::mean(samples), bin_width + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Families, HistogramProperties,
    ::testing::Values(util::Distribution::normal(100, 10),
                      util::Distribution::gamma(129.3, 0.79),
                      util::Distribution::gamma(2, 5),
                      util::Distribution::uniform(5, 50),
                      util::Distribution::pareto(1, 1.16)));

// ---------------------------------------------------------------------------
// Escalation invariant of the estimator hierarchy: across randomized DAGs,
// plans and deadlines, the analytic screen must never *accept* a plan that
// the full Monte Carlo evaluator rejects, and never *reject* one full MC
// accepts — any plan the analytic tier is unsure about must have been
// escalated instead.  This is the contract that makes Tier 0 a pure
// optimization: the guard band absorbs the moment-matching error, so a
// screened verdict always agrees with what sampling would have said.
class EscalationInvariant
    : public ::testing::TestWithParam<
          std::tuple<workflow::AppType, std::uint64_t>> {};

TEST_P(EscalationInvariant, AnalyticVerdictNeverContradictsFullMc) {
  const auto [app, seed] = GetParam();
  util::Rng rng(seed);
  const auto wf = workflow::make_workflow(app, 24 + rng.below(16), rng);

  core::TaskTimeEstimator estimator(ec2(), store());
  vgpu::SerialBackend backend;
  core::EvalOptions opt;
  opt.mc_iterations = 600;
  opt.cost_model = core::CostModel::kBilledHours;
  core::PlanEvaluator mc(wf, estimator, backend, opt);
  opt.estimator = core::EstimatorMode::kAuto;
  core::PlanEvaluator screened(wf, estimator, backend, opt);

  // Random plans around random placements, some with co-scheduling groups.
  std::vector<sim::Plan> plans;
  const std::size_t types = ec2().type_count();
  for (int p = 0; p < 12; ++p) {
    sim::Plan plan = sim::Plan::uniform(
        wf.task_count(), static_cast<cloud::TypeId>(rng.below(types)));
    for (std::size_t t = 0; t < wf.task_count(); ++t) {
      if (rng.below(4) == 0) {
        plan[t].vm_type = static_cast<cloud::TypeId>(rng.below(types));
      }
      if (rng.below(8) == 0) {
        plan[t].group = static_cast<std::int32_t>(rng.below(3));
      }
    }
    plans.push_back(std::move(plan));
  }
  // Deadlines spanning clearly-infeasible through clearly-feasible, so all
  // three verdicts occur across the sweep.
  const double base =
      mc.evaluate(plans.front(), {0.5, 1e12}).mean_makespan;
  for (const double factor : {0.4, 0.8, 1.0, 1.2, 2.5}) {
    const core::ProbDeadline req{0.9, base * factor};
    const auto verdicts = screened.evaluate_batch_screened(plans, req);
    const auto truth = mc.evaluate_batch(plans, req);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      if (verdicts[i].verdict == core::ScreenVerdict::kAccept) {
        EXPECT_TRUE(truth[i].feasible)
            << wf.name() << " factor " << factor << " plan " << i
            << ": analytic accepted what full MC rejects";
      } else if (verdicts[i].verdict == core::ScreenVerdict::kReject) {
        EXPECT_FALSE(truth[i].feasible)
            << wf.name() << " factor " << factor << " plan " << i
            << ": analytic rejected what full MC accepts";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DagsAndSeeds, EscalationInvariant,
    ::testing::Combine(
        ::testing::Values(workflow::AppType::kMontage, workflow::AppType::kLigo,
                          workflow::AppType::kEpigenomics,
                          workflow::AppType::kPipeline),
        ::testing::Values(std::uint64_t{3}, std::uint64_t{7},
                          std::uint64_t{31})));

}  // namespace
}  // namespace deco
