#include "vgpu/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

namespace deco::vgpu {
namespace {

TEST(BackendTest, FactoryProducesBothBackends) {
  EXPECT_EQ(make_backend("serial")->name(), "serial");
  EXPECT_EQ(make_backend("vgpu")->name(), "vgpu");
  EXPECT_EQ(make_backend("unknown")->name(), "serial");  // safe default
}

TEST(BackendTest, AllBlocksExecute) {
  for (const char* name : {"serial", "vgpu"}) {
    auto backend = make_backend(name, 4);
    std::vector<std::atomic<int>> hits(37);
    LaunchConfig config;
    config.blocks = hits.size();
    backend->launch(config, [&](BlockContext& ctx) {
      hits[ctx.block_index()].fetch_add(1);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << name;
  }
}

TEST(BackendTest, AllLanesExecute) {
  auto backend = make_backend("vgpu", 2);
  LaunchConfig config;
  config.blocks = 4;
  config.lanes_per_block = 16;
  std::vector<std::atomic<int>> lane_counts(4);
  backend->launch(config, [&](BlockContext& ctx) {
    ctx.for_each_lane([&](std::size_t, util::Rng&) {
      lane_counts[ctx.block_index()].fetch_add(1);
    });
  });
  for (const auto& c : lane_counts) EXPECT_EQ(c.load(), 16);
}

TEST(BackendTest, SharedMemoryZeroInitialized) {
  auto backend = make_backend("serial");
  LaunchConfig config;
  config.blocks = 2;
  config.shared_doubles = 8;
  backend->launch(config, [&](BlockContext& ctx) {
    for (double v : ctx.shared()) EXPECT_DOUBLE_EQ(v, 0.0);
  });
}

TEST(BackendTest, SharedMemoryIsPerBlock) {
  auto backend = make_backend("vgpu", 4);
  LaunchConfig config;
  config.blocks = 8;
  config.shared_doubles = 4;
  std::vector<double> first(config.blocks, -1);
  backend->launch(config, [&](BlockContext& ctx) {
    ctx.shared()[0] = static_cast<double>(ctx.block_index());
    first[ctx.block_index()] = ctx.shared()[0];
  });
  for (std::size_t b = 0; b < config.blocks; ++b) {
    EXPECT_DOUBLE_EQ(first[b], static_cast<double>(b));
  }
}

TEST(BackendTest, SerialAndVgpuAgreeExactly) {
  // Same seed, same kernel => bitwise-identical results across backends,
  // which is what makes the speed-up comparison apples-to-apples.
  auto run = [](ComputeBackend& backend) {
    LaunchConfig config;
    config.blocks = 6;
    config.lanes_per_block = 32;
    config.shared_doubles = 32;
    config.seed = 1234;
    std::vector<double> sums(config.blocks, 0);
    backend.launch(config, [&](BlockContext& ctx) {
      auto shared = ctx.shared();
      ctx.for_each_lane([&](std::size_t lane, util::Rng& rng) {
        shared[lane] = rng.uniform();
      });
      sums[ctx.block_index()] =
          std::accumulate(shared.begin(), shared.end(), 0.0);
    });
    return sums;
  };
  SerialBackend serial;
  VirtualGpuBackend vgpu(4);
  EXPECT_EQ(run(serial), run(vgpu));
}

TEST(BackendTest, LaneRngsAreDecorrelated) {
  SerialBackend backend;
  LaunchConfig config;
  config.blocks = 1;
  config.lanes_per_block = 64;
  config.shared_doubles = 64;
  std::vector<double> values;
  backend.launch(config, [&](BlockContext& ctx) {
    ctx.for_each_lane([&](std::size_t lane, util::Rng& rng) {
      ctx.shared()[lane] = rng.uniform();
    });
    values.assign(ctx.shared().begin(), ctx.shared().end());
  });
  // All lane draws distinct.
  std::sort(values.begin(), values.end());
  EXPECT_EQ(std::adjacent_find(values.begin(), values.end()), values.end());
}

TEST(BackendTest, MonteCarloPiEstimate) {
  // A classic kernel: each block estimates pi, host averages the blocks.
  VirtualGpuBackend backend(4);
  LaunchConfig config;
  config.blocks = 16;
  config.lanes_per_block = 2048;
  config.shared_doubles = 1;
  std::vector<double> inside(config.blocks, 0);
  backend.launch(config, [&](BlockContext& ctx) {
    double count = 0;
    ctx.for_each_lane([&](std::size_t, util::Rng& rng) {
      const double x = rng.uniform();
      const double y = rng.uniform();
      if (x * x + y * y <= 1.0) count += 1;
    });
    inside[ctx.block_index()] = count;
  });
  double total = std::accumulate(inside.begin(), inside.end(), 0.0);
  const double pi =
      4.0 * total / (config.blocks * config.lanes_per_block);
  EXPECT_NEAR(pi, 3.14159, 0.05);
}

TEST(BackendTest, PreCancelledLaunchThrowsOnBothBackends) {
  for (const char* name : {"serial", "vgpu"}) {
    auto backend = make_backend(name, 2);
    util::CancelToken token;
    token.cancel();
    LaunchConfig config;
    config.blocks = 64;
    config.cancel = &token;
    std::atomic<int> ran{0};
    EXPECT_THROW(
        backend->launch(config, [&](BlockContext&) { ran.fetch_add(1); }),
        util::BudgetExhaustedError)
        << name;
    EXPECT_EQ(ran.load(), 0) << name;
    // The backend stays usable after a cancelled launch.
    config.cancel = nullptr;
    backend->launch(config, [&](BlockContext&) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 64) << name;
  }
}

TEST(BackendTest, MidLaunchCancelCutsSerialBetweenBlocks) {
  auto backend = make_backend("serial");
  util::CancelToken token;
  LaunchConfig config;
  config.blocks = 64;
  config.cancel = &token;
  std::atomic<int> ran{0};
  EXPECT_THROW(backend->launch(config,
                               [&](BlockContext&) {
                                 token.cancel();
                                 ran.fetch_add(1);
                               }),
               util::BudgetExhaustedError);
  // The serial backend checks between blocks: exactly one block ran.
  EXPECT_EQ(ran.load(), 1);
}

TEST(BackendTest, NullCancelLeavesLaunchesBitIdentical) {
  // A never-firing cancel pointer must not perturb kernel results.
  auto run = [](const util::CancelToken* cancel) {
    VirtualGpuBackend backend(3);
    LaunchConfig config;
    config.blocks = 16;
    config.lanes_per_block = 32;
    config.cancel = cancel;
    std::vector<double> sums(config.blocks, 0);
    backend.launch(config, [&](BlockContext& ctx) {
      double acc = 0;
      ctx.for_each_lane([&](std::size_t, util::Rng& rng) {
        acc += rng.uniform();
      });
      sums[ctx.block_index()] = acc;
    });
    return sums;
  };
  util::CancelToken idle;
  EXPECT_EQ(run(nullptr), run(&idle));
}

}  // namespace
}  // namespace deco::vgpu
