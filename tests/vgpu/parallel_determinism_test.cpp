// The tentpole invariant of the parallel substrate: the work-stealing vgpu
// backend produces bit-identical PlanEvaluations to the serial backend at
// *any* worker count, for every cost model.  Block seeds derive from the
// plan payload and lane streams from the block stream, so neither batch
// composition nor participant scheduling can leak into results.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "sim/plan.hpp"
#include "tests/core/test_fixtures.hpp"
#include "util/rng.hpp"
#include "vgpu/device.hpp"
#include "workflow/generators.hpp"

namespace deco::core {
namespace {

using testing::ec2;
using testing::store;

// Bitwise equality: the contract is "bit-identical", not "close".
void expect_bitwise_equal(const PlanEvaluation& a, const PlanEvaluation& b,
                          const char* context) {
  EXPECT_EQ(std::memcmp(&a.mean_cost, &b.mean_cost, sizeof(double)), 0)
      << context << ": mean_cost " << a.mean_cost << " vs " << b.mean_cost;
  EXPECT_EQ(std::memcmp(&a.mean_makespan, &b.mean_makespan, sizeof(double)), 0)
      << context << ": mean_makespan " << a.mean_makespan << " vs "
      << b.mean_makespan;
  EXPECT_EQ(
      std::memcmp(&a.makespan_quantile, &b.makespan_quantile, sizeof(double)),
      0)
      << context << ": makespan_quantile";
  EXPECT_EQ(std::memcmp(&a.deadline_prob, &b.deadline_prob, sizeof(double)), 0)
      << context << ": deadline_prob";
  EXPECT_EQ(a.feasible, b.feasible) << context << ": feasible";
}

std::vector<sim::Plan> make_plans(std::size_t tasks, std::size_t count,
                                  std::size_t types) {
  std::vector<sim::Plan> plans;
  util::Rng rng(17);
  for (std::size_t i = 0; i < count; ++i) {
    sim::Plan plan = sim::Plan::uniform(tasks, 0);
    for (std::size_t t = 0; t < tasks; ++t) {
      plan[t].vm_type = static_cast<cloud::TypeId>(rng.below(types));
      // A few grouped placements so billed-hours grouping is exercised.
      if (rng.chance(0.3)) plan[t].group = static_cast<std::int32_t>(t % 3);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

TEST(ParallelDeterminismTest, VgpuMatchesSerialAtEveryWorkerCount) {
  util::Rng rng(5);
  const auto wf = workflow::make_montage(1, rng);
  const auto plans = make_plans(wf.task_count(), 12, ec2().type_count());
  const ProbDeadline req{0.9, 3000};

  std::vector<std::size_t> worker_counts{1, 2};
  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2) worker_counts.push_back(hw);

  for (CostModel model : {CostModel::kProrated, CostModel::kBilledHours}) {
    EvalOptions opt;
    opt.mc_iterations = 200;
    opt.cost_model = model;

    TaskTimeEstimator serial_est(ec2(), store());
    vgpu::SerialBackend serial_backend;
    PlanEvaluator serial_eval(wf, serial_est, serial_backend, opt);
    const auto expected = serial_eval.evaluate_batch(plans, req);

    for (std::size_t workers : worker_counts) {
      TaskTimeEstimator est(ec2(), store());
      vgpu::VirtualGpuBackend backend(workers);
      PlanEvaluator eval(wf, est, backend, opt);
      const auto got = eval.evaluate_batch(plans, req);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        const std::string context =
            "model=" + std::to_string(static_cast<int>(model)) +
            " workers=" + std::to_string(workers) +
            " plan=" + std::to_string(i);
        expect_bitwise_equal(expected[i], got[i], context.c_str());
      }
    }
  }
}

TEST(ParallelDeterminismTest, SinglePlanMatchesBatchedEvaluation) {
  // Block seeds are payload-derived, so a plan scores identically whether
  // evaluated alone or inside a batch, serial or parallel.
  util::Rng rng(5);
  const auto wf = workflow::make_montage(1, rng);
  const auto plans = make_plans(wf.task_count(), 6, ec2().type_count());
  const ProbDeadline req{0.9, 3000};
  EvalOptions opt;
  opt.mc_iterations = 150;

  TaskTimeEstimator est(ec2(), store());
  vgpu::VirtualGpuBackend backend(2);
  PlanEvaluator eval(wf, est, backend, opt);
  const auto batched = eval.evaluate_batch(plans, req);
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const auto solo = eval.evaluate(plans[i], req);
    expect_bitwise_equal(batched[i], solo,
                         ("solo-vs-batch plan=" + std::to_string(i)).c_str());
  }
}

TEST(ParallelDeterminismTest, RepeatedLaunchesAreStable) {
  // Context reuse across launches must not leak state between evaluations.
  util::Rng rng(9);
  const auto wf = workflow::make_cybershake(20, rng);
  const auto plans = make_plans(wf.task_count(), 8, ec2().type_count());
  const ProbDeadline req{0.9, 3000};
  EvalOptions opt;
  opt.mc_iterations = 100;

  TaskTimeEstimator est(ec2(), store());
  vgpu::VirtualGpuBackend backend(3);
  PlanEvaluator eval(wf, est, backend, opt);
  const auto first = eval.evaluate_batch(plans, req);
  for (int round = 0; round < 3; ++round) {
    const auto again = eval.evaluate_batch(plans, req);
    for (std::size_t i = 0; i < plans.size(); ++i) {
      expect_bitwise_equal(first[i], again[i],
                           ("round=" + std::to_string(round) +
                            " plan=" + std::to_string(i))
                               .c_str());
    }
  }
}

}  // namespace
}  // namespace deco::core
