#include "vgpu/reduce.hpp"

#include <gtest/gtest.h>

#include "vgpu/device.hpp"

namespace deco::vgpu {
namespace {

TEST(BlockReduceTest, SumMeanMaxMinCount) {
  const std::vector<double> shared{3, 1, 4, 1, 5};
  EXPECT_DOUBLE_EQ(block_reduce_sum(shared, 5), 14.0);
  EXPECT_DOUBLE_EQ(block_reduce_mean(shared, 5), 2.8);
  EXPECT_DOUBLE_EQ(block_reduce_max(shared, 5), 5.0);
  EXPECT_DOUBLE_EQ(block_reduce_min(shared, 5), 1.0);
  EXPECT_EQ(block_count_within(shared, 5, 3.0), 3u);
}

TEST(BlockReduceTest, PrefixOnly) {
  const std::vector<double> shared{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(block_reduce_sum(shared, 2), 30.0);
  EXPECT_DOUBLE_EQ(block_reduce_max(shared, 3), 30.0);
}

TEST(BlockReduceTest, EmptyIsSafe) {
  const std::vector<double> shared;
  EXPECT_DOUBLE_EQ(block_reduce_sum(shared, 8), 0.0);
  EXPECT_DOUBLE_EQ(block_reduce_mean(shared, 8), 0.0);
  EXPECT_EQ(block_count_within(shared, 8, 1.0), 0u);
}

TEST(BlockReduceTest, NClampedToSharedSize) {
  const std::vector<double> shared{1, 2};
  EXPECT_DOUBLE_EQ(block_reduce_sum(shared, 100), 3.0);
}

TEST(BlockReduceTest, InsideKernelDeadlineCount) {
  // The paper's pattern end-to-end: lanes sample a value into shared memory,
  // the block reduces a deadline count.
  VirtualGpuBackend backend(2);
  LaunchConfig config;
  config.blocks = 4;
  config.lanes_per_block = 256;
  config.shared_doubles = 256;
  config.seed = 7;
  std::vector<double> fractions(config.blocks, 0);
  backend.launch(config, [&](BlockContext& ctx) {
    auto shared = ctx.shared();
    ctx.for_each_lane([&](std::size_t lane, util::Rng& rng) {
      shared[lane] = rng.uniform();  // "makespan" sample in [0,1)
    });
    const auto within =
        block_count_within(shared, ctx.lane_count(), 0.25);
    fractions[ctx.block_index()] =
        static_cast<double>(within) / static_cast<double>(ctx.lane_count());
  });
  for (double f : fractions) EXPECT_NEAR(f, 0.25, 0.08);
}

}  // namespace
}  // namespace deco::vgpu
