#include "baselines/migration_heuristic.hpp"

#include <gtest/gtest.h>

#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::baselines {
namespace {

using core::testing::ec2;
using core::testing::store;

core::MigrationWorkflowState make_state(const workflow::Workflow& wf,
                                         cloud::RegionId region) {
  core::MigrationWorkflowState s;
  s.wf = &wf;
  s.finished.assign(wf.task_count(), false);
  s.region = region;
  s.vm_type = 1;
  s.deadline_s = 1e7;
  return s;
}

TEST(MigrationHeuristicTest, OfflinePlanPicksCheapestRegion) {
  util::Rng rng(1);
  const auto wf = workflow::make_pipeline(5, rng);
  core::TaskTimeEstimator est(ec2(), store());
  MigrationHeuristic heuristic(ec2(), est);
  std::vector<core::MigrationWorkflowState> states{make_state(wf, 1),
                                                   make_state(wf, 0)};
  const auto plan = heuristic.offline_plan(states);
  EXPECT_EQ(plan[0], 0u);  // Singapore -> us-east
  EXPECT_EQ(plan[1], 0u);  // already cheapest
}

TEST(MigrationHeuristicTest, PolicyFollowsOfflinePlanInitially) {
  util::Rng rng(2);
  const auto wf = workflow::make_pipeline(5, rng);
  core::TaskTimeEstimator est(ec2(), store());
  MigrationHeuristic heuristic(ec2(), est);
  std::vector<core::MigrationWorkflowState> states{make_state(wf, 1)};
  const auto targets = heuristic(states);
  EXPECT_EQ(targets[0], 0u);
}

TEST(MigrationHeuristicTest, LateWorkflowCancelsMigration) {
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(5, rng);
  core::TaskTimeEstimator est(ec2(), store());
  MigrationHeuristicOptions opt;
  opt.threshold = 0.5;
  MigrationHeuristic heuristic(ec2(), est, opt);
  auto s = make_state(wf, 1);
  // Half the tasks finished, but observed time far beyond the estimate.
  s.finished[0] = true;
  s.finished[1] = true;
  double expected = est.mean_time(wf, 0, 1) + est.mean_time(wf, 1, 1);
  s.elapsed_s = expected * 3;
  std::vector<core::MigrationWorkflowState> states{s};
  heuristic(states);  // first call initializes the offline plan
  const auto targets = heuristic(states);
  EXPECT_EQ(targets[0], 1u);  // stays put
}

TEST(MigrationHeuristicTest, OnTimeWorkflowMigrates) {
  util::Rng rng(4);
  const auto wf = workflow::make_pipeline(5, rng);
  core::TaskTimeEstimator est(ec2(), store());
  MigrationHeuristic heuristic(ec2(), est);
  auto s = make_state(wf, 1);
  s.finished[0] = true;
  s.elapsed_s = est.mean_time(wf, 0, 1);  // exactly on estimate
  std::vector<core::MigrationWorkflowState> states{s};
  const auto targets = heuristic(states);
  EXPECT_EQ(targets[0], 0u);
}

TEST(MigrationHeuristicTest, ScenarioEndToEnd) {
  util::Rng rng(5);
  const auto wf1 = workflow::make_pipeline(6, rng);
  const auto wf2 = workflow::make_pipeline(6, rng);
  core::TaskTimeEstimator est(ec2(), store());
  MigrationHeuristic heuristic(ec2(), est);
  std::vector<core::MigrationWorkflowState> states{make_state(wf1, 1),
                                                   make_state(wf2, 0)};
  util::Rng scenario_rng(6);
  const auto report = core::run_followcost_scenario(
      states, ec2(), std::ref(heuristic), scenario_rng);
  EXPECT_GT(report.total_cost, 0.0);
  EXPECT_GE(report.migrations, 1u);  // the Singapore workflow moves
}

}  // namespace
}  // namespace deco::baselines
