#include "baselines/autoscaling.hpp"

#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/scheduling.hpp"
#include "tests/core/test_fixtures.hpp"
#include "workflow/generators.hpp"

namespace deco::baselines {
namespace {

using core::testing::ec2;
using core::testing::store;

TEST(AutoscalingTest, LooseDeadlinePicksPerTaskCostMinimum) {
  util::Rng rng(1);
  const auto wf = workflow::make_montage(1, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  const auto r = autoscaling.solve(1e7);
  // With subdeadlines this loose, every type qualifies; the heuristic must
  // take the per-task cost minimizer (argmin over types of time x price).
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    const double chosen_cost = est.mean_time(wf, t, r.plan[t].vm_type) *
                               ec2().type(r.plan[t].vm_type).price_per_hour;
    for (cloud::TypeId v = 0; v < ec2().type_count(); ++v) {
      const double cost =
          est.mean_time(wf, t, v) * ec2().type(v).price_per_hour;
      EXPECT_LE(chosen_cost, cost * 1.0001) << "task " << t << " type " << v;
    }
  }
}

TEST(AutoscalingTest, TightDeadlineScalesUp) {
  util::Rng rng(2);
  const auto wf = workflow::make_montage(1, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  // First measure the cheap plan's horizon via the loose plan.
  core::TaskTimeEstimator est2(ec2(), store());
  double cheap_total = 0;
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    cheap_total = std::max(cheap_total, est2.mean_time(wf, t, 0));
  }
  const auto tight = autoscaling.solve(cheap_total * 2);
  std::size_t promoted = 0;
  for (const auto& p : tight.plan.placements) {
    if (p.vm_type > 0) ++promoted;
  }
  EXPECT_GT(promoted, 0u);
}

TEST(AutoscalingTest, SubdeadlinesSumToDeadlineOverLevels) {
  util::Rng rng(3);
  const auto wf = workflow::make_pipeline(5, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  const double deadline = 5000;
  const auto r = autoscaling.solve(deadline);
  // For a pipeline every task is its own level: subdeadlines sum to D.
  double total = 0;
  for (double d : r.subdeadlines) total += d;
  EXPECT_NEAR(total, deadline, 1.0);
}

TEST(AutoscalingTest, TaskMeetsItsSubdeadlineWhenPossible) {
  util::Rng rng(4);
  const auto wf = workflow::make_pipeline(4, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  const auto r = autoscaling.solve(4 * 200.0);
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    const double time = est.mean_time(wf, t, r.plan[t].vm_type);
    const double fastest =
        est.mean_time(wf, t, static_cast<cloud::TypeId>(ec2().type_count() - 1));
    // Either within the subdeadline or already on the fastest type.
    EXPECT_TRUE(time <= r.subdeadlines[t] * 1.001 ||
                r.plan[t].vm_type == ec2().type_count() - 1)
        << "task " << t << " time " << time << " sub " << r.subdeadlines[t]
        << " fastest " << fastest;
  }
}

TEST(AutoscalingTest, ConsolidationGroupsSameTypePairs) {
  util::Rng rng(5);
  const auto wf = workflow::make_pipeline(6, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  AutoscalingOptions opt;
  opt.consolidate = true;
  const auto r = autoscaling.solve(1e7, opt);
  // Loose deadline: all tasks on the same type; the whole chain shares one
  // group.
  for (const auto& p : r.plan.placements) EXPECT_GE(p.group, 0);
}

TEST(AutoscalingTest, NoConsolidationLeavesUngrouped) {
  util::Rng rng(6);
  const auto wf = workflow::make_pipeline(6, rng);
  core::TaskTimeEstimator est(ec2(), store());
  Autoscaling autoscaling(wf, est);
  AutoscalingOptions opt;
  opt.consolidate = false;
  const auto r = autoscaling.solve(1e7, opt);
  for (const auto& p : r.plan.placements) EXPECT_EQ(p.group, sim::kNoGroup);
}

TEST(AutoscalingTest, DecoBeatsAutoscalingOnCost) {
  // The headline comparison (Fig. 8's direction): with the same percentile-
  // adjusted deadline, Deco's searched plan should not cost more than
  // Autoscaling's heuristic plan.
  util::Rng rng(7);
  const auto wf = workflow::make_montage(1, rng);
  core::TaskTimeEstimator est(ec2(), store());
  vgpu::VirtualGpuBackend backend(2);
  core::SchedulingProblem deco(wf, est, backend);
  core::PlanEvaluator evaluator(wf, est, backend);
  const auto all_small =
      evaluator.evaluate(deco.initial_plan(), {0.9, 1e9});
  const core::ProbDeadline req{0.96, 0.8 * all_small.mean_makespan};

  Autoscaling autoscaling(wf, est);
  const auto as_plan = autoscaling.solve(req.deadline_s);
  const auto deco_result = deco.solve(req);
  ASSERT_TRUE(deco_result.found);
  EXPECT_TRUE(deco_result.evaluation.feasible);

  const auto as_eval = evaluator.evaluate(as_plan.plan, req);
  // Cost is only comparable between plans that honour the deadline; the
  // heuristic sometimes returns an infeasible (cheap-looking) plan here.
  if (as_eval.feasible) {
    EXPECT_LE(deco_result.evaluation.mean_cost, as_eval.mean_cost * 1.05);
  }
}

}  // namespace
}  // namespace deco::baselines
