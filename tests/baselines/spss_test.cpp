#include "baselines/spss.hpp"

#include <gtest/gtest.h>

#include "core/ensemble_planner.hpp"
#include "tests/core/test_fixtures.hpp"

namespace deco::baselines {
namespace {

using core::testing::ec2;
using core::testing::store;

workflow::Ensemble ensemble(std::size_t members, double budget,
                            double deadline) {
  util::Rng rng(11);
  workflow::EnsembleOptions opt;
  opt.app = workflow::AppType::kLigo;
  opt.type = workflow::EnsembleType::kConstant;
  opt.num_workflows = members;
  opt.sizes = {20};
  workflow::Ensemble e = workflow::make_ensemble(opt, rng);
  e.budget = budget;
  for (auto& m : e.members) {
    m.deadline_s = deadline;
    m.deadline_q = 90;
  }
  return e;
}

TEST(SpssTest, GenerousBudgetAdmitsAll) {
  const auto e = ensemble(4, 1e9, 1e7);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto r = spss.plan(e);
  for (bool a : r.admitted) EXPECT_TRUE(a);
  EXPECT_DOUBLE_EQ(r.score, e.max_score());
}

TEST(SpssTest, ZeroBudgetAdmitsNone) {
  const auto e = ensemble(4, 0, 1e7);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto r = spss.plan(e);
  for (bool a : r.admitted) EXPECT_FALSE(a);
}

TEST(SpssTest, AdmitsInPriorityOrder) {
  auto e = ensemble(5, 1e9, 1e7);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto probe = spss.plan(e);
  // Budget for ~2 members.
  e.budget = probe.member_costs[0] + probe.member_costs[1] + 1e-9;
  const auto r = spss.plan(e);
  EXPECT_TRUE(r.admitted[0]);
  EXPECT_TRUE(r.admitted[1]);
  EXPECT_FALSE(r.admitted[4]);
}

TEST(SpssTest, InfeasibleDeadlineSkipsWorkflow) {
  const auto e = ensemble(3, 1e9, 0.001);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto r = spss.plan(e);
  for (bool a : r.admitted) EXPECT_FALSE(a);
  EXPECT_DOUBLE_EQ(r.total_cost, 0.0);
}

TEST(SpssTest, BudgetNeverExceeded) {
  auto e = ensemble(6, 1e9, 1e7);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto probe = spss.plan(e);
  e.budget = 0.4 * probe.total_cost;
  const auto r = spss.plan(e);
  EXPECT_LE(r.total_cost, e.budget + 1e-9);
}

TEST(SpssTest, DecoScoresAtLeastSpss) {
  // Fig. 9's direction: under mid-range budgets Deco completes at least as
  // many (weighted) workflows as SPSS.
  auto e = ensemble(6, 1e9, 1e7);
  vgpu::SerialBackend backend;
  Spss spss(ec2(), store(), backend);
  const auto probe = spss.plan(e);
  e.budget = 0.5 * probe.total_cost;

  const auto spss_result = spss.plan(e);
  core::EnsemblePlanner planner(ec2(), store(), backend);
  core::EnsemblePlanOptions popt;
  popt.per_workflow.search.max_states = 16;
  popt.per_workflow.search.stale_wave_limit = 2;
  const auto deco_result = planner.plan(e, popt);
  EXPECT_GE(deco_result.score, spss_result.score - 1e-9);
}

}  // namespace
}  // namespace deco::baselines
