// Regional failure weather: correlated fault storms per (region, window).
//
// Every fault source the simulator had so far was independent per draw —
// capacity outages per (type, region), spot interruptions i.i.d. per
// instance, crashes i.i.d. per instance.  Real cloud incidents are not
// independent: an AZ power event or a spot-market demand surge takes out
// co-located capacity *together*.  RegionalWeather models that correlation
// as a seeded storm process per region; while a storm is active in a
// region,
//
//   * capacity for *every* instance type in the region is denied at once
//     (a blackout, drawn per storm with probability `capacity_hazard` —
//     the region-level hazard multiplier on top of the per-(type, region)
//     outage windows),
//   * spot instances in the region share one reclamation draw per storm,
//     so co-located spot capacity disappears synchronously,
//   * instance crash rates are multiplied by `crash_hazard`
//     (threaded into sim::FailureModel::sample_uptime by the executor),
//   * the spot price process can be overloaded with a per-step demand
//     spike (SpotPriceTrace::simulate's weather overload).
//
// Determinism contract (same as ControlPlane / sim::FailureModel): the
// process owns per-region RNG streams derived from one seed, storm windows
// are generated lazily in time order and *recorded*, so every query is a
// pure function of (seed, region, time) regardless of query order — and a
// disabled model (storm_mtbs_s <= 0) consumes no entropy and leaves every
// trace bit-identical to a weatherless run.  All clocks are virtual
// simulator time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "cloud/instance_type.hpp"
#include "util/rng.hpp"

namespace deco::cloud {

struct RegionalWeatherOptions {
  /// Mean time between storms per region, seconds.  <= 0 disables the
  /// whole process (no entropy consumed, bit-identity preserved).
  double storm_mtbs_s = 0;
  /// Mean storm duration, seconds (exponential).
  double storm_duration_s = 1800;
  /// Probability that a storm blacks out the region's capacity: during a
  /// blackout storm every acquire in the region is denied regardless of
  /// type.  This is the region-level hazard multiplier layered on the
  /// per-(type, region) outage windows.
  double capacity_hazard = 1.0;
  /// Instance crash-rate multiplier while a storm is active in the
  /// instance's region (>= 1; 1 = storms do not affect crashes).
  double crash_hazard = 4.0;
  /// Storms synchronously reclaim co-located spot instances: each storm
  /// draws one shared reclamation time inside its window, and every spot
  /// instance acquired before it in the region is reclaimed there.
  bool spot_storms = true;
  /// Per-region multiplier on the storm *arrival* rate (empty = 1.0 for
  /// all regions); region r sees mean inter-arrival
  /// storm_mtbs_s / region_hazard[r].
  std::vector<double> region_hazard;
  /// Force the first storm in every region to already be in progress at
  /// t=0 (the gap draw is consumed but the window starts at 0) — models a
  /// pre-existing incident, e.g. the CLI's "blackout" profile.
  bool initial_storm = false;

  bool enabled() const { return storm_mtbs_s > 0; }
  double hazard_for(RegionId region) const {
    if (region >= region_hazard.size()) return 1.0;
    return region_hazard[region] > 0 ? region_hazard[region] : 1.0;
  }
};

/// One storm in one region.
struct StormWindow {
  double start = 0;
  double end = 0;
  /// The storm's shared spot-reclamation instant (inside [start, end]).
  double reclaim_at = 0;
  /// Storm denies every acquire in the region (drawn per storm with
  /// probability RegionalWeatherOptions::capacity_hazard).
  bool blackout = true;
};

class RegionalWeather {
 public:
  /// Disabled process: every query is a cheap constant.
  RegionalWeather() = default;
  RegionalWeather(std::size_t regions, const RegionalWeatherOptions& options,
                  std::uint64_t seed);

  bool enabled() const { return options_.enabled() && !streams_.empty(); }
  const RegionalWeatherOptions& options() const { return options_; }

  /// Is any storm active in `region` at `now`?
  bool in_storm(RegionId region, double now);

  /// Is `region` under a capacity blackout at `now`?  (A storm with the
  /// blackout flag; acquires of every type are denied.)
  bool capacity_denied(RegionId region, double now);

  /// Crash-rate multiplier in force for an instance acquired in `region`
  /// at `now`: crash_hazard inside a storm, 1.0 otherwise.
  double crash_multiplier(RegionId region, double now);

  /// Earliest storm still relevant at/after `from` (ongoing counts), or
  /// nullopt when the process is disabled.
  std::optional<StormWindow> next_storm(RegionId region, double from);

  /// The shared regional spot-reclamation instant that will hit an
  /// instance acquired at `acquired_at` (the first storm reclaim draw at
  /// or after it), or nullopt when spot storms are off.
  std::optional<double> spot_reclaim_after(RegionId region,
                                           double acquired_at);

 private:
  struct RegionStream {
    util::Rng rng;
    std::vector<StormWindow> windows;  ///< generated lazily, time-ordered
  };

  /// Appends windows until the last one ends strictly after `t`.
  void ensure_until(RegionId region, double t);
  void append_window(RegionId region);
  const StormWindow* window_at(RegionId region, double now);

  RegionalWeatherOptions options_;
  std::vector<RegionStream> streams_;
};

}  // namespace deco::cloud
