// Simulated IaaS control plane: the API layer between the execution engine
// and the cloud's capacity.
//
// The seed simulator assumed acquire/terminate always succeed instantly —
// an implausibly reliable control plane.  Real IaaS APIs throttle
// (RequestLimitExceeded), run out of per-type capacity
// (InsufficientInstanceCapacity), return transient 5xx errors, serve
// eventually-consistent describe results, and interrupt spot capacity with
// an advance notice.  ControlPlane models all of these deterministically
// from a single seed, and layers the resilience machinery a production
// client needs on top:
//
//   * capped exponential backoff with seeded full jitter (util::Backoff),
//   * a per-operation circuit breaker (closed / open / half-open, state
//     exported through obs gauges),
//   * graceful degradation: when capacity for the requested instance type
//     stays exhausted, provision() falls back to alternate types and
//     regions before giving up.
//
// Determinism contract (same as sim::FailureModel): the control plane owns
// its own RNG streams, seeded from ControlPlaneOptions::seed, and every
// draw is gated on its fault class being active — so with the null fault
// model no entropy is consumed, every call succeeds instantly, and callers
// reproduce today's traces bit for bit.  All clocks are *virtual* simulator
// time, monotonically advanced by the caller.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/weather.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace deco::cloud {

/// API operations the control plane mediates.
enum class ApiOp : std::uint8_t { kAcquire = 0, kTerminate = 1, kDescribe = 2 };
inline constexpr std::size_t kApiOpCount = 3;
const char* api_op_name(ApiOp op);

/// Outcome of one raw API call.
enum class ApiErrorCode : std::uint8_t {
  kOk = 0,
  kThrottled,             ///< RequestLimitExceeded (token bucket empty)
  kInsufficientCapacity,  ///< per-type capacity exhausted (acquire only)
  kTransient,             ///< 5xx-style internal error
};
const char* api_error_name(ApiErrorCode code);

/// Thrown by callers (the simulator executor, the CLI) when provisioning
/// fails even after retries and fallback — the cloud genuinely has nothing
/// to offer.  Mapped to its own exit code by run_cli.
class ProvisioningExhaustedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ApiFaultOptions {
  /// Token-bucket rate limit shared by all mutating calls.  <= 0 disables
  /// throttling; the bucket starts full at `throttle_burst` tokens and
  /// refills at `throttle_rate_per_s`.
  double throttle_rate_per_s = 0;
  double throttle_burst = 8;

  /// Per-(type, region) capacity exhaustion: outages arrive per (type,
  /// region) pair as a Poisson process with mean inter-arrival
  /// `capacity_mtbo_s` (mean time between outages; <= 0 disables) and
  /// exponential mean duration `capacity_outage_s`.  During an outage every
  /// acquire of that type *in that region* is denied with
  /// kInsufficientCapacity — the same type stays acquirable elsewhere, which
  /// is what makes region fallback a real escape hatch.
  double capacity_mtbo_s = 0;
  double capacity_outage_s = 600;

  /// Probability that any one API call fails with a transient 5xx.
  double transient_error_prob = 0;

  /// Eventually-consistent describe: results reflect the world as it was
  /// this many seconds ago.  Consumed by the reconciling Provisioner.
  double describe_lag_s = 0;

  /// Spot interruptions: instances acquired through an interruption-enabled
  /// control plane are reclaimed after an exponential uptime with this mean
  /// (<= 0 disables), with a notice delivered `spot_notice_lead_s` ahead of
  /// the reclamation (EC2's two-minute warning).
  double spot_interruption_mtbf_s = 0;
  double spot_notice_lead_s = 120;

  /// Regional failure weather: correlated storms that black out a region's
  /// capacity across every type, synchronously reclaim its spot instances,
  /// and raise its crash hazard.  Disabled by default (storm_mtbs_s <= 0);
  /// see cloud/weather.hpp for the determinism contract.
  RegionalWeatherOptions weather;

  /// True iff any fault class is active.
  bool enabled() const;
};

struct RetryOptions {
  /// Backoff between API attempts (full jitter by default).
  util::BackoffOptions backoff{1.0, 2.0, 64.0, 1.0};
  /// Attempts per provisioning candidate before moving on.
  std::size_t max_attempts = 8;
  /// Consecutive capacity denials on one candidate before falling back to
  /// the next (capacity outages outlive per-call retries).
  std::size_t fallback_after = 2;
};

struct BreakerOptions {
  /// Consecutive failures that open the breaker.
  std::size_t failure_threshold = 5;
  /// Virtual seconds the breaker stays open before admitting a half-open
  /// trial call.
  double open_s = 30;
};

enum class BreakerState : std::uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
const char* breaker_state_name(BreakerState state);

/// Per-operation circuit breaker over virtual time.  Closed passes calls
/// through; `failure_threshold` consecutive failures open it; after
/// `open_s` the next admitted call runs half-open — success closes the
/// breaker, failure re-opens it.
class CircuitBreaker {
 public:
  CircuitBreaker() = default;
  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  /// State as observed at virtual time `now` (an open breaker whose window
  /// elapsed reads half-open).
  BreakerState state(double now) const;

  /// May a call be issued at `now`?  False only while open.
  bool allow(double now) const;

  /// Earliest virtual time a call will be admitted again.
  double retry_at() const { return open_until_; }

  /// Record the outcome of an admitted call.
  void on_success(double now);
  void on_failure(double now);

  std::size_t opens() const { return opens_; }
  std::size_t consecutive_failures() const { return consecutive_failures_; }

 private:
  BreakerOptions options_;
  BreakerState state_ = BreakerState::kClosed;
  double open_until_ = 0;
  std::size_t consecutive_failures_ = 0;
  std::size_t opens_ = 0;
};

struct ControlPlaneOptions {
  ApiFaultOptions faults;
  RetryOptions retry;
  BreakerOptions breaker;
  /// Seed for every fault/jitter stream the control plane owns.
  std::uint64_t seed = 0xC10DULL;
  /// Fallback search space when capacity stays exhausted: alternate
  /// instance types in the requested region, then the requested type in
  /// alternate regions.
  bool allow_type_fallback = true;
  bool allow_region_fallback = true;
  /// Total virtual time provision() may spend (retries + fallbacks) before
  /// reporting exhaustion.
  double give_up_s = 4 * 3600.0;
};

/// Aggregate API statistics for one control plane instance.
struct ApiStats {
  std::size_t calls = 0;
  std::size_t throttled = 0;
  std::size_t capacity_denials = 0;
  std::size_t transient_errors = 0;
  std::size_t retries = 0;            ///< API attempts after the first
  std::size_t fallbacks = 0;          ///< provisioning candidate switches
  std::size_t exhausted = 0;          ///< provision() calls that gave up
  std::size_t breaker_opens = 0;
  std::size_t breaker_waits = 0;      ///< calls delayed by an open breaker
  std::size_t spot_interruptions = 0; ///< interruption schedules issued
  std::size_t storm_denials = 0;      ///< acquires denied by a regional storm
  std::size_t storm_reclaims = 0;     ///< interruptions pulled in by a storm
};

/// The grant returned by a resilient provisioning call.
struct ProvisionGrant {
  bool ok = false;
  TypeId type = 0;          ///< granted type (may differ from requested)
  RegionId region = 0;      ///< granted region (may differ from requested)
  double ready_at = 0;      ///< virtual time the launch is admitted
  bool fell_back = false;   ///< granted from a fallback candidate
  std::size_t attempts = 0;
};

/// A scheduled spot interruption for one instance.
struct SpotInterruption {
  double notice_at = 0;   ///< advance warning (checkpoint trigger)
  double reclaim_at = 0;  ///< capacity disappears
};

class ControlPlane {
 public:
  explicit ControlPlane(const Catalog& catalog,
                        ControlPlaneOptions options = {});

  const ControlPlaneOptions& options() const { return options_; }
  const ApiStats& stats() const { return stats_; }
  const CircuitBreaker& breaker(ApiOp op) const {
    return breakers_[static_cast<std::size_t>(op)];
  }

  /// True when no fault class is active: every call succeeds instantly and
  /// no entropy is consumed (the bit-identity contract).
  bool null_model() const { return !options_.faults.enabled(); }

  /// Spot-interruption notices are modelled (affects executor semantics):
  /// either the i.i.d. exponential process or weather spot storms.
  bool interruptions_enabled() const {
    return options_.faults.spot_interruption_mtbf_s > 0 ||
           (weather_.enabled() && options_.faults.weather.spot_storms);
  }

  /// The regional weather process (mutable: storm windows materialize
  /// lazily on query).  Disabled weather answers every query trivially.
  RegionalWeather& weather() { return weather_; }
  const RegionalWeather& weather() const { return weather_; }

  /// One raw API call at virtual time `now` (monotone per control plane).
  /// Applies throttling and transient errors; acquire additionally checks
  /// per-(type, region) capacity.  Does not retry and does not consult the
  /// breaker.
  ApiErrorCode try_call(ApiOp op, double now, TypeId type = 0,
                        RegionId region = 0);

  /// Resilient acquire: retries with jittered backoff, respects the
  /// acquire breaker, and falls back to alternate types/regions when
  /// capacity stays exhausted.  Never throws; `ok == false` means the
  /// request is exhausted (callers decide whether that is fatal).
  ProvisionGrant provision(TypeId type, RegionId region, double now);

  /// Resilient fire-and-forget call (terminate/describe): returns the
  /// virtual time the call finally succeeded.  Gives up (returning the
  /// last attempt time) after RetryOptions::max_attempts.
  double complete_call(ApiOp op, double now);

  /// Samples the interruption schedule for an instance acquired at `now`
  /// in `region`, or nullopt when interruptions are disabled (no entropy
  /// consumed).  With weather spot storms active, the regional storm's
  /// shared reclamation draw can pull the reclaim earlier — co-located
  /// instances acquired before the same storm are reclaimed together.
  std::optional<SpotInterruption> sample_interruption(double acquired_at,
                                                      RegionId region = 0);

  /// Is capacity for `type` in `region` exhausted at virtual time `now`?
  /// (Exposed for tests; advances the per-(type, region) outage window
  /// lazily.)
  bool in_capacity_outage(TypeId type, RegionId region, double now);

 private:
  struct CapacityState {
    util::Rng rng;  ///< per-(type, region) stream: windows depend only on time
    double outage_start = 0;
    double outage_end = 0;
    bool primed = false;
  };

  /// Advances the token bucket to `now` and tries to take one token.
  bool take_token(double now);
  /// Candidate (type, region) list for provisioning, requested first.
  std::vector<std::pair<TypeId, RegionId>> candidates(TypeId type,
                                                      RegionId region) const;
  void record(ApiErrorCode code);
  void export_breaker_gauges(double now);

  const Catalog* catalog_;
  ControlPlaneOptions options_;
  util::Rng rng_;          ///< transient errors, jitter, interruptions
  double tokens_ = 0;
  double token_time_ = 0;  ///< bucket last refilled at this virtual time
  std::vector<CapacityState> capacity_;  ///< type-major (type, region) matrix
  RegionalWeather weather_;
  std::array<CircuitBreaker, kApiOpCount> breakers_;
  ApiStats stats_;
};

}  // namespace deco::cloud
