#include "cloud/metadata_store.hpp"

#include <fstream>
#include <sstream>
#include <vector>

namespace deco::cloud {

void MetadataStore::put(const std::string& key, util::Histogram histogram) {
  histograms_[key] = std::move(histogram);
}

std::optional<util::Histogram> MetadataStore::get(const std::string& key) const {
  const auto it = histograms_.find(key);
  if (it == histograms_.end()) return std::nullopt;
  return it->second;
}

bool MetadataStore::contains(const std::string& key) const {
  return histograms_.count(key) > 0;
}

std::string MetadataStore::serialize() const {
  std::ostringstream os;
  os.precision(17);
  for (const auto& [key, hist] : histograms_) {
    os << key << '\n' << hist.bin_count() << '\n';
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      os << hist.centers()[i] << ' ' << hist.masses()[i] << '\n';
    }
  }
  return os.str();
}

MetadataStore MetadataStore::deserialize(const std::string& text) {
  MetadataStore store;
  std::istringstream is(text);
  std::string key;
  while (std::getline(is, key)) {
    if (key.empty()) continue;
    std::size_t bins = 0;
    if (!(is >> bins)) break;
    std::vector<double> centers(bins);
    std::vector<double> masses(bins);
    for (std::size_t i = 0; i < bins; ++i) is >> centers[i] >> masses[i];
    is.ignore(1, '\n');
    store.put(key, util::Histogram::from_bins(std::move(centers), std::move(masses)));
  }
  return store;
}

bool MetadataStore::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize();
  return static_cast<bool>(out);
}

std::optional<MetadataStore> MetadataStore::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserialize(buffer.str());
}

std::string MetadataStore::seq_io_key(const std::string& provider,
                                      const std::string& type) {
  return provider + "/" + type + "/seq_io";
}

std::string MetadataStore::rand_io_key(const std::string& provider,
                                       const std::string& type) {
  return provider + "/" + type + "/rand_io";
}

std::string MetadataStore::net_key(const std::string& provider,
                                   const std::string& type_a,
                                   const std::string& type_b) {
  // Order-insensitive key.
  if (type_b < type_a) return net_key(provider, type_b, type_a);
  return provider + "/net/" + type_a + "/" + type_b;
}

std::string MetadataStore::inter_region_net_key(const std::string& provider) {
  return provider + "/net/inter_region";
}

}  // namespace deco::cloud
