#include "cloud/calibration.hpp"

#include <algorithm>

#include "util/histogram.hpp"

namespace deco::cloud {
namespace {

CalibrationRecord measure(const std::string& key,
                          const util::Distribution& ground_truth,
                          const CalibrationOptions& options, util::Rng& rng) {
  CalibrationRecord rec;
  rec.key = key;
  rec.samples.reserve(options.samples_per_setting);
  for (std::size_t i = 0; i < options.samples_per_setting; ++i) {
    rec.samples.push_back(sample_rate(ground_truth, rng));
  }
  rec.fitted_gamma = util::Gamma::fit(rec.samples);
  rec.fitted_normal = util::Normal::fit(rec.samples);
  const util::Normal fitted = rec.fitted_normal;
  rec.ks_normal = util::ks_test(rec.samples,
                                [fitted](double x) { return fitted.cdf(x); });
  const double mx = util::max_of(rec.samples);
  const double mn = util::min_of(rec.samples);
  rec.max_relative_variance = mx > 0 ? (mx - mn) / mx : 0;
  return rec;
}

}  // namespace

const CalibrationRecord* CalibrationReport::find(const std::string& key) const {
  for (const auto& r : records) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

CalibrationReport calibrate(const Catalog& catalog, MetadataStore& store,
                            const CalibrationOptions& options,
                            util::Rng& rng) {
  CalibrationReport report;
  auto publish = [&](const std::string& key, const util::Distribution& truth) {
    CalibrationRecord rec = measure(key, truth, options, rng);
    store.put(key, util::Histogram::from_samples(rec.samples,
                                                 options.histogram_bins));
    report.records.push_back(std::move(rec));
  };

  for (TypeId t = 0; t < catalog.type_count(); ++t) {
    const InstanceType& type = catalog.type(t);
    publish(MetadataStore::seq_io_key(options.provider, type.name),
            type.seq_io_mbps);
    publish(MetadataStore::rand_io_key(options.provider, type.name),
            type.rand_io_iops);
  }
  for (TypeId a = 0; a < catalog.type_count(); ++a) {
    for (TypeId b = a; b < catalog.type_count(); ++b) {
      publish(MetadataStore::net_key(options.provider, catalog.type(a).name,
                                     catalog.type(b).name),
              catalog.network_pair(a, b));
    }
  }
  publish(MetadataStore::inter_region_net_key(options.provider),
          catalog.inter_region_net());
  return report;
}

}  // namespace deco::cloud
