#include "cloud/instance_type.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace deco::cloud {

TypeId Catalog::add_type(InstanceType type) {
  types_.push_back(std::move(type));
  return static_cast<TypeId>(types_.size() - 1);
}

RegionId Catalog::add_region(Region region) {
  regions_.push_back(std::move(region));
  return static_cast<RegionId>(regions_.size() - 1);
}

std::optional<TypeId> Catalog::find_type(const std::string& name) const {
  for (TypeId i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<RegionId> Catalog::find_region(const std::string& name) const {
  for (RegionId i = 0; i < regions_.size(); ++i) {
    if (regions_[i].name == name) return i;
  }
  return std::nullopt;
}

double Catalog::price(TypeId type, RegionId region) const {
  return types_[type].price_per_hour * regions_[region].price_multiplier;
}

util::Distribution Catalog::network_pair(TypeId a, TypeId b) const {
  const auto& na = types_[a].net_mbps;
  const auto& nb = types_[b].net_mbps;
  const double mu = std::min(na.a, nb.a);
  // The noisier endpoint dominates observed jitter; add in quadrature.
  const double sigma = std::sqrt(na.b * na.b + nb.b * nb.b) / std::numbers::sqrt2;
  return util::Distribution::normal(mu, sigma);
}

Catalog make_ec2_catalog() {
  Catalog catalog;

  InstanceType small;
  small.name = "m1.small";
  small.price_per_hour = 0.044;
  small.compute_units = 1.0;
  small.per_core_units = 1.0;
  small.mem_gb = 1.7;
  small.seq_io_mbps = util::Distribution::gamma(129.3, 0.79);   // Table 2
  small.rand_io_iops = util::Distribution::normal(150.3, 50.0); // Table 2
  small.net_mbps = util::Distribution::normal(300, 90);
  catalog.add_type(small);

  InstanceType medium;
  medium.name = "m1.medium";
  medium.price_per_hour = 0.087;
  medium.compute_units = 2.0;
  medium.per_core_units = 2.0;
  medium.mem_gb = 3.75;
  medium.seq_io_mbps = util::Distribution::gamma(127.1, 0.80);
  medium.rand_io_iops = util::Distribution::normal(128.9, 8.4);
  medium.net_mbps = util::Distribution::normal(500, 125);  // Fig. 6: ~50% swings
  catalog.add_type(medium);

  InstanceType large;
  large.name = "m1.large";
  large.price_per_hour = 0.175;
  large.compute_units = 4.0;
  large.per_core_units = 2.0;
  large.mem_gb = 7.5;
  large.seq_io_mbps = util::Distribution::gamma(376.6, 0.28);
  large.rand_io_iops = util::Distribution::normal(172.9, 34.8);
  large.net_mbps = util::Distribution::normal(700, 60);    // Fig. 7: tight
  catalog.add_type(large);

  InstanceType xlarge;
  xlarge.name = "m1.xlarge";
  xlarge.price_per_hour = 0.350;
  xlarge.compute_units = 8.0;
  xlarge.per_core_units = 2.0;
  xlarge.mem_gb = 15.0;
  xlarge.seq_io_mbps = util::Distribution::gamma(408.1, 0.26);
  xlarge.rand_io_iops = util::Distribution::normal(1034.0, 146.4);
  xlarge.net_mbps = util::Distribution::normal(1000, 70);
  catalog.add_type(xlarge);

  // Home region plus the paper's second region.  Section 3.3: "prices of
  // instances in the Singapore region are higher ... the price difference of
  // the m1.small instances is 33%".  EC2 data-transfer-out ~ $0.12/GB.
  catalog.add_region(Region{"us-east-1", 1.0, 0.12});
  catalog.add_region(Region{"ap-southeast-1", 1.33, 0.19});
  catalog.set_inter_region_net(util::Distribution::normal(80, 20));
  return catalog;
}

}  // namespace deco::cloud
