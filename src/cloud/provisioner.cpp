#include "cloud/provisioner.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace deco::cloud {

void Provisioner::set_desired(TypeId type, RegionId region,
                              std::size_t count) {
  const SlotKey key{type, region};
  if (count == 0) {
    desired_.erase(key);
  } else {
    desired_[key] = count;
  }
}

std::size_t Provisioner::desired(TypeId type, RegionId region) const {
  const auto it = desired_.find(SlotKey{type, region});
  return it == desired_.end() ? 0 : it->second;
}

std::size_t Provisioner::desired_total() const {
  std::size_t total = 0;
  for (const auto& [key, count] : desired_) total += count;
  return total;
}

std::size_t Provisioner::degraded_count() const {
  return static_cast<std::size_t>(
      std::count_if(fleet_.begin(), fleet_.end(),
                    [](const ManagedInstance& m) { return m.degraded; }));
}

ReconcileActions Provisioner::reconcile(double now) {
  ReconcileActions actions;
  DECO_OBS_COUNTER_ADD("cloud.reconcile.loops", 1);

  // Observe through the eventually-consistent describe: a launch is only
  // visible once it is older than the lag.  The describe call itself goes
  // through the API (throttling applies; its completion time bounds what
  // "now" the observation reflects).
  const double observed_at = control_->complete_call(ApiOp::kDescribe, now);
  const double lag = control_->options().faults.describe_lag_s;
  auto visible = [&](const ManagedInstance& m) {
    return m.ready_at + lag <= observed_at;
  };

  // Count visible instances per desired slot (a degraded grant satisfies
  // the slot it was launched for).
  std::map<SlotKey, std::size_t> observed;
  for (const ManagedInstance& m : fleet_) {
    if (visible(m)) ++observed[m.desired];
  }

  // Launch what is missing.
  bool all_present = true;
  for (const auto& [key, want] : desired_) {
    const std::size_t have = observed.count(key) ? observed[key] : 0;
    for (std::size_t i = have; i < want; ++i) {
      const ProvisionGrant grant =
          control_->provision(key.type, key.region, now);
      if (!grant.ok) {
        ++actions.failed_launches;
        DECO_OBS_COUNTER_ADD("cloud.reconcile.failed_launches", 1);
        all_present = false;
        continue;
      }
      ManagedInstance m;
      m.id = next_id_++;
      m.desired = key;
      m.granted_type = grant.type;
      m.granted_region = grant.region;
      m.ready_at = grant.ready_at;
      m.degraded = grant.fell_back;
      fleet_.push_back(m);
      actions.launched.push_back(m);
      DECO_OBS_COUNTER_ADD("cloud.reconcile.launches", 1);
      if (m.degraded) DECO_OBS_COUNTER_ADD("cloud.reconcile.degraded", 1);
      // Invisible until the describe lag passes: not converged yet.
      if (!visible(m)) all_present = false;
    }
  }

  // Terminate surplus: slots no longer desired, or over-provisioned slots
  // (the describe lag makes duplicate launches possible; newest go first so
  // the longest-lived — and already-billed — capacity survives).
  std::map<SlotKey, std::size_t> keep = observed;
  for (auto it = fleet_.rbegin(); it != fleet_.rend();) {
    const ManagedInstance& m = *it;
    const auto want_it = desired_.find(m.desired);
    const std::size_t want =
        want_it == desired_.end() ? 0 : want_it->second;
    std::size_t& have = keep[m.desired];
    const bool surplus = visible(m) && have > want;
    if (surplus) {
      control_->complete_call(ApiOp::kTerminate, now);
      actions.terminated.push_back(m.id);
      DECO_OBS_COUNTER_ADD("cloud.reconcile.terminates", 1);
      --have;
      it = decltype(it)(fleet_.erase(std::next(it).base()));
    } else {
      ++it;
    }
  }

  // Converged: every desired slot fully visible, nothing failed, and no
  // surplus left behind.
  actions.converged = all_present && actions.failed_launches == 0;
  for (const auto& [key, want] : desired_) {
    std::size_t have = 0;
    for (const ManagedInstance& m : fleet_) {
      if (m.desired == key && visible(m)) ++have;
    }
    if (have != want) actions.converged = false;
  }
  if (actions.converged) DECO_OBS_COUNTER_ADD("cloud.reconcile.converged", 1);
  return actions;
}

std::size_t Provisioner::reconcile_until_converged(double now,
                                                   double loop_interval_s,
                                                   std::size_t max_loops) {
  const double step = std::max(loop_interval_s, 1.0);
  for (std::size_t loop = 1; loop <= max_loops; ++loop) {
    if (reconcile(now).converged) return loop;
    now += step;
  }
  return max_loops;
}

}  // namespace deco::cloud
