// Metadata store of calibrated cloud-performance histograms.
//
// Section 4.2: "we discretize the probabilistic performance distributions as
// histograms, and store the histograms in the metadata store.  We have
// developed some micro-benchmarks and periodically perform calibrations on
// the target cloud, which is totally transparent to users."  WLog's
// import(cloud) and the probabilistic IR translation both read from here.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "util/histogram.hpp"

namespace deco::cloud {

/// Canonical keys, e.g. "ec2/m1.medium/seq_io", "ec2/net/m1.large/m1.medium".
class MetadataStore {
 public:
  void put(const std::string& key, util::Histogram histogram);
  std::optional<util::Histogram> get(const std::string& key) const;
  bool contains(const std::string& key) const;
  std::size_t size() const { return histograms_.size(); }

  /// Serialization: line-oriented text format (key, bins, center/mass pairs).
  std::string serialize() const;
  static MetadataStore deserialize(const std::string& text);

  bool save(const std::string& path) const;
  static std::optional<MetadataStore> load(const std::string& path);

  static std::string seq_io_key(const std::string& provider,
                                const std::string& type);
  static std::string rand_io_key(const std::string& provider,
                                 const std::string& type);
  static std::string net_key(const std::string& provider,
                             const std::string& type_a,
                             const std::string& type_b);
  static std::string inter_region_net_key(const std::string& provider);

 private:
  std::map<std::string, util::Histogram> histograms_;
};

}  // namespace deco::cloud
