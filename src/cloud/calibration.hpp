// Cloud-performance calibration micro-benchmarks.
//
// The paper measures CPU, sequential I/O (hdparm), random I/O (512-byte
// reads) and pairwise network bandwidth (iperf) once a minute for 7 days
// (10,000 samples per setting) on Amazon EC2, then fits distributions
// (Table 2) and discretizes them into metadata-store histograms.
//
// Here the "target cloud" is the catalog's ground-truth model; calibration
// draws the same number of samples from it, fits Gamma/Normal by moments,
// runs a KS normality check (Fig. 6b's null-hypothesis verification), and
// publishes histograms to the metadata store.  The rest of the engine only
// ever sees the store — exactly the paper's information boundary.
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/metadata_store.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace deco::cloud {

struct CalibrationOptions {
  std::size_t samples_per_setting = 10000;  ///< 7 days @ 1/min in the paper
  std::size_t histogram_bins = 24;
  std::string provider = "ec2";
};

/// Per-setting calibration record (one Table 2 row / Fig. 6-7 series).
struct CalibrationRecord {
  std::string key;
  std::vector<double> samples;
  util::Gamma fitted_gamma;    ///< moment fit (meaningful for seq I/O)
  util::Normal fitted_normal;  ///< moment fit (meaningful for rand I/O, net)
  util::KsResult ks_normal;    ///< KS test against the fitted Normal
  double max_relative_variance = 0;  ///< (max-min)/max over the trace
};

struct CalibrationReport {
  std::vector<CalibrationRecord> records;

  const CalibrationRecord* find(const std::string& key) const;
};

/// Runs the full calibration pass and fills `store` with histograms for every
/// instance type's seq/rand I/O, every type pair's bandwidth, and the
/// inter-region link.  Returns the fitted-parameter report.
CalibrationReport calibrate(const Catalog& catalog, MetadataStore& store,
                            const CalibrationOptions& options, util::Rng& rng);

}  // namespace deco::cloud
