// Reconciling provisioner: desired-state instance management over the
// simulated control plane.
//
// A production fleet manager does not call acquire once and hope: it runs a
// reconcile loop that continuously compares the *desired* instance set
// against the *observed* one and issues the API calls that close the gap —
// Kubernetes-style level-triggered control applied to IaaS capacity.
// Provisioner implements that loop on top of cloud::ControlPlane:
//
//   * desired state is a count per (instance type, region) slot;
//   * observed state is the provisioner's own launch ledger filtered
//     through the control plane's eventually-consistent describe lag, so a
//     freshly launched instance is invisible for `describe_lag_s` — the
//     classic over-provisioning hazard a correct reconciler must converge
//     out of (surplus is detected and terminated on a later loop);
//   * launches go through ControlPlane::provision, so throttling, capacity
//     outages and breaker state all apply; when capacity for the desired
//     type stays exhausted the grant falls back to an alternate type or
//     region and the slot is recorded as *degraded* — the fleet is whole,
//     just not with the hardware the plan asked for.
//
// The provisioner is pool-agnostic: it returns the actions it took and
// leaves applying them (e.g. to a sim::CloudPool) to the caller, which
// keeps the cloud layer free of a dependency on the simulator.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "cloud/control_plane.hpp"

namespace deco::cloud {

/// One desired-capacity slot key.
struct SlotKey {
  TypeId type = 0;
  RegionId region = 0;
  auto operator<=>(const SlotKey&) const = default;
};

/// One instance the provisioner launched and still tracks.
struct ManagedInstance {
  std::uint64_t id = 0;       ///< provisioner-local handle
  SlotKey desired;            ///< the slot this launch satisfies
  TypeId granted_type = 0;    ///< actual hardware (== desired unless degraded)
  RegionId granted_region = 0;
  double ready_at = 0;        ///< virtual launch-grant time
  bool degraded = false;      ///< granted from a fallback candidate
};

/// What one reconcile pass did.
struct ReconcileActions {
  std::vector<ManagedInstance> launched;
  std::vector<std::uint64_t> terminated;  ///< ManagedInstance ids released
  std::size_t failed_launches = 0;        ///< provision() exhausted
  bool converged = false;  ///< observed state matched desired state
};

class Provisioner {
 public:
  /// Borrows the control plane; it must outlive the provisioner.
  explicit Provisioner(ControlPlane& control) : control_(&control) {}

  /// Sets the desired instance count for a slot (0 removes it).
  void set_desired(TypeId type, RegionId region, std::size_t count);
  std::size_t desired(TypeId type, RegionId region) const;
  std::size_t desired_total() const;

  /// Instances currently tracked (launched and not terminated).
  const std::vector<ManagedInstance>& fleet() const { return fleet_; }
  std::size_t degraded_count() const;

  /// One reconcile pass at virtual time `now`: observes the fleet through
  /// the describe lag, launches what is missing, terminates surplus.
  ReconcileActions reconcile(double now);

  /// Loops reconcile until convergence or `max_loops`, advancing virtual
  /// time by `loop_interval_s` between passes.  Returns the number of
  /// passes run (== max_loops when convergence was not reached).
  std::size_t reconcile_until_converged(double now, double loop_interval_s,
                                        std::size_t max_loops);

 private:
  ControlPlane* control_;
  std::map<SlotKey, std::size_t> desired_;
  std::vector<ManagedInstance> fleet_;
  std::uint64_t next_id_ = 1;
};

}  // namespace deco::cloud
