#include "cloud/spot_market.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"

namespace deco::cloud {

SpotPriceTrace SpotPriceTrace::simulate(double on_demand,
                                        const SpotModel& model,
                                        std::size_t steps, util::Rng& rng) {
  return simulate(on_demand, model, steps, rng, nullptr, 0);
}

SpotPriceTrace SpotPriceTrace::simulate(double on_demand,
                                        const SpotModel& model,
                                        std::size_t steps, util::Rng& rng,
                                        RegionalWeather* weather,
                                        RegionId region) {
  SpotPriceTrace trace;
  trace.step_seconds_ = model.step_seconds;
  trace.prices_.reserve(steps);
  const double mean_log = std::log(on_demand * model.base_fraction);
  double x = mean_log;
  const util::Normal noise{0.0, model.volatility};
  const bool stormy = weather != nullptr && weather->enabled();
  for (std::size_t i = 0; i < steps; ++i) {
    x += model.reversion * (mean_log - x) + noise.sample(rng);
    if (rng.chance(model.spike_prob)) x += model.spike_magnitude;
    double price_x = x;
    // A storm is a regional demand surge: the price rides spike_magnitude
    // above the OU level for every step the storm lasts.  The surge is
    // additive per step and does not feed back into x, so the trace decays
    // straight back to the OU level when the storm clears — and the
    // weatherless path consumes the RNG identically.
    if (stormy &&
        weather->in_storm(region, static_cast<double>(i) * model.step_seconds)) {
      price_x += model.spike_magnitude;
    }
    // Spot never exceeds on-demand for long: providers cap at on-demand.
    const double price = std::min(std::exp(price_x), on_demand);
    trace.prices_.push_back(price);
  }
  return trace;
}

double SpotPriceTrace::price_at(double t_seconds) const {
  if (prices_.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::clamp(t_seconds / step_seconds_, 0.0,
                 static_cast<double>(prices_.size() - 1)));
  return prices_[idx];
}

double SpotPriceTrace::next_revocation(double t_seconds, double bid) const {
  if (prices_.empty()) return -1;
  auto idx = static_cast<std::size_t>(
      std::clamp(t_seconds / step_seconds_, 0.0,
                 static_cast<double>(prices_.size() - 1)));
  for (; idx < prices_.size(); ++idx) {
    if (prices_[idx] > bid) return static_cast<double>(idx) * step_seconds_;
  }
  return -1;
}

double SpotPriceTrace::availability(double bid) const {
  if (prices_.empty()) return 0;
  std::size_t ok = 0;
  for (double p : prices_) {
    if (p <= bid) ++ok;
  }
  return static_cast<double>(ok) / static_cast<double>(prices_.size());
}

SpotQuote quote(const SpotPriceTrace& trace, double bid) {
  SpotQuote q;
  if (trace.size() == 0) return q;
  double sum = 0;
  for (double p : trace.prices()) sum += p;
  q.mean_price = sum / static_cast<double>(trace.size());
  // Hazard: fraction of hour-long windows containing a price above the bid.
  const auto steps_per_hour = static_cast<std::size_t>(
      std::max(1.0, 3600.0 / trace.step_seconds()));
  std::size_t windows = 0;
  std::size_t revoked = 0;
  for (std::size_t begin = 0; begin + steps_per_hour <= trace.size();
       begin += steps_per_hour) {
    ++windows;
    for (std::size_t i = begin; i < begin + steps_per_hour; ++i) {
      if (trace.prices()[i] > bid) {
        ++revoked;
        break;
      }
    }
  }
  q.hourly_revocation_prob =
      windows > 0 ? static_cast<double>(revoked) / static_cast<double>(windows)
                  : 0;
  return q;
}

}  // namespace deco::cloud
