// IaaS cloud offering model: instance types, regions, pricing and the
// ground-truth performance dynamics the paper measured on Amazon EC2.
//
// The catalog encodes the four instance types the paper calibrates
// (m1.small/medium/large/xlarge) with their 2014-era US-East prices, EC2
// compute units, and the published distributions: sequential I/O ~ Gamma and
// random I/O ~ Normal with the exact Table 2 parameters; network bandwidth ~
// Normal with the Fig. 6/7 behaviour (m1.medium much noisier than m1.large).
// CPU performance is stable in the cloud (Section 6.2), so it is a constant
// speed factor.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/distributions.hpp"

namespace deco::cloud {

using TypeId = std::uint32_t;
using RegionId = std::uint32_t;

struct InstanceType {
  std::string name;          ///< e.g. "m1.small"
  double price_per_hour = 0; ///< USD, on-demand, in the home region
  double compute_units = 1;  ///< total ECU across all cores
  /// ECU per core: what a single-threaded workflow task actually gets.  The
  /// m1 family scales by adding cores (1x1, 1x2, 2x2, 4x2 ECU), so task CPU
  /// time bottoms out at the 2-ECU core — the reason premium types only pay
  /// off for I/O- and network-bound tasks (and why Fig. 1's cheap types lose
  /// on deadline, not the big ones on speed).
  double per_core_units = 1;
  double mem_gb = 0;

  // Ground truth performance dynamics (what calibration re-discovers).
  util::Distribution seq_io_mbps;   ///< sequential I/O throughput, MB/s
  util::Distribution rand_io_iops;  ///< random I/O, IOPS (512B reads)
  util::Distribution net_mbps;      ///< NIC bandwidth, Mbit/s
};

struct Region {
  std::string name;              ///< e.g. "us-east-1"
  double price_multiplier = 1;   ///< relative to the home region
  double egress_price_per_gb = 0;///< K_mn: inter-region transfer price, USD/GB
};

/// Catalog of one provider's offerings across regions.
class Catalog {
 public:
  Catalog() = default;

  TypeId add_type(InstanceType type);
  RegionId add_region(Region region);

  std::size_t type_count() const { return types_.size(); }
  std::size_t region_count() const { return regions_.size(); }

  const InstanceType& type(TypeId id) const { return types_[id]; }
  const Region& region(RegionId id) const { return regions_[id]; }
  const std::vector<InstanceType>& types() const { return types_; }
  const std::vector<Region>& regions() const { return regions_; }

  std::optional<TypeId> find_type(const std::string& name) const;
  std::optional<RegionId> find_region(const std::string& name) const;

  /// Hourly price of `type` in `region`.
  double price(TypeId type, RegionId region) const;

  /// Ground-truth bandwidth distribution between two instance types: the
  /// narrower NIC bounds the flow, and jitter adds in quadrature.
  util::Distribution network_pair(TypeId a, TypeId b) const;

  /// Inter-region bandwidth (Mbit/s), shared by all instance types.
  const util::Distribution& inter_region_net() const { return inter_region_net_; }
  void set_inter_region_net(util::Distribution d) { inter_region_net_ = d; }

  /// Inter-region transfer price USD/GB from region `from`.
  double egress_price(RegionId from) const { return regions_[from].egress_price_per_gb; }

 private:
  std::vector<InstanceType> types_;
  std::vector<Region> regions_;
  util::Distribution inter_region_net_ = util::Distribution::normal(80, 20);
};

/// The paper's calibrated Amazon EC2 catalog: 4 instance types, Table 2
/// distributions, US East + Singapore regions (m1.small 33% pricier in SG).
Catalog make_ec2_catalog();

/// Performance rates observed on real clouds dip but never collapse: the
/// Fig. 6 traces bottom out around half the peak.  Every ground-truth draw
/// of a rate (I/O throughput, IOPS, bandwidth) goes through this floor.
inline constexpr double kPerfFloorFraction = 0.45;

inline double sample_rate(const util::Distribution& dist, util::Rng& rng) {
  return dist.sample_truncated(rng, kPerfFloorFraction * dist.mean());
}

}  // namespace deco::cloud
