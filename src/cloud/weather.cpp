#include "cloud/weather.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"

namespace deco::cloud {
namespace {

/// splitmix64 finalizer: independent per-region streams from one seed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double exponential(util::Rng& rng, double mean) {
  const double u = std::max(1.0 - rng.uniform(), 1e-12);  // (0, 1]
  return -mean * std::log(u);
}

}  // namespace

RegionalWeather::RegionalWeather(std::size_t regions,
                                 const RegionalWeatherOptions& options,
                                 std::uint64_t seed)
    : options_(options) {
  if (!options_.enabled()) return;
  streams_.resize(std::max<std::size_t>(regions, 1));
  for (std::size_t r = 0; r < streams_.size(); ++r) {
    streams_[r].rng.reseed(mix(seed, 0x57E4 + r));
  }
}

void RegionalWeather::append_window(RegionId region) {
  RegionStream& s = streams_[region];
  // Window parameters are drawn in a fixed order, so the window list is a
  // pure function of (seed, region, index) no matter who queried before.
  const double mean_gap =
      std::max(options_.storm_mtbs_s / options_.hazard_for(region), 1e-6);
  const double prev_end = s.windows.empty() ? 0.0 : s.windows.back().end;
  StormWindow w;
  w.start = prev_end + exponential(s.rng, mean_gap);
  if (s.windows.empty() && options_.initial_storm) w.start = 0;
  w.end = w.start + exponential(s.rng, std::max(options_.storm_duration_s, 1.0));
  w.reclaim_at = w.start + s.rng.uniform() * (w.end - w.start);
  w.blackout = s.rng.chance(std::clamp(options_.capacity_hazard, 0.0, 1.0));
  s.windows.push_back(w);
  DECO_OBS_COUNTER_ADD("cloud.weather.storms", 1);
}

void RegionalWeather::ensure_until(RegionId region, double t) {
  RegionStream& s = streams_[region];
  while (s.windows.empty() || s.windows.back().end <= t) {
    append_window(region);
  }
}

const StormWindow* RegionalWeather::window_at(RegionId region, double now) {
  if (!enabled()) return nullptr;
  if (region >= streams_.size()) region = 0;
  ensure_until(region, now);
  // Few windows are ever materialized per run; a linear scan from the back
  // (queries are roughly time-ordered) beats binary search in practice.
  for (auto it = streams_[region].windows.rbegin();
       it != streams_[region].windows.rend(); ++it) {
    if (it->start <= now && now < it->end) return &*it;
    if (it->end <= now) break;  // windows are time-ordered and disjoint
  }
  return nullptr;
}

bool RegionalWeather::in_storm(RegionId region, double now) {
  return window_at(region, now) != nullptr;
}

bool RegionalWeather::capacity_denied(RegionId region, double now) {
  const StormWindow* w = window_at(region, now);
  return w != nullptr && w->blackout;
}

double RegionalWeather::crash_multiplier(RegionId region, double now) {
  if (window_at(region, now) == nullptr) return 1.0;
  return std::max(options_.crash_hazard, 1.0);
}

std::optional<StormWindow> RegionalWeather::next_storm(RegionId region,
                                                       double from) {
  if (!enabled()) return std::nullopt;
  if (region >= streams_.size()) region = 0;
  ensure_until(region, from);
  for (const StormWindow& w : streams_[region].windows) {
    if (w.end > from) return w;
  }
  // ensure_until guarantees the last window ends after `from`.
  return streams_[region].windows.back();
}

std::optional<double> RegionalWeather::spot_reclaim_after(RegionId region,
                                                          double acquired_at) {
  if (!enabled() || !options_.spot_storms) return std::nullopt;
  if (region >= streams_.size()) region = 0;
  ensure_until(region, acquired_at);
  RegionStream& s = streams_[region];
  // Reclaim draws are strictly increasing across windows, so extend the
  // list until one lands at or after the acquisition.
  while (s.windows.back().reclaim_at < acquired_at) append_window(region);
  for (const StormWindow& w : s.windows) {
    if (w.reclaim_at >= acquired_at) return w.reclaim_at;
  }
  return s.windows.back().reclaim_at;  // unreachable; keep the compiler calm
}

}  // namespace deco::cloud
