// Spot-market pricing model (extension).
//
// The paper's introduction motivates Deco with clouds offering "different
// types of instances and pricing models"; its evaluation uses on-demand
// pricing only.  This module adds the other major IaaS pricing model of the
// era — the EC2 spot market — as an engine extension:
//
//   * a mean-reverting stochastic spot-price process per instance type
//     (Ornstein-Uhlenbeck in log-space, the standard fit to historical EC2
//     spot traces), discretized per minute;
//   * bid semantics: a spot instance runs while the market price stays at or
//     below the bid and is *revoked* the minute it rises above it; revoked
//     work is lost and must be re-executed (EC2 did not charge the last
//     partial hour of a revoked instance, which the billing model honours);
//   * histograms of the price process feed the metadata store, so the
//     estimator/evaluator can reason about revocation risk the same way
//     they reason about performance dynamics.
//
// The sim::simulate_execution extension (SpotExecution) and the
// `ablation_spot` bench quantify the cost/risk trade-off.
#pragma once

#include <vector>

#include "cloud/instance_type.hpp"
#include "cloud/weather.hpp"
#include "util/rng.hpp"

namespace deco::cloud {

struct SpotModel {
  double base_fraction = 0.3;   ///< long-run mean spot price / on-demand
  double reversion = 0.08;      ///< OU mean-reversion speed (per step)
  double volatility = 0.12;     ///< OU volatility (per sqrt step)
  double spike_prob = 0.01;     ///< per-step probability of a demand spike
  double spike_magnitude = 1.2; ///< log-price jump on a spike
  double step_seconds = 60;     ///< price update granularity
};

/// A sampled spot-price trace for one instance type.
class SpotPriceTrace {
 public:
  /// Simulates `steps` price updates for a type with on-demand price
  /// `on_demand` under `model`.
  static SpotPriceTrace simulate(double on_demand, const SpotModel& model,
                                 std::size_t steps, util::Rng& rng);

  /// Weather overload: while a storm is active in `region`, every step's
  /// log-price carries an extra demand spike of `model.spike_magnitude` —
  /// the regional surge that makes spot capacity disappear together.  A
  /// null or disabled `weather` consumes the RNG exactly as the base
  /// overload and produces a bit-identical trace.
  static SpotPriceTrace simulate(double on_demand, const SpotModel& model,
                                 std::size_t steps, util::Rng& rng,
                                 RegionalWeather* weather, RegionId region);

  double step_seconds() const { return step_seconds_; }
  std::size_t size() const { return prices_.size(); }
  const std::vector<double>& prices() const { return prices_; }

  /// Price in effect at absolute time t (clamped to the trace).
  double price_at(double t_seconds) const;

  /// First time >= t at which the price exceeds `bid`; returns a negative
  /// value if the bid is never exceeded within the trace.
  double next_revocation(double t_seconds, double bid) const;

  /// Fraction of the trace spent at or below `bid` (availability).
  double availability(double bid) const;

 private:
  std::vector<double> prices_;
  double step_seconds_ = 60;
};

/// Expected spot statistics used by planners: mean price and the revocation
/// hazard (probability that a one-hour window contains a price > bid).
struct SpotQuote {
  double mean_price = 0;
  double hourly_revocation_prob = 0;
};

SpotQuote quote(const SpotPriceTrace& trace, double bid);

}  // namespace deco::cloud
