#include "cloud/control_plane.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "obs/obs.hpp"

namespace deco::cloud {
namespace {

/// splitmix64 finalizer: derives independent per-(type, region) streams from
/// the seed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double exponential(util::Rng& rng, double mean) {
  const double u = std::max(1.0 - rng.uniform(), 1e-12);  // (0, 1]
  return -mean * std::log(u);
}

}  // namespace

const char* api_op_name(ApiOp op) {
  switch (op) {
    case ApiOp::kAcquire: return "acquire";
    case ApiOp::kTerminate: return "terminate";
    case ApiOp::kDescribe: return "describe";
  }
  return "?";
}

const char* api_error_name(ApiErrorCode code) {
  switch (code) {
    case ApiErrorCode::kOk: return "ok";
    case ApiErrorCode::kThrottled: return "RequestLimitExceeded";
    case ApiErrorCode::kInsufficientCapacity:
      return "InsufficientInstanceCapacity";
    case ApiErrorCode::kTransient: return "InternalError";
  }
  return "?";
}

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

bool ApiFaultOptions::enabled() const {
  return throttle_rate_per_s > 0 || capacity_mtbo_s > 0 ||
         transient_error_prob > 0 || describe_lag_s > 0 ||
         spot_interruption_mtbf_s > 0 || weather.enabled();
}

BreakerState CircuitBreaker::state(double now) const {
  if (state_ == BreakerState::kOpen && now >= open_until_) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow(double now) const {
  return state(now) != BreakerState::kOpen;
}

void CircuitBreaker::on_success(double now) {
  // Success in any admitted state closes the breaker (the half-open trial
  // proved the dependency healthy again).
  (void)now;
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
}

void CircuitBreaker::on_failure(double now) {
  if (state(now) == BreakerState::kHalfOpen) {
    // Failed trial: straight back to open for another window.
    state_ = BreakerState::kOpen;
    open_until_ = now + options_.open_s;
    ++opens_;
    return;
  }
  if (++consecutive_failures_ >= std::max<std::size_t>(
          options_.failure_threshold, 1)) {
    state_ = BreakerState::kOpen;
    open_until_ = now + options_.open_s;
    consecutive_failures_ = 0;
    ++opens_;
  }
}

ControlPlane::ControlPlane(const Catalog& catalog, ControlPlaneOptions options)
    : catalog_(&catalog),
      options_(options),
      rng_(mix(options.seed, 0)),
      tokens_(std::max(options.faults.throttle_burst, 1.0)) {
  // One outage-window stream per (type, region): an outage of m1.small in
  // us-east says nothing about m1.small in Singapore.
  const std::size_t regions = std::max<std::size_t>(catalog.region_count(), 1);
  capacity_.resize(catalog.type_count() * regions);
  for (TypeId t = 0; t < catalog.type_count(); ++t) {
    for (RegionId r = 0; r < regions; ++r) {
      capacity_[t * regions + r].rng.reseed(
          mix(mix(options_.seed, 0x9E37 + t), r));
    }
  }
  weather_ =
      RegionalWeather(regions, options_.faults.weather, mix(options_.seed, 1));
  for (auto& breaker : breakers_) breaker = CircuitBreaker(options_.breaker);
}

bool ControlPlane::take_token(double now) {
  if (options_.faults.throttle_rate_per_s <= 0) return true;
  const double burst = std::max(options_.faults.throttle_burst, 1.0);
  // Clamp against clock regressions: segments replayed from the same
  // control plane never rewind the bucket.
  const double dt = std::max(now - token_time_, 0.0);
  tokens_ = std::min(tokens_ + dt * options_.faults.throttle_rate_per_s, burst);
  token_time_ = std::max(token_time_, now);
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

bool ControlPlane::in_capacity_outage(TypeId type, RegionId region,
                                      double now) {
  const std::size_t regions =
      std::max<std::size_t>(catalog_->region_count(), 1);
  const std::size_t slot = type * regions + std::min<std::size_t>(region,
                                                                  regions - 1);
  if (options_.faults.capacity_mtbo_s <= 0 || slot >= capacity_.size()) {
    return false;
  }
  CapacityState& cap = capacity_[slot];
  if (!cap.primed) {
    cap.outage_start = exponential(cap.rng, options_.faults.capacity_mtbo_s);
    cap.outage_end =
        cap.outage_start + exponential(cap.rng, options_.faults.capacity_outage_s);
    cap.primed = true;
  }
  // Windows are a function of (seed, type, region, time) alone: advance them
  // past `now` regardless of who asked before.
  while (now >= cap.outage_end) {
    cap.outage_start =
        cap.outage_end + exponential(cap.rng, options_.faults.capacity_mtbo_s);
    cap.outage_end =
        cap.outage_start + exponential(cap.rng, options_.faults.capacity_outage_s);
  }
  return now >= cap.outage_start;
}

void ControlPlane::record(ApiErrorCode code) {
  ++stats_.calls;
  DECO_OBS_COUNTER_ADD("cloud.api.calls", 1);
  switch (code) {
    case ApiErrorCode::kOk:
      break;
    case ApiErrorCode::kThrottled:
      ++stats_.throttled;
      DECO_OBS_COUNTER_ADD("cloud.api.throttled", 1);
      break;
    case ApiErrorCode::kInsufficientCapacity:
      ++stats_.capacity_denials;
      DECO_OBS_COUNTER_ADD("cloud.api.capacity_denials", 1);
      break;
    case ApiErrorCode::kTransient:
      ++stats_.transient_errors;
      DECO_OBS_COUNTER_ADD("cloud.api.transient_errors", 1);
      break;
  }
}

ApiErrorCode ControlPlane::try_call(ApiOp op, double now, TypeId type,
                                    RegionId region) {
  if (null_model()) return ApiErrorCode::kOk;  // no draws, no bookkeeping
  ApiErrorCode code = ApiErrorCode::kOk;
  if (!take_token(now)) {
    code = ApiErrorCode::kThrottled;
  } else if (options_.faults.transient_error_prob > 0 &&
             rng_.chance(options_.faults.transient_error_prob)) {
    code = ApiErrorCode::kTransient;
  } else if (op == ApiOp::kAcquire && weather_.capacity_denied(region, now)) {
    // A regional storm blacks out the whole region: every type is denied
    // together, which is exactly what makes region fallback (and the WMS's
    // evacuation path) necessary.
    code = ApiErrorCode::kInsufficientCapacity;
    ++stats_.storm_denials;
    DECO_OBS_COUNTER_ADD("cloud.weather.storm_denials", 1);
  } else if (op == ApiOp::kAcquire && in_capacity_outage(type, region, now)) {
    code = ApiErrorCode::kInsufficientCapacity;
  }
  record(code);
  return code;
}

std::vector<std::pair<TypeId, RegionId>> ControlPlane::candidates(
    TypeId type, RegionId region) const {
  std::vector<std::pair<TypeId, RegionId>> list;
  list.emplace_back(type, region);
  if (options_.allow_type_fallback) {
    // Alternate types in the requested region, nearest price first — the
    // cheapest substitute that still resembles what the plan asked for.
    std::vector<TypeId> others;
    for (TypeId t = 0; t < catalog_->type_count(); ++t) {
      if (t != type) others.push_back(t);
    }
    const double want = catalog_->type(type).price_per_hour;
    std::stable_sort(others.begin(), others.end(), [&](TypeId a, TypeId b) {
      return std::abs(catalog_->type(a).price_per_hour - want) <
             std::abs(catalog_->type(b).price_per_hour - want);
    });
    for (TypeId t : others) list.emplace_back(t, region);
  }
  if (options_.allow_region_fallback) {
    for (RegionId r = 0; r < catalog_->region_count(); ++r) {
      if (r != region) list.emplace_back(type, r);
    }
  }
  return list;
}

void ControlPlane::export_breaker_gauges(double now) {
  for (std::size_t op = 0; op < kApiOpCount; ++op) {
    DECO_OBS_GAUGE_SET(
        std::string("cloud.breaker.") +
            api_op_name(static_cast<ApiOp>(op)) + ".state",
        static_cast<double>(breakers_[op].state(now)));
  }
}

ProvisionGrant ControlPlane::provision(TypeId type, RegionId region,
                                       double now) {
  ProvisionGrant grant;
  grant.type = type;
  grant.region = region;
  if (null_model()) {
    // Fast path and bit-identity contract: instant grant, zero entropy.
    grant.ok = true;
    grant.ready_at = now;
    grant.attempts = 1;
    return grant;
  }

  CircuitBreaker& breaker = breakers_[static_cast<std::size_t>(ApiOp::kAcquire)];
  const double deadline = now + std::max(options_.give_up_s, 0.0);
  double t = now;
  // give_up_s is a virtual-time budget, not a single pass: when every
  // candidate is simultaneously out of capacity, wait out the storm and
  // re-scan the whole list until the budget is spent.
  while (t <= deadline) {
    for (const auto& [cand_type, cand_region] : candidates(type, region)) {
      util::Backoff backoff(options_.retry.backoff);
      std::size_t capacity_streak = 0;
      for (std::size_t attempt = 1;
           attempt <= std::max<std::size_t>(options_.retry.max_attempts, 1);
           ++attempt) {
        if (t > deadline) break;
        if (!breaker.allow(t)) {
          // Open breaker: don't hammer the API — wait out the window.
          ++stats_.breaker_waits;
          DECO_OBS_COUNTER_ADD("cloud.breaker.waits", 1);
          t = std::max(t, breaker.retry_at());
        }
        const std::size_t opens_before = breaker.opens();
        const ApiErrorCode code =
            try_call(ApiOp::kAcquire, t, cand_type, cand_region);
        if (attempt > 1) {
          ++stats_.retries;
          DECO_OBS_COUNTER_ADD("cloud.api.retries", 1);
        }
        ++grant.attempts;
        if (code == ApiErrorCode::kOk) {
          breaker.on_success(t);
          export_breaker_gauges(t);
          grant.ok = true;
          grant.type = cand_type;
          grant.region = cand_region;
          grant.ready_at = t;
          grant.fell_back = cand_type != type || cand_region != region;
          if (grant.fell_back) {
            ++stats_.fallbacks;
            DECO_OBS_COUNTER_ADD("cloud.api.fallbacks", 1);
          }
          return grant;
        }
        // Throttling is backpressure, not ill health: it must not open the
        // breaker (the API is answering, just telling us to slow down).
        if (code != ApiErrorCode::kThrottled) breaker.on_failure(t);
        if (breaker.opens() != opens_before) {
          ++stats_.breaker_opens;
          DECO_OBS_COUNTER_ADD("cloud.breaker.opens", 1);
        }
        export_breaker_gauges(t);
        if (code == ApiErrorCode::kInsufficientCapacity) {
          if (++capacity_streak >=
              std::max<std::size_t>(options_.retry.fallback_after, 1)) {
            break;  // capacity outages outlive retries: try the next candidate
          }
        } else {
          capacity_streak = 0;
        }
        t += backoff.next(rng_);
      }
    }
    // Full sweep failed: pause a capped-backoff interval before the next
    // sweep so the loop always advances even with zero-delay retry options.
    t += std::max(options_.retry.backoff.cap_s, 1.0);
  }
  ++stats_.exhausted;
  DECO_OBS_COUNTER_ADD("cloud.api.exhausted", 1);
  grant.ok = false;
  grant.ready_at = t;
  return grant;
}

double ControlPlane::complete_call(ApiOp op, double now) {
  if (null_model()) return now;
  CircuitBreaker& breaker = breakers_[static_cast<std::size_t>(op)];
  util::Backoff backoff(options_.retry.backoff);
  double t = now;
  for (std::size_t attempt = 1;
       attempt <= std::max<std::size_t>(options_.retry.max_attempts, 1);
       ++attempt) {
    if (!breaker.allow(t)) {
      ++stats_.breaker_waits;
      DECO_OBS_COUNTER_ADD("cloud.breaker.waits", 1);
      t = std::max(t, breaker.retry_at());
    }
    const std::size_t opens_before = breaker.opens();
    const ApiErrorCode code = try_call(op, t);
    if (attempt > 1) {
      ++stats_.retries;
      DECO_OBS_COUNTER_ADD("cloud.api.retries", 1);
    }
    if (code == ApiErrorCode::kOk) {
      breaker.on_success(t);
      export_breaker_gauges(t);
      return t;
    }
    if (code != ApiErrorCode::kThrottled) breaker.on_failure(t);
    if (breaker.opens() != opens_before) {
      ++stats_.breaker_opens;
      DECO_OBS_COUNTER_ADD("cloud.breaker.opens", 1);
    }
    export_breaker_gauges(t);
    t += backoff.next(rng_);
  }
  // Terminate/describe failures are not fatal: the caller proceeds at the
  // delayed time (a lost terminate just bills a little longer).
  return t;
}

std::optional<SpotInterruption> ControlPlane::sample_interruption(
    double acquired_at, RegionId region) {
  if (!interruptions_enabled()) return std::nullopt;
  double reclaim_at = std::numeric_limits<double>::infinity();
  if (options_.faults.spot_interruption_mtbf_s > 0) {
    reclaim_at = acquired_at +
                 exponential(rng_, options_.faults.spot_interruption_mtbf_s);
  }
  // Weather spot storms layer a *shared* regional draw on top of the
  // i.i.d. process: the storm's reclamation instant hits every co-located
  // spot instance acquired before it, so the earlier of the two wins.
  if (const auto storm_at = weather_.spot_reclaim_after(region, acquired_at)) {
    if (*storm_at < reclaim_at) {
      reclaim_at = *storm_at;
      ++stats_.storm_reclaims;
      DECO_OBS_COUNTER_ADD("cloud.weather.spot_reclaims", 1);
    }
  }
  if (!std::isfinite(reclaim_at)) return std::nullopt;
  SpotInterruption interruption;
  interruption.reclaim_at = reclaim_at;
  interruption.notice_at =
      std::max(acquired_at, interruption.reclaim_at -
                                std::max(options_.faults.spot_notice_lead_s, 0.0));
  ++stats_.spot_interruptions;
  DECO_OBS_COUNTER_ADD("cloud.api.spot_interruptions", 1);
  return interruption;
}

}  // namespace deco::cloud
