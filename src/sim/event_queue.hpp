// Generic discrete-event simulation core (the CloudSim-like substrate).
//
// Events are (time, callback) pairs; ties break by insertion order so the
// simulation is deterministic.  Components schedule future work against the
// queue and the loop advances virtual time monotonically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace deco::sim {

class EventQueue {
 public:
  using Callback = std::function<void(double now)>;

  /// Schedules `fn` at absolute virtual time `time` (must be >= now()).
  void schedule(double time, Callback fn);

  /// Runs until the queue drains; returns the time of the last event.
  double run();

  /// Runs events with time <= horizon; later events stay queued.
  double run_until(double horizon);

  double now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t next_seq_ = 0;
  double now_ = 0;
};

}  // namespace deco::sim
