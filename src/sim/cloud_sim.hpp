// Cloud resource pool: the "Cloud" and "Instance" components of the
// CloudSim-based simulator (Section 6.1).
//
// The pool supports acquisition and release of instances, tracks busy/idle
// state, and bills by full instance-hours from acquisition to release — the
// partial-hour semantics that the Merge/Co-Scheduling transformations exploit.
// Instances sample their I/O and network performance from the catalog's
// ground-truth dynamics (per-task draws of the sustained rate).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "cloud/instance_type.hpp"
#include "util/rng.hpp"

namespace deco::sim {

using InstanceId = std::uint32_t;

struct Instance {
  cloud::TypeId type = 0;
  cloud::RegionId region = 0;
  double acquired_at = 0;
  double released_at = -1;   ///< -1 while running
  double busy_until = 0;     ///< next time the instance is free
  std::int32_t group = -1;   ///< plan group bound to this instance, if any
  /// Absolute time the instance crashes (sampled at acquisition by the
  /// failure model; +inf when crashes are disabled).
  double crash_at = std::numeric_limits<double>::infinity();
  /// Spot-interruption schedule (sampled at acquisition by the control
  /// plane; +inf when interruptions are disabled).  The notice precedes
  /// the reclamation by the control plane's notice lead, giving running
  /// attempts a checkpoint window.
  double reclaim_at = std::numeric_limits<double>::infinity();
  double notice_at = std::numeric_limits<double>::infinity();
  bool crashed = false;      ///< true once fail() retired it

  bool running() const { return released_at < 0; }
};

/// Simulated IaaS cloud holding acquired instances and computing charges.
class CloudPool {
 public:
  explicit CloudPool(const cloud::Catalog& catalog) : catalog_(&catalog) {}

  /// Acquires a fresh instance at `now`; optionally pinned to a plan group.
  InstanceId acquire(cloud::TypeId type, cloud::RegionId region, double now,
                     std::int32_t group = -1);

  /// Marks the instance released at `now` (bills ceil hours of uptime).
  void release(InstanceId id, double now);

  /// Retires a crashed instance at `now`: released un-refunded (the hours
  /// consumed until the crash are still billed, EC2-style) and excluded
  /// from find_idle / find_group.  Returns false if the instance was
  /// already failed or released (idempotent).
  bool fail(InstanceId id, double now);

  /// Releases every instance still running at `now`.
  void release_all(double now);

  /// Instances retired through fail().
  std::size_t crashed_count() const;

  /// An idle running instance of the given type/region, or an invalid id.
  static constexpr InstanceId kNone = static_cast<InstanceId>(-1);
  InstanceId find_idle(cloud::TypeId type, cloud::RegionId region,
                       double now) const;
  /// The running instance bound to `group`, or kNone.
  InstanceId find_group(std::int32_t group) const;

  Instance& instance(InstanceId id) { return instances_[id]; }
  const Instance& instance(InstanceId id) const { return instances_[id]; }
  std::size_t instance_count() const { return instances_.size(); }

  /// Total instance-hour charges for all (released) instances.
  double billed_cost() const;

  /// Instance-hours actually consumed (before rounding), for utilization.
  double used_hours() const;

  const cloud::Catalog& catalog() const { return *catalog_; }

 private:
  const cloud::Catalog* catalog_;
  std::vector<Instance> instances_;
};

/// Ceil-to-the-hour billing for one instance's lifetime.
double billed_hours(double acquired_at, double released_at);

}  // namespace deco::sim
