// Workflow execution with spot instances (pricing-model extension).
//
// Tasks flagged for spot execution run on spot instances bid at a fraction
// of the on-demand price.  When the market price rises above the bid while
// a task runs, the instance is revoked: the attempt's work is lost, the
// partial hour is not charged (EC2 semantics), and the task is retried once
// the price falls back to the bid (up to a retry cap, after which it falls
// back to an on-demand instance).  On-demand tasks behave exactly as in
// sim::simulate_execution.
#pragma once

#include "cloud/spot_market.hpp"
#include "sim/executor.hpp"

namespace deco::sim {

struct SpotPolicy {
  /// Per task: run on a spot instance?  (empty = all on-demand)
  std::vector<bool> use_spot;
  /// Bid as a fraction of the type's on-demand price.
  double bid_fraction = 0.6;
  /// Revocations tolerated per task before falling back to on-demand.
  std::size_t max_retries = 4;
};

struct SpotExecutionResult {
  ExecutionResult base;          ///< makespan / costs / per-task traces
  std::size_t revocations = 0;   ///< total revoked attempts
  std::size_t fallbacks = 0;     ///< tasks that gave up on spot
  double spot_cost = 0;          ///< spot share of the instance cost
  double on_demand_cost = 0;     ///< on-demand share
  /// Revocations whose interruption notice (options.control's
  /// spot_notice_lead_s) arrived with part of the attempt already done, so
  /// a checkpoint salvaged that work.  Zero without a control plane.
  std::size_t notices_honored = 0;
  double salvaged_s = 0;         ///< attempt-seconds preserved by checkpoints
};

/// Simulates one execution under `policy`, with one spot-price trace per
/// instance type (indexed by TypeId).
SpotExecutionResult simulate_spot_execution(
    const workflow::Workflow& wf, const Plan& plan, const SpotPolicy& policy,
    const std::vector<cloud::SpotPriceTrace>& traces,
    const cloud::Catalog& catalog, util::Rng& rng,
    const ExecutorOptions& options = {});

}  // namespace deco::sim
