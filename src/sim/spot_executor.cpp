#include "sim/spot_executor.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "sim/event_queue.hpp"

namespace deco::sim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

double mbps_to_bytes_per_s(double mbps) {
  return std::max(mbps, 1.0) * 1e6 / 8.0;
}

}  // namespace

SpotExecutionResult simulate_spot_execution(
    const workflow::Workflow& wf, const Plan& plan, const SpotPolicy& policy,
    const std::vector<cloud::SpotPriceTrace>& traces,
    const cloud::Catalog& catalog, util::Rng& rng,
    const ExecutorOptions& options) {
  SpotExecutionResult result;
  result.base.tasks.resize(wf.task_count());
  if (wf.task_count() == 0) return result;

  EventQueue queue;
  std::vector<std::size_t> waiting_parents(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    waiting_parents[t] = wf.parents(t).size();
  }

  double interference = 1.0;
  if (options.sample_dynamics && options.interference_cv > 0) {
    const util::Normal weather{1.0, options.interference_cv};
    interference = std::clamp(weather.sample(rng),
                              1.0 - 3 * options.interference_cv,
                              1.0 + 3 * options.interference_cv);
    interference = std::max(interference, 0.1);
  }
  auto rate = [&](const util::Distribution& dist) {
    return options.sample_dynamics
               ? cloud::sample_rate(dist, rng) * interference
               : dist.mean();
  };

  // One attempt's duration (CPU + I/O + network from other tasks).
  auto duration_of = [&](workflow::TaskId tid) {
    const TaskPlacement& placement = plan[tid];
    const cloud::InstanceType& type = catalog.type(placement.vm_type);
    double time =
        wf.task(tid).cpu_seconds / std::max(type.per_core_units, 0.1);
    const double seq = std::max(rate(type.seq_io_mbps), 1.0) * kMB;
    time += (wf.task(tid).input_bytes + wf.task(tid).output_bytes) / seq;
    const double iops = std::max(rate(type.rand_io_iops), 1.0);
    time += options.rand_io_ops_per_task / iops;
    for (const workflow::Edge& e : wf.edges()) {
      if (e.child != tid || e.bytes <= 0) continue;
      const double bw = mbps_to_bytes_per_s(
          rate(catalog.network_pair(plan[e.parent].vm_type,
                                    placement.vm_type)));
      time += e.bytes / bw;
    }
    return time;
  };

  // Advance warning before each market revocation (the control plane's spot
  // notice lead); 0 without a control plane = the seed executor's
  // no-warning semantics, where revoked work is entirely lost.
  const double notice_lead =
      options.control ? options.control->options().faults.spot_notice_lead_s
                      : 0;
  // Fraction of each task's work still to do after checkpoints.
  std::vector<double> remaining(wf.task_count(), 1.0);

  std::function<void(workflow::TaskId, double)> start_task;
  start_task = [&](workflow::TaskId tid, double now) {
    const TaskPlacement& placement = plan[tid];
    const cloud::InstanceType& type = catalog.type(placement.vm_type);
    const bool wants_spot = tid < policy.use_spot.size() &&
                            policy.use_spot[tid] &&
                            placement.vm_type < traces.size();
    const double on_demand = catalog.price(placement.vm_type, placement.region);

    double start = now;
    double spent_spot = 0;
    std::size_t attempts = 0;
    bool on_spot = wants_spot;

    if (wants_spot) {
      const cloud::SpotPriceTrace& trace = traces[placement.vm_type];
      const double bid = policy.bid_fraction * on_demand;
      for (; attempts < policy.max_retries; ++attempts) {
        // Wait until the market admits the bid.
        double t = start;
        while (trace.price_at(t) > bid) {
          t += trace.step_seconds();
          if (t > start + 48 * 3600) break;  // market never comes back
        }
        const double attempt_duration = duration_of(tid) * remaining[tid];
        const double revoke_at = trace.next_revocation(t, bid);
        if (revoke_at < 0 || revoke_at >= t + attempt_duration) {
          // The attempt completes; billed at the spot price (prorated).
          spent_spot += attempt_duration / 3600.0 * trace.price_at(t);
          const double finish = t + attempt_duration;
          result.base.tasks[tid] = TaskTrace{t, finish, CloudPool::kNone};
          result.spot_cost += spent_spot;
          queue.schedule(finish, [&, tid](double done) {
            for (workflow::TaskId child : wf.children(tid)) {
              if (--waiting_parents[child] == 0) start_task(child, done);
            }
          });
          return;
        }
        // Revoked mid-attempt: the revoked partial hour is free.  With a
        // notice lead the attempt checkpoints at the notice, salvaging the
        // work done before it; without one all the work is lost.
        ++result.revocations;
        if (notice_lead > 0 && attempt_duration > 0) {
          const double notice_at = revoke_at - notice_lead;
          const double done =
              std::clamp((notice_at - t) / attempt_duration, 0.0, 1.0);
          if (done > 0) {
            ++result.notices_honored;
            result.salvaged_s += done * attempt_duration;
            remaining[tid] *= 1.0 - done;
          }
        }
        start = revoke_at + trace.step_seconds();
      }
      // Too many revocations: fall back to on-demand.
      ++result.fallbacks;
      on_spot = false;
    }

    (void)on_spot;
    const double attempt_duration = duration_of(tid) * remaining[tid];
    const double finish = start + attempt_duration;
    result.base.tasks[tid] = TaskTrace{start, finish, CloudPool::kNone};
    // Prorated on-demand billing (Eq. 1's granularity — this simplified
    // executor does not model instance reuse, so hour-ceiling every task
    // would systematically overcharge the on-demand policy).
    const double cost = attempt_duration / 3600.0 *
                        catalog.price(plan[tid].vm_type, plan[tid].region);
    result.on_demand_cost += cost;
    result.spot_cost += spent_spot;  // wasted bids already counted as zero
    (void)type;
    queue.schedule(finish, [&, tid](double done) {
      for (workflow::TaskId child : wf.children(tid)) {
        if (--waiting_parents[child] == 0) start_task(child, done);
      }
    });
  };

  for (workflow::TaskId root : wf.roots()) {
    queue.schedule(0, [&, root](double now) { start_task(root, now); });
  }
  queue.run();

  double makespan = 0;
  for (const TaskTrace& trace : result.base.tasks) {
    makespan = std::max(makespan, trace.finish);
  }
  result.base.makespan = makespan;
  result.base.instance_cost = result.spot_cost + result.on_demand_cost;
  result.base.total_cost = result.base.instance_cost;
  return result;
}

}  // namespace deco::sim
