#include "sim/ensemble.hpp"

#include <chrono>
#include <exception>
#include <limits>
#include <mutex>
#include <vector>

#include "obs/obs.hpp"

namespace deco::sim {

std::uint64_t substream_seed(std::uint64_t base_seed,
                             std::uint64_t run_index) {
  // splitmix64 finalizer over base + golden-ratio-stepped index (the scheme
  // wms::ReactiveEngine uses for segment streams): full 64-bit avalanche, so
  // neighbouring indices share no statistical structure.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL * (run_index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

EnsembleRunner::EnsembleRunner(EnsembleOptions options) : options_(options) {
  if (options_.chunk == 0) options_.chunk = 1;
  if (options_.pool == nullptr && options_.workers > 0) {
    owned_pool_ = std::make_unique<util::WorkStealingPool>(options_.workers);
  }
}

EnsembleRunner::~EnsembleRunner() = default;

std::size_t EnsembleRunner::worker_count() const {
  if (options_.pool != nullptr) return options_.pool->size();
  return owned_pool_ ? owned_pool_->size() : 0;
}

EnsembleReport EnsembleRunner::run(
    std::size_t n, std::uint64_t base_seed,
    const std::function<void(const RunContext&)>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  // The registry the sweep reports into: whatever this thread resolves now
  // (usually the process-wide one; under nesting, the enclosing run's
  // shard).  Captured per-run registries merge into it in index order.
  obs::Registry& parent = obs::Registry::instance();
  const bool capture =
      options_.capture_metrics && obs::kCompiledIn && parent.enabled();

  EnsembleReport report;
  report.runs = n;
  report.workers = worker_count();

  std::vector<std::unique_ptr<obs::Registry>> run_registries(capture ? n : 0);
  // Per-run outcome: 0 = completed, 1 = skipped (budget), 2 = failed.  Each
  // slot is written by exactly one run; the pool join publishes them.
  std::vector<std::uint8_t> outcome(n, 0);

  // Lowest-index body exception, rethrown after the sweep.  The serial loop
  // visits indices in order so its first throw is already the lowest; the
  // sharded path keeps the minimum under a mutex.
  std::mutex error_mutex;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;

  const auto run_one = [&](std::size_t index, std::size_t participant) {
    if (options_.budget != nullptr && options_.budget->should_stop()) {
      outcome[index] = 1;
      return;
    }
    RunContext ctx;
    ctx.index = index;
    ctx.seed = substream_seed(base_seed, index);
    ctx.participant = participant;
    obs::Registry* run_registry = nullptr;
    if (capture) {
      run_registries[index] = std::make_unique<obs::Registry>();
      run_registry = run_registries[index].get();
      run_registry->set_enabled(true);
    }
    try {
      const obs::ScopedRegistry scope(run_registry);
      body(ctx);
    } catch (...) {
      outcome[index] = 2;
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (index < error_index) {
        error_index = index;
        error = std::current_exception();
      }
    }
  };

  util::WorkStealingPool* pool =
      options_.pool != nullptr ? options_.pool : owned_pool_.get();
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) run_one(i, 0);
  } else {
    const auto stats = pool->run(
        n, options_.chunk,
        [&](std::size_t begin, std::size_t end, std::size_t participant) {
          for (std::size_t i = begin; i < end; ++i) run_one(i, participant);
        });
    report.chunks = stats.chunks;
    report.steals = stats.steals;
    report.participants = stats.participants;
  }

  // Deterministic shard merge: absorb per-run snapshots in run-index order
  // on this thread (the pool join above is the happens-before edge), so the
  // parent registry ends bit-identical to a serial sweep.  Failed runs
  // still merge what they recorded before throwing — the serial loop would
  // have recorded exactly the same prefix.
  if (capture) {
    for (std::size_t i = 0; i < n; ++i) {
      if (run_registries[i] == nullptr) continue;
      parent.absorb(run_registries[i]->snapshot());
      run_registries[i].reset();
    }
  }

  for (const std::uint8_t o : outcome) {
    if (o == 0) ++report.completed;
    else if (o == 1) ++report.skipped;
    else ++report.failed;
  }
  report.budget_exhausted =
      options_.budget != nullptr && options_.budget->exhausted();
  report.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();

  // Deterministic sweep counters (part of the bit-identity contract) …
  DECO_OBS_COUNTER_ADD("sim.ensemble.sweeps", 1);
  DECO_OBS_COUNTER_ADD("sim.ensemble.runs", report.completed);
  if (report.skipped > 0) {
    DECO_OBS_COUNTER_ADD("sim.ensemble.skipped", report.skipped);
  }
  if (report.failed > 0) {
    DECO_OBS_COUNTER_ADD("sim.ensemble.failed", report.failed);
  }
  if (capture) {
    DECO_OBS_COUNTER_ADD("sim.ensemble.shard_merges", n - report.skipped);
  }
  // … and execution-shape gauges, which describe the host rather than the
  // simulated system and are exempt from the contract.
  DECO_OBS_GAUGE_SET("sim.ensemble.workers",
                     static_cast<double>(report.workers));
  DECO_OBS_GAUGE_SET("sim.ensemble.last_sweep_ms", report.wall_ms);

  if (error) std::rethrow_exception(error);
  return report;
}

}  // namespace deco::sim
