// Resource provisioning plan: the output of Deco and the input to the
// simulator / WMS execution engine.
//
// Section 2: "Deco returns the found resource provisioning plan (indicating
// the selected execution site for each task in the workflow)".  A site is an
// (instance type, region) pair plus an optional co-scheduling group: tasks
// sharing a group id run on the same instance (the Merge / Co-Scheduling
// transformation operations).
#pragma once

#include <cstdint>
#include <vector>

#include "cloud/instance_type.hpp"
#include "workflow/dag.hpp"

namespace deco::sim {

inline constexpr std::int32_t kNoGroup = -1;

struct TaskPlacement {
  cloud::TypeId vm_type = 0;
  cloud::RegionId region = 0;
  std::int32_t group = kNoGroup;  ///< tasks with equal group share an instance

  bool operator==(const TaskPlacement&) const = default;
};

struct Plan {
  std::vector<TaskPlacement> placements;  ///< indexed by TaskId

  static Plan uniform(std::size_t tasks, cloud::TypeId type,
                      cloud::RegionId region = 0) {
    Plan plan;
    plan.placements.assign(tasks, TaskPlacement{type, region, kNoGroup});
    return plan;
  }

  std::size_t size() const { return placements.size(); }
  TaskPlacement& operator[](std::size_t i) { return placements[i]; }
  const TaskPlacement& operator[](std::size_t i) const { return placements[i]; }

  bool operator==(const Plan&) const = default;
};

}  // namespace deco::sim
