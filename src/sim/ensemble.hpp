// Sharded ensemble simulation: fan independent simulator runs across the
// work-stealing pool with a hard determinism contract.
//
// Every ensemble-shaped workload in the repository — robustness/weather grid
// cells, reactive same-seed probes, Monte-Carlo-over-futures sweeps, member
// scoring in core::EnsemblePlanner — is a loop of runs that are independent
// by construction: run i's entire behaviour derives from (base_seed, i) and
// shared *const* inputs.  sim.execute_ms shows a single run costs well under
// a millisecond, so throughput questions (10k-instance fleets,
// thousand-workflow ensembles) are limited purely by the serial loop.
// EnsembleRunner is that loop, parallelised without giving up reproducibility:
//
//   * per-run RNG substreams: run i receives substream_seed(base_seed, i)
//     (a splitmix64 finalizer mix, the same scheme the reactive engine uses
//     for segment streams), so no run's stream depends on any other run
//     having executed;
//   * per-run obs shards: while a run body executes, Registry::instance()
//     resolves to a private per-run registry (obs::ScopedRegistry); after
//     the sweep the per-run snapshots are absorbed into the parent registry
//     in run-index order.  Counters/histograms sum run by run in index
//     order and gauges resolve last-run-wins — byte-identical registry
//     state whether the bodies ran serially or on N workers;
//   * cooperative budgets: an optional util::BudgetTracker is polled
//     between runs.  Runs that would start after the budget fired are
//     skipped (never half-executed), completed runs keep their results —
//     the anytime contract of the solver stack extended to sweeps;
//   * deterministic failure handling: a throwing run is recorded, the
//     remaining runs still execute, and the lowest-index exception is
//     rethrown after the sweep (after metrics merge) — the same exception
//     the serial loop would surface, at any worker count.
//
// The determinism contract — the reason this layer exists — is
// *sharded == serial bit-identical*: identical per-run results, identical
// merged metrics, identical plan choices at every worker count, enforced by
// tests/sim/ensemble_shard_test.cpp.  The only exempt outputs are the
// runner's own wall-clock gauges (sim.ensemble.last_sweep_ms,
// sim.ensemble.workers), which describe the execution rather than the
// simulated system; latency histogram *values* recorded by run bodies are
// wall-clock too and therefore compared by observation count, not by sum
// (see docs/performance.md, "Ensemble sharding").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "util/budget.hpp"
#include "util/worksteal.hpp"

namespace deco::sim {

/// Deterministic per-run substream seed: splitmix64-finalizer mix of
/// (base_seed, run_index).  Adjacent indices give statistically independent
/// xoshiro seeds, and the mapping is pure — a run's stream never depends on
/// which other runs executed or where.
std::uint64_t substream_seed(std::uint64_t base_seed, std::uint64_t run_index);

struct EnsembleOptions {
  /// Worker threads to spin up for the sweep.  0 = the serial reference
  /// mode: a plain in-order loop on the calling thread (still with per-run
  /// seeds, obs shards and budget checkpoints, so it is the bit-identity
  /// baseline for any sharded configuration, not legacy behaviour).
  std::size_t workers = 0;
  /// Borrowed pool to shard on (overrides `workers` when non-null).  Reuse
  /// one pool across sweeps to amortize thread start-up.
  util::WorkStealingPool* pool = nullptr;
  /// Runs claimed per deque access when sharding.  1 maximizes stealing
  /// granularity; raise it when runs are very short.
  std::size_t chunk = 1;
  /// Optional cooperative budget, polled before each run starts: once it
  /// fires, not-yet-started runs are skipped and counted, completed runs
  /// keep their results (anytime sweeps).
  util::BudgetTracker* budget = nullptr;
  /// Capture each run's metrics into a private registry shard and merge
  /// them into the parent registry in run-index order.  Disable only for
  /// bodies that must observe the process-wide registry directly.
  bool capture_metrics = true;
};

/// Handed to the run body: everything a run may derive state from.
struct RunContext {
  std::size_t index = 0;        ///< run index in [0, n)
  std::uint64_t seed = 0;       ///< substream_seed(base_seed, index)
  std::size_t participant = 0;  ///< stable executing-thread id (scratch key)
};

/// What one sweep did.
struct EnsembleReport {
  std::size_t runs = 0;       ///< n requested
  std::size_t completed = 0;  ///< bodies that ran to completion
  std::size_t skipped = 0;    ///< runs never started (budget fired first)
  std::size_t failed = 0;     ///< bodies that threw (exception rethrown)
  bool budget_exhausted = false;
  double wall_ms = 0;             ///< sweep wall clock (not part of contract)
  std::size_t workers = 0;        ///< worker threads used (0 = serial mode)
  std::size_t chunks = 0;         ///< work-stealing chunk claims
  std::size_t steals = 0;         ///< successful range steals
  std::size_t participants = 0;   ///< threads that executed >= 1 run
};

class EnsembleRunner {
 public:
  explicit EnsembleRunner(EnsembleOptions options = {});
  ~EnsembleRunner();

  EnsembleRunner(const EnsembleRunner&) = delete;
  EnsembleRunner& operator=(const EnsembleRunner&) = delete;

  /// Executes body(ctx) once per run index in [0, n).  The body must derive
  /// all stochastic state from ctx.seed and may not mutate shared state
  /// (shared inputs are const; per-run outputs go to distinct slots, e.g.
  /// results[ctx.index]).  Blocks until every non-skipped run finished;
  /// rethrows the lowest-index body exception after merging metrics.
  EnsembleReport run(std::size_t n, std::uint64_t base_seed,
                     const std::function<void(const RunContext&)>& body);

  const EnsembleOptions& options() const { return options_; }
  /// Worker threads a sweep will use (0 = serial mode).
  std::size_t worker_count() const;

 private:
  EnsembleOptions options_;
  std::unique_ptr<util::WorkStealingPool> owned_pool_;
};

}  // namespace deco::sim
