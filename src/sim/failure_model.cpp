#include "sim/failure_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/backoff.hpp"

namespace deco::sim {

bool FailureModel::enabled() const {
  return crashes_enabled() || options_.boot_failure_prob > 0 ||
         options_.task_failure_prob > 0 || options_.straggler_prob > 0;
}

double FailureModel::sample_uptime(util::Rng& rng, double hazard) const {
  // Inverse-CDF sampling keeps the draw to one uniform, so the executor's
  // RNG consumption per acquisition is fixed.
  const double u = std::max(1.0 - rng.uniform(), 1e-12);  // (0, 1]
  const double log_term = -std::log(u);
  double uptime;
  if (options_.crash_distribution ==
      FailureModelOptions::CrashDistribution::kExponential) {
    uptime = options_.crash_mtbf_s * log_term;
  } else {
    // Weibull(k, lambda) with the scale chosen so the mean uptime is the
    // configured MTBF: E[X] = lambda * Gamma(1 + 1/k).
    const double k = std::max(options_.weibull_shape, 0.1);
    const double lambda = options_.crash_mtbf_s / std::tgamma(1.0 + 1.0 / k);
    uptime = lambda * std::pow(log_term, 1.0 / k);
  }
  // The guard keeps hazard == 1.0 bit-identical to the unscaled draw
  // (x / 1.0 rounds identically, but don't rely on it).
  if (hazard != 1.0) uptime /= std::max(hazard, 1e-6);
  return uptime;
}

bool FailureModel::sample_boot_failure(util::Rng& rng) const {
  return options_.boot_failure_prob > 0 &&
         rng.chance(options_.boot_failure_prob);
}

bool FailureModel::sample_task_failure(util::Rng& rng) const {
  return options_.task_failure_prob > 0 &&
         rng.chance(options_.task_failure_prob);
}

bool FailureModel::sample_straggler(util::Rng& rng) const {
  return options_.straggler_prob > 0 && rng.chance(options_.straggler_prob);
}

double FailureModel::backoff_delay(std::size_t attempt) const {
  // Shared capped-exponential helper (util/backoff.hpp), jitter disabled:
  // the simulator's retry schedule stays fully deterministic.
  const util::BackoffOptions backoff{options_.retry_backoff_s,
                                     options_.retry_backoff_factor,
                                     options_.retry_backoff_cap_s,
                                     /*jitter=*/0.0};
  return util::backoff_ceiling(backoff, attempt);
}

double FailureModel::expected_time_factor(double nominal_s) const {
  if (nominal_s <= 0 || !enabled()) return 1.0;

  // Mean backoff over the retry window (retries draw increasing delays up
  // to the cap).
  const std::size_t r = std::max<std::size_t>(options_.max_task_retries, 1);
  double mean_backoff = 0;
  for (std::size_t i = 1; i <= r; ++i) mean_backoff += backoff_delay(i);
  mean_backoff /= static_cast<double>(r);

  // Stragglers stretch the attempt itself.
  const double stretched =
      nominal_s * (1.0 + options_.straggler_prob *
                             (std::max(options_.straggler_slowdown, 1.0) - 1.0));
  double expected = stretched;

  // Transient retries: with per-attempt failure probability p capped at r
  // injected failures, the expected number of failed attempts is
  // p (1 - p^r) / (1 - p); each loses ~half an attempt and waits one
  // backoff.
  const double p = std::clamp(options_.task_failure_prob, 0.0, 0.95);
  if (p > 0) {
    const double failed =
        p * (1.0 - std::pow(p, static_cast<double>(r))) / (1.0 - p);
    expected += failed * (0.5 * stretched + mean_backoff);
  }

  // Crashes: a task of duration d on an instance with mean uptime M is hit
  // with probability ~ d / M (first order); a hit loses half the attempt
  // minus what checkpointing salvages, then waits one backoff.
  if (crashes_enabled()) {
    const double q = std::min(stretched / options_.crash_mtbf_s, 0.9);
    const double lost = 0.5 * stretched *
                        (1.0 - std::clamp(options_.checkpoint_fraction, 0.0, 1.0));
    expected += q * (lost + mean_backoff);
  }

  // Boot failures delay the acquisition the attempt may be waiting on.
  if (options_.boot_failure_prob > 0) {
    const double pb = std::clamp(options_.boot_failure_prob, 0.0, 0.95);
    expected += pb / (1.0 - pb) * options_.boot_retry_s;
  }

  return expected / nominal_s;
}

}  // namespace deco::sim
