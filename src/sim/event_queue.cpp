#include "sim/event_queue.hpp"

#include <algorithm>

namespace deco::sim {

void EventQueue::schedule(double time, Callback fn) {
  events_.push(Event{std::max(time, now_), next_seq_++, std::move(fn)});
}

double EventQueue::run() {
  while (!events_.empty()) {
    // Copy out: the callback may schedule more events.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn(now_);
  }
  return now_;
}

double EventQueue::run_until(double horizon) {
  while (!events_.empty() && events_.top().time <= horizon) {
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ev.fn(now_);
  }
  now_ = std::max(now_, horizon);
  return now_;
}

}  // namespace deco::sim
