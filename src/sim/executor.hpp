// Workflow execution on the simulated cloud.
//
// Implements the "Workflow component" of Section 6.1: it manages workflow
// structure and the scheduling of tasks onto simulated instances, honouring a
// provisioning Plan.  A task's duration is the sum of its CPU, I/O and
// network components (the estimation model of Section 5.1), with the I/O and
// network rates drawn per task from the catalog's ground-truth dynamics —
// the simulator-side counterpart of "the average I/O and network performance
// per second conform the distributions from calibration".
#pragma once

#include <limits>
#include <vector>

#include "cloud/control_plane.hpp"
#include "cloud/instance_type.hpp"
#include "sim/cloud_sim.hpp"
#include "sim/failure_model.hpp"
#include "sim/plan.hpp"
#include "util/rng.hpp"
#include "workflow/dag.hpp"

namespace deco::sim {

struct ExecutorOptions {
  double boot_seconds = 0;        ///< provisioning latency for new instances
  bool sample_dynamics = true;    ///< false = deterministic means (for tests)
  double rand_io_ops_per_task = 50;  ///< metadata-style random reads per task
  /// Coefficient of variation of the *correlated* interference component:
  /// one factor per run scales every I/O and network rate.  Cloud
  /// interference is strongly time-correlated (Schad et al., the paper's
  /// [33]) — a congested disk or network stays congested across a workflow
  /// run, which is what makes whole-workflow execution times vary
  /// significantly (Fig. 2) even though per-task noise averages out.
  double interference_cv = 0.15;
  /// Failure injection (borrowed; may be nullptr).  A null or all-zero
  /// model consumes no RNG state and reproduces failure-free traces bit
  /// for bit.
  const FailureModel* failures = nullptr;
  /// Virtual-time horizon: events past it stay unprocessed and tasks not
  /// finished by then are reported incomplete.  The reactive WMS engine
  /// uses this to materialize a run's prefix up to a replanning point.
  double horizon_s = std::numeric_limits<double>::infinity();
  /// Control plane mediating every acquire/terminate (borrowed; may be
  /// nullptr = the seed simulator's infallible API).  A control plane with
  /// the null fault model grants instantly, consumes no entropy, and keeps
  /// traces bit-identical to running without one.  With faults enabled,
  /// provisioning retries/falls back inside the control plane (delaying the
  /// acquisition in virtual time) and throws
  /// cloud::ProvisioningExhaustedError when even fallback capacity is gone.
  cloud::ControlPlane* control = nullptr;
};

struct TaskTrace {
  double start = 0;
  double finish = 0;
  InstanceId instance = CloudPool::kNone;
};

/// How one task attempt ended.
enum class AttemptOutcome : std::uint8_t {
  kCompleted,    ///< ran to its finish time
  kCrashed,      ///< the executing instance crashed mid-attempt
  kFailed,       ///< transient task failure killed the attempt
  kInterrupted,  ///< the instance was reclaimed (spot interruption); work
                 ///< up to the notice was checkpointed
};

/// One started execution attempt of a task.  The executor appends a record
/// when the attempt's terminal event (finish / crash / failure) is
/// processed, so under a virtual-time horizon the log covers exactly the
/// attempts whose outcome fell inside the horizon — and for any run,
/// attempts.size() == (completed tasks) + failures.retries.  The timeline
/// exporter (obs/timeline.hpp) renders these as slices per instance track.
struct TaskAttempt {
  workflow::TaskId task = 0;
  std::uint32_t attempt = 0;  ///< 0-based attempt index for this task
  double start = 0;
  double end = 0;
  InstanceId instance = CloudPool::kNone;
  AttemptOutcome outcome = AttemptOutcome::kCompleted;
};

/// Counters for injected failures observed during one execution.
struct FailureStats {
  std::size_t instance_crashes = 0;  ///< instances lost (running or idle)
  std::size_t boot_failures = 0;     ///< failed acquisition attempts
  std::size_t task_failures = 0;     ///< transient task-attempt failures
  std::size_t stragglers = 0;        ///< attempts hit by a slowdown
  std::size_t retries = 0;           ///< task attempts rescheduled
  /// Instances reclaimed by spot interruption (notice-then-reclaim via the
  /// control plane).  Disturbed attempts also count one retry each, so
  /// total_disruptions() already covers them.
  std::size_t spot_interruptions = 0;

  std::size_t total_disruptions() const {
    return instance_crashes + boot_failures + task_failures + retries;
  }
};

struct ExecutionResult {
  double makespan = 0;        ///< seconds from submission to last finish
  double instance_cost = 0;   ///< billed instance-hours, USD
  double transfer_cost = 0;   ///< inter-region egress, USD
  double total_cost = 0;
  std::size_t instances_used = 0;
  std::vector<TaskTrace> tasks;
  /// Every started attempt, in event-processing order (see TaskAttempt).
  std::vector<TaskAttempt> attempts;
  /// Final state of every instance the run acquired (type, region,
  /// acquisition/release times, crash flag) — the timeline exporter's
  /// track metadata.
  std::vector<Instance> instances;
  /// completed[t] != 0 iff task t finished within the horizon.
  std::vector<std::uint8_t> completed;
  bool finished = true;       ///< every task completed
  FailureStats failures;
  /// Virtual time of the first failure that disturbed work (a crash hitting
  /// a task, a transient failure, or a boot failure); +inf when clean.  The
  /// reactive engine cuts its replanning horizon here.
  double first_failure_s = std::numeric_limits<double>::infinity();
  /// Virtual time of the first spot-interruption *notice* that lands inside
  /// the run; +inf when none does.  Unlike first_failure_s this is an
  /// advance warning: the reactive engine replans proactively at the notice
  /// (checkpoint + move work) instead of reacting to the reclamation.
  double first_notice_s = std::numeric_limits<double>::infinity();
  /// Earliest regional storm opening, before the run ends, in a region this
  /// run's instances occupy (+inf without weather or when no storm lands).
  /// Like first_notice_s this is a forecast the reactive engine acts on —
  /// it cuts ahead of the storm and evacuates `storm_region`.
  double first_storm_s = std::numeric_limits<double>::infinity();
  double first_storm_end_s = std::numeric_limits<double>::infinity();
  cloud::RegionId storm_region = 0;
};

/// Simulates one execution of `wf` under `plan`.  Each call consumes RNG
/// state, so repeated calls give the execution-time distribution (Fig. 2).
ExecutionResult simulate_execution(const workflow::Workflow& wf,
                                   const Plan& plan,
                                   const cloud::Catalog& catalog,
                                   util::Rng& rng,
                                   const ExecutorOptions& options = {});

}  // namespace deco::sim
