#include "sim/cloud_sim.hpp"

#include <algorithm>
#include <cmath>

namespace deco::sim {

double billed_hours(double acquired_at, double released_at) {
  const double uptime = std::max(released_at - acquired_at, 0.0);
  return std::max(1.0, std::ceil(uptime / 3600.0));
}

InstanceId CloudPool::acquire(cloud::TypeId type, cloud::RegionId region,
                              double now, std::int32_t group) {
  Instance inst;
  inst.type = type;
  inst.region = region;
  inst.acquired_at = now;
  inst.busy_until = now;
  inst.group = group;
  instances_.push_back(inst);
  return static_cast<InstanceId>(instances_.size() - 1);
}

void CloudPool::release(InstanceId id, double now) {
  Instance& inst = instances_[id];
  if (inst.running()) inst.released_at = std::max(now, inst.acquired_at);
}

bool CloudPool::fail(InstanceId id, double now) {
  Instance& inst = instances_[id];
  if (inst.crashed || !inst.running()) return false;
  inst.released_at = std::max(now, inst.acquired_at);
  inst.crashed = true;
  return true;
}

void CloudPool::release_all(double now) {
  for (InstanceId id = 0; id < instances_.size(); ++id) release(id, now);
}

std::size_t CloudPool::crashed_count() const {
  std::size_t count = 0;
  for (const Instance& inst : instances_) count += inst.crashed;
  return count;
}

InstanceId CloudPool::find_idle(cloud::TypeId type, cloud::RegionId region,
                                double now) const {
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    const Instance& inst = instances_[id];
    if (inst.running() && inst.type == type && inst.region == region &&
        inst.group < 0 && inst.busy_until <= now) {
      return id;
    }
  }
  return kNone;
}

InstanceId CloudPool::find_group(std::int32_t group) const {
  if (group < 0) return kNone;
  for (InstanceId id = 0; id < instances_.size(); ++id) {
    if (instances_[id].running() && instances_[id].group == group) return id;
  }
  return kNone;
}

double CloudPool::billed_cost() const {
  double total = 0;
  for (const Instance& inst : instances_) {
    const double end = inst.running() ? inst.busy_until : inst.released_at;
    total += billed_hours(inst.acquired_at, end) *
             catalog_->price(inst.type, inst.region);
  }
  return total;
}

double CloudPool::used_hours() const {
  double total = 0;
  for (const Instance& inst : instances_) {
    const double end = inst.running() ? inst.busy_until : inst.released_at;
    total += std::max(end - inst.acquired_at, 0.0) / 3600.0;
  }
  return total;
}

}  // namespace deco::sim
