#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"

namespace deco::sim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;
constexpr double kGB = 1024.0 * kMB;

/// Converts a megabit-per-second bandwidth to bytes per second.
double mbps_to_bytes_per_s(double mbps) {
  return std::max(mbps, 1.0) * 1e6 / 8.0;
}

/// Converts an MB/s disk rate to bytes per second.
double disk_rate_bytes_per_s(double mb_per_s) {
  return std::max(mb_per_s, 1.0) * kMB;
}

/// Consecutive boot failures tolerated per acquisition (termination bound).
constexpr int kMaxBootRetries = 4;

}  // namespace

ExecutionResult simulate_execution(const workflow::Workflow& wf,
                                   const Plan& plan,
                                   const cloud::Catalog& catalog,
                                   util::Rng& rng,
                                   const ExecutorOptions& options) {
  DECO_OBS_SPAN_TIMED("sim", "simulate_execution", "sim.execute_ms");
  ExecutionResult result;
  result.tasks.resize(wf.task_count());
  result.completed.assign(wf.task_count(), 0);
  if (wf.task_count() == 0) return result;

  // Failure injection is active only when a model with at least one non-zero
  // rate is supplied; every draw below is additionally gated on its own rate,
  // so the failure-free path consumes the RNG exactly as the seed executor
  // did and stays bit-identical.
  const FailureModel* fm =
      options.failures && options.failures->enabled() ? options.failures
                                                      : nullptr;
  // Control-plane mediation: a null fault model grants instantly and draws
  // nothing (its own bit-identity contract), so `cp` stays set only when the
  // API can actually misbehave.  Its entropy lives inside the control plane;
  // the executor's rng stream is never touched by API faults.
  cloud::ControlPlane* cp =
      options.control && !options.control->null_model() ? options.control
                                                        : nullptr;
  const bool interruptions = cp && cp->interruptions_enabled();
  // Disruptions tolerated per task before attempts run failure-immune (the
  // simulation must terminate).  Spot interruptions share the cap so a
  // pathological interruption rate cannot livelock a task.
  constexpr std::size_t kInterruptRetryCap = 3;
  const std::size_t retry_cap = fm ? fm->options().max_task_retries
                                   : (interruptions ? kInterruptRetryCap : 0);

  CloudPool pool(catalog);
  EventQueue queue;
  std::vector<std::size_t> waiting_parents(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    waiting_parents[t] = wf.parents(t).size();
  }
  // Injected failures suffered per task so far; once a task reaches the
  // retry cap its next attempt runs failure-immune so the simulation
  // terminates (a real WMS would declare the workflow failed — here the
  // robustness metrics read the inflated makespan instead).
  std::vector<std::size_t> attempts(wf.task_count(), 0);
  // Fraction of each task's work still to do: crashes salvage
  // checkpoint_fraction of the completed part, so retries shrink.
  std::vector<double> remaining(wf.task_count(), 1.0);

  double transfer_cost = 0;

  // Correlated interference: one factor for the whole run scales every I/O
  // and network rate (congestion persists across a workflow execution).
  double interference = 1.0;
  if (options.sample_dynamics && options.interference_cv > 0) {
    const util::Normal weather{1.0, options.interference_cv};
    interference = std::clamp(weather.sample(rng),
                              1.0 - 3 * options.interference_cv,
                              1.0 + 3 * options.interference_cv);
    interference = std::max(interference, 0.1);
  }

  // Draw a rate from a distribution (floored per cloud::sample_rate), or
  // take the mean when dynamics are off.
  auto rate = [&](const util::Distribution& dist) {
    return options.sample_dynamics
               ? cloud::sample_rate(dist, rng) * interference
               : dist.mean();
  };

  auto note_failure = [&](double t) {
    result.first_failure_s = std::min(result.first_failure_s, t);
  };
  auto note_notice = [&](double t) {
    result.first_notice_s = std::min(result.first_notice_s, t);
  };

  // Forward declaration pattern: the lambda is stored so completion events
  // can make children ready.
  std::function<void(workflow::TaskId, double)> start_task;

  auto on_ready = [&](workflow::TaskId tid, double now) {
    start_task(tid, now);
  };

  start_task = [&](workflow::TaskId tid, double now) {
    const TaskPlacement& placement = plan[tid];

    // Locate or acquire the executing instance, retiring dead candidates
    // (crashed, or reclaimed by a spot interruption).
    InstanceId inst_id = CloudPool::kNone;
    double start = now;
    for (;;) {
      if (placement.group >= 0) {
        inst_id = pool.find_group(placement.group);
      } else {
        inst_id = pool.find_idle(placement.vm_type, placement.region, now);
      }
      if (inst_id == CloudPool::kNone) {
        // Every acquisition goes through the control plane: throttling,
        // transient errors and capacity outages delay (or redirect) the
        // launch in virtual time before the instance exists.
        double admit = now;
        cloud::TypeId grant_type = placement.vm_type;
        cloud::RegionId grant_region = placement.region;
        if (cp) {
          const cloud::ProvisionGrant grant =
              cp->provision(placement.vm_type, placement.region, now);
          if (!grant.ok) {
            throw cloud::ProvisioningExhaustedError(
                "control plane exhausted: no capacity for " +
                catalog.type(placement.vm_type).name +
                " or any fallback candidate");
          }
          admit = grant.ready_at;
          grant_type = grant.type;
          grant_region = grant.region;
        }
        double boot_delay = options.boot_seconds;
        if (fm) {
          // Failed boots delay the acquisition (the failed provisioning
          // attempt itself is not billed); capped so the run terminates.
          for (int tries = 0;
               tries < kMaxBootRetries && fm->sample_boot_failure(rng);
               ++tries) {
            ++result.failures.boot_failures;
            note_failure(admit + boot_delay);
            boot_delay += fm->options().boot_retry_s + options.boot_seconds;
          }
        }
        inst_id = pool.acquire(grant_type, grant_region, admit,
                               placement.group);
        if (fm && fm->crashes_enabled()) {
          // Crash hazard follows where the instance runs: the model's
          // static per-region multiplier composed with the regional
          // weather's storm multiplier at acquisition.  Both default to
          // exactly 1.0, which keeps the draw bit-identical to the
          // region-blind model.
          double hazard = fm->region_hazard(grant_region);
          if (cp && cp->weather().enabled()) {
            hazard *= cp->weather().crash_multiplier(grant_region, admit);
          }
          pool.instance(inst_id).crash_at =
              admit + fm->sample_uptime(rng, hazard);
        }
        if (interruptions) {
          if (const auto intr = cp->sample_interruption(admit, grant_region)) {
            pool.instance(inst_id).reclaim_at = intr->reclaim_at;
            pool.instance(inst_id).notice_at = intr->notice_at;
          }
        }
        start = admit + boot_delay;
        break;
      }
      const Instance& inst = pool.instance(inst_id);
      const double avail = std::max(now, inst.busy_until);
      const double crash_at =
          fm ? inst.crash_at : std::numeric_limits<double>::infinity();
      const double reclaim_at =
          interruptions ? inst.reclaim_at
                        : std::numeric_limits<double>::infinity();
      const double dead_at = std::min(crash_at, reclaim_at);
      if (dead_at <= avail) {
        if (dead_at <= now) {
          // Died while sitting idle: retire it un-refunded (billed to the
          // crash/reclamation) and look for a replacement.
          if (pool.fail(inst_id, dead_at)) {
            if (crash_at <= reclaim_at) {
              ++result.failures.instance_crashes;
            } else {
              ++result.failures.spot_interruptions;
              note_notice(inst.notice_at);
            }
          }
          continue;
        }
        // The instance dies before it could serve this task (the attempt
        // currently occupying it observes the death itself); wait for it
        // to be detected, then reschedule on a replacement.  A reclamation
        // was announced by its notice, so no detection backoff applies.
        const double redo =
            crash_at <= reclaim_at ? dead_at + fm->backoff_delay(0) : dead_at;
        queue.schedule(redo, [&, tid](double t) { start_task(tid, t); });
        return;
      }
      start = avail;
      break;
    }
    // Durations and data movement are priced by the hardware actually
    // granted — identical to the plan's placement unless the control plane
    // fell back to an alternate type or region.
    const cloud::InstanceType& type = catalog.type(pool.instance(inst_id).type);
    const cloud::RegionId inst_region = pool.instance(inst_id).region;

    // CPU component: reference seconds scaled by compute units.
    const double cpu_time = wf.task(tid).cpu_seconds /
                            std::max(type.per_core_units, 0.1);

    // Disk I/O component: bulk reads/writes at the sampled sequential rate
    // plus metadata-style random operations at the sampled IOPS.
    const double seq_rate = disk_rate_bytes_per_s(rate(type.seq_io_mbps));
    double io_time =
        (wf.task(tid).input_bytes + wf.task(tid).output_bytes) / seq_rate;
    const double iops = std::max(rate(type.rand_io_iops), 1.0);
    io_time += options.rand_io_ops_per_task / iops;

    // Network component: parent outputs fetched from other instances
    // (completed outputs live on shared storage, so a parent's data
    // survives the crash of the instance that produced it).
    double net_time = 0;
    for (const workflow::Edge& e : wf.edges()) {
      if (e.child != tid || e.bytes <= 0) continue;
      const TaskTrace& parent_trace = result.tasks[e.parent];
      if (parent_trace.instance == inst_id) continue;  // data is local
      // Transfer rates and egress pricing follow where the parent's data
      // actually lives (== the plan's placement unless a fallback grant
      // redirected the parent).
      const Instance& parent_inst = pool.instance(parent_trace.instance);
      if (parent_inst.region != inst_region) {
        const double bw = mbps_to_bytes_per_s(rate(catalog.inter_region_net()));
        net_time += e.bytes / bw;
        transfer_cost += e.bytes / kGB * catalog.egress_price(parent_inst.region);
      } else {
        const double bw = mbps_to_bytes_per_s(rate(
            catalog.network_pair(parent_inst.type, pool.instance(inst_id).type)));
        net_time += e.bytes / bw;
      }
    }

    double duration = (cpu_time + io_time + net_time) * remaining[tid];
    const bool immune = attempts[tid] >= retry_cap;
    if (fm && fm->sample_straggler(rng)) {
      ++result.failures.stragglers;
      duration *= std::max(fm->options().straggler_slowdown, 1.0);
    }
    // Transient attempt failure: discovered partway through the attempt.
    bool fail_transient = false;
    double fail_frac = 0;
    if (fm && !immune && fm->sample_task_failure(rng)) {
      fail_transient = true;
      fail_frac = rng.uniform();
    }
    const double crash_at =
        (fm && !immune) ? pool.instance(inst_id).crash_at
                        : std::numeric_limits<double>::infinity();
    const double reclaim_at =
        (interruptions && !immune) ? pool.instance(inst_id).reclaim_at
                                   : std::numeric_limits<double>::infinity();

    const double finish = start + duration;
    const double fail_at =
        fail_transient ? start + fail_frac * duration
                       : std::numeric_limits<double>::infinity();
    // Attempt log entries are appended when the attempt's terminal event is
    // processed (so the horizon semantics match completed[] / retries).
    const auto attempt_idx = static_cast<std::uint32_t>(attempts[tid]);

    if (finish <= crash_at && finish <= reclaim_at && !fail_transient) {
      // The attempt completes.
      result.tasks[tid] = TaskTrace{start, finish, inst_id};
      pool.instance(inst_id).busy_until = finish;
      queue.schedule(finish, [&, tid, attempt_idx, start, finish,
                              inst_id](double done_time) {
        result.completed[tid] = 1;
        result.attempts.push_back(TaskAttempt{tid, attempt_idx, start, finish,
                                              inst_id,
                                              AttemptOutcome::kCompleted});
        for (workflow::TaskId child : wf.children(tid)) {
          if (--waiting_parents[child] == 0) on_ready(child, done_time);
        }
      });
      return;
    }

    if (reclaim_at < crash_at && reclaim_at < fail_at) {
      // Spot interruption: the notice (delivered notice-lead seconds ahead
      // of the reclamation) let the attempt checkpoint, so everything
      // completed before the notice survives; the task restarts on a
      // replacement at the reclamation with no detection backoff — the
      // warning IS the detection.
      const double notice_at = pool.instance(inst_id).notice_at;
      pool.instance(inst_id).busy_until = reclaim_at;
      result.tasks[tid] = TaskTrace{start, reclaim_at, inst_id};
      const double saved_frac =
          duration > 0 ? std::clamp((notice_at - start) / duration, 0.0, 1.0)
                       : 1.0;
      queue.schedule(reclaim_at, [&, tid, attempt_idx, start, inst_id,
                                  notice_at, saved_frac](double t) {
        if (pool.fail(inst_id, t)) ++result.failures.spot_interruptions;
        ++result.failures.retries;
        ++attempts[tid];
        result.attempts.push_back(TaskAttempt{tid, attempt_idx, start, t,
                                              inst_id,
                                              AttemptOutcome::kInterrupted});
        note_notice(notice_at);
        remaining[tid] *= 1.0 - saved_frac;
        start_task(tid, t);
      });
      return;
    }

    if (crash_at < fail_at) {
      // The instance crashes mid-attempt: released un-refunded, the work
      // since the last checkpoint is lost, and the task is rescheduled
      // after backoff on a replacement instance.
      pool.instance(inst_id).busy_until = crash_at;
      result.tasks[tid] = TaskTrace{start, crash_at, inst_id};
      const double done_frac =
          duration > 0 ? std::clamp((crash_at - start) / duration, 0.0, 1.0)
                       : 1.0;
      queue.schedule(crash_at, [&, tid, attempt_idx, start, inst_id,
                                done_frac](double t) {
        if (pool.fail(inst_id, t)) ++result.failures.instance_crashes;
        ++result.failures.retries;
        ++attempts[tid];
        result.attempts.push_back(TaskAttempt{
            tid, attempt_idx, start, t, inst_id, AttemptOutcome::kCrashed});
        note_failure(t);
        remaining[tid] *=
            1.0 - std::clamp(fm->options().checkpoint_fraction, 0.0, 1.0) *
                      done_frac;
        queue.schedule(t + fm->backoff_delay(attempts[tid]),
                       [&, tid](double retry_at) { start_task(tid, retry_at); });
      });
      return;
    }

    // Transient failure: the attempt dies at fail_at, the instance survives
    // and frees up; the task retries after capped exponential backoff.
    pool.instance(inst_id).busy_until = fail_at;
    result.tasks[tid] = TaskTrace{start, fail_at, inst_id};
    queue.schedule(fail_at, [&, tid, attempt_idx, start, inst_id](double t) {
      ++result.failures.task_failures;
      ++result.failures.retries;
      ++attempts[tid];
      result.attempts.push_back(TaskAttempt{tid, attempt_idx, start, t,
                                            inst_id, AttemptOutcome::kFailed});
      note_failure(t);
      queue.schedule(t + fm->backoff_delay(attempts[tid]),
                     [&, tid](double retry_at) { start_task(tid, retry_at); });
    });
  };

  for (workflow::TaskId root : wf.roots()) {
    queue.schedule(0, [&, root](double now) { on_ready(root, now); });
  }
  if (std::isfinite(options.horizon_s)) {
    queue.run_until(options.horizon_s);
  } else {
    queue.run();
  }

  double makespan = 0;
  bool finished = true;
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    if (result.completed[t]) {
      makespan = std::max(makespan, result.tasks[t].finish);
    } else {
      finished = false;
    }
  }
  const double end =
      finished ? makespan : options.horizon_s;
  // Instances whose crash or reclamation time falls inside the run are
  // billed only up to it, even if no task ever observed the death.
  if ((fm && fm->crashes_enabled()) || interruptions) {
    for (InstanceId id = 0; id < pool.instance_count(); ++id) {
      const Instance& inst = pool.instance(id);
      const double crash = fm && fm->crashes_enabled()
                               ? inst.crash_at
                               : std::numeric_limits<double>::infinity();
      const double reclaim = interruptions
                                 ? inst.reclaim_at
                                 : std::numeric_limits<double>::infinity();
      const double dead = std::min(crash, reclaim);
      if (inst.running() && dead < end) {
        if (pool.fail(id, dead)) {
          if (crash <= reclaim) {
            ++result.failures.instance_crashes;
          } else {
            ++result.failures.spot_interruptions;
            note_notice(inst.notice_at);
          }
        }
      }
    }
  }
  // Surface the weather forecast for the regions this run actually used:
  // the earliest storm opening before the run ends is the reactive
  // engine's evacuation signal (analogous to a spot notice, but regional).
  if (cp && cp->weather().enabled() && pool.instance_count() > 0) {
    std::vector<std::uint8_t> used(catalog.region_count(), 0);
    for (InstanceId id = 0; id < pool.instance_count(); ++id) {
      const cloud::RegionId r = pool.instance(id).region;
      if (r < used.size()) used[r] = 1;
    }
    for (cloud::RegionId r = 0; r < used.size(); ++r) {
      if (!used[r]) continue;
      if (const auto w = cp->weather().next_storm(r, 0.0)) {
        if (w->start < end && w->start < result.first_storm_s) {
          result.first_storm_s = w->start;
          result.first_storm_end_s = w->end;
          result.storm_region = r;
        }
      }
    }
  }
  // Termination is an API call too: a throttled or failing control plane
  // delays releases, which bills the straggling instances a little longer.
  if (cp) {
    const double released = cp->complete_call(cloud::ApiOp::kTerminate, end);
    pool.release_all(released);
  } else {
    pool.release_all(end);
  }

  result.makespan = makespan;
  result.finished = finished;
  result.instance_cost = pool.billed_cost();
  result.transfer_cost = transfer_cost;
  result.total_cost = result.instance_cost + result.transfer_cost;
  result.instances_used = pool.instance_count();
  result.instances.reserve(pool.instance_count());
  for (InstanceId id = 0; id < pool.instance_count(); ++id) {
    result.instances.push_back(pool.instance(id));
  }
  DECO_OBS_COUNTER_ADD("sim.runs", 1);
  DECO_OBS_COUNTER_ADD("sim.task_attempts", result.attempts.size());
  if (const auto n = result.failures.instance_crashes; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.instance_crashes", n);
  }
  if (const auto n = result.failures.boot_failures; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.boot_failures", n);
  }
  if (const auto n = result.failures.task_failures; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.task_failures", n);
  }
  if (const auto n = result.failures.stragglers; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.stragglers", n);
  }
  if (const auto n = result.failures.retries; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.retries", n);
  }
  if (const auto n = result.failures.spot_interruptions; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.spot_interruptions", n);
  }
  return result;
}

}  // namespace deco::sim
