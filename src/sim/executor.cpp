#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"

namespace deco::sim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;
constexpr double kGB = 1024.0 * kMB;

/// Converts a megabit-per-second bandwidth to bytes per second.
double mbps_to_bytes_per_s(double mbps) {
  return std::max(mbps, 1.0) * 1e6 / 8.0;
}

/// Converts an MB/s disk rate to bytes per second.
double disk_rate_bytes_per_s(double mb_per_s) {
  return std::max(mb_per_s, 1.0) * kMB;
}

/// Consecutive boot failures tolerated per acquisition (termination bound).
constexpr int kMaxBootRetries = 4;

}  // namespace

ExecutionResult simulate_execution(const workflow::Workflow& wf,
                                   const Plan& plan,
                                   const cloud::Catalog& catalog,
                                   util::Rng& rng,
                                   const ExecutorOptions& options) {
  DECO_OBS_SPAN_TIMED("sim", "simulate_execution", "sim.execute_ms");
  ExecutionResult result;
  result.tasks.resize(wf.task_count());
  result.completed.assign(wf.task_count(), 0);
  if (wf.task_count() == 0) return result;

  // Failure injection is active only when a model with at least one non-zero
  // rate is supplied; every draw below is additionally gated on its own rate,
  // so the failure-free path consumes the RNG exactly as the seed executor
  // did and stays bit-identical.
  const FailureModel* fm =
      options.failures && options.failures->enabled() ? options.failures
                                                      : nullptr;
  const std::size_t retry_cap = fm ? fm->options().max_task_retries : 0;

  CloudPool pool(catalog);
  EventQueue queue;
  std::vector<std::size_t> waiting_parents(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    waiting_parents[t] = wf.parents(t).size();
  }
  // Injected failures suffered per task so far; once a task reaches the
  // retry cap its next attempt runs failure-immune so the simulation
  // terminates (a real WMS would declare the workflow failed — here the
  // robustness metrics read the inflated makespan instead).
  std::vector<std::size_t> attempts(wf.task_count(), 0);
  // Fraction of each task's work still to do: crashes salvage
  // checkpoint_fraction of the completed part, so retries shrink.
  std::vector<double> remaining(wf.task_count(), 1.0);

  double transfer_cost = 0;

  // Correlated interference: one factor for the whole run scales every I/O
  // and network rate (congestion persists across a workflow execution).
  double interference = 1.0;
  if (options.sample_dynamics && options.interference_cv > 0) {
    const util::Normal weather{1.0, options.interference_cv};
    interference = std::clamp(weather.sample(rng),
                              1.0 - 3 * options.interference_cv,
                              1.0 + 3 * options.interference_cv);
    interference = std::max(interference, 0.1);
  }

  // Draw a rate from a distribution (floored per cloud::sample_rate), or
  // take the mean when dynamics are off.
  auto rate = [&](const util::Distribution& dist) {
    return options.sample_dynamics
               ? cloud::sample_rate(dist, rng) * interference
               : dist.mean();
  };

  auto note_failure = [&](double t) {
    result.first_failure_s = std::min(result.first_failure_s, t);
  };

  // Forward declaration pattern: the lambda is stored so completion events
  // can make children ready.
  std::function<void(workflow::TaskId, double)> start_task;

  auto on_ready = [&](workflow::TaskId tid, double now) {
    start_task(tid, now);
  };

  start_task = [&](workflow::TaskId tid, double now) {
    const TaskPlacement& placement = plan[tid];
    const cloud::InstanceType& type = catalog.type(placement.vm_type);

    // Locate or acquire the executing instance, retiring crashed candidates.
    InstanceId inst_id = CloudPool::kNone;
    double start = now;
    for (;;) {
      if (placement.group >= 0) {
        inst_id = pool.find_group(placement.group);
      } else {
        inst_id = pool.find_idle(placement.vm_type, placement.region, now);
      }
      if (inst_id == CloudPool::kNone) {
        double boot_delay = options.boot_seconds;
        if (fm) {
          // Failed boots delay the acquisition (the failed provisioning
          // attempt itself is not billed); capped so the run terminates.
          for (int tries = 0;
               tries < kMaxBootRetries && fm->sample_boot_failure(rng);
               ++tries) {
            ++result.failures.boot_failures;
            note_failure(now + boot_delay);
            boot_delay += fm->options().boot_retry_s + options.boot_seconds;
          }
        }
        inst_id = pool.acquire(placement.vm_type, placement.region, now,
                               placement.group);
        if (fm && fm->crashes_enabled()) {
          pool.instance(inst_id).crash_at = now + fm->sample_uptime(rng);
        }
        start = now + boot_delay;
        break;
      }
      const Instance& inst = pool.instance(inst_id);
      const double avail = std::max(now, inst.busy_until);
      if (fm && inst.crash_at <= avail) {
        if (inst.crash_at <= now) {
          // Crashed while sitting idle: retire it un-refunded (billed to
          // the crash) and look for a replacement.
          if (pool.fail(inst_id, inst.crash_at)) {
            ++result.failures.instance_crashes;
          }
          continue;
        }
        // The instance dies before it could serve this task (the attempt
        // currently occupying it observes the crash itself); wait for the
        // crash to be detected, then reschedule on a replacement.
        queue.schedule(inst.crash_at + fm->backoff_delay(0),
                       [&, tid](double t) { start_task(tid, t); });
        return;
      }
      start = avail;
      break;
    }

    // CPU component: reference seconds scaled by compute units.
    const double cpu_time = wf.task(tid).cpu_seconds /
                            std::max(type.per_core_units, 0.1);

    // Disk I/O component: bulk reads/writes at the sampled sequential rate
    // plus metadata-style random operations at the sampled IOPS.
    const double seq_rate = disk_rate_bytes_per_s(rate(type.seq_io_mbps));
    double io_time =
        (wf.task(tid).input_bytes + wf.task(tid).output_bytes) / seq_rate;
    const double iops = std::max(rate(type.rand_io_iops), 1.0);
    io_time += options.rand_io_ops_per_task / iops;

    // Network component: parent outputs fetched from other instances
    // (completed outputs live on shared storage, so a parent's data
    // survives the crash of the instance that produced it).
    double net_time = 0;
    for (const workflow::Edge& e : wf.edges()) {
      if (e.child != tid || e.bytes <= 0) continue;
      const TaskTrace& parent_trace = result.tasks[e.parent];
      if (parent_trace.instance == inst_id) continue;  // data is local
      const TaskPlacement& pp = plan[e.parent];
      if (pp.region != placement.region) {
        const double bw = mbps_to_bytes_per_s(rate(catalog.inter_region_net()));
        net_time += e.bytes / bw;
        transfer_cost += e.bytes / kGB * catalog.egress_price(pp.region);
      } else {
        const double bw = mbps_to_bytes_per_s(
            rate(catalog.network_pair(pp.vm_type, placement.vm_type)));
        net_time += e.bytes / bw;
      }
    }

    double duration = (cpu_time + io_time + net_time) * remaining[tid];
    const bool immune = !fm || attempts[tid] >= retry_cap;
    if (fm && fm->sample_straggler(rng)) {
      ++result.failures.stragglers;
      duration *= std::max(fm->options().straggler_slowdown, 1.0);
    }
    // Transient attempt failure: discovered partway through the attempt.
    bool fail_transient = false;
    double fail_frac = 0;
    if (!immune && fm->sample_task_failure(rng)) {
      fail_transient = true;
      fail_frac = rng.uniform();
    }
    const double crash_at =
        immune ? std::numeric_limits<double>::infinity()
               : pool.instance(inst_id).crash_at;

    const double finish = start + duration;
    const double fail_at =
        fail_transient ? start + fail_frac * duration
                       : std::numeric_limits<double>::infinity();
    // Attempt log entries are appended when the attempt's terminal event is
    // processed (so the horizon semantics match completed[] / retries).
    const auto attempt_idx = static_cast<std::uint32_t>(attempts[tid]);

    if (finish <= crash_at && !fail_transient) {
      // The attempt completes.
      result.tasks[tid] = TaskTrace{start, finish, inst_id};
      pool.instance(inst_id).busy_until = finish;
      queue.schedule(finish, [&, tid, attempt_idx, start, finish,
                              inst_id](double done_time) {
        result.completed[tid] = 1;
        result.attempts.push_back(TaskAttempt{tid, attempt_idx, start, finish,
                                              inst_id,
                                              AttemptOutcome::kCompleted});
        for (workflow::TaskId child : wf.children(tid)) {
          if (--waiting_parents[child] == 0) on_ready(child, done_time);
        }
      });
      return;
    }

    if (crash_at < fail_at) {
      // The instance crashes mid-attempt: released un-refunded, the work
      // since the last checkpoint is lost, and the task is rescheduled
      // after backoff on a replacement instance.
      pool.instance(inst_id).busy_until = crash_at;
      result.tasks[tid] = TaskTrace{start, crash_at, inst_id};
      const double done_frac =
          duration > 0 ? std::clamp((crash_at - start) / duration, 0.0, 1.0)
                       : 1.0;
      queue.schedule(crash_at, [&, tid, attempt_idx, start, inst_id,
                                done_frac](double t) {
        if (pool.fail(inst_id, t)) ++result.failures.instance_crashes;
        ++result.failures.retries;
        ++attempts[tid];
        result.attempts.push_back(TaskAttempt{
            tid, attempt_idx, start, t, inst_id, AttemptOutcome::kCrashed});
        note_failure(t);
        remaining[tid] *=
            1.0 - std::clamp(fm->options().checkpoint_fraction, 0.0, 1.0) *
                      done_frac;
        queue.schedule(t + fm->backoff_delay(attempts[tid]),
                       [&, tid](double retry_at) { start_task(tid, retry_at); });
      });
      return;
    }

    // Transient failure: the attempt dies at fail_at, the instance survives
    // and frees up; the task retries after capped exponential backoff.
    pool.instance(inst_id).busy_until = fail_at;
    result.tasks[tid] = TaskTrace{start, fail_at, inst_id};
    queue.schedule(fail_at, [&, tid, attempt_idx, start, inst_id](double t) {
      ++result.failures.task_failures;
      ++result.failures.retries;
      ++attempts[tid];
      result.attempts.push_back(TaskAttempt{tid, attempt_idx, start, t,
                                            inst_id, AttemptOutcome::kFailed});
      note_failure(t);
      queue.schedule(t + fm->backoff_delay(attempts[tid]),
                     [&, tid](double retry_at) { start_task(tid, retry_at); });
    });
  };

  for (workflow::TaskId root : wf.roots()) {
    queue.schedule(0, [&, root](double now) { on_ready(root, now); });
  }
  if (std::isfinite(options.horizon_s)) {
    queue.run_until(options.horizon_s);
  } else {
    queue.run();
  }

  double makespan = 0;
  bool finished = true;
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    if (result.completed[t]) {
      makespan = std::max(makespan, result.tasks[t].finish);
    } else {
      finished = false;
    }
  }
  const double end =
      finished ? makespan : options.horizon_s;
  // Instances whose crash time falls inside the run are billed only to the
  // crash, even if no task ever observed it.
  if (fm && fm->crashes_enabled()) {
    for (InstanceId id = 0; id < pool.instance_count(); ++id) {
      const Instance& inst = pool.instance(id);
      if (inst.running() && inst.crash_at < end) {
        if (pool.fail(id, inst.crash_at)) ++result.failures.instance_crashes;
      }
    }
  }
  pool.release_all(end);

  result.makespan = makespan;
  result.finished = finished;
  result.instance_cost = pool.billed_cost();
  result.transfer_cost = transfer_cost;
  result.total_cost = result.instance_cost + result.transfer_cost;
  result.instances_used = pool.instance_count();
  result.instances.reserve(pool.instance_count());
  for (InstanceId id = 0; id < pool.instance_count(); ++id) {
    result.instances.push_back(pool.instance(id));
  }
  DECO_OBS_COUNTER_ADD("sim.runs", 1);
  DECO_OBS_COUNTER_ADD("sim.task_attempts", result.attempts.size());
  if (const auto n = result.failures.instance_crashes; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.instance_crashes", n);
  }
  if (const auto n = result.failures.boot_failures; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.boot_failures", n);
  }
  if (const auto n = result.failures.task_failures; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.task_failures", n);
  }
  if (const auto n = result.failures.stragglers; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.stragglers", n);
  }
  if (const auto n = result.failures.retries; n != 0) {
    DECO_OBS_COUNTER_ADD("sim.failures.retries", n);
  }
  return result;
}

}  // namespace deco::sim
