#include "sim/executor.hpp"

#include <algorithm>
#include <cmath>

#include "sim/event_queue.hpp"

namespace deco::sim {
namespace {

constexpr double kMB = 1024.0 * 1024.0;
constexpr double kGB = 1024.0 * kMB;

/// Converts a megabit-per-second bandwidth to bytes per second.
double mbps_to_bytes_per_s(double mbps) {
  return std::max(mbps, 1.0) * 1e6 / 8.0;
}

/// Converts an MB/s disk rate to bytes per second.
double disk_rate_bytes_per_s(double mb_per_s) {
  return std::max(mb_per_s, 1.0) * kMB;
}

}  // namespace

ExecutionResult simulate_execution(const workflow::Workflow& wf,
                                   const Plan& plan,
                                   const cloud::Catalog& catalog,
                                   util::Rng& rng,
                                   const ExecutorOptions& options) {
  ExecutionResult result;
  result.tasks.resize(wf.task_count());
  if (wf.task_count() == 0) return result;

  CloudPool pool(catalog);
  EventQueue queue;
  std::vector<std::size_t> waiting_parents(wf.task_count());
  for (workflow::TaskId t = 0; t < wf.task_count(); ++t) {
    waiting_parents[t] = wf.parents(t).size();
  }

  double transfer_cost = 0;

  // Correlated interference: one factor for the whole run scales every I/O
  // and network rate (congestion persists across a workflow execution).
  double interference = 1.0;
  if (options.sample_dynamics && options.interference_cv > 0) {
    const util::Normal weather{1.0, options.interference_cv};
    interference = std::clamp(weather.sample(rng),
                              1.0 - 3 * options.interference_cv,
                              1.0 + 3 * options.interference_cv);
    interference = std::max(interference, 0.1);
  }

  // Draw a rate from a distribution (floored per cloud::sample_rate), or
  // take the mean when dynamics are off.
  auto rate = [&](const util::Distribution& dist) {
    return options.sample_dynamics
               ? cloud::sample_rate(dist, rng) * interference
               : dist.mean();
  };

  // Forward declaration pattern: the lambda is stored so completion events
  // can make children ready.
  std::function<void(workflow::TaskId, double)> start_task;

  auto on_ready = [&](workflow::TaskId tid, double now) {
    start_task(tid, now);
  };

  start_task = [&](workflow::TaskId tid, double now) {
    const TaskPlacement& placement = plan[tid];
    const cloud::InstanceType& type = catalog.type(placement.vm_type);

    // Locate or acquire the executing instance.
    InstanceId inst_id = CloudPool::kNone;
    if (placement.group >= 0) {
      inst_id = pool.find_group(placement.group);
    } else {
      inst_id = pool.find_idle(placement.vm_type, placement.region, now);
    }
    double start = now;
    if (inst_id == CloudPool::kNone) {
      inst_id = pool.acquire(placement.vm_type, placement.region, now,
                             placement.group);
      start = now + options.boot_seconds;
      pool.instance(inst_id).acquired_at = now;
    } else {
      start = std::max(now, pool.instance(inst_id).busy_until);
    }

    // CPU component: reference seconds scaled by compute units.
    const double cpu_time = wf.task(tid).cpu_seconds /
                            std::max(type.per_core_units, 0.1);

    // Disk I/O component: bulk reads/writes at the sampled sequential rate
    // plus metadata-style random operations at the sampled IOPS.
    const double seq_rate = disk_rate_bytes_per_s(rate(type.seq_io_mbps));
    double io_time =
        (wf.task(tid).input_bytes + wf.task(tid).output_bytes) / seq_rate;
    const double iops = std::max(rate(type.rand_io_iops), 1.0);
    io_time += options.rand_io_ops_per_task / iops;

    // Network component: parent outputs fetched from other instances.
    double net_time = 0;
    for (const workflow::Edge& e : wf.edges()) {
      if (e.child != tid || e.bytes <= 0) continue;
      const TaskTrace& parent_trace = result.tasks[e.parent];
      if (parent_trace.instance == inst_id) continue;  // data is local
      const TaskPlacement& pp = plan[e.parent];
      if (pp.region != placement.region) {
        const double bw = mbps_to_bytes_per_s(rate(catalog.inter_region_net()));
        net_time += e.bytes / bw;
        transfer_cost += e.bytes / kGB * catalog.egress_price(pp.region);
      } else {
        const double bw = mbps_to_bytes_per_s(
            rate(catalog.network_pair(pp.vm_type, placement.vm_type)));
        net_time += e.bytes / bw;
      }
    }

    const double finish = start + cpu_time + io_time + net_time;
    result.tasks[tid] = TaskTrace{start, finish, inst_id};
    pool.instance(inst_id).busy_until = finish;

    queue.schedule(finish, [&, tid](double done_time) {
      for (workflow::TaskId child : wf.children(tid)) {
        if (--waiting_parents[child] == 0) on_ready(child, done_time);
      }
    });
  };

  for (workflow::TaskId root : wf.roots()) {
    queue.schedule(0, [&, root](double now) { on_ready(root, now); });
  }
  queue.run();

  double makespan = 0;
  for (const TaskTrace& trace : result.tasks) {
    makespan = std::max(makespan, trace.finish);
  }
  pool.release_all(makespan);

  result.makespan = makespan;
  result.instance_cost = pool.billed_cost();
  result.transfer_cost = transfer_cost;
  result.total_cost = result.instance_cost + result.transfer_cost;
  result.instances_used = pool.instance_count();
  return result;
}

}  // namespace deco::sim
