// Failure injection for the Section 6.1 simulator.
//
// The seed simulator reproduces cloud performance *variance* but assumes an
// implausibly reliable cloud: outside of spot revocations nothing ever
// fails.  FailureModel adds the failure classes real IaaS provisioning has
// to survive — whole-instance crashes (exponential or Weibull inter-arrival
// per instance), boot failures on acquisition, transient per-attempt task
// failures, and stragglers — so that every plan Deco emits can be evaluated
// against a cloud that misbehaves.
//
// The model is deterministic: it holds no RNG of its own, all draws flow
// through the caller's util::Rng, and every sampling method is gated on its
// rate being active, so a default-constructed (or all-zero) model consumes
// no RNG state at all and the executor reproduces today's failure-free
// traces bit for bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cloud/instance_type.hpp"
#include "util/rng.hpp"

namespace deco::sim {

struct FailureModelOptions {
  /// Mean time between instance crashes, seconds.  <= 0 disables crashes.
  double crash_mtbf_s = 0;
  /// Inter-arrival family for crashes.  Exponential models memoryless
  /// hardware faults; Weibull (shape > 1) models wear-out / correlated
  /// failures where survival gets less likely with uptime.
  enum class CrashDistribution { kExponential, kWeibull };
  CrashDistribution crash_distribution = CrashDistribution::kExponential;
  /// Weibull shape k (only used with kWeibull); the scale is derived so the
  /// mean uptime stays crash_mtbf_s.
  double weibull_shape = 1.5;

  /// Probability that an instance acquisition fails to boot.  Each failed
  /// boot delays the acquisition by boot_retry_s and is re-tried.
  double boot_failure_prob = 0;
  double boot_retry_s = 60;

  /// Probability that one task attempt fails transiently (bad node, OOM,
  /// flaky filesystem).  The attempt's partial work is lost; the instance
  /// survives and the task is retried after backoff.
  double task_failure_prob = 0;

  /// Probability that an attempt runs as a straggler, and the slowdown it
  /// then suffers (multiplier on the attempt duration).
  double straggler_prob = 0;
  double straggler_slowdown = 2.5;

  /// Injected failures tolerated per task before the attempt is made
  /// failure-immune (the simulation must terminate; a real WMS would mark
  /// the workflow failed — the robustness metrics read the inflated
  /// makespan instead).
  std::size_t max_task_retries = 3;
  /// Capped exponential backoff between attempts: the n-th retry waits
  /// min(retry_backoff_s * retry_backoff_factor^(n-1), retry_backoff_cap_s).
  double retry_backoff_s = 30;
  double retry_backoff_factor = 2.0;
  double retry_backoff_cap_s = 600;

  /// Fraction of an attempt's completed work salvaged when its instance
  /// crashes (0 = restart from scratch, 1 = perfect checkpointing).
  double checkpoint_fraction = 0;

  /// Per-region crash-rate multiplier (indexed by cloud::RegionId; empty or
  /// short = 1.0 everywhere).  region_hazard(r) composes with the regional
  /// weather's storm multiplier at acquisition time, so crashes stay i.i.d.
  /// per instance but the *rate* follows where the instance runs.
  std::vector<double> region_crash_multiplier;
};

/// Stateless, deterministic failure sampler shared by the executor (which
/// draws concrete failures) and the PlanEvaluator (which folds the same
/// model's *expectations* into the Monte Carlo estimate).
class FailureModel {
 public:
  FailureModel() = default;
  explicit FailureModel(FailureModelOptions options) : options_(options) {}

  const FailureModelOptions& options() const { return options_; }

  /// True iff any failure class is active.
  bool enabled() const;
  bool crashes_enabled() const { return options_.crash_mtbf_s > 0; }

  /// Uptime until the crash of a freshly acquired instance, seconds.
  /// Requires crashes_enabled().  `hazard` multiplies the crash *rate*
  /// (uptimes shrink by 1/hazard); the default of exactly 1.0 leaves the
  /// draw bit-identical to the unscaled model, so hazard-free callers
  /// reproduce existing traces.
  double sample_uptime(util::Rng& rng, double hazard = 1.0) const;

  /// Static crash-rate multiplier for instances in `region` (1.0 when the
  /// per-region table is empty or does not cover the region).
  double region_hazard(cloud::RegionId region) const {
    if (region >= options_.region_crash_multiplier.size()) return 1.0;
    const double m = options_.region_crash_multiplier[region];
    return m > 0 ? m : 1.0;
  }

  /// One acquisition attempt fails to boot?  Consumes RNG only when
  /// boot_failure_prob > 0.
  bool sample_boot_failure(util::Rng& rng) const;

  /// One task attempt fails transiently?  Consumes RNG only when
  /// task_failure_prob > 0.
  bool sample_task_failure(util::Rng& rng) const;

  /// One task attempt straggles?  Consumes RNG only when straggler_prob > 0.
  bool sample_straggler(util::Rng& rng) const;

  /// Backoff before retry number `attempt` (1-based: the first retry waits
  /// retry_backoff_s).
  double backoff_delay(std::size_t attempt) const;

  /// Expected wall-time inflation factor (>= 1) for a task whose nominal
  /// duration is `nominal_s`, folding straggler, retry and crash
  /// expectations to first order.  Used by the failure-aware PlanEvaluator
  /// so probabilistic deadlines account for retry inflation.
  double expected_time_factor(double nominal_s) const;

 private:
  FailureModelOptions options_;
};

}  // namespace deco::sim
