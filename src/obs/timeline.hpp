// Simulator timeline export: renders one executed trace (an
// sim::ExecutionResult) as Chrome trace events — one track (tid) per
// acquired instance, one slice per started task attempt, with retries,
// crashes and transient failures tagged by category and instant markers at
// every failure.  Load the written file in chrome://tracing or Perfetto to
// debug fault-injection runs visually.
//
// Timestamps are the simulator's *virtual* seconds rendered as trace
// microseconds (1 virtual second = 1 trace millisecond), which keeps
// multi-hour runs readable in the viewer.
#pragma once

#include <iosfwd>
#include <vector>

#include "cloud/instance_type.hpp"
#include "obs/trace.hpp"
#include "sim/executor.hpp"
#include "workflow/dag.hpp"

namespace deco::obs {

/// Builds the timeline events for one executed trace.  `pid` groups the
/// events into one Perfetto process (use distinct pids to compare several
/// runs side by side in a single file); `catalog` (optional) labels
/// instance tracks with their type names.
std::vector<TraceEvent> execution_timeline(
    const workflow::Workflow& wf, const sim::ExecutionResult& result,
    const cloud::Catalog* catalog = nullptr, std::uint32_t pid = 1);

/// execution_timeline() serialized as a standalone Chrome trace JSON.
void write_execution_timeline(std::ostream& out, const workflow::Workflow& wf,
                              const sim::ExecutionResult& result,
                              const cloud::Catalog* catalog = nullptr,
                              std::uint32_t pid = 1);

}  // namespace deco::obs
