#include "obs/timeline.hpp"

#include <ostream>
#include <string>

namespace deco::obs {
namespace {

/// Virtual seconds -> trace microseconds (1 virtual s = 1 trace ms).
constexpr double kUsPerVirtualSecond = 1000.0;

const char* outcome_name(sim::AttemptOutcome outcome) {
  switch (outcome) {
    case sim::AttemptOutcome::kCompleted: return "completed";
    case sim::AttemptOutcome::kCrashed: return "crashed";
    case sim::AttemptOutcome::kFailed: return "failed";
    case sim::AttemptOutcome::kInterrupted: return "interrupted";
  }
  return "unknown";
}

}  // namespace

std::vector<TraceEvent> execution_timeline(const workflow::Workflow& wf,
                                           const sim::ExecutionResult& result,
                                           const cloud::Catalog* catalog,
                                           std::uint32_t pid) {
  std::vector<TraceEvent> events;
  events.reserve(result.attempts.size() + result.instances.size() + 2);

  // Track metadata: tid 0 is the process label, instance i maps to tid i+1.
  {
    TraceEvent meta;
    meta.name = "process_name";
    meta.cat = "__metadata";
    meta.phase = 'M';
    meta.pid = pid;
    meta.tid = 0;
    meta.args.push_back(TraceArg{"name", "deco simulated run (" + wf.name() + ")",
                                 /*is_string=*/true});
    events.push_back(std::move(meta));
  }
  for (std::size_t i = 0; i < result.instances.size(); ++i) {
    const sim::Instance& inst = result.instances[i];
    std::string label = "instance " + std::to_string(i);
    if (catalog) label += " " + catalog->type(inst.type).name;
    label += " r" + std::to_string(inst.region);
    if (inst.crashed) label += " [crashed]";
    TraceEvent meta;
    meta.name = "thread_name";
    meta.cat = "__metadata";
    meta.phase = 'M';
    meta.pid = pid;
    meta.tid = static_cast<std::uint32_t>(i) + 1;
    meta.args.push_back(TraceArg{"name", std::move(label), /*is_string=*/true});
    events.push_back(std::move(meta));
  }

  // One slice per started attempt; retries (attempt > 0) and non-completed
  // outcomes get their own categories so Perfetto can color/filter them.
  for (const sim::TaskAttempt& attempt : result.attempts) {
    TraceEvent ev;
    ev.name = wf.task(attempt.task).name + " #" + std::to_string(attempt.attempt);
    switch (attempt.outcome) {
      case sim::AttemptOutcome::kCompleted:
        ev.cat = attempt.attempt == 0 ? "attempt" : "retry";
        break;
      case sim::AttemptOutcome::kCrashed:
        ev.cat = "crash";
        break;
      case sim::AttemptOutcome::kFailed:
        ev.cat = "failure";
        break;
      case sim::AttemptOutcome::kInterrupted:
        ev.cat = "interruption";
        break;
    }
    ev.phase = 'X';
    ev.ts_us = attempt.start * kUsPerVirtualSecond;
    ev.dur_us = (attempt.end - attempt.start) * kUsPerVirtualSecond;
    ev.pid = pid;
    ev.tid = attempt.instance == sim::CloudPool::kNone
                 ? 0
                 : attempt.instance + 1;
    ev.args.push_back(
        TraceArg{"outcome", outcome_name(attempt.outcome), /*is_string=*/true});
    ev.args.push_back(TraceArg{"attempt", std::to_string(attempt.attempt),
                               /*is_string=*/false});
    events.push_back(std::move(ev));

    if (attempt.outcome != sim::AttemptOutcome::kCompleted) {
      TraceEvent marker;
      marker.name = attempt.outcome == sim::AttemptOutcome::kCrashed
                        ? "instance crash"
                    : attempt.outcome == sim::AttemptOutcome::kInterrupted
                        ? "spot reclamation"
                        : "task failure";
      marker.cat = "fault";
      marker.phase = 'i';
      marker.ts_us = attempt.end * kUsPerVirtualSecond;
      marker.pid = pid;
      marker.tid = attempt.instance == sim::CloudPool::kNone
                       ? 0
                       : attempt.instance + 1;
      events.push_back(std::move(marker));
    }
  }
  return events;
}

void write_execution_timeline(std::ostream& out, const workflow::Workflow& wf,
                              const sim::ExecutionResult& result,
                              const cloud::Catalog* catalog,
                              std::uint32_t pid) {
  const std::vector<TraceEvent> events =
      execution_timeline(wf, result, catalog, pid);
  write_chrome_trace(out, events);
}

}  // namespace deco::obs
