// Trace-event collection in Chrome `trace_event` JSON.
//
// Scoped timers (ScopedSpan / the DECO_OBS_SPAN macros) emit complete ('X')
// events; explicit begin()/end() pairs emit 'B'/'E' events; instant() and
// counter() emit 'i'/'C'.  The output of write() loads directly in
// chrome://tracing and Perfetto (https://ui.perfetto.dev).
//
// Collection follows the registry's sharding scheme: events append to the
// calling thread's shard under its own uncontended mutex, each stamped with
// a global sequence number so snapshot() can restore one total order.  A
// disabled collector costs one relaxed atomic load per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace deco::obs {

/// One pre-rendered event argument; `is_string` selects JSON quoting.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_string = true;
};

/// One Chrome trace_event.  Timestamps and durations are microseconds;
/// the collector stamps wall-clock (steady) time, exporters like the
/// simulator timeline stamp virtual time — both render fine in Perfetto.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';
  double ts_us = 0;
  double dur_us = 0;  ///< meaningful for 'X' only
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  std::uint64_t seq = 0;  ///< global record order (not serialized)
  std::vector<TraceArg> args;
};

/// Serializes events as {"traceEvents":[...],"displayTimeUnit":"ms"}.
void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events);

/// Escapes a string for embedding inside JSON quotes.
std::string json_escape(std::string_view text);

class TraceCollector {
 public:
  TraceCollector();
  ~TraceCollector();
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// The process-wide collector the instrumentation macros feed.
  static TraceCollector& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Microseconds since the process trace epoch (steady clock).
  static double now_us();

  /// Records an event verbatim (ts/tid/seq already set by the caller) —
  /// used by exporters that merge synthetic timelines into the stream.
  void record(TraceEvent event);

  /// Convenience emitters; all no-ops while disabled.  Each stamps the
  /// calling thread's tid and the current time.
  void complete(std::string name, std::string cat, double ts_us, double dur_us,
                std::vector<TraceArg> args = {});
  void begin(std::string name, std::string cat);
  void end(std::string name, std::string cat);
  void instant(std::string name, std::string cat);
  void counter(std::string name, std::string cat, double value);

  /// Merged copy of every shard's events in global record order.
  std::vector<TraceEvent> snapshot() const;

  /// Drops all recorded events.
  void clear();

  /// write_chrome_trace(snapshot()).
  void write(std::ostream& out) const;

 private:
  struct Shard {
    std::mutex mu;
    std::vector<TraceEvent> events;
  };

  Shard& local_shard();

  const std::uint64_t id_;
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// Stable small integer id for the calling thread (1-based).
std::uint32_t current_thread_track();

/// RAII scoped timer: records an 'X' trace event over its lifetime and,
/// when `metric` is non-null, feeds the elapsed milliseconds into the
/// metric registry's latency histogram of that name.  Both sinks are
/// checked at construction; a fully disabled span never reads the clock.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name, const char* metric = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  const char* metric_;
  double t0_us_ = 0;
  bool trace_ = false;
  bool time_ = false;
};

}  // namespace deco::obs
