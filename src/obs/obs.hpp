// Instrumentation entry points.  Include this header (not metrics.hpp /
// trace.hpp directly) from instrumented code: the DECO_OBS_* macros compile
// to calls into the process-wide Registry / TraceCollector, and building
// with -DDECO_OBS_DISABLED (cmake -DDECO_OBS=OFF) compiles every call site
// out entirely — the observability libraries still link, so tools and tests
// that *consume* snapshots keep building, they just see empty data.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace deco::obs {

#if defined(DECO_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

}  // namespace deco::obs

#if !defined(DECO_OBS_DISABLED)

#define DECO_OBS_CONCAT_INNER(a, b) a##b
#define DECO_OBS_CONCAT(a, b) DECO_OBS_CONCAT_INNER(a, b)

/// Adds `delta` to the named counter (no-op while the registry is disabled).
#define DECO_OBS_COUNTER_ADD(name, delta) \
  ::deco::obs::Registry::instance().counter_add((name), (delta))

/// Sets the named gauge (last write wins across threads).
#define DECO_OBS_GAUGE_SET(name, value) \
  ::deco::obs::Registry::instance().gauge_set((name), (value))

/// Feeds one latency observation (milliseconds) into the named histogram.
#define DECO_OBS_HIST_MS(name, ms) \
  ::deco::obs::Registry::instance().observe_ms((name), (ms))

/// Scoped trace span: emits an 'X' trace event covering the enclosing scope.
#define DECO_OBS_SPAN(cat, name) \
  ::deco::obs::ScopedSpan DECO_OBS_CONCAT(deco_obs_span_, __LINE__) { \
    (cat), (name) \
  }

/// Scoped trace span that also records its duration into a latency
/// histogram named `metric`.
#define DECO_OBS_SPAN_TIMED(cat, name, metric) \
  ::deco::obs::ScopedSpan DECO_OBS_CONCAT(deco_obs_span_, __LINE__) { \
    (cat), (name), (metric) \
  }

/// Instant trace event (a vertical marker in the timeline).
#define DECO_OBS_INSTANT(cat, name) \
  ::deco::obs::TraceCollector::instance().instant((name), (cat))

#else  // DECO_OBS_DISABLED

#define DECO_OBS_COUNTER_ADD(name, delta) ((void)0)
#define DECO_OBS_GAUGE_SET(name, value) ((void)0)
#define DECO_OBS_HIST_MS(name, ms) ((void)0)
#define DECO_OBS_SPAN(cat, name) ((void)0)
#define DECO_OBS_SPAN_TIMED(cat, name, metric) ((void)0)
#define DECO_OBS_INSTANT(cat, name) ((void)0)

#endif  // DECO_OBS_DISABLED
