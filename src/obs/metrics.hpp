// Lock-cheap metrics registry: counters, gauges and fixed-bucket latency
// histograms, sharded per thread and merged on snapshot.
//
// Design constraints (see docs/observability.md):
//   * the hot path takes no global lock — each thread owns a shard and only
//     its own (uncontended) shard mutex is touched on update;
//   * a disabled registry costs one relaxed atomic load per call site, and
//     building with -DDECO_OBS_DISABLED compiles every instrumentation
//     macro (obs/obs.hpp) out entirely;
//   * instrumentation is observation-only: no RNG, no feedback into any
//     engine decision, so results are bit-identical with obs on or off
//     (asserted by tests/obs/noninterference_test.cpp).
//
// Snapshots merge shards deterministically: counters and histograms are
// commutative sums, gauges resolve by a global write sequence (true
// last-write-wins independent of shard enumeration order) — the property
// tests in tests/property/obs_property_test.cpp pin this down.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace deco::obs {

/// Fixed log-spaced latency buckets, in milliseconds: eighth-decade edges
/// (each bound is 10^(1/8) ~ 1.33x the previous) from 1 us to ~17 min, plus
/// an overflow bucket.  Half-decade edges proved too coarse in practice —
/// the committed bench JSONs piled >90% of eval.kernel_ms / eval.batch_ms
/// observations into one bucket; 3.16x per step cannot resolve a kernel
/// whose latencies span less than a decade.  Eighth-decade edges give ~33%
/// resolution while fixed bounds still keep shard merging a plain
/// element-wise sum and snapshots comparable across runs.
inline constexpr std::array<double, 73> kLatencyBucketBoundsMs = {
    0.001, 0.00133352, 0.00177828, 0.00237137, 0.00316228, 0.00421697,
    0.00562341, 0.00749894, 0.01, 0.0133352, 0.0177828, 0.0237137,
    0.0316228, 0.0421697, 0.0562341, 0.0749894, 0.1, 0.133352,
    0.177828, 0.237137, 0.316228, 0.421697, 0.562341, 0.749894,
    1.0, 1.33352, 1.77828, 2.37137, 3.16228, 4.21697,
    5.62341, 7.49894, 10.0, 13.3352, 17.7828, 23.7137,
    31.6228, 42.1697, 56.2341, 74.9894, 100.0, 133.352,
    177.828, 237.137, 316.228, 421.697, 562.341, 749.894,
    1000.0, 1333.52, 1778.28, 2371.37, 3162.28, 4216.97,
    5623.41, 7498.94, 10000.0, 13335.2, 17782.8, 23713.7,
    31622.8, 42169.7, 56234.1, 74989.4, 100000.0, 133352.0,
    177828.0, 237137.0, 316228.0, 421697.0, 562341.0, 749894.0,
    1000000.0};

/// One latency histogram: counts per fixed bucket plus running moments.
struct HistogramData {
  std::array<std::uint64_t, kLatencyBucketBoundsMs.size() + 1> buckets{};
  std::uint64_t count = 0;
  double sum_ms = 0;
  double min_ms = std::numeric_limits<double>::infinity();
  double max_ms = 0;

  void observe(double ms);
  void merge(const HistogramData& other);
  double mean_ms() const { return count ? sum_ms / static_cast<double>(count) : 0; }
};

/// Merged view of the registry at one point in time.  std::map keys keep
/// every dump deterministically ordered.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The registry the instrumentation macros feed: the calling thread's
  /// scoped override when one is installed (see ScopedRegistry), otherwise
  /// the process-wide registry.  Ensemble sharding (sim::EnsembleRunner)
  /// uses overrides to capture each run's metrics into a private shard that
  /// is merged into the parent registry in deterministic run-index order.
  static Registry& instance();

  /// The process-wide registry, ignoring any thread-local override.
  static Registry& global();

  /// Merges a snapshot into this registry through the calling thread's
  /// shard: counters and histograms add, gauges are applied as fresh writes
  /// in the snapshot's (sorted-key) order, so absorbing run snapshots in
  /// run-index order gives true last-run-wins gauge semantics regardless of
  /// which thread produced them.
  void absorb(const MetricsSnapshot& snapshot);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// All updates are no-ops while disabled (one relaxed load, no lock).
  void counter_add(std::string_view name, std::uint64_t delta = 1);
  void gauge_set(std::string_view name, double value);
  void observe_ms(std::string_view name, double ms);

  /// Merges every shard (sum counters/histograms, last-write gauges).
  MetricsSnapshot snapshot() const;

  /// Clears all shards' contents (shards themselves stay registered).
  void reset();

 private:
  struct GaugeCell {
    double value = 0;
    std::uint64_t seq = 0;  ///< global write sequence; merge keeps max
  };
  struct Shard {
    std::mutex mu;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeCell> gauges;
    std::map<std::string, HistogramData> histograms;
  };

  Shard& local_shard();

  const std::uint64_t id_;  ///< distinguishes registries in thread caches
  /// Liveness token observed (weakly) by per-thread shard caches so entries
  /// for destroyed registries can be pruned — short-lived per-run registries
  /// (ensemble sharding) must not grow the caches without bound.
  std::shared_ptr<const char> alive_ = std::make_shared<const char>('\0');
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> gauge_seq_{0};
  mutable std::mutex mu_;  ///< guards the shard list only
  std::vector<std::shared_ptr<Shard>> shards_;

  friend class ScopedRegistry;
};

/// RAII thread-local registry override: while alive, Registry::instance()
/// on this thread resolves to `target` (instrumentation macros included).
/// Overrides nest; each scope restores the previous binding.  Installing
/// nullptr restores pass-through to the previous binding's target.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry* target);
  ~ScopedRegistry();
  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* previous_;
};

/// Human-readable dump (aligned `kind name value` lines).
std::string to_text(const MetricsSnapshot& snapshot);

/// Stable JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
/// Keys are sorted; embeddable in BENCH files (docs/performance.md).
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace deco::obs
