// Lock-cheap metrics registry: counters, gauges and fixed-bucket latency
// histograms, sharded per thread and merged on snapshot.
//
// Design constraints (see docs/observability.md):
//   * the hot path takes no global lock — each thread owns a shard and only
//     its own (uncontended) shard mutex is touched on update;
//   * a disabled registry costs one relaxed atomic load per call site, and
//     building with -DDECO_OBS_DISABLED compiles every instrumentation
//     macro (obs/obs.hpp) out entirely;
//   * instrumentation is observation-only: no RNG, no feedback into any
//     engine decision, so results are bit-identical with obs on or off
//     (asserted by tests/obs/noninterference_test.cpp).
//
// Snapshots merge shards deterministically: counters and histograms are
// commutative sums, gauges resolve by a global write sequence (true
// last-write-wins independent of shard enumeration order) — the property
// tests in tests/property/obs_property_test.cpp pin this down.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace deco::obs {

/// Fixed half-decade latency buckets, in milliseconds: 1 us .. ~17 min,
/// plus an overflow bucket.  Fixed bounds keep shard merging a plain
/// element-wise sum and snapshots comparable across runs.
inline constexpr std::array<double, 19> kLatencyBucketBoundsMs = {
    0.001, 0.00316, 0.01,  0.0316, 0.1,    0.316,   1.0,
    3.16,  10.0,    31.6,  100.0,  316.0,  1000.0,  3160.0,
    10000.0, 31600.0, 100000.0, 316000.0, 1000000.0};

/// One latency histogram: counts per fixed bucket plus running moments.
struct HistogramData {
  std::array<std::uint64_t, kLatencyBucketBoundsMs.size() + 1> buckets{};
  std::uint64_t count = 0;
  double sum_ms = 0;
  double min_ms = std::numeric_limits<double>::infinity();
  double max_ms = 0;

  void observe(double ms);
  void merge(const HistogramData& other);
  double mean_ms() const { return count ? sum_ms / static_cast<double>(count) : 0; }
};

/// Merged view of the registry at one point in time.  std::map keys keep
/// every dump deterministically ordered.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the instrumentation macros feed.
  static Registry& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// All updates are no-ops while disabled (one relaxed load, no lock).
  void counter_add(std::string_view name, std::uint64_t delta = 1);
  void gauge_set(std::string_view name, double value);
  void observe_ms(std::string_view name, double ms);

  /// Merges every shard (sum counters/histograms, last-write gauges).
  MetricsSnapshot snapshot() const;

  /// Clears all shards' contents (shards themselves stay registered).
  void reset();

 private:
  struct GaugeCell {
    double value = 0;
    std::uint64_t seq = 0;  ///< global write sequence; merge keeps max
  };
  struct Shard {
    std::mutex mu;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, GaugeCell> gauges;
    std::map<std::string, HistogramData> histograms;
  };

  Shard& local_shard();

  const std::uint64_t id_;  ///< distinguishes registries in thread caches
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> gauge_seq_{0};
  mutable std::mutex mu_;  ///< guards the shard list only
  std::vector<std::shared_ptr<Shard>> shards_;
};

/// Human-readable dump (aligned `kind name value` lines).
std::string to_text(const MetricsSnapshot& snapshot);

/// Stable JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
/// Keys are sorted; embeddable in BENCH files (docs/performance.md).
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace deco::obs
