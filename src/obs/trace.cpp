#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "obs/metrics.hpp"

namespace deco::obs {
namespace {

struct TlsEntry {
  std::uint64_t collector_id;
  std::shared_ptr<void> shard;
};
thread_local std::vector<TlsEntry> tls_shards;

std::atomic<std::uint64_t> next_collector_id{1};
std::atomic<std::uint32_t> next_thread_track{0};

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

void append_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

}  // namespace

std::uint32_t current_thread_track() {
  thread_local const std::uint32_t track = next_thread_track.fetch_add(1) + 1;
  return track;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out, std::span<const TraceEvent> events) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    std::string line = first ? "\n" : ",\n";
    first = false;
    line += "{\"name\":\"" + json_escape(ev.name) + "\",\"cat\":\"" +
            json_escape(ev.cat) + "\",\"ph\":\"";
    line += ev.phase;
    line += "\",\"ts\":";
    append_number(line, ev.ts_us);
    if (ev.phase == 'X') {
      line += ",\"dur\":";
      append_number(line, ev.dur_us);
    }
    line += ",\"pid\":" + std::to_string(ev.pid) +
            ",\"tid\":" + std::to_string(ev.tid);
    if (!ev.args.empty()) {
      line += ",\"args\":{";
      for (std::size_t i = 0; i < ev.args.size(); ++i) {
        if (i) line += ",";
        line += "\"" + json_escape(ev.args[i].key) + "\":";
        if (ev.args[i].is_string) {
          line += "\"" + json_escape(ev.args[i].value) + "\"";
        } else {
          line += ev.args[i].value;
        }
      }
      line += "}";
    }
    line += "}";
    out << line;
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

TraceCollector::TraceCollector() : id_(next_collector_id.fetch_add(1)) {
  (void)trace_epoch();  // pin the epoch no later than the first collector
}

TraceCollector::~TraceCollector() = default;

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

double TraceCollector::now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

TraceCollector::Shard& TraceCollector::local_shard() {
  for (const TlsEntry& entry : tls_shards) {
    if (entry.collector_id == id_) {
      return *static_cast<Shard*>(entry.shard.get());
    }
  }
  auto shard = std::make_shared<Shard>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }
  tls_shards.push_back(TlsEntry{id_, shard});
  return *shard;
}

void TraceCollector::record(TraceEvent event) {
  if (!enabled()) return;
  if (event.seq == 0) event.seq = seq_.fetch_add(1) + 1;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(event));
}

void TraceCollector::complete(std::string name, std::string cat, double ts_us,
                              double dur_us, std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = current_thread_track();
  ev.args = std::move(args);
  record(std::move(ev));
}

void TraceCollector::begin(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'B';
  ev.ts_us = now_us();
  ev.tid = current_thread_track();
  record(std::move(ev));
}

void TraceCollector::end(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'E';
  ev.ts_us = now_us();
  ev.tid = current_thread_track();
  record(std::move(ev));
}

void TraceCollector::instant(std::string name, std::string cat) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'i';
  ev.ts_us = now_us();
  ev.tid = current_thread_track();
  record(std::move(ev));
}

void TraceCollector::counter(std::string name, std::string cat, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.phase = 'C';
  ev.ts_us = now_us();
  ev.tid = current_thread_track();
  std::string rendered;
  append_number(rendered, value);
  ev.args.push_back(TraceArg{"value", rendered, /*is_string=*/false});
  record(std::move(ev));
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
  }
  std::vector<TraceEvent> out;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    out.insert(out.end(), shard->events.begin(), shard->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) { return a.seq < b.seq; });
  return out;
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->events.clear();
  }
}

void TraceCollector::write(std::ostream& out) const {
  const std::vector<TraceEvent> events = snapshot();
  write_chrome_trace(out, events);
}

ScopedSpan::ScopedSpan(const char* cat, const char* name, const char* metric)
    : cat_(cat), name_(name), metric_(metric) {
  trace_ = TraceCollector::instance().enabled();
  time_ = trace_ || (metric_ && Registry::instance().enabled());
  if (time_) t0_us_ = TraceCollector::now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!time_) return;
  const double dur_us = TraceCollector::now_us() - t0_us_;
  if (trace_) {
    TraceCollector::instance().complete(name_, cat_, t0_us_, dur_us);
  }
  if (metric_) {
    Registry::instance().observe_ms(metric_, dur_us / 1000.0);
  }
}

}  // namespace deco::obs
