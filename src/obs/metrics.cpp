#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace deco::obs {
namespace {

/// Cached (registry id -> shard) bindings for the calling thread.  Entries
/// for destroyed registries are unreachable (ids are never reused) and the
/// shared_ptr keeps the orphaned shard alive, so no dangling access; the
/// weak liveness token lets the cache prune entries once their registry is
/// gone (ensemble sharding creates one short-lived registry per run, and an
/// unpruned cache would make every lookup a linear scan over dead entries).
struct TlsEntry {
  std::uint64_t registry_id;
  std::weak_ptr<const char> alive;
  std::shared_ptr<void> shard;
};
thread_local std::vector<TlsEntry> tls_shards;

/// Prune dead-registry cache entries once the cache grows past this size.
constexpr std::size_t kTlsPruneThreshold = 16;

std::atomic<std::uint64_t> next_registry_id{1};

/// The calling thread's scoped override (null = use the global registry).
thread_local Registry* tls_override = nullptr;

void append_json_number(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

}  // namespace

void HistogramData::observe(double ms) {
  const auto it = std::lower_bound(kLatencyBucketBoundsMs.begin(),
                                   kLatencyBucketBoundsMs.end(), ms);
  ++buckets[static_cast<std::size_t>(it - kLatencyBucketBoundsMs.begin())];
  ++count;
  sum_ms += ms;
  min_ms = std::min(min_ms, ms);
  max_ms = std::max(max_ms, ms);
}

void HistogramData::merge(const HistogramData& other) {
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_ms += other.sum_ms;
  min_ms = std::min(min_ms, other.min_ms);
  max_ms = std::max(max_ms, other.max_ms);
}

Registry::Registry() : id_(next_registry_id.fetch_add(1)) {}

Registry::~Registry() = default;

Registry& Registry::instance() {
  if (tls_override != nullptr) return *tls_override;
  return global();
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

ScopedRegistry::ScopedRegistry(Registry* target) : previous_(tls_override) {
  tls_override = target;
}

ScopedRegistry::~ScopedRegistry() { tls_override = previous_; }

Registry::Shard& Registry::local_shard() {
  for (const TlsEntry& entry : tls_shards) {
    if (entry.registry_id == id_) {
      return *static_cast<Shard*>(entry.shard.get());
    }
  }
  if (tls_shards.size() >= kTlsPruneThreshold) {
    std::erase_if(tls_shards,
                  [](const TlsEntry& entry) { return entry.alive.expired(); });
  }
  auto shard = std::make_shared<Shard>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(shard);
  }
  tls_shards.push_back(TlsEntry{id_, alive_, shard});
  return *shard;
}

void Registry::absorb(const MetricsSnapshot& snapshot) {
  if (!enabled() || snapshot.empty()) return;
  Shard& shard = local_shard();
  // Gauge sequence numbers are drawn before the shard lock, matching
  // gauge_set(); each absorbed gauge gets a fresh (monotone) write so a
  // later absorb overrides an earlier one.
  for (const auto& [name, value] : snapshot.gauges) {
    const std::uint64_t seq = gauge_seq_.fetch_add(1) + 1;
    const std::lock_guard<std::mutex> lock(shard.mu);
    GaugeCell& cell = shard.gauges[name];
    if (seq > cell.seq) {
      cell.seq = seq;
      cell.value = value;
    }
  }
  const std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [name, value] : snapshot.counters) {
    shard.counters[name] += value;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    shard.histograms[name].merge(hist);
  }
}

void Registry::counter_add(std::string_view name, std::uint64_t delta) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.counters[std::string(name)] += delta;
}

void Registry::gauge_set(std::string_view name, double value) {
  if (!enabled()) return;
  const std::uint64_t seq = gauge_seq_.fetch_add(1) + 1;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  GaugeCell& cell = shard.gauges[std::string(name)];
  if (seq > cell.seq) {
    cell.seq = seq;
    cell.value = value;
  }
}

void Registry::observe_ms(std::string_view name, double ms) {
  if (!enabled()) return;
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mu);
  shard.histograms[std::string(name)].observe(ms);
}

MetricsSnapshot Registry::snapshot() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
  }
  MetricsSnapshot out;
  std::map<std::string, GaugeCell> gauges;
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [name, value] : shard->counters) out.counters[name] += value;
    for (const auto& [name, cell] : shard->gauges) {
      GaugeCell& merged = gauges[name];
      if (cell.seq >= merged.seq) merged = cell;
    }
    for (const auto& [name, hist] : shard->histograms) {
      out.histograms[name].merge(hist);
    }
  }
  for (const auto& [name, cell] : gauges) out.gauges[name] = cell.value;
  return out;
}

void Registry::reset() {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shards = shards_;
  }
  for (const auto& shard : shards) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->counters.clear();
    shard->gauges.clear();
    shard->histograms.clear();
  }
}

std::string to_text(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter " << name << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge " << name << " " << value << "\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    out << "histogram " << name << " count " << hist.count << " mean_ms "
        << hist.mean_ms() << " max_ms " << hist.max_ms << "\n";
  }
  return out.str();
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":";
    append_json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":{\"count\":" + std::to_string(hist.count) +
           ",\"sum_ms\":";
    append_json_number(out, hist.sum_ms);
    out += ",\"min_ms\":";
    append_json_number(out, hist.count ? hist.min_ms : 0);
    out += ",\"max_ms\":";
    append_json_number(out, hist.max_ms);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.buckets.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(hist.buckets[i]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace deco::obs
