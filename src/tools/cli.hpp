// deco command-line frontend.
//
// Subcommands (see `deco help`):
//   calibrate  — run the micro-benchmark calibration, save the metadata store
//   generate   — synthesize a workflow (Montage/LIGO/...) as a DAX file
//   plan       — plan a DAX workflow under a probabilistic deadline
//   run        — plan + execute on the simulated cloud, report statistics
//   solve      — run a WLog program against a DAX workflow
//
// The command implementations are a library so tests can drive them
// directly; src/tools/deco_main.cpp is the thin binary wrapper.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace deco::tools {

/// Exit codes: distinct failure classes so scripts and CI can tell a solver
/// that could not plan from a file that could not be read from a cloud that
/// ran out of capacity.
inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;          ///< usage / unexpected errors
inline constexpr int kExitSolverFailure = 2;  ///< scheduler/solver failed
inline constexpr int kExitInputError = 3;     ///< missing/unreadable/bad input
inline constexpr int kExitProvisioningExhausted = 4;  ///< control plane gave up
/// The solve budget (--solve-budget-ms / --memory-budget-mb) fired, but the
/// solver still produced a valid anytime plan (reported before exiting).
inline constexpr int kExitBudgetExhaustedPlan = 5;
/// The solve budget fired before any plan existed: nothing to report.
inline constexpr int kExitBudgetExhaustedEmpty = 6;

/// Parsed command line: subcommand, --key value options, positionals.
struct CliArgs {
  std::string command;
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;

  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, std::string fallback) const;
  double number_or(const std::string& key, double fallback) const;
};

/// Parses argv-style input ("--key value" or "--flag"; bare words are
/// positional; the first bare word is the subcommand).
CliArgs parse_args(const std::vector<std::string>& argv);

/// Runs one subcommand; output goes to `out`.  Returns the exit code.
int run_cli(const CliArgs& args, std::ostream& out);

/// Convenience overload for main().
int run_cli(int argc, const char* const* argv, std::ostream& out);

}  // namespace deco::tools
