// The `deco` binary: thin wrapper over tools::run_cli.
#include <iostream>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  return deco::tools::run_cli(argc, argv, std::cout);
}
