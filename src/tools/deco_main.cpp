// The `deco` binary: thin wrapper over tools::run_cli.
//
// run_cli has its own error boundary; this one catches anything that still
// escapes (e.g. stream failures while reporting) so malformed inputs always
// exit with a one-line diagnostic instead of std::terminate.
#include <exception>
#include <iostream>

#include "tools/cli.hpp"

int main(int argc, char** argv) {
  try {
    return deco::tools::run_cli(argc, argv, std::cout);
  } catch (const std::exception& e) {
    std::cerr << "deco: fatal: " << e.what() << "\n";
    return 1;
  } catch (...) {
    std::cerr << "deco: fatal: unexpected failure\n";
    return 1;
  }
}
