#include "tools/cli.hpp"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "baselines/autoscaling.hpp"
#include "cloud/calibration.hpp"
#include "cloud/control_plane.hpp"
#include "core/deco.hpp"
#include "obs/obs.hpp"
#include "util/budget.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "wms/pegasus.hpp"
#include "workflow/dax.hpp"
#include "workflow/generators.hpp"
#include "workflow/stats.hpp"

namespace deco::tools {
namespace {

constexpr const char* kUsage = R"(deco — declarative workflow provisioning for IaaS clouds

usage: deco <command> [options]

commands:
  calibrate  --out store.txt [--samples 10000] [--seed 7]
      Run the micro-benchmark calibration against the simulated EC2 cloud
      and save the metadata store of performance histograms.

  generate   --app montage|ligo|epigenomics|cybershake|pipeline
             --out wf.dax [--tasks 100 | --degree 4] [--seed 7]
      Synthesize a workflow and write it as a Pegasus DAX file.

  plan       --dax wf.dax --deadline 3600 [--quantile 96]
             [--scheduler deco|autoscaling|random|<type name>]
             [--estimator mc|analytic|auto] [--region us-east-1]
             [--store store.txt] [--seed 7]
      Compute a provisioning plan and report the estimated cost and
      makespan distribution.  --estimator picks the evaluation tier
      (default auto): "mc" is full Monte Carlo on every state, "analytic"
      the closed-form screen alone, "auto" the screened hierarchy
      (analytic screen -> adaptive QMC -> full-MC verification).
      --region pins every placement to a named catalog region (exit 3
      with the candidate list on an unknown name).

  run        --dax wf.dax --deadline 3600 [--quantile 96] [--runs 20]
             [--scheduler ...] [--estimator mc|analytic|auto]
             [--region us-east-1] [--store store.txt] [--seed 7]
             [--api-profile none|degraded|exhausted]
             [--weather-profile none|storms|blackout]
      Plan, then execute on the simulated cloud; report statistics.
      --api-profile injects control-plane faults: "degraded" throttles and
      interleaves capacity outages (runs complete via retry/fallback),
      "exhausted" fails every provisioning call (exits with code 4).
      --weather-profile layers region-correlated failure weather on the
      control plane: "storms" injects recurring regional storms (runs
      survive on retries and failover), "blackout" blacks out every
      region permanently with fallback disabled (exits with code 4).

  solve      --dax wf.dax --program prog.wlog [--store store.txt]
             [--wlog-exec vm|interp] [--wlog-segments on|off]
      Solve a WLog program against the workflow (declarative path).
      --wlog-exec picks the engine (default vm: compiled bytecode;
      interp: the tree-walking oracle); --wlog-segments off disables the
      direct IR-to-segment translation of totalcost/maxtime shapes.

  info       --dax wf.dax
      Summarize a workflow: structure, task mix, data volumes.

  stats      --dax wf.dax --deadline 3600 [plan options]
             [--program file.wlog [solve options]]
      Plan with observability enabled and print the metrics summary
      table (solver effort, evaluator cache hits, staging/kernel times).
      With --program, runs the declarative solve instead and the summary
      includes the wlog.vm.* engine counters.

  help
      Show this text.

global options (any command):
  --metrics-out m.json   write a JSON metrics dump after the command
  --trace-out t.json     write a Chrome trace (chrome://tracing, Perfetto)

solve budgets (plan, run, solve, stats):
  --solve-budget-ms N    wall-clock budget for the solve; when it fires the
                         solver returns its best plan so far (exit code 5)
  --memory-budget-mb N   cap on resident solver caches; the engine degrades
                         (drops device images, segments, shrinks the visited
                         set) before cutting the solve

exit codes:
  0  success
  1  usage or unexpected error
  2  the scheduler/solver failed to produce a plan
  3  input error (missing, unreadable or malformed --dax/--program file)
  4  cloud capacity exhausted (control-plane retries and fallback gave up)
  5  solve budget exhausted, best-so-far plan reported (anytime result)
  6  solve budget exhausted before any plan existed
)";

struct CloudSetup {
  cloud::Catalog catalog;
  cloud::MetadataStore store;
};

/// Builds the solve budget selected by --solve-budget-ms / --memory-budget-mb
/// (nullopt when neither flag is present: the solve runs unbudgeted).
std::optional<util::SolveBudget> cli_budget(const CliArgs& args) {
  const double wall_ms = args.number_or("solve-budget-ms", 0);
  const double mem_mb = args.number_or("memory-budget-mb", 0);
  if (wall_ms <= 0 && mem_mb <= 0) return std::nullopt;
  util::SolveBudget budget;
  budget.wall_ms = wall_ms;
  budget.max_bytes = static_cast<std::size_t>(mem_mb * 1024.0 * 1024.0);
  return budget;
}

/// Prints the one-line anytime-cut notice for an exhausted budget.
void report_budget_cut(const util::BudgetTracker& tracker, std::ostream& out) {
  out << "solve budget exhausted (" << util::to_string(tracker.trigger())
      << ") after " << util::Table::num(tracker.elapsed_ms(), 0)
      << " ms; reporting the best result found before the cutoff\n";
}

CloudSetup load_cloud(const CliArgs& args) {
  CloudSetup setup;
  setup.catalog = cloud::make_ec2_catalog();
  if (const auto path = args.get("store")) {
    if (auto loaded = cloud::MetadataStore::load(*path)) {
      setup.store = std::move(*loaded);
      return setup;
    }
  }
  setup.store = core::make_store_from_catalog(
      setup.catalog, "ec2", 4000, 24,
      static_cast<std::uint64_t>(args.number_or("seed", 7)));
  return setup;
}

std::optional<workflow::Workflow> load_dax(const CliArgs& args,
                                           std::ostream& out) {
  const auto path = args.get("dax");
  if (!path) {
    out << "error: --dax <file> is required\n";
    return std::nullopt;
  }
  auto parsed = workflow::load_dax_file(*path);
  if (std::holds_alternative<workflow::DaxError>(parsed)) {
    out << "error: " << std::get<workflow::DaxError>(parsed).message << "\n";
    return std::nullopt;
  }
  return std::get<workflow::Workflow>(std::move(parsed));
}

std::unique_ptr<wms::Scheduler> make_scheduler(const std::string& name,
                                               core::Deco& engine,
                                               const cloud::Catalog& catalog) {
  if (name == "deco") return std::make_unique<wms::DecoScheduler>(engine);
  if (name == "autoscaling") {
    return std::make_unique<wms::AutoscalingScheduler>();
  }
  if (name == "random") return std::make_unique<wms::RandomScheduler>();
  if (const auto type = catalog.find_type(name)) {
    return std::make_unique<wms::FixedTypeScheduler>(*type);
  }
  return nullptr;
}

int cmd_calibrate(const CliArgs& args, std::ostream& out) {
  const cloud::Catalog catalog = cloud::make_ec2_catalog();
  cloud::MetadataStore store;
  cloud::CalibrationOptions options;
  options.samples_per_setting =
      static_cast<std::size_t>(args.number_or("samples", 10000));
  util::Rng rng(static_cast<std::uint64_t>(args.number_or("seed", 2015)));
  const auto report = cloud::calibrate(catalog, store, options, rng);

  util::Table table({"setting", "mean", "stddev", "KS p(Normal)"});
  for (const auto& rec : report.records) {
    table.add_row({rec.key, util::Table::num(util::mean(rec.samples), 1),
                   util::Table::num(util::stddev(rec.samples), 1),
                   util::Table::num(rec.ks_normal.p_value, 3)});
  }
  out << table.to_string();

  const std::string path = args.get_or("out", "metadata_store.txt");
  if (!store.save(path)) {
    out << "error: cannot write " << path << "\n";
    return 1;
  }
  out << "saved " << store.size() << " histograms to " << path << "\n";
  return 0;
}

int cmd_generate(const CliArgs& args, std::ostream& out) {
  const std::string app = args.get_or("app", "montage");
  const auto path = args.get("out");
  if (!path) {
    out << "error: --out <file.dax> is required\n";
    return 1;
  }
  util::Rng rng(static_cast<std::uint64_t>(args.number_or("seed", 7)));
  workflow::Workflow wf;
  if (app == "montage" && args.get("degree")) {
    wf = workflow::make_montage(
        static_cast<int>(args.number_or("degree", 1)), rng);
  } else {
    workflow::AppType type;
    if (app == "montage") type = workflow::AppType::kMontage;
    else if (app == "ligo") type = workflow::AppType::kLigo;
    else if (app == "epigenomics") type = workflow::AppType::kEpigenomics;
    else if (app == "cybershake") type = workflow::AppType::kCyberShake;
    else if (app == "pipeline") type = workflow::AppType::kPipeline;
    else {
      out << "error: unknown app '" << app << "'\n";
      return 1;
    }
    wf = workflow::make_workflow(
        type, static_cast<std::size_t>(args.number_or("tasks", 100)), rng);
  }
  if (!workflow::save_dax_file(wf, *path)) {
    out << "error: cannot write " << *path << "\n";
    return 1;
  }
  out << "wrote " << wf.name() << ": " << wf.task_count() << " tasks, "
      << wf.edge_count() << " edges -> " << *path << "\n";
  return 0;
}

/// Builds the control-plane options selected by --api-profile, or nullopt
/// for the default infallible API.  Throws std::invalid_argument on an
/// unknown profile name (the run_cli boundary maps it to a usage error).
std::optional<cloud::ControlPlaneOptions> api_profile_options(
    const std::string& profile, std::uint64_t seed) {
  if (profile == "none") return std::nullopt;
  cloud::ControlPlaneOptions cp;
  cp.seed = seed;
  if (profile == "degraded") {
    // Nonzero but survivable: throttling, occasional outages, 5% transient
    // errors.  Runs complete through retries and fallback grants.
    cp.faults.throttle_rate_per_s = 0.05;
    cp.faults.throttle_burst = 2;
    cp.faults.capacity_mtbo_s = 2 * 3600.0;
    cp.faults.capacity_outage_s = 900;
    cp.faults.transient_error_prob = 0.05;
    return cp;
  }
  if (profile == "exhausted") {
    // Every API call fails from t=0 onward, with fallback disabled:
    // provisioning must give up (exit kExitProvisioningExhausted).
    cp.faults.transient_error_prob = 1.0;
    cp.allow_type_fallback = false;
    cp.allow_region_fallback = false;
    cp.retry.max_attempts = 3;
    cp.give_up_s = 600;
    return cp;
  }
  throw std::invalid_argument("unknown --api-profile '" + profile + "'");
}

/// Layers --weather-profile onto the control-plane options (creating them
/// when --api-profile was "none": weather needs a mediating control plane).
/// Throws std::invalid_argument on an unknown profile name.
void apply_weather_profile(const std::string& profile, std::uint64_t seed,
                           std::optional<cloud::ControlPlaneOptions>& cp) {
  if (profile == "none") return;
  if (!cp) {
    cp.emplace();
    cp->seed = seed;
  }
  if (profile == "storms") {
    // Recurring regional storms: correlated blackouts, synchronized spot
    // reclaims and elevated crash rates — but storms pass, so runs survive
    // on retries and region failover.
    cp->faults.weather.storm_mtbs_s = 3600;
    cp->faults.weather.storm_duration_s = 600;
    cp->faults.weather.capacity_hazard = 0.5;
    cp->faults.weather.crash_hazard = 4.0;
    return;
  }
  if (profile == "blackout") {
    // One permanent all-region blackout storm, in progress from t=0, with
    // fallback disabled: provisioning must give up
    // (exit kExitProvisioningExhausted).
    cp->faults.weather.storm_mtbs_s = 1.0;
    cp->faults.weather.storm_duration_s = 1e9;
    cp->faults.weather.capacity_hazard = 1.0;
    cp->faults.weather.initial_storm = true;
    cp->allow_type_fallback = false;
    cp->allow_region_fallback = false;
    cp->retry.max_attempts = 3;
    cp->give_up_s = 600;
    return;
  }
  throw std::invalid_argument("unknown --weather-profile '" + profile + "'");
}

int cmd_plan(const CliArgs& args, std::ostream& out, bool execute) {
  const auto wf = load_dax(args, out);
  if (!wf) return kExitInputError;
  const auto deadline = args.get("deadline");
  if (!deadline) {
    out << "error: --deadline <seconds> is required\n";
    return 1;
  }
  // Estimator-hierarchy selection: the CLI defaults to the screened "auto"
  // hierarchy; the library default stays "mc" so programmatic users opt in.
  const std::string estimator_name = args.get_or("estimator", "auto");
  const auto estimator_mode = core::parse_estimator_mode(estimator_name);
  if (!estimator_mode) {
    out << "error: unknown --estimator '" << estimator_name
        << "' (expected mc|analytic|auto)\n";
    return kExitInputError;
  }
  // Echo the choice into --metrics-out dumps (a counter keyed by mode, so
  // the JSON records which estimator produced the numbers around it).
  obs::Registry::instance().counter_add(
      std::string("cli.estimator.") + core::to_string(*estimator_mode), 1);

  const CloudSetup cloud = load_cloud(args);

  // --region pins every placement to a named catalog region; an unknown
  // name is an input error that lists the candidates.
  cloud::RegionId region = 0;
  if (const auto region_name = args.get("region")) {
    const auto found = cloud.catalog.find_region(*region_name);
    if (!found) {
      out << "error: unknown region '" << *region_name << "' (expected one of:";
      for (const cloud::Region& r : cloud.catalog.regions()) {
        out << " " << r.name;
      }
      out << ")\n";
      return kExitInputError;
    }
    region = *found;
  }
  // Echo the placement region into --metrics-out dumps, mirroring the
  // estimator echo above.
  obs::Registry::instance().counter_add(
      "cli.region." + cloud.catalog.region(region).name, 1);

  core::ProbDeadline req;
  req.deadline_s = args.number_or("deadline", 3600);
  req.quantile = args.number_or("quantile", 96) / 100.0;

  core::DecoOptions engine_options;
  engine_options.eval.estimator = *estimator_mode;
  engine_options.ensemble_eval.estimator = *estimator_mode;
  core::Deco engine(cloud.catalog, cloud.store, engine_options);
  wms::PegasusWms wms(cloud.catalog, cloud.store);
  const std::string scheduler_name = args.get_or("scheduler", "deco");
  auto scheduler = make_scheduler(scheduler_name, engine, cloud.catalog);
  if (!scheduler) {
    out << "error: unknown scheduler '" << scheduler_name << "'\n";
    return 1;
  }
  wms.set_scheduler(std::move(scheduler));
  wms.set_home_region(region);

  util::Rng rng(static_cast<std::uint64_t>(args.number_or("seed", 7)));
  const auto budget_spec = cli_budget(args);
  std::optional<util::BudgetTracker> tracker;
  if (budget_spec) tracker.emplace(*budget_spec);
  auto planned =
      wms.plan_workflow(*wf, req, rng, tracker ? &*tracker : nullptr);
  if (std::holds_alternative<wms::WmsError>(planned)) {
    out << "error: " << std::get<wms::WmsError>(planned).message << "\n";
    return tracker && tracker->exhausted() ? kExitBudgetExhaustedEmpty
                                           : kExitSolverFailure;
  }
  const auto& exec = std::get<wms::ExecutableWorkflow>(planned);

  // Report the plan.
  std::map<std::string, int> site_counts;
  for (const auto& task : exec.tasks) ++site_counts[task.site];
  out << "plan (" << exec.scheduler
      << "): estimator=" << core::to_string(*estimator_mode) << "\n";
  for (const auto& [site, count] : site_counts) {
    out << "  " << count << " tasks -> " << site << "\n";
  }

  core::TaskTimeEstimator estimator(cloud.catalog, cloud.store);
  vgpu::VirtualGpuBackend backend;
  core::PlanEvaluator evaluator(*wf, estimator, backend);
  const auto eval = evaluator.evaluate(exec.plan, req);
  out << "estimated cost $" << util::Table::num(eval.mean_cost, 4)
      << ", mean makespan " << util::Table::num(eval.mean_makespan, 0)
      << " s, P(makespan <= " << req.deadline_s
      << " s) = " << util::Table::num(eval.deadline_prob, 3)
      << (eval.feasible ? " (feasible)" : " (NOT feasible)") << "\n";

  int code = kExitOk;
  if (tracker && tracker->exhausted()) {
    report_budget_cut(*tracker, out);
    code = kExitBudgetExhaustedPlan;
  }

  if (execute) {
    const std::uint64_t seed =
        static_cast<std::uint64_t>(args.number_or("seed", 7));
    auto cp_options = api_profile_options(args.get_or("api-profile", "none"),
                                          seed);
    const std::string weather = args.get_or("weather-profile", "none");
    apply_weather_profile(weather, seed, cp_options);
    obs::Registry::instance().counter_add("cli.weather." + weather, 1);
    std::optional<cloud::ControlPlane> control;
    sim::ExecutorOptions exec_options;
    if (cp_options) {
      control.emplace(cloud.catalog, *cp_options);
      exec_options.control = &*control;
    }
    const int runs = static_cast<int>(args.number_or("runs", 20));
    std::vector<double> costs;
    std::vector<double> makespans;
    int met = 0;
    for (int i = 0; i < runs; ++i) {
      const auto report = wms.execute(exec, rng, req, exec_options);
      costs.push_back(report.total_cost);
      makespans.push_back(report.makespan);
      met += report.met_deadline;
    }
    out << "executed " << runs << " runs: avg billed cost $"
        << util::Table::num(util::mean(costs), 4) << ", avg makespan "
        << util::Table::num(util::mean(makespans), 0) << " s, deadline met "
        << met << "/" << runs << "\n";
    if (control) {
      const cloud::ApiStats& api = control->stats();
      out << "control plane: " << api.calls << " API calls, " << api.throttled
          << " throttled, " << api.capacity_denials << " capacity denials, "
          << api.retries << " retries, " << api.fallbacks << " fallbacks";
      if (api.storm_denials > 0 || api.storm_reclaims > 0) {
        out << ", " << api.storm_denials << " storm denials, "
            << api.storm_reclaims << " storm reclaims";
      }
      out << "\n";
    }
  }
  return code;
}

int cmd_solve(const CliArgs& args, std::ostream& out) {
  const auto wf = load_dax(args, out);
  if (!wf) return kExitInputError;
  const auto program_path = args.get("program");
  if (!program_path) {
    out << "error: --program <file.wlog> is required\n";
    return kExitInputError;
  }
  std::ifstream in(*program_path);
  if (!in) {
    out << "error: cannot open " << *program_path << "\n";
    return kExitInputError;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const CloudSetup cloud = load_cloud(args);
  const auto budget_spec = cli_budget(args);
  std::optional<util::BudgetTracker> tracker;
  core::DecoOptions engine_options;
  if (budget_spec) {
    tracker.emplace(*budget_spec);
    engine_options.budget = &*tracker;
  }
  engine_options.wlog_exec = args.get_or("wlog-exec", "vm");
  engine_options.wlog_segments = args.get_or("wlog-segments", "on") != "off";
  core::Deco engine(cloud.catalog, cloud.store, engine_options);
  const auto result = engine.solve_program(buffer.str(), *wf);
  if (!result.ok) {
    out << "error: " << result.error << "\n";
    return tracker && tracker->exhausted() ? kExitBudgetExhaustedEmpty
                                           : kExitSolverFailure;
  }
  out << "solved: goal value " << util::Table::num(result.goal_value, 4)
      << ", feasible " << (result.feasible ? "yes" : "no") << ", "
      << result.stats.states_evaluated << " states in "
      << util::Table::num(result.stats.elapsed_ms, 0) << " ms\n";
  for (workflow::TaskId t = 0; t < wf->task_count(); ++t) {
    out << "  " << wf->task(t).name << " -> "
        << cloud.catalog.type(result.plan[t].vm_type).name << "\n";
  }
  if (tracker && tracker->exhausted()) {
    report_budget_cut(*tracker, out);
    return kExitBudgetExhaustedPlan;
  }
  return 0;
}

int cmd_info(const CliArgs& args, std::ostream& out) {
  const auto wf = load_dax(args, out);
  if (!wf) return kExitInputError;
  out << workflow::describe(workflow::compute_stats(*wf), wf->name());
  return 0;
}

int cmd_stats(const CliArgs& args, std::ostream& out) {
  // Observability was enabled by run_cli (the command name opts in); run
  // the plan pipeline — or the declarative solve when a WLog program is
  // given — then render what the instrumentation saw.
  const int code = args.get("program") ? cmd_solve(args, out)
                                       : cmd_plan(args, out, /*execute=*/false);
  // A budget-exhausted plan still has metrics worth printing (the budget.*
  // counters especially); any other failure aborts before the tables.
  if (code != 0 && code != kExitBudgetExhaustedPlan) return code;

  const obs::MetricsSnapshot snap = obs::Registry::instance().snapshot();
  out << "\nmetrics summary";
  if (!obs::kCompiledIn) {
    out << " (instrumentation compiled out: rebuild with -DDECO_OBS=ON)";
  }
  out << ":\n";
  if (!snap.counters.empty()) {
    util::Table counters({"counter", "value"});
    for (const auto& [name, value] : snap.counters) {
      counters.add_row({name, std::to_string(value)});
    }
    out << counters.to_string();
  }
  if (!snap.gauges.empty()) {
    util::Table gauges({"gauge", "value"});
    for (const auto& [name, value] : snap.gauges) {
      gauges.add_row({name, util::Table::num(value, 4)});
    }
    out << gauges.to_string();
  }
  if (!snap.histograms.empty()) {
    util::Table timers({"timer", "count", "mean ms", "max ms"});
    for (const auto& [name, hist] : snap.histograms) {
      timers.add_row({name, std::to_string(hist.count),
                      util::Table::num(hist.mean_ms(), 3),
                      util::Table::num(hist.max_ms, 3)});
    }
    out << timers.to_string();
  }
  // One-line estimator-hierarchy summary (the tallies also appear in the
  // counters table above; this is the at-a-glance version).
  const auto counter = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  const std::uint64_t screen_total = counter("eval.screen.accepted") +
                                     counter("eval.screen.rejected") +
                                     counter("eval.screen.escalated");
  if (screen_total != 0) {
    out << "estimator screen: " << counter("eval.screen.accepted")
        << " accepted, " << counter("eval.screen.rejected") << " rejected, "
        << counter("eval.screen.escalated") << " escalated; qmc early stops "
        << counter("eval.qmc.early_stops") << ", iterations saved "
        << counter("eval.qmc.iterations_saved") << "\n";
  }
  // At-a-glance WLog VM summary when a declarative solve ran (the wlog.vm.*
  // counters also appear in the counters table above).
  const std::uint64_t vm_instructions = counter("wlog.vm.instructions");
  if (vm_instructions != 0) {
    const std::uint64_t hits = counter("wlog.vm.index.hits");
    const std::uint64_t misses = counter("wlog.vm.index.misses");
    out << "wlog vm: " << vm_instructions << " instructions, "
        << counter("wlog.vm.calls") << " calls, index hits " << hits << "/"
        << (hits + misses) << ", " << counter("wlog.vm.compiled_clauses")
        << " clauses compiled, " << counter("wlog.vm.segment_translations")
        << " segment translations, " << counter("wlog.vm.segment_worlds")
        << " segment worlds\n";
  }
  return code;
}

/// Subcommand dispatch (no error boundary; run_cli wraps this).
int dispatch(const CliArgs& args, std::ostream& out) {
  if (args.command.empty() || args.command == "help") {
    out << kUsage;
    return args.command.empty() ? 1 : 0;
  }
  if (args.command == "calibrate") return cmd_calibrate(args, out);
  if (args.command == "generate") return cmd_generate(args, out);
  if (args.command == "plan") return cmd_plan(args, out, /*execute=*/false);
  if (args.command == "run") return cmd_plan(args, out, /*execute=*/true);
  if (args.command == "solve") return cmd_solve(args, out);
  if (args.command == "info") return cmd_info(args, out);
  if (args.command == "stats") return cmd_stats(args, out);
  out << "error: unknown command '" << args.command << "'\n" << kUsage;
  return 1;
}

}  // namespace

std::optional<std::string> CliArgs::get(const std::string& key) const {
  const auto it = options.find(key);
  if (it == options.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& key,
                            std::string fallback) const {
  return get(key).value_or(std::move(fallback));
}

double CliArgs::number_or(const std::string& key, double fallback) const {
  const auto value = get(key);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (...) {
    return fallback;
  }
}

CliArgs parse_args(const std::vector<std::string>& argv) {
  CliArgs args;
  for (std::size_t i = 0; i < argv.size(); ++i) {
    const std::string& word = argv[i];
    if (word.rfind("--", 0) == 0) {
      const std::string key = word.substr(2);
      if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "true";  // bare flag
      }
    } else if (args.command.empty()) {
      args.command = word;
    } else {
      args.positional.push_back(word);
    }
  }
  return args;
}

int run_cli(const CliArgs& args, std::ostream& out) {
  // Observability opt-in: --metrics-out / --trace-out on any command (and
  // the stats command itself) enable the registry and trace collector for
  // the duration of the command, then dump and disable them.
  const auto metrics_path = args.get("metrics-out");
  const auto trace_path = args.get("trace-out");
  const bool observe = metrics_path || trace_path || args.command == "stats";
  if (observe) {
    obs::Registry::instance().reset();
    obs::Registry::instance().set_enabled(true);
    obs::TraceCollector::instance().clear();
    obs::TraceCollector::instance().set_enabled(true);
  }

  // Top-level error boundary: malformed inputs must produce a one-line
  // diagnostic and a non-zero exit, never an escaping exception.
  int code;
  try {
    code = dispatch(args, out);
  } catch (const cloud::ProvisioningExhaustedError& e) {
    // The control plane retried, fell back, and still found no capacity:
    // a distinct exit code so orchestration can tell "the cloud is full"
    // from "my inputs are wrong".
    out << "error: " << e.what() << "\n";
    code = kExitProvisioningExhausted;
  } catch (const std::exception& e) {
    out << "error: " << e.what() << "\n";
    code = 1;
  } catch (...) {
    out << "error: unexpected failure\n";
    code = 1;
  }

  if (observe) {
    obs::Registry::instance().set_enabled(false);
    obs::TraceCollector::instance().set_enabled(false);
    if (metrics_path) {
      std::ofstream file(*metrics_path);
      if (file) {
        file << obs::to_json(obs::Registry::instance().snapshot()) << "\n";
        out << "wrote metrics to " << *metrics_path << "\n";
      } else {
        out << "error: cannot write " << *metrics_path << "\n";
        if (code == 0) code = 1;
      }
    }
    if (trace_path) {
      std::ofstream file(*trace_path);
      if (file) {
        obs::TraceCollector::instance().write(file);
        out << "wrote trace to " << *trace_path << "\n";
      } else {
        out << "error: cannot write " << *trace_path << "\n";
        if (code == 0) code = 1;
      }
    }
  }
  return code;
}

int run_cli(int argc, const char* const* argv, std::ostream& out) {
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) words.emplace_back(argv[i]);
  return run_cli(parse_args(words), out);
}

}  // namespace deco::tools
