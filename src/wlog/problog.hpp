// Probabilistic intermediate representation of WLog programs (Section 5.1)
// and its Monte Carlo evaluation (Section 5.2, Algorithm 1).
//
// Translation: each WLog rule becomes a rule of the IR; cloud dynamics enter
// as *annotated disjunctions* — groups of mutually exclusive facts with bin
// probabilities from the metadata-store histograms, e.g. for every (task,
// vm type) pair the group { p_j : exetime(Tid, Vid, T_j) } over histogram
// bins j.  Deterministic programs are the special case where every group has
// a single alternative with probability 1 (Section 5.1's uniform interface).
//
// Evaluation: ProbLog exact inference is exponential in the number of proofs,
// so, like the paper, we use Monte Carlo approximation: sample a possible
// world (one alternative per group), run the standard WLog interpreter in
// that world, and aggregate — the mean for goal queries, the success
// frequency for constraint queries.  The vgpu backend parallelizes exactly
// this loop (one lane per Monte Carlo iteration).
#pragma once

#include <string>
#include <vector>

#include "util/budget.hpp"
#include "util/rng.hpp"
#include "wlog/database.hpp"
#include "wlog/interp.hpp"
#include "wlog/program.hpp"
#include "wlog/vm.hpp"

namespace deco::wlog {

/// Annotated disjunction: exactly one alternative holds per possible world.
struct ProbGroup {
  std::vector<double> probs;   ///< bin masses, sum to 1
  std::vector<TermPtr> facts;  ///< same-shape facts, one per bin
};

/// Index of the alternative selected by uniform draw `u` (cumulative scan;
/// the last alternative absorbs numeric slack).  Shared by every layer that
/// samples a world — Database copies, VM fact layering, and the segment
/// evaluator — so they consume the RNG identically.
std::size_t pick_alternative(const ProbGroup& group, double u);

class ProbProgram {
 public:
  ProbProgram() = default;

  /// Deterministic layer: rules and plain facts (probability 1).
  Database& base() { return base_; }
  const Database& base() const { return base_; }

  void add_group(ProbGroup group);
  const std::vector<ProbGroup>& groups() const { return groups_; }

  /// Samples one possible world: base plus one alternative per group.
  Database sample_world(util::Rng& rng) const;

  /// The world where every group contributes its *expected value* fact is
  /// not well defined in general; instead the most probable world picks the
  /// modal alternative per group (used by deterministic optimizations).
  Database modal_world() const;

 private:
  Database base_;
  std::vector<ProbGroup> groups_;
};

/// Builds the IR skeleton from a parsed program (rules only; the engine adds
/// workflow/cloud facts and histogram groups from its metadata).
ProbProgram translate_rules(const Program& program);

/// Result of a Monte Carlo query evaluation.
struct McResult {
  double value = 0;        ///< mean goal value over worlds where it resolved
  double probability = 0;  ///< fraction of worlds where the query held
  std::size_t iterations = 0;
};

struct McOptions {
  std::size_t max_iterations = 128;  ///< the paper's Max_iter
  std::size_t step_limit = 2'000'000;
  /// Optional cooperative solve budget; when armed, each per-world
  /// interpreter checks it periodically and a fired budget aborts the MC
  /// loop by throwing util::BudgetExhaustedError.
  util::BudgetTracker* budget = nullptr;
  /// Engine for per-world proofs.  kVm keeps one database copy and one
  /// bytecode VM alive across the whole loop (compiled clauses are reused
  /// between iterations); kInterp copies the database per world and runs
  /// the tree-walking interpreter — the differential oracle.
  ExecMode exec = ExecMode::kVm;
};

/// Algorithm 1 for a goal query: per world, proves `query` and reads the
/// numeric binding of `variable`; returns the mean and the success rate.
McResult mc_eval_goal(const ProbProgram& program, const TermPtr& query,
                      const TermPtr& variable, util::Rng& rng,
                      const McOptions& options = {});

/// Algorithm 1 for a constraint query: fraction of worlds in which `query`
/// has a proof (e.g. makespan =< deadline).
McResult mc_eval_constraint(const ProbProgram& program, const TermPtr& query,
                            util::Rng& rng, const McOptions& options = {});

/// Per-world values of `variable` (used for percentile-style constraints:
/// deadline(p, D) holds iff the p-quantile of these values is <= D).
std::vector<double> mc_sample_values(const ProbProgram& program,
                                     const TermPtr& query,
                                     const TermPtr& variable, util::Rng& rng,
                                     const McOptions& options = {});

}  // namespace deco::wlog
