#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "wlog/lexer.hpp"
#include "wlog/program.hpp"

namespace deco::wlog {
namespace {

/// Recursive-descent Prolog term parser with the usual operator precedences:
/// 700 comparisons (xfx), 500 +/- (yfx), 400 * / mod (yfx), 200 unary minus.
class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(tokenize(source)) {}

  ParseResult parse_program() {
    ParseResult result;
    while (!failed_ && !at(TokenKind::kEnd)) {
      if (at(TokenKind::kError)) {
        fail(cur().text);
        break;
      }
      parse_item(result.program);
    }
    if (failed_) result.error = ParseError{error_line_, error_};
    return result;
  }

  TermParseResult parse_single_term() {
    TermParseResult result;
    var_ids_.clear();
    result.term = parse_expr(1200);
    if (!failed_ && !at(TokenKind::kEnd) && !is_punct(".")) {
      fail("trailing input after term");
    }
    if (failed_) {
      result.error = ParseError{error_line_, error_};
      return result;
    }
    // First-occurrence order, not map (alphabetical) order: ids are handed
    // out sequentially at first sight, so sorting by id restores the order
    // the variables appear in the query text.  Solution::bindings inherits
    // this order in both engines.
    for (const auto& [name, id] : var_ids_) {
      result.variables.emplace_back(name, id);
    }
    std::sort(result.variables.begin(), result.variables.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return result;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  const Token& peek(std::size_t ahead = 1) const {
    return tokens_[std::min(pos_ + ahead, tokens_.size() - 1)];
  }
  bool at(TokenKind kind) const { return cur().kind == kind; }
  bool is_punct(std::string_view text) const {
    return cur().kind == TokenKind::kPunct && cur().text == text;
  }
  bool is_atom(std::string_view text) const {
    return cur().kind == TokenKind::kAtom && cur().text == text;
  }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  void fail(std::string message) {
    if (!failed_) {
      failed_ = true;
      error_ = std::move(message);
      error_line_ = cur().line;
    }
  }
  bool expect_punct(std::string_view text) {
    if (!is_punct(text)) {
      fail("expected '" + std::string(text) + "', found '" + cur().text + "'");
      return false;
    }
    advance();
    return true;
  }
  bool expect_atom(std::string_view text) {
    if (!is_atom(text)) {
      fail("expected '" + std::string(text) + "', found '" + cur().text + "'");
      return false;
    }
    advance();
    return true;
  }

  TermPtr var_term(const std::string& name) {
    if (name == "_") return make_var(next_var_id_++, "_");
    const auto it = var_ids_.find(name);
    if (it != var_ids_.end()) return make_var(it->second, name);
    const std::int64_t id = next_var_id_++;
    var_ids_.emplace(name, id);
    return make_var(id, name);
  }

  // --- term grammar ---------------------------------------------------

  TermPtr parse_primary() {
    if (failed_) return kNil;
    switch (cur().kind) {
      case TokenKind::kInt: {
        const auto v = cur().ival;
        advance();
        return make_int(v);
      }
      case TokenKind::kFloat: {
        const double v = cur().fval;
        advance();
        return make_float(v);
      }
      case TokenKind::kVar: {
        const std::string name = cur().text;
        advance();
        return var_term(name);
      }
      case TokenKind::kAtom: {
        const std::string name = cur().text;
        advance();
        if (is_punct("(")) {
          advance();
          std::vector<TermPtr> args;
          args.push_back(parse_expr(999));
          while (is_punct(",")) {
            advance();
            args.push_back(parse_expr(999));
          }
          expect_punct(")");
          return make_compound(name, std::move(args));
        }
        return make_atom(name);
      }
      case TokenKind::kPunct: {
        if (cur().text == "(") {
          advance();
          TermPtr inner = parse_expr(1200);
          expect_punct(")");
          return inner;
        }
        if (cur().text == "[") {
          advance();
          if (is_punct("]")) {
            advance();
            return kNil;
          }
          std::vector<TermPtr> items;
          items.push_back(parse_expr(999));
          while (is_punct(",")) {
            advance();
            items.push_back(parse_expr(999));
          }
          TermPtr tail = kNil;
          if (is_punct("|")) {
            advance();
            tail = parse_expr(999);
          }
          expect_punct("]");
          return make_list(std::move(items), std::move(tail));
        }
        if (cur().text == "!") {
          advance();
          return make_atom("!");
        }
        if (cur().text == "-") {
          advance();
          TermPtr operand = parse_expr(200);
          if (operand->kind == TermKind::kInt) return make_int(-operand->ival);
          if (operand->kind == TermKind::kFloat) return make_float(-operand->fval);
          return make_compound("-", {operand});
        }
        if (cur().text == "\\+") {
          advance();
          TermPtr operand = parse_expr(900);
          return make_compound("\\+", {operand});
        }
        fail("unexpected token '" + cur().text + "'");
        return kNil;
      }
      default:
        fail("unexpected end of input");
        return kNil;
    }
  }

  static int punct_precedence(const std::string& op) {
    if (op == ";") return 1100;
    if (op == "->") return 1050;
    if (op == "," ) return 1000;
    if (op == "==" || op == "\\==" || op == "=" || op == "\\=" || op == "<" ||
        op == ">" || op == "=<" || op == ">=" || op == "=:=" || op == "=\\=") {
      return 700;
    }
    if (op == "+" || op == "-") return 500;
    if (op == "*" || op == "/") return 400;
    return 0;
  }

  TermPtr parse_expr(int max_prec) {
    // Recursive descent: cap the nesting so hostile input (deeply nested
    // terms, kilometer-long conjunctions) fails cleanly instead of
    // exhausting the native stack, which sanitized builds hit early.
    constexpr int kMaxNesting = 512;
    if (++expr_depth_ > kMaxNesting) {
      fail("term nesting too deep");
      --expr_depth_;
      return kNil;
    }
    TermPtr result = parse_expr_at(max_prec);
    --expr_depth_;
    return result;
  }

  TermPtr parse_expr_at(int max_prec) {
    TermPtr left = parse_primary();
    for (;;) {
      if (failed_) return left;
      // `is` and `mod` are atom-shaped infix operators.
      if (cur().kind == TokenKind::kAtom &&
          (cur().text == "is" || cur().text == "mod")) {
        const int prec = cur().text == "is" ? 700 : 400;
        if (prec > max_prec) return left;
        const std::string op = cur().text;
        advance();
        TermPtr right = parse_expr(prec - 1);
        left = make_compound(op, {left, right});
        continue;
      }
      if (cur().kind != TokenKind::kPunct) return left;
      const std::string op = cur().text;
      if (op == "," && max_prec >= 1000) {
        advance();
        TermPtr right = parse_expr(1000);
        left = make_compound(",", {left, right});
        continue;
      }
      const int prec = punct_precedence(op);
      if (prec == 0 || op == "," || prec > max_prec) return left;
      advance();
      // 700-level operators are xfx (non-associative).
      TermPtr right = parse_expr(prec == 700 ? prec - 1 : prec);
      left = make_compound(op, {left, right});
    }
  }

  // Flattens ','/2 chains into a goal list.
  static void flatten_conjunction(const TermPtr& term,
                                  std::vector<TermPtr>& out) {
    if (term->kind == TermKind::kCompound && term->text == "," &&
        term->args.size() == 2) {
      flatten_conjunction(term->args[0], out);
      flatten_conjunction(term->args[1], out);
      return;
    }
    out.push_back(term);
  }

  // --- program items ----------------------------------------------------

  void parse_item(Program& program) {
    var_ids_.clear();
    if (is_atom("import") && peek().kind == TokenKind::kPunct &&
        peek().text == "(") {
      advance();
      advance();
      if (!at(TokenKind::kAtom)) {
        fail("import() expects an atom");
        return;
      }
      program.imports.push_back(cur().text);
      advance();
      expect_punct(")");
      expect_punct(".");
      return;
    }
    if (is_atom("enabled") && peek().kind == TokenKind::kPunct &&
        peek().text == "(") {
      advance();
      advance();
      if (is_atom("astar")) {
        program.astar_enabled = true;
        advance();
      } else {
        fail("enabled() supports only 'astar'");
        return;
      }
      expect_punct(")");
      expect_punct(".");
      return;
    }
    if (is_atom("goal") &&
        (peek().kind == TokenKind::kAtom &&
         (peek().text == "minimize" || peek().text == "maximize"))) {
      advance();
      GoalSpec spec;
      spec.minimize = cur().text == "minimize";
      advance();
      spec.variable = parse_expr(200);
      expect_atom("in");
      spec.query = parse_expr(999);
      expect_punct(".");
      program.goal = spec;
      return;
    }
    if (is_atom("cons") && peek().kind != TokenKind::kPunct) {
      advance();
      parse_constraint(program);
      return;
    }
    if (is_atom("var") && peek().kind == TokenKind::kAtom) {
      advance();
      VarDecl decl;
      decl.template_term = parse_expr(699);
      expect_atom("forall");
      decl.generators.push_back(parse_expr(699));
      while (is_atom("and")) {
        advance();
        decl.generators.push_back(parse_expr(699));
      }
      expect_punct(".");
      program.vars.push_back(std::move(decl));
      return;
    }
    // Regular clause: Head [:- Body] .
    Clause clause;
    clause.head = parse_expr(999);
    if (is_punct(":-")) {
      advance();
      TermPtr body = parse_expr(1200);
      flatten_conjunction(body, clause.body);
    }
    expect_punct(".");
    if (!failed_) {
      if (!clause.head->is_callable()) {
        fail("clause head must be an atom or compound term");
        return;
      }
      program.clauses.push_back(std::move(clause));
    }
  }

  void parse_constraint(Program& program) {
    ConstraintSpec spec;
    // Two shapes:  `cons V in Query satisfies ...` | `cons Query.`
    const std::size_t rollback = pos_;
    if (at(TokenKind::kVar) && peek().kind == TokenKind::kAtom &&
        peek().text == "in") {
      spec.variable = parse_expr(200);
      advance();  // 'in'
      spec.query = parse_expr(699);
      if (is_atom("satisfies")) {
        advance();
        // deadline(p, d) | budget(p, b) | comparison
        if (is_atom("deadline") || is_atom("budget")) {
          const bool is_deadline = cur().text == "deadline";
          advance();
          expect_punct("(");
          TermPtr p = parse_expr(999);
          expect_punct(",");
          TermPtr bound = parse_expr(999);
          expect_punct(")");
          expect_punct(".");
          if (failed_) return;
          if (p->kind != TermKind::kInt && p->kind != TermKind::kFloat) {
            fail("deadline/budget percentile must be numeric");
            return;
          }
          if (bound->kind != TermKind::kInt && bound->kind != TermKind::kFloat) {
            fail("deadline/budget bound must be numeric");
            return;
          }
          spec.kind = is_deadline ? ConstraintSpec::Kind::kDeadline
                                  : ConstraintSpec::Kind::kBudget;
          spec.quantile = p->number();
          if (spec.quantile > 1.0) spec.quantile /= 100.0;  // allow `95`
          spec.bound = bound->number();
          program.constraints.push_back(std::move(spec));
          return;
        }
        // Comparison form: V =< Expr  (the variable restated on the left).
        if (at(TokenKind::kVar)) {
          advance();  // the restated variable
        }
        if (cur().kind == TokenKind::kPunct &&
            (cur().text == "=<" || cur().text == "<" || cur().text == ">=" ||
             cur().text == ">")) {
          spec.kind = ConstraintSpec::Kind::kCompare;
          spec.cmp_op = cur().text;
          advance();
          spec.cmp_rhs = parse_expr(699);
          expect_punct(".");
          if (!failed_) program.constraints.push_back(std::move(spec));
          return;
        }
        fail("expected deadline(...), budget(...) or a comparison after 'satisfies'");
        return;
      }
      // No 'satisfies': treat the whole thing as a holds-query.
      pos_ = rollback;
      var_ids_.clear();
    }
    spec = ConstraintSpec{};
    spec.kind = ConstraintSpec::Kind::kHolds;
    spec.query = parse_expr(999);
    expect_punct(".");
    if (!failed_) program.constraints.push_back(std::move(spec));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int expr_depth_ = 0;
  bool failed_ = false;
  std::string error_;
  std::size_t error_line_ = 0;
  std::map<std::string, std::int64_t> var_ids_;
  std::int64_t next_var_id_ = 1;
};

}  // namespace

ParseResult parse_program(std::string_view source) {
  DECO_OBS_SPAN_TIMED("wlog", "parse_program", "wlog.parse_ms");
  ParseResult result = Parser(source).parse_program();
  DECO_OBS_COUNTER_ADD("wlog.programs_parsed", 1);
  if (result.ok()) {
    DECO_OBS_COUNTER_ADD("wlog.clauses_parsed", result.program.clauses.size());
  }
  return result;
}

TermParseResult parse_term(std::string_view source) {
  return Parser(source).parse_single_term();
}

}  // namespace deco::wlog
