#include "wlog/term.hpp"

#include <cmath>
#include <sstream>

namespace deco::wlog {

const TermPtr kNil = make_atom("[]");
const TermPtr kTrue = make_atom("true");

TermPtr make_atom(std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kAtom;
  t->text = std::move(name);
  return t;
}

TermPtr make_int(std::int64_t value) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kInt;
  t->ival = value;
  return t;
}

TermPtr make_float(double value) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kFloat;
  t->fval = value;
  return t;
}

TermPtr make_number(double value) {
  if (std::abs(value) < 9e15 && value == std::floor(value)) {
    return make_int(static_cast<std::int64_t>(value));
  }
  return make_float(value);
}

TermPtr make_var(std::int64_t id, std::string name) {
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kVar;
  t->ival = id;
  t->text = std::move(name);
  return t;
}

TermPtr make_compound(std::string functor, std::vector<TermPtr> args) {
  if (args.empty()) return make_atom(std::move(functor));
  auto t = std::make_shared<Term>();
  t->kind = TermKind::kCompound;
  t->text = std::move(functor);
  t->args = std::move(args);
  return t;
}

TermPtr make_list(std::vector<TermPtr> items, TermPtr tail) {
  TermPtr acc = tail ? std::move(tail) : kNil;
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    acc = make_compound(".", {*it, acc});
  }
  return acc;
}

std::string indicator(const Term& term) {
  return term.text + "/" + std::to_string(term.arity());
}

TermPtr Bindings::resolve(const TermPtr& term) const {
  TermPtr current = term;
  while (current && current->kind == TermKind::kVar) {
    const auto it = map_.find(current->ival);
    if (it == map_.end()) return current;
    current = it->second;
  }
  return current;
}

TermPtr Bindings::deep_resolve(const TermPtr& term) const {
  const TermPtr r = resolve(term);
  if (!r || r->kind != TermKind::kCompound) return r;
  std::vector<TermPtr> args;
  args.reserve(r->args.size());
  bool changed = false;
  for (const auto& a : r->args) {
    args.push_back(deep_resolve(a));
    changed = changed || args.back() != a;
  }
  if (!changed) return r;
  return make_compound(r->text, std::move(args));
}

void Bindings::bind(std::int64_t var, TermPtr value) {
  map_[var] = std::move(value);
  trail_.push_back(var);
}

void Bindings::undo_to(std::size_t mark) {
  while (trail_.size() > mark) {
    map_.erase(trail_.back());
    trail_.pop_back();
  }
}

bool unify(const TermPtr& a, const TermPtr& b, Bindings& bindings) {
  const TermPtr x = bindings.resolve(a);
  const TermPtr y = bindings.resolve(b);
  if (x->kind == TermKind::kVar && y->kind == TermKind::kVar &&
      x->ival == y->ival) {
    return true;
  }
  if (x->kind == TermKind::kVar) {
    bindings.bind(x->ival, y);
    return true;
  }
  if (y->kind == TermKind::kVar) {
    bindings.bind(y->ival, x);
    return true;
  }
  if (x->kind != y->kind) {
    // Allow 3 == 3.0 to unify as numbers?  Standard Prolog does not; we
    // follow the standard: distinct kinds never unify.
    return false;
  }
  switch (x->kind) {
    case TermKind::kAtom:
      return x->text == y->text;
    case TermKind::kInt:
      return x->ival == y->ival;
    case TermKind::kFloat:
      return x->fval == y->fval;
    case TermKind::kCompound: {
      if (x->text != y->text || x->args.size() != y->args.size()) return false;
      for (std::size_t i = 0; i < x->args.size(); ++i) {
        if (!unify(x->args[i], y->args[i], bindings)) return false;
      }
      return true;
    }
    case TermKind::kVar:
      return false;  // unreachable
  }
  return false;
}

bool term_equal(const TermPtr& a, const TermPtr& b, const Bindings& bindings) {
  return term_compare(a, b, bindings) == 0;
}

int term_compare(const TermPtr& a, const TermPtr& b, const Bindings& bindings) {
  const TermPtr x = bindings.resolve(a);
  const TermPtr y = bindings.resolve(b);
  auto rank = [](const TermPtr& t) {
    switch (t->kind) {
      case TermKind::kVar: return 0;
      case TermKind::kFloat: return 1;
      case TermKind::kInt: return 1;
      case TermKind::kAtom: return 2;
      case TermKind::kCompound: return 3;
    }
    return 4;
  };
  if (rank(x) != rank(y)) return rank(x) < rank(y) ? -1 : 1;
  switch (x->kind) {
    case TermKind::kVar:
      return x->ival < y->ival ? -1 : (x->ival > y->ival ? 1 : 0);
    case TermKind::kInt:
    case TermKind::kFloat: {
      const double dx = x->number();
      const double dy = y->number();
      return dx < dy ? -1 : (dx > dy ? 1 : 0);
    }
    case TermKind::kAtom:
      return x->text.compare(y->text) < 0 ? -1
             : (x->text == y->text ? 0 : 1);
    case TermKind::kCompound: {
      if (x->args.size() != y->args.size()) {
        return x->args.size() < y->args.size() ? -1 : 1;
      }
      if (const int c = x->text.compare(y->text); c != 0) return c < 0 ? -1 : 1;
      for (std::size_t i = 0; i < x->args.size(); ++i) {
        const int c = term_compare(x->args[i], y->args[i], bindings);
        if (c != 0) return c;
      }
      return 0;
    }
  }
  return 0;
}

TermPtr rename(const TermPtr& term, Bindings& bindings,
               std::unordered_map<std::int64_t, TermPtr>& mapping) {
  switch (term->kind) {
    case TermKind::kVar: {
      const auto it = mapping.find(term->ival);
      if (it != mapping.end()) return it->second;
      TermPtr fresh = make_var(bindings.fresh_var(), term->text);
      mapping.emplace(term->ival, fresh);
      return fresh;
    }
    case TermKind::kCompound: {
      std::vector<TermPtr> args;
      args.reserve(term->args.size());
      for (const auto& a : term->args) args.push_back(rename(a, bindings, mapping));
      return make_compound(term->text, std::move(args));
    }
    default:
      return term;
  }
}

std::optional<std::vector<TermPtr>> list_elements(const TermPtr& term,
                                                  const Bindings& bindings) {
  std::vector<TermPtr> out;
  TermPtr current = bindings.resolve(term);
  while (current->is_cons()) {
    out.push_back(bindings.resolve(current->args[0]));
    current = bindings.resolve(current->args[1]);
  }
  if (!current->is_nil()) return std::nullopt;
  return out;
}

namespace {

void print(std::ostringstream& os, const TermPtr& term,
           const Bindings* bindings) {
  TermPtr t = bindings ? bindings->resolve(term) : term;
  switch (t->kind) {
    case TermKind::kAtom:
      os << t->text;
      return;
    case TermKind::kInt:
      os << t->ival;
      return;
    case TermKind::kFloat:
      os << t->fval;
      return;
    case TermKind::kVar:
      os << (t->text == "_" || t->text.empty()
                 ? "_G" + std::to_string(t->ival)
                 : t->text);
      return;
    case TermKind::kCompound: {
      if (t->is_cons()) {
        os << '[';
        bool first = true;
        TermPtr cur = t;
        while (cur->is_cons()) {
          if (!first) os << ',';
          print(os, cur->args[0], bindings);
          first = false;
          cur = bindings ? bindings->resolve(cur->args[1]) : cur->args[1];
        }
        if (!cur->is_nil()) {
          os << '|';
          print(os, cur, bindings);
        }
        os << ']';
        return;
      }
      os << t->text << '(';
      for (std::size_t i = 0; i < t->args.size(); ++i) {
        if (i) os << ',';
        print(os, t->args[i], bindings);
      }
      os << ')';
      return;
    }
  }
}

}  // namespace

std::string to_string(const TermPtr& term, const Bindings& bindings) {
  std::ostringstream os;
  print(os, term, &bindings);
  return os.str();
}

std::string to_string(const TermPtr& term) {
  std::ostringstream os;
  print(os, term, nullptr);
  return os.str();
}

}  // namespace deco::wlog
