#include "wlog/compile.hpp"

#include <unordered_map>
#include <utility>

namespace deco::wlog {

namespace {

Op classify(const std::string& f, std::size_t n) {
  switch (n) {
    case 0:
      if (f == "true") return Op::kTrue;
      if (f == "fail" || f == "false") return Op::kFail;
      if (f == "!") return Op::kCut;
      if (f == "nl") return Op::kNoop;
      break;
    case 1:
      if (f == "\\+" || f == "not") return Op::kNeg;
      if (f == "var") return Op::kVarTest;
      if (f == "nonvar") return Op::kNonvarTest;
      if (f == "atom") return Op::kAtomTest;
      if (f == "number") return Op::kNumberTest;
      if (f == "integer") return Op::kIntegerTest;
      if (f == "float") return Op::kFloatTest;
      if (f == "is_list") return Op::kIsListTest;
      if (f == "write") return Op::kNoop;
      break;
    case 2:
      if (f == ",") return Op::kConj;
      if (f == ";") return Op::kDisj;
      if (f == "->") return Op::kIfThen;
      if (f == "forall") return Op::kForall;
      if (f == "=") return Op::kUnify;
      if (f == "\\=") return Op::kNotUnify;
      if (f == "==") return Op::kStructEq;
      if (f == "\\==") return Op::kStructNeq;
      if (f == "is") return Op::kIs;
      if (f == "<") return Op::kLt;
      if (f == ">") return Op::kGt;
      if (f == "=<") return Op::kLe;
      if (f == ">=") return Op::kGe;
      if (f == "=:=") return Op::kNumEq;
      if (f == "=\\=") return Op::kNumNe;
      if (f == "member") return Op::kMember;
      if (f == "length") return Op::kLength;
      if (f == "sum") return Op::kSumAgg;
      if (f == "max") return Op::kMaxAgg;
      if (f == "min") return Op::kMinAgg;
      if (f == "msort") return Op::kMsort;
      if (f == "sort") return Op::kSort;
      if (f == "reverse") return Op::kReverse;
      if (f == "last") return Op::kLast;
      if (f == "sum_list") return Op::kSumList;
      if (f == "max_list") return Op::kMaxList;
      if (f == "min_list") return Op::kMinList;
      if (f == "succ") return Op::kSucc;
      if (f == "atom_length") return Op::kAtomLength;
      if (f == "copy_term") return Op::kCopyTerm;
      break;
    case 3:
      if (f == "findall") return Op::kFindall;
      if (f == "setof") return Op::kSetof;
      if (f == "bagof") return Op::kBagof;
      if (f == "aggregate_all") return Op::kAggregateAll;
      if (f == "append") return Op::kAppend;
      if (f == "nth0") return Op::kNth0;
      if (f == "numlist") return Op::kNumlist;
      if (f == "atom_concat") return Op::kAtomConcat;
      if (f == "between") return Op::kBetween;
      break;
    default:
      break;
  }
  return Op::kUser;
}

/// Rewrites variable ids to dense slots in first-occurrence order; records
/// whether the subtree contains any variable.
TermPtr renumber(const TermPtr& term,
                 std::unordered_map<std::int64_t, std::int64_t>& slots,
                 bool& has_var) {
  switch (term->kind) {
    case TermKind::kVar: {
      has_var = true;
      const auto [it, inserted] = slots.try_emplace(
          term->ival, static_cast<std::int64_t>(slots.size()));
      return make_var(it->second, term->text);
    }
    case TermKind::kCompound: {
      std::vector<TermPtr> args;
      args.reserve(term->args.size());
      bool changed = false;
      for (const TermPtr& a : term->args) {
        args.push_back(renumber(a, slots, has_var));
        changed = changed || args.back() != a;
      }
      if (!changed) return term;
      return make_compound(term->text, std::move(args));
    }
    default:
      return term;
  }
}

}  // namespace

Op classify_goal(const Term& goal) {
  if (goal.kind == TermKind::kVar) return Op::kDynamic;
  if (!goal.is_callable()) return Op::kUser;  // fails at dispatch
  return classify(goal.text, goal.arity());
}

CompiledClause compile_clause(const Clause& clause) {
  CompiledClause out;
  std::unordered_map<std::int64_t, std::int64_t> slots;
  const std::size_t arity = clause.head->arity();
  out.head_args.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    const TermPtr& arg = clause.head->args[i];
    HeadArg ha;
    if (arg->kind == TermKind::kVar && slots.count(arg->ival) == 0) {
      ha.mode = HeadArgMode::kFirstVar;
      bool has_var = false;
      ha.tmpl = renumber(arg, slots, has_var);
      ha.slot = ha.tmpl->ival;
    } else if (arg->kind == TermKind::kAtom || arg->kind == TermKind::kInt ||
               arg->kind == TermKind::kFloat) {
      ha.mode = HeadArgMode::kConst;
      ha.tmpl = arg;
    } else {
      ha.mode = HeadArgMode::kMatch;
      bool has_var = false;
      ha.tmpl = renumber(arg, slots, has_var);
    }
    out.head_args.push_back(std::move(ha));
  }
  out.body.reserve(clause.body.size());
  for (const TermPtr& goal : clause.body) {
    CompiledGoal cg;
    bool has_var = false;
    cg.tmpl = renumber(goal, slots, has_var);
    cg.ground = !has_var;
    cg.op = classify_goal(*cg.tmpl);
    out.body.push_back(std::move(cg));
  }
  out.nvars = static_cast<std::uint32_t>(slots.size());
  return out;
}

TermPtr instantiate_template(const TermPtr& tmpl, std::int64_t base) {
  switch (tmpl->kind) {
    case TermKind::kVar:
      return make_var(tmpl->ival + base, tmpl->text);
    case TermKind::kCompound: {
      std::vector<TermPtr> args;
      args.reserve(tmpl->args.size());
      bool changed = false;
      for (const TermPtr& a : tmpl->args) {
        args.push_back(instantiate_template(a, base));
        changed = changed || args.back() != a;
      }
      if (!changed) return tmpl;  // ground subtree: share, don't copy
      return make_compound(tmpl->text, std::move(args));
    }
    default:
      return tmpl;
  }
}

bool unify_template(const TermPtr& tmpl, std::int64_t base,
                    const TermPtr& other, Bindings& bindings) {
  switch (tmpl->kind) {
    case TermKind::kVar: {
      const std::int64_t id = tmpl->ival + base;
      if (const TermPtr* bound = bindings.lookup(id)) {
        // Caller side first: matches the interpreter's unify(goal, head)
        // argument order, so var-var chains bind in the same direction.
        return unify(other, *bound, bindings);
      }
      const TermPtr o = bindings.resolve(other);
      if (o->kind == TermKind::kVar) {
        if (o->ival == id) return true;
        bindings.bind(o->ival, make_var(id, tmpl->text));
      } else {
        bindings.bind(id, o);
      }
      return true;
    }
    case TermKind::kAtom: {
      const TermPtr o = bindings.resolve(other);
      if (o->kind == TermKind::kVar) {
        bindings.bind(o->ival, tmpl);
        return true;
      }
      return o->kind == TermKind::kAtom && o->text == tmpl->text;
    }
    case TermKind::kInt: {
      const TermPtr o = bindings.resolve(other);
      if (o->kind == TermKind::kVar) {
        bindings.bind(o->ival, tmpl);
        return true;
      }
      return o->kind == TermKind::kInt && o->ival == tmpl->ival;
    }
    case TermKind::kFloat: {
      const TermPtr o = bindings.resolve(other);
      if (o->kind == TermKind::kVar) {
        bindings.bind(o->ival, tmpl);
        return true;
      }
      return o->kind == TermKind::kFloat && o->fval == tmpl->fval;
    }
    case TermKind::kCompound: {
      const TermPtr o = bindings.resolve(other);
      if (o->kind == TermKind::kVar) {
        bindings.bind(o->ival, instantiate_template(tmpl, base));
        return true;
      }
      if (o->kind != TermKind::kCompound || o->text != tmpl->text ||
          o->args.size() != tmpl->args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < tmpl->args.size(); ++i) {
        if (!unify_template(tmpl->args[i], base, o->args[i], bindings)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

}  // namespace deco::wlog
