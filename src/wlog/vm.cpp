#include "wlog/vm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/obs.hpp"
#include "util/budget.hpp"
#include "wlog/program.hpp"

namespace deco::wlog {

bool eval_arith_term(const TermPtr& expr, const Bindings& bindings,
                     double& out) {
  const TermPtr t = bindings.resolve(expr);
  switch (t->kind) {
    case TermKind::kInt:
    case TermKind::kFloat:
      out = t->number();
      return true;
    case TermKind::kCompound: {
      auto unary = [&](double& v) {
        return t->args.size() == 1 && eval_arith_term(t->args[0], bindings, v);
      };
      auto binary = [&](double& a, double& b) {
        return t->args.size() == 2 &&
               eval_arith_term(t->args[0], bindings, a) &&
               eval_arith_term(t->args[1], bindings, b);
      };
      double a = 0;
      double b = 0;
      if (t->text == "+" && binary(a, b)) { out = a + b; return true; }
      if (t->text == "-" && binary(a, b)) { out = a - b; return true; }
      if (t->text == "-" && unary(a)) { out = -a; return true; }
      if (t->text == "*" && binary(a, b)) { out = a * b; return true; }
      if (t->text == "/" && binary(a, b)) {
        if (b == 0) return false;
        out = a / b;
        return true;
      }
      if (t->text == "mod" && binary(a, b)) {
        if (b == 0) return false;
        out = a - b * std::floor(a / b);
        return true;
      }
      if (t->text == "min" && binary(a, b)) { out = std::min(a, b); return true; }
      if (t->text == "max" && binary(a, b)) { out = std::max(a, b); return true; }
      if (t->text == "abs" && unary(a)) { out = std::abs(a); return true; }
      if (t->text == "sqrt" && unary(a)) {
        if (a < 0) return false;
        out = std::sqrt(a);
        return true;
      }
      if (t->text == "floor" && unary(a)) { out = std::floor(a); return true; }
      if (t->text == "ceiling" && unary(a)) { out = std::ceil(a); return true; }
      if (t->text == "log" && unary(a)) {
        if (a <= 0) return false;
        out = std::log(a);
        return true;
      }
      if (t->text == "exp" && unary(a)) { out = std::exp(a); return true; }
      if (t->text == "pow" && binary(a, b)) { out = std::pow(a, b); return true; }
      return false;
    }
    default:
      return false;
  }
}

std::optional<ExecMode> parse_exec_mode(std::string_view name) {
  if (name == "interp") return ExecMode::kInterp;
  if (name == "vm") return ExecMode::kVm;
  return std::nullopt;
}

const char* exec_mode_name(ExecMode mode) {
  return mode == ExecMode::kInterp ? "interp" : "vm";
}

namespace {

struct GoalNode;
using GoalPtr = std::shared_ptr<const GoalNode>;

/// One pending goal in the continuation cons-list.  `barrier` is the
/// choice-point stack height a cut in this goal's frame truncates to; for
/// kCommit it is the truncation target of the if-then-else commit, and for
/// kEmit the absolute index of the owning collector choice point (stable
/// while the collector is alive — nothing below it can pop).
struct GoalNode {
  enum class Kind : std::uint8_t { kGoal, kCommit, kEmit };
  Kind kind = Kind::kGoal;
  TermPtr goal;
  Op op = Op::kDynamic;
  std::size_t barrier = 0;
  GoalPtr next;
};

GoalPtr make_goal(TermPtr goal, std::size_t barrier, GoalPtr next) {
  auto n = std::make_shared<GoalNode>();
  n->op = classify_goal(*goal);
  n->goal = std::move(goal);
  n->barrier = barrier;
  n->next = std::move(next);
  return n;
}

GoalPtr make_goal_op(TermPtr goal, Op op, std::size_t barrier, GoalPtr next) {
  auto n = std::make_shared<GoalNode>();
  n->goal = std::move(goal);
  n->op = op;
  n->barrier = barrier;
  n->next = std::move(next);
  return n;
}

GoalPtr make_marker(GoalNode::Kind kind, TermPtr goal, std::size_t target,
                    GoalPtr next) {
  auto n = std::make_shared<GoalNode>();
  n->kind = kind;
  n->goal = std::move(goal);
  n->barrier = target;
  n->next = std::move(next);
  return n;
}

struct ChoicePoint {
  enum class Kind : std::uint8_t { kClauses, kAlts, kRange, kDisj, kIte, kCollect };

  struct Alt {
    TermPtr a1, b1;  ///< first unification pair
    TermPtr a2, b2;  ///< optional second pair (null when unused)
  };

  Kind kind;
  std::size_t trail_mark = 0;
  GoalPtr cont;  ///< continuation after the choice-creating goal

  // kClauses
  TermPtr goal;  ///< resolved call term
  const CompiledPred* compiled = nullptr;
  const Database::Pred* pred = nullptr;
  const std::vector<std::uint32_t>* candidates = nullptr;  ///< null: scan all
  std::size_t next = 0;  ///< next candidate / alternative position

  // kAlts
  std::vector<Alt> alts;

  // kRange (between/3)
  TermPtr range_var;
  std::int64_t range_next = 0;
  std::int64_t range_hi = -1;

  // kDisj / kIte: right branch / else goal
  TermPtr alt_goal;

  // kCollect (findall / setof / bagof / aggregate_all)
  Op collect = Op::kFindall;
  TermPtr tmpl;      ///< collect template (aggregate witness)
  TermPtr out;       ///< output argument
  TermPtr agg_spec;  ///< resolved aggregate_all spec
  std::vector<TermPtr> collected;
};

/// The machine for one solve() call.  All state is explicit; no recursion
/// follows the WLog program's structure (term-depth helpers like unify and
/// deep_resolve remain recursive over terms, which the parser bounds).
class Engine {
 public:
  Engine(const Database& db, Vm::CompiledCache& cache,
         Vm::FactCache& fact_cache, Bindings& bindings,
         const std::function<bool(Bindings&)>& on_solution,
         std::size_t step_limit, util::BudgetTracker* budget, VmStats& stats)
      : db_(db),
        cache_(cache),
        fact_cache_(fact_cache),
        b_(bindings),
        on_solution_(on_solution),
        step_limit_(step_limit),
        budget_(budget),
        stats_(stats) {}

  bool run(const TermPtr& goal);

 private:
  void step();
  void retry();
  void retry_clauses();
  void retry_alts();
  void retry_range();
  void retry_collect();
  const CompiledPred* ensure_compiled(const Database::Pred& pred);
  void call_user(const TermPtr& g, const GoalNode& node);
  void note_trail() {
    stats_.trail_high_water =
        std::max<std::uint64_t>(stats_.trail_high_water, b_.mark());
  }
  void fail() { backtracking_ = true; }
  void det_unify(const TermPtr& a, TermPtr value, GoalPtr next) {
    const std::size_t mark = b_.mark();
    if (unify(a, value, b_)) {
      cur_ = std::move(next);
    } else {
      b_.undo_to(mark);
      fail();
    }
  }

  const Database& db_;
  Vm::CompiledCache& cache_;
  Vm::FactCache& fact_cache_;
  Bindings& b_;
  const std::function<bool(Bindings&)>& on_solution_;
  const std::size_t step_limit_;
  util::BudgetTracker* budget_;
  VmStats& stats_;

  std::vector<ChoicePoint> cps_;
  GoalPtr cur_;
  bool backtracking_ = false;
  bool found_ = false;
  std::size_t steps_ = 0;
};

bool Engine::run(const TermPtr& goal) {
  const std::size_t trail_base = b_.mark();
  cur_ = make_goal(goal, 0, nullptr);
  bool stopped = false;      // callback asked to stop: keep bindings wound
  bool step_limited = false;  // silent stop, bindings left as-is (like interp)
  for (;;) {
    if (++steps_ > step_limit_) {
      step_limited = true;
      break;
    }
    if (budget_ != nullptr && (steps_ & 511) == 0) budget_->checkpoint();
    if (!backtracking_) {
      if (!cur_) {
        found_ = true;
        note_trail();
        if (on_solution_(b_)) {
          stopped = true;
          break;
        }
        backtracking_ = true;
        continue;
      }
      step();
    } else {
      if (cps_.empty()) break;
      retry();
    }
  }
  stats_.instructions += steps_;
  if (!stopped && !step_limited) b_.undo_to(trail_base);
  return found_;
}

void Engine::step() {
  const GoalPtr node_ptr = cur_;
  const GoalNode& node = *node_ptr;
  if (node.kind == GoalNode::Kind::kCommit) {
    if (cps_.size() > node.barrier) cps_.resize(node.barrier);
    cur_ = node.next;
    return;
  }
  if (node.kind == GoalNode::Kind::kEmit) {
    cps_[node.barrier].collected.push_back(b_.deep_resolve(node.goal));
    fail();  // enumerate the next sub-solution
    return;
  }
  const TermPtr g = b_.resolve(node.goal);
  Op op = node.op;
  if (op == Op::kDynamic) {
    if (!g->is_callable()) {
      fail();  // cannot call numbers / unbound variables
      return;
    }
    op = classify_goal(*g);
  }
  switch (op) {
    case Op::kTrue:
    case Op::kNoop:
      cur_ = node.next;
      return;
    case Op::kFail:
      fail();
      return;
    case Op::kConj:
      cur_ = make_goal(g->args[0], node.barrier,
                       make_goal(g->args[1], node.barrier, node.next));
      return;
    case Op::kCut:
      if (cps_.size() > node.barrier) cps_.resize(node.barrier);
      cur_ = node.next;
      return;
    case Op::kDisj: {
      const TermPtr left = b_.resolve(g->args[0]);
      if (left->kind == TermKind::kCompound && left->text == "->" &&
          left->args.size() == 2) {
        // If-then-else: push the else branch, run Cond with a commit marker
        // in front of Then.  Cond's barrier keeps the ITE choice point (a
        // cut inside Cond must not discard the else branch); the commit
        // removes it plus every Cond choice point.
        const std::size_t ite = cps_.size();
        ChoicePoint cp;
        cp.kind = ChoicePoint::Kind::kIte;
        cp.trail_mark = b_.mark();
        cp.cont = node.next;
        cp.alt_goal = g->args[1];
        cps_.push_back(std::move(cp));
        note_trail();
        GoalPtr then_node = make_goal(left->args[1], ite, node.next);
        GoalPtr commit = make_marker(GoalNode::Kind::kCommit, nullptr, ite,
                                     std::move(then_node));
        cur_ = make_goal(left->args[0], ite + 1, std::move(commit));
        return;
      }
      // Plain disjunction: cut inside a branch is local to the disjunction
      // (barrier == the disjunction's own choice point), mirroring the
      // interpreter's branch-frame cut.
      const std::size_t disj = cps_.size();
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kDisj;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      cp.alt_goal = g->args[1];
      cps_.push_back(std::move(cp));
      note_trail();
      cur_ = make_goal(g->args[0], disj, node.next);
      return;
    }
    case Op::kIfThen:
      // Bare if-then == (Cond -> Then ; fail).
      cur_ = make_goal_op(make_compound(";", {g, make_atom("fail")}),
                          Op::kDisj, node.barrier, node.next);
      return;
    case Op::kNeg:
      // \+ G == (G -> fail ; true).
      cur_ = make_goal_op(
          make_compound(
              ";", {make_compound("->", {g->args[0], make_atom("fail")}),
                    make_atom("true")}),
          Op::kDisj, node.barrier, node.next);
      return;
    case Op::kForall:
      // forall(Cond, Action) == \+ (Cond, \+ Action).
      cur_ = make_goal_op(
          make_compound(
              "\\+", {make_compound(",", {g->args[0], make_compound(
                                                          "\\+", {g->args[1]})})}),
          Op::kNeg, node.barrier, node.next);
      return;
    case Op::kUnify:
      det_unify(g->args[0], g->args[1], node.next);
      return;
    case Op::kNotUnify: {
      const std::size_t mark = b_.mark();
      const bool unifies = unify(g->args[0], g->args[1], b_);
      b_.undo_to(mark);
      if (unifies) {
        fail();
      } else {
        cur_ = node.next;
      }
      return;
    }
    case Op::kStructEq:
      if (term_equal(g->args[0], g->args[1], b_)) {
        cur_ = node.next;
      } else {
        fail();
      }
      return;
    case Op::kStructNeq:
      if (!term_equal(g->args[0], g->args[1], b_)) {
        cur_ = node.next;
      } else {
        fail();
      }
      return;
    case Op::kIs: {
      double value = 0;
      if (!eval_arith_term(g->args[1], b_, value)) {
        fail();
        return;
      }
      det_unify(g->args[0], make_number(value), node.next);
      return;
    }
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
    case Op::kNumEq:
    case Op::kNumNe: {
      double a = 0;
      double bb = 0;
      if (!eval_arith_term(g->args[0], b_, a) ||
          !eval_arith_term(g->args[1], b_, bb)) {
        fail();
        return;
      }
      const bool ok = (op == Op::kLt && a < bb) || (op == Op::kGt && a > bb) ||
                      (op == Op::kLe && a <= bb) ||
                      (op == Op::kGe && a >= bb) ||
                      (op == Op::kNumEq && a == bb) ||
                      (op == Op::kNumNe && a != bb);
      if (ok) {
        cur_ = node.next;
      } else {
        fail();
      }
      return;
    }
    case Op::kVarTest:
    case Op::kNonvarTest:
    case Op::kAtomTest:
    case Op::kNumberTest:
    case Op::kIntegerTest:
    case Op::kFloatTest:
    case Op::kIsListTest: {
      const TermPtr t = b_.resolve(g->args[0]);
      bool ok = false;
      if (op == Op::kVarTest) ok = t->kind == TermKind::kVar;
      if (op == Op::kNonvarTest) ok = t->kind != TermKind::kVar;
      if (op == Op::kAtomTest) ok = t->kind == TermKind::kAtom;
      if (op == Op::kNumberTest)
        ok = t->kind == TermKind::kInt || t->kind == TermKind::kFloat;
      if (op == Op::kIntegerTest) ok = t->kind == TermKind::kInt;
      if (op == Op::kFloatTest) ok = t->kind == TermKind::kFloat;
      if (op == Op::kIsListTest) ok = list_elements(t, b_).has_value();
      if (ok) {
        cur_ = node.next;
      } else {
        fail();
      }
      return;
    }
    case Op::kFindall:
    case Op::kSetof:
    case Op::kBagof:
    case Op::kAggregateAll: {
      const std::size_t collector = cps_.size();
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kCollect;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      cp.collect = op;
      cp.out = g->args[2];
      if (op == Op::kAggregateAll) {
        cp.agg_spec = b_.resolve(g->args[0]);
        cp.tmpl = cp.agg_spec->kind == TermKind::kCompound
                      ? cp.agg_spec->args[0]
                      : kNil;
      } else {
        cp.tmpl = g->args[0];
      }
      const TermPtr tmpl = cp.tmpl;
      cps_.push_back(std::move(cp));
      note_trail();
      // Sub-goal barrier keeps the collector alive under cuts; the emit
      // marker appends one witness per sub-solution then fails on purpose.
      GoalPtr emit =
          make_marker(GoalNode::Kind::kEmit, tmpl, collector, nullptr);
      cur_ = make_goal(g->args[1], collector + 1, std::move(emit));
      return;
    }
    case Op::kMember: {
      const auto elems = list_elements(g->args[1], b_);
      if (!elems || elems->empty()) {
        fail();
        return;
      }
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kAlts;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      cp.alts.reserve(elems->size());
      for (const TermPtr& e : *elems) cp.alts.push_back({g->args[0], e, nullptr, nullptr});
      cps_.push_back(std::move(cp));
      note_trail();
      fail();  // serviced by retry_alts
      return;
    }
    case Op::kLength: {
      const auto elems = list_elements(g->args[0], b_);
      if (!elems) {
        fail();
        return;
      }
      det_unify(g->args[1], make_int(static_cast<std::int64_t>(elems->size())),
                node.next);
      return;
    }
    case Op::kAppend: {
      const auto a = list_elements(g->args[0], b_);
      const auto bl = list_elements(g->args[1], b_);
      if (a && bl) {
        std::vector<TermPtr> joined = *a;
        joined.insert(joined.end(), bl->begin(), bl->end());
        det_unify(g->args[2], make_list(std::move(joined)), node.next);
        return;
      }
      const auto c = list_elements(g->args[2], b_);
      if (!c) {
        fail();
        return;
      }
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kAlts;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      cp.alts.reserve(c->size() + 1);
      for (std::size_t split = 0; split <= c->size(); ++split) {
        std::vector<TermPtr> left(
            c->begin(), c->begin() + static_cast<std::ptrdiff_t>(split));
        std::vector<TermPtr> right(
            c->begin() + static_cast<std::ptrdiff_t>(split), c->end());
        cp.alts.push_back({g->args[0], make_list(std::move(left)), g->args[1],
                           make_list(std::move(right))});
      }
      cps_.push_back(std::move(cp));
      note_trail();
      fail();
      return;
    }
    case Op::kNth0: {
      const auto elems = list_elements(g->args[1], b_);
      if (!elems) {
        fail();
        return;
      }
      const TermPtr idx = b_.resolve(g->args[0]);
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kAlts;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      for (std::size_t i = 0; i < elems->size(); ++i) {
        if (idx->kind == TermKind::kInt &&
            idx->ival != static_cast<std::int64_t>(i)) {
          continue;
        }
        cp.alts.push_back({g->args[0], make_int(static_cast<std::int64_t>(i)),
                           g->args[2], (*elems)[i]});
      }
      if (cp.alts.empty()) {
        fail();
        return;
      }
      cps_.push_back(std::move(cp));
      note_trail();
      fail();
      return;
    }
    case Op::kSumAgg:
    case Op::kMaxAgg:
    case Op::kMinAgg: {
      const auto elems = list_elements(g->args[0], b_);
      if (!elems) {
        fail();
        return;
      }
      TermPtr result;
      if (op == Op::kSumAgg) {
        double acc = 0;
        for (const TermPtr& e : *elems) {
          double v = 0;
          if (!eval_arith_term(e, b_, v)) {
            fail();
            return;
          }
          acc += v;
        }
        result = make_number(acc);
      } else {
        if (elems->empty()) {
          fail();
          return;
        }
        // Plain numbers, or tuples [.., Key] keyed by their last element.
        auto key_of = [&](const TermPtr& e, double& v) {
          const TermPtr r = b_.resolve(e);
          if (r->kind == TermKind::kInt || r->kind == TermKind::kFloat) {
            v = r->number();
            return true;
          }
          const auto tuple = list_elements(r, b_);
          if (!tuple || tuple->empty()) return false;
          return eval_arith_term(tuple->back(), b_, v);
        };
        std::size_t best = 0;
        double best_key = 0;
        if (!key_of((*elems)[0], best_key)) {
          fail();
          return;
        }
        for (std::size_t i = 1; i < elems->size(); ++i) {
          double k = 0;
          if (!key_of((*elems)[i], k)) {
            fail();
            return;
          }
          const bool better =
              op == Op::kMaxAgg ? k > best_key : k < best_key;
          if (better) {
            best = i;
            best_key = k;
          }
        }
        result = (*elems)[best];
      }
      det_unify(g->args[1], std::move(result), node.next);
      return;
    }
    case Op::kMsort:
    case Op::kSort:
    case Op::kReverse: {
      const auto elems = list_elements(g->args[0], b_);
      if (!elems) {
        fail();
        return;
      }
      std::vector<TermPtr> out;
      out.reserve(elems->size());
      for (const TermPtr& e : *elems) out.push_back(b_.deep_resolve(e));
      if (op == Op::kReverse) {
        std::reverse(out.begin(), out.end());
      } else {
        std::stable_sort(out.begin(), out.end(),
                         [&](const TermPtr& x, const TermPtr& y) {
                           return term_compare(x, y, b_) < 0;
                         });
        if (op == Op::kSort) {
          out.erase(std::unique(out.begin(), out.end(),
                                [&](const TermPtr& x, const TermPtr& y) {
                                  return term_compare(x, y, b_) == 0;
                                }),
                    out.end());
        }
      }
      det_unify(g->args[1], make_list(std::move(out)), node.next);
      return;
    }
    case Op::kLast: {
      const auto elems = list_elements(g->args[0], b_);
      if (!elems || elems->empty()) {
        fail();
        return;
      }
      det_unify(g->args[1], elems->back(), node.next);
      return;
    }
    case Op::kSumList:
    case Op::kMaxList:
    case Op::kMinList: {
      const auto elems = list_elements(g->args[0], b_);
      if (!elems) {
        fail();
        return;
      }
      if (op != Op::kSumList && elems->empty()) {
        fail();
        return;
      }
      double acc = op == Op::kSumList ? 0
                   : op == Op::kMaxList
                       ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
      for (const TermPtr& e : *elems) {
        double v = 0;
        if (!eval_arith_term(e, b_, v)) {
          fail();
          return;
        }
        if (op == Op::kSumList) acc += v;
        if (op == Op::kMaxList) acc = std::max(acc, v);
        if (op == Op::kMinList) acc = std::min(acc, v);
      }
      det_unify(g->args[1], make_number(acc), node.next);
      return;
    }
    case Op::kNumlist: {
      double lo = 0;
      double hi = 0;
      if (!eval_arith_term(g->args[0], b_, lo) ||
          !eval_arith_term(g->args[1], b_, hi)) {
        fail();
        return;
      }
      std::vector<TermPtr> items;
      for (std::int64_t v = static_cast<std::int64_t>(lo);
           v <= static_cast<std::int64_t>(hi); ++v) {
        items.push_back(make_int(v));
      }
      det_unify(g->args[2], make_list(std::move(items)), node.next);
      return;
    }
    case Op::kSucc: {
      const TermPtr a = b_.resolve(g->args[0]);
      const TermPtr bb = b_.resolve(g->args[1]);
      if (a->kind == TermKind::kInt) {
        det_unify(g->args[1], make_int(a->ival + 1), node.next);
      } else if (bb->kind == TermKind::kInt && bb->ival > 0) {
        det_unify(g->args[0], make_int(bb->ival - 1), node.next);
      } else {
        fail();
      }
      return;
    }
    case Op::kAtomConcat: {
      const TermPtr a = b_.resolve(g->args[0]);
      const TermPtr bb = b_.resolve(g->args[1]);
      if (a->kind != TermKind::kAtom || bb->kind != TermKind::kAtom) {
        fail();
        return;
      }
      det_unify(g->args[2], make_atom(a->text + bb->text), node.next);
      return;
    }
    case Op::kAtomLength: {
      const TermPtr a = b_.resolve(g->args[0]);
      if (a->kind != TermKind::kAtom) {
        fail();
        return;
      }
      det_unify(g->args[1],
                make_int(static_cast<std::int64_t>(a->text.size())),
                node.next);
      return;
    }
    case Op::kCopyTerm: {
      std::unordered_map<std::int64_t, TermPtr> mapping;
      const TermPtr copy = rename(b_.deep_resolve(g->args[0]), b_, mapping);
      det_unify(g->args[1], copy, node.next);
      return;
    }
    case Op::kBetween: {
      double lo = 0;
      double hi = 0;
      if (!eval_arith_term(g->args[0], b_, lo) ||
          !eval_arith_term(g->args[1], b_, hi)) {
        fail();
        return;
      }
      ChoicePoint cp;
      cp.kind = ChoicePoint::Kind::kRange;
      cp.trail_mark = b_.mark();
      cp.cont = node.next;
      cp.range_var = g->args[2];
      cp.range_next = static_cast<std::int64_t>(lo);
      cp.range_hi = static_cast<std::int64_t>(hi);
      cps_.push_back(std::move(cp));
      note_trail();
      fail();
      return;
    }
    case Op::kUser:
    case Op::kDynamic:
      call_user(g, node);
      return;
  }
}

const CompiledPred* Engine::ensure_compiled(const Database::Pred& pred) {
  auto& slot = cache_[&pred];
  if (!slot) slot = std::make_unique<CompiledPred>();
  CompiledPred& cp = *slot;
  if (cp.version == pred.version) return &cp;
  // Salvage the longest compiled prefix that still matches.  Sequence
  // stamps are unique and clause slots only ever shift left (retract) or
  // truncate/extend at the end (undo/assert), so a surviving clause's slot
  // index is non-increasing over time — a stamp match at position k-1
  // therefore proves slots 0..k-1 are exactly the clauses compiled there.
  std::size_t keep = std::min(cp.seqs.size(), pred.seqs.size());
  while (keep > 0 && cp.seqs[keep - 1] != pred.seqs[keep - 1]) --keep;
  cp.clauses.resize(keep);
  cp.seqs.resize(keep);
  for (std::size_t i = keep; i < pred.clauses.size(); ++i) {
    const Clause& clause = pred.clauses[i];
    std::shared_ptr<const CompiledClause> cc;
    if (clause.body.empty()) {
      // Facts compile to a pure function of the head term, so identical
      // head pointers (the MC loop re-asserting a group alternative) share
      // one compiled object across worlds.
      auto& memo = fact_cache_[clause.head.get()];
      if (!memo.second) {
        memo = {clause.head,
                std::make_shared<const CompiledClause>(compile_clause(clause))};
        ++stats_.compiled_clauses;
      }
      cc = memo.second;
    } else {
      cc = std::make_shared<const CompiledClause>(compile_clause(clause));
      ++stats_.compiled_clauses;
    }
    cp.clauses.push_back(std::move(cc));
    cp.seqs.push_back(pred.seqs[i]);
  }
  cp.version = pred.version;
  return &cp;
}

void Engine::call_user(const TermPtr& g, const GoalNode& node) {
  ++stats_.calls;
  const Database::Pred* pred = db_.pred(g->text, g->arity());
  if (pred == nullptr) {
    fail();
    return;
  }
  const CompiledPred* compiled = ensure_compiled(*pred);
  const std::vector<std::uint32_t>* candidates = nullptr;
  bool indexed = false;
  if (g->arity() > 0) {
    const std::string key = index_bucket_key(*b_.resolve(g->args[0]));
    if (!key.empty()) {
      candidates = pred->candidates(key);
      indexed = candidates != nullptr;
    }
  }
  if (indexed) {
    ++stats_.index_hits;
  } else {
    ++stats_.index_misses;
  }
  ChoicePoint cp;
  cp.kind = ChoicePoint::Kind::kClauses;
  cp.trail_mark = b_.mark();
  cp.cont = node.next;
  cp.goal = g;
  cp.compiled = compiled;
  cp.pred = pred;
  cp.candidates = candidates;
  cps_.push_back(std::move(cp));
  note_trail();
  fail();  // first clause serviced by retry_clauses
}

void Engine::retry() {
  switch (cps_.back().kind) {
    case ChoicePoint::Kind::kClauses:
      retry_clauses();
      return;
    case ChoicePoint::Kind::kAlts:
      retry_alts();
      return;
    case ChoicePoint::Kind::kRange:
      retry_range();
      return;
    case ChoicePoint::Kind::kDisj: {
      ChoicePoint cp = std::move(cps_.back());
      cps_.pop_back();
      b_.undo_to(cp.trail_mark);
      cur_ = make_goal(cp.alt_goal, cps_.size(), cp.cont);
      backtracking_ = false;
      return;
    }
    case ChoicePoint::Kind::kIte: {
      // Condition failed outright: run Else.
      ChoicePoint cp = std::move(cps_.back());
      cps_.pop_back();
      b_.undo_to(cp.trail_mark);
      cur_ = make_goal(cp.alt_goal, cps_.size(), cp.cont);
      backtracking_ = false;
      return;
    }
    case ChoicePoint::Kind::kCollect:
      retry_collect();
      return;
  }
}

void Engine::retry_clauses() {
  ChoicePoint& cp = cps_.back();
  const std::size_t frame = cps_.size() - 1;
  const std::size_t total =
      cp.candidates != nullptr ? cp.candidates->size() : cp.pred->clauses.size();
  while (cp.next < total) {
    b_.undo_to(cp.trail_mark);
    const std::size_t idx =
        cp.candidates != nullptr ? (*cp.candidates)[cp.next] : cp.next;
    ++cp.next;
    const bool last = cp.next == total;
    const CompiledClause& cc = *cp.compiled->clauses[idx];
    const std::int64_t base =
        cc.nvars > 0 ? b_.fresh_block(cc.nvars) : 0;
    const Term& call = *cp.goal;
    bool ok = true;
    for (std::size_t i = 0; ok && i < cc.head_args.size(); ++i) {
      const HeadArg& ha = cc.head_args[i];
      switch (ha.mode) {
        case HeadArgMode::kFirstVar: {
          const TermPtr o = b_.resolve(call.args[i]);
          if (o->kind == TermKind::kVar) {
            // Caller var binds to the (fresh) head var, mirroring the
            // interpreter's unify(goal, head) direction.
            b_.bind(o->ival, make_var(base + ha.slot, ha.tmpl->text));
          } else {
            b_.bind(base + ha.slot, o);
          }
          break;
        }
        case HeadArgMode::kConst: {
          const TermPtr o = b_.resolve(call.args[i]);
          if (o->kind == TermKind::kVar) {
            b_.bind(o->ival, ha.tmpl);
          } else if (o->kind != ha.tmpl->kind) {
            ok = false;
          } else if (o->kind == TermKind::kAtom) {
            ok = o->text == ha.tmpl->text;
          } else if (o->kind == TermKind::kInt) {
            ok = o->ival == ha.tmpl->ival;
          } else {
            ok = o->fval == ha.tmpl->fval;
          }
          break;
        }
        case HeadArgMode::kMatch:
          ok = unify_template(ha.tmpl, base, call.args[i], b_);
          break;
      }
    }
    if (!ok) continue;
    // Head matched: splice the compiled body in front of the continuation.
    // Body goals cut back to this frame (removing the clause alternatives).
    GoalPtr list = cp.cont;
    for (auto it = cc.body.rbegin(); it != cc.body.rend(); ++it) {
      const TermPtr inst =
          it->ground ? it->tmpl : instantiate_template(it->tmpl, base);
      list = make_goal_op(inst, it->op, frame, std::move(list));
    }
    if (last) cps_.pop_back();  // last-call optimization: cp is dead now
    cur_ = std::move(list);
    backtracking_ = false;
    note_trail();
    return;
  }
  b_.undo_to(cps_.back().trail_mark);
  cps_.pop_back();
}

void Engine::retry_alts() {
  ChoicePoint& cp = cps_.back();
  while (cp.next < cp.alts.size()) {
    b_.undo_to(cp.trail_mark);
    const ChoicePoint::Alt& alt = cp.alts[cp.next];
    ++cp.next;
    const bool last = cp.next == cp.alts.size();
    if (unify(alt.a1, alt.b1, b_) &&
        (alt.a2 == nullptr || unify(alt.a2, alt.b2, b_))) {
      GoalPtr cont = cp.cont;
      if (last) cps_.pop_back();
      cur_ = std::move(cont);
      backtracking_ = false;
      return;
    }
  }
  b_.undo_to(cps_.back().trail_mark);
  cps_.pop_back();
}

void Engine::retry_range() {
  ChoicePoint& cp = cps_.back();
  while (cp.range_next <= cp.range_hi) {
    b_.undo_to(cp.trail_mark);
    const std::int64_t v = cp.range_next;
    ++cp.range_next;
    const bool last = cp.range_next > cp.range_hi;
    if (unify(cp.range_var, make_int(v), b_)) {
      GoalPtr cont = cp.cont;
      if (last) cps_.pop_back();
      cur_ = std::move(cont);
      backtracking_ = false;
      return;
    }
  }
  b_.undo_to(cps_.back().trail_mark);
  cps_.pop_back();
}

void Engine::retry_collect() {
  ChoicePoint cp = std::move(cps_.back());
  cps_.pop_back();
  b_.undo_to(cp.trail_mark);
  TermPtr result;
  if (cp.collect == Op::kFindall || cp.collect == Op::kSetof ||
      cp.collect == Op::kBagof) {
    if (cp.collect != Op::kFindall && cp.collected.empty()) {
      return;  // setof/bagof fail on no solutions; keep backtracking
    }
    if (cp.collect == Op::kSetof) {
      std::sort(cp.collected.begin(), cp.collected.end(),
                [&](const TermPtr& x, const TermPtr& y) {
                  return term_compare(x, y, b_) < 0;
                });
      cp.collected.erase(
          std::unique(cp.collected.begin(), cp.collected.end(),
                      [&](const TermPtr& x, const TermPtr& y) {
                        return term_compare(x, y, b_) == 0;
                      }),
          cp.collected.end());
    }
    result = make_list(std::move(cp.collected));
  } else {
    // aggregate_all(count | sum(E) | max(E) | min(E) | bag(E), Goal, R).
    const TermPtr& spec = cp.agg_spec;
    if (spec->is_atom("count")) {
      result = make_int(static_cast<std::int64_t>(cp.collected.size()));
    } else if (spec->kind == TermKind::kCompound && spec->args.size() == 1 &&
               (spec->text == "sum" || spec->text == "max" ||
                spec->text == "min")) {
      if (spec->text != "sum" && cp.collected.empty()) return;
      double acc = spec->text == "sum" ? 0
                   : spec->text == "max"
                       ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
      for (const TermPtr& e : cp.collected) {
        double v = 0;
        if (!eval_arith_term(e, b_, v)) return;
        if (spec->text == "sum") acc += v;
        if (spec->text == "max") acc = std::max(acc, v);
        if (spec->text == "min") acc = std::min(acc, v);
      }
      result = make_number(acc);
    } else if (spec->kind == TermKind::kCompound && spec->text == "bag" &&
               spec->args.size() == 1) {
      result = make_list(std::move(cp.collected));
    } else {
      return;  // unknown spec: fail
    }
  }
  const std::size_t mark = b_.mark();
  if (unify(cp.out, result, b_)) {
    cur_ = cp.cont;
    backtracking_ = false;
  } else {
    b_.undo_to(mark);
  }
}

}  // namespace

bool Vm::solve(const TermPtr& goal, Bindings& bindings,
               const std::function<bool(Bindings&)>& on_solution) {
  VmStats before = stats_;
  Engine engine(*db_, cache_, fact_cache_, bindings, on_solution,
                step_limit_, budget_, stats_);
  bool found = false;
  try {
    found = engine.run(goal);
  } catch (...) {
    // Budget aborts unwind through here; still flush the counters.
    DECO_OBS_COUNTER_ADD("wlog.vm.instructions",
                         stats_.instructions - before.instructions);
    DECO_OBS_COUNTER_ADD("wlog.vm.calls", stats_.calls - before.calls);
    throw;
  }
  DECO_OBS_COUNTER_ADD("wlog.vm.instructions",
                       stats_.instructions - before.instructions);
  DECO_OBS_COUNTER_ADD("wlog.vm.calls", stats_.calls - before.calls);
  DECO_OBS_COUNTER_ADD("wlog.vm.index.hits",
                       stats_.index_hits - before.index_hits);
  DECO_OBS_COUNTER_ADD("wlog.vm.index.misses",
                       stats_.index_misses - before.index_misses);
  DECO_OBS_COUNTER_ADD("wlog.vm.compiled_clauses",
                       stats_.compiled_clauses - before.compiled_clauses);
  DECO_OBS_GAUGE_SET("wlog.vm.trail.high_water",
                     static_cast<double>(stats_.trail_high_water));
  return found;
}

std::vector<Solution> Vm::query(const std::string& query_text,
                                std::size_t max_solutions) {
  std::vector<Solution> solutions;
  const TermParseResult parsed = parse_term(query_text);
  if (!parsed.ok() || !parsed.term) return solutions;
  Bindings bindings;
  solve(parsed.term, bindings, [&](Bindings& b) {
    Solution s;
    for (const auto& [name, id] : parsed.variables) {
      s.bindings.emplace_back(name, b.deep_resolve(make_var(id, name)));
    }
    solutions.push_back(std::move(s));
    return solutions.size() >= max_solutions;
  });
  return solutions;
}

bool Vm::holds(const std::string& query_text) {
  const TermParseResult parsed = parse_term(query_text);
  if (!parsed.ok() || !parsed.term) return false;
  Bindings bindings;
  bool proven = false;
  solve(parsed.term, bindings, [&proven](Bindings&) {
    proven = true;
    return true;
  });
  return proven;
}

}  // namespace deco::wlog
