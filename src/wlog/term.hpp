// Term representation for WLog (a ProLog dialect, Section 4).
//
// Terms are immutable and shared (structure sharing); variables are numbered
// and resolved through a Bindings store with a trail so unification can be
// undone on backtracking.  Lists are the usual '.'(Head, Tail) / '[]' sugar.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace deco::wlog {

enum class TermKind { kAtom, kInt, kFloat, kVar, kCompound };

struct Term;
using TermPtr = std::shared_ptr<const Term>;

struct Term {
  TermKind kind = TermKind::kAtom;
  std::string text;           ///< atom name / functor / variable name
  std::int64_t ival = 0;      ///< integer value, or variable id for kVar
  double fval = 0;            ///< float value
  std::vector<TermPtr> args;  ///< compound arguments

  bool is_atom(std::string_view name) const {
    return kind == TermKind::kAtom && text == name;
  }
  bool is_nil() const { return is_atom("[]"); }
  bool is_cons() const {
    return kind == TermKind::kCompound && text == "." && args.size() == 2;
  }
  bool is_callable() const {
    return kind == TermKind::kAtom || kind == TermKind::kCompound;
  }
  std::size_t arity() const {
    return kind == TermKind::kCompound ? args.size() : 0;
  }
  /// Numeric value for kInt / kFloat terms.
  double number() const {
    return kind == TermKind::kInt ? static_cast<double>(ival) : fval;
  }
};

TermPtr make_atom(std::string name);
TermPtr make_int(std::int64_t value);
TermPtr make_float(double value);
TermPtr make_var(std::int64_t id, std::string name = "_");
TermPtr make_compound(std::string functor, std::vector<TermPtr> args);
/// Builds a proper list; `tail` defaults to [].
TermPtr make_list(std::vector<TermPtr> items, TermPtr tail = nullptr);
/// Makes a numeric term, integral when the value is a whole number.
TermPtr make_number(double value);

extern const TermPtr kNil;
extern const TermPtr kTrue;

/// "functor/arity" indicator used as the database key.
std::string indicator(const Term& term);

/// Variable bindings with a trail for backtracking.
class Bindings {
 public:
  /// Follows variable bindings until a non-variable or unbound variable.
  TermPtr resolve(const TermPtr& term) const;

  /// Fully substitutes bound variables, recursively.
  TermPtr deep_resolve(const TermPtr& term) const;

  bool bound(std::int64_t var) const { return map_.count(var) > 0; }
  void bind(std::int64_t var, TermPtr value);

  /// Bound value of a variable id, or nullptr when unbound.  Allocation-free
  /// slot probe for compiled clauses (resolve() needs a var *term*).
  const TermPtr* lookup(std::int64_t var) const {
    const auto it = map_.find(var);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Trail mark / undo for backtracking.
  std::size_t mark() const { return trail_.size(); }
  void undo_to(std::size_t mark);

  std::int64_t fresh_var() { return next_var_++; }
  /// Reserves a contiguous block of `n` fresh ids; returns the first.  The
  /// VM allocates one block per clause activation (slot s -> base + s).
  std::int64_t fresh_block(std::int64_t n) {
    const std::int64_t base = next_var_;
    next_var_ += n;
    return base;
  }
  /// Reserves ids below `floor` (used after parsing assigns clause-local ids).
  void reserve_ids(std::int64_t floor) {
    if (next_var_ < floor) next_var_ = floor;
  }

 private:
  std::unordered_map<std::int64_t, TermPtr> map_;
  std::vector<std::int64_t> trail_;
  std::int64_t next_var_ = 1'000'000;  // parser ids stay far below
};

/// Unifies a and b (no occurs check, standard Prolog behaviour).
bool unify(const TermPtr& a, const TermPtr& b, Bindings& bindings);

/// Structural equality after resolution (== / \== builtins).
bool term_equal(const TermPtr& a, const TermPtr& b, const Bindings& bindings);

/// Standard order of terms comparison (Var < Num < Atom < Compound).
int term_compare(const TermPtr& a, const TermPtr& b, const Bindings& bindings);

/// Renames all variables in `term` to fresh ones (clause renaming).
TermPtr rename(const TermPtr& term, Bindings& bindings,
               std::unordered_map<std::int64_t, TermPtr>& mapping);

/// Pretty-prints a term with variables resolved.
std::string to_string(const TermPtr& term, const Bindings& bindings);
std::string to_string(const TermPtr& term);

/// Reads a ./2 chain into a vector; returns nullopt for improper lists.
std::optional<std::vector<TermPtr>> list_elements(const TermPtr& term,
                                                  const Bindings& bindings);

}  // namespace deco::wlog
