#include "wlog/problog.hpp"

#include <algorithm>
#include <optional>

namespace deco::wlog {

void ProbProgram::add_group(ProbGroup group) {
  // Normalize defensively; histogram masses already sum to 1.
  double total = 0;
  for (double p : group.probs) total += p;
  if (total > 0 && std::abs(total - 1.0) > 1e-9) {
    for (double& p : group.probs) p /= total;
  }
  groups_.push_back(std::move(group));
}

std::size_t pick_alternative(const ProbGroup& group, double u) {
  double acc = 0;
  std::size_t chosen = group.facts.empty() ? 0 : group.facts.size() - 1;
  for (std::size_t i = 0; i < group.probs.size(); ++i) {
    acc += group.probs[i];
    if (u < acc) {
      chosen = i;
      break;
    }
  }
  return chosen;
}

Database ProbProgram::sample_world(util::Rng& rng) const {
  Database world = base_;
  for (const ProbGroup& group : groups_) {
    if (group.facts.empty()) continue;
    world.add_fact(group.facts[pick_alternative(group, rng.uniform())]);
  }
  return world;
}

Database ProbProgram::modal_world() const {
  Database world = base_;
  for (const ProbGroup& group : groups_) {
    if (group.facts.empty()) continue;
    const std::size_t modal = static_cast<std::size_t>(
        std::max_element(group.probs.begin(), group.probs.end()) -
        group.probs.begin());
    world.add_fact(group.facts[modal]);
  }
  return world;
}

ProbProgram translate_rules(const Program& program) {
  ProbProgram ir;
  ir.base().add_program(program);
  return ir;
}

namespace {

/// One Monte Carlo iteration: prove `query` in a sampled world; reports the
/// first proof's variable binding (goal queries are functional per world).
bool run_world(const ProbProgram& program, const TermPtr& query,
               const TermPtr& variable, util::Rng& rng,
               const McOptions& options, double& value_out) {
  const Database world = program.sample_world(rng);
  Interpreter interp(world);
  interp.set_step_limit(options.step_limit);
  interp.set_budget(options.budget);
  Bindings bindings;
  bool proven = false;
  double value = 0;
  interp.solve(query, bindings, [&](Bindings& b) {
    proven = true;
    if (variable) {
      const TermPtr v = b.deep_resolve(variable);
      if (v->kind == TermKind::kInt || v->kind == TermKind::kFloat) {
        value = v->number();
      }
    }
    return true;  // first proof per world
  });
  value_out = value;
  return proven;
}

/// The VM-mode counterpart of run_world.  Instead of copying the database
/// per world and recompiling from scratch, it keeps ONE base copy and ONE Vm
/// alive across the whole Monte Carlo loop, layering each world's sampled
/// facts with mark/add_fact/undo_to.  The compiled-clause cache therefore
/// survives between iterations — the rule bytecode compiles once, and only
/// the layered fact predicates recompile (append-only suffix recompiles).
/// RNG consumption matches sample_world exactly: one uniform per non-empty
/// group, in group order.
class VmWorldRunner {
 public:
  VmWorldRunner(const ProbProgram& program, const McOptions& options)
      : program_(program), world_(program.base()), vm_(world_) {
    vm_.set_step_limit(options.step_limit);
    vm_.set_budget(options.budget);
  }

  bool run(const TermPtr& query, const TermPtr& variable, util::Rng& rng,
           double& value_out) {
    const std::size_t mark = world_.mark();
    for (const ProbGroup& group : program_.groups()) {
      if (group.facts.empty()) continue;
      world_.add_fact(group.facts[pick_alternative(group, rng.uniform())]);
    }
    bool proven = false;
    double value = 0;
    try {
      Bindings bindings;
      vm_.solve(query, bindings, [&](Bindings& b) {
        proven = true;
        if (variable) {
          const TermPtr v = b.deep_resolve(variable);
          if (v->kind == TermKind::kInt || v->kind == TermKind::kFloat) {
            value = v->number();
          }
        }
        return true;  // first proof per world
      });
    } catch (...) {
      world_.undo_to(mark);
      throw;
    }
    world_.undo_to(mark);
    value_out = value;
    return proven;
  }

 private:
  const ProbProgram& program_;
  Database world_;
  Vm vm_;
};

}  // namespace

McResult mc_eval_goal(const ProbProgram& program, const TermPtr& query,
                      const TermPtr& variable, util::Rng& rng,
                      const McOptions& options) {
  McResult result;
  result.iterations = options.max_iterations;
  double sum = 0;
  std::size_t proven_count = 0;
  std::optional<VmWorldRunner> vm_runner;
  if (options.exec == ExecMode::kVm) vm_runner.emplace(program, options);
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    double value = 0;
    const bool proven =
        vm_runner ? vm_runner->run(query, variable, rng, value)
                  : run_world(program, query, variable, rng, options, value);
    if (proven) {
      ++proven_count;
      sum += value;
    }
  }
  result.probability =
      static_cast<double>(proven_count) /
      static_cast<double>(std::max<std::size_t>(1, options.max_iterations));
  result.value = proven_count > 0 ? sum / static_cast<double>(proven_count) : 0;
  return result;
}

McResult mc_eval_constraint(const ProbProgram& program, const TermPtr& query,
                            util::Rng& rng, const McOptions& options) {
  return mc_eval_goal(program, query, nullptr, rng, options);
}

std::vector<double> mc_sample_values(const ProbProgram& program,
                                     const TermPtr& query,
                                     const TermPtr& variable, util::Rng& rng,
                                     const McOptions& options) {
  std::vector<double> values;
  values.reserve(options.max_iterations);
  std::optional<VmWorldRunner> vm_runner;
  if (options.exec == ExecMode::kVm) vm_runner.emplace(program, options);
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    double value = 0;
    const bool proven =
        vm_runner ? vm_runner->run(query, variable, rng, value)
                  : run_world(program, query, variable, rng, options, value);
    if (proven) {
      values.push_back(value);
    }
  }
  return values;
}

}  // namespace deco::wlog
