#include "wlog/problog.hpp"

#include <algorithm>

namespace deco::wlog {

void ProbProgram::add_group(ProbGroup group) {
  // Normalize defensively; histogram masses already sum to 1.
  double total = 0;
  for (double p : group.probs) total += p;
  if (total > 0 && std::abs(total - 1.0) > 1e-9) {
    for (double& p : group.probs) p /= total;
  }
  groups_.push_back(std::move(group));
}

Database ProbProgram::sample_world(util::Rng& rng) const {
  Database world = base_;
  for (const ProbGroup& group : groups_) {
    if (group.facts.empty()) continue;
    const double u = rng.uniform();
    double acc = 0;
    std::size_t chosen = group.facts.size() - 1;
    for (std::size_t i = 0; i < group.probs.size(); ++i) {
      acc += group.probs[i];
      if (u < acc) {
        chosen = i;
        break;
      }
    }
    world.add_fact(group.facts[chosen]);
  }
  return world;
}

Database ProbProgram::modal_world() const {
  Database world = base_;
  for (const ProbGroup& group : groups_) {
    if (group.facts.empty()) continue;
    const std::size_t modal = static_cast<std::size_t>(
        std::max_element(group.probs.begin(), group.probs.end()) -
        group.probs.begin());
    world.add_fact(group.facts[modal]);
  }
  return world;
}

ProbProgram translate_rules(const Program& program) {
  ProbProgram ir;
  ir.base().add_program(program);
  return ir;
}

namespace {

/// One Monte Carlo iteration: prove `query` in a sampled world; reports the
/// first proof's variable binding (goal queries are functional per world).
bool run_world(const ProbProgram& program, const TermPtr& query,
               const TermPtr& variable, util::Rng& rng,
               const McOptions& options, double& value_out) {
  const Database world = program.sample_world(rng);
  Interpreter interp(world);
  interp.set_step_limit(options.step_limit);
  interp.set_budget(options.budget);
  Bindings bindings;
  bool proven = false;
  double value = 0;
  interp.solve(query, bindings, [&](Bindings& b) {
    proven = true;
    if (variable) {
      const TermPtr v = b.deep_resolve(variable);
      if (v->kind == TermKind::kInt || v->kind == TermKind::kFloat) {
        value = v->number();
      }
    }
    return true;  // first proof per world
  });
  value_out = value;
  return proven;
}

}  // namespace

McResult mc_eval_goal(const ProbProgram& program, const TermPtr& query,
                      const TermPtr& variable, util::Rng& rng,
                      const McOptions& options) {
  McResult result;
  result.iterations = options.max_iterations;
  double sum = 0;
  std::size_t proven_count = 0;
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    double value = 0;
    if (run_world(program, query, variable, rng, options, value)) {
      ++proven_count;
      sum += value;
    }
  }
  result.probability =
      static_cast<double>(proven_count) /
      static_cast<double>(std::max<std::size_t>(1, options.max_iterations));
  result.value = proven_count > 0 ? sum / static_cast<double>(proven_count) : 0;
  return result;
}

McResult mc_eval_constraint(const ProbProgram& program, const TermPtr& query,
                            util::Rng& rng, const McOptions& options) {
  return mc_eval_goal(program, query, nullptr, rng, options);
}

std::vector<double> mc_sample_values(const ProbProgram& program,
                                     const TermPtr& query,
                                     const TermPtr& variable, util::Rng& rng,
                                     const McOptions& options) {
  std::vector<double> values;
  values.reserve(options.max_iterations);
  for (std::size_t i = 0; i < options.max_iterations; ++i) {
    if (options.budget != nullptr) options.budget->checkpoint();
    double value = 0;
    if (run_world(program, query, variable, rng, options, value)) {
      values.push_back(value);
    }
  }
  return values;
}

}  // namespace deco::wlog
