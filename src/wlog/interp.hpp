// WLog interpreter: SLD resolution with backtracking, cut, and the ProLog
// built-ins the paper's programs use (`is`, comparisons, findall, setof,
// sum, max, ...).  Section 5.2's WLogInterp answers solver queries with this
// machinery (probabilistically, via problog.hpp's possible-world sampling).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "wlog/database.hpp"
#include "wlog/term.hpp"

namespace deco::util {
class BudgetTracker;
}  // namespace deco::util

namespace deco::wlog {

struct Solution {
  /// Variable name -> fully resolved term, for the query's named variables.
  std::vector<std::pair<std::string, TermPtr>> bindings;

  const TermPtr* find(const std::string& name) const {
    for (const auto& [n, t] : bindings) {
      if (n == name) return &t;
    }
    return nullptr;
  }
  /// Numeric value of a bound variable (0 when absent / non-numeric).
  double number(const std::string& name) const;
};

class Interpreter {
 public:
  explicit Interpreter(const Database& db) : db_(&db) {}

  /// Iteration budget guarding against runaway recursion (per query).
  void set_step_limit(std::size_t limit) { step_limit_ = limit; }

  /// Cooperative solve budget: when armed, resolution checks the tracker
  /// every ~512 steps and aborts the query by throwing
  /// util::BudgetExhaustedError once the budget fires.  Null disarms.
  void set_budget(util::BudgetTracker* budget) { budget_ = budget; }

  /// Proves `goal`; invokes `on_solution` per proof.  Returning true from the
  /// callback stops the search.  Returns true if at least one proof exists.
  bool solve(const TermPtr& goal, Bindings& bindings,
             const std::function<bool(Bindings&)>& on_solution);

  /// Convenience: parses `query`, returns up to `max_solutions` solutions.
  std::vector<Solution> query(const std::string& query_text,
                              std::size_t max_solutions = 16);

  /// True if the parsed query has at least one proof.
  bool holds(const std::string& query_text);

  /// Evaluates an arithmetic expression term (the `is` evaluator); returns
  /// false on non-numeric input.
  bool eval_arith(const TermPtr& expr, const Bindings& bindings,
                  double& out) const;

 private:
  enum class Outcome { kContinue, kStop };
  struct Frame {
    bool cut = false;
  };

  Outcome solve_goals(const std::vector<TermPtr>& goals, std::size_t index,
                      Bindings& bindings, Frame& frame,
                      const std::function<bool(Bindings&)>& on_solution,
                      std::size_t depth);

  Outcome solve_user(const TermPtr& goal, const std::vector<TermPtr>& rest,
                     std::size_t rest_index, Bindings& bindings, Frame& frame,
                     const std::function<bool(Bindings&)>& on_solution,
                     std::size_t depth);

  const Database* db_;
  std::size_t step_limit_ = 5'000'000;
  std::size_t steps_ = 0;
  bool found_ = false;
  util::BudgetTracker* budget_ = nullptr;
};

}  // namespace deco::wlog
