#include "wlog/lexer.hpp"

#include <cctype>
#include <cmath>

namespace deco::wlog {
namespace {

bool is_atom_start(char c) {
  return std::islower(static_cast<unsigned char>(c)) != 0;
}
bool is_var_start(char c) {
  return std::isupper(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_symbol_char(char c) {
  return std::string_view("+-*/\\^<>=~:.?@#&").find(c) !=
         std::string_view::npos;
}

}  // namespace

std::vector<Token> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::size_t line = 1;

  auto error = [&](std::string msg) {
    out.push_back(Token{TokenKind::kError, std::move(msg), 0, 0, line});
  };

  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '%') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) {
        error("unterminated block comment");
        return out;
      }
      i += 2;
      continue;
    }
    // Numbers (with percent / duration suffixes).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_float = false;
      while (j < src.size() && std::isdigit(static_cast<unsigned char>(src[j])))
        ++j;
      if (j + 1 < src.size() && src[j] == '.' &&
          std::isdigit(static_cast<unsigned char>(src[j + 1]))) {
        is_float = true;
        ++j;
        while (j < src.size() &&
               std::isdigit(static_cast<unsigned char>(src[j])))
          ++j;
      }
      double value = std::stod(std::string(src.substr(i, j - i)));
      // Suffixes: % (percent), h/m/s/d (durations), ms (milliseconds).
      if (j < src.size() && src[j] == '%') {
        ++j;
        Token t;
        t.kind = TokenKind::kFloat;
        t.fval = value / 100.0;
        t.line = line;
        out.push_back(t);
        i = j;
        continue;
      }
      double scale = 1.0;
      bool has_suffix = false;
      if (j + 1 < src.size() && src[j] == 'm' && src[j + 1] == 's' &&
          (j + 2 >= src.size() || !is_ident(src[j + 2]))) {
        scale = 1e-3;
        has_suffix = true;
        j += 2;
      } else if (j < src.size() && (j + 1 >= src.size() || !is_ident(src[j + 1]))) {
        switch (src[j]) {
          case 'h': scale = 3600; has_suffix = true; ++j; break;
          case 'm': scale = 60; has_suffix = true; ++j; break;
          case 's': scale = 1; has_suffix = true; ++j; break;
          case 'd': scale = 86400; has_suffix = true; ++j; break;
          default: break;
        }
      }
      Token t;
      if (has_suffix) {
        value *= scale;
        is_float = is_float || scale != 1.0;
      }
      if (is_float || value != std::floor(value)) {
        t.kind = TokenKind::kFloat;
        t.fval = value;
      } else {
        t.kind = TokenKind::kInt;
        t.ival = static_cast<std::int64_t>(value);
      }
      t.line = line;
      out.push_back(t);
      i = j;
      continue;
    }
    // Quoted atoms.
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string text;
      while (j < src.size() && src[j] != '\'') {
        if (src[j] == '\\' && j + 1 < src.size()) ++j;
        if (src[j] == '\n') ++line;
        text.push_back(src[j]);
        ++j;
      }
      if (j >= src.size()) {
        error("unterminated quoted atom");
        return out;
      }
      out.push_back(Token{TokenKind::kAtom, std::move(text), 0, 0, line});
      i = j + 1;
      continue;
    }
    // Identifiers.
    if (is_atom_start(c) || is_var_start(c)) {
      std::size_t j = i;
      while (j < src.size() && is_ident(src[j])) ++j;
      std::string text(src.substr(i, j - i));
      out.push_back(Token{is_atom_start(c) ? TokenKind::kAtom : TokenKind::kVar,
                          std::move(text), 0, 0, line});
      i = j;
      continue;
    }
    // Single-char structural punctuation.
    if (c == '(' || c == ')' || c == '[' || c == ']' || c == ',' || c == '|' ||
        c == '!' || c == ';' || c == '{' || c == '}') {
      out.push_back(Token{TokenKind::kPunct, std::string(1, c), 0, 0, line});
      ++i;
      continue;
    }
    // Symbolic operators, longest-match over the known set.
    if (is_symbol_char(c)) {
      static constexpr std::string_view kOps[] = {
          ":-", "?-", "\\==", "==", "=<", ">=", "=:=", "=\\=", "\\=", "\\+",
          "->", "=", "<", ">", "+", "-", "*", "/", ".",
      };
      std::string_view best;
      for (std::string_view op : kOps) {
        if (src.substr(i, op.size()) == op && op.size() > best.size()) {
          best = op;
        }
      }
      if (best.empty()) {
        error(std::string("unexpected character '") + c + "'");
        return out;
      }
      // A '.' is end-of-clause when followed by layout/EOF; else cons dot
      // (we do not support infix '.'; treat as error later).
      out.push_back(Token{TokenKind::kPunct, std::string(best), 0, 0, line});
      i += best.size();
      continue;
    }
    error(std::string("unexpected character '") + c + "'");
    return out;
  }
  out.push_back(Token{TokenKind::kEnd, "", 0, 0, line});
  return out;
}

}  // namespace deco::wlog
