// WLog program AST: clauses plus the declarative directives of Table 1.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "wlog/term.hpp"

namespace deco::wlog {

/// h :- c1, ..., cn.  A fact has an empty body.
struct Clause {
  TermPtr head;
  std::vector<TermPtr> body;
};

/// goal minimize Ct in totalcost(Ct).
struct GoalSpec {
  bool minimize = true;
  TermPtr variable;  ///< the objective variable inside the query
  TermPtr query;     ///< goal query, e.g. totalcost(Ct)
};

/// cons T in maxtime(P,T) satisfies deadline(95%, 10h).
/// cons C in totalcost(C) satisfies budget(90%, 50).
/// cons T in maxtime(P,T) satisfies T =< 100.
/// cons reachable(root, tail).                      (plain satisfiability)
struct ConstraintSpec {
  enum class Kind { kDeadline, kBudget, kCompare, kHolds };

  Kind kind = Kind::kHolds;
  TermPtr variable;  ///< bound variable (null for kHolds)
  TermPtr query;     ///< the query producing the variable
  double quantile = 1.0;   ///< p for deadline/budget (0..1]
  double bound = 0;        ///< D or B for deadline/budget
  std::string cmp_op;      ///< "=<", "<", ">=", ">" for kCompare
  TermPtr cmp_rhs;         ///< RHS expression for kCompare
};

/// var configs(Tid,Vid,Con) forall task(Tid) and vm(Vid).
struct VarDecl {
  TermPtr template_term;            ///< e.g. configs(Tid,Vid,Con)
  std::vector<TermPtr> generators;  ///< e.g. task(Tid), vm(Vid)
};

struct Program {
  std::vector<std::string> imports;  ///< import(montage). import(amazonec2).
  std::optional<GoalSpec> goal;
  std::vector<ConstraintSpec> constraints;
  std::vector<VarDecl> vars;
  bool astar_enabled = false;  ///< enabled(astar).
  std::vector<Clause> clauses;
};

struct ParseError {
  std::size_t line = 0;
  std::string message;
};

struct ParseResult {
  Program program;
  std::optional<ParseError> error;
  bool ok() const { return !error.has_value(); }
};

/// Parses WLog source text.
ParseResult parse_program(std::string_view source);

/// Parses a single term (for queries in tests / the interpreter API).
/// Variable names map to ids consistently within the call.
struct TermParseResult {
  TermPtr term;
  std::optional<ParseError> error;
  std::vector<std::pair<std::string, std::int64_t>> variables;
  bool ok() const { return !error.has_value(); }
};
TermParseResult parse_term(std::string_view source);

}  // namespace deco::wlog
