#include "wlog/interp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/budget.hpp"
#include "wlog/program.hpp"

namespace deco::wlog {

double Solution::number(const std::string& name) const {
  const TermPtr* t = find(name);
  if (!t || !*t) return 0;
  if ((*t)->kind == TermKind::kInt || (*t)->kind == TermKind::kFloat) {
    return (*t)->number();
  }
  return 0;
}

bool Interpreter::eval_arith(const TermPtr& expr, const Bindings& bindings,
                             double& out) const {
  const TermPtr t = bindings.resolve(expr);
  switch (t->kind) {
    case TermKind::kInt:
    case TermKind::kFloat:
      out = t->number();
      return true;
    case TermKind::kCompound: {
      auto unary = [&](double& v) {
        return t->args.size() == 1 && eval_arith(t->args[0], bindings, v);
      };
      auto binary = [&](double& a, double& b) {
        return t->args.size() == 2 && eval_arith(t->args[0], bindings, a) &&
               eval_arith(t->args[1], bindings, b);
      };
      double a = 0;
      double b = 0;
      if (t->text == "+" && binary(a, b)) { out = a + b; return true; }
      if (t->text == "-" && binary(a, b)) { out = a - b; return true; }
      if (t->text == "-" && unary(a)) { out = -a; return true; }
      if (t->text == "*" && binary(a, b)) { out = a * b; return true; }
      if (t->text == "/" && binary(a, b)) {
        if (b == 0) return false;
        out = a / b;
        return true;
      }
      if (t->text == "mod" && binary(a, b)) {
        if (b == 0) return false;
        out = a - b * std::floor(a / b);
        return true;
      }
      if (t->text == "min" && binary(a, b)) { out = std::min(a, b); return true; }
      if (t->text == "max" && binary(a, b)) { out = std::max(a, b); return true; }
      if (t->text == "abs" && unary(a)) { out = std::abs(a); return true; }
      if (t->text == "sqrt" && unary(a)) {
        if (a < 0) return false;
        out = std::sqrt(a);
        return true;
      }
      if (t->text == "floor" && unary(a)) { out = std::floor(a); return true; }
      if (t->text == "ceiling" && unary(a)) { out = std::ceil(a); return true; }
      if (t->text == "log" && unary(a)) {
        if (a <= 0) return false;
        out = std::log(a);
        return true;
      }
      if (t->text == "exp" && unary(a)) { out = std::exp(a); return true; }
      if (t->text == "pow" && binary(a, b)) { out = std::pow(a, b); return true; }
      return false;
    }
    default:
      return false;
  }
}

bool Interpreter::solve(const TermPtr& goal, Bindings& bindings,
                        const std::function<bool(Bindings&)>& on_solution) {
  steps_ = 0;
  found_ = false;
  Frame frame;
  std::vector<TermPtr> goals{goal};
  solve_goals(goals, 0, bindings, frame, on_solution, 0);
  return found_;
}

Interpreter::Outcome Interpreter::solve_goals(
    const std::vector<TermPtr>& goals, std::size_t index, Bindings& bindings,
    Frame& frame, const std::function<bool(Bindings&)>& on_solution,
    std::size_t depth) {
  // The depth cap bounds native-stack growth (each WLog recursion level costs
  // a handful of C++ frames, and sanitized builds inflate every frame by an
  // order of magnitude); programs needing deeper recursion should use the
  // native evaluator instead of the interpreter.
  constexpr std::size_t kMaxDepth = 256;
  if (++steps_ > step_limit_ || depth > kMaxDepth) return Outcome::kStop;
  if (budget_ != nullptr && (steps_ & 511) == 0) budget_->checkpoint();
  if (index >= goals.size()) {
    found_ = true;
    return on_solution(bindings) ? Outcome::kStop : Outcome::kContinue;
  }
  const TermPtr goal = bindings.resolve(goals[index]);
  if (!goal->is_callable()) return Outcome::kContinue;  // cannot call numbers
  const std::string& f = goal->text;
  const std::size_t n = goal->arity();

  auto continue_rest = [&]() {
    return solve_goals(goals, index + 1, bindings, frame, on_solution, depth);
  };

  // Control constructs.
  if (f == "true" && n == 0) return continue_rest();
  if ((f == "fail" || f == "false") && n == 0) return Outcome::kContinue;
  if (f == "," && n == 2) {
    // Inline conjunction (from parenthesized bodies).
    std::vector<TermPtr> expanded(goals.begin(),
                                  goals.begin() + static_cast<std::ptrdiff_t>(index));
    expanded.push_back(goal->args[0]);
    expanded.push_back(goal->args[1]);
    expanded.insert(expanded.end(),
                    goals.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                    goals.end());
    return solve_goals(expanded, index, bindings, frame, on_solution, depth);
  }
  if (f == "!" && n == 0) {
    const Outcome out = continue_rest();
    frame.cut = true;
    return out;
  }
  if (f == ";" && n == 2) {
    const TermPtr left = bindings.resolve(goal->args[0]);
    // If-then-else: (Cond -> Then ; Else).
    if (left->kind == TermKind::kCompound && left->text == "->" &&
        left->args.size() == 2) {
      Frame cond_frame;
      bool cond_held = false;
      const std::size_t mark = bindings.mark();
      std::vector<TermPtr> cond_goals{left->args[0]};
      Outcome out = Outcome::kContinue;
      solve_goals(cond_goals, 0, bindings, cond_frame,
                  [&](Bindings& b) {
                    cond_held = true;
                    // Commit to the first condition solution, then Then.
                    std::vector<TermPtr> then_goals{left->args[1]};
                    Frame then_frame;
                    out = solve_goals(
                        then_goals, 0, b, then_frame,
                        [&](Bindings& b2) {
                          return solve_goals(goals, index + 1, b2, frame,
                                             on_solution,
                                             depth + 1) == Outcome::kStop;
                        },
                        depth + 1);
                    return true;  // no backtracking into the condition
                  },
                  depth + 1);
      if (out == Outcome::kStop) return out;
      bindings.undo_to(mark);
      if (cond_held) return Outcome::kContinue;
      // Condition failed: run Else.
      std::vector<TermPtr> else_goals{goal->args[1]};
      Frame else_frame;
      return solve_goals(
          else_goals, 0, bindings, else_frame,
          [&](Bindings& b) {
            return solve_goals(goals, index + 1, b, frame, on_solution,
                               depth + 1) == Outcome::kStop;
          },
          depth + 1);
    }
    // Plain disjunction: try left, then right.
    for (const TermPtr& branch : {goal->args[0], goal->args[1]}) {
      const std::size_t mark = bindings.mark();
      std::vector<TermPtr> branch_goals{branch};
      Frame branch_frame;
      const Outcome out = solve_goals(
          branch_goals, 0, bindings, branch_frame,
          [&](Bindings& b) {
            return solve_goals(goals, index + 1, b, frame, on_solution,
                               depth + 1) == Outcome::kStop;
          },
          depth + 1);
      if (out == Outcome::kStop) return out;
      bindings.undo_to(mark);
      if (branch_frame.cut || frame.cut) break;
    }
    return Outcome::kContinue;
  }
  if (f == "->" && n == 2) {
    // Bare if-then == (Cond -> Then ; fail).
    const TermPtr ite = make_compound(
        ";", {goal, make_atom("fail")});
    std::vector<TermPtr> rewritten(goals.begin(),
                                   goals.begin() + static_cast<std::ptrdiff_t>(index));
    rewritten.push_back(ite);
    rewritten.insert(rewritten.end(),
                     goals.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                     goals.end());
    return solve_goals(rewritten, index, bindings, frame, on_solution, depth);
  }
  if (f == "forall" && n == 2) {
    // forall(Cond, Action) == \+ (Cond, \+ Action).
    const TermPtr rewritten = make_compound(
        "\\+", {make_compound(",", {goal->args[0],
                                    make_compound("\\+", {goal->args[1]})})});
    std::vector<TermPtr> expanded(goals.begin(),
                                  goals.begin() + static_cast<std::ptrdiff_t>(index));
    expanded.push_back(rewritten);
    expanded.insert(expanded.end(),
                    goals.begin() + static_cast<std::ptrdiff_t>(index) + 1,
                    goals.end());
    return solve_goals(expanded, index, bindings, frame, on_solution, depth);
  }
  if ((f == "\\+" || f == "not") && n == 1) {
    Frame sub;
    bool proven = false;
    const std::size_t mark = bindings.mark();
    std::vector<TermPtr> sub_goals{goal->args[0]};
    solve_goals(sub_goals, 0, bindings, sub,
                [&proven](Bindings&) {
                  proven = true;
                  return true;  // first proof is enough
                },
                depth + 1);
    bindings.undo_to(mark);
    if (proven) return Outcome::kContinue;
    return continue_rest();
  }

  // Unification & comparison built-ins.
  if (f == "=" && n == 2) {
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[0], goal->args[1], bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "\\=" && n == 2) {
    const std::size_t mark = bindings.mark();
    const bool unifies = unify(goal->args[0], goal->args[1], bindings);
    bindings.undo_to(mark);
    return unifies ? Outcome::kContinue : continue_rest();
  }
  if (f == "==" && n == 2) {
    return term_equal(goal->args[0], goal->args[1], bindings) ? continue_rest()
                                                              : Outcome::kContinue;
  }
  if (f == "\\==" && n == 2) {
    return !term_equal(goal->args[0], goal->args[1], bindings)
               ? continue_rest()
               : Outcome::kContinue;
  }
  if (f == "is" && n == 2) {
    double value = 0;
    if (!eval_arith(goal->args[1], bindings, value)) return Outcome::kContinue;
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[0], make_number(value), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if ((f == "<" || f == ">" || f == "=<" || f == ">=" || f == "=:=" ||
       f == "=\\=") &&
      n == 2) {
    double a = 0;
    double b = 0;
    if (!eval_arith(goal->args[0], bindings, a) ||
        !eval_arith(goal->args[1], bindings, b)) {
      return Outcome::kContinue;
    }
    const bool ok = (f == "<" && a < b) || (f == ">" && a > b) ||
                    (f == "=<" && a <= b) || (f == ">=" && a >= b) ||
                    (f == "=:=" && a == b) || (f == "=\\=" && a != b);
    return ok ? continue_rest() : Outcome::kContinue;
  }

  // Type tests.
  if (n == 1 && (f == "var" || f == "nonvar" || f == "atom" || f == "number" ||
                 f == "integer" || f == "float" || f == "is_list")) {
    const TermPtr t = bindings.resolve(goal->args[0]);
    bool ok = false;
    if (f == "var") ok = t->kind == TermKind::kVar;
    if (f == "nonvar") ok = t->kind != TermKind::kVar;
    if (f == "atom") ok = t->kind == TermKind::kAtom;
    if (f == "number")
      ok = t->kind == TermKind::kInt || t->kind == TermKind::kFloat;
    if (f == "integer") ok = t->kind == TermKind::kInt;
    if (f == "float") ok = t->kind == TermKind::kFloat;
    if (f == "is_list") ok = list_elements(t, bindings).has_value();
    return ok ? continue_rest() : Outcome::kContinue;
  }

  // All-solutions built-ins.
  if ((f == "findall" || f == "setof" || f == "bagof") && n == 3) {
    std::vector<TermPtr> collected;
    Frame sub;
    const std::size_t mark = bindings.mark();
    std::vector<TermPtr> sub_goals{goal->args[1]};
    solve_goals(sub_goals, 0, bindings, sub,
                [&](Bindings& b) {
                  collected.push_back(b.deep_resolve(goal->args[0]));
                  return false;  // enumerate everything
                },
                depth + 1);
    bindings.undo_to(mark);
    if (f == "setof" || f == "bagof") {
      if (collected.empty()) return Outcome::kContinue;  // setof/bagof fail
      if (f == "setof") {
        std::sort(collected.begin(), collected.end(),
                  [&](const TermPtr& a, const TermPtr& b) {
                    return term_compare(a, b, bindings) < 0;
                  });
        collected.erase(std::unique(collected.begin(), collected.end(),
                                    [&](const TermPtr& a, const TermPtr& b) {
                                      return term_compare(a, b, bindings) == 0;
                                    }),
                        collected.end());
      }
    }
    const std::size_t mark2 = bindings.mark();
    if (unify(goal->args[2], make_list(std::move(collected)), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark2);
    return Outcome::kContinue;
  }

  // List built-ins.
  if (f == "member" && n == 2) {
    const auto elems = list_elements(goal->args[1], bindings);
    if (!elems) return Outcome::kContinue;
    for (const TermPtr& e : *elems) {
      const std::size_t mark = bindings.mark();
      if (unify(goal->args[0], e, bindings)) {
        const Outcome out = continue_rest();
        if (out == Outcome::kStop) return out;
      }
      bindings.undo_to(mark);
      if (frame.cut) return Outcome::kContinue;
    }
    return Outcome::kContinue;
  }
  if (f == "length" && n == 2) {
    const auto elems = list_elements(goal->args[0], bindings);
    if (!elems) return Outcome::kContinue;
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], make_int(static_cast<std::int64_t>(elems->size())),
              bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "append" && n == 3) {
    // Mode (+,+,-): concatenate; mode (-,-,+): enumerate splits.
    const auto a = list_elements(goal->args[0], bindings);
    const auto b = list_elements(goal->args[1], bindings);
    if (a && b) {
      std::vector<TermPtr> joined = *a;
      joined.insert(joined.end(), b->begin(), b->end());
      const std::size_t mark = bindings.mark();
      if (unify(goal->args[2], make_list(std::move(joined)), bindings)) {
        const Outcome out = continue_rest();
        if (out == Outcome::kStop) return out;
      }
      bindings.undo_to(mark);
      return Outcome::kContinue;
    }
    const auto c = list_elements(goal->args[2], bindings);
    if (!c) return Outcome::kContinue;
    for (std::size_t split = 0; split <= c->size(); ++split) {
      const std::size_t mark = bindings.mark();
      std::vector<TermPtr> left(c->begin(),
                                c->begin() + static_cast<std::ptrdiff_t>(split));
      std::vector<TermPtr> right(c->begin() + static_cast<std::ptrdiff_t>(split),
                                 c->end());
      if (unify(goal->args[0], make_list(std::move(left)), bindings) &&
          unify(goal->args[1], make_list(std::move(right)), bindings)) {
        const Outcome out = continue_rest();
        if (out == Outcome::kStop) return out;
      }
      bindings.undo_to(mark);
      if (frame.cut) return Outcome::kContinue;
    }
    return Outcome::kContinue;
  }
  if (f == "nth0" && n == 3) {
    const auto elems = list_elements(goal->args[1], bindings);
    if (!elems) return Outcome::kContinue;
    const TermPtr idx = bindings.resolve(goal->args[0]);
    for (std::size_t i = 0; i < elems->size(); ++i) {
      if (idx->kind == TermKind::kInt &&
          idx->ival != static_cast<std::int64_t>(i)) {
        continue;
      }
      const std::size_t mark = bindings.mark();
      if (unify(goal->args[0], make_int(static_cast<std::int64_t>(i)),
                bindings) &&
          unify(goal->args[2], (*elems)[i], bindings)) {
        const Outcome out = continue_rest();
        if (out == Outcome::kStop) return out;
      }
      bindings.undo_to(mark);
      if (frame.cut) return Outcome::kContinue;
    }
    return Outcome::kContinue;
  }
  // Aggregations over lists (the paper uses sum(Bag,Ct) and max(Set,Best)).
  if ((f == "sum" || f == "max" || f == "min") && n == 2) {
    const auto elems = list_elements(goal->args[0], bindings);
    if (!elems) return Outcome::kContinue;
    TermPtr result;
    if (f == "sum") {
      double acc = 0;
      for (const TermPtr& e : *elems) {
        double v = 0;
        if (!eval_arith(e, bindings, v)) return Outcome::kContinue;
        acc += v;
      }
      result = make_number(acc);
    } else {
      if (elems->empty()) return Outcome::kContinue;
      // Elements may be plain numbers, or tuples [.., Key] compared by their
      // last element (e.g. max(Set, [Path,T]) picks the longest path).
      auto key_of = [&](const TermPtr& e, double& v) {
        const TermPtr r = bindings.resolve(e);
        if (r->kind == TermKind::kInt || r->kind == TermKind::kFloat) {
          v = r->number();
          return true;
        }
        const auto tuple = list_elements(r, bindings);
        if (!tuple || tuple->empty()) return false;
        return eval_arith(tuple->back(), bindings, v);
      };
      std::size_t best = 0;
      double best_key = 0;
      if (!key_of((*elems)[0], best_key)) return Outcome::kContinue;
      for (std::size_t i = 1; i < elems->size(); ++i) {
        double k = 0;
        if (!key_of((*elems)[i], k)) return Outcome::kContinue;
        const bool better = f == "max" ? k > best_key : k < best_key;
        if (better) {
          best = i;
          best_key = k;
        }
      }
      result = (*elems)[best];
    }
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], result, bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if ((f == "msort" || f == "sort" || f == "reverse") && n == 2) {
    const auto elems = list_elements(goal->args[0], bindings);
    if (!elems) return Outcome::kContinue;
    std::vector<TermPtr> out;
    out.reserve(elems->size());
    for (const TermPtr& e : *elems) out.push_back(bindings.deep_resolve(e));
    if (f == "reverse") {
      std::reverse(out.begin(), out.end());
    } else {
      std::stable_sort(out.begin(), out.end(),
                       [&](const TermPtr& a, const TermPtr& b) {
                         return term_compare(a, b, bindings) < 0;
                       });
      if (f == "sort") {
        out.erase(std::unique(out.begin(), out.end(),
                              [&](const TermPtr& a, const TermPtr& b) {
                                return term_compare(a, b, bindings) == 0;
                              }),
                  out.end());
      }
    }
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], make_list(std::move(out)), bindings)) {
      const Outcome out2 = continue_rest();
      if (out2 == Outcome::kStop) return out2;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "last" && n == 2) {
    const auto elems = list_elements(goal->args[0], bindings);
    if (!elems || elems->empty()) return Outcome::kContinue;
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], elems->back(), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if ((f == "sum_list" || f == "max_list" || f == "min_list") && n == 2) {
    // Aliases of the aggregate built-ins restricted to numeric lists.
    const auto elems = list_elements(goal->args[0], bindings);
    if (!elems) return Outcome::kContinue;
    if (f != "sum_list" && elems->empty()) return Outcome::kContinue;
    double acc = f == "sum_list" ? 0
                 : f == "max_list" ? -std::numeric_limits<double>::infinity()
                                   : std::numeric_limits<double>::infinity();
    for (const TermPtr& e : *elems) {
      double v = 0;
      if (!eval_arith(e, bindings, v)) return Outcome::kContinue;
      if (f == "sum_list") acc += v;
      if (f == "max_list") acc = std::max(acc, v);
      if (f == "min_list") acc = std::min(acc, v);
    }
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], make_number(acc), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "numlist" && n == 3) {
    double lo = 0;
    double hi = 0;
    if (!eval_arith(goal->args[0], bindings, lo) ||
        !eval_arith(goal->args[1], bindings, hi)) {
      return Outcome::kContinue;
    }
    std::vector<TermPtr> items;
    for (std::int64_t v = static_cast<std::int64_t>(lo);
         v <= static_cast<std::int64_t>(hi); ++v) {
      items.push_back(make_int(v));
    }
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[2], make_list(std::move(items)), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "succ" && n == 2) {
    const TermPtr a = bindings.resolve(goal->args[0]);
    const TermPtr b = bindings.resolve(goal->args[1]);
    const std::size_t mark = bindings.mark();
    bool ok = false;
    if (a->kind == TermKind::kInt) {
      ok = unify(goal->args[1], make_int(a->ival + 1), bindings);
    } else if (b->kind == TermKind::kInt && b->ival > 0) {
      ok = unify(goal->args[0], make_int(b->ival - 1), bindings);
    }
    if (ok) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "atom_concat" && n == 3) {
    const TermPtr a = bindings.resolve(goal->args[0]);
    const TermPtr b = bindings.resolve(goal->args[1]);
    if (a->kind != TermKind::kAtom || b->kind != TermKind::kAtom) {
      return Outcome::kContinue;
    }
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[2], make_atom(a->text + b->text), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "atom_length" && n == 2) {
    const TermPtr a = bindings.resolve(goal->args[0]);
    if (a->kind != TermKind::kAtom) return Outcome::kContinue;
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1],
              make_int(static_cast<std::int64_t>(a->text.size())), bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "copy_term" && n == 2) {
    std::unordered_map<std::int64_t, TermPtr> mapping;
    const TermPtr copy =
        rename(bindings.deep_resolve(goal->args[0]), bindings, mapping);
    const std::size_t mark = bindings.mark();
    if (unify(goal->args[1], copy, bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark);
    return Outcome::kContinue;
  }
  if (f == "aggregate_all" && n == 3) {
    // aggregate_all(count|sum(E)|max(E)|min(E)|bag(E), Goal, Result).
    const TermPtr spec = bindings.resolve(goal->args[0]);
    std::vector<TermPtr> collected;
    Frame sub;
    const std::size_t mark = bindings.mark();
    const TermPtr witness =
        spec->kind == TermKind::kCompound ? spec->args[0] : kNil;
    std::vector<TermPtr> sub_goals{goal->args[1]};
    solve_goals(sub_goals, 0, bindings, sub,
                [&](Bindings& b) {
                  collected.push_back(b.deep_resolve(witness));
                  return false;
                },
                depth + 1);
    bindings.undo_to(mark);
    TermPtr result;
    if (spec->is_atom("count")) {
      result = make_int(static_cast<std::int64_t>(collected.size()));
    } else if (spec->kind == TermKind::kCompound && spec->args.size() == 1 &&
               (spec->text == "sum" || spec->text == "max" ||
                spec->text == "min")) {
      if (spec->text != "sum" && collected.empty()) return Outcome::kContinue;
      double acc = spec->text == "sum" ? 0
                   : spec->text == "max"
                       ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
      for (const TermPtr& e : collected) {
        double v = 0;
        if (!eval_arith(e, bindings, v)) return Outcome::kContinue;
        if (spec->text == "sum") acc += v;
        if (spec->text == "max") acc = std::max(acc, v);
        if (spec->text == "min") acc = std::min(acc, v);
      }
      result = make_number(acc);
    } else if (spec->kind == TermKind::kCompound && spec->text == "bag" &&
               spec->args.size() == 1) {
      result = make_list(std::move(collected));
    } else {
      return Outcome::kContinue;
    }
    const std::size_t mark2 = bindings.mark();
    if (unify(goal->args[2], result, bindings)) {
      const Outcome out = continue_rest();
      if (out == Outcome::kStop) return out;
    }
    bindings.undo_to(mark2);
    return Outcome::kContinue;
  }
  if (f == "between" && n == 3) {
    double lo = 0;
    double hi = 0;
    if (!eval_arith(goal->args[0], bindings, lo) ||
        !eval_arith(goal->args[1], bindings, hi)) {
      return Outcome::kContinue;
    }
    for (std::int64_t v = static_cast<std::int64_t>(lo);
         v <= static_cast<std::int64_t>(hi); ++v) {
      const std::size_t mark = bindings.mark();
      if (unify(goal->args[2], make_int(v), bindings)) {
        const Outcome out = continue_rest();
        if (out == Outcome::kStop) return out;
      }
      bindings.undo_to(mark);
      if (frame.cut) return Outcome::kContinue;
    }
    return Outcome::kContinue;
  }
  if ((f == "write" && n == 1) || (f == "nl" && n == 0)) {
    return continue_rest();  // I/O built-ins are no-ops in the engine
  }

  return solve_user(goal, goals, index + 1, bindings, frame, on_solution,
                    depth);
}

Interpreter::Outcome Interpreter::solve_user(
    const TermPtr& goal, const std::vector<TermPtr>& rest,
    std::size_t rest_index, Bindings& bindings, Frame& frame,
    const std::function<bool(Bindings&)>& on_solution, std::size_t depth) {
  const Database::Pred* pred = db_->pred(goal->text, goal->arity());
  if (pred == nullptr) return Outcome::kContinue;
  const std::vector<Clause>& clauses = pred->clauses;
  // First-argument indexing: when the call's first argument is bound to a
  // constant, scan only the candidate bucket (a superset filter preserving
  // assertion order — skipped clauses could never unify).
  const std::vector<std::uint32_t>* candidates = nullptr;
  if (goal->arity() > 0) {
    candidates =
        pred->candidates(index_bucket_key(*bindings.resolve(goal->args[0])));
  }
  const std::size_t total =
      candidates != nullptr ? candidates->size() : clauses.size();
  for (std::size_t ci = 0; ci < total; ++ci) {
    const Clause& clause =
        clauses[candidates != nullptr ? (*candidates)[ci] : ci];
    const std::size_t mark = bindings.mark();
    std::unordered_map<std::int64_t, TermPtr> mapping;
    const TermPtr head = rename(clause.head, bindings, mapping);
    if (unify(goal, head, bindings)) {
      std::vector<TermPtr> body;
      body.reserve(clause.body.size());
      for (const TermPtr& g : clause.body) {
        body.push_back(rename(g, bindings, mapping));
      }
      Frame body_frame;
      const Outcome out = solve_goals(
          body, 0, bindings, body_frame,
          [&](Bindings& b) {
            return solve_goals(rest, rest_index, b, frame, on_solution,
                               depth + 1) == Outcome::kStop;
          },
          depth + 1);
      if (out == Outcome::kStop) return Outcome::kStop;
      bindings.undo_to(mark);
      if (body_frame.cut) break;  // cut commits to this clause
    } else {
      bindings.undo_to(mark);
    }
    if (frame.cut) break;
  }
  return Outcome::kContinue;
}

std::vector<Solution> Interpreter::query(const std::string& query_text,
                                         std::size_t max_solutions) {
  std::vector<Solution> solutions;
  const TermParseResult parsed = parse_term(query_text);
  if (!parsed.ok() || !parsed.term) return solutions;
  Bindings bindings;
  solve(parsed.term, bindings, [&](Bindings& b) {
    Solution s;
    for (const auto& [name, id] : parsed.variables) {
      s.bindings.emplace_back(name, b.deep_resolve(make_var(id, name)));
    }
    solutions.push_back(std::move(s));
    return solutions.size() >= max_solutions;
  });
  return solutions;
}

bool Interpreter::holds(const std::string& query_text) {
  const TermParseResult parsed = parse_term(query_text);
  if (!parsed.ok() || !parsed.term) return false;
  Bindings bindings;
  bool proven = false;
  solve(parsed.term, bindings, [&proven](Bindings&) {
    proven = true;
    return true;
  });
  return proven;
}

}  // namespace deco::wlog
