// WLog lexer.
//
// Token-level extensions over ProLog (Section 4.2):
//   * percent literals  — `95%` lexes as the number 0.95;
//   * duration literals — `10h` / `30m` / `45s` / `2d` lex as seconds.
// Comments: /* ... */ block comments and `%` line comments (a `%` glued to a
// number is the percent literal, anything else starts a comment).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace deco::wlog {

enum class TokenKind {
  kAtom,    ///< lowercase identifier or quoted atom
  kVar,     ///< Uppercase/_ identifier
  kInt,
  kFloat,
  kPunct,   ///< punctuation / operators, text holds the symbol
  kEnd,     ///< end of input
  kError,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;       ///< atom/var name or punct symbol
  std::int64_t ival = 0;  ///< kInt payload
  double fval = 0;        ///< kFloat payload
  std::size_t line = 1;   ///< 1-based source line
};

/// Tokenizes a full program; the final token is kEnd (or kError with the
/// message in text).
std::vector<Token> tokenize(std::string_view source);

}  // namespace deco::wlog
