#include "wlog/database.hpp"

namespace deco::wlog {

const std::vector<Clause> Database::kEmpty;

void Database::add_program(const Program& program) {
  for (const Clause& clause : program.clauses) add_clause(clause);
}

void Database::add_clause(Clause clause) {
  by_indicator_[indicator(*clause.head)].push_back(std::move(clause));
}

void Database::add_fact(TermPtr fact) {
  add_clause(Clause{std::move(fact), {}});
}

void Database::retract_all(const std::string& functor, std::size_t arity) {
  by_indicator_.erase(functor + "/" + std::to_string(arity));
}

const std::vector<Clause>& Database::clauses_for(const std::string& functor,
                                                 std::size_t arity) const {
  const auto it = by_indicator_.find(functor + "/" + std::to_string(arity));
  return it == by_indicator_.end() ? kEmpty : it->second;
}

std::size_t Database::clause_count() const {
  std::size_t n = 0;
  for (const auto& [key, clauses] : by_indicator_) n += clauses.size();
  return n;
}

}  // namespace deco::wlog
