#include "wlog/database.hpp"

namespace deco::wlog {

const std::vector<Clause> Database::kEmpty;

std::string index_bucket_key(const Term& first_arg) {
  switch (first_arg.kind) {
    case TermKind::kVar:
      return {};
    case TermKind::kAtom:
      return "a~" + first_arg.text;
    case TermKind::kInt:
      return "i~" + std::to_string(first_arg.ival);
    case TermKind::kFloat:
      // to_string is a coarse but stable encoding: equal doubles map to
      // equal keys; near-equal doubles may share a bucket, which is safe
      // (buckets are superset filters).
      return "f~" + std::to_string(first_arg.fval);
    case TermKind::kCompound:
      return "s~" + first_arg.text + "/" +
             std::to_string(first_arg.args.size());
  }
  return {};
}

const std::vector<std::uint32_t>* Database::Pred::candidates(
    const std::string& key) const {
  if (key.empty()) return nullptr;  // unbound first argument: scan all
  const auto it = buckets.find(key);
  // No clause has this constant as its first argument: only var-headed
  // clauses can match.
  return it == buckets.end() ? &var_clauses : &it->second;
}

void Database::add_program(const Program& program) {
  for (const Clause& clause : program.clauses) add_clause(clause);
}

void Database::add_clause(Clause clause) {
  const std::string key = indicator(*clause.head);
  Pred& entry = by_indicator_[key];
  const auto idx = static_cast<std::uint32_t>(entry.clauses.size());
  const std::string bucket =
      clause.head->arity() == 0 ? std::string()
                                : index_bucket_key(*clause.head->args[0]);
  if (bucket.empty()) {
    // Var-headed (or zero-arity): a candidate under every key.
    entry.var_clauses.push_back(idx);
    for (auto& [k, list] : entry.buckets) list.push_back(idx);
  } else {
    auto [it, inserted] = entry.buckets.try_emplace(bucket);
    if (inserted) it->second = entry.var_clauses;  // inherit the catch-all
    it->second.push_back(idx);
  }
  entry.clauses.push_back(std::move(clause));
  entry.seqs.push_back(next_seq_++);
  // Stamp from the global counter, not a per-entry one: an entry erased by
  // undo_to/retract and later recreated must never repeat a version, or a
  // compiled-clause cache keyed on it would validate stale code.
  entry.version = ++version_;
  add_log_.push_back(key);
}

void Database::add_fact(TermPtr fact) {
  add_clause(Clause{std::move(fact), {}});
}

void Database::retract_all(const std::string& functor, std::size_t arity) {
  const std::string key = functor + "/" + std::to_string(arity);
  if (by_indicator_.erase(key) > 0) ++version_;
}

void Database::undo_to(std::size_t mark) {
  while (add_log_.size() > mark) {
    const std::string& key = add_log_.back();
    const auto it = by_indicator_.find(key);
    if (it != by_indicator_.end() && !it->second.clauses.empty()) {
      Pred& entry = it->second;
      const auto idx =
          static_cast<std::uint32_t>(entry.clauses.size() - 1);
      const Clause& clause = entry.clauses.back();
      const std::string bucket =
          clause.head->arity() == 0
              ? std::string()
              : index_bucket_key(*clause.head->args[0]);
      if (bucket.empty()) {
        if (!entry.var_clauses.empty() && entry.var_clauses.back() == idx) {
          entry.var_clauses.pop_back();
        }
        for (auto& [k, list] : entry.buckets) {
          if (!list.empty() && list.back() == idx) list.pop_back();
        }
      } else {
        const auto bit = entry.buckets.find(bucket);
        if (bit != entry.buckets.end() && !bit->second.empty() &&
            bit->second.back() == idx) {
          bit->second.pop_back();
        }
      }
      entry.clauses.pop_back();
      entry.seqs.pop_back();
      entry.version = ++version_;
      if (entry.clauses.empty()) by_indicator_.erase(it);
    }
    add_log_.pop_back();
  }
}

const std::vector<Clause>& Database::clauses_for(const std::string& functor,
                                                 std::size_t arity) const {
  const auto it = by_indicator_.find(functor + "/" + std::to_string(arity));
  return it == by_indicator_.end() ? kEmpty : it->second.clauses;
}

const Database::Pred* Database::pred(const std::string& functor,
                                     std::size_t arity) const {
  const auto it = by_indicator_.find(functor + "/" + std::to_string(arity));
  return it == by_indicator_.end() ? nullptr : &it->second;
}

std::size_t Database::clause_count() const {
  std::size_t n = 0;
  for (const auto& [key, entry] : by_indicator_) n += entry.clauses.size();
  return n;
}

}  // namespace deco::wlog
