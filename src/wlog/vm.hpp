// Bytecode VM for WLog: an iterative choice-point/trail machine over
// compiled clauses (compile.hpp).
//
// The tree-walking Interpreter (interp.hpp) re-renames every clause per
// trial, builds std::function continuation chains, and recurses one C++
// frame per resolution step — which is why it carries a hard depth cap under
// sanitizers.  The VM replaces all of that with explicit machine state:
//
//   goal list      an immutable cons-list of pending goals, each carrying a
//                  pre-classified opcode and the cut barrier of its frame
//   choice points  an explicit stack (clause alternatives, list iterators,
//                  disjunctions, if-then-else, findall collectors), each with
//                  a trail mark; backtracking services the top entry
//   cut            truncates the choice-point stack to the goal's barrier —
//                  clause-local, and branch-local inside ';' like the
//                  interpreter's nonstandard disjunction cut
//
// Deep WLog recursion therefore costs heap, not C++ stack.  Clause lookup
// goes through the Database's first-argument index, and compiled predicates
// are cached per functor/arity with sequence-stamp validation so the
// solver's assert/retract of configs/3 recompiles only appended clauses.
//
// The interpreter remains the differential oracle: Solver selects between
// the two behind ExecMode (`wlog.exec=interp|vm`, default vm), and
// tests/wlog/vm_differential_test.cpp pins solution sets, order, cut and
// budget behaviour against each other.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wlog/compile.hpp"
#include "wlog/database.hpp"
#include "wlog/interp.hpp"
#include "wlog/term.hpp"

namespace deco::util {
class BudgetTracker;
}  // namespace deco::util

namespace deco::wlog {

/// Execution counters, accumulated across solves and flushed to the obs
/// registry (wlog.vm.*) at the end of each solve.
struct VmStats {
  std::uint64_t instructions = 0;      ///< machine steps executed
  std::uint64_t calls = 0;             ///< user-predicate activations
  std::uint64_t index_hits = 0;        ///< calls served from a first-arg bucket
  std::uint64_t index_misses = 0;      ///< calls that scanned every clause
  std::uint64_t trail_high_water = 0;  ///< deepest trail observed
  std::uint64_t compiled_clauses = 0;  ///< clause compilations (cache misses)
};

/// Arithmetic evaluation shared by the VM and the Solver facade; exact same
/// semantics as Interpreter::eval_arith (which stays untouched as the
/// oracle).
bool eval_arith_term(const TermPtr& expr, const Bindings& bindings,
                     double& out);

class Vm {
 public:
  explicit Vm(const Database& db) : db_(&db) {}

  /// Iteration budget per query (machine steps, not SLD steps — the VM does
  /// more, finer-grained steps than the interpreter for the same program).
  void set_step_limit(std::size_t limit) { step_limit_ = limit; }

  /// Cooperative solve budget, checked every ~512 steps like the
  /// interpreter; a fired budget aborts by throwing
  /// util::BudgetExhaustedError.
  void set_budget(util::BudgetTracker* budget) { budget_ = budget; }

  /// Proves `goal`; invokes `on_solution` per proof (return true to stop).
  /// Returns true if at least one proof was found.
  bool solve(const TermPtr& goal, Bindings& bindings,
             const std::function<bool(Bindings&)>& on_solution);

  std::vector<Solution> query(const std::string& query_text,
                              std::size_t max_solutions = 16);
  bool holds(const std::string& query_text);

  const VmStats& stats() const { return stats_; }

  /// Keyed by Database::Pred address (stable: the database stores entries
  /// node-based and never moves them).  A recycled address cannot false-hit:
  /// version and sequence stamps are globally monotonic and never reused,
  /// so a stale cache entry fails both validation checks and recompiles.
  using CompiledCache =
      std::unordered_map<const void*, std::unique_ptr<CompiledPred>>;

  /// Memo for compiled *facts* keyed by head-term identity: the Monte Carlo
  /// world loop re-asserts the same alternative terms (one per group) every
  /// iteration, so their compiled form is reused instead of rebuilt.  The
  /// stored TermPtr pins the key's address against recycling.
  using FactCache =
      std::unordered_map<const Term*,
                         std::pair<TermPtr, std::shared_ptr<const CompiledClause>>>;

 private:
  const Database* db_;
  std::size_t step_limit_ = 5'000'000;
  util::BudgetTracker* budget_ = nullptr;
  CompiledCache cache_;
  FactCache fact_cache_;
  VmStats stats_;
};

/// Engine selector: the VM is the default; the interpreter stays available
/// as the differential oracle (`wlog.exec=interp`).
enum class ExecMode { kInterp, kVm };

std::optional<ExecMode> parse_exec_mode(std::string_view name);
const char* exec_mode_name(ExecMode mode);

/// Thin facade so callers (problog's MC loop, the declarative solver) hold
/// one object regardless of the selected engine.
class Solver {
 public:
  Solver(const Database& db, ExecMode mode) : mode_(mode) {
    if (mode == ExecMode::kInterp) {
      interp_.emplace(db);
    } else {
      vm_.emplace(db);
    }
  }

  ExecMode mode() const { return mode_; }

  void set_step_limit(std::size_t limit) {
    if (interp_) interp_->set_step_limit(limit);
    if (vm_) vm_->set_step_limit(limit);
  }
  void set_budget(util::BudgetTracker* budget) {
    if (interp_) interp_->set_budget(budget);
    if (vm_) vm_->set_budget(budget);
  }

  bool solve(const TermPtr& goal, Bindings& bindings,
             const std::function<bool(Bindings&)>& on_solution) {
    return interp_ ? interp_->solve(goal, bindings, on_solution)
                   : vm_->solve(goal, bindings, on_solution);
  }
  std::vector<Solution> query(const std::string& query_text,
                              std::size_t max_solutions = 16) {
    return interp_ ? interp_->query(query_text, max_solutions)
                   : vm_->query(query_text, max_solutions);
  }
  bool holds(const std::string& query_text) {
    return interp_ ? interp_->holds(query_text) : vm_->holds(query_text);
  }
  bool eval_arith(const TermPtr& expr, const Bindings& bindings,
                  double& out) const {
    return eval_arith_term(expr, bindings, out);
  }

 private:
  ExecMode mode_;
  std::optional<Interpreter> interp_;
  std::optional<Vm> vm_;
};

}  // namespace deco::wlog
