// Clause compilation for the WLog VM (vm.hpp).
//
// A clause is compiled once per database generation into a flat form the VM
// can execute without the interpreter's per-trial term renaming:
//
//   - Variables are renumbered to dense slots 0..nvars-1 in first-occurrence
//     order (head, then body).  A clause activation allocates one contiguous
//     fresh-variable block from the Bindings store and maps slot s to
//     variable base+s — no per-variable hash map, no shared_ptr churn for
//     ground subterms.
//   - Head unification is flattened into per-argument get instructions:
//     constants compare inline (or bind an unbound caller argument), a
//     first-occurrence variable binds its slot directly, and only structured
//     or repeated-variable arguments fall back to template unification.
//   - Body goals are pre-classified into typed opcodes (is/comparisons/
//     findall/sum/max/... and control constructs) so the VM dispatches on an
//     enum instead of hashing functor strings per step.
//
// Compiled predicates carry the Database's per-clause sequence stamps so a
// cache can detect "prefix intact, clauses appended" (the solver's
// assert/retract of configs/3 between evaluations) and recompile only the
// suffix.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wlog/database.hpp"
#include "wlog/term.hpp"

namespace deco::wlog {

/// Typed opcodes for goal dispatch.  kDynamic marks a goal whose root is a
/// variable at compile time (metacall): the VM classifies it after resolving.
enum class Op : std::uint8_t {
  kDynamic,
  kUser,  // user-defined predicate call
  // Control.
  kTrue,
  kFail,
  kConj,
  kCut,
  kDisj,    // ';'/2 (also carries if-then-else)
  kIfThen,  // '->'/2 outside ';' == (Cond -> Then ; fail)
  kForall,
  kNeg,  // \+ / not
  // Unification / comparison.
  kUnify,
  kNotUnify,
  kStructEq,
  kStructNeq,
  kIs,
  kLt,
  kGt,
  kLe,
  kGe,
  kNumEq,
  kNumNe,
  // Type tests.
  kVarTest,
  kNonvarTest,
  kAtomTest,
  kNumberTest,
  kIntegerTest,
  kFloatTest,
  kIsListTest,
  // All-solutions.
  kFindall,
  kSetof,
  kBagof,
  kAggregateAll,
  // Lists & aggregates.
  kMember,
  kLength,
  kAppend,
  kNth0,
  kSumAgg,
  kMaxAgg,
  kMinAgg,
  kMsort,
  kSort,
  kReverse,
  kLast,
  kSumList,
  kMaxList,
  kMinList,
  kNumlist,
  kSucc,
  kAtomConcat,
  kAtomLength,
  kCopyTerm,
  kBetween,
  kNoop,  // write/1, nl/0
};

/// Classifies a callable goal (functor + arity) into an opcode; kUser when it
/// is not a recognized builtin, kDynamic for variable roots.
Op classify_goal(const Term& goal);

enum class HeadArgMode : std::uint8_t {
  kConst,     ///< atom/int/float argument: inline compare or bind caller var
  kFirstVar,  ///< first occurrence of a variable: bind the slot directly
  kMatch,     ///< structured or repeated-variable argument: unify_template
};

struct HeadArg {
  HeadArgMode mode = HeadArgMode::kMatch;
  TermPtr tmpl;            ///< slot-renumbered head argument
  std::int64_t slot = -1;  ///< kFirstVar only
};

struct CompiledGoal {
  TermPtr tmpl;  ///< slot-renumbered body goal
  Op op = Op::kDynamic;
  bool ground = false;  ///< no variables: instantiation is the identity
};

struct CompiledClause {
  std::uint32_t nvars = 0;
  std::vector<HeadArg> head_args;
  std::vector<CompiledGoal> body;
};

/// Compiled form of one predicate (parallel to Database::Pred::clauses), with
/// the stamps needed to validate a cached copy against a mutated database.
/// `seqs` mirrors the per-clause sequence stamps at compile time: clause
/// slots only ever shift left (retract) or truncate/extend at the end
/// (undo/assert), so the longest position-wise stamp match identifies the
/// compiled prefix that is still valid — the Monte Carlo world loop, which
/// appends and then undoes a layer of facts around every iteration, keeps
/// the whole base program compiled this way.
struct CompiledPred {
  std::uint64_t version = 0;
  std::vector<std::uint64_t> seqs;
  /// Shared so the VM's fact memo can hand the same compiled object to
  /// every Monte Carlo world that re-asserts the same fact term.
  std::vector<std::shared_ptr<const CompiledClause>> clauses;
};

CompiledClause compile_clause(const Clause& clause);

/// Materializes a slot-renumbered template over a fresh-variable block: slot
/// s becomes variable base+s.  Ground subtrees are shared, not copied.
TermPtr instantiate_template(const TermPtr& tmpl, std::int64_t base);

/// Unifies a slot-renumbered template (over block `base`) against a term,
/// trailing bindings exactly like unify().
bool unify_template(const TermPtr& tmpl, std::int64_t base,
                    const TermPtr& other, Bindings& bindings);

}  // namespace deco::wlog
