// Clause database indexed by functor/arity, with assert/retract support so
// the solver can bind a candidate plan (configs/3 facts) before evaluation.
//
// First-argument indexing: per predicate, clauses are additionally bucketed
// by the principal functor/constant of the first head argument (clauses whose
// first argument is a variable land in every bucket via a catch-all list).
// A call with a bound first argument then scans only the candidate clauses —
// a strict superset filter that preserves assertion order, so resolution
// order is unchanged and only guaranteed-mismatching heads are skipped.
// assert/retract keep the index coherent, which matters because the solver
// rebinds configs/3 facts for every candidate plan.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "wlog/program.hpp"

namespace deco::wlog {

/// Bucket key of a (resolved) first argument: empty for variables (meaning
/// "cannot discriminate"), otherwise a string encoding of the principal
/// functor/constant.  Equal terms always map to equal keys; distinct terms
/// may collide (the bucket is a superset filter, unification decides).
std::string index_bucket_key(const Term& first_arg);

class Database {
 public:
  Database() = default;

  /// One predicate's clauses plus its first-argument index.
  struct Pred {
    std::vector<Clause> clauses;  ///< assertion order
    /// Monotonic per-clause stamps (database-global order); lets compiled
    /// caches validate that a previously compiled prefix is still intact.
    std::vector<std::uint64_t> seqs;
    /// Constant-keyed candidate lists (clause indices, ascending), each
    /// already merged with the var-headed clauses.
    std::unordered_map<std::string, std::vector<std::uint32_t>> buckets;
    /// Clauses whose first head argument is a variable (or arity is 0):
    /// candidates for every constant key without a dedicated bucket.
    std::vector<std::uint32_t> var_clauses;
    /// Bumped on every mutation of this predicate.
    std::uint64_t version = 0;

    /// Candidate clause indices for a call whose resolved first argument has
    /// bucket key `key`.  Returns nullptr for "scan all clauses" (variable
    /// first argument).  The returned list preserves assertion order.
    const std::vector<std::uint32_t>* candidates(const std::string& key) const;
  };

  /// Appends all clauses of a parsed program.
  void add_program(const Program& program);
  void add_clause(Clause clause);
  /// Adds a fact (clause with empty body).
  void add_fact(TermPtr fact);

  /// Removes all clauses whose head matches functor/arity.
  void retract_all(const std::string& functor, std::size_t arity);

  /// Clauses for a predicate indicator, in assertion order.
  const std::vector<Clause>& clauses_for(const std::string& functor,
                                         std::size_t arity) const;

  /// Predicate entry (clauses + index), or nullptr when unknown.
  const Pred* pred(const std::string& functor, std::size_t arity) const;

  /// Clause-layer mark/undo: callers may layer facts (e.g. one possible
  /// world's sampled facts) on top of a mark and peel them off again without
  /// copying the database.  Only additions since the mark are undone;
  /// retract_all between mark and undo is unsupported.
  std::size_t mark() const { return add_log_.size(); }
  void undo_to(std::size_t mark);

  /// Bumped on every mutation (any predicate).
  std::uint64_t version() const { return version_; }

  std::size_t clause_count() const;

 private:
  std::unordered_map<std::string, Pred> by_indicator_;
  std::vector<std::string> add_log_;  ///< indicator per add, for undo_to
  std::uint64_t version_ = 0;
  std::uint64_t next_seq_ = 0;
  static const std::vector<Clause> kEmpty;
};

}  // namespace deco::wlog
