// Clause database indexed by functor/arity, with assert/retract support so
// the solver can bind a candidate plan (configs/3 facts) before evaluation.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "wlog/program.hpp"

namespace deco::wlog {

class Database {
 public:
  Database() = default;

  /// Appends all clauses of a parsed program.
  void add_program(const Program& program);
  void add_clause(Clause clause);
  /// Adds a fact (clause with empty body).
  void add_fact(TermPtr fact);

  /// Removes all clauses whose head matches functor/arity.
  void retract_all(const std::string& functor, std::size_t arity);

  /// Clauses for a predicate indicator, in assertion order.
  const std::vector<Clause>& clauses_for(const std::string& functor,
                                         std::size_t arity) const;

  std::size_t clause_count() const;

 private:
  std::unordered_map<std::string, std::vector<Clause>> by_indicator_;
  static const std::vector<Clause> kEmpty;
};

}  // namespace deco::wlog
