#include "baselines/autoscaling.hpp"

#include <algorithm>
#include <cmath>

#include "workflow/analysis.hpp"

namespace deco::baselines {

Autoscaling::Autoscaling(const workflow::Workflow& wf,
                         core::TaskTimeEstimator& estimator)
    : wf_(&wf), estimator_(&estimator) {}

AutoscalingResult Autoscaling::solve(double deadline_s,
                                     const AutoscalingOptions& options) {
  AutoscalingResult result;
  const std::size_t n = wf_->task_count();
  const cloud::Catalog& catalog = estimator_->catalog();
  result.plan = sim::Plan::uniform(n, 0, options.region);
  result.subdeadlines.assign(n, 0);
  if (n == 0) return result;

  // Step 1 — deadline assignment: each task receives a share of the deadline
  // proportional to its fastest achievable time along the longest path
  // *through* it.  Tasks on short branches get generous slices; tasks on the
  // critical path split the deadline exactly.
  const cloud::TypeId fastest =
      static_cast<cloud::TypeId>(catalog.type_count() - 1);
  std::vector<double> fast(n);
  for (workflow::TaskId t = 0; t < n; ++t) {
    fast[t] = estimator_->mean_time(*wf_, t, fastest);
  }
  const auto topo = wf_->topological_order();
  std::vector<double> up(n, 0);    // longest fast path ending at t (incl. t)
  std::vector<double> down(n, 0);  // longest fast path starting at t (incl. t)
  if (topo) {
    for (workflow::TaskId t : *topo) {
      up[t] = fast[t];
      for (workflow::TaskId p : wf_->parents(t)) {
        up[t] = std::max(up[t], up[p] + fast[t]);
      }
    }
    for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
      const workflow::TaskId t = *it;
      down[t] = fast[t];
      for (workflow::TaskId c : wf_->children(t)) {
        down[t] = std::max(down[t], down[c] + fast[t]);
      }
    }
  }
  for (workflow::TaskId t = 0; t < n; ++t) {
    const double through = up[t] + down[t] - fast[t];
    result.subdeadlines[t] =
        through > 0 ? deadline_s * fast[t] / through : deadline_s;
  }

  // Step 2 — most cost-efficient type meeting each task's subdeadline.
  for (workflow::TaskId t = 0; t < n; ++t) {
    cloud::TypeId chosen = fastest;
    double chosen_cost = std::numeric_limits<double>::infinity();
    bool met = false;
    for (cloud::TypeId v = 0; v < catalog.type_count(); ++v) {
      const double time = estimator_->mean_time(*wf_, t, v);
      if (time > result.subdeadlines[t]) continue;
      const double cost = time * catalog.price(v, options.region);
      if (!met || cost < chosen_cost) {
        chosen = v;
        chosen_cost = cost;
        met = true;
      }
    }
    // No type meets the subdeadline: take the fastest (the heuristic's
    // "scale up" move).
    result.plan[t].vm_type = met ? chosen : fastest;
  }

  // Step 3 — consolidation: chain same-type parent/child pairs onto shared
  // instances to pack partial hours.
  if (options.consolidate) {
    std::int32_t next_group = 0;
    for (const workflow::Edge& e : wf_->edges()) {
      auto& pp = result.plan[e.parent];
      auto& pc = result.plan[e.child];
      if (pp.vm_type != pc.vm_type) continue;
      if (pc.group >= 0) continue;
      if (pp.group >= 0) {
        pc.group = pp.group;
      } else {
        pp.group = next_group;
        pc.group = next_group;
        ++next_group;
      }
    }
  }
  return result;
}

}  // namespace deco::baselines
