// Heuristic baseline for follow-the-cost (Section 6.1).
//
// "At the offline stage, we consider the price differences among cloud data
// centers and determine the plan of migrating the workflows from their
// initial deployed data center to the more cost-efficient one.  At runtime,
// we monitor the task execution time and make migration adjustments when the
// monitored execution time differs from the estimation by a threshold."
#pragma once

#include "core/followcost.hpp"

namespace deco::baselines {

struct MigrationHeuristicOptions {
  double threshold = 0.5;  ///< relative deviation triggering re-adjustment
};

/// Stateful policy usable with core::run_followcost_scenario.
class MigrationHeuristic {
 public:
  MigrationHeuristic(const cloud::Catalog& catalog,
                     core::TaskTimeEstimator& estimator,
                     MigrationHeuristicOptions options = {});

  /// The offline plan: for each workflow, the cheapest region by price alone
  /// (ignoring migration cost and dynamics — the heuristic's blind spot).
  std::vector<cloud::RegionId> offline_plan(
      const std::vector<core::MigrationWorkflowState>& states) const;

  /// The runtime policy: follows the offline plan; when a workflow's
  /// observed progress deviates from the estimate by more than the
  /// threshold, re-evaluates whether migrating still pays off.
  std::vector<cloud::RegionId> operator()(
      const std::vector<core::MigrationWorkflowState>& states);

 private:
  const cloud::Catalog* catalog_;
  core::TaskTimeEstimator* estimator_;
  MigrationHeuristicOptions options_;
  std::vector<cloud::RegionId> plan_;     // lazily initialized offline plan
  std::vector<double> estimated_elapsed_; // per workflow, expected progress
};

}  // namespace deco::baselines
