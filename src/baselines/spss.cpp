#include "baselines/spss.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace deco::baselines {

Spss::Spss(const cloud::Catalog& catalog, const cloud::MetadataStore& store,
           vgpu::ComputeBackend& backend, SpssOptions options)
    : catalog_(&catalog),
      store_(&store),
      backend_(&backend),
      options_(options) {}

SpssResult Spss::plan(const workflow::Ensemble& ensemble) {
  SpssResult result;
  const std::size_t n = ensemble.members.size();
  result.admitted.assign(n, false);
  result.plans.resize(n);
  result.member_costs.assign(n, 0);

  // Process in priority order (0 = highest first).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ensemble.members[a].priority < ensemble.members[b].priority;
  });

  double spent = 0;
  for (std::size_t idx : order) {
    const auto& member = ensemble.members[idx];
    core::TaskTimeEstimator estimator(*catalog_, *store_, options_.estimator);
    // Static plan: Autoscaling-style deadline distribution, no
    // transformation operations (the gap Deco exploits).
    Autoscaling planner(member.workflow, estimator);
    AutoscalingOptions aopt;
    aopt.region = options_.region;
    const AutoscalingResult plan = planner.solve(member.deadline_s, aopt);

    // Planned cost and deadline check against the probabilistic evaluator
    // (the plan itself was made with deterministic estimates — SPSS's model).
    core::PlanEvaluator evaluator(member.workflow, estimator, *backend_,
                                  options_.eval);
    core::ProbDeadline req;
    req.quantile = member.deadline_q / 100.0;
    req.deadline_s = member.deadline_s;
    const core::PlanEvaluation eval = evaluator.evaluate(plan.plan, req);
    if (!eval.feasible) continue;  // cannot complete: don't waste budget
    if (spent + eval.mean_cost > ensemble.budget) continue;
    spent += eval.mean_cost;
    result.admitted[idx] = true;
    result.plans[idx] = plan.plan;
    result.member_costs[idx] = eval.mean_cost;
    result.score += std::pow(2.0, -member.priority);
  }
  result.total_cost = spent;
  return result;
}

}  // namespace deco::baselines
