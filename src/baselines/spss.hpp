// SPSS baseline — Malawski, Juve, Deelman, Nabrzyski, "Cost- and
// Deadline-constrained Provisioning for Scientific Workflow Ensembles in IaaS
// Clouds" (SC'12): Static Provisioning Static Scheduling, the comparison for
// the workflow ensemble problem (Section 6.1).
//
// SPSS plans the whole ensemble offline: it iterates workflows in priority
// order, computes a static schedule and cost for each (deadline-distributed
// over levels, cheapest type meeting each task's slice — no workflow
// transformations), and admits a workflow only if the cumulative planned
// cost stays within the ensemble budget and the plan meets the workflow's
// deadline.  "SPSS ... with heuristics to reduce resource waste on workflows
// that cannot be completed."
#pragma once

#include "baselines/autoscaling.hpp"
#include "core/evaluator.hpp"
#include "workflow/ensemble.hpp"

namespace deco::baselines {

struct SpssOptions {
  cloud::RegionId region = 0;
  core::EvalOptions eval;
  core::EstimatorOptions estimator;

  SpssOptions() {
    // Ensemble budgets are spent in real instance hours (Eq. 5).
    eval.cost_model = core::CostModel::kBilledHours;
  }
};

struct SpssResult {
  std::vector<bool> admitted;
  std::vector<sim::Plan> plans;
  std::vector<double> member_costs;  ///< expected plan cost per member
  double total_cost = 0;
  double score = 0;
};

class Spss {
 public:
  Spss(const cloud::Catalog& catalog, const cloud::MetadataStore& store,
       vgpu::ComputeBackend& backend, SpssOptions options = {});

  SpssResult plan(const workflow::Ensemble& ensemble);

 private:
  const cloud::Catalog* catalog_;
  const cloud::MetadataStore* store_;
  vgpu::ComputeBackend* backend_;
  SpssOptions options_;
};

}  // namespace deco::baselines
