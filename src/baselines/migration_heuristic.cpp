#include "baselines/migration_heuristic.hpp"

#include <cmath>
#include <map>

#include "workflow/analysis.hpp"

namespace deco::baselines {

MigrationHeuristic::MigrationHeuristic(const cloud::Catalog& catalog,
                                       core::TaskTimeEstimator& estimator,
                                       MigrationHeuristicOptions options)
    : catalog_(&catalog), estimator_(&estimator), options_(options) {}

std::vector<cloud::RegionId> MigrationHeuristic::offline_plan(
    const std::vector<core::MigrationWorkflowState>& states) const {
  std::vector<cloud::RegionId> plan(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    cloud::RegionId best = states[i].region;
    double best_price = catalog_->price(states[i].vm_type, best);
    for (cloud::RegionId r = 0; r < catalog_->region_count(); ++r) {
      const double price = catalog_->price(states[i].vm_type, r);
      if (price < best_price) {
        best = r;
        best_price = price;
      }
    }
    plan[i] = best;
  }
  return plan;
}

std::vector<cloud::RegionId> MigrationHeuristic::operator()(
    const std::vector<core::MigrationWorkflowState>& states) {
  if (plan_.empty()) {
    plan_ = offline_plan(states);
    estimated_elapsed_.assign(states.size(), 0);
  }
  std::vector<cloud::RegionId> targets(states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    targets[i] = plan_[i];
    // Expected progress: levels execute in parallel, so the estimate is the
    // sum over finished levels of the slowest finished task in each level.
    const auto levels = workflow::levels(*states[i].wf);
    std::map<int, double> level_time;
    for (workflow::TaskId t = 0; t < states[i].wf->task_count(); ++t) {
      if (states[i].finished[t]) {
        auto& slot = level_time[levels[t]];
        slot = std::max(slot, estimator_->mean_time(*states[i].wf, t,
                                                    states[i].vm_type));
      }
    }
    double expected = 0;
    for (const auto& [level, time] : level_time) expected += time;
    estimated_elapsed_[i] = expected;
    const double observed = states[i].elapsed_s;
    if (expected > 0 &&
        std::abs(observed - expected) / expected > options_.threshold) {
      // Deviation beyond the threshold: re-adjust.  If the workflow is
      // running late, cancel a pending migration (the transfer time would
      // endanger the deadline); if early, stick with the cheap region.
      if (observed > expected && plan_[i] != states[i].region) {
        targets[i] = states[i].region;
      }
    }
  }
  return targets;
}

}  // namespace deco::baselines
