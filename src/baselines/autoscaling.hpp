// Autoscaling baseline — Mao & Humphrey, "Auto-scaling to Minimize Cost and
// Meet Application Deadlines in Cloud Workflows" (SC'11), the comparison
// algorithm for the workflow scheduling problem (Section 6.1).
//
// The reproduction follows the published heuristic pipeline:
//   1. Deadline assignment: the workflow deadline is distributed over tasks
//      in proportion to their minimum expected execution times along levels.
//   2. Instance-type selection: each task takes the most cost-efficient type
//      whose expected time meets the task's subdeadline.
//   3. Consolidation: same-type parent/child pairs share instances to pack
//      partial hours.
// The approach is *deterministic* — it plans against expected times; when the
// caller's requirement is a probabilistic deadline p%, the paper sets
// Autoscaling's deadline to the p-th percentile target (Section 6.1,
// "Parameter setting"), which is what `solve` implements.
#pragma once

#include "core/estimator.hpp"
#include "core/evaluator.hpp"
#include "sim/plan.hpp"

namespace deco::baselines {

struct AutoscalingOptions {
  cloud::RegionId region = 0;
  bool consolidate = true;
};

struct AutoscalingResult {
  sim::Plan plan;
  std::vector<double> subdeadlines;  ///< per task, seconds
};

class Autoscaling {
 public:
  Autoscaling(const workflow::Workflow& wf, core::TaskTimeEstimator& estimator);

  /// Plans for `deadline_s` (already the percentile-adjusted target).
  AutoscalingResult solve(double deadline_s,
                          const AutoscalingOptions& options = {});

 private:
  const workflow::Workflow* wf_;
  core::TaskTimeEstimator* estimator_;
};

}  // namespace deco::baselines
