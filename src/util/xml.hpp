// Minimal non-validating XML parser, sufficient for Pegasus DAX files.
//
// Supports elements, attributes (single/double quoted), text nodes, comments,
// processing instructions, XML declarations, CDATA and the five predefined
// entities.  It does not support DTDs or namespaces beyond treating "ns:name"
// as an opaque tag name — DAX files need none of that.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace deco::util {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  ///< concatenated character data directly inside this node

  /// Attribute value or std::nullopt.
  std::optional<std::string> attr(std::string_view key) const;
  /// Attribute value or `fallback`.
  std::string attr_or(std::string_view key, std::string fallback) const;
  /// First child element with the given tag name, or nullptr.
  const XmlNode* child(std::string_view tag) const;
  /// All child elements with the given tag name.
  std::vector<const XmlNode*> children_named(std::string_view tag) const;
};

struct XmlParseError {
  std::size_t offset = 0;
  std::string message;
};

/// Parses a document; returns the root element or an error.
struct XmlParseResult {
  std::unique_ptr<XmlNode> root;
  std::optional<XmlParseError> error;

  bool ok() const { return root != nullptr && !error.has_value(); }
};

XmlParseResult parse_xml(std::string_view input);

/// Escapes &, <, >, ", ' for attribute/text serialization.
std::string xml_escape(std::string_view raw);

}  // namespace deco::util
