#include "util/thread_pool.hpp"

#include <algorithm>
#include <limits>

namespace deco::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto fut = packaged.get_future();
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  parallel_chunks(n, [&fn](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_chunks(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size());
  const std::size_t per = (n + chunks - 1) / chunks;
  // Exceptions are captured per chunk rather than thrown through the futures:
  // rethrowing from the first future that fails would unwind this frame (and
  // the caller's fn) while later chunks are still executing it.  Instead the
  // join below always waits for *every* chunk, then deterministically
  // rethrows the exception of the lowest-indexed failed chunk.
  std::mutex error_mutex;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = std::min(n, begin + per);
    if (begin >= end) break;
    futures.push_back(submit([&, begin, end, c] {
      try {
        fn(begin, end, c);
      } catch (...) {
        std::lock_guard guard(error_mutex);
        if (c < error_chunk) {
          error_chunk = c;
          error = std::current_exception();
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  if (error) std::rethrow_exception(error);
}

}  // namespace deco::util
