#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/stats.hpp"

namespace deco::util {
namespace {

// Marsaglia-Tsang squeeze method for Gamma(k >= 1, 1); boosted for k < 1.
double sample_standard_gamma(Rng& rng, double k) {
  if (k < 1.0) {
    const double u = std::max(rng.uniform(), 1e-300);
    return sample_standard_gamma(rng, k + 1.0) * std::pow(u, 1.0 / k);
  }
  const double d = k - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x;
    double v;
    do {
      x = Normal{0, 1}.sample(rng);
      v = 1.0 + c * x;
    } while (v <= 0);
    v = v * v * v;
    const double u = std::max(rng.uniform(), 1e-300);
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

}  // namespace

double Normal::sample(Rng& rng) const {
  // Box-Muller; one value per call keeps lanes stateless.
  const double u1 = std::max(rng.uniform(), 1e-300);
  const double u2 = rng.uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mu + sigma * z;
}

double Normal::pdf(double x) const {
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) /
         (sigma * std::sqrt(2.0 * std::numbers::pi));
}

double Normal::cdf(double x) const {
  return 0.5 * std::erfc(-(x - mu) / (sigma * std::numbers::sqrt2));
}

Normal Normal::fit(std::span<const double> xs) {
  return Normal{mean(xs), stddev(xs)};
}

double Gamma::sample(Rng& rng) const {
  return theta * sample_standard_gamma(rng, k);
}

double Gamma::pdf(double x) const {
  if (x <= 0) return 0;
  const double logp = (k - 1) * std::log(x) - x / theta - log_gamma(k) -
                      k * std::log(theta);
  return std::exp(logp);
}

double Gamma::cdf(double x) const {
  if (x <= 0) return 0;
  return regularized_gamma_p(k, x / theta);
}

Gamma Gamma::fit(std::span<const double> xs) {
  const double m = deco::util::mean(xs);
  const double v = deco::util::variance(xs);
  if (m <= 0 || v <= 0) return Gamma{1, std::max(m, 1e-9)};
  return Gamma{m * m / v, v / m};
}

double Pareto::sample(Rng& rng) const {
  const double u = std::max(1.0 - rng.uniform(), 1e-300);
  return xm / std::pow(u, 1.0 / alpha);
}

double Pareto::pdf(double x) const {
  if (x < xm) return 0;
  return alpha * std::pow(xm, alpha) / std::pow(x, alpha + 1);
}

double Pareto::cdf(double x) const {
  if (x < xm) return 0;
  return 1.0 - std::pow(xm / x, alpha);
}

double log_gamma(double x) { return std::lgamma(x); }

double regularized_gamma_p(double a, double x) {
  if (x <= 0 || a <= 0) return 0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 1e-14) break;
    }
    return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
  }
  // Continued fraction for Q(a, x); P = 1 - Q.
  double b = x + 1.0 - a;
  double c = 1e300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::abs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  const double q = std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
  return 1.0 - q;
}

double Distribution::sample(Rng& rng) const {
  switch (kind) {
    case Kind::kNormal:
      return Normal{a, b}.sample(rng);
    case Kind::kGamma:
      return Gamma{a, b}.sample(rng);
    case Kind::kUniform:
      return Uniform{a, b}.sample(rng);
    case Kind::kPareto:
      return Pareto{a, b}.sample(rng);
  }
  return 0;
}

double Distribution::cdf(double x) const {
  switch (kind) {
    case Kind::kNormal:
      return Normal{a, b}.cdf(x);
    case Kind::kGamma:
      return Gamma{a, b}.cdf(x);
    case Kind::kUniform:
      return Uniform{a, b}.cdf(x);
    case Kind::kPareto:
      return Pareto{a, b}.cdf(x);
  }
  return 0;
}

double Distribution::mean() const {
  switch (kind) {
    case Kind::kNormal:
      return a;
    case Kind::kGamma:
      return a * b;
    case Kind::kUniform:
      return 0.5 * (a + b);
    case Kind::kPareto:
      return b > 1 ? b * a / (b - 1) : a;
  }
  return 0;
}

double Distribution::sample_truncated(Rng& rng, double lo) const {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double x = sample(rng);
    if (x >= lo) return x;
  }
  return lo;
}

std::string Distribution::describe() const {
  char buf[96];
  switch (kind) {
    case Kind::kNormal:
      std::snprintf(buf, sizeof buf, "Normal(mu=%.2f, sigma=%.2f)", a, b);
      break;
    case Kind::kGamma:
      std::snprintf(buf, sizeof buf, "Gamma(k=%.2f, theta=%.3f)", a, b);
      break;
    case Kind::kUniform:
      std::snprintf(buf, sizeof buf, "Uniform(%.2f, %.2f)", a, b);
      break;
    case Kind::kPareto:
      std::snprintf(buf, sizeof buf, "Pareto(xm=%.2f, alpha=%.2f)", a, b);
      break;
  }
  return buf;
}

}  // namespace deco::util
