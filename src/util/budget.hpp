#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace deco::util {

// Cooperative cancellation flag. Cheap to poll from any thread; cancel() is
// sticky. Callers share one token across the layers of a solve so a single
// cancel reaches search drivers, evaluator kernels, and pool launches.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

// Why a budget stopped the solve. kNone means the budget never fired.
enum class BudgetTrigger : std::uint8_t {
  kNone = 0,
  kCancel,     // explicit CancelToken
  kWallClock,  // wall-clock deadline elapsed
  kMemory,     // resident-bytes cap exceeded after the degradation ladder
};

const char* to_string(BudgetTrigger trigger);

// Thrown from cooperative checkpoints deep in the stack (evaluator kernels,
// pool launches, the WLog interpreter) and caught by the search drivers,
// which convert it into an anytime result instead of propagating.
class BudgetExhaustedError : public std::runtime_error {
 public:
  explicit BudgetExhaustedError(BudgetTrigger trigger);
  BudgetTrigger trigger() const noexcept { return trigger_; }

 private:
  BudgetTrigger trigger_;
};

// Per-solve resource limits. Zero means unlimited for both numeric fields;
// `cancel` is borrowed and may be null.
struct SolveBudget {
  double wall_ms = 0.0;       // wall-clock deadline; 0 = unlimited
  std::size_t max_bytes = 0;  // resident cache bytes cap; 0 = unlimited
  CancelToken* cancel = nullptr;

  bool unlimited() const {
    return wall_ms <= 0.0 && max_bytes == 0 && cancel == nullptr;
  }
};

// Outcome summary attached to every budgeted solve result.
struct SolveReport {
  bool budget_exhausted = false;
  BudgetTrigger trigger = BudgetTrigger::kNone;
  std::size_t states_at_cutoff = 0;
  std::size_t bytes_at_cutoff = 0;
  double elapsed_ms = 0.0;
};

// Armed budget state shared (by pointer) across every layer of one solve.
// All methods are safe to call concurrently: checkpoints only read atomics
// plus the steady clock, and the first trigger wins (sticky).
//
// Memory accounting is cooperative: each cache owner publishes its resident
// bytes via set_bytes(); over_memory_budget() compares the sum to the cap.
// The degradation ladder runs before kMemory fires — the evaluator drops
// whole-plan device images, then segments, then requests a visited-set
// shrink from the search driver (request_visited_shrink); only when nothing
// is left to evict does a layer call fire(kMemory).
class BudgetTracker {
 public:
  enum class Component : std::size_t {
    kPlanCache = 0,
    kSegmentCache,
    kVisited,
    kOther,
  };
  static constexpr std::size_t kComponents = 4;

  // Inert tracker: never fires, all checkpoints are no-ops.
  BudgetTracker() = default;
  // Armed tracker: the wall clock starts now.
  explicit BudgetTracker(const SolveBudget& budget);

  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

  bool active() const noexcept { return armed_; }

  // Cooperative checkpoint. Returns true once any trigger has fired; checks
  // the cancel token and wall clock as a side effect. Cheap enough for
  // per-tile kernel loops.
  bool should_stop() noexcept;

  bool exhausted() const noexcept {
    return trigger_.load(std::memory_order_acquire) !=
           static_cast<int>(BudgetTrigger::kNone);
  }
  BudgetTrigger trigger() const noexcept {
    return static_cast<BudgetTrigger>(trigger_.load(std::memory_order_acquire));
  }

  // Sticky: the first trigger wins, later calls are ignored. Records
  // budget.* obs counters and cancels in-flight launches via the internal
  // launch token.
  void fire(BudgetTrigger trigger) noexcept;

  // Throws BudgetExhaustedError when a trigger has fired. The canonical
  // checkpoint for layers that propagate by exception (kernels, interp).
  void checkpoint() {
    if (should_stop()) throw BudgetExhaustedError(trigger());
  }

  double elapsed_ms() const;

  // Internal token fired alongside any trigger; pool launches poll it
  // between chunk claims so in-flight work drains without calling back into
  // the tracker.
  const CancelToken* launch_cancel() const noexcept { return &launch_cancel_; }

  // --- memory accounting -------------------------------------------------
  std::size_t memory_budget() const noexcept { return budget_.max_bytes; }
  void set_bytes(Component component, std::size_t bytes) noexcept {
    bytes_[static_cast<std::size_t>(component)].store(
        bytes, std::memory_order_relaxed);
  }
  std::size_t bytes(Component component) const noexcept {
    return bytes_[static_cast<std::size_t>(component)].load(
        std::memory_order_relaxed);
  }
  std::size_t total_bytes() const noexcept;
  bool over_memory_budget() const noexcept {
    return armed_ && budget_.max_bytes > 0 && total_bytes() > budget_.max_bytes;
  }

  // Degradation handshake: the evaluator (which owns no visited set) asks
  // the search driver to shrink its visited FIFO at the next wave boundary.
  void request_visited_shrink() noexcept {
    shrink_requested_.store(true, std::memory_order_release);
  }
  bool consume_visited_shrink_request() noexcept {
    return shrink_requested_.exchange(false, std::memory_order_acq_rel);
  }

  // Snapshot into a report. `states` is the driver's states_evaluated count.
  SolveReport report(std::size_t states) const;

 private:
  SolveBudget budget_{};
  bool armed_ = false;
  std::chrono::steady_clock::time_point start_{};
  std::atomic<int> trigger_{static_cast<int>(BudgetTrigger::kNone)};
  std::atomic<std::size_t> bytes_[kComponents] = {};
  std::atomic<bool> shrink_requested_{false};
  CancelToken launch_cancel_;
};

}  // namespace deco::util
