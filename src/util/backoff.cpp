#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>

namespace deco::util {

double backoff_ceiling(const BackoffOptions& options, std::size_t attempt) {
  const double exponent =
      attempt > 1 ? static_cast<double>(attempt - 1) : 0.0;
  const double ceiling =
      options.base_s * std::pow(std::max(options.factor, 1.0), exponent);
  return std::min(ceiling, options.cap_s);
}

double backoff_worst_case_total(const BackoffOptions& options,
                                std::size_t attempts) {
  double total = 0;
  for (std::size_t i = 1; i <= attempts; ++i) {
    total += backoff_ceiling(options, i);
  }
  return total;
}

double Backoff::next(Rng& rng) {
  return delay(++attempt_, rng);
}

double Backoff::delay(std::size_t attempt, Rng& rng) const {
  const double ceiling = backoff_ceiling(options_, attempt);
  const double jitter = std::clamp(options_.jitter, 0.0, 1.0);
  if (jitter <= 0) return ceiling;
  // (0, 1] so a fully jittered delay is never exactly zero (a zero delay
  // would retry in the same virtual instant and defeat the backoff).
  const double u = 1.0 - rng.uniform();
  return ceiling * (1.0 - jitter + jitter * u);
}

}  // namespace deco::util
