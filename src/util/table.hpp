// Aligned plain-text table printer used by the bench harnesses so that every
// figure/table of the paper is regenerated as a readable report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace deco::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace deco::util
