// Small descriptive-statistics helpers shared by calibration, evaluation and
// the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace deco::util {

/// Arithmetic mean; returns 0 for an empty range.
double mean(std::span<const double> xs);

/// Unbiased sample variance (n-1 denominator); returns 0 for n < 2.
double variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// q-th percentile (q in [0, 100]) by linear interpolation between closest
/// ranks.  The input need not be sorted.  Returns 0 for an empty range.
double percentile(std::span<const double> xs, double q);

/// Minimum / maximum; return 0 for an empty range.
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Summary of a sample used in bench output (quantile plots, Fig. 2 style).
struct FiveNumberSummary {
  double min = 0;
  double q25 = 0;
  double median = 0;
  double q75 = 0;
  double max = 0;
};

FiveNumberSummary five_number_summary(std::span<const double> xs);

/// Divides every element by `base`; used for the paper's normalized metrics.
std::vector<double> normalized(std::span<const double> xs, double base);

/// Kolmogorov-Smirnov test statistic of a sample against a CDF, plus the
/// asymptotic p-value approximation.  Used to "verify with null hypothesis"
/// that calibrated network performance is Normal (Fig. 6b).
struct KsResult {
  double statistic = 0;  ///< sup |F_n(x) - F(x)|
  double p_value = 0;    ///< asymptotic Kolmogorov distribution tail
};

template <typename Cdf>
KsResult ks_test(std::vector<double> sample, Cdf&& cdf);

/// Kolmogorov distribution complementary CDF approximation.
double kolmogorov_tail(double t);

// --- implementation of the templated entry point ---------------------------

template <typename Cdf>
KsResult ks_test(std::vector<double> sample, Cdf&& cdf) {
  KsResult out;
  if (sample.empty()) return out;
  std::sort(sample.begin(), sample.end());
  const auto n = static_cast<double>(sample.size());
  double d = 0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double f = cdf(sample[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, f - lo, hi - f});
  }
  out.statistic = d;
  const double t = (std::sqrt(n) + 0.12 + 0.11 / std::sqrt(n)) * d;
  out.p_value = kolmogorov_tail(t);
  return out;
}

}  // namespace deco::util
