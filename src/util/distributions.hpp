// Probability distributions used to model cloud performance dynamics.
//
// The paper models Amazon EC2 sequential I/O as Gamma, random I/O and network
// bandwidth as Normal (Table 2, Figs. 6-7).  This header provides sampling,
// pdf/cdf, and moment-based fitting for those families, plus Pareto and
// Uniform used by the ensemble generator (Section 6.1).
#pragma once

#include <cmath>
#include <span>
#include <string>

#include "util/rng.hpp"

namespace deco::util {

/// Normal(mu, sigma).  sigma must be > 0 for sampling.
struct Normal {
  double mu = 0;
  double sigma = 1;

  double sample(Rng& rng) const;
  double pdf(double x) const;
  double cdf(double x) const;

  /// Method-of-moments fit (== MLE for Normal).
  static Normal fit(std::span<const double> xs);
};

/// Gamma(k, theta) with shape k and scale theta.
struct Gamma {
  double k = 1;
  double theta = 1;

  double sample(Rng& rng) const;
  double pdf(double x) const;
  double cdf(double x) const;
  double mean() const { return k * theta; }

  /// Method-of-moments fit: k = m^2/v, theta = v/m.
  static Gamma fit(std::span<const double> xs);
};

/// Uniform(lo, hi).
struct Uniform {
  double lo = 0;
  double hi = 1;

  double sample(Rng& rng) const { return lo + (hi - lo) * rng.uniform(); }
  double pdf(double x) const {
    return (x >= lo && x <= hi && hi > lo) ? 1.0 / (hi - lo) : 0.0;
  }
  double cdf(double x) const {
    if (x <= lo) return 0;
    if (x >= hi) return 1;
    return (x - lo) / (hi - lo);
  }
};

/// Pareto(xm, alpha): support [xm, inf).  Used for Pareto ensembles.
struct Pareto {
  double xm = 1;
  double alpha = 1;

  double sample(Rng& rng) const;
  double pdf(double x) const;
  double cdf(double x) const;
};

/// Lower regularized incomplete gamma function P(a, x); powers Gamma::cdf.
double regularized_gamma_p(double a, double x);

/// ln Gamma(x) via Lanczos; exposed for tests.
double log_gamma(double x);

/// Tagged union over the families the metadata store can persist.
struct Distribution {
  enum class Kind { kNormal, kGamma, kUniform, kPareto };

  Kind kind = Kind::kNormal;
  double a = 0;  ///< mu | k | lo | xm
  double b = 1;  ///< sigma | theta | hi | alpha

  static Distribution normal(double mu, double sigma) {
    return {Kind::kNormal, mu, sigma};
  }
  static Distribution gamma(double k, double theta) {
    return {Kind::kGamma, k, theta};
  }
  static Distribution uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }
  static Distribution pareto(double xm, double alpha) {
    return {Kind::kPareto, xm, alpha};
  }

  double sample(Rng& rng) const;
  double cdf(double x) const;
  double mean() const;
  std::string describe() const;

  /// Sample truncated below at `lo` (rejection with a clamp fallback).
  /// Cloud performance metrics never collapse to zero — Fig. 6's measured
  /// traces bottom out around half the peak — so ground-truth draws for
  /// rates use this with lo ~ 0.45 * mean().
  double sample_truncated(Rng& rng, double lo) const;
};

}  // namespace deco::util
