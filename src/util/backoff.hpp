// Capped exponential backoff with seeded full jitter.
//
// Every retry loop in the repository (the simulator's task-retry machinery,
// the cloud control plane's API client) shares this policy so their delay
// schedules are computed — and tested — in one place.  The jittered variant
// implements AWS-style "full jitter": the n-th delay is drawn uniformly from
// (0, ceiling(n)], where ceiling(n) = min(base * factor^(n-1), cap).  Jitter
// draws flow through a caller-owned util::Rng, so equal seeds produce
// bit-identical schedules and the helper itself holds no hidden state.
#pragma once

#include <cstddef>

#include "util/rng.hpp"

namespace deco::util {

struct BackoffOptions {
  double base_s = 1.0;    ///< ceiling of the first delay
  double factor = 2.0;    ///< ceiling growth per attempt (clamped to >= 1)
  double cap_s = 64.0;    ///< ceiling never exceeds this
  /// Jitter fraction in [0, 1]: 0 = deterministic ceilings, 1 = full jitter
  /// (uniform over the whole interval).  Intermediate values blend:
  /// delay = ceiling * (1 - jitter + jitter * U),  U ~ Uniform(0, 1].
  double jitter = 1.0;
};

/// Deterministic ceiling of the `attempt`-th delay (1-based; attempt 0 is
/// treated as 1): min(base_s * factor^(attempt-1), cap_s).
double backoff_ceiling(const BackoffOptions& options, std::size_t attempt);

/// Sum of the first `attempts` ceilings — the worst-case total delay of any
/// jittered schedule of that length (full jitter only shrinks delays).
double backoff_worst_case_total(const BackoffOptions& options,
                                std::size_t attempts);

/// Stateful schedule: next() returns the jittered delay for the next attempt
/// and advances.  Draws consume `rng` only when options.jitter > 0, so a
/// zero-jitter schedule leaves the stream untouched.
class Backoff {
 public:
  Backoff() = default;
  explicit Backoff(BackoffOptions options) : options_(options) {}

  const BackoffOptions& options() const { return options_; }
  std::size_t attempt() const { return attempt_; }
  void reset() { attempt_ = 0; }

  /// Jittered delay for attempt `attempt() + 1`; advances the counter.
  double next(Rng& rng);

  /// Jittered delay for a specific 1-based attempt (does not advance).
  double delay(std::size_t attempt, Rng& rng) const;

 private:
  BackoffOptions options_;
  std::size_t attempt_ = 0;
};

}  // namespace deco::util
