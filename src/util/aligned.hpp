// Cache-line/vector-register aligned storage for kernel hot paths.
//
// The Monte Carlo kernel walks contiguous per-lane rows and per-position SoA
// arrays; starting every such array on a 64-byte boundary lets the
// auto-vectorizer use aligned loads/stores and keeps rows from straddling an
// extra cache line.  AlignedVector is std::vector with this allocator, so
// all of vector's semantics (spans, iteration, resize) carry over.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace deco::util {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, kAlign);
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose buffer starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace deco::util
