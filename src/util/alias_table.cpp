#include "util/alias_table.hpp"

#include <algorithm>

namespace deco::util {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  prob_.assign(n, 1.0);
  alias_.resize(n);
  for (std::size_t i = 0; i < n; ++i) alias_[i] = static_cast<std::uint32_t>(i);

  double total = 0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0) return;  // uniform: every column keeps its own bin

  // Vose's stable construction: scale each weight so the mean column is 1,
  // then repeatedly pair an under-full column with an over-full donor.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = std::max(weights[i], 0.0) / total * static_cast<double>(n);
  }
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    const std::uint32_t l = large.back();
    small.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    // The donor gave (1 - scaled[s]) of its mass to column s.
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are exactly-full columns up to floating-point round-off.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

}  // namespace deco::util
