#include "util/qmc.hpp"

#include <cmath>
#include <limits>

namespace deco::util {
namespace {

/// splitmix64 (same finalizer the Rng seeds with) — used to derive the
/// per-dimension rotation from one 64-bit seed.
std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// First `count` primes by trial division (count is the QMC dimension count,
/// i.e. tasks + 1 — thousands at most, so this is microseconds).
std::vector<std::uint32_t> first_primes(std::size_t count) {
  std::vector<std::uint32_t> primes;
  primes.reserve(count);
  for (std::uint32_t n = 2; primes.size() < count; ++n) {
    bool prime = true;
    for (const std::uint32_t p : primes) {
      if (p * p > n) break;
      if (n % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(n);
  }
  return primes;
}

}  // namespace

double normal_quantile(double p) {
  // Acklam's algorithm: rational approximations on a central region and two
  // tails, in terms of q = sqrt(-2 ln p) near the edges.
  static constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                  -2.759285104469687e+02, 1.383577518672690e+02,
                                  -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                  -1.556989798598866e+02, 6.680131188771972e+01,
                                  -1.328068155288572e+01};
  static constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                  -2.400758277161838e+00, -2.549732539343734e+00,
                                  4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                                  2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  if (p < kLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

KroneckerSequence::KroneckerSequence(std::size_t dimensions,
                                     std::uint64_t seed) {
  alpha_.resize(dimensions);
  shift_.resize(dimensions);
  const auto primes = first_primes(dimensions);
  std::uint64_t state = seed;
  for (std::size_t d = 0; d < dimensions; ++d) {
    const double root = std::sqrt(static_cast<double>(primes[d]));
    alpha_[d] = root - std::floor(root);
    shift_[d] =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;  // [0, 1)
  }
}

}  // namespace deco::util
