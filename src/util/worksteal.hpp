// Work-stealing index-range dispatcher — the launch path of the virtual-GPU
// backend (src/vgpu).
//
// ThreadPool's queue is fine for coarse independent jobs, but its launch path
// costs one std::function + packaged_task/future allocation per chunk and one
// mutex round-trip per dequeue, and a static contiguous partition cannot
// rebalance when blocks have skewed runtimes (a search wave mixes cached and
// uncached plans).  This dispatcher drives a *fixed index range* [0, n) with
// classic range stealing instead:
//
//   * every participant (each worker, plus the calling thread) owns a deque
//     of block indices, represented as a begin/end pair packed into one
//     atomic word;
//   * owners claim chunks of `chunk` blocks from the *front* of their own
//     deque with a single CAS — no locks, no allocation;
//   * a participant whose deque runs dry steals the *back half* of a
//     victim's remaining range, installs it as its own deque, and goes back
//     to front-claiming (so other thieves can in turn steal from it);
//   * the only blocking synchronization is one condvar wake per launch.
//
// Which participant executes a block is scheduling-dependent, but the block
// index fully determines the work, so callers that derive per-block state
// from the index (as vgpu kernels do) are bit-identical under any schedule.
//
// Exceptions: the launch runs to completion (every block is still claimed;
// blocks whose fn threw count as done), then the exception thrown by the
// *lowest block index* is rethrown on the caller — deterministic regardless
// of worker timing, and no task outlives run() (fn may safely borrow the
// caller's stack).
//
// Cancellation: run() takes an optional CancelToken.  Once it reads
// cancelled, participants stop invoking fn — remaining chunks are still
// claimed (so the launch drains and joins normally) but each skipped chunk
// records a BudgetExhaustedError, and the lowest-block one is rethrown on
// the caller exactly like a kernel exception.  Blocks already inside fn run
// to completion; fn observes cancellation through its own checkpoints.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace deco::util {

class CancelToken;

class WorkStealingPool {
 public:
  /// What one launch did — occupancy and steal accounting for observability.
  struct LaunchStats {
    std::size_t blocks = 0;        ///< n of the launch
    std::size_t chunks = 0;        ///< front-of-deque chunk claims
    std::size_t steals = 0;        ///< successful back-half range steals
    std::size_t participants = 0;  ///< participants that ran >= 1 block
  };

  /// Creates `threads` workers (0 = hardware_concurrency, min 1).  The
  /// calling thread of run() always participates too, so a launch executes
  /// on up to size() + 1 threads.
  explicit WorkStealingPool(std::size_t threads = 0);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  /// Worker threads plus the caller; the maximum `participant` argument to
  /// fn is participant_count() - 1.
  std::size_t participant_count() const { return workers_.size() + 1; }

  /// Runs fn(begin, end, participant) until every index in [0, n) has been
  /// covered exactly once, claiming `chunk` indices (>= 1) per deque access.
  /// fn must be safe to call concurrently from participant_count() threads;
  /// `participant` is a stable thread index in [0, participant_count()),
  /// usable for per-thread scratch.  Blocks until the whole range completed;
  /// rethrows the pending exception of the lowest-indexed failed chunk.
  /// Launches that fit a single chunk (n <= chunk) run inline on the caller
  /// (as its own participant id) without waking the pool.
  /// If `cancel` is non-null it is polled between chunk claims; a cancelled
  /// launch rethrows BudgetExhaustedError for its lowest skipped block.
  LaunchStats run(std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn,
                  const CancelToken* cancel = nullptr);

 private:
  // One participant's deque: the remaining index range packed begin<<32|end.
  // Padded to a cache line so owner claims and thief CASes do not false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> range{0};
    std::atomic<std::size_t> chunks{0};
    std::atomic<std::size_t> steals{0};
    std::atomic<bool> ran{false};
  };

  void worker_loop(std::size_t id);
  void participate(std::size_t participant);
  void execute(std::size_t begin, std::size_t end, std::size_t participant);

  std::vector<std::thread> workers_;
  std::vector<Slot> slots_;  // participant_count() entries, reused per launch

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;   // bumped once per launch
  std::size_t workers_done_ = 0;   // workers finished with current generation
  bool stopping_ = false;

  // Per-launch job state (written by run() before the generation bump).
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn_ =
      nullptr;
  const CancelToken* cancel_ = nullptr;
  std::size_t job_blocks_ = 0;
  std::size_t job_chunk_ = 1;
  std::atomic<std::size_t> blocks_done_{0};

  // First-failure capture, "first" = lowest block index of a throwing chunk.
  std::mutex error_mutex_;
  std::size_t error_block_ = 0;
  std::exception_ptr error_;
};

}  // namespace deco::util
