#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace deco::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::to_string() const {
  std::size_t cols = header_.size();
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace deco::util
