// Deterministic pseudo-random number generation for the Deco reproduction.
//
// All stochastic behaviour in the repository (cloud performance dynamics,
// Monte Carlo inference, workload generation) flows through Rng so that
// experiments are reproducible from a single seed.  The generator is
// xoshiro256** (Blackman & Vigna), seeded through splitmix64, with jump()
// support so that parallel Monte Carlo lanes can own non-overlapping
// subsequences of a common stream.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace deco::util {

/// xoshiro256** PRNG.  Satisfies std::uniform_random_bit_generator so it can
/// be used with <random> distributions, although the repository's own
/// distribution code (distributions.hpp) is preferred in hot paths.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    auto wide = static_cast<unsigned __int128>(operator()()) * n;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Advances the stream by 2^128 steps; used to derive per-lane streams.
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        operator()();
      }
    }
    state_ = acc;
  }

  /// Returns an independent generator: a copy jumped `lane + 1` times.
  Rng fork(unsigned lane) const {
    Rng child = *this;
    for (unsigned i = 0; i <= lane; ++i) child.jump();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) {
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace deco::util
