#include "util/xml.hpp"

#include <cctype>

namespace deco::util {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  XmlParseResult run() {
    XmlParseResult result;
    skip_prolog();
    auto root = parse_element();
    if (!root) {
      result.error = XmlParseError{pos_, error_.empty() ? "no root element" : error_};
      return result;
    }
    result.root = std::move(root);
    return result;
  }

 private:
  bool eof() const { return pos_ >= input_.size(); }
  char peek() const { return input_[pos_]; }
  bool starts_with(std::string_view s) const {
    return input_.substr(pos_, s.size()) == s;
  }

  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
  }

  bool skip_until(std::string_view terminator) {
    const auto found = input_.find(terminator, pos_);
    if (found == std::string_view::npos) return false;
    pos_ = found + terminator.size();
    return true;
  }

  void skip_prolog() {
    for (;;) {
      skip_ws();
      if (starts_with("<?")) {
        if (!skip_until("?>")) { fail("unterminated processing instruction"); return; }
      } else if (starts_with("<!--")) {
        if (!skip_until("-->")) { fail("unterminated comment"); return; }
      } else if (starts_with("<!DOCTYPE")) {
        if (!skip_until(">")) { fail("unterminated DOCTYPE"); return; }
      } else {
        return;
      }
    }
  }

  void fail(std::string msg) {
    if (error_.empty()) error_ = std::move(msg);
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!eof()) {
      const char c = peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == ':' || c == '.') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const auto end = raw.find(';', i);
      if (end == std::string_view::npos) {
        out.push_back('&');
        continue;
      }
      const std::string_view entity = raw.substr(i + 1, end - i - 1);
      if (entity == "amp") out.push_back('&');
      else if (entity == "lt") out.push_back('<');
      else if (entity == "gt") out.push_back('>');
      else if (entity == "quot") out.push_back('"');
      else if (entity == "apos") out.push_back('\'');
      else if (!entity.empty() && entity[0] == '#') {
        const int base = entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X') ? 16 : 10;
        const auto digits = base == 16 ? entity.substr(2) : entity.substr(1);
        long code = 0;
        for (char c : digits) {
          code = code * base + (std::isdigit(static_cast<unsigned char>(c))
                                    ? c - '0'
                                    : std::tolower(c) - 'a' + 10);
        }
        if (code > 0 && code < 128) out.push_back(static_cast<char>(code));
      } else {
        out.append("&").append(entity).append(";");
      }
      i = end;
    }
    return out;
  }

  bool parse_attributes(XmlNode& node) {
    for (;;) {
      skip_ws();
      if (eof()) { fail("unexpected end inside tag"); return false; }
      if (peek() == '>' || peek() == '/') return true;
      const std::string key = parse_name();
      if (key.empty()) { fail("expected attribute name"); return false; }
      skip_ws();
      if (eof() || peek() != '=') { fail("expected '=' after attribute name"); return false; }
      ++pos_;
      skip_ws();
      if (eof() || (peek() != '"' && peek() != '\'')) {
        fail("expected quoted attribute value");
        return false;
      }
      const char quote = peek();
      ++pos_;
      const auto end = input_.find(quote, pos_);
      if (end == std::string_view::npos) { fail("unterminated attribute value"); return false; }
      node.attributes[key] = decode_entities(input_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }
  }

  std::unique_ptr<XmlNode> parse_element() {
    skip_ws();
    if (eof() || peek() != '<') { fail("expected '<'"); return nullptr; }
    ++pos_;
    auto node = std::make_unique<XmlNode>();
    node->name = parse_name();
    if (node->name.empty()) { fail("expected element name"); return nullptr; }
    if (!parse_attributes(*node)) return nullptr;
    if (peek() == '/') {
      ++pos_;
      if (eof() || peek() != '>') { fail("malformed self-closing tag"); return nullptr; }
      ++pos_;
      return node;
    }
    ++pos_;  // consume '>'
    if (!parse_content(*node)) return nullptr;
    return node;
  }

  bool parse_content(XmlNode& node) {
    for (;;) {
      const std::size_t text_start = pos_;
      while (!eof() && peek() != '<') ++pos_;
      if (pos_ > text_start) {
        node.text += decode_entities(input_.substr(text_start, pos_ - text_start));
      }
      if (eof()) { fail("unexpected end; missing closing tag for <" + node.name + ">"); return false; }
      if (starts_with("<!--")) {
        if (!skip_until("-->")) { fail("unterminated comment"); return false; }
        continue;
      }
      if (starts_with("<![CDATA[")) {
        pos_ += 9;
        const auto end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) { fail("unterminated CDATA"); return false; }
        node.text += std::string(input_.substr(pos_, end - pos_));
        pos_ = end + 3;
        continue;
      }
      if (starts_with("<?")) {
        if (!skip_until("?>")) { fail("unterminated processing instruction"); return false; }
        continue;
      }
      if (starts_with("</")) {
        pos_ += 2;
        const std::string closing = parse_name();
        skip_ws();
        if (eof() || peek() != '>') { fail("malformed closing tag"); return false; }
        ++pos_;
        if (closing != node.name) {
          fail("mismatched closing tag </" + closing + "> for <" + node.name + ">");
          return false;
        }
        return true;
      }
      auto child = parse_element();
      if (!child) return false;
      node.children.push_back(std::move(child));
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::optional<std::string> XmlNode::attr(std::string_view key) const {
  const auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return std::nullopt;
  return it->second;
}

std::string XmlNode::attr_or(std::string_view key, std::string fallback) const {
  return attr(key).value_or(std::move(fallback));
}

const XmlNode* XmlNode::child(std::string_view tag) const {
  for (const auto& c : children) {
    if (c->name == tag) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(std::string_view tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == tag) out.push_back(c.get());
  }
  return out;
}

XmlParseResult parse_xml(std::string_view input) { return Parser(input).run(); }

std::string xml_escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace deco::util
