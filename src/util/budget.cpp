#include "util/budget.hpp"

#include "obs/obs.hpp"

namespace deco::util {

const char* to_string(BudgetTrigger trigger) {
  switch (trigger) {
    case BudgetTrigger::kNone:
      return "none";
    case BudgetTrigger::kCancel:
      return "cancel";
    case BudgetTrigger::kWallClock:
      return "wall_clock";
    case BudgetTrigger::kMemory:
      return "memory";
  }
  return "unknown";
}

BudgetExhaustedError::BudgetExhaustedError(BudgetTrigger trigger)
    : std::runtime_error(std::string("solve budget exhausted: ") +
                         to_string(trigger)),
      trigger_(trigger) {}

BudgetTracker::BudgetTracker(const SolveBudget& budget)
    : budget_(budget),
      armed_(true),
      start_(std::chrono::steady_clock::now()) {}

bool BudgetTracker::should_stop() noexcept {
  if (!armed_) return false;
  if (exhausted()) return true;
  if (budget_.cancel != nullptr && budget_.cancel->cancelled()) {
    fire(BudgetTrigger::kCancel);
    return true;
  }
  if (budget_.wall_ms > 0.0 && elapsed_ms() >= budget_.wall_ms) {
    fire(BudgetTrigger::kWallClock);
    return true;
  }
  return false;
}

void BudgetTracker::fire(BudgetTrigger trigger) noexcept {
  if (trigger == BudgetTrigger::kNone) return;
  int expected = static_cast<int>(BudgetTrigger::kNone);
  if (!trigger_.compare_exchange_strong(expected, static_cast<int>(trigger),
                                        std::memory_order_acq_rel)) {
    return;  // an earlier trigger already won
  }
  launch_cancel_.cancel();
  switch (trigger) {
    case BudgetTrigger::kCancel:
      DECO_OBS_COUNTER_ADD("budget.cancelled", 1);
      break;
    case BudgetTrigger::kWallClock:
      DECO_OBS_COUNTER_ADD("budget.wall_exhausted", 1);
      break;
    case BudgetTrigger::kMemory:
      DECO_OBS_COUNTER_ADD("budget.memory_exhausted", 1);
      break;
    case BudgetTrigger::kNone:
      break;
  }
  DECO_OBS_GAUGE_SET("budget.bytes_at_cutoff",
                     static_cast<double>(total_bytes()));
}

double BudgetTracker::elapsed_ms() const {
  if (!armed_) return 0.0;
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

std::size_t BudgetTracker::total_bytes() const noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kComponents; ++i) {
    total += bytes_[i].load(std::memory_order_relaxed);
  }
  return total;
}

SolveReport BudgetTracker::report(std::size_t states) const {
  SolveReport report;
  report.budget_exhausted = exhausted();
  report.trigger = trigger();
  report.states_at_cutoff = states;
  report.bytes_at_cutoff = total_bytes();
  report.elapsed_ms = elapsed_ms();
  return report;
}

}  // namespace deco::util
