// Fixed-bin histograms — the probabilistic currency of Deco.
//
// Section 4.2 of the paper: "For each dynamic performance component (i.e.,
// network and I/O), we discretize the probabilistic performance distributions
// as histograms, and store the histograms in the metadata store."  The
// probabilistic IR then attaches one bin probability p_j to each candidate
// value, and the Monte Carlo kernels draw from these bins.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace deco::util {

/// Equal-width histogram with normalized bin masses.
class Histogram {
 public:
  Histogram() = default;

  /// Builds from raw samples with `bins` equal-width bins spanning
  /// [min(sample), max(sample)].  Degenerate samples collapse to one bin.
  static Histogram from_samples(std::span<const double> samples,
                                std::size_t bins);

  /// Builds from explicit bin centers and (possibly unnormalized) masses.
  static Histogram from_bins(std::vector<double> centers,
                             std::vector<double> masses);

  std::size_t bin_count() const { return centers_.size(); }
  bool empty() const { return centers_.empty(); }

  std::span<const double> centers() const { return centers_; }
  std::span<const double> masses() const { return masses_; }
  /// Cumulative masses; cdf().back() == 1 for a non-empty histogram.
  std::span<const double> cdf() const { return cdf_; }

  /// Mean of the discretized distribution.
  double mean() const;
  /// Variance of the discretized distribution.
  double variance() const;
  /// Value below which `q` percent of the mass lies (q in [0,100]).
  double percentile(double q) const;

  /// Draws a bin center by inverse-CDF sampling.  O(log bins).
  double sample(Rng& rng) const;

  /// P(X <= x) of the discretized distribution.
  double prob_le(double x) const;

  /// Scales every bin center by `factor` (e.g. bytes -> seconds conversion).
  Histogram scaled(double factor) const;

 private:
  std::vector<double> centers_;  // ascending
  std::vector<double> masses_;   // sums to 1
  std::vector<double> cdf_;      // running sum of masses_
};

}  // namespace deco::util
