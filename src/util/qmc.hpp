// Low-discrepancy point sets for quasi-Monte-Carlo plan evaluation.
//
// The adaptive evaluator (Tier 1 of the estimator hierarchy, see
// docs/performance.md) replaces independent uniforms with a randomly-shifted
// Kronecker (Weyl) sequence: point j of dimension d is
//
//   u_{j,d} = frac(shift_d + (j + 1) * alpha_d),   alpha_d = frac(sqrt(p_d))
//
// where p_d is the d-th prime.  Square roots of distinct primes are linearly
// independent over the rationals, so (alpha_0 .. alpha_{D-1}) generates an
// equidistributed sequence in [0,1)^D at any dimension count — unlike Sobol,
// no direction-number tables are needed, which matters because the evaluator
// needs one dimension per workflow task (hundreds to thousands).  The
// Cranley-Patterson rotation (shift_d, derived deterministically from the
// evaluator seed) makes the estimate unbiased over the shift distribution
// while preserving the sequence's star discrepancy.  All plans in a run share
// the one rotated sequence — common random numbers, so plan *differences*
// (the only thing the search ranks on) carry less noise than independent
// streams would.
//
// Points are a pure function of (seed, dimension, index): the adaptive
// evaluator draws the same worlds regardless of backend, worker count, batch
// composition or early-stop checkpointing, which is what makes QMC early
// stopping bit-identical across serial and vgpu execution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace deco::util {

/// Inverse standard-normal CDF (Acklam's rational approximation, ~1e-9
/// relative error; exact at the tails' representable range).  Maps a
/// low-discrepancy uniform to a normal draw monotonically — the smooth
/// transport QMC needs, unlike Box-Muller or rejection sampling.
double normal_quantile(double p);

/// One randomly-shifted Kronecker sequence over `dimensions` coordinates.
/// Construction is O(dimensions) (a prime sieve plus one hash per shift);
/// point generation is one fused multiply-add + frac per coordinate.
class KroneckerSequence {
 public:
  KroneckerSequence() = default;
  KroneckerSequence(std::size_t dimensions, std::uint64_t seed);

  std::size_t dimensions() const { return alpha_.size(); }

  /// Coordinate `dim` of point `index` in [0, 1).
  double point(std::size_t index, std::size_t dim) const {
    const double x =
        shift_[dim] + static_cast<double>(index + 1) * alpha_[dim];
    return x - static_cast<double>(static_cast<std::uint64_t>(x));
  }

 private:
  std::vector<double> alpha_;  ///< frac(sqrt(prime_d)) per dimension
  std::vector<double> shift_;  ///< Cranley-Patterson rotation per dimension
};

}  // namespace deco::util
