// A small fixed-size thread pool with a parallel_for helper.
//
// This is the execution substrate of the "virtual GPU" backend (src/vgpu):
// thread-pool workers play the role of streaming multiprocessors executing
// thread blocks.  The pool follows CP.* guidelines: no detached threads, all
// joins in the destructor, tasks communicate only through futures/atomics.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace deco::util {

class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future reports completion/exceptions.
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) split into roughly size() contiguous chunks,
  /// blocking until all complete.  fn must be safe to call concurrently.
  /// If fn throws, the remaining indices of that chunk are skipped, every
  /// other chunk still runs to completion before the join returns, and the
  /// exception of the lowest-indexed failed chunk is rethrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(chunk_begin, chunk_end, chunk_index) over contiguous chunks.
  /// Always joins every chunk (fn may safely borrow the caller's stack even
  /// on failure), then rethrows the first — lowest chunk index — exception.
  void parallel_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace deco::util
