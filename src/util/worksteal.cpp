#include "util/worksteal.hpp"

#include <algorithm>
#include <limits>

#include "util/budget.hpp"

namespace deco::util {

namespace {

constexpr std::uint64_t pack(std::size_t begin, std::size_t end) {
  return (static_cast<std::uint64_t>(begin) << 32) |
         static_cast<std::uint64_t>(end);
}

constexpr std::size_t range_begin(std::uint64_t r) {
  return static_cast<std::size_t>(r >> 32);
}

constexpr std::size_t range_end(std::uint64_t r) {
  return static_cast<std::size_t>(r & 0xFFFFFFFFULL);
}

/// Owner side: claims up to `chunk` indices off the front of the deque.
bool claim_front(std::atomic<std::uint64_t>& range, std::size_t chunk,
                 std::size_t& begin, std::size_t& end) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t b = range_begin(cur);
    const std::size_t e = range_end(cur);
    if (b >= e) return false;
    const std::size_t take = std::min(e, b + chunk);
    if (range.compare_exchange_weak(cur, pack(take, e),
                                    std::memory_order_acq_rel)) {
      begin = b;
      end = take;
      return true;
    }
  }
}

/// Thief side: splits off the back half of a victim's remaining range.
bool steal_back(std::atomic<std::uint64_t>& range, std::size_t& begin,
                std::size_t& end) {
  std::uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    const std::size_t b = range_begin(cur);
    const std::size_t e = range_end(cur);
    // A single remaining block is the owner's: "stealing" it would split off
    // an empty range and make thieves spin on successful-but-empty steals.
    if (b >= e || e - b < 2) return false;
    const std::size_t mid = b + (e - b + 1) / 2;  // victim keeps [b, mid)
    if (range.compare_exchange_weak(cur, pack(b, mid),
                                    std::memory_order_acq_rel)) {
      begin = mid;
      end = e;
      return true;
    }
  }
}

}  // namespace

WorkStealingPool::WorkStealingPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  slots_ = std::vector<Slot>(threads + 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkStealingPool::worker_loop(std::size_t id) {
  // Worker `id` owns slot `id`; the caller of run() owns the last slot.
  std::uint64_t seen = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    lock.unlock();
    participate(id);
    lock.lock();
    ++workers_done_;
    done_cv_.notify_all();
  }
}

void WorkStealingPool::execute(std::size_t begin, std::size_t end,
                               std::size_t participant) {
  try {
    // Polled between chunk claims: a cancelled launch stops invoking fn but
    // still drains every block so run() joins normally; the skipped chunk's
    // BudgetExhaustedError rides the lowest-block rethrow contract.
    if (cancel_ != nullptr && cancel_->cancelled()) {
      throw BudgetExhaustedError(BudgetTrigger::kCancel);
    }
    (*fn_)(begin, end, participant);
  } catch (...) {
    std::lock_guard guard(error_mutex_);
    if (!error_ || begin < error_block_) {
      error_block_ = begin;
      error_ = std::current_exception();
    }
  }
  const std::size_t done =
      blocks_done_.fetch_add(end - begin, std::memory_order_acq_rel) +
      (end - begin);
  if (done >= job_blocks_) {
    // Last block of the launch: wake the caller, which may be parked in
    // run() waiting for a straggler chunk after its own deque ran dry.
    { std::lock_guard lock(mutex_); }
    done_cv_.notify_all();
  }
}

void WorkStealingPool::participate(std::size_t participant) {
  Slot& own = slots_[participant];
  const std::size_t chunk = job_chunk_;
  const std::size_t total = job_blocks_;
  std::size_t begin = 0;
  std::size_t end = 0;
  // After this many consecutive empty scans the participant gives up instead
  // of spinning: every remaining block is mid-execution on another thread (a
  // deque owner never leaves with a nonempty deque), so there is nothing
  // left to help with.  A brief retry window is kept because a thief
  // installing a freshly stolen range is invisible for a moment.
  constexpr int kDryScanLimit = 16;
  int dry_scans = 0;
  while (blocks_done_.load(std::memory_order_acquire) < total) {
    if (claim_front(own.range, chunk, begin, end)) {
      own.chunks.fetch_add(1, std::memory_order_relaxed);
      own.ran.store(true, std::memory_order_relaxed);
      execute(begin, end, participant);
      dry_scans = 0;
      continue;
    }
    // Own deque dry: scan victims round-robin from the next participant and
    // install the largest work we can get as our new deque.
    bool stole = false;
    for (std::size_t v = 1; v < slots_.size(); ++v) {
      Slot& victim = slots_[(participant + v) % slots_.size()];
      if (steal_back(victim.range, begin, end)) {
        own.range.store(pack(begin, end), std::memory_order_release);
        own.steals.fetch_add(1, std::memory_order_relaxed);
        stole = true;
        break;
      }
    }
    if (stole) {
      dry_scans = 0;
      continue;
    }
    if (++dry_scans >= kDryScanLimit) return;
    std::this_thread::yield();
  }
}

WorkStealingPool::LaunchStats WorkStealingPool::run(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    const CancelToken* cancel) {
  LaunchStats stats;
  if (n == 0) return stats;
  stats.blocks = n;
  chunk = std::max<std::size_t>(1, chunk);

  // Single-chunk launches (one plan evaluated mid-search, tiny batches) run
  // on the caller without waking the pool: the wake/join handshake would
  // dwarf the work, and on an oversubscribed host the idle workers' dry
  // scans would steal cycles from the one thread doing the block.
  if (n <= chunk) {
    stats.chunks = 1;
    stats.participants = 1;
    if (cancel != nullptr && cancel->cancelled()) {
      throw BudgetExhaustedError(BudgetTrigger::kCancel);
    }
    fn(0, n, slots_.size() - 1);
    return stats;
  }

  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    cancel_ = cancel;
    job_blocks_ = n;
    job_chunk_ = chunk;
    blocks_done_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    error_ = nullptr;
    error_block_ = std::numeric_limits<std::size_t>::max();
    // Seed every participant's deque with a contiguous share of the range;
    // stealing rebalances from there.
    const std::size_t participants = slots_.size();
    const std::size_t per = n / participants;
    const std::size_t rem = n % participants;
    std::size_t cursor = 0;
    for (std::size_t p = 0; p < participants; ++p) {
      const std::size_t len = per + (p < rem ? 1 : 0);
      slots_[p].range.store(pack(cursor, cursor + len),
                            std::memory_order_relaxed);
      slots_[p].chunks.store(0, std::memory_order_relaxed);
      slots_[p].steals.store(0, std::memory_order_relaxed);
      slots_[p].ran.store(false, std::memory_order_relaxed);
      cursor += len;
    }
    ++generation_;
  }
  start_cv_.notify_all();

  // The caller is the last participant.
  participate(slots_.size() - 1);

  {
    // Wait for every worker to check in *and* every block to land: a worker
    // may leave participate() early once nothing is claimable while the
    // last chunks still execute elsewhere (execute() signals the final
    // block), and conversely all blocks may be done while workers are still
    // between their scan loop and their check-in.
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] {
      return workers_done_ == workers_.size() &&
             blocks_done_.load(std::memory_order_acquire) >= job_blocks_;
    });
  }

  for (const Slot& slot : slots_) {
    stats.chunks += slot.chunks.load(std::memory_order_relaxed);
    stats.steals += slot.steals.load(std::memory_order_relaxed);
    if (slot.ran.load(std::memory_order_relaxed)) ++stats.participants;
  }
  if (error_) std::rethrow_exception(error_);
  return stats;
}

}  // namespace deco::util
