#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace deco::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0;
  const double m = mean(xs);
  double acc = 0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0;
  return *std::max_element(xs.begin(), xs.end());
}

FiveNumberSummary five_number_summary(std::span<const double> xs) {
  FiveNumberSummary s;
  if (xs.empty()) return s;
  s.min = min_of(xs);
  s.q25 = percentile(xs, 25);
  s.median = percentile(xs, 50);
  s.q75 = percentile(xs, 75);
  s.max = max_of(xs);
  return s;
}

std::vector<double> normalized(std::span<const double> xs, double base) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    out[i] = base != 0 ? xs[i] / base : 0;
  return out;
}

double kolmogorov_tail(double t) {
  if (t <= 0) return 1.0;
  // Two-term alternating series is accurate past the 1e-3 level we need.
  double sum = 0;
  for (int k = 1; k <= 100; ++k) {
    const double sign = (k % 2 == 1) ? 1.0 : -1.0;
    const double term = sign * std::exp(-2.0 * k * k * t * t);
    sum += term;
    if (std::abs(term) < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

}  // namespace deco::util
