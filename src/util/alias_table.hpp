// Walker/Vose alias method: O(1) sampling from a discrete distribution.
//
// The Monte Carlo kernels draw one histogram bin per task per lane; with the
// inverse-CDF search that is O(log bins) plus a data-dependent branch per
// probe.  The alias table trades a one-time O(bins) build (done at staging
// time, amortized across every lane of every batch by the evaluator's
// staging cache) for a single comparison per draw: split the unit interval
// into `n` equal columns, each holding its own bin's mass plus an "alias"
// bin donating the remainder.  A draw maps u in [0,1) to a column and a
// fractional coordinate; the fraction picks the column's own bin or its
// alias.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace deco::util {

/// Immutable alias table over bin indices [0, size()).
class AliasTable {
 public:
  AliasTable() = default;

  /// Builds from (possibly unnormalized) non-negative weights.  Negative
  /// weights are clamped to zero; an all-zero weight vector degrades to the
  /// uniform distribution over all bins.
  explicit AliasTable(std::span<const double> weights);

  std::size_t size() const { return prob_.size(); }
  bool empty() const { return prob_.empty(); }

  /// Stay-probability per column (the fraction of the column owned by its
  /// own bin).  Exposed so callers can pack tables into flat SoA arrays.
  std::span<const double> prob() const { return prob_; }
  /// Alias bin per column (the bin owning the rest of the column).
  std::span<const std::uint32_t> alias() const { return alias_; }

  /// Maps one uniform draw u in [0,1) to a bin index.  O(1).
  std::size_t pick(double u) const {
    const double scaled = u * static_cast<double>(prob_.size());
    std::size_t col = static_cast<std::size_t>(scaled);
    if (col >= prob_.size()) col = prob_.size() - 1;  // u ~ 1 after rounding
    return (scaled - static_cast<double>(col)) < prob_[col] ? col
                                                            : alias_[col];
  }

  /// Draws a bin index using one uniform variate from `rng`.  O(1).
  std::size_t sample(Rng& rng) const { return pick(rng.uniform()); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace deco::util
