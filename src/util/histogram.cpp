#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace deco::util {

Histogram Histogram::from_samples(std::span<const double> samples,
                                  std::size_t bins) {
  Histogram h;
  if (samples.empty() || bins == 0) return h;
  const auto [mn_it, mx_it] = std::minmax_element(samples.begin(), samples.end());
  const double mn = *mn_it;
  const double mx = *mx_it;
  if (mx <= mn) {
    h.centers_ = {mn};
    h.masses_ = {1.0};
    h.cdf_ = {1.0};
    return h;
  }
  const double width = (mx - mn) / static_cast<double>(bins);
  h.centers_.resize(bins);
  h.masses_.assign(bins, 0.0);
  for (std::size_t i = 0; i < bins; ++i)
    h.centers_[i] = mn + (static_cast<double>(i) + 0.5) * width;
  for (double x : samples) {
    auto idx = static_cast<std::size_t>((x - mn) / width);
    idx = std::min(idx, bins - 1);
    h.masses_[idx] += 1.0;
  }
  const double total = static_cast<double>(samples.size());
  for (double& m : h.masses_) m /= total;
  h.cdf_.resize(bins);
  std::partial_sum(h.masses_.begin(), h.masses_.end(), h.cdf_.begin());
  h.cdf_.back() = 1.0;
  return h;
}

Histogram Histogram::from_bins(std::vector<double> centers,
                               std::vector<double> masses) {
  Histogram h;
  if (centers.empty() || centers.size() != masses.size()) return h;
  // Keep centers ascending; sort pairs if needed.
  std::vector<std::size_t> order(centers.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return centers[a] < centers[b]; });
  h.centers_.reserve(centers.size());
  h.masses_.reserve(masses.size());
  double total = 0;
  for (std::size_t i : order) {
    h.centers_.push_back(centers[i]);
    h.masses_.push_back(std::max(masses[i], 0.0));
    total += h.masses_.back();
  }
  if (total <= 0) {
    h.masses_.assign(h.masses_.size(), 1.0 / static_cast<double>(h.masses_.size()));
  } else {
    for (double& m : h.masses_) m /= total;
  }
  h.cdf_.resize(h.masses_.size());
  std::partial_sum(h.masses_.begin(), h.masses_.end(), h.cdf_.begin());
  h.cdf_.back() = 1.0;
  return h;
}

double Histogram::mean() const {
  double acc = 0;
  for (std::size_t i = 0; i < centers_.size(); ++i)
    acc += centers_[i] * masses_[i];
  return acc;
}

double Histogram::variance() const {
  const double m = mean();
  double acc = 0;
  for (std::size_t i = 0; i < centers_.size(); ++i)
    acc += masses_[i] * (centers_[i] - m) * (centers_[i] - m);
  return acc;
}

double Histogram::percentile(double q) const {
  if (empty()) return 0;
  const double target = std::clamp(q, 0.0, 100.0) / 100.0;
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), target);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(centers_.size()) - 1));
  return centers_[idx];
}

double Histogram::sample(Rng& rng) const {
  if (empty()) return 0;
  const double u = rng.uniform();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(centers_.size()) - 1));
  return centers_[idx];
}

double Histogram::prob_le(double x) const {
  double acc = 0;
  for (std::size_t i = 0; i < centers_.size() && centers_[i] <= x; ++i)
    acc += masses_[i];
  return acc;
}

Histogram Histogram::scaled(double factor) const {
  Histogram h = *this;
  for (double& c : h.centers_) c *= factor;
  if (factor < 0) {
    std::reverse(h.centers_.begin(), h.centers_.end());
    std::reverse(h.masses_.begin(), h.masses_.end());
    h.cdf_.resize(h.masses_.size());
    std::partial_sum(h.masses_.begin(), h.masses_.end(), h.cdf_.begin());
  }
  return h;
}

}  // namespace deco::util
