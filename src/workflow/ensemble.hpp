// Workflow ensembles (Section 3.2, following Malawski et al. SC'12).
//
// An ensemble is a prioritized group of structurally similar workflows with
// per-workflow deadlines and an ensemble-wide budget.  Five ensemble types
// control how workflow sizes relate to priorities: constant (all the same
// size), uniform sorted/unsorted (sizes uniform over the size set, sorted =
// largest first by priority), and Pareto sorted/unsorted (heavy-tailed sizes).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "workflow/dag.hpp"
#include "workflow/generators.hpp"

namespace deco::workflow {

enum class EnsembleType {
  kConstant,
  kUniformSorted,
  kUniformUnsorted,
  kParetoSorted,
  kParetoUnsorted,
};

std::string to_string(EnsembleType type);
inline constexpr EnsembleType kAllEnsembleTypes[] = {
    EnsembleType::kConstant,        EnsembleType::kUniformSorted,
    EnsembleType::kUniformUnsorted, EnsembleType::kParetoSorted,
    EnsembleType::kParetoUnsorted,
};

struct EnsembleMember {
  Workflow workflow;
  int priority = 0;        ///< 0 is highest; score contribution is 2^-priority
  double deadline_s = 0;   ///< per-workflow deadline D_w
  double deadline_q = 96;  ///< probabilistic deadline percentile p_w
};

struct Ensemble {
  std::string name;
  EnsembleType type = EnsembleType::kConstant;
  std::vector<EnsembleMember> members;
  double budget = 0;  ///< ensemble-wide budget B

  /// Score of a completed set: sum of 2^-priority over completed members
  /// (Eq. 4 of the paper).
  double score(const std::vector<bool>& completed) const;
  /// Score if every member completes.
  double max_score() const;
};

struct EnsembleOptions {
  AppType app = AppType::kLigo;
  EnsembleType type = EnsembleType::kUniformUnsorted;
  std::size_t num_workflows = 30;             ///< paper: 30-50
  std::vector<std::size_t> sizes = {20, 100, 1000};  ///< candidate task counts
};

/// Generates an ensemble; priorities are 0..n-1.  For "sorted" types the
/// largest workflows receive the highest priorities (smallest priority
/// number); for "unsorted" priorities are assigned randomly.
Ensemble make_ensemble(const EnsembleOptions& options, util::Rng& rng);

}  // namespace deco::workflow
