#include "workflow/dax.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/xml.hpp"

namespace deco::workflow {
namespace {

double parse_double(const std::string& s, double fallback) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    return used > 0 ? v : fallback;
  } catch (...) {
    return fallback;
  }
}

}  // namespace

DaxResult parse_dax(std::string_view xml, bool infer_file_edges) {
  const auto parsed = util::parse_xml(xml);
  if (!parsed.ok()) {
    return DaxError{"XML error at offset " +
                    std::to_string(parsed.error ? parsed.error->offset : 0) +
                    ": " + (parsed.error ? parsed.error->message : "unknown")};
  }
  const util::XmlNode& root = *parsed.root;
  if (root.name != "adag") {
    return DaxError{"root element is <" + root.name + ">, expected <adag>"};
  }

  Workflow wf(root.attr_or("name", "workflow"));
  std::map<std::string, TaskId> by_dax_id;
  // file name -> producer tasks / consumer tasks with byte counts
  std::map<std::string, std::vector<std::pair<TaskId, double>>> producers;
  std::map<std::string, std::vector<std::pair<TaskId, double>>> consumers;

  for (const util::XmlNode* job : root.children_named("job")) {
    Task task;
    const auto id = job->attr("id");
    if (!id) return DaxError{"<job> missing id attribute"};
    task.name = *id;
    task.executable = job->attr_or("name", "unknown");
    task.cpu_seconds = parse_double(job->attr_or("runtime", "0"), 0);
    for (const util::XmlNode* uses : job->children_named("uses")) {
      const std::string link = uses->attr_or("link", "");
      const std::string file = uses->attr_or("file", "");
      const double size = parse_double(uses->attr_or("size", "0"), 0);
      if (link == "input") {
        task.input_bytes += size;
      } else if (link == "output") {
        task.output_bytes += size;
      }
      if (file.empty()) continue;
      // Registered after the task id is known, below.
    }
    const TaskId tid = wf.add_task(task);
    if (!by_dax_id.emplace(*id, tid).second) {
      return DaxError{"duplicate job id " + *id};
    }
    for (const util::XmlNode* uses : job->children_named("uses")) {
      const std::string link = uses->attr_or("link", "");
      const std::string file = uses->attr_or("file", "");
      const double size = parse_double(uses->attr_or("size", "0"), 0);
      if (file.empty()) continue;
      if (link == "input") consumers[file].emplace_back(tid, size);
      if (link == "output") producers[file].emplace_back(tid, size);
    }
  }

  std::set<std::pair<TaskId, TaskId>> declared;
  for (const util::XmlNode* child : root.children_named("child")) {
    const auto ref = child->attr("ref");
    if (!ref) return DaxError{"<child> missing ref attribute"};
    const auto child_it = by_dax_id.find(*ref);
    if (child_it == by_dax_id.end()) {
      return DaxError{"<child ref=\"" + *ref + "\"> refers to unknown job"};
    }
    for (const util::XmlNode* parent : child->children_named("parent")) {
      const auto pref = parent->attr("ref");
      if (!pref) return DaxError{"<parent> missing ref attribute"};
      const auto parent_it = by_dax_id.find(*pref);
      if (parent_it == by_dax_id.end()) {
        return DaxError{"<parent ref=\"" + *pref + "\"> refers to unknown job"};
      }
      // Edge bytes: an explicit bytes attribute wins (our writer emits it;
      // Pegasus ignores it); otherwise data flowing through files produced
      // by the parent and consumed by the child.
      double bytes = 0;
      if (const auto explicit_bytes = parent->attr("bytes")) {
        bytes = parse_double(*explicit_bytes, 0);
      } else {
        for (const auto& [file, prods] : producers) {
          bool produced = false;
          for (const auto& [t, sz] : prods) {
            if (t == parent_it->second) produced = true;
          }
          if (!produced) continue;
          for (const auto& [t, sz] : consumers[file]) {
            if (t == child_it->second) bytes += sz;
          }
        }
      }
      wf.add_edge(parent_it->second, child_it->second, bytes);
      declared.emplace(parent_it->second, child_it->second);
    }
  }

  if (infer_file_edges) {
    for (const auto& [file, prods] : producers) {
      const auto cons_it = consumers.find(file);
      if (cons_it == consumers.end()) continue;
      for (const auto& [p, psz] : prods) {
        for (const auto& [c, csz] : cons_it->second) {
          if (p == c) continue;
          if (declared.count({p, c})) continue;
          wf.add_edge(p, c, csz);
          declared.emplace(p, c);
        }
      }
    }
  }

  if (!wf.is_acyclic()) return DaxError{"workflow contains a cycle"};
  return wf;
}

DaxResult load_dax_file(const std::string& path, bool infer_file_edges) {
  std::ifstream in(path);
  if (!in) return DaxError{"cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_dax(buffer.str(), infer_file_edges);
}

std::string to_dax(const Workflow& wf) {
  std::ostringstream os;
  os.precision(17);
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  os << "<adag name=\"" << util::xml_escape(wf.name()) << "\" jobCount=\""
     << wf.task_count() << "\">\n";
  for (TaskId i = 0; i < wf.task_count(); ++i) {
    const Task& t = wf.task(i);
    os << "  <job id=\"" << util::xml_escape(t.name) << "\" name=\""
       << util::xml_escape(t.executable) << "\" runtime=\"" << t.cpu_seconds
       << "\">\n";
    // The DAG model aggregates file sizes; emit one synthetic file per
    // direction so a round trip preserves the totals.
    if (t.input_bytes > 0) {
      os << "    <uses file=\"" << util::xml_escape(t.name)
         << ".in\" link=\"input\" size=\"" << t.input_bytes << "\"/>\n";
    }
    if (t.output_bytes > 0) {
      os << "    <uses file=\"" << util::xml_escape(t.name)
         << ".out\" link=\"output\" size=\"" << t.output_bytes << "\"/>\n";
    }
    os << "  </job>\n";
  }
  for (TaskId i = 0; i < wf.task_count(); ++i) {
    if (wf.parents(i).empty()) continue;
    os << "  <child ref=\"" << util::xml_escape(wf.task(i).name) << "\">\n";
    for (TaskId p : wf.parents(i)) {
      double bytes = 0;
      for (const Edge& e : wf.edges()) {
        if (e.parent == p && e.child == i) bytes = e.bytes;
      }
      os << "    <parent ref=\"" << util::xml_escape(wf.task(p).name)
         << "\" bytes=\"" << bytes << "\"/>\n";
    }
    os << "  </child>\n";
  }
  os << "</adag>\n";
  return os.str();
}

bool save_dax_file(const Workflow& wf, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << to_dax(wf);
  return static_cast<bool>(out);
}

}  // namespace deco::workflow
