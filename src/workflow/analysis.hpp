// Structural analysis over workflow DAGs: critical paths, levels, longest
// paths under arbitrary task weights.  The critical path drives the paper's
// makespan formulation (Eq. 3) and the Monte Carlo evaluator takes the
// longest path per sampled realization.
#pragma once

#include <span>
#include <vector>

#include "workflow/dag.hpp"

namespace deco::workflow {

struct CriticalPath {
  std::vector<TaskId> tasks;  ///< in execution order
  double length = 0;          ///< sum of weights along the path
};

/// Longest path through the DAG where task i costs weights[i].
/// weights.size() must equal wf.task_count().
CriticalPath critical_path(const Workflow& wf, std::span<const double> weights);

/// Longest-path *length* only; the hot path used inside Monte Carlo kernels.
double longest_path_length(const Workflow& wf, std::span<const double> weights,
                           std::span<const TaskId> topo_order);

/// Level of each task: roots are level 0, child level = 1 + max parent level.
std::vector<int> levels(const Workflow& wf);

/// Number of tasks at each level; the workflow's parallelism profile.
std::vector<std::size_t> width_profile(const Workflow& wf);

}  // namespace deco::workflow
