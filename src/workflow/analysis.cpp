#include "workflow/analysis.hpp"

#include <algorithm>

namespace deco::workflow {

CriticalPath critical_path(const Workflow& wf,
                           std::span<const double> weights) {
  CriticalPath cp;
  const auto topo = wf.topological_order();
  if (!topo || wf.task_count() == 0) return cp;

  std::vector<double> dist(wf.task_count(), 0);
  std::vector<TaskId> pred(wf.task_count(), kInvalidTask);
  for (TaskId id : *topo) {
    dist[id] = weights[id];
    for (TaskId p : wf.parents(id)) {
      if (dist[p] + weights[id] > dist[id]) {
        dist[id] = dist[p] + weights[id];
        pred[id] = p;
      }
    }
  }
  TaskId tail = 0;
  for (TaskId i = 1; i < wf.task_count(); ++i) {
    if (dist[i] > dist[tail]) tail = i;
  }
  cp.length = dist[tail];
  for (TaskId at = tail; at != kInvalidTask; at = pred[at]) {
    cp.tasks.push_back(at);
  }
  std::reverse(cp.tasks.begin(), cp.tasks.end());
  return cp;
}

double longest_path_length(const Workflow& wf, std::span<const double> weights,
                           std::span<const TaskId> topo_order) {
  if (wf.task_count() == 0) return 0;
  std::vector<double> dist(wf.task_count(), 0);
  double best = 0;
  for (TaskId id : topo_order) {
    double d = weights[id];
    for (TaskId p : wf.parents(id)) d = std::max(d, dist[p] + weights[id]);
    dist[id] = d;
    best = std::max(best, d);
  }
  return best;
}

std::vector<int> levels(const Workflow& wf) {
  std::vector<int> lv(wf.task_count(), 0);
  const auto topo = wf.topological_order();
  if (!topo) return lv;
  for (TaskId id : *topo) {
    for (TaskId p : wf.parents(id)) lv[id] = std::max(lv[id], lv[p] + 1);
  }
  return lv;
}

std::vector<std::size_t> width_profile(const Workflow& wf) {
  const auto lv = levels(wf);
  std::vector<std::size_t> widths;
  for (int l : lv) {
    const auto idx = static_cast<std::size_t>(l);
    if (idx >= widths.size()) widths.resize(idx + 1, 0);
    ++widths[idx];
  }
  return widths;
}

}  // namespace deco::workflow
