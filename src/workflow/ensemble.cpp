#include "workflow/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/distributions.hpp"

namespace deco::workflow {

std::string to_string(EnsembleType type) {
  switch (type) {
    case EnsembleType::kConstant: return "Constant";
    case EnsembleType::kUniformSorted: return "UniformSorted";
    case EnsembleType::kUniformUnsorted: return "UniformUnsorted";
    case EnsembleType::kParetoSorted: return "ParetoSorted";
    case EnsembleType::kParetoUnsorted: return "ParetoUnsorted";
  }
  return "Unknown";
}

double Ensemble::score(const std::vector<bool>& completed) const {
  double acc = 0;
  for (std::size_t i = 0; i < members.size() && i < completed.size(); ++i) {
    if (completed[i]) acc += std::pow(2.0, -members[i].priority);
  }
  return acc;
}

double Ensemble::max_score() const {
  double acc = 0;
  for (const auto& m : members) acc += std::pow(2.0, -m.priority);
  return acc;
}

Ensemble make_ensemble(const EnsembleOptions& options, util::Rng& rng) {
  Ensemble ensemble;
  ensemble.type = options.type;
  ensemble.name = to_string(options.app) + "-" + to_string(options.type);

  const auto& sizes = options.sizes;
  std::vector<std::size_t> chosen(options.num_workflows);
  switch (options.type) {
    case EnsembleType::kConstant:
      // All workflows share the middle size.
      std::fill(chosen.begin(), chosen.end(), sizes[sizes.size() / 2]);
      break;
    case EnsembleType::kUniformSorted:
    case EnsembleType::kUniformUnsorted:
      for (auto& s : chosen) s = sizes[rng.below(sizes.size())];
      break;
    case EnsembleType::kParetoSorted:
    case EnsembleType::kParetoUnsorted: {
      // Heavy-tailed: mostly small workflows, occasionally the largest.
      const util::Pareto pareto{1.0, 1.16};  // 80/20-style tail
      const double max_size = static_cast<double>(sizes.back());
      for (auto& s : chosen) {
        const double draw = pareto.sample(rng) * static_cast<double>(sizes.front());
        const double clamped = std::min(draw, max_size);
        // Snap to the nearest configured size.
        std::size_t best = sizes.front();
        double best_gap = std::abs(clamped - static_cast<double>(best));
        for (std::size_t candidate : sizes) {
          const double gap = std::abs(clamped - static_cast<double>(candidate));
          if (gap < best_gap) {
            best = candidate;
            best_gap = gap;
          }
        }
        s = best;
      }
      break;
    }
  }

  const bool sorted = options.type == EnsembleType::kUniformSorted ||
                      options.type == EnsembleType::kParetoSorted;
  if (sorted) {
    // Highest priority (0) goes to the largest workflow.
    std::sort(chosen.begin(), chosen.end(), std::greater<>());
  }

  ensemble.members.reserve(options.num_workflows);
  for (std::size_t i = 0; i < options.num_workflows; ++i) {
    EnsembleMember member;
    member.workflow = make_workflow(options.app, chosen[i], rng);
    member.workflow.set_name(ensemble.name + "-w" + std::to_string(i));
    member.priority = static_cast<int>(i);
    ensemble.members.push_back(std::move(member));
  }

  if (!sorted && options.type != EnsembleType::kConstant) {
    // Random priority assignment: shuffle priorities across members.
    for (std::size_t i = ensemble.members.size(); i > 1; --i) {
      const std::size_t j = rng.below(i);
      std::swap(ensemble.members[i - 1].priority, ensemble.members[j].priority);
    }
  }
  return ensemble;
}

}  // namespace deco::workflow
