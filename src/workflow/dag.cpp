#include "workflow/dag.hpp"

#include <algorithm>
#include <queue>

namespace deco::workflow {

TaskId Workflow::add_task(Task task) {
  const auto id = static_cast<TaskId>(tasks_.size());
  tasks_.push_back(std::move(task));
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

void Workflow::add_edge(TaskId parent, TaskId child, double bytes) {
  for (auto& e : edges_) {
    if (e.parent == parent && e.child == child) {
      e.bytes += bytes;
      return;
    }
  }
  edges_.push_back(Edge{parent, child, bytes});
  children_[parent].push_back(child);
  parents_[child].push_back(parent);
}

std::vector<TaskId> Workflow::roots() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (parents_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<TaskId> Workflow::leaves() const {
  std::vector<TaskId> out;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (children_[i].empty()) out.push_back(i);
  }
  return out;
}

std::optional<std::vector<TaskId>> Workflow::topological_order() const {
  std::vector<std::size_t> indegree(tasks_.size(), 0);
  for (TaskId i = 0; i < tasks_.size(); ++i) indegree[i] = parents_[i].size();
  std::queue<TaskId> ready;
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (TaskId c : children_[id]) {
      if (--indegree[c] == 0) ready.push(c);
    }
  }
  if (order.size() != tasks_.size()) return std::nullopt;
  return order;
}

double Workflow::total_cpu_seconds() const {
  double acc = 0;
  for (const auto& t : tasks_) acc += t.cpu_seconds;
  return acc;
}

std::optional<TaskId> Workflow::find_task(const std::string& name) const {
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) return i;
  }
  return std::nullopt;
}

}  // namespace deco::workflow
