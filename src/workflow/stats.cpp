#include "workflow/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "workflow/analysis.hpp"

namespace deco::workflow {

WorkflowStats compute_stats(const Workflow& wf) {
  WorkflowStats stats;
  stats.tasks = wf.task_count();
  stats.edges = wf.edge_count();
  stats.roots = wf.roots().size();
  stats.leaves = wf.leaves().size();

  const auto widths = width_profile(wf);
  stats.depth = widths.size();
  for (std::size_t w : widths) stats.max_width = std::max(stats.max_width, w);

  std::vector<double> cpu_weights(wf.task_count());
  for (TaskId t = 0; t < wf.task_count(); ++t) {
    const Task& task = wf.task(t);
    cpu_weights[t] = task.cpu_seconds;
    stats.total_cpu_seconds += task.cpu_seconds;
    stats.total_io_bytes += task.input_bytes + task.output_bytes;
    auto& exe = stats.by_executable[task.executable];
    ++exe.count;
    exe.total_cpu_seconds += task.cpu_seconds;
    exe.total_input_bytes += task.input_bytes;
    exe.total_output_bytes += task.output_bytes;
  }
  for (const Edge& e : wf.edges()) stats.total_edge_bytes += e.bytes;
  stats.critical_path_cpu_s = critical_path(wf, cpu_weights).length;
  return stats;
}

namespace {

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[unit]);
  return buf;
}

}  // namespace

std::string describe(const WorkflowStats& stats, const std::string& name) {
  std::ostringstream os;
  os << name << ": " << stats.tasks << " tasks, " << stats.edges
     << " edges\n";
  os << "  structure: " << stats.roots << " roots, " << stats.leaves
     << " leaves, depth " << stats.depth << ", max width "
     << stats.max_width << "\n";
  os << "  compute: " << static_cast<long long>(stats.total_cpu_seconds)
     << " CPU-seconds total, critical path "
     << static_cast<long long>(stats.critical_path_cpu_s) << " s\n";
  os << "  data: " << human_bytes(stats.total_io_bytes) << " task I/O, "
     << human_bytes(stats.total_edge_bytes) << " over edges\n";
  os << "  task mix:\n";
  for (const auto& [exe, info] : stats.by_executable) {
    os << "    " << exe << " x" << info.count << " ("
       << static_cast<long long>(info.total_cpu_seconds) << " cpu-s, in "
       << human_bytes(info.total_input_bytes) << ", out "
       << human_bytes(info.total_output_bytes) << ")\n";
  }
  return os.str();
}

}  // namespace deco::workflow
