// Workflow DAG model.
//
// A Workflow is a directed acyclic graph of Tasks.  Each task carries the
// runtime profile that the paper's execution-time estimator consumes (Section
// 5.1, citing Yu et al.): reference CPU seconds on a 1-compute-unit machine,
// plus input and output data volumes.  Edges carry the number of bytes the
// child reads from the parent (used for migration cost in follow-the-cost).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace deco::workflow {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

struct Task {
  std::string name;        ///< e.g. "ID01"
  std::string executable;  ///< e.g. "mProjectPP"
  double cpu_seconds = 0;  ///< CPU time on a 1-ECU reference instance
  double input_bytes = 0;  ///< total bytes read (local I/O)
  double output_bytes = 0; ///< total bytes written (local I/O)
};

struct Edge {
  TaskId parent = kInvalidTask;
  TaskId child = kInvalidTask;
  double bytes = 0;  ///< data transferred parent -> child
};

class Workflow {
 public:
  Workflow() = default;
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  TaskId add_task(Task task);
  /// Adds a dependency edge; duplicate edges are merged (bytes accumulate).
  void add_edge(TaskId parent, TaskId child, double bytes = 0);

  std::size_t task_count() const { return tasks_.size(); }
  std::size_t edge_count() const { return edges_.size(); }

  const Task& task(TaskId id) const { return tasks_[id]; }
  Task& task(TaskId id) { return tasks_[id]; }
  const std::vector<Task>& tasks() const { return tasks_; }
  const std::vector<Edge>& edges() const { return edges_; }

  const std::vector<TaskId>& children(TaskId id) const { return children_[id]; }
  const std::vector<TaskId>& parents(TaskId id) const { return parents_[id]; }

  /// Tasks with no parents / no children.
  std::vector<TaskId> roots() const;
  std::vector<TaskId> leaves() const;

  /// Kahn topological order; std::nullopt if the graph has a cycle.
  std::optional<std::vector<TaskId>> topological_order() const;

  bool is_acyclic() const { return topological_order().has_value(); }

  /// Sum of cpu_seconds over all tasks.
  double total_cpu_seconds() const;

  /// Looks up a task by name (linear scan; used by the DAX reader/tests).
  std::optional<TaskId> find_task(const std::string& name) const;

 private:
  std::string name_;
  std::vector<Task> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<TaskId>> children_;
  std::vector<std::vector<TaskId>> parents_;
};

}  // namespace deco::workflow
