// Synthetic scientific-workflow generators.
//
// The paper builds Montage instances from the Montage source and synthesizes
// LIGO and Epigenomics with the Pegasus WorkflowGenerator, whose structure and
// per-task runtime/data profiles come from the Bharathi/Juve characterization
// ("Characterizing and Profiling Scientific Workflows", FGCS 2013 — the
// paper's [18]).  We reproduce those generators here: the same task types,
// fan-in/fan-out structure, and published mean runtimes and data sizes, with
// lognormal-ish jitter drawn from a seeded RNG so instances differ.
//
// Montage-1/4/8 follow the paper's naming: mosaics of 1/4/8-degree sky areas;
// the degree sets the number of mProjectPP tasks (and thus overlaps/diffs).
#pragma once

#include <cstddef>
#include <string>

#include "util/rng.hpp"
#include "workflow/dag.hpp"

namespace deco::workflow {

enum class AppType { kMontage, kLigo, kEpigenomics, kCyberShake, kPipeline };

std::string to_string(AppType type);

/// Montage mosaic workflow for a `degree`-by-`degree` area (1, 4 or 8 in the
/// paper).  Task count grows roughly quadratically with the degree.
Workflow make_montage(int degree, util::Rng& rng);

/// Montage variant parameterized directly by the number of mProjectPP tasks.
Workflow make_montage_by_width(std::size_t projects, util::Rng& rng);

/// LIGO Inspiral analysis workflow with approximately `num_tasks` tasks.
Workflow make_ligo(std::size_t num_tasks, util::Rng& rng);

/// USC Epigenomics workflow with approximately `num_tasks` tasks.
Workflow make_epigenomics(std::size_t num_tasks, util::Rng& rng);

/// SCEC CyberShake workflow with approximately `num_tasks` tasks.
Workflow make_cybershake(std::size_t num_tasks, util::Rng& rng);

/// Linear pipeline of `num_tasks` tasks (the paper's Figure 4 example shape).
Workflow make_pipeline(std::size_t num_tasks, util::Rng& rng);

/// Dispatch by application type with a target task count (the ensemble
/// experiments use 20/100/1000-task instances of each application).
Workflow make_workflow(AppType type, std::size_t num_tasks, util::Rng& rng);

}  // namespace deco::workflow
