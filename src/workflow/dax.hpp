// Pegasus DAX (Directed Acyclic graph in XML) reader and writer.
//
// Supports the format of the paper's Figure 4: <adag> with <job> elements
// (id, name, optional runtime attribute) containing <uses file=.. link=in/out
// size=..> children, followed by <child ref=..><parent ref=../></child>
// dependency declarations.  Dependency edges may also be inferred from shared
// files (a job that reads a file another job writes becomes its child), which
// is how Pegasus' own mapper treats DAX files without explicit child lists.
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "workflow/dag.hpp"

namespace deco::workflow {

struct DaxError {
  std::string message;
};

using DaxResult = std::variant<Workflow, DaxError>;

/// Parses DAX XML text.  When `infer_file_edges` is true, adds edges implied
/// by producer/consumer file relationships that are not declared explicitly.
DaxResult parse_dax(std::string_view xml, bool infer_file_edges = true);

/// Reads a DAX file from disk.
DaxResult load_dax_file(const std::string& path, bool infer_file_edges = true);

/// Serializes a workflow back to DAX XML (with runtime/size attributes so the
/// round trip preserves the profile information Deco needs).
std::string to_dax(const Workflow& wf);

/// Writes to_dax() output to a file; returns false on I/O failure.
bool save_dax_file(const Workflow& wf, const std::string& path);

}  // namespace deco::workflow
