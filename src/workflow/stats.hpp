// Workflow statistics: the summary a user inspects before provisioning
// (task mix, data volumes, structure) — also backs `deco info`.
#pragma once

#include <map>
#include <string>

#include "workflow/dag.hpp"

namespace deco::workflow {

struct ExecutableStats {
  std::size_t count = 0;
  double total_cpu_seconds = 0;
  double total_input_bytes = 0;
  double total_output_bytes = 0;
};

struct WorkflowStats {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t roots = 0;
  std::size_t leaves = 0;
  std::size_t depth = 0;          ///< number of levels
  std::size_t max_width = 0;      ///< widest level (parallelism)
  double total_cpu_seconds = 0;
  double total_io_bytes = 0;      ///< input + output
  double total_edge_bytes = 0;    ///< data flowing along edges
  double critical_path_cpu_s = 0; ///< CP length under raw CPU weights
  std::map<std::string, ExecutableStats> by_executable;
};

WorkflowStats compute_stats(const Workflow& wf);

/// Multi-line human-readable rendering (used by `deco info`).
std::string describe(const WorkflowStats& stats, const std::string& name);

}  // namespace deco::workflow
